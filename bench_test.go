package muaa_test

// Benchmarks regenerating the paper's tables and figures (one per table /
// figure; DESIGN.md §5 maps IDs to experiments). Figure benches run the full
// harness sweep at a laptop scale (-scale equivalent 0.02 of the paper's
// entity counts) so `go test -bench=.` finishes in minutes; pass the real
// sizes through cmd/muaa-bench for full-scale runs. Absolute numbers differ
// from the paper's Xeon/Java testbed by design; the shapes are asserted in
// the experiment package's tests and recorded in EXPERIMENTS.md.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"muaa"
	"muaa/internal/broker"
	"muaa/internal/core"
	"muaa/internal/experiment"
	"muaa/internal/stream"
	"muaa/internal/trace"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

func benchSettings() experiment.Settings {
	return experiment.DefaultSettings().Scale(0.02)
}

// BenchmarkExample1 — Table I/II + Example 1 (E1): full algorithm suite on
// the worked example.
func BenchmarkExample1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunExample1(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSeries(b *testing.B, run func(experiment.Settings, int) (experiment.Series, error)) {
	b.Helper()
	st := benchSettings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(st, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3BudgetSweep — Figure 3: vendor-budget range sweep (real-data
// style workload).
func BenchmarkFig3BudgetSweep(b *testing.B) { benchSeries(b, experiment.RunBudgetSweep) }

// BenchmarkFig4RadiusSweep — Figure 4: vendor-radius range sweep.
func BenchmarkFig4RadiusSweep(b *testing.B) { benchSeries(b, experiment.RunRadiusSweep) }

// BenchmarkFig5CapacitySweep — Figure 5: customer-capacity range sweep.
func BenchmarkFig5CapacitySweep(b *testing.B) { benchSeries(b, experiment.RunCapacitySweep) }

// BenchmarkFig6ProbabilitySweep — Figure 6: viewing-probability range sweep.
func BenchmarkFig6ProbabilitySweep(b *testing.B) { benchSeries(b, experiment.RunProbabilitySweep) }

// BenchmarkFig7CustomerScaling — Figure 7: number of customers (synthetic).
func BenchmarkFig7CustomerScaling(b *testing.B) { benchSeries(b, experiment.RunCustomerScaling) }

// BenchmarkFig8VendorScaling — Figure 8: number of vendors (synthetic).
func BenchmarkFig8VendorScaling(b *testing.B) { benchSeries(b, experiment.RunVendorScaling) }

// BenchmarkAblationThreshold — A1: adaptive vs static admission threshold.
func BenchmarkAblationThreshold(b *testing.B) { benchSeries(b, experiment.RunThresholdAblation) }

// BenchmarkAblationG — A2: effect of the threshold base g.
func BenchmarkAblationG(b *testing.B) { benchSeries(b, experiment.RunGSweep) }

// BenchmarkAblationMCKP — A3: RECON single-vendor backend (greedy vs LP).
func BenchmarkAblationMCKP(b *testing.B) { benchSeries(b, experiment.RunMCKPAblation) }

// BenchmarkRatioStudy — A4: empirical approximation / competitive ratios
// against the exact optimum.
func BenchmarkRatioStudy(b *testing.B) {
	st := benchSettings()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunRatioStudy(st, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-solver microbenchmarks on one fixed default-shaped (scaled) problem:
// the per-algorithm running-time panels of every figure decompose into
// these.
func benchProblem(b *testing.B) *muaa.Problem {
	b.Helper()
	st := experiment.DefaultSettings().Scale(0.1) // 1,000 customers, 50 vendors
	p, err := muaa.NewSyntheticProblem(muaa.WorkloadConfig{
		Customers: st.Customers,
		Vendors:   st.Vendors,
		Budget:    st.Budget,
		Radius:    st.Radius,
		Capacity:  st.Capacity,
		ViewProb:  st.ViewProb,
		Seed:      st.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchSolver(b *testing.B, s muaa.Solver) {
	b.Helper()
	p := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverRecon times the reconciliation approach (figures' RECON
// running-time series).
func BenchmarkSolverRecon(b *testing.B) { benchSolver(b, muaa.Recon{Seed: 1}) }

// BenchmarkSolverReconLP times RECON with the simplex LP backend.
func BenchmarkSolverReconLP(b *testing.B) { benchSolver(b, muaa.Recon{UseLP: true, Seed: 1}) }

// BenchmarkSolverGreedy times the GREEDY baseline.
func BenchmarkSolverGreedy(b *testing.B) { benchSolver(b, muaa.Greedy{}) }

// BenchmarkSolverOnline times O-AFA end to end.
func BenchmarkSolverOnline(b *testing.B) { benchSolver(b, muaa.OnlineAFA{Seed: 1}) }

// BenchmarkSolverRandom times the RANDOM baseline.
func BenchmarkSolverRandom(b *testing.B) { benchSolver(b, muaa.Random{Seed: 1}) }

// BenchmarkSolverNearest times the NEAREST baseline.
func BenchmarkSolverNearest(b *testing.B) { benchSolver(b, muaa.Nearest{}) }

// BenchmarkOnlineArrival measures the per-customer response time of O-AFA —
// the paper's claim that ONLINE answers each arrival "in less than 1 second
// even with 20K vendors" reduces to this number times the vendor filter
// fan-out.
func BenchmarkOnlineArrival(b *testing.B) {
	p := benchProblem(b)
	sess, err := core.NewSession(p, core.OnlineAFA{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	events := stream.FromProblem(p).Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Arrive(events[i%len(events)].Customer)
	}
}

// BenchmarkAblationBatch — A6: micro-batching window sweep vs pure online.
func BenchmarkAblationBatch(b *testing.B) { benchSeries(b, experiment.RunBatchAblation) }

// BenchmarkSafeRegionStudy — A5: safe-region tracking for moving customers.
func BenchmarkSafeRegionStudy(b *testing.B) {
	st := benchSettings()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSafeRegionStudy(st, 5, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverBatch times the micro-batching extension end to end.
func BenchmarkSolverBatch(b *testing.B) { benchSolver(b, muaa.OnlineBatch{Window: 128, Seed: 1}) }

// BenchmarkTuningStudy — A7: day-over-day threshold tuning simulation.
func BenchmarkTuningStudy(b *testing.B) {
	st := benchSettings()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunTuningStudy(st, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverReconParallel times RECON with a GOMAXPROCS worker pool over
// its independent single-vendor subproblems.
func BenchmarkSolverReconParallel(b *testing.B) { benchSolver(b, muaa.Recon{Seed: 1, Workers: -1}) }

// BenchmarkIndexAblation — A8: grid vs k-d tree on covering-vendor queries.
func BenchmarkIndexAblation(b *testing.B) {
	st := benchSettings()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunIndexAblation(st, 500); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBroker builds a broker pre-loaded with a deterministic campaign set
// and returns it with the mixed op stream to replay against it.
func benchBroker(b *testing.B) (*broker.Broker, []workload.BrokerOp) {
	return benchBrokerDir(b, "")
}

// benchBrokerDir is the durable variant: a non-empty dataDir boots the
// broker with its write-ahead log in buffered mode (group-commit write() to
// the OS; no per-batch fsync) so the WAL benchmarks measure the logging
// cost itself rather than the device's fsync latency — cmd/muaa-bench
// -exp wal reports the fsync arm alongside.
func benchBrokerDir(b *testing.B, dataDir string) (*broker.Broker, []workload.BrokerOp) {
	b.Helper()
	specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(256, 8192, 42))
	if err != nil {
		b.Fatal(err)
	}
	br, err := broker.New(broker.Config{
		AdTypes: workload.DefaultAdTypes(),
		DataDir: dataDir,
		WAL:     wal.Options{Sync: wal.SyncNone},
	})
	if err != nil {
		b.Fatal(err)
	}
	if dataDir != "" {
		b.Cleanup(func() {
			if err := br.Close(); err != nil {
				b.Error(err)
			}
		})
	}
	for _, c := range specs {
		if _, err := br.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			b.Fatal(err)
		}
	}
	return br, ops
}

func applyBrokerOp(br *broker.Broker, op workload.BrokerOp) error {
	switch op.Kind {
	case workload.OpArrival:
		_, err := br.Arrive(broker.Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		})
		return err
	case workload.OpTopUp:
		return br.TopUp(op.Campaign, op.Amount)
	case workload.OpPause:
		return br.SetPaused(op.Campaign, op.Paused)
	default:
		br.Stats()
		return nil
	}
}

// BenchmarkBrokerParallelArrivals drives mixed arrival/top-up/stats traffic
// through one broker from GOMAXPROCS goroutines (b.RunParallel). Compare
// against BenchmarkBrokerSerialArrivals across -cpu values for the scaling
// curve of the sharded serving path; cmd/muaa-bench -exp broker prints the
// same sweep as a table.
func BenchmarkBrokerParallelArrivals(b *testing.B) {
	br, ops := benchBroker(b)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			op := ops[int(next.Add(1)-1)%len(ops)]
			if err := applyBrokerOp(br, op); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBrokerSerialArrivals is the single-goroutine baseline for the
// parallel benchmark above.
func BenchmarkBrokerSerialArrivals(b *testing.B) {
	br, ops := benchBroker(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := applyBrokerOp(br, ops[i%len(ops)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrokerSerialArrivalsTraced replays the serial stream with the
// flight recorder live: every arrival goes through ArriveTraced with a fresh
// request context, paying the per-stage clock reads, the outcome
// classification and the lock-free recorder write. The delta against
// BenchmarkBrokerSerialArrivals is the full tracing tax.
func BenchmarkBrokerSerialArrivalsTraced(b *testing.B) {
	specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(256, 8192, 42))
	if err != nil {
		b.Fatal(err)
	}
	br, err := broker.New(broker.Config{
		AdTypes: workload.DefaultAdTypes(),
		Tracer:  trace.NewRecorder(trace.RecorderOptions{}),
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range specs {
		if _, err := br.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i%len(ops)]
		if op.Kind == workload.OpArrival {
			req := trace.StartRequest("")
			if _, err := br.ArriveTraced(broker.Arrival{
				Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
				Interests: op.Interests, Hour: op.Hour,
			}, &req); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if err := applyBrokerOp(br, op); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrokerSerialArrivalsFunnel replays the serial stream with
// per-campaign decision-funnel attribution on: every gathered candidate's
// disposition is recorded into the funnel registry at commit time. The
// delta against BenchmarkBrokerSerialArrivals is the attribution tax, which
// must stay within noise of free (a handful of atomic adds per arrival).
func BenchmarkBrokerSerialArrivalsFunnel(b *testing.B) {
	specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(256, 8192, 42))
	if err != nil {
		b.Fatal(err)
	}
	br, err := broker.New(broker.Config{
		AdTypes: workload.DefaultAdTypes(),
		Funnel:  broker.FunnelConfig{Enabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range specs {
		if _, err := br.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := applyBrokerOp(br, ops[i%len(ops)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrokerSerialArrivalsWAL replays the same serial stream through a
// durable broker (buffered group-commit WAL, default fsync-on-flush) — the
// delta against BenchmarkBrokerSerialArrivals is the per-op durability
// cost; cmd/muaa-bench -exp wal prints the interleaved A/B as a table.
func BenchmarkBrokerSerialArrivalsWAL(b *testing.B) {
	br, ops := benchBrokerDir(b, b.TempDir())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := applyBrokerOp(br, ops[i%len(ops)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBrokerParallelArrivalsWAL is the durable variant of the parallel
// benchmark: group commit lets concurrent arrivals buffer while another
// goroutine is inside the fsync, so the parallel overhead should stay close
// to the serial one.
func BenchmarkBrokerParallelArrivalsWAL(b *testing.B) {
	br, ops := benchBrokerDir(b, b.TempDir())
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			op := ops[int(next.Add(1)-1)%len(ops)]
			if err := applyBrokerOp(br, op); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchArrivalBroker builds a broker with a pure-arrival stream: every op is
// batchable, so the batch benchmarks below sweep window size without mixed
// ops breaking windows.
func benchArrivalBroker(b *testing.B) (*broker.Broker, []broker.Arrival) {
	b.Helper()
	specs, ops, err := workload.BrokerLoad(workload.ArrivalBrokerLoadConfig(256, 8192, 42))
	if err != nil {
		b.Fatal(err)
	}
	br, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range specs {
		if _, err := br.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			b.Fatal(err)
		}
	}
	arrivals := make([]broker.Arrival, len(ops))
	for i, op := range ops {
		arrivals[i] = broker.Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		}
	}
	return br, arrivals
}

// BenchmarkBrokerArriveAppend is the tentpole's allocation bar in benchmark
// form: a serial arrival through the append-style entry point with a reused
// destination slice must report 0 allocs/op (the arena owns every scratch
// buffer).
func BenchmarkBrokerArriveAppend(b *testing.B) {
	br, arrivals := benchArrivalBroker(b)
	dst := make([]broker.Offer, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := br.ArriveAppend(dst[:0], arrivals[i%len(arrivals)])
		if err != nil {
			b.Fatal(err)
		}
		dst = out[:0]
	}
}

// BenchmarkBrokerArriveBatch sweeps the batch window: ns/op is per arrival,
// so the ratio of window=1 to window=64+ is the amortization of the
// per-batch fixed costs (lock acquisition, clock anchor, WAL framing).
// cmd/muaa-bench -exp broker records the same sweep into BENCH_broker.json.
func BenchmarkBrokerArriveBatch(b *testing.B) {
	for _, window := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			br, arrivals := benchArrivalBroker(b)
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := window
				if b.N-done < n {
					n = b.N - done
				}
				lo := done % len(arrivals)
				if lo+n > len(arrivals) {
					n = len(arrivals) - lo
				}
				for _, res := range br.ArriveBatch(arrivals[lo : lo+n]) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
				done += n
			}
		})
	}
}
