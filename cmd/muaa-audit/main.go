// Command muaa-audit replays a broker durability directory into a static
// MUAA problem, solves it offline with RECON and GREEDY, and reports the
// achieved quality: empirical competitive ratio vs the paper's (ln g + 1)/θ
// bound, per-campaign budget utilization and pacing, online/oracle offer-mix
// divergence. Read-only over the WAL — safe to point at a live broker's data
// directory (it audits up to the last completed write).
//
//	muaa-audit -data-dir /var/lib/muaa -json report.json
//	muaa-audit -data-dir ./data -no-recon   # greedy oracle only, much faster
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"muaa/internal/broker"
	"muaa/internal/buildinfo"
	"muaa/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("muaa-audit", flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "broker durability directory to audit (required)")
	jsonOut := fs.String("json", "", "write the report to this file ('-' for stdout; default stdout)")
	noRecon := fs.Bool("no-recon", false, "skip the RECON oracle; audit against greedy only")
	epsilon := fs.Float64("epsilon", 0, "RECON subproblem FPTAS epsilon (0 = exact subproblems)")
	workers := fs.Int("workers", 1, "RECON worker goroutines (1 keeps the report deterministic)")
	seed := fs.Int64("seed", 1, "RECON reconciliation seed")
	g := fs.Float64("g", 0, "fixed g the audited broker ran with (0 = derived from observed γ bounds)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Println(buildinfo.String("muaa-audit"))
		return 0
	}
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "muaa-audit: -data-dir is required")
		fs.Usage()
		return 2
	}
	rep, err := broker.ReplayAudit(*dataDir, broker.AuditConfig{
		AdTypes:  workload.DefaultAdTypes(),
		G:        *g,
		UseRecon: !*noRecon,
		Epsilon:  *epsilon,
		Workers:  *workers,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "muaa-audit: %v\n", err)
		return 1
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	out, err := rep.EncodeJSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "muaa-audit: encoding report: %v\n", err)
		return 1
	}
	if *jsonOut == "" || *jsonOut == "-" {
		os.Stdout.Write(out)
		return 0
	}
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "muaa-audit: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "muaa-audit: %s report on %d arrivals → %s (ratio %.4f, bound %.2f)\n",
		rep.Mode, rep.Arrivals, *jsonOut, rep.EmpiricalRatio, rep.CompetitiveBound)
	return 0
}
