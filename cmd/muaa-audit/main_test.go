package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"muaa/internal/broker"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

// seedDir drives a small durable broker with retained WAL history and
// closes it gracefully.
func seedDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	b, err := broker.New(broker.Config{
		AdTypes: workload.DefaultAdTypes(),
		DataDir: dir,
		WAL:     wal.Options{Retain: true, FlushEvery: 1, Sync: wal.SyncNone, FlushInterval: -1, SnapshotEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(8, 400, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range stream {
		switch op.Kind {
		case workload.OpArrival:
			if _, err := b.Arrive(broker.Arrival{
				Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
				Interests: op.Interests, Hour: op.Hour,
			}); err != nil {
				t.Fatal(err)
			}
		case workload.OpTopUp:
			if err := b.TopUp(op.Campaign, op.Amount); err != nil {
				t.Fatal(err)
			}
		case workload.OpPause:
			if err := b.SetPaused(op.Campaign, op.Paused); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunWritesReport(t *testing.T) {
	dir := seedDir(t)
	out := filepath.Join(t.TempDir(), "report.json")
	if code := run([]string{"-data-dir", dir, "-json", out, "-no-recon"}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema           string  `json:"schema"`
		Mode             string  `json:"mode"`
		GeneratedAt      string  `json:"generated_at"`
		Arrivals         int     `json:"arrivals"`
		EmpiricalRatio   float64 `json:"empirical_ratio"`
		CompetitiveBound float64 `json:"competitive_bound"`
		BoundSatisfied   bool    `json:"bound_satisfied"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "muaa-audit/1" || rep.Mode != "full-history" || rep.GeneratedAt == "" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Arrivals == 0 {
		t.Fatal("no arrivals audited")
	}
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("ratio %g outside (0, 1]", rep.EmpiricalRatio)
	}
	if rep.CompetitiveBound < rep.EmpiricalRatio {
		t.Fatalf("bound %g below ratio %g", rep.CompetitiveBound, rep.EmpiricalRatio)
	}
	if !rep.BoundSatisfied {
		t.Fatal("bound not satisfied on the seeded stream")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if code := run([]string{}); code != 2 {
		t.Fatalf("missing -data-dir: exit %d, want 2", code)
	}
	if code := run([]string{"-data-dir", t.TempDir()}); code != 1 {
		t.Fatalf("empty directory: exit %d, want 1", code)
	}
	if code := run([]string{"-version"}); code != 0 {
		t.Fatalf("-version: exit %d", code)
	}
}
