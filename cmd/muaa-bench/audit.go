package main

// The audit replay experiment (-exp audit): how fast the offline quality
// audit (muaa-audit / broker.ReplayAudit) runs against the size of the WAL
// it replays. Three stream sizes are driven through a durable broker with
// retained history, then each directory is audited twice — greedy oracle
// only, and with RECON — so the table separates the decode+replay cost from
// the oracle solve. The committed BENCH_audit.json trajectory file pins
// these numbers per commit.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"muaa/internal/broker"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

// runAuditReplay builds three retained WAL directories at 1×, 3× and 9× the
// scale-sized op stream and times the audit over each. A non-nil doc also
// collects each point for -json output.
func runAuditReplay(w io.Writer, scale float64, seed int64, csv bool, workers int, doc *benchDoc) error {
	campaigns := int(256 * scale)
	if campaigns < 16 {
		campaigns = 16
	}
	baseOps := int(20000 * scale)
	if baseOps < 500 {
		baseOps = 500
	}
	if csv {
		fmt.Fprintln(w, "ops,arrivals,wal_bytes,greedy_ms,recon_ms,empirical_ratio")
	} else {
		fmt.Fprintf(w, "Audit replay — %d campaigns, retained WAL, greedy vs RECON oracle\n", campaigns)
		fmt.Fprintf(w, "%10s %10s %12s %12s %12s %8s\n", "ops", "arrivals", "wal bytes", "greedy ms", "recon ms", "ratio")
	}
	for _, mult := range []int{1, 3, 9} {
		totalOps := baseOps * mult
		specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, totalOps, seed))
		if err != nil {
			return err
		}
		dir, err := os.MkdirTemp("", "muaa-auditbench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		b, err := broker.New(broker.Config{
			AdTypes: workload.DefaultAdTypes(),
			DataDir: dir,
			WAL:     wal.Options{Sync: wal.SyncNone, Retain: true},
		})
		if err != nil {
			return err
		}
		for _, c := range specs {
			if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
				return err
			}
		}
		for _, op := range ops {
			if err := applyOp(b, op); err != nil {
				return err
			}
		}
		if err := b.Close(); err != nil {
			return err
		}
		walBytes, err := dirBytes(dir)
		if err != nil {
			return err
		}

		cfg := broker.AuditConfig{AdTypes: workload.DefaultAdTypes(), Seed: seed}
		start := time.Now()
		if _, err := broker.ReplayAudit(dir, cfg); err != nil {
			return err
		}
		greedyMs := float64(time.Since(start)) / float64(time.Millisecond)

		cfg.UseRecon = true
		cfg.Workers = workers
		start = time.Now()
		rep, err := broker.ReplayAudit(dir, cfg)
		if err != nil {
			return err
		}
		reconMs := float64(time.Since(start)) / float64(time.Millisecond)

		if doc != nil {
			doc.Points = append(doc.Points, benchPoint{
				Series:         "audit_replay",
				Label:          fmt.Sprintf("ops=%d", totalOps),
				Ops:            totalOps,
				NsPerOp:        greedyMs * float64(time.Millisecond) / float64(totalOps),
				WALBytes:       walBytes,
				Arrivals:       rep.Arrivals,
				GreedyMs:       greedyMs,
				ReconMs:        reconMs,
				EmpiricalRatio: rep.EmpiricalRatio,
			})
		}
		if csv {
			fmt.Fprintf(w, "%d,%d,%d,%.1f,%.1f,%.4f\n",
				totalOps, rep.Arrivals, walBytes, greedyMs, reconMs, rep.EmpiricalRatio)
		} else {
			fmt.Fprintf(w, "%10d %10d %12d %12.1f %12.1f %8.4f\n",
				totalOps, rep.Arrivals, walBytes, greedyMs, reconMs, rep.EmpiricalRatio)
		}
	}
	return nil
}

// dirBytes sums the regular-file sizes under dir (the on-disk WAL +
// snapshot footprint the audit reads).
func dirBytes(dir string) (int64, error) {
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.Mode().IsRegular() {
			total += info.Size()
		}
		return nil
	})
	return total, err
}
