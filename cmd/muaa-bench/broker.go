package main

// The broker scaling sweep (-exp broker): drives the same deterministic mixed
// arrival/top-up/stats stream that bench_test.go's
// BenchmarkBrokerParallelArrivals uses through one sharded broker at
// increasing goroutine counts, and prints the throughput curve. On
// multi-core hardware the curve shows the effect of per-stripe locking; the
// -shards flag (via the serve command) and the benchmark's -cpu flag probe
// the same axis.

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"muaa/internal/broker"
	"muaa/internal/workload"
)

// runBrokerScaling sweeps worker counts 1,2,4,… up to maxWorkers (0 selects
// max(8, 2·GOMAXPROCS)) over a scale-sized op stream and prints ops/sec and
// speedup per point.
func runBrokerScaling(w io.Writer, scale float64, maxWorkers int, seed int64, csv bool) error {
	if maxWorkers <= 0 {
		maxWorkers = 2 * runtime.GOMAXPROCS(0)
		if maxWorkers < 8 {
			maxWorkers = 8
		}
	}
	campaigns := int(512 * scale)
	if campaigns < 16 {
		campaigns = 16
	}
	totalOps := int(400000 * scale)
	if totalOps < 20000 {
		totalOps = 20000
	}
	specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, totalOps, seed))
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "goroutines,ops,seconds,ops_per_sec,speedup")
	} else {
		fmt.Fprintf(w, "Broker scaling — %d campaigns, %d mixed ops (90%% arrivals), GOMAXPROCS=%d\n",
			campaigns, totalOps, runtime.GOMAXPROCS(0))
		fmt.Fprintf(w, "%12s %12s %12s %14s %9s\n", "goroutines", "ops", "seconds", "ops/sec", "speedup")
	}
	var base float64
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		opsPerSec, err := brokerThroughput(specs, ops, workers)
		if err != nil {
			return err
		}
		if base == 0 {
			base = opsPerSec
		}
		if csv {
			fmt.Fprintf(w, "%d,%d,%.4f,%.0f,%.2f\n",
				workers, totalOps, float64(totalOps)/opsPerSec, opsPerSec, opsPerSec/base)
		} else {
			fmt.Fprintf(w, "%12d %12d %12.4f %14.0f %8.2fx\n",
				workers, totalOps, float64(totalOps)/opsPerSec, opsPerSec, opsPerSec/base)
		}
	}
	return nil
}

// brokerThroughput replays the op stream across `workers` goroutines against
// a fresh broker and returns the aggregate operation rate.
func brokerThroughput(specs []workload.BrokerCampaign, ops []workload.BrokerOp, workers int) (float64, error) {
	b, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		return 0, err
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			return 0, err
		}
	}
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(ops); i += workers {
				if err := applyOp(b, ops[i]); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if p := firstErr.Load(); p != nil {
		return 0, *p
	}
	return float64(len(ops)) / elapsed.Seconds(), nil
}

func applyOp(b *broker.Broker, op workload.BrokerOp) error {
	switch op.Kind {
	case workload.OpArrival:
		_, err := b.Arrive(broker.Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		})
		return err
	case workload.OpTopUp:
		return b.TopUp(op.Campaign, op.Amount)
	case workload.OpPause:
		return b.SetPaused(op.Campaign, op.Paused)
	default:
		b.Stats()
		return nil
	}
}
