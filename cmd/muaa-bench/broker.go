package main

// The broker scaling sweep (-exp broker): drives the same deterministic mixed
// arrival/top-up/stats stream that bench_test.go's
// BenchmarkBrokerParallelArrivals uses through one sharded broker at
// increasing goroutine counts, and prints the throughput curve plus the
// p50/p95/p99 arrival latency read back from the broker's own
// muaa_broker_arrival_seconds histogram (internal/obs) — the same numbers a
// live muaa-serve exports on GET /metrics. On multi-core hardware the curve
// shows the effect of per-stripe locking; the -shards flag (via the serve
// command) and the benchmark's -cpu flag probe the same axis.

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"muaa/internal/broker"
	"muaa/internal/obs"
	"muaa/internal/workload"
)

// runBrokerScaling sweeps worker counts 1,2,4,… up to maxWorkers (0 selects
// max(8, 2·GOMAXPROCS)) over a scale-sized op stream and prints ops/sec,
// speedup, and arrival-latency quantiles per point. A non-nil doc also
// collects each point for -json output.
func runBrokerScaling(w io.Writer, scale float64, maxWorkers int, seed int64, csv bool, doc *benchDoc) error {
	if maxWorkers <= 0 {
		maxWorkers = 2 * runtime.GOMAXPROCS(0)
		if maxWorkers < 8 {
			maxWorkers = 8
		}
	}
	campaigns := int(512 * scale)
	if campaigns < 16 {
		campaigns = 16
	}
	totalOps := int(400000 * scale)
	if totalOps < 20000 {
		totalOps = 20000
	}
	specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, totalOps, seed))
	if err != nil {
		return err
	}
	if csv {
		fmt.Fprintln(w, "goroutines,ops,seconds,ops_per_sec,speedup,p50_us,p95_us,p99_us")
	} else {
		fmt.Fprintf(w, "Broker scaling — %d campaigns, %d mixed ops (90%% arrivals), GOMAXPROCS=%d\n",
			campaigns, totalOps, runtime.GOMAXPROCS(0))
		fmt.Fprintf(w, "%12s %12s %12s %14s %9s %9s %9s %9s\n",
			"goroutines", "ops", "seconds", "ops/sec", "speedup", "p50(µs)", "p95(µs)", "p99(µs)")
	}
	var base float64
	for workers := 1; workers <= maxWorkers; workers *= 2 {
		opsPerSec, lat, err := brokerThroughput(specs, ops, workers)
		if err != nil {
			return err
		}
		if base == 0 {
			base = opsPerSec
		}
		p50, p95, p99 := lat.Quantile(0.50)*1e6, lat.Quantile(0.95)*1e6, lat.Quantile(0.99)*1e6
		if doc != nil {
			doc.Points = append(doc.Points, benchPoint{
				Series:     "broker_scaling",
				Label:      fmt.Sprintf("goroutines=%d", workers),
				Goroutines: workers,
				Ops:        totalOps,
				NsPerOp:    1e9 / opsPerSec,
				OpsPerSec:  opsPerSec,
				Speedup:    opsPerSec / base,
				P50Us:      jsonSafe(p50),
				P95Us:      jsonSafe(p95),
				P99Us:      jsonSafe(p99),
			})
		}
		if csv {
			fmt.Fprintf(w, "%d,%d,%.4f,%.0f,%.2f,%.2f,%.2f,%.2f\n",
				workers, totalOps, float64(totalOps)/opsPerSec, opsPerSec, opsPerSec/base, p50, p95, p99)
		} else {
			fmt.Fprintf(w, "%12d %12d %12.4f %14.0f %8.2fx %9.2f %9.2f %9.2f\n",
				workers, totalOps, float64(totalOps)/opsPerSec, opsPerSec, opsPerSec/base, p50, p95, p99)
		}
	}
	return runBrokerBatch(w, scale, seed, csv, doc)
}

// runBrokerBatch sweeps the ArriveBatch window over a pure-arrival stream:
// an interleaved A/B of the serial entry point against batch windows
// {1, 8, 64, 256} on one instrumented broker per run, single-goroutine (the
// answer-delay trade is per submitter; cross-submitter parallelism is the
// scaling sweep above). ns/op is per arrival in every arm; speedup is
// serial-mean over arm-mean.
func runBrokerBatch(w io.Writer, scale float64, seed int64, csv bool, doc *benchDoc) error {
	campaigns := int(512 * scale)
	if campaigns < 16 {
		campaigns = 16
	}
	totalOps := int(200000 * scale)
	if totalOps < 20000 {
		totalOps = 20000
	}
	specs, ops, err := workload.BrokerLoad(workload.ArrivalBrokerLoadConfig(campaigns, totalOps, seed))
	if err != nil {
		return err
	}
	arrivals := make([]broker.Arrival, len(ops))
	for i, op := range ops {
		arrivals[i] = broker.Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		}
	}
	windows := []int{0, 1, 8, 64, 256} // 0 = serial Arrive baseline
	const rounds = 3
	samples := make([][]float64, len(windows))
	for r := 0; r < rounds; r++ {
		for i, window := range windows {
			ns, err := batchRun(specs, arrivals, window)
			if err != nil {
				return err
			}
			samples[i] = append(samples[i], ns)
		}
	}
	baseMean, _ := meanMin(samples[0])
	if csv {
		fmt.Fprintln(w, "batch,rounds,arrivals,mean_ns_per_arrival,best_ns_per_arrival,speedup")
	} else {
		fmt.Fprintf(w, "\nBatch ingestion — %d campaigns, %d arrivals (pure-arrival stream), %d interleaved rounds\n",
			campaigns, totalOps, rounds)
		fmt.Fprintf(w, "%12s %16s %16s %9s\n", "batch", "mean ns/arr", "best ns/arr", "speedup")
	}
	for i, window := range windows {
		mean, best := meanMin(samples[i])
		label := "serial"
		if window > 0 {
			label = fmt.Sprintf("batch=%d", window)
		}
		if doc != nil {
			doc.Points = append(doc.Points, benchPoint{
				Series:      "broker_batch",
				Label:       label,
				BatchSize:   window,
				Ops:         totalOps,
				NsPerOp:     mean,
				BestNsPerOp: best,
				Speedup:     baseMean / mean,
			})
		}
		if csv {
			fmt.Fprintf(w, "%s,%d,%d,%.1f,%.1f,%.2f\n", label, rounds, totalOps, mean, best, baseMean/mean)
		} else {
			fmt.Fprintf(w, "%12s %16.1f %16.1f %8.2fx\n", label, mean, best, baseMean/mean)
		}
	}
	return runBrokerSlate(w, scale, seed, csv, doc)
}

// runBrokerSlate sweeps the slate scan against the legacy serial scan on a
// pure-arrival fixed-cost stream: a "serial" baseline (legacy path, a_i = 1)
// against the slate path at slot capacities a_i ∈ {1, 2, 4}, interleaved
// A/B like the batch sweep. The a_i = 1 slate arm measures the pure overhead
// of the slot-fill machinery on the workload where both paths make
// bit-identical decisions (TestSlateEquivalenceSerial); the a_i > 1 arms
// price the MCKP slot fill itself. ns/op is per arrival in every arm.
func runBrokerSlate(w io.Writer, scale float64, seed int64, csv bool, doc *benchDoc) error {
	campaigns := int(512 * scale)
	if campaigns < 16 {
		campaigns = 16
	}
	totalOps := int(200000 * scale)
	if totalOps < 20000 {
		totalOps = 20000
	}
	specs, ops, err := workload.BrokerLoad(workload.ArrivalBrokerLoadConfig(campaigns, totalOps, seed))
	if err != nil {
		return err
	}
	arms := []struct {
		label    string
		capacity int
		slate    bool
	}{
		{"serial", 1, false},
		{"slate a=1", 1, true},
		{"slate a=2", 2, true},
		{"slate a=4", 4, true},
	}
	const rounds = 3
	samples := make([][]float64, len(arms))
	for r := 0; r < rounds; r++ {
		for i, arm := range arms {
			arrivals := make([]broker.Arrival, len(ops))
			for j, op := range ops {
				arrivals[j] = broker.Arrival{
					Loc: op.Loc, Capacity: arm.capacity, ViewProb: op.ViewProb,
					Interests: op.Interests, Hour: op.Hour,
				}
			}
			ns, err := slateRun(specs, arrivals, arm.slate)
			if err != nil {
				return err
			}
			samples[i] = append(samples[i], ns)
		}
	}
	baseMean, _ := meanMin(samples[0])
	if csv {
		fmt.Fprintln(w, "arm,capacity,rounds,arrivals,mean_ns_per_arrival,best_ns_per_arrival,speedup")
	} else {
		fmt.Fprintf(w, "\nSlate scan — %d campaigns, %d arrivals (pure-arrival fixed-cost stream), %d interleaved rounds\n",
			campaigns, totalOps, rounds)
		fmt.Fprintf(w, "%12s %10s %16s %16s %9s\n", "arm", "a_i", "mean ns/arr", "best ns/arr", "speedup")
	}
	for i, arm := range arms {
		mean, best := meanMin(samples[i])
		if doc != nil {
			doc.Points = append(doc.Points, benchPoint{
				Series:      "broker_slate",
				Label:       arm.label,
				Capacity:    arm.capacity,
				Ops:         totalOps,
				NsPerOp:     mean,
				BestNsPerOp: best,
				Speedup:     baseMean / mean,
			})
		}
		if csv {
			fmt.Fprintf(w, "%s,%d,%d,%d,%.1f,%.1f,%.2f\n", arm.label, arm.capacity, rounds, totalOps, mean, best, baseMean/mean)
		} else {
			fmt.Fprintf(w, "%12s %10d %16.1f %16.1f %8.2fx\n", arm.label, arm.capacity, mean, best, baseMean/mean)
		}
	}
	return runBrokerObs(w, scale, seed, csv, doc)
}

// runBrokerObs prices the time-series retention sampler on the serial
// arrival hot path: an interleaved A/B of sampler-off against the 5s
// default cadence and an aggressive 50ms cadence. Each arm replays the
// same pure-arrival stream on a fresh instrumented broker while (in the
// sampled arms) an obs.Sampler snapshots the whole registry from its
// background goroutine — the contention the muaa-serve default actually
// adds. The acceptance budget is <5% overhead at the default interval;
// overhead_pct in BENCH_broker.json tracks it per commit.
func runBrokerObs(w io.Writer, scale float64, seed int64, csv bool, doc *benchDoc) error {
	campaigns := int(512 * scale)
	if campaigns < 16 {
		campaigns = 16
	}
	totalOps := int(200000 * scale)
	if totalOps < 20000 {
		totalOps = 20000
	}
	specs, ops, err := workload.BrokerLoad(workload.ArrivalBrokerLoadConfig(campaigns, totalOps, seed))
	if err != nil {
		return err
	}
	arrivals := make([]broker.Arrival, len(ops))
	for i, op := range ops {
		arrivals[i] = broker.Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		}
	}
	arms := []struct {
		label string
		every time.Duration
	}{
		{"off", 0},
		{"every=5s", 5 * time.Second},
		{"every=50ms", 50 * time.Millisecond},
	}
	const rounds = 3
	samples := make([][]float64, len(arms))
	for r := 0; r < rounds; r++ {
		for i, arm := range arms {
			ns, err := obsRun(specs, arrivals, arm.every)
			if err != nil {
				return err
			}
			samples[i] = append(samples[i], ns)
		}
	}
	baseMean, _ := meanMin(samples[0])
	if csv {
		fmt.Fprintln(w, "sampler,rounds,arrivals,mean_ns_per_arrival,best_ns_per_arrival,overhead_pct")
	} else {
		fmt.Fprintf(w, "\nTime-series sampler — %d campaigns, %d arrivals (serial hot path), %d interleaved rounds\n",
			campaigns, totalOps, rounds)
		fmt.Fprintf(w, "%12s %16s %16s %10s\n", "sampler", "mean ns/arr", "best ns/arr", "overhead")
	}
	for i, arm := range arms {
		mean, best := meanMin(samples[i])
		overhead := (mean/baseMean - 1) * 100
		if doc != nil {
			doc.Points = append(doc.Points, benchPoint{
				Series:      "obs_sample",
				Label:       arm.label,
				Ops:         totalOps,
				NsPerOp:     mean,
				BestNsPerOp: best,
				Speedup:     baseMean / mean,
				OverheadPct: overhead,
			})
		}
		if csv {
			fmt.Fprintf(w, "%s,%d,%d,%.1f,%.1f,%.2f\n", arm.label, rounds, totalOps, mean, best, overhead)
		} else {
			fmt.Fprintf(w, "%12s %16.1f %16.1f %9.2f%%\n", arm.label, mean, best, overhead)
		}
	}
	return nil
}

// obsRun replays the arrival stream serially on a fresh instrumented
// broker — with a live background sampler at the given cadence when every
// is positive — and returns ns per arrival.
func obsRun(specs []workload.BrokerCampaign, arrivals []broker.Arrival, every time.Duration) (float64, error) {
	reg := obs.NewRegistry()
	b, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes(), Metrics: reg})
	if err != nil {
		return 0, err
	}
	if every > 0 {
		s := obs.NewSampler(reg, obs.SamplerOptions{Every: every})
		s.Start()
		defer s.Stop()
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := range arrivals {
		if _, err := b.Arrive(arrivals[i]); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(len(arrivals)), nil
}

// slateRun replays the arrival stream serially on a fresh broker — legacy
// scan when slate is false, forced slate path otherwise — and returns ns
// per arrival.
func slateRun(specs []workload.BrokerCampaign, arrivals []broker.Arrival, slate bool) (float64, error) {
	b, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes(), Metrics: obs.NewRegistry(), Slate: slate})
	if err != nil {
		return 0, err
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := range arrivals {
		if _, err := b.Arrive(arrivals[i]); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(len(arrivals)), nil
}

// batchRun replays the arrival stream once on a fresh instrumented broker —
// serially when window is 0, in ArriveBatch windows otherwise — and returns
// ns per arrival.
func batchRun(specs []workload.BrokerCampaign, arrivals []broker.Arrival, window int) (float64, error) {
	b, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes(), Metrics: obs.NewRegistry()})
	if err != nil {
		return 0, err
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	if window == 0 {
		for i := range arrivals {
			if _, err := b.Arrive(arrivals[i]); err != nil {
				return 0, err
			}
		}
	} else {
		for lo := 0; lo < len(arrivals); lo += window {
			hi := lo + window
			if hi > len(arrivals) {
				hi = len(arrivals)
			}
			for _, res := range b.ArriveBatch(arrivals[lo:hi]) {
				if res.Err != nil {
					return 0, res.Err
				}
			}
		}
	}
	elapsed := time.Since(start)
	return float64(elapsed.Nanoseconds()) / float64(len(arrivals)), nil
}

// brokerThroughput replays the op stream across `workers` goroutines against
// a fresh instrumented broker and returns the aggregate operation rate plus
// the merged arrival-latency histogram for quantile reporting.
func brokerThroughput(specs []workload.BrokerCampaign, ops []workload.BrokerOp, workers int) (float64, obs.HistogramSnapshot, error) {
	reg := obs.NewRegistry()
	b, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes(), Metrics: reg})
	if err != nil {
		return 0, obs.HistogramSnapshot{}, err
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			return 0, obs.HistogramSnapshot{}, err
		}
	}
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(ops); i += workers {
				if err := applyOp(b, ops[i]); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if p := firstErr.Load(); p != nil {
		return 0, obs.HistogramSnapshot{}, *p
	}
	lat := reg.FindHistogram("muaa_broker_arrival_seconds").Snapshot()
	if lat.Count == 0 {
		// A degenerate stream (no positive-capacity arrivals) has no
		// latency distribution; report NaN quantiles rather than zeros.
		lat.Sum = math.NaN()
	}
	return float64(len(ops)) / elapsed.Seconds(), lat, nil
}

// jsonSafe zeroes the NaN a degenerate (arrival-free) stream produces, so
// the document always marshals.
func jsonSafe(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return x
}

func applyOp(b *broker.Broker, op workload.BrokerOp) error {
	switch op.Kind {
	case workload.OpArrival:
		_, err := b.Arrive(broker.Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		})
		return err
	case workload.OpTopUp:
		return b.TopUp(op.Campaign, op.Amount)
	case workload.OpPause:
		return b.SetPaused(op.Campaign, op.Paused)
	default:
		b.Stats()
		return nil
	}
}
