package main

// The -json flag: machine-readable results for the perf experiments
// (-exp broker, -exp wal, -exp audit), so successive runs can be committed
// (the BENCH_*.json trajectory) and diffed by tooling instead of by eye.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// benchDoc is the stable top-level schema written by -json. Fields are
// only ever added, never renamed: consumers key on "schema".
type benchDoc struct {
	Schema     string       `json:"schema"` // always "muaa-bench/1"
	Experiment string       `json:"experiment"`
	Timestamp  string       `json:"timestamp"` // RFC3339 UTC
	GitSHA     string       `json:"git_sha,omitempty"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Scale      float64      `json:"scale"`
	Seed       int64        `json:"seed"`
	Points     []benchPoint `json:"points"`
}

// benchPoint is one row of a sweep. The broker scaling sweep fills the
// goroutines/throughput/quantile fields; the WAL A/B fills the
// mean/best/overhead fields. ns_per_op is common to both.
type benchPoint struct {
	Series     string `json:"series"` // "broker_scaling" | "broker_batch" | "broker_slate" | "obs_sample" | "wal_overhead" | "audit_replay"
	Label      string `json:"label"`
	Goroutines int    `json:"goroutines,omitempty"`
	BatchSize  int    `json:"batch_size,omitempty"`
	// Capacity is the per-arrival slot count a_i of a broker_slate arm.
	Capacity    int     `json:"capacity,omitempty"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	P50Us       float64 `json:"p50_us,omitempty"`
	P95Us       float64 `json:"p95_us,omitempty"`
	P99Us       float64 `json:"p99_us,omitempty"`
	BestNsPerOp float64 `json:"best_ns_per_op,omitempty"`
	OverheadPct float64 `json:"overhead_pct,omitempty"`

	// The audit replay sweep (-exp audit) fills these.
	WALBytes       int64   `json:"wal_bytes,omitempty"`
	Arrivals       int     `json:"arrivals,omitempty"`
	GreedyMs       float64 `json:"greedy_ms,omitempty"`
	ReconMs        float64 `json:"recon_ms,omitempty"`
	EmpiricalRatio float64 `json:"empirical_ratio,omitempty"`

	// The pacing controller sweep (-exp pacing) additionally fills these.
	FinalBoost float64 `json:"final_boost,omitempty"`
	Epochs     int64   `json:"epochs,omitempty"`
}

func newBenchDoc(exp string, scale float64, seed int64) *benchDoc {
	return &benchDoc{
		Schema:     "muaa-bench/1",
		Experiment: exp,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Seed:       seed,
	}
}

// gitSHA best-effort resolves the current commit; empty when not in a git
// checkout (or git is absent) — the field is omitempty for that case.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// writeJSON renders the document (indented, trailing newline) to path.
func (d *benchDoc) writeJSON(path string) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding bench JSON: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
