// Command muaa-bench regenerates the paper's tables and figures. Each
// experiment prints the same two panels the paper plots — overall utility
// and running time per approach — as aligned text (default), CSV or
// terminal bar charts.
//
// Usage:
//
//	muaa-bench -exp fig3 [-scale 0.1] [-csv|-chart] [-workers 4] [-repeats 5] [-seed 42]
//	muaa-bench -exp all -scale 0.05
//
// Experiments: e1 (worked example), fig3 (budgets), fig4 (radii),
// fig5 (capacities), fig6 (view probabilities), fig7 (customer scaling),
// fig8 (vendor scaling), a1 (threshold ablation), a2 (g sweep), a3 (RECON
// backend ablation), a4 (ratio study), a5 (safe regions), a6 (micro-batch
// windows), a7 (day-over-day tuning), all.
//
// Beyond the paper, `-exp broker` sweeps goroutine counts over the sharded
// live broker and prints its throughput scaling curve (-workers caps the
// sweep; see DESIGN.md's concurrency model section):
//
//	muaa-bench -exp broker -scale 0.1 -workers 8
//
// `-exp slate` prices the slate scan: an interleaved A/B of the legacy
// serial scan against the forced slate path at slot capacities a_i ∈
// {1, 2, 4} on a pure-arrival fixed-cost stream (the a_i = 1 arm measures
// pure slot-fill overhead on the workload where both paths decide
// identically; it also runs as the tail of -exp broker, so BENCH_broker.json
// carries the series):
//
//	muaa-bench -exp slate -scale 0.1 -json slate.json
//
// `-exp wal` measures the durability tax: an interleaved A/B of the serial
// broker hot path with the write-ahead log off and on (-repeats sets the
// round count):
//
//	muaa-bench -exp wal -scale 0.1 -repeats 5
//
// `-exp audit` times the offline quality audit (muaa-audit's replay path)
// against the WAL size it reads, greedy oracle vs RECON, at three stream
// sizes:
//
//	muaa-bench -exp audit -scale 0.05 -json BENCH_audit.json
//
// `-exp pacing` replays the deterministic diurnal pacing scenario at three
// stream sizes, controller-off vs controller-on, and reports each arm's
// empirical competitive ratio (the committed BENCH_pacing.json pins the
// pair per commit):
//
//	muaa-bench -exp pacing -scale 0.05 -json BENCH_pacing.json
//
// The perf experiments accept `-json out.json` to additionally write the
// results in the stable muaa-bench/1 schema (ns/op, latency quantiles,
// config, git SHA, timestamp) — the format the committed BENCH_*.json
// trajectory files use:
//
//	muaa-bench -exp broker -scale 0.05 -json BENCH_broker.json
//
// -scale shrinks entity counts for quick runs; 1.0 reproduces the paper's
// sizes (m = 10,000 / n = 500 defaults; fig7 up to m = 100,000). -repeats N
// replicates each sweep under N seeds and reports means.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"muaa/internal/buildinfo"
	"muaa/internal/experiment"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: e1, fig3..fig8, a1..a8, all")
		scale   = flag.Float64("scale", 1.0, "entity-count scale factor in (0,1]")
		csv     = flag.Bool("csv", false, "emit CSV instead of text tables")
		chart   = flag.Bool("chart", false, "render utility panels as terminal bar charts")
		md      = flag.Bool("md", false, "emit Markdown tables")
		workers = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		repeats = flag.Int("repeats", 1, "replicate each sweep under N seeds and report means")
		seed    = flag.Int64("seed", 42, "master random seed")
		jsonOut = flag.String("json", "", "also write machine-readable results to this path (-exp broker/wal only)")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("muaa-bench"))
		return
	}
	if err := run(os.Stdout, *exp, *scale, *csv, *chart, *md, *workers, *repeats, *seed, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "muaa-bench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, exp string, scale float64, csv, chart, md bool, workers, repeats int, seed int64, jsonOut string) error {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("scale %g outside (0,1]", scale)
	}
	isBroker, isWAL := strings.EqualFold(exp, "broker"), strings.EqualFold(exp, "wal")
	isAudit, isPacing := strings.EqualFold(exp, "audit"), strings.EqualFold(exp, "pacing")
	isSlate := strings.EqualFold(exp, "slate")
	if jsonOut != "" && !isBroker && !isWAL && !isAudit && !isPacing && !isSlate {
		return fmt.Errorf("-json is supported for -exp broker, -exp wal, -exp audit, -exp pacing and -exp slate only")
	}
	st := experiment.DefaultSettings()
	st.Seed = seed
	if scale < 1 {
		st = st.Scale(scale)
	}
	format := experiment.Text
	picked := 0
	for _, on := range []bool{csv, chart, md} {
		if on {
			picked++
		}
	}
	if picked > 1 {
		return fmt.Errorf("-csv, -chart and -md are mutually exclusive")
	}
	switch {
	case csv:
		format = experiment.CSVFormat
	case chart:
		format = experiment.ChartFormat
	case md:
		format = experiment.MarkdownFormat
	}
	if isBroker || isWAL || isAudit || isPacing || isSlate {
		if chart || md {
			return fmt.Errorf("-exp %s supports text and -csv output only", strings.ToLower(exp))
		}
		var doc *benchDoc
		if jsonOut != "" {
			doc = newBenchDoc(strings.ToLower(exp), scale, seed)
		}
		var err error
		switch {
		case isBroker:
			err = runBrokerScaling(w, scale, workers, seed, csv, doc)
		case isSlate:
			err = runBrokerSlate(w, scale, seed, csv, doc)
		case isWAL:
			err = runWALOverhead(w, scale, seed, csv, repeats, doc)
		case isPacing:
			err = runPacing(w, scale, seed, csv, doc)
		default:
			err = runAuditReplay(w, scale, seed, csv, workers, doc)
		}
		if err != nil {
			return err
		}
		if doc != nil {
			return doc.writeJSON(jsonOut)
		}
		return nil
	}
	if strings.EqualFold(exp, "all") {
		return experiment.RunAll(w, st, workers, repeats, format)
	}
	return experiment.RunByID(w, exp, st, workers, repeats, format)
}
