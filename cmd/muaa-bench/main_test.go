package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "a2", 0.02, false, false, false, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Threshold Base g") {
		t.Errorf("missing experiment output:\n%s", buf.String())
	}
}

func TestRunFormats(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig8", 0.02, true, false, false, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,x,label") {
		t.Error("CSV output malformed")
	}
	buf.Reset()
	if err := run(&buf, "fig8", 0.02, false, true, false, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "█") && !strings.Contains(buf.String(), "▏") {
		t.Error("chart output has no bars")
	}
	buf.Reset()
	if err := run(&buf, "fig8", 0.02, false, false, true, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| n |") {
		t.Error("markdown output malformed")
	}
}

func TestRunBrokerScaling(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "broker", 0.02, false, false, false, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Broker scaling") || !strings.Contains(out, "ops/sec") {
		t.Errorf("broker sweep output malformed:\n%s", out)
	}
	buf.Reset()
	if err := run(&buf, "broker", 0.02, true, false, false, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "goroutines,ops,seconds,ops_per_sec,speedup") {
		t.Errorf("broker CSV output malformed:\n%s", buf.String())
	}
	if err := run(&buf, "broker", 0.02, false, true, false, 2, 1, 1, ""); err == nil {
		t.Error("-exp broker with -chart must be rejected")
	}
}

// TestRunSlate drives the standalone slate sweep: four arms (serial
// baseline plus slot capacities 1, 2, 4 on the forced slate path), each
// with positive measurements, in both text and -json form.
func TestRunSlate(t *testing.T) {
	var buf bytes.Buffer
	path := filepath.Join(t.TempDir(), "slate.json")
	if err := run(&buf, "slate", 0.02, false, false, false, 2, 1, 1, path); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Slate scan") || !strings.Contains(out, "slate a=4") {
		t.Errorf("slate sweep output malformed:\n%s", out)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Points     []struct {
			Series   string  `json:"series"`
			Label    string  `json:"label"`
			Capacity int     `json:"capacity"`
			NsPerOp  float64 `json:"ns_per_op"`
			Speedup  float64 `json:"speedup"`
		} `json:"points"`
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "slate" {
		t.Fatalf("experiment %q", doc.Experiment)
	}
	wantArms := []struct {
		series   string
		label    string
		capacity int
	}{
		{"broker_slate", "serial", 1}, {"broker_slate", "slate a=1", 1},
		{"broker_slate", "slate a=2", 2}, {"broker_slate", "slate a=4", 4},
		// The sampler-overhead A/B rides the tail of the slate sweep, the
		// same way slate rides the tail of -exp broker.
		{"obs_sample", "off", 0}, {"obs_sample", "every=5s", 0}, {"obs_sample", "every=50ms", 0},
	}
	if len(doc.Points) != len(wantArms) {
		t.Fatalf("slate sweep produced %d points, want %d", len(doc.Points), len(wantArms))
	}
	for i, p := range doc.Points {
		if p.Series != wantArms[i].series || p.Label != wantArms[i].label || p.Capacity != wantArms[i].capacity {
			t.Errorf("slate point %d malformed: %+v", i, p)
		}
		if p.NsPerOp <= 0 || p.Speedup <= 0 {
			t.Errorf("slate point %d has empty measurements: %+v", i, p)
		}
	}
	buf.Reset()
	if err := run(&buf, "slate", 0.02, true, false, false, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "arm,capacity,rounds,arrivals") {
		t.Errorf("slate CSV output malformed:\n%s", buf.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig8", 0, false, false, false, 2, 1, 1, ""); err == nil {
		t.Error("scale 0 must be rejected")
	}
	if err := run(&buf, "fig8", 2, false, false, false, 2, 1, 1, ""); err == nil {
		t.Error("scale > 1 must be rejected")
	}
	if err := run(&buf, "fig8", 0.02, true, true, false, 2, 1, 1, ""); err == nil {
		t.Error("conflicting formats must be rejected")
	}
	if err := run(&buf, "bogus", 0.02, false, false, false, 2, 1, 1, ""); err == nil {
		t.Error("unknown experiment must be rejected")
	}
}

func TestRunAllScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	var buf bytes.Buffer
	if err := run(&buf, "all", 0.02, false, false, false, 2, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"E1", "Fig3", "Fig8", "A1", "A7"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("all-run missing %s", frag)
		}
	}
}

// TestRunJSONOutput pins the muaa-bench/1 document schema: a broker sweep
// with -json writes a decodable trajectory file whose points carry the
// throughput and latency fields, and the flag is rejected outside the perf
// experiments.
func TestRunJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run(&buf, "broker", 0.02, false, false, false, 2, 1, 1, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string  `json:"schema"`
		Experiment string  `json:"experiment"`
		Timestamp  string  `json:"timestamp"`
		GoVersion  string  `json:"go_version"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		Scale      float64 `json:"scale"`
		Seed       int64   `json:"seed"`
		Points     []struct {
			Series      string  `json:"series"`
			Label       string  `json:"label"`
			Goroutines  int     `json:"goroutines"`
			BatchSize   int     `json:"batch_size"`
			Capacity    int     `json:"capacity"`
			Ops         int     `json:"ops"`
			NsPerOp     float64 `json:"ns_per_op"`
			BestNsPerOp float64 `json:"best_ns_per_op"`
			OpsPerSec   float64 `json:"ops_per_sec"`
			Speedup     float64 `json:"speedup"`
			P99Us       float64 `json:"p99_us"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bench JSON does not decode: %v\n%s", err, raw)
	}
	if doc.Schema != "muaa-bench/1" || doc.Experiment != "broker" {
		t.Fatalf("schema/experiment = %q/%q", doc.Schema, doc.Experiment)
	}
	if _, err := time.Parse(time.RFC3339, doc.Timestamp); err != nil {
		t.Errorf("timestamp %q not RFC3339: %v", doc.Timestamp, err)
	}
	if doc.GoVersion == "" || doc.GOMAXPROCS < 1 || doc.Scale != 0.02 || doc.Seed != 1 {
		t.Errorf("run config not captured: %+v", doc)
	}
	// -exp broker emits the goroutine-scaling sweep followed by the
	// batch-ingestion and slate sweeps; all ride the same schema with their
	// own per-series fields.
	var scaling, batch, slate, obsn int
	for i, p := range doc.Points {
		switch p.Series {
		case "broker_scaling":
			if p.Label == "" || p.Goroutines != 1<<i {
				t.Errorf("scaling point %d malformed: %+v", i, p)
			}
			if p.Ops <= 0 || p.NsPerOp <= 0 || p.OpsPerSec <= 0 || p.Speedup <= 0 || p.P99Us <= 0 {
				t.Errorf("scaling point %d has empty measurements: %+v", i, p)
			}
			scaling++
		case "broker_batch":
			if batch == 0 {
				if p.Label != "serial" || p.BatchSize != 0 {
					t.Errorf("first batch point must be the serial baseline: %+v", p)
				}
			} else if p.Label == "" || p.BatchSize <= 0 {
				t.Errorf("batch point %d malformed: %+v", i, p)
			}
			if p.Ops <= 0 || p.NsPerOp <= 0 || p.BestNsPerOp <= 0 || p.Speedup <= 0 {
				t.Errorf("batch point %d has empty measurements: %+v", i, p)
			}
			batch++
		case "broker_slate":
			if slate == 0 && p.Label != "serial" {
				t.Errorf("first slate point must be the serial baseline: %+v", p)
			}
			if p.Capacity <= 0 || p.Ops <= 0 || p.NsPerOp <= 0 || p.BestNsPerOp <= 0 || p.Speedup <= 0 {
				t.Errorf("slate point %d has empty measurements: %+v", i, p)
			}
			slate++
		case "obs_sample":
			if obsn == 0 && p.Label != "off" {
				t.Errorf("first obs point must be the sampler-off baseline: %+v", p)
			}
			if p.Ops <= 0 || p.NsPerOp <= 0 || p.BestNsPerOp <= 0 || p.Speedup <= 0 {
				t.Errorf("obs point %d has empty measurements: %+v", i, p)
			}
			obsn++
		default:
			t.Errorf("point %d has unknown series %q", i, p.Series)
		}
	}
	if scaling < 2 {
		t.Fatalf("scaling sweep produced %d points, want the 1- and 2-goroutine rows", scaling)
	}
	if batch < 2 {
		t.Fatalf("batch sweep produced %d points, want serial plus windowed arms", batch)
	}
	if slate != 4 {
		t.Fatalf("slate sweep produced %d points, want serial plus a_i ∈ {1,2,4} arms", slate)
	}
	if obsn != 3 {
		t.Fatalf("obs sweep produced %d points, want off + 5s + 50ms arms", obsn)
	}

	// The WAL A/B emits the mean/best/overhead arm rows under the same schema.
	walPath := filepath.Join(t.TempDir(), "wal.json")
	if err := run(&buf, "wal", 0.02, false, false, false, 2, 1, 1, walPath); err != nil {
		t.Fatal(err)
	}
	var walDoc struct {
		Points []struct {
			Series      string  `json:"series"`
			Label       string  `json:"label"`
			NsPerOp     float64 `json:"ns_per_op"`
			BestNsPerOp float64 `json:"best_ns_per_op"`
		} `json:"points"`
	}
	walRaw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(walRaw, &walDoc); err != nil {
		t.Fatal(err)
	}
	if len(walDoc.Points) != 3 {
		t.Fatalf("WAL A/B produced %d points, want 3 arms", len(walDoc.Points))
	}
	for _, p := range walDoc.Points {
		if p.Series != "wal_overhead" || p.NsPerOp <= 0 || p.BestNsPerOp <= 0 {
			t.Errorf("WAL point malformed: %+v", p)
		}
	}

	// The audit replay sweep emits one row per WAL size with the solve
	// timings and the achieved ratio.
	auditPath := filepath.Join(t.TempDir(), "audit.json")
	if err := run(&buf, "audit", 0.02, false, false, false, 2, 1, 1, auditPath); err != nil {
		t.Fatal(err)
	}
	var auditDoc struct {
		Points []struct {
			Series         string  `json:"series"`
			Ops            int     `json:"ops"`
			WALBytes       int64   `json:"wal_bytes"`
			Arrivals       int     `json:"arrivals"`
			GreedyMs       float64 `json:"greedy_ms"`
			ReconMs        float64 `json:"recon_ms"`
			EmpiricalRatio float64 `json:"empirical_ratio"`
		} `json:"points"`
	}
	auditRaw, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(auditRaw, &auditDoc); err != nil {
		t.Fatal(err)
	}
	if len(auditDoc.Points) != 3 {
		t.Fatalf("audit sweep produced %d points, want 3 sizes", len(auditDoc.Points))
	}
	for i, p := range auditDoc.Points {
		if p.Series != "audit_replay" || p.Ops <= 0 || p.WALBytes <= 0 || p.Arrivals <= 0 {
			t.Errorf("audit point %d malformed: %+v", i, p)
		}
		if p.GreedyMs <= 0 || p.ReconMs <= 0 {
			t.Errorf("audit point %d missing timings: %+v", i, p)
		}
		if !(p.EmpiricalRatio > 0 && p.EmpiricalRatio <= 1) {
			t.Errorf("audit point %d ratio %g outside (0, 1]", i, p.EmpiricalRatio)
		}
		if i > 0 && p.WALBytes <= auditDoc.Points[i-1].WALBytes {
			t.Errorf("audit sweep WAL sizes not increasing: %+v", auditDoc.Points)
		}
	}

	// -json outside the perf experiments is a flag error.
	if err := run(&buf, "fig8", 0.02, false, false, false, 2, 1, 1, path); err == nil {
		t.Error("-json with a paper experiment must be rejected")
	}
}
