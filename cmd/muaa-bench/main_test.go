package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "a2", 0.02, false, false, false, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Threshold Base g") {
		t.Errorf("missing experiment output:\n%s", buf.String())
	}
}

func TestRunFormats(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig8", 0.02, true, false, false, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,x,label") {
		t.Error("CSV output malformed")
	}
	buf.Reset()
	if err := run(&buf, "fig8", 0.02, false, true, false, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "█") && !strings.Contains(buf.String(), "▏") {
		t.Error("chart output has no bars")
	}
	buf.Reset()
	if err := run(&buf, "fig8", 0.02, false, false, true, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| n |") {
		t.Error("markdown output malformed")
	}
}

func TestRunBrokerScaling(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "broker", 0.02, false, false, false, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Broker scaling") || !strings.Contains(out, "ops/sec") {
		t.Errorf("broker sweep output malformed:\n%s", out)
	}
	buf.Reset()
	if err := run(&buf, "broker", 0.02, true, false, false, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "goroutines,ops,seconds,ops_per_sec,speedup") {
		t.Errorf("broker CSV output malformed:\n%s", buf.String())
	}
	if err := run(&buf, "broker", 0.02, false, true, false, 2, 1, 1); err == nil {
		t.Error("-exp broker with -chart must be rejected")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig8", 0, false, false, false, 2, 1, 1); err == nil {
		t.Error("scale 0 must be rejected")
	}
	if err := run(&buf, "fig8", 2, false, false, false, 2, 1, 1); err == nil {
		t.Error("scale > 1 must be rejected")
	}
	if err := run(&buf, "fig8", 0.02, true, true, false, 2, 1, 1); err == nil {
		t.Error("conflicting formats must be rejected")
	}
	if err := run(&buf, "bogus", 0.02, false, false, false, 2, 1, 1); err == nil {
		t.Error("unknown experiment must be rejected")
	}
}

func TestRunAllScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	var buf bytes.Buffer
	if err := run(&buf, "all", 0.02, false, false, false, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"E1", "Fig3", "Fig8", "A1", "A7"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("all-run missing %s", frag)
		}
	}
}
