package main

// The pacing controller experiment (-exp pacing): the deterministic
// simulation harness (internal/simulate.PacingRun) replays the diurnal
// pacing scenario at three stream sizes, controller-off vs controller-on,
// and reports the empirical competitive ratio each arm reaches together
// with the run time. The committed BENCH_pacing.json trajectory file pins
// the off/on ratio pair per commit: the controller's whole value
// proposition is the on-column staying above the off-column as the stream
// outgrows the budgets.
//
// The scenario deliberately differs from -exp audit's default mix: arrivals
// carry a monotone day clock (the pace law's contract), and the stream has
// no pause or top-up ops — the audit oracle ignores pauses by design, so a
// pause-heavy stream depresses the ratio for reasons no admission policy
// can fix (see DESIGN.md's pacing section for the measurement).

import (
	"fmt"
	"io"
	"time"

	"muaa/internal/pacing"
	"muaa/internal/simulate"
)

// runPacing sweeps the diurnal scenario at 1×, 3× and 9× the scale-sized op
// stream, controller-off then controller-on per size. A non-nil doc also
// collects each arm for -json output.
func runPacing(w io.Writer, scale float64, seed int64, csv bool, doc *benchDoc) error {
	baseOps := int(20000 * scale)
	if baseOps < 500 {
		baseOps = 500
	}
	if csv {
		fmt.Fprintln(w, "ops,arm,arrivals,empirical_ratio,online_utility,final_boost,epochs,ms")
	} else {
		fmt.Fprintf(w, "Pacing controller — diurnal scenario, off vs on (defaults: %s)\n", pacing.Default())
		fmt.Fprintf(w, "%10s %5s %10s %8s %10s %8s %8s %10s\n",
			"ops", "arm", "arrivals", "ratio", "online", "boost", "epochs", "ms")
	}
	for _, mult := range []int{1, 3, 9} {
		totalOps := baseOps * mult
		for _, on := range []bool{false, true} {
			cfg := simulate.PacingConfig{
				Ops:             totalOps,
				Ramp:            simulate.RampDiurnal,
				GuaranteedEvery: 4,
				Seed:            seed,
			}
			arm := "off"
			if on {
				d := pacing.Default()
				cfg.Controller = &d
				arm = "on"
			}
			start := time.Now()
			res, err := simulate.PacingRun(cfg)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			if res.MaxOverspend > 0 {
				return fmt.Errorf("pacing %s ops=%d overspent budget by %g", arm, totalOps, res.MaxOverspend)
			}
			ms := float64(elapsed.Nanoseconds()) / 1e6
			if csv {
				fmt.Fprintf(w, "%d,%s,%d,%.6f,%.3f,%.4f,%d,%.3f\n",
					totalOps, arm, res.Arrivals, res.Ratio, res.OnlineUtility, res.FinalBoost, res.Epochs, ms)
			} else {
				fmt.Fprintf(w, "%10d %5s %10d %8.4f %10.1f %8.3g %8d %10.2f\n",
					totalOps, arm, res.Arrivals, res.Ratio, res.OnlineUtility, res.FinalBoost, res.Epochs, ms)
			}
			if doc != nil {
				doc.Points = append(doc.Points, benchPoint{
					Series:         "pacing_" + arm,
					Label:          fmt.Sprintf("ops=%d/%s", totalOps, arm),
					Ops:            totalOps,
					NsPerOp:        float64(elapsed.Nanoseconds()) / float64(totalOps),
					Arrivals:       int(res.Arrivals),
					EmpiricalRatio: res.Ratio,
					FinalBoost:     res.FinalBoost,
					Epochs:         res.Epochs,
				})
			}
		}
	}
	return nil
}
