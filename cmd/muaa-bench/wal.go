package main

// The WAL overhead experiment (-exp wal): an interleaved A/B/C of the
// serial broker hot path across durability settings. Each round replays the
// same deterministic mixed op stream once per arm — plain in-memory broker,
// durable broker in buffered mode (group-commit write() to the OS, fsync
// left to the kernel: -wal-sync none), and durable broker fsyncing every
// group commit (-wal-sync flush, the serving default) — alternating within
// the round so frequency scaling and cache state hit every arm equally.
// The table reports mean and best ns/op per arm and the relative overhead
// against the in-memory baseline, the numbers the CHANGES.md durability
// entry records. The fsync arm is bounded by the device's fsync latency,
// not by the broker; buffered mode is the logging cost itself.

import (
	"fmt"
	"io"
	"os"
	"time"

	"muaa/internal/broker"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

type walArm struct {
	name    string
	durable bool
	sync    wal.SyncPolicy
}

// runWALOverhead drives the A/B for `rounds` rounds (minimum 3; the
// -repeats flag raises it) over a scale-sized op stream. A non-nil doc
// also collects each arm for -json output.
func runWALOverhead(w io.Writer, scale float64, seed int64, csv bool, rounds int, doc *benchDoc) error {
	if rounds < 3 {
		rounds = 3
	}
	campaigns := int(256 * scale)
	if campaigns < 16 {
		campaigns = 16
	}
	totalOps := int(200000 * scale)
	if totalOps < 20000 {
		totalOps = 20000
	}
	specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, totalOps, seed))
	if err != nil {
		return err
	}
	arms := []walArm{
		{name: "wal-off"},
		{name: "wal-buffered", durable: true, sync: wal.SyncNone},
		{name: "wal-fsync", durable: true, sync: wal.SyncOnFlush},
	}
	samples := make([][]float64, len(arms))
	for r := 0; r < rounds; r++ {
		for i, arm := range arms {
			ns, err := walSerialRun(specs, ops, arm)
			if err != nil {
				return err
			}
			samples[i] = append(samples[i], ns)
		}
	}
	baseMean, _ := meanMin(samples[0])
	if csv {
		fmt.Fprintln(w, "mode,rounds,ops,mean_ns_per_op,best_ns_per_op,overhead_pct")
	} else {
		fmt.Fprintf(w, "WAL overhead — %d campaigns, %d mixed ops (90%% arrivals), %d interleaved rounds\n",
			campaigns, totalOps, rounds)
		fmt.Fprintf(w, "%14s %14s %14s %12s\n", "mode", "mean ns/op", "best ns/op", "overhead")
	}
	for i, arm := range arms {
		mean, best := meanMin(samples[i])
		overhead := (mean/baseMean - 1) * 100
		if doc != nil {
			doc.Points = append(doc.Points, benchPoint{
				Series:      "wal_overhead",
				Label:       arm.name,
				Ops:         totalOps,
				NsPerOp:     mean,
				BestNsPerOp: best,
				OverheadPct: overhead,
			})
		}
		if csv {
			fmt.Fprintf(w, "%s,%d,%d,%.1f,%.1f,%.1f\n", arm.name, rounds, totalOps, mean, best, overhead)
		} else if i == 0 {
			fmt.Fprintf(w, "%14s %14.1f %14.1f %12s\n", arm.name, mean, best, "—")
		} else {
			fmt.Fprintf(w, "%14s %14.1f %14.1f %11.1f%%\n", arm.name, mean, best, overhead)
		}
	}
	return nil
}

// walSerialRun replays the stream single-threaded and returns ns per op.
// The durable arms time only the serving path (group-commit appends); Close
// — final flush, fsync, snapshot — happens after the clock stops, as it
// does at process shutdown.
func walSerialRun(specs []workload.BrokerCampaign, ops []workload.BrokerOp, arm walArm) (float64, error) {
	cfg := broker.Config{AdTypes: workload.DefaultAdTypes()}
	if arm.durable {
		dir, err := os.MkdirTemp("", "muaa-walbench-")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
		cfg.WAL = wal.Options{Sync: arm.sync}
	}
	b, err := broker.New(cfg)
	if err != nil {
		return 0, err
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for _, op := range ops {
		if err := applyOp(b, op); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if err := b.Close(); err != nil {
		return 0, err
	}
	return float64(elapsed.Nanoseconds()) / float64(len(ops)), nil
}

func meanMin(xs []float64) (mean, min float64) {
	min = xs[0]
	for _, x := range xs {
		mean += x
		if x < min {
			min = x
		}
	}
	return mean / float64(len(xs)), min
}
