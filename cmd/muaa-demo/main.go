// Command muaa-demo walks through the paper's worked Example 1 (Section I):
// it prints the ad-type catalog (Table I), the distance/preference table
// (Table II), the utilities of the paper's two discussed solutions, and what
// each algorithm in this repository achieves on the instance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"muaa/internal/buildinfo"
	"muaa/internal/experiment"
	"muaa/internal/workload"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("muaa-demo"))
		return
	}
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "muaa-demo:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	p := workload.Example1()
	fmt.Fprintln(w, "MUAA worked example (Cheng et al., ICDE 2019, Example 1)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Table I — ad types:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "type\tprice\teffectiveness")
	for _, t := range p.AdTypes {
		fmt.Fprintf(tw, "%s\t%g $\t%g\n", t.Name, t.Cost, t.Effect)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Table II — utility λ = p·β·pref/d per valid pair (PL type):")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pair\tin range\tλ(TL)\tλ(PL)")
	for vj := int32(0); vj < 3; vj++ {
		for ui := int32(0); ui < 3; ui++ {
			if !p.InRange(ui, vj) {
				fmt.Fprintf(tw, "(v%d, u%d)\tno\t-\t-\n", vj+1, ui+1)
				continue
			}
			fmt.Fprintf(tw, "(v%d, u%d)\tyes\t%.6f\t%.6f\n", vj+1, ui+1,
				p.Utility(ui, vj, 0), p.Utility(ui, vj, 1))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	res, err := experiment.RunExample1()
	if err != nil {
		return err
	}
	return experiment.RenderExample1(w, res)
}
