package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDemoOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"Table I", "Photo Link", "Table II",
		"0.035709", // the paper's possible solution
		"0.050443", // the paper's claimed optimum
		"0.052043", // the true optimum
		"EXACT", "RECON", "ONLINE",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("demo output missing %q", frag)
		}
	}
}
