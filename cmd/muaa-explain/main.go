// Command muaa-explain asks a running muaa-serve "why did (or didn't) this
// arrival get these offers?" — the operator's per-request drill-down into
// the O-AFA decision. It posts a hypothetical arrival to the debug
// listener's POST /v1/debug/explain (a read-only replay of the real
// gather/scan under the covering stripe locks: nothing is committed, no γ
// observation, no spend) and renders the per-candidate verdicts: which
// funnel gate disposed of each candidate, the threshold it faced, and the
// per-ad-type bids.
//
//	muaa-explain -addr http://127.0.0.1:6060 -x 0.5 -y 0.5 -capacity 2 \
//	    -viewprob 0.7 -interests 0.9,0.1,0.3 -hour 12
//
// Output is one line per gathered candidate (campaign id, disposition,
// threshold, best bid) plus a summary header; -json dumps the raw
// ExplainReport instead, for scripts. Typical triage: a campaign's funnel
// (GET /v1/debug/campaigns/{id}/funnel) shows below_threshold piling up →
// muaa-explain at a representative arrival shows exactly how far its bids
// fall below φ(δ). See docs/OPERATIONS.md "Decision funnel & explain".
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"muaa/internal/broker"
	"muaa/internal/buildinfo"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:6060", "muaa-serve debug base URL (the -debug-addr listener)")
		x         = flag.Float64("x", 0.5, "arrival location x")
		y         = flag.Float64("y", 0.5, "arrival location y")
		capacity  = flag.Int("capacity", 1, "offer capacity of the hypothetical arrival")
		viewProb  = flag.Float64("viewprob", 1, "view probability in [0, 1]")
		interests = flag.String("interests", "", "comma-separated interest vector (must match campaign tag dimensionality)")
		hour      = flag.Float64("hour", 12, "arrival hour in [0, 24)")
		asJSON    = flag.Bool("json", false, "dump the raw explain report as JSON")
		timeout   = flag.Duration("timeout", 5*time.Second, "HTTP timeout")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("muaa-explain"))
		return
	}
	iv, err := parseVector(*interests)
	if err != nil {
		fatal(err)
	}
	req := map[string]any{
		"loc":      map[string]float64{"x": *x, "y": *y},
		"capacity": *capacity,
		"viewProb": *viewProb,
		"hour":     *hour,
	}
	if iv != nil {
		req["interests"] = iv
	}
	body, err := json.Marshal(req)
	if err != nil {
		fatal(err)
	}
	hc := &http.Client{Timeout: *timeout}
	resp, err := hc.Post(strings.TrimRight(*addr, "/")+"/v1/debug/explain",
		"application/json", bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(raw))))
	}
	if *asJSON {
		os.Stdout.Write(raw)
		if len(raw) == 0 || raw[len(raw)-1] != '\n' {
			fmt.Println()
		}
		return
	}
	var rep broker.ExplainReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		fatal(fmt.Errorf("decoding explain report: %w", err))
	}
	render(os.Stdout, &rep)
}

func parseVector(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -interests element %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// render prints the human view: a summary header, then one line per
// candidate in scan order with its disposition verdict.
func render(w io.Writer, rep *broker.ExplainReport) {
	path := "legacy"
	if rep.Slate {
		path = "slate"
	}
	fmt.Fprintf(w, "path=%s stripes=[%d,%d] gathered=%d offered=%d boost=%g γ=[%g, %g] g=%g\n",
		path, rep.StripeLo, rep.StripeHi, rep.Gathered, rep.Offered,
		rep.Boost, rep.GammaMin, rep.GammaMax, rep.G)
	for i := range rep.Candidates {
		c := &rep.Candidates[i]
		fmt.Fprintf(w, "campaign %-6d %-18s", c.Campaign, c.Disposition)
		if len(c.Bids) > 0 {
			fmt.Fprintf(w, " φ=%-12.6g δ=%-8.4g", c.Threshold, c.Delta)
			best := bestBid(c)
			if best != nil {
				fmt.Fprintf(w, " best=%s eff=%.6g", best.Name, best.Efficiency)
			}
		}
		if c.Offer != nil {
			fmt.Fprintf(w, " → offer %s slot=%d cost=%g", c.Offer.Name, c.Offer.Slot, c.Offer.Cost)
			if c.Offer.ChargeECPM > 0 {
				fmt.Fprintf(w, " charge_ecpm=%g", c.Offer.ChargeECPM)
			}
		}
		fmt.Fprintln(w)
	}
}

// bestBid picks the candidate's chosen bid, falling back to its highest
// evaluated efficiency (the bid that came closest to admission).
func bestBid(c *broker.ExplainCandidate) *broker.ExplainBid {
	var best *broker.ExplainBid
	for i := range c.Bids {
		b := &c.Bids[i]
		if b.Chosen {
			return b
		}
		if b.Efficiency > 0 && (best == nil || b.Efficiency > best.Efficiency) {
			best = b
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "muaa-explain:", err)
	os.Exit(1)
}
