// Command muaa-gen emits MUAA datasets as JSON for external tooling: either
// a synthetic problem instance (Section V-A's generator) or a simulated
// Foursquare-style check-in corpus (the real-data substitute).
//
// Usage:
//
//	muaa-gen -kind synthetic -customers 10000 -vendors 500 -seed 42 > problem.json
//	muaa-gen -kind checkin -users 500 -venues 2000 -checkins 50000 > checkins.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"muaa/internal/buildinfo"
	"muaa/internal/checkin"
	"muaa/internal/persist"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "synthetic", "dataset kind: synthetic or checkin")
		customers = flag.Int("customers", 10000, "synthetic: number of customers")
		vendors   = flag.Int("vendors", 500, "synthetic: number of vendors")
		users     = flag.Int("users", 200, "checkin: number of users")
		venues    = flag.Int("venues", 1000, "checkin: number of venues")
		checkins  = flag.Int("checkins", 20000, "checkin: number of check-ins")
		minCheck  = flag.Int("min-checkins", 10, "checkin: venue filter threshold (paper: 10)")
		seed      = flag.Int64("seed", 42, "random seed")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("muaa-gen"))
		return
	}
	if err := run(os.Stdout, *kind, *customers, *vendors, *users, *venues, *checkins, *minCheck, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "muaa-gen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, kind string, customers, vendors, users, venues, checkins, minCheck int, seed int64) error {
	switch kind {
	case "synthetic":
		p, err := workload.Synthetic(workload.Config{
			Customers: customers,
			Vendors:   vendors,
			Budget:    stats.Range{Lo: 10, Hi: 20},
			Radius:    stats.Range{Lo: 0.02, Hi: 0.03},
			Capacity:  stats.Range{Lo: 1, Hi: 6},
			ViewProb:  stats.Range{Lo: 0.1, Hi: 0.5},
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		// persist's versioned format round-trips through persist.LoadProblem.
		return persist.SaveProblem(w, p)
	case "checkin":
		ds, err := checkin.Generate(checkin.Config{
			Users:    users,
			Venues:   venues,
			Checkins: checkins,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		return persist.SaveDataset(w, ds.FilterMinCheckins(minCheck))
	default:
		return fmt.Errorf("unknown kind %q (want synthetic or checkin)", kind)
	}
}
