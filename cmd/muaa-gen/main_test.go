package main

import (
	"bytes"
	"testing"

	"muaa/internal/persist"
)

func TestRunSyntheticRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "synthetic", 50, 10, 0, 0, 0, 0, 7); err != nil {
		t.Fatal(err)
	}
	p, err := persist.LoadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Customers) != 50 || len(p.Vendors) != 10 {
		t.Errorf("loaded %d customers / %d vendors", len(p.Customers), len(p.Vendors))
	}
}

func TestRunCheckinRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "checkin", 0, 0, 30, 100, 1500, 5, 7); err != nil {
		t.Fatal(err)
	}
	ds, err := persist.LoadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Users != 30 || len(ds.Venues) == 0 || len(ds.Records) == 0 {
		t.Errorf("loaded dataset shape %d/%d/%d", ds.Users, len(ds.Venues), len(ds.Records))
	}
}

func TestRunUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bogus", 0, 0, 0, 0, 0, 0, 1); err == nil {
		t.Error("unknown kind must be rejected")
	}
}
