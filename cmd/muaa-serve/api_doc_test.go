package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muaa/internal/broker"
	"muaa/internal/workload"
)

// TestAPIDocCoversRoutes enumerates every HTTP route this process serves —
// the broker API via its Routes accessor plus the server-level metrics,
// health and debug endpoints — and fails if docs/API.md does not mention
// one. The doc advertises itself as complete; this test makes that claim
// structural: registering a route without documenting it breaks the build.
func TestAPIDocCoversRoutes(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("missing docs/API.md: %v", err)
	}
	text := string(doc)

	b, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	routes := broker.NewAPI(b).Routes()
	if len(routes) == 0 {
		t.Fatal("API reports no routes")
	}
	// Server-level routes mounted outside the broker API (see newServingMux
	// and newDebugServer).
	routes = append(routes,
		"/v1/metrics", "/v1/healthz", "/v1/debug/traces", "/v1/debug/audit",
		"/v1/debug/explain", "/v1/debug/campaigns/{id}/funnel",
		"/debug/pprof/",
	)
	for _, route := range routes {
		if !strings.Contains(text, route) {
			t.Errorf("docs/API.md does not mention route %q", route)
		}
	}

	// The doc's conventions must track the code's actual limits.
	for _, needle := range []string{"1 MiB", "1024", "traceparent", "arrival_batch"} {
		if !strings.Contains(text, needle) {
			t.Errorf("docs/API.md lost the %q contract", needle)
		}
	}
}
