// Command muaa-serve runs the location-based advertising broker as an HTTP
// service — the long-lived system around the paper's online algorithm.
//
//	muaa-serve -addr :8080 -data-dir /var/lib/muaa
//
// The API is versioned under /v1 (the unversioned paths remain as aliases;
// JSON bodies, uniform `{"error":{"code":...,"message":...}}` envelope on
// every failure):
//
//	POST /v1/campaigns            register a vendor campaign → {id}
//	POST /v1/campaigns/{id}/topup add budget (also POST /v1/topup {id,amount})
//	POST /v1/campaigns/{id}/pause pause / resume
//	GET  /v1/campaigns/{id}       live campaign state
//	POST /v1/arrivals             a customer arrival → the ads to deliver now
//	POST /v1/arrivals:batch       an arrival window → per-arrival results (docs/API.md)
//	GET  /v1/stats                broker counters (γ bounds, derived g, spend)
//	GET  /v1/campaigns            list all campaign states
//	GET  /v1/map.svg              the live campaign map as SVG
//	GET  /v1/metrics              Prometheus text exposition (docs/OPERATIONS.md)
//	GET  /v1/healthz              readiness: 200 once recovery finished, 503 before
//
// Example session:
//
//	curl -s localhost:8080/v1/campaigns -H 'Content-Type: application/json' -d '{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}'
//	curl -s localhost:8080/v1/arrivals  -H 'Content-Type: application/json' -d '{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/metrics | grep muaa_broker_arrival_seconds
//
// With -data-dir set the broker is durable: every mutation is written to a
// write-ahead log before it is acknowledged, compacting snapshots bound
// replay time, and a restart rebuilds the exact pre-crash state. While that
// replay is running the server already listens, but broker endpoints
// (including /healthz and /stats) answer 503 with the error envelope so
// load-balancers keep traffic away; /metrics is live from boot. SIGINT or
// SIGTERM drains in-flight requests, flushes and fsyncs the log, writes a
// final snapshot and exits cleanly.
//
// The broker shards campaign state by spatial stripe so arrivals in
// different regions are served in parallel; -shards overrides the
// GOMAXPROCS-scaled default. Every flag and every exported metric is
// documented in docs/OPERATIONS.md.
//
// -debug-addr starts a second, separate listener exposing net/http/pprof
// under /debug/pprof/, the flight recorder under /v1/debug/traces, the
// live quality audit under /v1/debug/audit, the time-series retention ring
// under /v1/debug/timeseries, the SLO watchdog under /v1/debug/slo, the
// read-only arrival explain-replay under POST /v1/debug/explain (wrapped by
// cmd/muaa-explain) and per-campaign decision funnels under
// GET /v1/debug/campaigns/{id}/funnel — opt-in and intended to stay on a
// loopback or otherwise private address; the serving port never exposes
// profiling, traces, audits or history. During WAL recovery every
// /v1/debug/* endpoint answers the same 503 `unavailable` envelope as the
// serving API.
//
// -funnel (default on) attributes every scan disposition to its campaign in
// a bounded-cardinality registry — exact counters up to a cap, a
// space-saving top-k sketch above it — exposed as muaa_funnel_* metrics and
// the funnel endpoint; -funnel=false turns attribution off (the endpoint
// then answers 404 funnel_disabled).
//
// A background sampler snapshots the whole metrics registry every
// -sample-every (counter deltas become rates, gauges are stored as-is,
// histograms as windowed p50/p95/p99) into fixed-capacity rings of
// -sample-capacity points per series — the process's own short-term memory,
// queryable at GET /v1/debug/timeseries and rendered live by cmd/muaa-top.
// -slo arms the burn-rate watchdog over those rings (arrival latency,
// empirical-ratio dips, WAL fsync stalls, escrow growth, runtime runaway;
// see internal/slo): rules fire as structured slo_firing log events,
// muaa_slo_* gauges, and GET /v1/debug/slo.
//
// The broker keeps a sliding window of the last -audit-window arrivals and
// every -audit-every recomputes an offline-oracle quality report off the
// serving path: the empirical competitive ratio, the paper's (ln g + 1)/θ
// bound, counterfactual fixed-threshold regret and per-campaign pacing all
// land as muaa_broker_* gauges on /metrics, and the full report is served at
// GET /v1/debug/audit (?refresh=true forces a recompute). -audit-window 0
// disables live auditing. With -wal-retain (the default) superseded WAL
// segments are kept after compaction so `muaa-audit -data-dir ...` can audit
// the broker's whole life; -wal-retain=false restores reclaiming them.
//
// Every request is traced: the server honors an incoming W3C traceparent
// header (minting IDs otherwise), echoes the resulting traceparent on the
// response, and emits one JSON access-log line per request with the
// trace_id. Completed arrival traces land in a flight recorder sized by
// -trace-capacity, with slow (≥ -trace-slow) and anomalous ones retained
// preferentially. All process logs are structured JSON on stderr (slog);
// nothing in this binary writes through the stdlib global logger.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"muaa/internal/broker"
	"muaa/internal/buildinfo"
	"muaa/internal/obs"
	"muaa/internal/pacing"
	"muaa/internal/slo"
	"muaa/internal/trace"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

// serverOpts carries the flag values into newServer.
type serverOpts struct {
	addr          string
	g, pacing     float64
	shards        int
	dataDir       string // empty = in-memory broker, exactly the old behavior
	walSync       string // flush | always | none (wal.ParseSyncPolicy)
	walFlushEvery time.Duration
	snapshotEvery int
	traceCapacity int           // flight-recorder reservoir size; <= 0 disables tracing
	traceSlow     time.Duration // slow-trace retention threshold; 0 = recorder default
	auditWindow   int           // live-audit arrival window; <= 0 disables auditing
	auditEvery    time.Duration // live-audit recompute cadence; 0 = broker default
	walRetain     bool          // keep superseded WAL segments for full-history audits
	controller    string        // pacing-controller spec ("" = off; see pacing.ParseConfig)
	sampleEvery   time.Duration // time-series sampling cadence; 0 = 5s default, negative disables
	sampleCap     int           // retention-ring points per series; 0 = 360 default
	slo           string        // SLO watchdog spec ("" = off; see slo.ParseConfig)
	funnel        bool          // per-campaign decision-funnel attribution
}

// app is the serving process: an HTTP server whose broker may still be
// recovering. The mux is built once at construction; handlers consult the
// atomic api pointer so the listener can accept probes (answering 503)
// while boot replays the write-ahead log.
type app struct {
	srv      *http.Server
	reg      *obs.Registry
	cfg      broker.Config
	opts     serverOpts
	logger   *slog.Logger
	tracer   *trace.Recorder              // nil when tracing is disabled
	sampler  *obs.Sampler                 // nil when -sample-every is negative
	watchdog atomic.Pointer[slo.Watchdog] // nil when -slo is empty; pointer
	// because the sampler's OnSample hook is installed before the watchdog
	// exists
	api atomic.Pointer[broker.API]
	b   atomic.Pointer[broker.Broker]
}

// newServer validates the flag values and builds the instrumented server.
// logger may be nil (logs are discarded — tests). The broker itself is
// created by boot — synchronously here when no data directory is
// configured (nothing to replay), otherwise by the caller so the listener
// can come up first.
func newServer(o serverOpts, logger *slog.Logger) (*app, error) {
	sync, err := wal.ParseSyncPolicy(o.walSync)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	a := &app{
		reg:    obs.NewRegistry(),
		opts:   o,
		logger: logger,
	}
	obs.RegisterRuntimeMetrics(a.reg)
	buildinfo.Register(a.reg)
	if o.traceCapacity > 0 {
		a.tracer = trace.NewRecorder(trace.RecorderOptions{
			Capacity:      o.traceCapacity,
			SlowThreshold: o.traceSlow,
		})
	}
	if o.sampleEvery >= 0 {
		a.sampler = obs.NewSampler(a.reg, obs.SamplerOptions{
			Every:    o.sampleEvery,
			Capacity: o.sampleCap,
			// The watchdog evaluates on the sampling goroutine, right after
			// the sample that might trip it lands in the rings.
			OnSample: func(now time.Time) {
				if wd := a.watchdog.Load(); wd != nil {
					wd.EvalAt(now)
				}
			},
		})
	}
	if o.slo != "" {
		if a.sampler == nil {
			return nil, errors.New("muaa-serve: -slo needs the time-series sampler (-sample-every >= 0)")
		}
		scfg, err := slo.ParseConfig(o.slo)
		if err != nil {
			return nil, err
		}
		a.watchdog.Store(slo.New(a.sampler, a.reg, logger, scfg.Rules()))
	}
	a.cfg = broker.Config{
		AdTypes: workload.DefaultAdTypes(),
		G:       o.g,
		Pacing:  o.pacing,
		Shards:  o.shards,
		Metrics: a.reg,
		Tracer:  a.tracer,
		Logger:  logger,
		DataDir: o.dataDir,
		WAL: wal.Options{
			Sync:          sync,
			FlushInterval: o.walFlushEvery,
			SnapshotEvery: o.snapshotEvery,
			Retain:        o.walRetain,
		},
		AuditWindow: o.auditWindow,
		AuditEvery:  o.auditEvery,
		Funnel:      broker.FunnelConfig{Enabled: o.funnel},
	}
	if o.controller != "" {
		cc, err := pacing.ParseConfig(o.controller)
		if err != nil {
			return nil, err
		}
		if o.auditWindow <= 0 {
			return nil, errors.New("muaa-serve: -pacing-controller needs -audit-window > 0 for its feedback signal")
		}
		a.cfg.Controller = &cc
	}
	if o.dataDir == "" {
		if err := a.boot(); err != nil {
			return nil, err
		}
	} else {
		// Surface config errors (bad g, pacing, shards) before the
		// listener starts, without touching the data directory: run the
		// same validation the real boot will, against a throwaway
		// in-memory broker on a separate registry.
		check := a.cfg
		check.DataDir = ""
		check.Metrics = obs.NewRegistry()
		// The throwaway broker exists only to validate; no audit window, or
		// it would leak a live-audit goroutine (nothing Closes it).
		check.AuditWindow = 0
		if _, err := broker.New(check); err != nil {
			return nil, err
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", a.serveAPI)
	for _, p := range []string{"/metrics", "/v1/metrics"} {
		mux.HandleFunc(p, a.getOnly(a.serveMetrics))
	}
	for _, p := range []string{"/healthz", "/v1/healthz"} {
		mux.HandleFunc(p, a.getOnly(a.serveHealthz))
	}
	a.srv = &http.Server{
		Addr: o.addr,
		// The tracing middleware derives/echoes traceparent, emits the
		// access log and records unavailable arrival traces around the
		// whole serving mux.
		Handler:           trace.Middleware(mux, logger, a.tracer),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Past the last error return: the sampling goroutine cannot leak from
	// a constructor failure. Sampling runs through recovery — the rings
	// record the replay progressing.
	if a.sampler != nil {
		a.sampler.Start()
	}
	return a, nil
}

// boot creates (and, with a data directory, recovers) the broker and flips
// the server ready. Idempotent.
func (a *app) boot() error {
	if a.api.Load() != nil {
		return nil
	}
	b, err := broker.New(a.cfg)
	if err != nil {
		return err
	}
	a.b.Store(b)
	a.api.Store(broker.NewAPI(b))
	return nil
}

// shutdown drains in-flight requests, then closes the broker — flushing and
// fsyncing the write-ahead log and writing a final snapshot so the next
// boot replays nothing.
func (a *app) shutdown(ctx context.Context) error {
	err := a.srv.Shutdown(ctx)
	if a.sampler != nil {
		a.sampler.Stop()
	}
	if b := a.b.Load(); b != nil {
		if cerr := b.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// serveAPI forwards to the broker API once recovery has finished; before
// that every broker endpoint — /stats and /healthz included — answers 503
// with the uniform error envelope so probes and load-balancers back off.
func (a *app) serveAPI(w http.ResponseWriter, r *http.Request) {
	api := a.api.Load()
	if api == nil {
		w.Header().Set("Retry-After", "1")
		broker.WriteError(w, http.StatusServiceUnavailable, "unavailable", "recovery in progress")
		return
	}
	api.ServeHTTP(w, r)
}

// getOnly rejects non-GET methods with the enveloped 405 the rest of the
// API uses, so the serve-level endpoints follow the same contract.
func (a *app) getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET")
			broker.WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				"method "+r.Method+" not allowed (allow: GET)")
			return
		}
		h(w, r)
	}
}

// serveMetrics is live from process start — scrapes during recovery show
// the WAL replay progressing.
func (a *app) serveMetrics(w http.ResponseWriter, r *http.Request) {
	a.reg.Handler().ServeHTTP(w, r)
}

func (a *app) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if a.api.Load() == nil {
		w.Header().Set("Retry-After", "1")
		broker.WriteError(w, http.StatusServiceUnavailable, "unavailable", "recovery in progress")
		return
	}
	broker.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// newDebugServer builds the opt-in debug listener: net/http/pprof plus,
// when the subsystems are enabled, the flight recorder at /v1/debug/traces,
// the live quality audit at /v1/debug/audit, the retention rings at
// /v1/debug/timeseries and the SLO watchdog at /v1/debug/slo. The handlers
// are mounted on a private mux (not http.DefaultServeMux) so nothing else
// in the process can accidentally widen what this port serves. Every
// /v1/debug/* endpoint shares the recovery gate: until WAL replay finishes
// they answer the uniform 503 envelope, like the serving API.
func (a *app) newDebugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mount := func(h http.Handler, disabledCode, disabledMsg string, paths ...string) {
		if h == nil {
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				broker.WriteError(w, http.StatusNotFound, disabledCode, disabledMsg)
			})
		}
		for _, p := range paths {
			mux.Handle(p, a.gateRecovery(h))
		}
	}
	var traces, timeseries, slodoc http.Handler
	if a.tracer != nil {
		traces = a.tracer.Handler()
	}
	if a.sampler != nil {
		timeseries = a.sampler.Handler()
	}
	if wd := a.watchdog.Load(); wd != nil {
		slodoc = wd.Handler()
	}
	mount(traces, "tracing_disabled",
		"tracing disabled; start muaa-serve with -trace-capacity > 0",
		"/v1/debug/traces", "/debug/traces")
	mount(timeseries, "sampler_disabled",
		"time-series sampling disabled; start muaa-serve with -sample-every >= 0",
		"/v1/debug/timeseries", "/debug/timeseries")
	mount(slodoc, "slo_disabled",
		"SLO watchdog disabled; start muaa-serve with -slo (e.g. -slo on)",
		"/v1/debug/slo", "/debug/slo")
	mount(a.getOnly(a.serveDebugAudit), "", "", "/v1/debug/audit", "/debug/audit")
	mount(http.HandlerFunc(a.serveDebugExplain), "", "",
		"/v1/debug/explain", "/debug/explain")
	mount(http.HandlerFunc(a.serveDebugFunnel), "", "",
		"/v1/debug/campaigns/{id}/funnel", "/debug/campaigns/{id}/funnel")
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

// gateRecovery holds a debug endpoint behind the WAL-recovery gate: until
// boot stores the API pointer, it answers the same 503 `unavailable`
// envelope as the serving mux, so scrapers and dashboards back off
// uniformly.
func (a *app) gateRecovery(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.api.Load() == nil {
			w.Header().Set("Retry-After", "1")
			broker.WriteError(w, http.StatusServiceUnavailable, "unavailable", "recovery in progress")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// serveDebugAudit returns the latest live quality-audit report as JSON.
// ?refresh=true (any strconv.ParseBool form) forces a synchronous window
// recompute; otherwise the first request computes one and later requests
// read whatever the audit loop last stored. Follows the serving API's
// error-envelope contract for every failure.
func (a *app) serveDebugAudit(w http.ResponseWriter, r *http.Request) {
	refresh := false
	if s := r.URL.Query().Get("refresh"); s != "" {
		v, err := strconv.ParseBool(s)
		if err != nil {
			broker.WriteError(w, http.StatusBadRequest, "bad_request",
				"refresh must be a boolean (true/false/1/0)")
			return
		}
		refresh = v
	}
	b := a.b.Load()
	if b == nil {
		w.Header().Set("Retry-After", "1")
		broker.WriteError(w, http.StatusServiceUnavailable, "unavailable", "recovery in progress")
		return
	}
	rep := b.AuditReport()
	if refresh || rep == nil {
		var err error
		rep, err = b.AuditNow()
		if errors.Is(err, broker.ErrAuditDisabled) {
			broker.WriteError(w, http.StatusNotFound, "audit_disabled",
				"live audit disabled; start muaa-serve with -audit-window > 0")
			return
		}
		if err != nil {
			broker.WriteError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
	}
	out, err := rep.EncodeJSON()
	if err != nil {
		broker.WriteError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.Write(out)
}

// serveDebugExplain runs the read-only explain-replay over a hypothetical
// arrival (POST /v1/debug/explain, /v1/arrivals request schema). Method
// dispatch, decoding and the error envelope live in the broker handler.
func (a *app) serveDebugExplain(w http.ResponseWriter, r *http.Request) {
	b := a.b.Load()
	if b == nil {
		w.Header().Set("Retry-After", "1")
		broker.WriteError(w, http.StatusServiceUnavailable, "unavailable", "recovery in progress")
		return
	}
	b.ServeExplain(w, r)
}

// serveDebugFunnel returns one campaign's decision-funnel counters
// (GET /v1/debug/campaigns/{id}/funnel); 404 funnel_disabled when the broker
// runs without -funnel.
func (a *app) serveDebugFunnel(w http.ResponseWriter, r *http.Request) {
	b := a.b.Load()
	if b == nil {
		w.Header().Set("Retry-After", "1")
		broker.WriteError(w, http.StatusServiceUnavailable, "unavailable", "recovery in progress")
		return
	}
	b.ServeCampaignFunnel(w, r)
}

// startDebug launches the debug listener in the background. A listener
// error — the port already bound, the listener closed later — must not
// take down the serving process: it degrades to a structured error log.
func (a *app) startDebug(dbg *http.Server) {
	go func() {
		if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			a.logger.Error("debug_listener_failed",
				slog.String("addr", dbg.Addr),
				slog.String("error", err.Error()))
		}
	}()
}

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, errors.New("unknown log level " + s + " (want debug, info, warn or error)")
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		g         = flag.Float64("g", 0, "adaptive threshold base g (> e); 0 = derive from observed γ bounds")
		pacing    = flag.Float64("pacing", 0, "daily budget pacing factor (0 = off, 1 = strictly uniform)")
		shards    = flag.Int("shards", 0, "spatial shard count for concurrent serving (0 = scale to GOMAXPROCS)")
		dataDir   = flag.String("data-dir", "", "durability directory for the write-ahead log and snapshots; empty = in-memory only")
		walSync   = flag.String("wal-sync", "flush", "WAL fsync policy: flush (fsync each group commit), always (fsync every record), none (leave it to the OS)")
		walFlush  = flag.Duration("wal-flush-interval", 0, "max time a buffered WAL record may wait before reaching the OS (0 = 50ms default)")
		snapEvery = flag.Int("snapshot-every", 0, "WAL records between compacting snapshots (0 = 262144 default, negative disables)")
		debugAddr = flag.String("debug-addr", "", "optional second listen address for net/http/pprof and /v1/debug/traces (e.g. 127.0.0.1:6060); empty disables")
		traceCap  = flag.Int("trace-capacity", 256, "flight-recorder reservoir size for arrival traces (0 disables tracing)")
		traceSlow = flag.Duration("trace-slow", 25*time.Millisecond, "arrival traces at least this slow are always retained")
		auditWin  = flag.Int("audit-window", 4096, "live quality audit: sliding window of recent arrivals (0 disables auditing)")
		auditEv   = flag.Duration("audit-every", 15*time.Second, "live quality audit recompute cadence")
		walRetain = flag.Bool("wal-retain", true, "keep superseded WAL segments after compaction so muaa-audit can replay the full history")
		pacingCtl = flag.String("pacing-controller", "", "adaptive pacing controller: \"on\" for defaults or \"k=v,...\" overrides (target, gain, deadband, pace-gain, pace-bias, boost-min, boost-max, tighten-at, loosen-at, rate); empty disables")
		sampleEv  = flag.Duration("sample-every", 5*time.Second, "time-series sampling cadence for /v1/debug/timeseries (negative disables the sampler)")
		sampleCap = flag.Int("sample-capacity", 360, "retention-ring points kept per time series (memory ≈ 16 B × capacity × series)")
		sloSpec   = flag.String("slo", "", "SLO burn-rate watchdog: \"on\" for defaults or \"k=v,...\" overrides (short, long, burn, clear, min-samples, ratio-target, arrival-p99-ms, floor-max, wal-p99-ms, escrow-open-max, heap-max-mb, goroutines-max); empty disables")
		funnel    = flag.Bool("funnel", true, "per-campaign decision-funnel attribution: muaa_funnel_* metrics and GET /v1/debug/campaigns/{id}/funnel")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("muaa-serve"))
		return
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		// The logger doesn't exist yet; build a default one just to report.
		level = slog.LevelInfo
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	fatal := func(msg string, ferr error) {
		logger.Error(msg, slog.String("error", ferr.Error()))
		os.Exit(1)
	}
	if err != nil {
		fatal("bad_flag", err)
	}
	a, err := newServer(serverOpts{
		addr: *addr, g: *g, pacing: *pacing, shards: *shards,
		dataDir: *dataDir, walSync: *walSync,
		walFlushEvery: *walFlush, snapshotEvery: *snapEvery,
		traceCapacity: *traceCap, traceSlow: *traceSlow,
		auditWindow: *auditWin, auditEvery: *auditEv, walRetain: *walRetain,
		controller:  *pacingCtl,
		sampleEvery: *sampleEv, sampleCap: *sampleCap, slo: *sloSpec,
		funnel: *funnel,
	}, logger)
	if err != nil {
		fatal("bad_config", err)
	}
	if *debugAddr != "" {
		a.startDebug(a.newDebugServer(*debugAddr))
		logger.Info("debug_listening",
			slog.String("addr", *debugAddr),
			slog.Bool("traces", a.tracer != nil))
	}

	// Listen first, recover second: during a long replay the port is
	// already up and answering 503, so orchestrators see the process as
	// alive-but-not-ready instead of connection-refused.
	serveErr := make(chan error, 1)
	go func() { serveErr <- a.srv.ListenAndServe() }()
	bootErr := make(chan error, 1)
	go func() {
		start := time.Now()
		if err := a.boot(); err != nil {
			bootErr <- err
			return
		}
		if *dataDir != "" {
			info := a.b.Load().RecoveryStats()
			logger.Info("recovered",
				slog.String("data_dir", *dataDir),
				slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)),
				slog.Bool("snapshot", info.SnapshotLoaded),
				slog.Int("records", info.RecordsReplayed),
				slog.Bool("truncated", info.Truncated))
		}
		logger.Info("ready",
			slog.String("addr", *addr),
			slog.Int("ad_types", len(workload.DefaultAdTypes())),
			slog.Bool("tracing", a.tracer != nil))
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		fatal("listen_failed", err)
	case err := <-bootErr:
		fatal("boot_failed", err)
	case s := <-sigs:
		logger.Info("shutdown_signal", slog.String("signal", s.String()))
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := a.shutdown(ctx); err != nil {
			fatal("shutdown_failed", err)
		}
		logger.Info("shutdown_complete")
	}
}
