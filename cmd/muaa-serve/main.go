// Command muaa-serve runs the location-based advertising broker as an HTTP
// service — the long-lived system around the paper's online algorithm.
//
//	muaa-serve -addr :8080
//
// Endpoints (JSON bodies):
//
//	POST /campaigns            register a vendor campaign → {id}
//	POST /campaigns/{id}/topup add budget
//	POST /campaigns/{id}/pause pause / resume
//	GET  /campaigns/{id}       live campaign state
//	POST /arrivals             a customer arrival → the ads to deliver now
//	GET  /stats                broker counters (γ bounds, derived g, spend)
//	GET  /campaigns            list all campaign states
//	GET  /map.svg              the live campaign map as SVG
//	GET  /metrics              Prometheus text exposition (docs/OPERATIONS.md)
//	GET  /healthz              liveness probe, always 200 once serving
//
// Example session:
//
//	curl -s localhost:8080/campaigns -d '{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}'
//	curl -s localhost:8080/arrivals  -d '{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}'
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics | grep muaa_broker_arrival_seconds
//
// The broker shards campaign state by spatial stripe so arrivals in
// different regions are served in parallel; -shards overrides the
// GOMAXPROCS-scaled default. Every flag and every exported metric is
// documented in docs/OPERATIONS.md.
//
// -debug-addr starts a second, separate listener exposing net/http/pprof
// under /debug/pprof/ — opt-in and intended to stay on a loopback or
// otherwise private address; the serving port never exposes profiling.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"muaa/internal/broker"
	"muaa/internal/obs"
	"muaa/internal/workload"
)

// newServer builds the instrumented broker and its HTTP server from the
// flag values; the caller owns listening (main uses ListenAndServe, the
// smoke test binds an ephemeral port).
func newServer(addr string, g, pacing float64, shards int) (*http.Server, error) {
	reg := obs.NewRegistry()
	b, err := broker.New(broker.Config{
		AdTypes: workload.DefaultAdTypes(),
		G:       g,
		Pacing:  pacing,
		Shards:  shards,
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/", broker.NewAPI(b))
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}, nil
}

// newDebugServer builds the opt-in pprof listener. The handlers are mounted
// on a private mux (not http.DefaultServeMux) so nothing else in the
// process can accidentally widen what this port serves.
func newDebugServer(addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		g         = flag.Float64("g", 0, "adaptive threshold base g (> e); 0 = derive from observed γ bounds")
		pacing    = flag.Float64("pacing", 0, "daily budget pacing factor (0 = off, 1 = strictly uniform)")
		shards    = flag.Int("shards", 0, "spatial shard count for concurrent serving (0 = scale to GOMAXPROCS)")
		debugAddr = flag.String("debug-addr", "", "optional second listen address for net/http/pprof (e.g. 127.0.0.1:6060); empty disables profiling")
	)
	flag.Parse()
	srv, err := newServer(*addr, *g, *pacing, *shards)
	if err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		dbg := newDebugServer(*debugAddr)
		go func() { log.Fatal(dbg.ListenAndServe()) }()
		fmt.Printf("muaa-serve: pprof on %s/debug/pprof/\n", *debugAddr)
	}
	fmt.Printf("muaa-serve: listening on %s (ad types: %d)\n", *addr, len(workload.DefaultAdTypes()))
	log.Fatal(srv.ListenAndServe())
}
