// Command muaa-serve runs the location-based advertising broker as an HTTP
// service — the long-lived system around the paper's online algorithm.
//
//	muaa-serve -addr :8080
//
// Endpoints (JSON bodies):
//
//	POST /campaigns            register a vendor campaign → {id}
//	POST /campaigns/{id}/topup add budget
//	POST /campaigns/{id}/pause pause / resume
//	GET  /campaigns/{id}       live campaign state
//	POST /arrivals             a customer arrival → the ads to deliver now
//	GET  /stats                broker counters (γ bounds, derived g, spend)
//	GET  /campaigns            list all campaign states
//	GET  /map.svg              the live campaign map as SVG
//
// Example session:
//
//	curl -s localhost:8080/campaigns -d '{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}'
//	curl -s localhost:8080/arrivals  -d '{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}'
//	curl -s localhost:8080/stats
//
// The broker shards campaign state by spatial stripe so arrivals in
// different regions are served in parallel; -shards overrides the
// GOMAXPROCS-scaled default.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"muaa/internal/broker"
	"muaa/internal/workload"
)

// newServer builds the broker and its HTTP server from the flag values; the
// caller owns listening (main uses ListenAndServe, the smoke test binds an
// ephemeral port).
func newServer(addr string, g, pacing float64, shards int) (*http.Server, error) {
	b, err := broker.New(broker.Config{
		AdTypes: workload.DefaultAdTypes(),
		G:       g,
		Pacing:  pacing,
		Shards:  shards,
	})
	if err != nil {
		return nil, err
	}
	return &http.Server{
		Addr:              addr,
		Handler:           broker.NewAPI(b),
		ReadHeaderTimeout: 5 * time.Second,
	}, nil
}

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		g      = flag.Float64("g", 0, "adaptive threshold base g (> e); 0 = derive from observed γ bounds")
		pacing = flag.Float64("pacing", 0, "daily budget pacing factor (0 = off, 1 = strictly uniform)")
		shards = flag.Int("shards", 0, "spatial shard count for concurrent serving (0 = scale to GOMAXPROCS)")
	)
	flag.Parse()
	srv, err := newServer(*addr, *g, *pacing, *shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("muaa-serve: listening on %s (ad types: %d)\n", *addr, len(workload.DefaultAdTypes()))
	log.Fatal(srv.ListenAndServe())
}
