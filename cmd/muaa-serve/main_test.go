package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"muaa/internal/geo"
)

// startServer binds an ephemeral port, serves on it in the background, and
// returns the base URL.
func startServer(t *testing.T, g, pacing float64, shards int) string {
	t.Helper()
	base, _ := startServerOpts(t, serverOpts{addr: "127.0.0.1:0", g: g, pacing: pacing, shards: shards})
	return base
}

// startServerOpts is the full-config variant: it boots the broker (running
// recovery when opts.dataDir is set), serves on an ephemeral port, and
// returns the base URL plus the app for shutdown-style tests.
func startServerOpts(t *testing.T, o serverOpts) (string, *app) {
	t.Helper()
	base, _, a := startServerLogged(t, o, nil)
	return base, a
}

// startServerLogged additionally wires a slog logger (nil = discard) and
// returns the app for log- and trace-focused tests.
func startServerLogged(t *testing.T, o serverOpts, logger *slog.Logger) (string, *slog.Logger, *app) {
	t.Helper()
	o.addr = "127.0.0.1:0"
	a, err := newServer(o, logger)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.boot(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", a.srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = a.srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = a.shutdown(ctx)
	})
	return "http://" + ln.Addr().String(), logger, a
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding response: %v", url, err)
	}
	return resp.StatusCode
}

// TestServeSmoke boots the real server on an ephemeral port and replays the
// README example session end to end: register a campaign, send an arrival
// inside its range, and read the counters back.
func TestServeSmoke(t *testing.T) {
	base := startServer(t, 0, 0, 0)

	var created struct {
		ID int32 `json:"id"`
	}
	if code := postJSON(t, base+"/campaigns",
		`{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}`, &created); code != http.StatusCreated {
		t.Fatalf("POST /campaigns → %d", code)
	}

	var arrival struct {
		Offers []struct {
			Campaign   int32   `json:"campaign"`
			AdTypeName string  `json:"adTypeName"`
			Cost       float64 `json:"cost"`
			Utility    float64 `json:"utility"`
		} `json:"offers"`
	}
	if code := postJSON(t, base+"/arrivals",
		`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, &arrival); code != http.StatusOK {
		t.Fatalf("POST /arrivals → %d", code)
	}
	if len(arrival.Offers) == 0 {
		t.Fatal("README example arrival produced no offers")
	}
	for _, o := range arrival.Offers {
		if o.Campaign != created.ID || o.AdTypeName == "" || o.Cost <= 0 || o.Utility <= 0 {
			t.Fatalf("malformed offer %+v", o)
		}
	}

	var stats struct {
		Campaigns     int     `json:"Campaigns"`
		Arrivals      int64   `json:"Arrivals"`
		OffersPushed  int64   `json:"OffersPushed"`
		BudgetSpent   float64 `json:"BudgetSpent"`
		UtilityServed float64 `json:"UtilityServed"`
		GammaMin      float64 `json:"GammaMin"`
		GammaMax      float64 `json:"GammaMax"`
	}
	if code := getJSON(t, base+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats → %d", code)
	}
	if stats.Campaigns != 1 || stats.Arrivals != 1 || stats.OffersPushed != int64(len(arrival.Offers)) {
		t.Fatalf("stats don't reflect the session: %+v", stats)
	}
	if stats.BudgetSpent <= 0 || stats.UtilityServed <= 0 || stats.GammaMin <= 0 || stats.GammaMax < stats.GammaMin {
		t.Fatalf("counters malformed: %+v", stats)
	}

	// The campaign list and the SVG map render against the same state.
	var list []struct {
		ID    int32   `json:"id"`
		Spent float64 `json:"spent"`
	}
	if code := getJSON(t, base+"/campaigns", &list); code != http.StatusOK {
		t.Fatalf("GET /campaigns → %d", code)
	}
	if len(list) != 1 || list[0].Spent != stats.BudgetSpent {
		t.Fatalf("campaign list inconsistent with stats: %+v vs %+v", list, stats)
	}
	resp, err := http.Get(base + "/map.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var svg bytes.Buffer
	if _, err := svg.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(svg.String(), "<svg") {
		t.Fatalf("GET /map.svg → %d, body %q…", resp.StatusCode, svg.String()[:min(80, svg.Len())])
	}
}

// TestServeConcurrentSessions exercises the server under parallel HTTP
// clients — the smoke-level version of the broker's soak test.
func TestServeConcurrentSessions(t *testing.T) {
	base := startServer(t, 0, 0, 8)
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"loc":{"x":%g,"y":%g},"radius":0.15,"budget":30,"tags":[1,0,0.2]}`,
			0.2+0.04*float64(i), 0.2+0.04*float64(i))
		if code := postJSON(t, base+"/campaigns", body, nil); code != http.StatusCreated {
			t.Fatalf("campaign %d → %d", i, code)
		}
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < 25; i++ {
				x := 0.2 + 0.04*float64((w*25+i)%16)
				body := fmt.Sprintf(`{"loc":{"x":%g,"y":%g},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, x, x)
				resp, err := client.Post(base+"/arrivals", "application/json", strings.NewReader(body))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("arrival → %d", resp.StatusCode)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var stats struct {
		Arrivals int64 `json:"Arrivals"`
	}
	if code := getJSON(t, base+"/stats", &stats); code != http.StatusOK || stats.Arrivals != 200 {
		t.Fatalf("stats after concurrent sessions: code %d, %+v", code, stats)
	}
}

// TestServeRejectsBadConfig pins flag validation through the same path main
// uses — including the pre-listen validation of durable boots, which must
// reject a bad config without touching the data directory.
func TestServeRejectsBadConfig(t *testing.T) {
	if _, err := newServer(serverOpts{addr: ":0", g: 1}, nil); err == nil {
		t.Error("g ≤ e must be rejected")
	}
	if _, err := newServer(serverOpts{addr: ":0", pacing: -1}, nil); err == nil {
		t.Error("negative pacing must be rejected")
	}
	if _, err := newServer(serverOpts{addr: ":0", shards: -1}, nil); err == nil {
		t.Error("negative shard count must be rejected")
	}
	if _, err := newServer(serverOpts{addr: ":0", walSync: "sometimes"}, nil); err == nil {
		t.Error("unknown -wal-sync value must be rejected")
	}
	dir := t.TempDir()
	if _, err := newServer(serverOpts{addr: ":0", g: 1, dataDir: dir}, nil); err == nil {
		t.Error("bad config with a data dir must be rejected before boot")
	}
	// The failed validation must not have created any WAL files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("config validation touched the data directory: %v", entries)
	}
}

// TestServeMetricsAndHealth scrapes the observability endpoints of a live
// server: /healthz must answer 200 immediately, and /metrics must return
// Prometheus text exposition covering the arrival latency histograms,
// per-stripe lock counters, and the live O-AFA threshold gauges — the
// acceptance contract of docs/OPERATIONS.md.
func TestServeMetricsAndHealth(t *testing.T) {
	base := startServer(t, 0, 0, 4)

	for _, path := range []string{"/healthz", "/v1/healthz"} {
		var health struct {
			Status string `json:"status"`
		}
		if code := getJSON(t, base+path, &health); code != http.StatusOK || health.Status != "ok" {
			t.Fatalf("GET %s → %d %+v", path, code, health)
		}
	}

	// Generate some traffic so the histograms have observations.
	if code := postJSON(t, base+"/campaigns",
		`{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}`, nil); code != http.StatusCreated {
		t.Fatalf("POST /campaigns → %d", code)
	}
	if code := postJSON(t, base+"/arrivals",
		`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
		t.Fatalf("POST /arrivals → %d", code)
	}

	// /v1/metrics is an alias for /metrics, and both reject non-GET with
	// the enveloped 405 the broker API uses.
	aliasResp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	aliasResp.Body.Close()
	if aliasResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics → %d", aliasResp.StatusCode)
	}
	postResp, err := http.Post(base+"/v1/metrics", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed || postResp.Header.Get("Allow") != "GET" {
		t.Fatalf("POST /v1/metrics → %d (Allow %q), want enveloped 405 with Allow: GET",
			postResp.StatusCode, postResp.Header.Get("Allow"))
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics → %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text exposition v0.0.4", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := body.String()
	for _, want := range []string{
		"# TYPE muaa_broker_arrival_seconds histogram",
		"muaa_broker_arrival_seconds_count 1",
		`muaa_broker_arrival_stage_seconds_bucket{stage="scan",le="+Inf"}`,
		`muaa_broker_stripe_lock_total{stripe="`,
		"muaa_broker_threshold_g",
		`muaa_broker_threshold{delta="0"}`,
		"muaa_broker_gamma_min",
		"muaa_broker_arrivals_total 1",
		"muaa_broker_campaigns 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugServer exercises the opt-in pprof listener: the index and a
// profile endpoint must answer on the debug address, and the main serving
// mux must NOT expose /debug/pprof/.
func TestDebugServer(t *testing.T) {
	a, err := newServer(serverOpts{addr: "127.0.0.1:0"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dbg := a.newDebugServer("127.0.0.1:0")
	ln, err := net.Listen("tcp", dbg.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = dbg.Serve(ln) }()
	t.Cleanup(func() { _ = dbg.Close() })
	dbgBase := "http://" + ln.Addr().String()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(dbgBase + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s → %d", path, resp.StatusCode)
		}
	}

	base := startServer(t, 0, 0, 0)
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("serving port must not expose /debug/pprof/")
	}
}

// startDebugListener serves a's debug mux on an ephemeral port.
func startDebugListener(t *testing.T, a *app) string {
	t.Helper()
	dbg := a.newDebugServer("127.0.0.1:0")
	ln, err := net.Listen("tcp", dbg.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = dbg.Serve(ln) }()
	t.Cleanup(func() { _ = dbg.Close() })
	return "http://" + ln.Addr().String()
}

// TestDebugAudit drives traffic through a server with live auditing enabled
// and reads the quality report off the debug listener: both route aliases
// serve the muaa-audit/1 schema, ?refresh forces a recompute, bad parameters
// get the uniform error envelope, and the audit gauges appear on /metrics.
func TestDebugAudit(t *testing.T) {
	base, a := startServerOpts(t, serverOpts{
		auditWindow: 64, auditEvery: time.Hour, // recompute on demand only
	})
	dbgBase := startDebugListener(t, a)

	if code := postJSON(t, base+"/v1/campaigns",
		`{"loc":{"x":0.5,"y":0.5},"radius":0.15,"budget":20,"tags":[1,0,0.2]}`, nil); code != http.StatusCreated {
		t.Fatalf("POST /v1/campaigns → %d", code)
	}
	for i := 0; i < 10; i++ {
		if code := postJSON(t, base+"/v1/arrivals",
			`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
			t.Fatalf("arrival %d → %d", i, code)
		}
	}

	type reportBody struct {
		Schema         string  `json:"schema"`
		Mode           string  `json:"mode"`
		Source         string  `json:"source"`
		Arrivals       int     `json:"arrivals"`
		EmpiricalRatio float64 `json:"empirical_ratio"`
	}
	for _, path := range []string{"/v1/debug/audit", "/debug/audit"} {
		var rep reportBody
		if code := getJSON(t, dbgBase+path, &rep); code != http.StatusOK {
			t.Fatalf("GET %s → %d", path, code)
		}
		if rep.Schema != "muaa-audit/1" || rep.Mode != "window" || rep.Source != "live" {
			t.Fatalf("GET %s report header: %+v", path, rep)
		}
		if rep.Arrivals != 10 {
			t.Fatalf("GET %s audited %d arrivals, want 10", path, rep.Arrivals)
		}
		if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
			t.Fatalf("GET %s ratio %g outside (0, 1]", path, rep.EmpiricalRatio)
		}
	}

	// ?refresh recomputes after more traffic lands.
	if code := postJSON(t, base+"/v1/arrivals",
		`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
		t.Fatalf("arrival → %d", code)
	}
	var rep reportBody
	if code := getJSON(t, dbgBase+"/v1/debug/audit?refresh=true", &rep); code != http.StatusOK || rep.Arrivals != 11 {
		t.Fatalf("refresh → %d, %d arrivals (want 11)", code, rep.Arrivals)
	}
	// Without refresh the stored report is served as-is.
	if code := getJSON(t, dbgBase+"/v1/debug/audit", &rep); code != http.StatusOK || rep.Arrivals != 11 {
		t.Fatalf("cached read → %d, %d arrivals", code, rep.Arrivals)
	}

	// Bad refresh value: enveloped 400.
	var env struct {
		Error struct{ Code string } `json:"error"`
	}
	if code := getJSON(t, dbgBase+"/v1/debug/audit?refresh=banana", &env); code != http.StatusBadRequest || env.Error.Code != "bad_request" {
		t.Fatalf("refresh=banana → %d %q", code, env.Error.Code)
	}
	// Non-GET: enveloped 405.
	if code := postJSON(t, dbgBase+"/v1/debug/audit", "{}", &env); code != http.StatusMethodNotAllowed || env.Error.Code != "method_not_allowed" {
		t.Fatalf("POST → %d %q", code, env.Error.Code)
	}

	// The live gauges are published on the serving port's /metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		"muaa_broker_empirical_ratio",
		"muaa_broker_competitive_bound",
		"muaa_broker_audit_window_arrivals 11",
		`muaa_broker_regret{delta="0.5"}`,
		`muaa_broker_pacing_campaigns{utilization="0-25"}`,
		"muaa_build_info{",
	} {
		if !strings.Contains(body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugAuditDisabled pins the two non-serving answers: 404 with code
// audit_disabled when the broker runs without an audit window, and 503
// unavailable while recovery is still in progress.
func TestDebugAuditDisabled(t *testing.T) {
	_, a := startServerOpts(t, serverOpts{}) // auditWindow 0
	dbgBase := startDebugListener(t, a)
	var env struct {
		Error struct{ Code string } `json:"error"`
	}
	if code := getJSON(t, dbgBase+"/v1/debug/audit", &env); code != http.StatusNotFound || env.Error.Code != "audit_disabled" {
		t.Fatalf("audit disabled → %d %q, want 404 audit_disabled", code, env.Error.Code)
	}

	unbooted, err := newServer(serverOpts{addr: "127.0.0.1:0", dataDir: t.TempDir(), auditWindow: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dbgBase2 := startDebugListener(t, unbooted)
	if code := getJSON(t, dbgBase2+"/v1/debug/audit", &env); code != http.StatusServiceUnavailable || env.Error.Code != "unavailable" {
		t.Fatalf("during recovery → %d %q, want 503 unavailable", code, env.Error.Code)
	}
}

// TestServeRecoveryGate pins the boot-ordering contract: the listener is up
// before the broker finishes recovering, and until it does every broker
// endpoint — /healthz and /stats included — answers 503 with the uniform
// error envelope while /metrics already serves.
func TestServeRecoveryGate(t *testing.T) {
	a, err := newServer(serverOpts{addr: "127.0.0.1:0", dataDir: t.TempDir()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", a.srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = a.srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = a.shutdown(ctx)
	})
	base := "http://" + ln.Addr().String()

	// Broker not booted yet: the recovering window, held open deliberately.
	for _, path := range []string{"/healthz", "/v1/healthz", "/stats", "/v1/stats", "/campaigns", "/v1/arrivals"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s during recovery: decoding envelope: %v", path, err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || envelope.Error.Code != "unavailable" {
			t.Fatalf("GET %s during recovery → %d %q, want 503 unavailable", path, resp.StatusCode, envelope.Error.Code)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("GET %s during recovery: missing Retry-After", path)
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics during recovery → %d, want 200 (metrics are live from boot)", resp.StatusCode)
	}

	// Recovery finishes: the same endpoints flip to serving.
	if err := a.boot(); err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, base+"/v1/healthz", &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("GET /v1/healthz after recovery → %d %+v", code, health)
	}
	var stats struct {
		Arrivals int64 `json:"Arrivals"`
	}
	if code := getJSON(t, base+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats after recovery → %d", code)
	}
}

// TestServeRestartPersistence runs the operator workflow end to end over
// real HTTP: boot with a data directory, take traffic on the /v1 surface,
// shut down cleanly, boot a second server on the same directory, and
// require the recovered /v1/stats to match the pre-shutdown counters
// exactly.
func TestServeRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	opts := serverOpts{dataDir: dir, shards: 4}

	type statsBody struct {
		Campaigns     int     `json:"Campaigns"`
		Arrivals      int64   `json:"Arrivals"`
		OffersPushed  int64   `json:"OffersPushed"`
		BudgetSpent   float64 `json:"BudgetSpent"`
		UtilityServed float64 `json:"UtilityServed"`
		GammaMin      float64 `json:"GammaMin"`
		GammaMax      float64 `json:"GammaMax"`
	}

	base, a := startServerOpts(t, opts)
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"loc":{"x":%g,"y":%g},"radius":0.15,"budget":30,"tags":[1,0,0.2]}`,
			0.3+0.1*float64(i), 0.3+0.1*float64(i))
		if code := postJSON(t, base+"/v1/campaigns", body, nil); code != http.StatusCreated {
			t.Fatalf("campaign %d → %d", i, code)
		}
	}
	for i := 0; i < 40; i++ {
		x := 0.3 + 0.1*float64(i%4)
		body := fmt.Sprintf(`{"loc":{"x":%g,"y":%g},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, x, x)
		if code := postJSON(t, base+"/v1/arrivals", body, nil); code != http.StatusOK {
			t.Fatalf("arrival %d → %d", i, code)
		}
	}
	if code := postJSON(t, base+"/v1/topup", `{"id":0,"amount":7.5}`, nil); code != http.StatusOK {
		t.Fatalf("topup → %d", code)
	}
	var before statsBody
	if code := getJSON(t, base+"/v1/stats", &before); code != http.StatusOK {
		t.Fatalf("GET /v1/stats → %d", code)
	}
	if before.Arrivals != 40 || before.BudgetSpent <= 0 {
		t.Fatalf("pre-shutdown stats implausible: %+v", before)
	}

	// The clean shutdown main performs on SIGTERM: drain, flush, snapshot.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.shutdown(ctx); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}

	base2, a2 := startServerOpts(t, opts)
	info := a2.b.Load().RecoveryStats()
	if !info.SnapshotLoaded || info.RecordsReplayed != 0 || info.Truncated {
		t.Errorf("clean restart should recover from the snapshot alone: %+v", info)
	}
	var after statsBody
	if code := getJSON(t, base2+"/v1/stats", &after); code != http.StatusOK {
		t.Fatalf("GET /v1/stats after restart → %d", code)
	}
	if after != before {
		t.Fatalf("stats changed across restart:\n before %+v\n after  %+v", before, after)
	}
	// And the recovered broker keeps serving: one more arrival must land.
	if code := postJSON(t, base2+"/v1/arrivals",
		`{"loc":{"x":0.3,"y":0.3},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
		t.Fatalf("arrival after restart → %d", code)
	}
}

// TestDebugEndpointsRecoveryGate pins satellite contract #3: EVERY
// /v1/debug/* endpoint — traces, audit, timeseries, slo, explain, funnel —
// answers the uniform 503 `unavailable` envelope while WAL recovery is in
// progress, and flips to serving once boot stores the API pointer.
func TestDebugEndpointsRecoveryGate(t *testing.T) {
	a, err := newServer(serverOpts{
		addr: "127.0.0.1:0", dataDir: t.TempDir(),
		traceCapacity: 16, auditWindow: 16, auditEvery: time.Hour,
		slo: "on", funnel: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = a.shutdown(ctx)
	})
	dbgBase := startDebugListener(t, a)

	const explainBody = `{"loc":{"x":0.5,"y":0.5},"capacity":1,"viewProb":0.5}`
	endpoints := []struct {
		method, path, body string
	}{
		{"GET", "/v1/debug/traces", ""}, {"GET", "/debug/traces", ""},
		{"GET", "/v1/debug/audit", ""}, {"GET", "/debug/audit", ""},
		{"GET", "/v1/debug/timeseries", ""}, {"GET", "/debug/timeseries", ""},
		{"GET", "/v1/debug/slo", ""}, {"GET", "/debug/slo", ""},
		{"POST", "/v1/debug/explain", explainBody}, {"POST", "/debug/explain", explainBody},
		{"GET", "/v1/debug/campaigns/0/funnel", ""}, {"GET", "/debug/campaigns/0/funnel", ""},
	}
	do := func(method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, dbgBase+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Broker not booted: the recovering window, held open deliberately.
	for _, ep := range endpoints {
		resp := do(ep.method, ep.path, ep.body)
		var env struct {
			Error struct{ Code string } `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s %s during recovery: decoding envelope: %v", ep.method, ep.path, err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "unavailable" {
			t.Fatalf("%s %s during recovery → %d %q, want 503 unavailable",
				ep.method, ep.path, resp.StatusCode, env.Error.Code)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s %s during recovery: missing Retry-After", ep.method, ep.path)
		}
	}

	// Recovery finishes: every endpoint flips to serving. Campaign 0 must
	// exist for the funnel route to answer 200 rather than 404.
	if err := a.boot(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.b.Load().RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 25, []float64{1, 0, 0.2}); err != nil {
		t.Fatal(err)
	}
	for _, ep := range endpoints {
		resp := do(ep.method, ep.path, ep.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s %s after recovery → %d, want 200", ep.method, ep.path, resp.StatusCode)
		}
	}
}

// TestDebugFunnelDisabled404 pins the envelope when muaa-serve runs with
// -funnel=false: the funnel route answers 404 funnel_disabled (not a bare
// 404), while the explain route keeps working — explain replays the scan
// directly and does not depend on funnel attribution.
func TestDebugFunnelDisabled404(t *testing.T) {
	_, a := startServerOpts(t, serverOpts{funnel: false})
	dbgBase := startDebugListener(t, a)

	resp, err := http.Get(dbgBase + "/v1/debug/campaigns/0/funnel")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error struct{ Code string } `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound || env.Error.Code != "funnel_disabled" {
		t.Fatalf("funnel route with -funnel=false → %d %q, want 404 funnel_disabled",
			resp.StatusCode, env.Error.Code)
	}

	var rep struct {
		Gathered int `json:"gathered"`
	}
	if code := postJSON(t, dbgBase+"/v1/debug/explain",
		`{"loc":{"x":0.5,"y":0.5},"capacity":1,"viewProb":0.5}`, &rep); code != http.StatusOK {
		t.Fatalf("POST /v1/debug/explain with -funnel=false → %d, want 200", code)
	}
}

// TestDebugTimeseriesAndSLOServe drives the booted server and reads the two
// new debug documents end to end: the retention rings carry real series and
// the SLO document lists the default rule set.
func TestDebugTimeseriesAndSLOServe(t *testing.T) {
	base, a := startServerOpts(t, serverOpts{slo: "on"})
	dbgBase := startDebugListener(t, a)

	if code := postJSON(t, base+"/v1/campaigns",
		`{"loc":{"x":0.5,"y":0.5},"radius":0.15,"budget":20,"tags":[1,0,0.2]}`, nil); code != http.StatusCreated {
		t.Fatalf("POST /v1/campaigns → %d", code)
	}
	a.sampler.SampleAt(time.Now())
	a.sampler.SampleAt(time.Now().Add(time.Second))

	var ts struct {
		Schema string `json:"schema"`
		Series []struct {
			Name string `json:"name"`
		} `json:"series"`
	}
	if code := getJSON(t, dbgBase+"/v1/debug/timeseries?series=muaa_broker_arrivals_total", &ts); code != http.StatusOK {
		t.Fatalf("GET /v1/debug/timeseries → %d", code)
	}
	if ts.Schema != "muaa-timeseries/1" || len(ts.Series) == 0 {
		t.Fatalf("timeseries document = %+v", ts)
	}

	var slo struct {
		Schema string `json:"schema"`
		Rules  []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"rules"`
	}
	if code := getJSON(t, dbgBase+"/v1/debug/slo", &slo); code != http.StatusOK {
		t.Fatalf("GET /v1/debug/slo → %d", code)
	}
	if slo.Schema != "muaa-slo/1" || len(slo.Rules) != 6 {
		t.Fatalf("slo document = %+v", slo)
	}
}

// TestDebugDisabledSubsystems pins the 404 envelopes when a debug subsystem
// is turned off by flags, and the constructor error for -slo without the
// sampler it depends on.
func TestDebugDisabledSubsystems(t *testing.T) {
	_, a := startServerOpts(t, serverOpts{
		traceCapacity: 0, sampleEvery: -1, slo: "",
	})
	dbgBase := startDebugListener(t, a)
	var env struct {
		Error struct{ Code string } `json:"error"`
	}
	for path, code := range map[string]string{
		"/v1/debug/traces":     "tracing_disabled",
		"/v1/debug/timeseries": "sampler_disabled",
		"/v1/debug/slo":        "slo_disabled",
	} {
		if got := getJSON(t, dbgBase+path, &env); got != http.StatusNotFound || env.Error.Code != code {
			t.Errorf("GET %s → %d %q, want 404 %q", path, got, env.Error.Code, code)
		}
	}

	if _, err := newServer(serverOpts{addr: "127.0.0.1:0", sampleEvery: -1, slo: "on"}, nil); err == nil {
		t.Fatal("-slo without the sampler must be a config error")
	}
}
