package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer binds an ephemeral port, serves on it in the background, and
// returns the base URL.
func startServer(t *testing.T, g, pacing float64, shards int) string {
	t.Helper()
	srv, err := newServer("127.0.0.1:0", g, pacing, shards)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + ln.Addr().String()
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding response: %v", url, err)
	}
	return resp.StatusCode
}

// TestServeSmoke boots the real server on an ephemeral port and replays the
// README example session end to end: register a campaign, send an arrival
// inside its range, and read the counters back.
func TestServeSmoke(t *testing.T) {
	base := startServer(t, 0, 0, 0)

	var created struct {
		ID int32 `json:"id"`
	}
	if code := postJSON(t, base+"/campaigns",
		`{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}`, &created); code != http.StatusCreated {
		t.Fatalf("POST /campaigns → %d", code)
	}

	var arrival struct {
		Offers []struct {
			Campaign   int32   `json:"campaign"`
			AdTypeName string  `json:"adTypeName"`
			Cost       float64 `json:"cost"`
			Utility    float64 `json:"utility"`
		} `json:"offers"`
	}
	if code := postJSON(t, base+"/arrivals",
		`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, &arrival); code != http.StatusOK {
		t.Fatalf("POST /arrivals → %d", code)
	}
	if len(arrival.Offers) == 0 {
		t.Fatal("README example arrival produced no offers")
	}
	for _, o := range arrival.Offers {
		if o.Campaign != created.ID || o.AdTypeName == "" || o.Cost <= 0 || o.Utility <= 0 {
			t.Fatalf("malformed offer %+v", o)
		}
	}

	var stats struct {
		Campaigns     int     `json:"Campaigns"`
		Arrivals      int64   `json:"Arrivals"`
		OffersPushed  int64   `json:"OffersPushed"`
		BudgetSpent   float64 `json:"BudgetSpent"`
		UtilityServed float64 `json:"UtilityServed"`
		GammaMin      float64 `json:"GammaMin"`
		GammaMax      float64 `json:"GammaMax"`
	}
	if code := getJSON(t, base+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats → %d", code)
	}
	if stats.Campaigns != 1 || stats.Arrivals != 1 || stats.OffersPushed != int64(len(arrival.Offers)) {
		t.Fatalf("stats don't reflect the session: %+v", stats)
	}
	if stats.BudgetSpent <= 0 || stats.UtilityServed <= 0 || stats.GammaMin <= 0 || stats.GammaMax < stats.GammaMin {
		t.Fatalf("counters malformed: %+v", stats)
	}

	// The campaign list and the SVG map render against the same state.
	var list []struct {
		ID    int32   `json:"id"`
		Spent float64 `json:"spent"`
	}
	if code := getJSON(t, base+"/campaigns", &list); code != http.StatusOK {
		t.Fatalf("GET /campaigns → %d", code)
	}
	if len(list) != 1 || list[0].Spent != stats.BudgetSpent {
		t.Fatalf("campaign list inconsistent with stats: %+v vs %+v", list, stats)
	}
	resp, err := http.Get(base + "/map.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var svg bytes.Buffer
	if _, err := svg.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(svg.String(), "<svg") {
		t.Fatalf("GET /map.svg → %d, body %q…", resp.StatusCode, svg.String()[:min(80, svg.Len())])
	}
}

// TestServeConcurrentSessions exercises the server under parallel HTTP
// clients — the smoke-level version of the broker's soak test.
func TestServeConcurrentSessions(t *testing.T) {
	base := startServer(t, 0, 0, 8)
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"loc":{"x":%g,"y":%g},"radius":0.15,"budget":30,"tags":[1,0,0.2]}`,
			0.2+0.04*float64(i), 0.2+0.04*float64(i))
		if code := postJSON(t, base+"/campaigns", body, nil); code != http.StatusCreated {
			t.Fatalf("campaign %d → %d", i, code)
		}
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			client := &http.Client{Timeout: 10 * time.Second}
			for i := 0; i < 25; i++ {
				x := 0.2 + 0.04*float64((w*25+i)%16)
				body := fmt.Sprintf(`{"loc":{"x":%g,"y":%g},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, x, x)
				resp, err := client.Post(base+"/arrivals", "application/json", strings.NewReader(body))
				if err != nil {
					done <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("arrival → %d", resp.StatusCode)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var stats struct {
		Arrivals int64 `json:"Arrivals"`
	}
	if code := getJSON(t, base+"/stats", &stats); code != http.StatusOK || stats.Arrivals != 200 {
		t.Fatalf("stats after concurrent sessions: code %d, %+v", code, stats)
	}
}

// TestServeRejectsBadConfig pins flag validation through the same path main
// uses.
func TestServeRejectsBadConfig(t *testing.T) {
	if _, err := newServer(":0", 1, 0, 0); err == nil {
		t.Error("g ≤ e must be rejected")
	}
	if _, err := newServer(":0", 0, -1, 0); err == nil {
		t.Error("negative pacing must be rejected")
	}
	if _, err := newServer(":0", 0, 0, -1); err == nil {
		t.Error("negative shard count must be rejected")
	}
}

// TestServeMetricsAndHealth scrapes the observability endpoints of a live
// server: /healthz must answer 200 immediately, and /metrics must return
// Prometheus text exposition covering the arrival latency histograms,
// per-stripe lock counters, and the live O-AFA threshold gauges — the
// acceptance contract of docs/OPERATIONS.md.
func TestServeMetricsAndHealth(t *testing.T) {
	base := startServer(t, 0, 0, 4)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz → %d", resp.StatusCode)
	}

	// Generate some traffic so the histograms have observations.
	if code := postJSON(t, base+"/campaigns",
		`{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}`, nil); code != http.StatusCreated {
		t.Fatalf("POST /campaigns → %d", code)
	}
	if code := postJSON(t, base+"/arrivals",
		`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
		t.Fatalf("POST /arrivals → %d", code)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics → %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q, want text exposition v0.0.4", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := body.String()
	for _, want := range []string{
		"# TYPE muaa_broker_arrival_seconds histogram",
		"muaa_broker_arrival_seconds_count 1",
		`muaa_broker_arrival_stage_seconds_bucket{stage="scan",le="+Inf"}`,
		`muaa_broker_stripe_lock_total{stripe="`,
		"muaa_broker_threshold_g",
		`muaa_broker_threshold{delta="0"}`,
		"muaa_broker_gamma_min",
		"muaa_broker_arrivals_total 1",
		"muaa_broker_campaigns 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugServer exercises the opt-in pprof listener: the index and a
// profile endpoint must answer on the debug address, and the main serving
// mux must NOT expose /debug/pprof/.
func TestDebugServer(t *testing.T) {
	dbg := newDebugServer("127.0.0.1:0")
	ln, err := net.Listen("tcp", dbg.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = dbg.Serve(ln) }()
	t.Cleanup(func() { _ = dbg.Close() })
	dbgBase := "http://" + ln.Addr().String()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(dbgBase + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s → %d", path, resp.StatusCode)
		}
	}

	base := startServer(t, 0, 0, 0)
	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("serving port must not expose /debug/pprof/")
	}
}
