package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"muaa/internal/trace"
)

// syncBuffer is a bytes.Buffer safe to share between the server's log
// goroutines and the test's assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes every JSON log line in the buffer.
func (b *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// tracedServer boots a server with the flight recorder enabled and a
// JSON logger writing into the returned buffer, registers one campaign,
// and returns the base URL plus the app.
func tracedServer(t *testing.T) (string, *syncBuffer, *app) {
	t.Helper()
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	base, _, a := startServerLogged(t, serverOpts{
		traceCapacity: 64,
		traceSlow:     time.Millisecond,
	}, logger)
	if code := postJSON(t, base+"/v1/campaigns",
		`{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}`, nil); code != http.StatusCreated {
		t.Fatalf("POST /v1/campaigns → %d", code)
	}
	return base, buf, a
}

// wireTrace mirrors the /v1/debug/traces JSON schema (docs/OPERATIONS.md).
type wireTrace struct {
	TraceID      string `json:"trace_id"`
	SpanID       string `json:"span_id"`
	ParentSpanID string `json:"parent_span_id"`
	Name         string `json:"name"`
	DurationNS   int64  `json:"duration_ns"`
	Outcome      string `json:"outcome"`
	Spans        []struct {
		Name          string `json:"name"`
		StartUnixNano int64  `json:"start_unix_nano"`
		DurationNS    int64  `json:"duration_ns"`
	} `json:"spans"`
}

func getTraces(t *testing.T, url string) []wireTrace {
	t.Helper()
	var page struct {
		Traces []wireTrace `json:"traces"`
	}
	if code := getJSON(t, url, &page); code != http.StatusOK {
		t.Fatalf("GET %s → %d", url, code)
	}
	return page.Traces
}

// TestServeTraceparentEchoAndAccessLog drives an arrival with an incoming
// W3C traceparent and checks both halves of the request-scoped contract:
// the response echoes a traceparent continuing the caller's trace, and the
// access log carries the same trace_id alongside method/path/status/latency.
func TestServeTraceparentEchoAndAccessLog(t *testing.T) {
	base, buf, _ := tracedServer(t)

	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, base+"/v1/arrivals",
		strings.NewReader(`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+callerTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/arrivals → %d", resp.StatusCode)
	}

	echoed := resp.Header.Get("Traceparent")
	tid, sid, ok := trace.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echoed)
	}
	if tid.String() != callerTrace {
		t.Fatalf("echoed trace id %s, want the caller's %s", tid, callerTrace)
	}
	if sid.String() == "00f067aa0ba902b7" {
		t.Fatal("server must mint its own span id, not echo the caller's")
	}

	var access map[string]any
	for _, line := range buf.logLines(t) {
		if line["msg"] == "http_request" && line["path"] == "/v1/arrivals" {
			access = line
		}
	}
	if access == nil {
		t.Fatalf("no http_request access log for /v1/arrivals in:\n%s", buf.String())
	}
	if access["trace_id"] != callerTrace {
		t.Errorf("access log trace_id = %v, want %s", access["trace_id"], callerTrace)
	}
	if access["method"] != "POST" || access["status"] != float64(http.StatusOK) {
		t.Errorf("access log method/status = %v/%v", access["method"], access["status"])
	}
	if ms, ok := access["duration_ms"].(float64); !ok || ms <= 0 {
		t.Errorf("access log duration_ms = %v", access["duration_ms"])
	}
}

// TestServeDebugTracesEndToEnd is the full operator loop: take traffic on
// the public surface, then pull the flight recorder over the debug listener
// and chase the slowest arrival through ?min_ms=. The retrieved trace must
// carry all four stage child spans, back to back, summing to the root.
func TestServeDebugTracesEndToEnd(t *testing.T) {
	base, _, a := tracedServer(t)
	for i := 0; i < 10; i++ {
		if code := postJSON(t, base+"/v1/arrivals",
			`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
			t.Fatalf("arrival %d → %d", i, code)
		}
	}

	dbg := a.newDebugServer("127.0.0.1:0")
	ln, err := net.Listen("tcp", dbg.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = dbg.Serve(ln) }()
	t.Cleanup(func() { _ = dbg.Close() })
	dbgBase := "http://" + ln.Addr().String()

	all := getTraces(t, dbgBase+"/v1/debug/traces")
	if len(all) != 10 {
		t.Fatalf("recorder holds %d traces, want 10", len(all))
	}
	slowest := all[0]
	for _, tr := range all {
		if tr.DurationNS > slowest.DurationNS {
			slowest = tr
		}
	}

	// The slow arrival is retrievable through the ?min_ms= filter (a hair
	// under its own duration, so float→duration conversion can't lose it).
	minMs := fmt.Sprintf("%.6f", float64(slowest.DurationNS-1000)/1e6)
	found := false
	for _, tr := range getTraces(t, dbgBase+"/v1/debug/traces?min_ms="+minMs) {
		if tr.DurationNS < slowest.DurationNS-1000 {
			t.Fatalf("min_ms=%s returned a %dns trace", minMs, tr.DurationNS)
		}
		if tr.TraceID == slowest.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("slowest trace %s not retrievable via min_ms=%s", slowest.TraceID, minMs)
	}

	// The retrieved trace is a complete span tree: root "arrival" plus the
	// four stage children partitioning it end to end.
	if slowest.Name != "arrival" {
		t.Fatalf("trace name = %s, want arrival", slowest.Name)
	}
	if slowest.Outcome != "offered" && slowest.Outcome != "no_offers" {
		t.Fatalf("trace outcome = %s", slowest.Outcome)
	}
	if len(slowest.Spans) != trace.NumStages {
		t.Fatalf("trace has %d child spans, want %d", len(slowest.Spans), trace.NumStages)
	}
	var sum int64
	for i, sp := range slowest.Spans {
		if sp.Name != trace.StageNames[i] {
			t.Errorf("span %d named %q, want %q", i, sp.Name, trace.StageNames[i])
		}
		sum += sp.DurationNS
	}
	if sum != slowest.DurationNS {
		t.Fatalf("stage spans sum to %dns, root span is %dns", sum, slowest.DurationNS)
	}

	// Outcome filtering works over HTTP too: the filtered view returns only
	// matching traces, and exactly as many as the unfiltered view contains.
	offered := 0
	for _, tr := range all {
		if tr.Outcome == "offered" {
			offered++
		}
	}
	if offered == 0 {
		t.Fatal("no offered arrivals in the recorder")
	}
	got := getTraces(t, dbgBase+"/v1/debug/traces?outcome=offered")
	if len(got) != offered {
		t.Fatalf("outcome=offered returned %d traces, want %d", len(got), offered)
	}
	for _, tr := range got {
		if tr.Outcome != "offered" {
			t.Fatalf("outcome=offered returned %+v", tr)
		}
	}
	if got := getTraces(t, dbgBase+"/v1/debug/traces?limit=3"); len(got) != 3 {
		t.Fatalf("limit=3 returned %d traces", len(got))
	}
}

// TestServeDebugListenerFailureKeepsServing is the regression test for the
// debug goroutine: a debug listener that cannot bind (port already taken)
// must degrade to a structured error log, not kill the serving process.
func TestServeDebugListenerFailureKeepsServing(t *testing.T) {
	base, buf, a := tracedServer(t)

	// Occupy a port, then point the debug listener at it.
	taken, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer taken.Close()
	a.startDebug(a.newDebugServer(taken.Addr().String()))

	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(buf.String(), "debug_listener_failed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no debug_listener_failed log line in:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The main surface is still serving after the debug listener died.
	if code := postJSON(t, base+"/v1/arrivals",
		`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
		t.Fatalf("arrival after debug-listener failure → %d", code)
	}
}

// TestServeNoGlobalLogOutput pins the structured-logging contract: nothing
// in the serving path writes through the stdlib global log logger — not
// request handling, not the debug-listener failure path, not shutdown.
func TestServeNoGlobalLogOutput(t *testing.T) {
	var buf syncBuffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	base, _, a := tracedServer(t)
	if code := postJSON(t, base+"/v1/arrivals",
		`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`, nil); code != http.StatusOK {
		t.Fatalf("arrival → %d", code)
	}
	taken, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer taken.Close()
	a.startDebug(a.newDebugServer(taken.Addr().String()))
	time.Sleep(50 * time.Millisecond) // let the failed listener goroutine log

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); out != "" {
		t.Fatalf("stdlib global log received output:\n%s", out)
	}
}
