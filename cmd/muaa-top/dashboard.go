package main

// The dashboard half of muaa-top: polling the serve and debug ports,
// parsing what comes back, deriving rates and windowed quantiles between
// polls, and rendering one frame. Everything here is pure enough to test
// against httptest fakes; main.go owns the terminal lifecycle.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// snapshot is one poll: the merged metric samples, the broker stats
// document, and the SLO document (nil when the watchdog is off or the
// debug port is unreachable).
type snapshot struct {
	when    time.Time
	samples map[string]float64 // "name{labels}" → value
	stats   *brokerStats
	slo     *sloDoc
	errs    []string // per-source fetch failures, rendered in the footer
}

// brokerStats mirrors the /v1/stats document (broker.Stats marshals with
// Go field names).
type brokerStats struct {
	Campaigns         int
	Arrivals          int64
	OffersPushed      int64
	UtilityServed     float64
	BudgetSpent       float64
	GammaMin          float64
	GammaMax          float64
	G                 float64
	PhiBoost          float64
	PacingEpoch       int64
	EscrowHeld        float64
	EscrowReleased    float64
	Conversions       int64
	ConversionRevenue float64
}

// sloDoc mirrors GET /v1/debug/slo (internal/slo.Snapshot).
type sloDoc struct {
	Schema string `json:"schema"`
	Firing int    `json:"firing"`
	Rules  []struct {
		Name      string   `json:"name"`
		Series    string   `json:"series"`
		State     string   `json:"state"`
		Value     *float64 `json:"value"`
		Threshold float64  `json:"threshold"`
		Below     bool     `json:"below"`
		ShortBurn float64  `json:"short_burn"`
		LongBurn  float64  `json:"long_burn"`
		Fired     uint64   `json:"fired_total"`
	} `json:"rules"`
}

// parseProm reads Prometheus text exposition into sample → value. Comment
// and blank lines are skipped; the key keeps the rendered labels so
// histogram buckets stay distinct.
func parseProm(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue // timestamps or exotic values; this is a viewer, not a parser suite
		}
		out[line[:i]] = v
	}
	return out, nil
}

// bucketsOf extracts a histogram's cumulative buckets (le → count). Only
// label-less histograms are rendered by muaa-top, so the sample key is
// exactly name_bucket{le="..."}.
func bucketsOf(samples map[string]float64, name string) map[float64]float64 {
	prefix := name + `_bucket{le="`
	out := map[float64]float64{}
	for k, v := range samples {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		le := strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			if le == "+Inf" {
				f = math.Inf(1)
			} else {
				continue
			}
		}
		out[f] = v
	}
	return out
}

// histQuantile computes quantile q from the delta between two cumulative
// bucket snapshots (prev may be nil: lifetime quantile). Returns the upper
// edge of the bucket the rank lands in — the resolution the exponential
// bucket layout gives — or NaN when the window saw no observations.
func histQuantile(cur, prev map[float64]float64, q float64) float64 {
	les := make([]float64, 0, len(cur))
	for le := range cur {
		les = append(les, le)
	}
	sort.Float64s(les)
	if len(les) == 0 {
		return math.NaN()
	}
	delta := func(le float64) float64 {
		d := cur[le] - prev[le] // nil map reads as 0
		if d < 0 {
			d = 0 // counter reset between polls
		}
		return d
	}
	total := delta(les[len(les)-1])
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	for _, le := range les {
		if delta(le) >= rank {
			return le
		}
	}
	return les[len(les)-1]
}

// ring is muaa-top's own sparkline history: a fixed window of the most
// recent derived values per panel row.
type ring struct {
	vals []float64
	head int
	n    int
}

func newRing(capacity int) *ring { return &ring{vals: make([]float64, capacity)} }

func (r *ring) push(v float64) {
	r.vals[r.head] = v
	r.head = (r.head + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
}

// window returns the retained values, oldest first.
func (r *ring) window() []float64 {
	out := make([]float64, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.vals[(r.head-r.n+i+len(r.vals))%len(r.vals)])
	}
	return out
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals (oldest first) into at most width cells, scaling
// to the window's own min..max; NaN renders as a gap.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var sb strings.Builder
	for _, v := range vals {
		switch {
		case math.IsNaN(v):
			sb.WriteByte(' ')
		case hi <= lo:
			sb.WriteRune(sparkRunes[0])
		default:
			idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			sb.WriteRune(sparkRunes[idx])
		}
	}
	return sb.String()
}

// funnelRow is one campaign's decision-funnel attribution, extracted from
// the muaa_funnel_campaign_total samples (the broker's top-N heavy
// hitters; see internal/broker/funnel.go).
type funnelRow struct {
	campaign string
	gathered float64
	offered  float64
	// topGate is the non-offered disposition that disposed of the most
	// gathered arrivals — the dominant reason this campaign is not serving.
	topGate  string
	topGateV float64
}

// funnelRows groups the funnel samples by campaign, sorted by gathered
// descending (campaign id ascending as the tiebreak, matching the broker's
// own top-N order). Empty when the funnel is disabled or never scraped.
func funnelRows(samples map[string]float64) []funnelRow {
	const prefix = `muaa_funnel_campaign_total{`
	byCampaign := map[string]map[string]float64{}
	for k, v := range samples {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		var campaign, disp string
		for _, part := range strings.Split(strings.TrimSuffix(strings.TrimPrefix(k, prefix), "}"), ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				continue
			}
			// Campaign ids are numeric and dispositions are fixed idents, so
			// plain quote-trimming is enough here (no escapes to unwind).
			val := strings.Trim(kv[1], `"`)
			switch kv[0] {
			case "campaign":
				campaign = val
			case "disposition":
				disp = val
			}
		}
		if campaign == "" || disp == "" {
			continue
		}
		m, ok := byCampaign[campaign]
		if !ok {
			m = map[string]float64{}
			byCampaign[campaign] = m
		}
		m[disp] = v
	}
	rows := make([]funnelRow, 0, len(byCampaign))
	for campaign, dispositions := range byCampaign {
		row := funnelRow{campaign: campaign}
		for disp, v := range dispositions {
			switch disp {
			case "gathered":
				row.gathered = v
			case "offered":
				row.offered = v
			default:
				if v > row.topGateV || (v == row.topGateV && v > 0 && disp < row.topGate) {
					row.topGate, row.topGateV = disp, v
				}
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].gathered != rows[j].gathered {
			return rows[i].gathered > rows[j].gathered
		}
		// Numeric-aware id order so "10" sorts after "9".
		if len(rows[i].campaign) != len(rows[j].campaign) {
			return len(rows[i].campaign) < len(rows[j].campaign)
		}
		return rows[i].campaign < rows[j].campaign
	})
	return rows
}

// client fetches one snapshot from the two ports.
type client struct {
	base      string // serving port, e.g. http://127.0.0.1:8080
	debugBase string // debug port, e.g. http://127.0.0.1:6060; "" = skip SLO panel
	hc        *http.Client
}

func (c *client) get(url string, accept func(*http.Response) error) error {
	resp, err := c.hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return accept(resp)
}

func (c *client) snapshot() *snapshot {
	s := &snapshot{when: time.Now(), samples: map[string]float64{}}
	// Two filtered scrapes — the muaa_* instruments and the go_* runtime
	// gauges — kept apart so a huge unrelated registry never lands here.
	for _, prefix := range []string{"muaa_", "go_"} {
		err := c.get(c.base+"/v1/metrics?name="+prefix, func(resp *http.Response) error {
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			m, err := parseProm(resp.Body)
			if err != nil {
				return err
			}
			for k, v := range m {
				s.samples[k] = v
			}
			return nil
		})
		if err != nil {
			s.errs = append(s.errs, "metrics: "+err.Error())
			break
		}
	}
	err := c.get(c.base+"/v1/stats", func(resp *http.Response) error {
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var st brokerStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return err
		}
		s.stats = &st
		return nil
	})
	if err != nil {
		s.errs = append(s.errs, "stats: "+err.Error())
	}
	if c.debugBase != "" {
		err := c.get(c.debugBase+"/v1/debug/slo", func(resp *http.Response) error {
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			var doc sloDoc
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				return err
			}
			s.slo = &doc
			return nil
		})
		if err != nil {
			s.errs = append(s.errs, "slo: "+err.Error())
		}
	}
	return s
}

// model folds successive snapshots into rates, quantiles, and sparkline
// history.
type model struct {
	prev, cur *snapshot
	hist      map[string]*ring
	histCap   int
}

func newModel(histCap int) *model {
	if histCap <= 0 {
		histCap = 60
	}
	return &model{hist: map[string]*ring{}, histCap: histCap}
}

// observe appends a snapshot and records the sparkline series.
func (m *model) observe(s *snapshot) {
	m.prev, m.cur = m.cur, s
	m.record("arrivals/s", m.rate("muaa_broker_arrivals_total"))
	m.record("offers/s", m.rate("muaa_broker_offers_pushed_total"))
	m.record("wal appends/s", m.rate("muaa_wal_appends_total"))
	m.record("arrival p99", m.quantile("muaa_broker_arrival_seconds", 0.99))
	m.record("wal fsync p99", m.quantile("muaa_wal_flush_seconds", 0.99))
	m.record("ratio", m.gauge("muaa_broker_empirical_ratio"))
	m.record("boost", m.gauge("muaa_pacing_boost"))
	m.record("goroutines", m.gauge("go_goroutines"))
	m.record("heap", m.gauge("go_heap_alloc_bytes"))
}

func (m *model) record(name string, v float64) {
	r, ok := m.hist[name]
	if !ok {
		r = newRing(m.histCap)
		m.hist[name] = r
	}
	r.push(v)
}

func (m *model) spark(name string, width int) string {
	if r, ok := m.hist[name]; ok {
		return sparkline(r.window(), width)
	}
	return ""
}

// gauge reads a sample from the current snapshot; NaN when absent.
func (m *model) gauge(sample string) float64 {
	if m.cur == nil {
		return math.NaN()
	}
	if v, ok := m.cur.samples[sample]; ok {
		return v
	}
	return math.NaN()
}

// rate derives a counter's per-second rate between the last two polls.
func (m *model) rate(counter string) float64 {
	if m.prev == nil || m.cur == nil {
		return math.NaN()
	}
	cv, cok := m.cur.samples[counter]
	pv, pok := m.prev.samples[counter]
	dt := m.cur.when.Sub(m.prev.when).Seconds()
	if !cok || !pok || dt <= 0 {
		return math.NaN()
	}
	d := cv - pv
	if d < 0 {
		d = 0 // restart between polls
	}
	return d / dt
}

// quantile derives a histogram quantile over the inter-poll window,
// falling back to the lifetime distribution on the first poll.
func (m *model) quantile(hist string, q float64) float64 {
	if m.cur == nil {
		return math.NaN()
	}
	cur := bucketsOf(m.cur.samples, hist)
	var prev map[float64]float64
	if m.prev != nil {
		prev = bucketsOf(m.prev.samples, hist)
	}
	return histQuantile(cur, prev, q)
}

// ANSI fragments, blanked when color is off.
type palette struct{ reset, bold, dim, red, green, yellow, cyan string }

func newPalette(color bool) palette {
	if !color {
		return palette{}
	}
	return palette{
		reset: "\x1b[0m", bold: "\x1b[1m", dim: "\x1b[2m",
		red: "\x1b[31m", green: "\x1b[32m", yellow: "\x1b[33m", cyan: "\x1b[36m",
	}
}

func fmtVal(v float64, format string) string {
	if math.IsNaN(v) {
		return "—"
	}
	return fmt.Sprintf(format, v)
}

func fmtDuration(sec float64) string {
	if math.IsNaN(sec) {
		return "—"
	}
	d := time.Duration(sec * float64(time.Second))
	return d.Truncate(time.Second).String()
}

// render writes one dashboard frame. Pure with respect to the model: safe
// to call from tests with a bytes.Buffer.
func (m *model) render(w io.Writer, base string, color bool) {
	p := newPalette(color)
	s := m.cur
	if s == nil {
		fmt.Fprintln(w, "muaa-top: no data yet")
		return
	}
	const sw = 24 // sparkline width

	fmt.Fprintf(w, "%smuaa-top%s  %s  %s\n", p.bold, p.reset, base,
		s.when.Format("15:04:05"))
	fmt.Fprintf(w, "uptime %s   metric series %s\n",
		fmtDuration(m.gauge("muaa_process_uptime_seconds")),
		fmtVal(m.gauge("muaa_obs_series"), "%.0f"))

	row := func(name, format, unit string, scale float64) {
		v := math.NaN()
		if r, ok := m.hist[name]; ok && r.n > 0 {
			v = r.window()[r.n-1]
		}
		fmt.Fprintf(w, "  %-14s %10s %-4s %s%s%s\n",
			name, fmtVal(v*scale, format), unit, p.cyan, m.spark(name, sw), p.reset)
	}

	fmt.Fprintf(w, "\n%sTHROUGHPUT%s\n", p.bold, p.reset)
	row("arrivals/s", "%.1f", "", 1)
	row("offers/s", "%.1f", "", 1)
	row("wal appends/s", "%.1f", "", 1)

	fmt.Fprintf(w, "\n%sLATENCY%s  (windowed histogram p99)\n", p.bold, p.reset)
	row("arrival p99", "%.3f", "ms", 1e3)
	row("wal fsync p99", "%.3f", "ms", 1e3)

	fmt.Fprintf(w, "\n%sALGORITHM%s\n", p.bold, p.reset)
	row("ratio", "%.3f", "", 1)
	row("boost", "%.3f", "", 1)
	if st := s.stats; st != nil {
		fmt.Fprintf(w, "  campaigns %d   arrivals %d   offers %d\n",
			st.Campaigns, st.Arrivals, st.OffersPushed)
		fmt.Fprintf(w, "  γ∈[%.3g, %.3g]  g=%.3g  utility %.2f\n",
			st.GammaMin, st.GammaMax, st.G, st.UtilityServed)
		fmt.Fprintf(w, "\n%sBILLING%s\n", p.bold, p.reset)
		fmt.Fprintf(w, "  spent %.2f   escrow held %.2f (open %s)\n",
			st.BudgetSpent, st.EscrowHeld, fmtVal(m.gauge("muaa_billing_escrow_open"), "%.0f"))
		fmt.Fprintf(w, "  conversions %d   conversion revenue %.2f\n",
			st.Conversions, st.ConversionRevenue)
	}

	if rows := funnelRows(s.samples); len(rows) > 0 {
		fmt.Fprintf(w, "\n%sFUNNEL%s  (top campaigns by gathered; gate = dominant rejection)\n", p.bold, p.reset)
		const maxRows = 8
		shown := rows
		if len(shown) > maxRows {
			shown = shown[:maxRows]
		}
		for _, r := range shown {
			rate := math.NaN()
			if r.gathered > 0 {
				rate = r.offered / r.gathered
			}
			gate := ""
			if r.topGateV > 0 {
				gate = fmt.Sprintf("  %s %.0f", r.topGate, r.topGateV)
			}
			fmt.Fprintf(w, "  campaign %-8s gathered %8.0f  offered %8.0f  rate %s%s\n",
				r.campaign, r.gathered, r.offered, fmtVal(rate, "%.3f"), gate)
		}
		if len(rows) > maxRows {
			fmt.Fprintf(w, "  %s… %d more campaigns%s\n", p.dim, len(rows)-maxRows, p.reset)
		}
	}

	fmt.Fprintf(w, "\n%sRUNTIME%s\n", p.bold, p.reset)
	row("goroutines", "%.0f", "", 1)
	row("heap", "%.1f", "MiB", 1.0/(1<<20))

	fmt.Fprintf(w, "\n%sSLO%s", p.bold, p.reset)
	switch {
	case s.slo == nil:
		fmt.Fprintf(w, "  %swatchdog off or debug port unreachable%s\n", p.dim, p.reset)
	case s.slo.Firing > 0:
		fmt.Fprintf(w, "  %s%d FIRING%s\n", p.red, s.slo.Firing, p.reset)
	default:
		fmt.Fprintf(w, "  %sall ok%s\n", p.green, p.reset)
	}
	if s.slo != nil {
		for _, r := range s.slo.Rules {
			mark, col := "·", p.dim
			switch r.State {
			case "ok":
				mark, col = "✓", p.green
			case "firing":
				mark, col = "✗", p.red
			}
			dir := ">"
			if r.Below {
				dir = "<"
			}
			val := "—"
			if r.Value != nil {
				val = strconv.FormatFloat(*r.Value, 'g', 4, 64)
			}
			fmt.Fprintf(w, "  %s%s %-12s %-7s%s  %s %s %g  burn %.0f%%/%.0f%%  fired %d\n",
				col, mark, r.Name, strings.ToUpper(r.State), p.reset,
				val, dir, r.Threshold, 100*r.ShortBurn, 100*r.LongBurn, r.Fired)
		}
	}

	for _, e := range s.errs {
		fmt.Fprintf(w, "\n%s! %s%s\n", p.yellow, e, p.reset)
	}
}
