package main

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseProm(t *testing.T) {
	text := `# HELP demo_seconds x
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.001"} 2
demo_seconds_bucket{le="+Inf"} 5
demo_seconds_sum 0.02
demo_seconds_count 5
demo_total 3
demo_labeled{kind="a",x="1"} 7.5

garbage line without value x
`
	m, err := parseProm(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`demo_seconds_bucket{le="0.001"}`: 2,
		`demo_seconds_bucket{le="+Inf"}`:  5,
		"demo_seconds_sum":                0.02,
		"demo_seconds_count":              5,
		"demo_total":                      3,
		`demo_labeled{kind="a",x="1"}`:    7.5,
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d samples, want %d: %+v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("sample %q = %g, want %g", k, m[k], v)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	inf := math.Inf(1)
	prev := map[float64]float64{0.001: 10, 0.01: 10, 0.1: 10, inf: 10}
	// 90 new observations: 45 in (0.001, 0.01], 45 in (0.01, 0.1].
	cur := map[float64]float64{0.001: 10, 0.01: 55, 0.1: 100, inf: 100}
	if got := histQuantile(cur, prev, 0.5); got != 0.01 {
		t.Errorf("p50 = %g, want 0.01", got)
	}
	if got := histQuantile(cur, prev, 0.99); got != 0.1 {
		t.Errorf("p99 = %g, want 0.1", got)
	}
	// Lifetime quantile when prev is nil.
	if got := histQuantile(cur, nil, 0.01); got != 0.001 {
		t.Errorf("lifetime p1 = %g, want 0.001", got)
	}
	// Idle window → NaN.
	if got := histQuantile(cur, cur, 0.99); !math.IsNaN(got) {
		t.Errorf("idle-window quantile = %g, want NaN", got)
	}
	// Counter reset between polls must clamp, not panic or go negative.
	if got := histQuantile(prev, cur, 0.99); !math.IsNaN(got) {
		t.Errorf("reset-window quantile = %g, want NaN", got)
	}
	if got := histQuantile(map[float64]float64{}, nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram quantile = %g, want NaN", got)
	}
}

func TestSparkline(t *testing.T) {
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}, 8); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q", got)
	}
	if got := sparkline([]float64{math.NaN(), 1, 2}, 8); got != " ▁█" {
		t.Errorf("NaN sparkline = %q", got)
	}
	// Width clips to the newest values.
	if got := sparkline([]float64{9, 9, 0, 8}, 2); got != "▁█" {
		t.Errorf("clipped sparkline = %q", got)
	}
	if got := sparkline(nil, 8); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
}

func TestRingWindow(t *testing.T) {
	r := newRing(3)
	for i := 1; i <= 5; i++ {
		r.push(float64(i))
	}
	w := r.window()
	if len(w) != 3 || w[0] != 3 || w[1] != 4 || w[2] != 5 {
		t.Fatalf("window = %v, want [3 4 5]", w)
	}
}

// TestFunnelRows: grouping, gathered-descending order, and dominant-gate
// extraction from raw sample keys.
func TestFunnelRows(t *testing.T) {
	rows := funnelRows(map[string]float64{
		`muaa_funnel_campaign_total{campaign="9",disposition="gathered"}`:        30,
		`muaa_funnel_campaign_total{campaign="9",disposition="offered"}`:         5,
		`muaa_funnel_campaign_total{campaign="9",disposition="unaffordable"}`:    25,
		`muaa_funnel_campaign_total{campaign="10",disposition="gathered"}`:       80,
		`muaa_funnel_campaign_total{campaign="10",disposition="offered"}`:        80,
		`muaa_funnel_campaign_total{campaign="2",disposition="gathered"}`:        30,
		`muaa_funnel_campaign_total{campaign="2",disposition="below_threshold"}`: 20,
		`muaa_funnel_campaign_total{campaign="2",disposition="tag_mismatch"}`:    10,
		`muaa_other_metric{campaign="1"}`:                                        99,
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(rows), rows)
	}
	if rows[0].campaign != "10" || rows[0].gathered != 80 || rows[0].offered != 80 {
		t.Errorf("row 0 = %+v, want campaign 10 gathered 80 offered 80", rows[0])
	}
	// Equal gathered ties break on numeric-aware campaign id order.
	if rows[1].campaign != "2" || rows[2].campaign != "9" {
		t.Errorf("tie order = %s, %s, want 2, 9", rows[1].campaign, rows[2].campaign)
	}
	if rows[1].topGate != "below_threshold" || rows[1].topGateV != 20 {
		t.Errorf("row 1 gate = %s %g, want below_threshold 20", rows[1].topGate, rows[1].topGateV)
	}
	if rows[2].topGate != "unaffordable" || rows[2].topGateV != 25 {
		t.Errorf("row 2 gate = %s %g, want unaffordable 25", rows[2].topGate, rows[2].topGateV)
	}
	if got := funnelRows(map[string]float64{"muaa_broker_arrivals_total": 1}); len(got) != 0 {
		t.Errorf("no funnel samples should yield no rows, got %+v", got)
	}
}

// fakeServe builds httptest servers that mimic the serving and debug ports.
// The metrics handler honors the ?name= prefix filter the way obs does, and
// arrivalsTotal lets tests advance the counters between polls.
func fakeServe(t *testing.T, arrivals *float64, firing bool) (base, debugBase string) {
	t.Helper()
	serve := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/metrics":
			prefix := r.URL.Query().Get("name")
			all := fmt.Sprintf(`muaa_broker_arrivals_total %g
muaa_broker_offers_pushed_total %g
muaa_broker_arrival_seconds_bucket{le="0.001"} %g
muaa_broker_arrival_seconds_bucket{le="+Inf"} %g
muaa_broker_empirical_ratio 0.91
muaa_pacing_boost 1.25
muaa_process_uptime_seconds 42
muaa_obs_series 12
muaa_funnel_campaign_total{campaign="7",disposition="gathered"} 100
muaa_funnel_campaign_total{campaign="7",disposition="offered"} 40
muaa_funnel_campaign_total{campaign="7",disposition="below_threshold"} 60
muaa_funnel_campaign_total{campaign="3",disposition="gathered"} 20
muaa_funnel_campaign_total{campaign="3",disposition="offered"} 20
go_goroutines 17
go_heap_alloc_bytes 1048576
`, *arrivals, 2*(*arrivals), *arrivals, *arrivals)
			for _, line := range strings.Split(all, "\n") {
				if strings.HasPrefix(line, prefix) {
					fmt.Fprintln(w, line)
				}
			}
		case "/v1/stats":
			fmt.Fprintf(w, `{"Campaigns":3,"Arrivals":%d,"OffersPushed":%d,
				"UtilityServed":12.5,"BudgetSpent":4.5,"GammaMin":0.1,"GammaMax":9.1,
				"G":27.1,"PhiBoost":1.25,"EscrowHeld":0.7,"Conversions":2,
				"ConversionRevenue":1.1}`, int(*arrivals), 2*int(*arrivals))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(serve.Close)

	state, fired := "ok", 0
	if firing {
		state, fired = "firing", 1
	}
	debug := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/debug/slo" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, `{"schema":"muaa-slo/1","eval_unix":1700000000,"evals":9,
			"firing":%d,"rules":[
			 {"name":"goroutines","series":"go_goroutines","state":%q,"value":17,
			  "threshold":0,"below":false,"short_burn":1,"long_burn":1,"fired_total":%d},
			 {"name":"ratio","series":"muaa_broker_empirical_ratio","state":"warmup",
			  "value":null,"threshold":0.75,"below":true,"short_burn":0,"long_burn":0,
			  "fired_total":0}]}`, fired, state, fired)
	}))
	t.Cleanup(debug.Close)
	return serve.URL, debug.URL
}

// TestDashboardEndToEnd polls the fakes twice and checks the frame: real
// inter-poll rates, the SLO table with a FIRING row, and zero ANSI escapes
// in plain mode.
func TestDashboardEndToEnd(t *testing.T) {
	arrivals := 100.0
	base, debugBase := fakeServe(t, &arrivals, true)
	c := &client{base: base, debugBase: debugBase, hc: &http.Client{Timeout: time.Second}}
	m := newModel(0)

	s1 := c.snapshot()
	if len(s1.errs) != 0 {
		t.Fatalf("first poll errors: %v", s1.errs)
	}
	m.observe(s1)
	arrivals += 50
	s2 := c.snapshot()
	s2.when = s1.when.Add(time.Second) // pin dt so the asserted rate is exact
	m.observe(s2)

	var buf bytes.Buffer
	m.render(&buf, base, false)
	out := buf.String()

	for _, want := range []string{
		"muaa-top", "THROUGHPUT", "LATENCY", "ALGORITHM", "BILLING", "FUNNEL", "RUNTIME", "SLO",
		"arrivals/s", "50.0", // (150-100)/1s
		"ratio", "0.910",
		"campaigns 3",
		"below_threshold 60", "rate 0.400",
		"1 FIRING", "goroutines", "FIRING", "WARMUP", "fired 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("plain frame contains ANSI escapes")
	}

	// Color mode emits escapes (and nothing else changes structurally).
	buf.Reset()
	m.render(&buf, base, true)
	if !strings.Contains(buf.String(), "\x1b[") {
		t.Error("color frame has no ANSI escapes")
	}
}

// TestDashboardDegradesWithoutDebugPort: an unreachable debug port keeps
// the rest of the dashboard rendering and flags the SLO panel.
func TestDashboardDegradesWithoutDebugPort(t *testing.T) {
	arrivals := 10.0
	base, _ := fakeServe(t, &arrivals, false)
	c := &client{base: base, debugBase: "http://127.0.0.1:1", hc: &http.Client{Timeout: 500 * time.Millisecond}}
	m := newModel(0)
	m.observe(c.snapshot())

	var buf bytes.Buffer
	m.render(&buf, base, false)
	out := buf.String()
	if !strings.Contains(out, "watchdog off or debug port unreachable") {
		t.Errorf("frame does not flag the missing watchdog:\n%s", out)
	}
	if !strings.Contains(out, "THROUGHPUT") || !strings.Contains(out, "campaigns 3") {
		t.Errorf("frame lost its main panels:\n%s", out)
	}
}

// TestRunOnce drives the -once path end to end against the fakes.
func TestRunOnce(t *testing.T) {
	arrivals := 5.0
	base, debugBase := fakeServe(t, &arrivals, true)
	c := &client{base: base, debugBase: debugBase, hc: &http.Client{Timeout: time.Second}}
	var buf bytes.Buffer
	if err := runOnce(c, newModel(0), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FIRING") || !strings.Contains(out, "THROUGHPUT") {
		t.Errorf("-once frame incomplete:\n%s", out)
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("-once frame contains ANSI escapes")
	}
}

// TestRunOnceUnreachable: a dead serving port is an error, not a blank
// frame with exit 0.
func TestRunOnceUnreachable(t *testing.T) {
	c := &client{base: "http://127.0.0.1:1", debugBase: "", hc: &http.Client{Timeout: 300 * time.Millisecond}}
	var buf bytes.Buffer
	if err := runOnce(c, newModel(0), &buf); err == nil {
		t.Fatal("runOnce against a dead port returned nil error")
	}
}
