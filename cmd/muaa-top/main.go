// Command muaa-top is a live terminal dashboard for a running muaa-serve:
// the operator's one-screen view of throughput, latency, the paper's
// competitive-ratio health, billing, the WAL, and the SLO watchdog.
//
//	muaa-top -addr http://127.0.0.1:8080 -debug-addr http://127.0.0.1:6060
//
// Every -every it polls GET /v1/metrics?name=muaa_ (and ?name=go_) plus
// GET /v1/stats on the serving port and GET /v1/debug/slo on the debug
// port, derives inter-poll rates and windowed histogram quantiles locally,
// and redraws an ANSI frame with unicode sparklines over its own short
// history ring. Nothing is required of the server beyond the endpoints
// muaa-serve already exposes; the binary has no dependencies outside the
// standard library.
//
//	-once    print a single plain-text frame (no ANSI, two quick polls so
//	         rates are real) and exit — for scripts and the CI smoke test
//	-every   poll and redraw cadence (default 2s)
//	-no-color  disable ANSI colors (also implied by -once)
//
// A missing debug port degrades gracefully: the SLO panel reports the
// watchdog as unreachable and everything else keeps rendering.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"muaa/internal/buildinfo"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "muaa-serve base URL (serving port)")
		debugAddr = flag.String("debug-addr", "http://127.0.0.1:6060", "muaa-serve debug base URL for /v1/debug/slo; empty skips the SLO panel")
		every     = flag.Duration("every", 2*time.Second, "poll and redraw cadence")
		once      = flag.Bool("once", false, "print one plain-text frame and exit")
		noColor   = flag.Bool("no-color", false, "disable ANSI colors")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("muaa-top"))
		return
	}

	c := &client{
		base:      *addr,
		debugBase: *debugAddr,
		hc:        &http.Client{Timeout: 5 * time.Second},
	}
	m := newModel(0)

	if *once {
		if err := runOnce(c, m, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "muaa-top:", err)
			os.Exit(1)
		}
		return
	}

	color := !*noColor
	// Alternate screen + hidden cursor, restored on exit however we leave.
	if color {
		fmt.Print("\x1b[?1049h\x1b[?25l")
		defer fmt.Print("\x1b[?25h\x1b[?1049l")
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*every)
	defer tick.Stop()
	for {
		m.observe(c.snapshot())
		if color {
			fmt.Print("\x1b[H\x1b[2J")
		}
		m.render(os.Stdout, *addr, color)
		select {
		case <-sigs:
			return
		case <-tick.C:
		}
	}
}

// runOnce takes two quick polls (rates and windowed quantiles need a
// delta) and writes a single plain frame.
func runOnce(c *client, m *model, w io.Writer) error {
	first := c.snapshot()
	m.observe(first)
	time.Sleep(250 * time.Millisecond)
	second := c.snapshot()
	m.observe(second)
	if len(second.errs) > 0 && second.stats == nil {
		return fmt.Errorf("cannot reach %s: %s", c.base, second.errs[0])
	}
	m.render(w, c.base, false)
	return nil
}
