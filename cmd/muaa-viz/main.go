// Command muaa-viz renders a MUAA problem and a solver's assignment as an
// SVG map: vendors as squares with their advertising disks, customers as
// dots (green = served), and assignment edges weighted by utility.
//
//	muaa-viz -seed 42 -customers 2000 -vendors 100 -solver recon > map.svg
//	muaa-viz -problem problem.json -solver online > map.svg
//
// With -problem, the instance is loaded from a persist-format JSON file
// (muaa-gen emits these); otherwise a synthetic instance is generated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"muaa/internal/buildinfo"
	"muaa/internal/core"
	"muaa/internal/model"
	"muaa/internal/persist"
	"muaa/internal/stats"
	"muaa/internal/viz"
	"muaa/internal/workload"
)

func main() {
	var (
		problemPath = flag.String("problem", "", "persist-format problem JSON (default: generate synthetic)")
		customers   = flag.Int("customers", 2000, "synthetic customer count")
		vendors     = flag.Int("vendors", 100, "synthetic vendor count")
		solverName  = flag.String("solver", "recon", "solver to draw: recon, online, greedy, random, nearest, batch, none")
		width       = flag.Int("width", 900, "image width in pixels")
		seed        = flag.Int64("seed", 42, "random seed")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("muaa-viz"))
		return
	}
	if err := run(os.Stdout, *problemPath, *customers, *vendors, *solverName, *width, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "muaa-viz:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, problemPath string, customers, vendors int, solverName string, width int, seed int64) error {
	var p *model.Problem
	if problemPath != "" {
		f, err := os.Open(problemPath)
		if err != nil {
			return err
		}
		defer f.Close()
		p, err = persist.LoadProblem(f)
		if err != nil {
			return err
		}
	} else {
		var err error
		p, err = workload.Synthetic(workload.Config{
			Customers: customers,
			Vendors:   vendors,
			Budget:    stats.Range{Lo: 10, Hi: 20},
			Radius:    stats.Range{Lo: 0.02, Hi: 0.04},
			Capacity:  stats.Range{Lo: 1, Hi: 6},
			ViewProb:  stats.Range{Lo: 0.1, Hi: 0.5},
			Seed:      seed,
		})
		if err != nil {
			return err
		}
	}
	var solver core.Solver
	switch strings.ToLower(solverName) {
	case "recon":
		solver = core.Recon{Seed: seed}
	case "online":
		solver = core.OnlineAFA{Seed: seed}
	case "greedy":
		solver = core.Greedy{}
	case "random":
		solver = core.Random{Seed: seed}
	case "nearest":
		solver = core.Nearest{}
	case "batch":
		solver = core.OnlineBatch{Seed: seed}
	case "none":
	default:
		return fmt.Errorf("unknown solver %q", solverName)
	}
	var assignment *model.Assignment
	title := fmt.Sprintf("MUAA — %d customers, %d vendors", len(p.Customers), len(p.Vendors))
	if solver != nil {
		a, err := solver.Solve(p)
		if err != nil {
			return err
		}
		assignment = &a
		title = fmt.Sprintf("%s — %s", title, solver.Name())
	}
	return viz.SVG(w, p, assignment, viz.Options{
		Width:      width,
		ShowRanges: true,
		ShowEdges:  true,
		Title:      title,
	})
}
