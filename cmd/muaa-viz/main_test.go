package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muaa/internal/persist"
	"muaa/internal/workload"
)

func TestVizSynthetic(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 100, 10, "greedy", 400, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "GREEDY") {
		t.Errorf("SVG output incomplete")
	}
}

func TestVizNoSolver(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 50, 5, "none", 400, 3); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<line") {
		t.Error("solver 'none' must not draw edges")
	}
}

func TestVizFromProblemFile(t *testing.T) {
	p := workload.Example1()
	path := filepath.Join(t.TempDir(), "problem.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveProblem(f, p); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := run(&buf, path, 0, 0, "recon", 400, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 customers, 3 vendors") {
		t.Error("loaded problem title missing")
	}
}

func TestVizErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", 10, 2, "bogus", 400, 1); err == nil {
		t.Error("unknown solver must be rejected")
	}
	if err := run(&buf, "/no/such/file.json", 0, 0, "recon", 400, 1); err == nil {
		t.Error("missing problem file must be rejected")
	}
}
