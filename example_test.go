package muaa_test

import (
	"fmt"

	"muaa"
)

// ExampleRecon_Solve solves the paper's worked Example 1 offline and prints
// the assignment the reconciliation approach finds — which on this instance
// is the true optimum.
func ExampleRecon_Solve() {
	problem := muaa.Example1()
	assignment, err := muaa.Recon{Seed: 1}.Solve(problem)
	if err != nil {
		panic(err)
	}
	fmt.Printf("utility %.6f with %d ads\n", assignment.Utility, len(assignment.Instances))
	for _, in := range assignment.Instances {
		fmt.Printf("  %v %s\n", in, problem.AdTypes[in.AdType].Name)
	}
	// Output:
	// utility 0.052043 with 5 ads
	//   ⟨u0, v0, τ1⟩ Photo Link
	//   ⟨u0, v1, τ1⟩ Photo Link
	//   ⟨u1, v0, τ0⟩ Text Link
	//   ⟨u1, v2, τ1⟩ Photo Link
	//   ⟨u2, v2, τ0⟩ Text Link
}

// ExampleSession demonstrates the streaming interface: customers arrive one
// at a time and each is answered immediately and irrevocably.
func ExampleSession() {
	problem := muaa.Example1()
	session, err := muaa.NewSession(problem, muaa.OnlineAFA{Seed: 1})
	if err != nil {
		panic(err)
	}
	for id := range problem.Customers {
		pushed := session.Arrive(int32(id))
		fmt.Printf("u%d receives %d ad(s)\n", id, len(pushed))
	}
	result, err := session.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Printf("online utility %.6f\n", result.Utility)
	// Output:
	// u0 receives 2 ad(s)
	// u1 receives 2 ad(s)
	// u2 receives 0 ad(s)
	// online utility 0.051391
}

// ExampleProblem_Check shows the feasibility checker rejecting a
// budget-violating assignment.
func ExampleProblem_Check() {
	problem := muaa.Example1() // every vendor's budget is 3 $
	overspent := []muaa.Instance{
		{Customer: 0, Vendor: 0, AdType: 1}, // Photo Link, 2 $
		{Customer: 1, Vendor: 0, AdType: 1}, // Photo Link, 2 $ → 4 $ > 3 $
	}
	err := problem.Check(overspent)
	fmt.Println(err)
	// Output:
	// model: vendor 0 spent 4, budget 3
}

// ExampleAdaptiveThreshold traces the paper's admission threshold
// φ(δ) = (γ_min/e)·g^δ as a vendor's budget drains.
func ExampleAdaptiveThreshold() {
	th := muaa.AdaptiveThreshold{GammaMin: 0.1, G: 16}
	for _, delta := range []float64{0, 0.5, 1} {
		fmt.Printf("φ(%.1f) = %.4f\n", delta, th.Value(delta))
	}
	// Output:
	// φ(0.0) = 0.0368
	// φ(0.5) = 0.1472
	// φ(1.0) = 0.5886
}

// ExampleComputeSafeRegion shows the moving-customer machinery: the region
// within which a customer's covering-vendor set provably cannot change.
func ExampleComputeSafeRegion() {
	vendors := []muaa.Vendor{
		{ID: 0, Loc: muaa.Point{X: 0.5, Y: 0.5}, Radius: 0.3, Budget: 5},
		{ID: 1, Loc: muaa.Point{X: 0.9, Y: 0.9}, Radius: 0.1, Budget: 5},
	}
	region := muaa.ComputeSafeRegion(muaa.Point{X: 0.5, Y: 0.6}, vendors)
	fmt.Printf("covered by %d vendor(s), safe radius %.3f\n", len(region.Valid), region.Radius)
	// Output:
	// covered by 1 vendor(s), safe radius 0.200
}
