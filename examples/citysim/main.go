// Citysim: a full day of location-based advertising over a simulated city,
// exercising the entire pipeline the paper's "real data" experiments use —
// check-in corpus → taxonomy-driven interest profiles → MUAA problem with
// diurnal tag activity → all five algorithms.
//
//	go run ./examples/citysim
//
// The simulated city has venue hotspots, Zipf venue popularity and
// per-category daily rhythms (coffee peaks in the morning, nightlife at
// night). Customers are check-in events; their interest vectors come from
// each user's full history through the taxonomy propagation of Eqs. 1–3.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"muaa/internal/checkin"
	"muaa/internal/core"
	"muaa/internal/model"
	"muaa/internal/stats"
	"muaa/internal/taxonomy"
)

func main() {
	// 1. Simulate the city's check-in history.
	ds, err := checkin.Generate(checkin.Config{
		Users:    300,
		Venues:   1200,
		Checkins: 30000,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	filtered := ds.FilterMinCheckins(10)
	fmt.Printf("city: %d users, %d venues (%d after the ≥10-check-in filter), %d check-ins\n",
		ds.Users, len(ds.Venues), len(filtered.Venues), len(filtered.Records))

	// Show the taxonomy at work: the most-visited categories.
	counts := map[taxonomy.TagID]int{}
	for _, r := range filtered.Records {
		counts[filtered.Venues[r.Venue].Category]++
	}
	type catCount struct {
		cat taxonomy.TagID
		n   int
	}
	var top []catCount
	for c, n := range counts {
		top = append(top, catCount{c, n})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	fmt.Println("busiest categories:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  %-35s %5d check-ins\n", filtered.Taxonomy.PathName(top[i].cat), top[i].n)
	}

	// 2. Convert into a MUAA problem (one customer per check-in, one vendor
	// per venue) and install diurnal tag activity so Eq. 5 weights tags by
	// time of day.
	problem, err := checkin.ToProblem(filtered, checkin.ProblemConfig{
		Budget:       stats.Range{Lo: 10, Hi: 20},
		Radius:       stats.Range{Lo: 0.03, Hi: 0.05},
		Capacity:     stats.Range{Lo: 1, Hi: 6},
		ViewProb:     stats.Range{Lo: 0.1, Hi: 0.5},
		MaxCustomers: 4000,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}
	problem.Preference = model.PearsonPreference{Activity: diurnal(filtered.Taxonomy)}
	fmt.Printf("problem: %d customers, %d vendors, %d ad types\n\n",
		problem.NumCustomers(), problem.NumVendors(), problem.NumAdTypes())

	// 3. Run the full competitor set of the paper's evaluation.
	solvers := []core.Solver{
		core.Random{Seed: 11},
		core.Nearest{},
		core.Greedy{},
		core.Recon{Seed: 11},
		core.OnlineAFA{Seed: 11},
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "solver\tutility\tads pushed\ttime")
	var best float64
	for _, s := range solvers {
		start := time.Now()
		a, err := s.Solve(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%v\n", s.Name(), a.Utility, len(a.Instances),
			time.Since(start).Round(time.Millisecond))
		if a.Utility > best {
			best = a.Utility
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest overall utility: %.2f\n", best)
}

// diurnal assigns each top-level category branch its daily peak, matching
// the generator's rhythms.
func diurnal(tx *taxonomy.Taxonomy) model.DiurnalActivity {
	peaks := map[int]float64{}
	branchPeak := map[string]float64{
		"Food": 12.5, "Nightlife": 22, "Shops": 16, "Arts": 19,
		"Outdoors": 9, "Travel": 8, "Education": 10, "Professional": 14,
	}
	for id := 0; id < tx.NumTags(); id++ {
		path := tx.Path(taxonomy.TagID(id))
		if len(path) < 2 {
			continue
		}
		if peak, ok := branchPeak[tx.Name(path[1])]; ok {
			peaks[id] = peak
		}
	}
	return model.DiurnalActivity{Peaks: peaks}
}
