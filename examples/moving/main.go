// Moving: customers walk through the city while the broker serves them,
// showing the safe-region optimization the paper imports from the continuous
// vendor-selection literature (Xu et al. [26]) working together with the
// O-AFA admission rule.
//
//	go run ./examples/moving
//
// Fifty pedestrians follow random-waypoint walks past 300 vendor campaigns.
// Every few simulated minutes each pedestrian's position is sampled; a
// safe-region tracker tells us whether their covering-vendor set could have
// changed — only then is the (O(n)) vendor scan paid and only then do we ask
// the broker whether any vendor wants to push an ad at the new spot.
package main

import (
	"fmt"
	"log"

	"muaa/internal/broker"
	"muaa/internal/geo"
	"muaa/internal/mobility"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

func main() {
	rng := stats.NewRand(99)

	// Vendor campaigns via the synthetic generator, registered with a live
	// broker.
	problem, err := workload.Synthetic(workload.Config{
		Customers: 1, // only vendors are used
		Vendors:   300,
		Budget:    stats.Range{Lo: 10, Hi: 20},
		Radius:    stats.Range{Lo: 0.03, Hi: 0.06},
		Capacity:  stats.Range{Lo: 1, Hi: 2},
		ViewProb:  stats.Range{Lo: 0.5, Hi: 0.9},
		Seed:      99,
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := broker.New(broker.Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range problem.Vendors {
		if _, err := b.RegisterCampaign(v.Loc, v.Radius, v.Budget, v.Tags); err != nil {
			log.Fatal(err)
		}
	}

	// Pedestrians: random-waypoint walks at ~4 km/h across the unit city,
	// with their own taste vectors.
	const pedestrians = 50
	type walker struct {
		tr        *mobility.Trajectory
		tk        *mobility.Tracker
		interests []float64
		offers    int
	}
	walkers := make([]*walker, pedestrians)
	for i := range walkers {
		tr, err := mobility.RandomWaypoint(rng, geo.UnitSquare, 5, 0.3, 0)
		if err != nil {
			log.Fatal(err)
		}
		interests := make([]float64, 16)
		for k := range interests {
			interests[k] = rng.Float64()
		}
		walkers[i] = &walker{tr: tr, tk: mobility.NewTracker(problem.Vendors), interests: interests}
	}

	// Simulate: sample every ~2 simulated minutes; contact the broker only
	// when the walker's covering-vendor set may have changed.
	const dt = 1.0 / 30 // hours
	totalSamples, vendorScans, brokerCalls, offers := 0, 0, 0, 0
	for _, w := range walkers {
		for at := w.tr.Start(); at <= w.tr.End(); at += dt {
			p := w.tr.At(at)
			totalSamples++
			_, recomputed := w.tk.Update(p)
			if !recomputed {
				continue // same vendors as before: nothing new to offer
			}
			vendorScans++
			brokerCalls++
			pushed, err := b.Arrive(broker.Arrival{
				Loc: p, Capacity: 1, ViewProb: 0.7,
				Interests: w.interests, Hour: at,
			})
			if err != nil {
				log.Fatal(err)
			}
			w.offers += len(pushed)
			offers += len(pushed)
		}
	}

	fmt.Printf("%d pedestrians, %d position samples\n", pedestrians, totalSamples)
	fmt.Printf("vendor-set scans paid: %d (%.1f%% of samples — the safe-region saving)\n",
		vendorScans, 100*float64(vendorScans)/float64(totalSamples))
	fmt.Printf("broker contacted %d times, %d ads pushed\n", brokerCalls, offers)
	st := b.Stats()
	fmt.Printf("broker: utility served %.2f, budget spent %.2f, derived g = %.1f\n",
		st.UtilityServed, st.BudgetSpent, st.G)

	// Show one walker's journey.
	w := walkers[0]
	_, re := w.tk.Counters()
	fmt.Printf("\nwalker 0: %d region recomputations on a %.1f-hour walk, %d ads received\n",
		re, w.tr.End()-w.tr.Start(), w.offers)
}
