// Quickstart: build a tiny MUAA problem by hand, solve it offline with the
// reconciliation approach and online with O-AFA, and inspect the results.
//
//	go run ./examples/quickstart
//
// The scenario is a small food court at lunchtime: two restaurants and a
// café advertise to four nearby phones. It shows the three things every user
// of this library does — describe a problem, pick a solver, and validate /
// read the assignment.
package main

import (
	"fmt"
	"log"

	"muaa/internal/core"
	"muaa/internal/geo"
	"muaa/internal/model"
)

func main() {
	// 1. Describe the problem. Coordinates live in any planar space (the
	// experiments use [0,1]²); distances feed straight into the utility
	// λ = p·β·s/d of the paper's Eq. 4.
	problem := &model.Problem{
		Customers: []model.Customer{
			// ID must equal the slice index. Capacity caps received ads;
			// ViewProb is the probability the customer looks at an ad.
			{ID: 0, Loc: geo.Point{X: 0.48, Y: 0.50}, Capacity: 2, ViewProb: 0.6,
				Interests: []float64{0.9, 0.1, 0.3}}, // loves noodles
			{ID: 1, Loc: geo.Point{X: 0.52, Y: 0.49}, Capacity: 1, ViewProb: 0.4,
				Interests: []float64{0.2, 0.8, 0.1}}, // pizza person
			{ID: 2, Loc: geo.Point{X: 0.50, Y: 0.53}, Capacity: 2, ViewProb: 0.8,
				Interests: []float64{0.3, 0.3, 0.9}}, // caffeine-driven
			{ID: 3, Loc: geo.Point{X: 0.60, Y: 0.60}, Capacity: 1, ViewProb: 0.5,
				Interests: []float64{0.5, 0.5, 0.5}}, // far away: out of range
		},
		Vendors: []model.Vendor{
			{ID: 0, Loc: geo.Point{X: 0.47, Y: 0.51}, Radius: 0.06, Budget: 4,
				Tags: []float64{1, 0.1, 0.2}}, // noodle house
			{ID: 1, Loc: geo.Point{X: 0.53, Y: 0.50}, Radius: 0.06, Budget: 4,
				Tags: []float64{0.1, 1, 0.1}}, // pizza place
			{ID: 2, Loc: geo.Point{X: 0.50, Y: 0.52}, Radius: 0.06, Budget: 3,
				Tags: []float64{0.2, 0.1, 1}}, // coffee shop
		},
		AdTypes: []model.AdType{
			{Name: "Text Link", Cost: 1, Effect: 0.1},
			{Name: "Photo Link", Cost: 2, Effect: 0.4},
		},
		// Preference defaults to the activity-weighted Pearson correlation
		// of Interests × Tags (the paper's Eq. 5).
	}
	if err := problem.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Solve offline (the broker knows everyone up front).
	recon := core.Recon{Seed: 1}
	offline, err := recon.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: total utility %.4f with %d ads\n", recon.Name(), offline.Utility, len(offline.Instances))
	for _, in := range offline.Instances {
		fmt.Printf("  %v  λ=%.4f  (%s)\n", in,
			problem.Utility(in.Customer, in.Vendor, in.AdType), problem.AdTypes[in.AdType].Name)
	}

	// 3. Solve online (customers arrive one by one; decisions are final).
	session, err := core.NewSession(problem, core.OnlineAFA{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for ui := range problem.Customers {
		pushed := session.Arrive(int32(ui))
		fmt.Printf("customer u%d arrives → %d ad(s)\n", ui, len(pushed))
	}
	online, err := session.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ONLINE: total utility %.4f (%.0f%% of RECON, with zero future knowledge)\n",
		online.Utility, 100*online.Utility/offline.Utility)

	// 4. Every assignment can be re-validated against all four constraints.
	if err := problem.Check(online.Instances); err != nil {
		log.Fatal(err)
	}
	fmt.Println("assignment verified: range, capacity, budget and pair constraints hold")
}
