// Streaming: drive the online adaptive factor-aware algorithm (O-AFA) over
// a live arrival stream and watch the adaptive threshold at work.
//
//	go run ./examples/streaming
//
// A synthetic evening crowd of 2,000 customers flows past 100 vendors. The
// example prints a running commentary: per-1000-arrival latency, how vendor
// budgets drain, and how the admission threshold climbs as they do — then
// compares the final utility against the offline solvers that saw the whole
// evening in advance.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"muaa/internal/core"
	"muaa/internal/model"
	"muaa/internal/stats"
	"muaa/internal/stream"
	"muaa/internal/workload"
)

func main() {
	problem, err := workload.Synthetic(workload.Config{
		Customers: 2000,
		Vendors:   100,
		Budget:    stats.Range{Lo: 10, Hi: 20},
		Radius:    stats.Range{Lo: 0.04, Hi: 0.08},
		Capacity:  stats.Range{Lo: 1, Hi: 4},
		ViewProb:  stats.Range{Lo: 0.1, Hi: 0.6},
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	gamma := core.EstimateGammaMin(problem, 1024, 7)
	fmt.Printf("estimated γ_min = %.5f (efficiency floor for the adaptive threshold)\n", gamma)

	session, err := core.NewSession(problem, core.OnlineAFA{GammaMin: gamma, G: 2 * math.E, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	arrivals := stream.FromProblem(problem)
	var pushed int
	progress := func(done int) {
		// Peek at the busiest vendor's budget ratio to show the threshold
		// climbing.
		maxDelta := 0.0
		for j := range problem.Vendors {
			if b := problem.Vendors[j].Budget; b > 0 {
				if d := session.Spent(int32(j)) / b; d > maxDelta {
					maxDelta = d
				}
			}
		}
		th := core.AdaptiveThreshold{GammaMin: gamma, G: 2 * math.E}
		fmt.Printf("after %4d arrivals: %4d ads pushed, max δ=%.2f, φ(δ)=%.5f\n",
			done, pushed, maxDelta, th.Value(maxDelta))
	}
	result := stream.Run(arrivals, stream.HandlerFunc(func(c int32) []model.Instance {
		ins := session.Arrive(c)
		pushed += len(ins)
		if n := int(c) + 1; n%500 == 0 {
			progress(n)
		}
		return ins
	}))
	online, err := session.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream done: %d ads, mean response %v per customer (max %v)\n",
		len(online.Instances), result.MeanLatency(), maxLatency(result))

	// Hindsight comparison: what could offline algorithms have done?
	for _, s := range []core.Solver{core.Recon{Seed: 7}, core.Greedy{}, core.Random{Seed: 7}} {
		a, err := s.Solve(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-7s utility %10.2f (ONLINE reached %.0f%%)\n",
			s.Name(), a.Utility, 100*online.Utility/a.Utility)
	}
	fmt.Printf("ONLINE  utility %10.2f — with no future knowledge, one customer at a time\n", online.Utility)
}

func maxLatency(r stream.Result) time.Duration {
	var m time.Duration
	for _, l := range r.Latencies {
		if l > m {
			m = l
		}
	}
	return m
}
