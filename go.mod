module muaa

go 1.22
