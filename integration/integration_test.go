// Package integration wires the whole system together end to end, the way a
// deployment would: simulate a city's check-in history, freeze it to disk,
// reload it, derive preference models (taxonomy and collaborative
// filtering), solve the resulting MUAA instance offline and online, replay
// the online assignment through the HTTP broker, and keep moving customers'
// vendor sets current with safe regions. Each test is one seam; together
// they cover every package boundary in the repository.
package integration

import (
	"bytes"
	"math"
	"testing"

	"muaa/internal/broker"
	"muaa/internal/cf"
	"muaa/internal/checkin"
	"muaa/internal/core"
	"muaa/internal/geo"
	"muaa/internal/mobility"
	"muaa/internal/model"
	"muaa/internal/persist"
	"muaa/internal/stats"
	"muaa/internal/stream"
	"muaa/internal/viz"
	"muaa/internal/workload"
)

func cityDataset(t *testing.T) *checkin.Dataset {
	t.Helper()
	ds, err := checkin.Generate(checkin.Config{Users: 80, Venues: 400, Checkins: 8000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds.FilterMinCheckins(8)
}

func problemConfig() checkin.ProblemConfig {
	return checkin.ProblemConfig{
		Budget:       stats.Range{Lo: 10, Hi: 20},
		Radius:       stats.Range{Lo: 0.04, Hi: 0.08},
		Capacity:     stats.Range{Lo: 1, Hi: 4},
		ViewProb:     stats.Range{Lo: 0.2, Hi: 0.6},
		MaxCustomers: 800,
		Seed:         7,
	}
}

func TestPipelineDatasetToSolvedAssignment(t *testing.T) {
	ds := cityDataset(t)

	// Freeze and thaw the corpus — the experiment-shipping path.
	var frozen bytes.Buffer
	if err := persist.SaveDataset(&frozen, ds); err != nil {
		t.Fatal(err)
	}
	thawed, err := persist.LoadDataset(&frozen)
	if err != nil {
		t.Fatal(err)
	}

	p, err := checkin.ToProblem(thawed, problemConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Offline and online solves; online must stay within the offline bound.
	offline, err := core.Recon{Seed: 7}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	online, err := core.OnlineAFA{Seed: 7}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if offline.Utility <= 0 {
		t.Fatal("pipeline produced a worthless instance")
	}
	if online.Utility > offline.Utility+1e-9 {
		t.Errorf("online (%g) beat offline RECON (%g)", online.Utility, offline.Utility)
	}

	// The assignment freezes, thaws, and re-verifies against the problem.
	var buf bytes.Buffer
	if err := persist.SaveAssignment(&buf, online); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.LoadAssignment(&buf, p); err != nil {
		t.Fatal(err)
	}

	// And renders.
	var svg bytes.Buffer
	if err := viz.SVG(&svg, p, &online, viz.Options{ShowEdges: true}); err != nil {
		t.Fatal(err)
	}
	if svg.Len() == 0 {
		t.Error("empty SVG")
	}
}

func TestPipelineCFPreferenceAgreesWithTaxonomyOnCommunities(t *testing.T) {
	ds := cityDataset(t)
	p, err := checkin.ToProblem(ds, problemConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Train CF on the same corpus and solve with it. The customer→user map
	// is not exposed by ToProblem, so CF here scores via a fresh mapping:
	// use GREEDY on the taxonomy problem and on a CF problem built over the
	// same geometry, and require both to find substantial utility — the
	// estimators must broadly agree on where value is.
	m, err := cf.TrainOnCheckins(ds, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse geometry; score with CF through a table computed per pair.
	// (Small instance: table construction is O(m·n).)
	hist := make([]int32, len(p.Customers))
	for i := range hist {
		hist[i] = int32(i % ds.Users) // deterministic stand-in mapping
	}
	table := make(model.TablePreference, len(p.Customers))
	for i := range p.Customers {
		table[i] = make([]float64, len(p.Vendors))
		for j := range p.Vendors {
			table[i][j] = m.Score(hist[i], int32(j))
		}
	}
	cfProblem := *p
	cfProblem.Preference = table
	taxo, err := core.Greedy{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	cfRes, err := core.Greedy{}.Solve(&cfProblem)
	if err != nil {
		t.Fatal(err)
	}
	if taxo.Utility <= 0 || cfRes.Utility <= 0 {
		t.Errorf("one estimator found no value: taxonomy %g, CF %g", taxo.Utility, cfRes.Utility)
	}
}

func TestPipelineBrokerReplayMatchesSessionSemantics(t *testing.T) {
	ds := cityDataset(t)
	p, err := checkin.ToProblem(ds, problemConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Register every vendor as a campaign and replay the arrival stream
	// through the broker; every offer must respect budgets and capacities.
	b, err := broker.New(broker.Config{AdTypes: p.AdTypes})
	if err != nil {
		t.Fatal(err)
	}
	for j := range p.Vendors {
		v := &p.Vendors[j]
		if _, err := b.RegisterCampaign(v.Loc, v.Radius, v.Budget, v.Tags); err != nil {
			t.Fatal(err)
		}
	}
	offers := 0
	for _, ev := range stream.FromProblem(p).Events() {
		u := &p.Customers[ev.Customer]
		out, err := b.Arrive(broker.Arrival{
			Loc: u.Loc, Capacity: u.Capacity, ViewProb: u.ViewProb,
			Interests: u.Interests, Hour: u.Arrival,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > u.Capacity {
			t.Fatalf("broker pushed %d > capacity %d", len(out), u.Capacity)
		}
		offers += len(out)
	}
	st := b.Stats()
	if int64(offers) != st.OffersPushed {
		t.Errorf("offer accounting mismatch: %d vs %d", offers, st.OffersPushed)
	}
	if st.UtilityServed <= 0 {
		t.Error("broker served no utility over a whole day of traffic")
	}
	for j := range p.Vendors {
		c, err := b.CampaignState(int32(j))
		if err != nil {
			t.Fatal(err)
		}
		if c.Spent > c.Budget+1e-9 {
			t.Fatalf("campaign %d overspent", j)
		}
	}
}

func TestPipelineMovingCustomerSafeRegions(t *testing.T) {
	p, err := workload.Synthetic(workload.Config{
		Customers: 1,
		Vendors:   200,
		Budget:    stats.Range{Lo: 10, Hi: 20},
		Radius:    stats.Range{Lo: 0.05, Hi: 0.1},
		Capacity:  stats.Range{Lo: 1, Hi: 2},
		ViewProb:  stats.Range{Lo: 0.5, Hi: 0.9},
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(9)
	tr, err := mobility.RandomWaypoint(rng, geo.UnitSquare, 6, 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	tk := mobility.NewTracker(p.Vendors)
	ix := core.NewIndex(p)
	dt := (tr.End() - tr.Start()) / 400
	if dt <= 0 {
		t.Skip("degenerate trajectory")
	}
	for at := tr.Start(); at <= tr.End(); at += dt {
		loc := tr.At(at)
		valid, _ := tk.Update(loc)
		// Cross-check against the spatial index used by the solvers.
		p.Customers[0].Loc = loc
		want := ix.ValidVendors(nil, 0)
		if len(valid) != len(want) {
			t.Fatalf("tracker and index disagree at t=%g: %d vs %d vendors", at, len(valid), len(want))
		}
	}
	_, recomputes := tk.Counters()
	if recomputes == 0 {
		t.Error("moving customer never recomputed")
	}
}

func TestPipelineGammaEstimateStableAcrossSamples(t *testing.T) {
	ds := cityDataset(t)
	p, err := checkin.ToProblem(ds, problemConfig())
	if err != nil {
		t.Fatal(err)
	}
	small := core.EstimateGammaMin(p, 128, 1)
	large := core.EstimateGammaMin(p, 4096, 1)
	if small <= 0 || large <= 0 {
		t.Fatal("γ_min estimates must be positive on a live corpus")
	}
	// More samples can only find smaller-or-equal minima.
	if large > small+1e-12 {
		t.Errorf("larger sample raised the minimum: %g vs %g", large, small)
	}
	if math.IsInf(large, 0) {
		t.Error("estimate overflowed")
	}
}
