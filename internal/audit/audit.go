package audit

import (
	"fmt"
	"math"
	"sort"

	"muaa/internal/core"
	"muaa/internal/geo"
	"muaa/internal/model"
)

// Offer is one committed ad: campaign charged, ad type served, and the cost
// and utility the broker accounted at commit time. Model and ChargeECPM
// carry the billing outcome for auction-priced offers (both zero for the
// seed fixed-cost contract): CPM offers realized Cost = ChargeECPM/1000 at
// commit, deferred (CPC/CPA) offers realized nothing yet — their expected
// revenue is ChargeECPM/1000, held in escrow until conversion.
type Offer struct {
	Campaign   int32
	AdType     int
	Cost       float64
	Utility    float64
	Model      model.BillingModel
	ChargeECPM float64
}

// revenue is the offer's expected revenue at commit time: the realized cost
// for immediate models, the rate-weighted escrow hold for deferred ones.
func (o *Offer) revenue() float64 {
	if o.Model.Deferred() {
		return o.ChargeECPM / 1000
	}
	return o.Cost
}

// Arrival is one customer arrival as the decision stream recorded it.
// HasFeatures reports whether the stream carried the customer's own features
// (v2 WAL records do; v1 records only carry the offers) — only featured
// arrivals can enter the oracle problem.
type Arrival struct {
	Loc         geo.Point
	Capacity    int
	ViewProb    float64
	Interests   []float64
	Hour        float64
	HasFeatures bool
	Offers      []Offer
}

// Campaign is one campaign's state over the audited stream: its geometry and
// tags, the budget in force at the end of the stream (top-ups included), and
// the spend already committed before the stream began (0 in full-history
// mode; the snapshot's accumulator in window mode).
type Campaign struct {
	ID          int32
	Loc         geo.Point
	Radius      float64
	Tags        []float64
	Budget      float64
	SpentBefore float64
	// Paused is the campaign's pause state at the end of the audited stream
	// (the state the live window sees "now"). Paused campaigns are excluded
	// from the oracle problem entirely: the online broker was forbidden to
	// spend their budgets, so a counterfactual that spends them measures
	// nothing any admission policy could achieve (the DESIGN §13 artifact).
	Paused bool
	// Billing is the campaign's billing contract; the zero value is the seed
	// fixed-cost contract. It prices the oracle assignment's revenue.
	Billing model.Billing
}

// Input is everything Compute needs: the decision stream and the broker
// configuration that shaped it.
type Input struct {
	// Mode labels the report: "full-history" or "window".
	Mode   string
	Source string

	AdTypes   []model.AdType
	Campaigns []Campaign
	Arrivals  []Arrival

	// GammaMin/GammaMax are the observed efficiency bounds at the end of the
	// stream (0/0 when nothing was observed).
	GammaMin float64
	GammaMax float64
	// G, when positive, is the configured competitive-factor parameter;
	// otherwise g derives from the observed bounds exactly as the broker's
	// threshold derivation does.
	G float64
	// Preference and MinDist must match the serving broker's so the oracle
	// prices utilities the same way. Zero values select the broker defaults.
	Preference model.Preference
	MinDist    float64

	// End-of-stream billing telemetry, computed by the caller from its
	// decision source (the stats counters live, the conversion records on
	// replay) and copied into the report verbatim.
	EscrowHeld       float64
	ConvertedRevenue float64
	Conversions      int64
}

// Config selects the offline references.
type Config struct {
	// UseRecon adds a core.Recon solve (the paper's offline contribution)
	// next to the always-on greedy reference. Off for the live window path,
	// where recompute latency matters more than oracle tightness.
	UseRecon bool
	// Epsilon, Workers and Seed configure the Recon solve (see core.Recon).
	Epsilon float64
	Workers int
	Seed    int64
	// Solver, when non-nil, replaces the greedy reference — the live window
	// loop passes its amortized *core.WindowOracle here.
	Solver core.Solver
}

// deltaPoints are the budget-consumption points the fixed-threshold
// counterfactuals are evaluated at; they mirror the broker's per-δ
// threshold gauges.
var deltaPoints = [...]float64{0, 0.5, 1}

// safePreference guards a preference that requires equal interest/tag
// dimensionality (model.PearsonPreference panics otherwise): mismatched
// pairs score 0, mirroring the serving broker's ineligibility rule.
type safePreference struct {
	inner  model.Preference
	vector bool
}

func (s safePreference) Score(u *model.Customer, v *model.Vendor, hour float64) float64 {
	if s.vector && len(u.Interests) != len(v.Tags) {
		return 0
	}
	return s.inner.Score(u, v, hour)
}

// Compute audits one decision stream. It is deterministic: the same Input
// and Config yield the same Report, byte for byte once encoded.
func Compute(in Input, cfg Config) (Report, error) {
	if len(in.AdTypes) == 0 {
		return Report{}, fmt.Errorf("audit: no ad types")
	}
	pref := in.Preference
	if pref == nil {
		pref = model.PearsonPreference{Activity: model.UniformActivity{}}
	}
	_, vector := pref.(model.PearsonPreference)
	minDist := in.MinDist
	if minDist == 0 {
		minDist = model.DefaultMinDist
	}

	// Per-campaign accounting, in input order for the stream replay but
	// reported sorted by ID.
	byID := make(map[int32]int, len(in.Campaigns))
	audits := make([]CampaignAudit, len(in.Campaigns))
	excluded := make([]float64, len(in.Campaigns)) // spend by non-audited arrivals
	for i, c := range in.Campaigns {
		if _, dup := byID[c.ID]; dup {
			return Report{}, fmt.Errorf("audit: duplicate campaign id %d", c.ID)
		}
		byID[c.ID] = i
		audits[i] = CampaignAudit{
			ID:          c.ID,
			Budget:      c.Budget,
			SpentBefore: c.SpentBefore,
			SpentTotal:  c.SpentBefore,
		}
	}

	rep := Report{
		Schema:           ReportSchema,
		Mode:             in.Mode,
		Source:           in.Source,
		Arrivals:         len(in.Arrivals),
		Campaigns:        len(in.Campaigns),
		GammaMin:         in.GammaMin,
		GammaMax:         in.GammaMax,
		EscrowHeld:       in.EscrowHeld,
		ConvertedRevenue: in.ConvertedRevenue,
		Conversions:      in.Conversions,
	}
	for i := range in.Campaigns {
		if in.Campaigns[i].Paused {
			rep.PausedCampaigns++
		}
	}

	// Replay the stream: charge every offer in commit order (the same serial
	// float accumulation the broker performed, so SpentTotal is bit-exact),
	// and collect the audited arrivals for the oracle problem.
	type chargeMark struct {
		campaign, arrival int
		cost              float64
	}
	var marks []chargeMark // offer charge points, for the pacing deciles
	onlineMix := make([]int, len(in.AdTypes))
	var audited []int
	for ai := range in.Arrivals {
		a := &in.Arrivals[ai]
		isAudited := a.HasFeatures && a.Capacity > 0
		if isAudited {
			audited = append(audited, ai)
			rep.HourFraction = math.Min(math.Max(a.Hour/24, 0), 1)
		}
		for oi := range a.Offers {
			o := &a.Offers[oi]
			ci, ok := byID[o.Campaign]
			if !ok {
				return Report{}, fmt.Errorf("audit: offer for unknown campaign %d", o.Campaign)
			}
			if o.AdType < 0 || o.AdType >= len(in.AdTypes) {
				return Report{}, fmt.Errorf("audit: offer ad type %d outside catalog of %d", o.AdType, len(in.AdTypes))
			}
			rep.Offers++
			ca := &audits[ci]
			ca.SpentTotal += o.Cost
			ca.SpentWindow += o.Cost
			marks = append(marks, chargeMark{campaign: ci, arrival: ai, cost: o.Cost})
			if isAudited {
				ca.OnlineUtility += o.Utility
				rep.OnlineUtility += o.Utility
				rep.OnlineRevenue += o.revenue()
				onlineMix[o.AdType]++
			} else {
				excluded[ci] += o.Cost
			}
		}
	}
	rep.AuditedArrivals = len(audited)

	// The static oracle problem: audited arrivals become customers in stream
	// order; every campaign becomes a vendor whose budget is what the online
	// broker had available for the audited stream — end budget minus the
	// spend already gone before the window and the spend of arrivals the
	// oracle cannot see.
	p := &model.Problem{
		AdTypes:    in.AdTypes,
		Preference: safePreference{inner: pref, vector: vector},
		MinDist:    minDist,
	}
	for i, ai := range audited {
		a := &in.Arrivals[ai]
		p.Customers = append(p.Customers, model.Customer{
			ID: int32(i), Loc: a.Loc, Capacity: a.Capacity, ViewProb: a.ViewProb,
			Interests: a.Interests, Arrival: a.Hour,
		})
	}
	for i, c := range in.Campaigns {
		budget := c.Budget - c.SpentBefore - excluded[i]
		if budget < 0 || math.IsNaN(budget) {
			budget = 0
		}
		p.Vendors = append(p.Vendors, model.Vendor{
			ID: int32(i), Loc: c.Loc, Radius: c.Radius, Budget: budget, Tags: c.Tags,
			Paused: c.Paused,
		})
	}
	if err := p.Validate(); err != nil {
		return Report{}, fmt.Errorf("audit: assembling oracle problem: %w", err)
	}

	// Offline references.
	var offline core.Solver = core.Greedy{}
	if cfg.Solver != nil {
		offline = cfg.Solver
	}
	best, err := offline.Solve(p)
	if err != nil {
		return Report{}, fmt.Errorf("audit: %s solve: %w", offline.Name(), err)
	}
	rep.GreedyUtility = best.Utility
	rep.OracleUtility, rep.OracleSolver = best.Utility, offline.Name()
	if cfg.UseRecon {
		recon := core.Recon{Epsilon: cfg.Epsilon, Workers: cfg.Workers, Seed: cfg.Seed}
		ra, err := recon.Solve(p)
		if err != nil {
			return Report{}, fmt.Errorf("audit: RECON solve: %w", err)
		}
		rep.ReconUtility = ra.Utility
		if ra.Utility > rep.OracleUtility {
			rep.OracleUtility, rep.OracleSolver = ra.Utility, recon.Name()
			best = ra
		}
	}
	// The online outcome is itself feasible for the static problem, so the
	// tightest known lower bound on the offline optimum includes it.
	if rep.OnlineUtility > rep.OracleUtility {
		rep.OracleUtility, rep.OracleSolver = rep.OnlineUtility, "ONLINE"
	}

	switch {
	case rep.OracleUtility > 0:
		rep.EmpiricalRatio = rep.OnlineUtility / rep.OracleUtility
	default:
		rep.EmpiricalRatio = 1 // nothing achievable, nothing achieved
	}
	rep.Regret = math.Max(0, rep.OracleUtility-rep.OnlineUtility)

	// The paper's bound, from observed g.
	rep.Theta = p.Theta()
	rep.GObserved = observedG(in)
	if rep.Theta > 0 {
		rep.CompetitiveBound = (math.Log(rep.GObserved) + 1) / rep.Theta
		rep.BoundSatisfied = rep.EmpiricalRatio >= 1/rep.CompetitiveBound
	} else {
		rep.BoundSatisfied = true // bound undefined: nothing to violate
	}

	// Fixed-threshold counterfactuals at the gauge δ points.
	ix := core.NewIndex(p)
	for _, delta := range deltaPoints {
		phi := fixedThreshold(in, rep.GObserved, delta)
		u := fixedThresholdUtility(p, ix, phi)
		rep.RegretByDelta = append(rep.RegretByDelta, DeltaRegret{
			Delta:     delta,
			Threshold: phi,
			Utility:   u,
			Regret:    math.Max(0, rep.OracleUtility-u),
		})
	}

	// Offer mix and per-campaign oracle spend/utility from the winning
	// offline assignment.
	oracleMix := make([]int, len(in.AdTypes))
	for _, ins := range best.Instances {
		oracleMix[ins.AdType]++
		ca := &audits[ins.Vendor]
		ca.OracleSpent += in.AdTypes[ins.AdType].Cost
		ca.OracleUtility += p.Utility(ins.Customer, ins.Vendor, ins.AdType)
		rep.OracleRevenue += in.Campaigns[ins.Vendor].Billing.ExpectedCost(in.AdTypes[ins.AdType].Cost)
	}
	switch {
	case rep.OracleRevenue > 0:
		rep.RevenueRatio = rep.OnlineRevenue / rep.OracleRevenue
	default:
		rep.RevenueRatio = 1
	}
	onlineTotal, oracleTotal := 0, 0
	for k := range in.AdTypes {
		onlineTotal += onlineMix[k]
		oracleTotal += oracleMix[k]
	}
	for k, t := range in.AdTypes {
		e := MixEntry{AdType: k, Name: t.Name, Online: onlineMix[k], Oracle: oracleMix[k]}
		if onlineTotal > 0 {
			e.OnlineShare = float64(onlineMix[k]) / float64(onlineTotal)
		}
		if oracleTotal > 0 {
			e.OracleShare = float64(oracleMix[k]) / float64(oracleTotal)
		}
		rep.MixDivergence += math.Abs(e.OnlineShare-e.OracleShare) / 2
		rep.OfferMix = append(rep.OfferMix, e)
	}

	// Pacing curves: each campaign's cumulative utilization sampled at the
	// arrival-sequence deciles. Decile d ends after the first (d+1)·n/10
	// arrivals; each charge lands in its arrival's decile bucket, and a
	// prefix sum turns the buckets into the cumulative curve.
	n := len(in.Arrivals)
	decileOf := func(ai int) int {
		for d := 0; d < 10; d++ {
			if ai < ((d+1)*n)/10 {
				return d
			}
		}
		return 9
	}
	for i := range audits {
		audits[i].PacingCurve = make([]float64, 10)
	}
	for _, m := range marks {
		audits[m.campaign].PacingCurve[decileOf(m.arrival)] += m.cost
	}
	for i := range audits {
		ca := &audits[i]
		if ca.Budget > 0 {
			ca.Utilization = ca.SpentTotal / ca.Budget
		}
		cum := ca.SpentBefore
		for d := range ca.PacingCurve {
			cum += ca.PacingCurve[d]
			if ca.Budget > 0 {
				ca.PacingCurve[d] = cum / ca.Budget
			} else {
				ca.PacingCurve[d] = 0
			}
		}
	}
	sort.Slice(audits, func(a, b int) bool { return audits[a].ID < audits[b].ID })
	rep.CampaignAudits = audits
	return rep, nil
}

// observedG reproduces the broker's g derivation: the configured value wins;
// otherwise e·γmax/γmin clamped to [2e, 1e9], defaulting to 2e before any
// observation.
func observedG(in Input) float64 {
	if in.G > 0 {
		return in.G
	}
	g := 2 * math.E
	if in.GammaMax > in.GammaMin && in.GammaMin > 0 {
		g = math.E * in.GammaMax / in.GammaMin
		if g < 2*math.E {
			g = 2 * math.E
		}
		if g > 1e9 {
			g = 1e9
		}
	}
	return g
}

// fixedThreshold evaluates φ(δ) = γ_min/e · g^δ, the broker's adaptive
// threshold frozen at consumption point δ; 0 before any observation.
func fixedThreshold(in Input, g, delta float64) float64 {
	if in.GammaMax == 0 {
		return 0
	}
	return in.GammaMin / math.E * math.Pow(g, delta)
}

// fixedThresholdUtility replays the audited stream against a constant
// admission threshold: per arrival, each covering vendor offers its best
// ad type with efficiency ≥ phi that still fits the vendor's budget, and
// the customer accepts up to capacity in efficiency order — the serving
// broker's admission shape with δ pinned (pacing not modeled).
func fixedThresholdUtility(p *model.Problem, ix *core.Index, phi float64) float64 {
	remaining := make([]float64, len(p.Vendors))
	for j := range p.Vendors {
		remaining[j] = p.Vendors[j].Budget
	}
	type cand struct {
		vendor  int32
		adType  int
		utility float64
		eff     float64
	}
	var total float64
	var vbuf []int32
	var cands []cand
	for ui := range p.Customers {
		vbuf = ix.ValidVendors(vbuf[:0], int32(ui))
		sort.Slice(vbuf, func(a, b int) bool { return vbuf[a] < vbuf[b] })
		cands = cands[:0]
		for _, vj := range vbuf {
			base := p.UtilityBase(int32(ui), vj)
			if base <= 0 {
				continue
			}
			bestK, bestU, bestEff := -1, 0.0, 0.0
			for k := range p.AdTypes {
				if p.AdTypes[k].Cost > remaining[vj]+1e-12 {
					continue
				}
				u := base * p.AdTypes[k].Effect
				eff := u / p.AdTypes[k].Cost
				if eff < phi {
					continue
				}
				if u > bestU {
					bestK, bestU, bestEff = k, u, eff
				}
			}
			if bestK >= 0 {
				cands = append(cands, cand{vendor: vj, adType: bestK, utility: bestU, eff: bestEff})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].eff != cands[b].eff {
				return cands[a].eff > cands[b].eff
			}
			return cands[a].vendor < cands[b].vendor
		})
		take := len(cands)
		if cap := p.Customers[ui].Capacity; take > cap {
			take = cap
		}
		for _, c := range cands[:take] {
			remaining[c.vendor] -= p.AdTypes[c.adType].Cost
			total += c.utility
		}
	}
	return total
}
