package audit

import (
	"math"
	"strings"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
)

func testAdTypes() []model.AdType {
	return []model.AdType{
		{Name: "cheap", Cost: 1, Effect: 0.5},
		{Name: "rich", Cost: 2, Effect: 1.5},
	}
}

// oneVendorInput: a single campaign covering a single arriving customer.
func oneVendorInput() Input {
	return Input{
		Mode:    "window",
		AdTypes: testAdTypes(),
		Campaigns: []Campaign{{
			ID: 0, Loc: geo.Point{X: 0.5, Y: 0.5}, Radius: 0.3, Budget: 10,
			Tags: []float64{1, 0},
		}},
		Arrivals: []Arrival{{
			Loc: geo.Point{X: 0.5, Y: 0.6}, Capacity: 2, ViewProb: 0.8,
			Interests: []float64{1, 0}, Hour: 12, HasFeatures: true,
			Offers: []Offer{{Campaign: 0, AdType: 1, Cost: 2, Utility: 3}},
		}},
		GammaMin: 0.5,
		GammaMax: 4,
	}
}

func TestComputeEmptyStream(t *testing.T) {
	rep, err := Compute(Input{Mode: "window", AdTypes: testAdTypes()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.EmpiricalRatio != 1 {
		t.Fatalf("empty stream ratio %g, want 1 (nothing achievable, nothing achieved)", rep.EmpiricalRatio)
	}
	if rep.Arrivals != 0 || rep.Offers != 0 || len(rep.CampaignAudits) != 0 {
		t.Fatalf("empty stream report: %+v", rep)
	}
	if _, err := Compute(Input{Mode: "window"}, Config{}); err == nil {
		t.Fatal("missing ad types must error")
	}
}

func TestComputeBasics(t *testing.T) {
	rep, err := Compute(oneVendorInput(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OnlineUtility != 3 {
		t.Fatalf("online utility %g", rep.OnlineUtility)
	}
	if rep.OracleUtility < rep.OnlineUtility {
		t.Fatalf("oracle %g below the feasible online outcome %g", rep.OracleUtility, rep.OnlineUtility)
	}
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("ratio %g", rep.EmpiricalRatio)
	}
	ca := rep.CampaignAudits[0]
	if ca.SpentTotal != 2 || ca.SpentWindow != 2 || ca.Utilization != 0.2 {
		t.Fatalf("campaign accounting %+v", ca)
	}
	if len(ca.PacingCurve) != 10 || ca.PacingCurve[9] != 0.2 {
		t.Fatalf("pacing curve %v", ca.PacingCurve)
	}
	// Curve is monotone non-decreasing and ends at utilization.
	for d := 1; d < 10; d++ {
		if ca.PacingCurve[d] < ca.PacingCurve[d-1] {
			t.Fatalf("pacing curve not monotone: %v", ca.PacingCurve)
		}
	}
}

// TestComputeFeaturelessArrivals: offers of arrivals without recorded
// features (legacy v1 records) charge budgets but join neither ratio side.
func TestComputeFeaturelessArrivals(t *testing.T) {
	in := oneVendorInput()
	in.Arrivals = append(in.Arrivals, Arrival{
		HasFeatures: false,
		Offers:      []Offer{{Campaign: 0, AdType: 0, Cost: 1, Utility: 99}},
	})
	rep, err := Compute(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OnlineUtility != 3 {
		t.Fatalf("featureless offer leaked into online utility: %g", rep.OnlineUtility)
	}
	if rep.AuditedArrivals != 1 || rep.Arrivals != 2 {
		t.Fatalf("audited %d of %d", rep.AuditedArrivals, rep.Arrivals)
	}
	ca := rep.CampaignAudits[0]
	if ca.SpentTotal != 3 {
		t.Fatalf("featureless offer must still charge: spent %g", ca.SpentTotal)
	}
	// The oracle's budget shrank by the unseen spend; with the bigger
	// baseline removed the ratio still holds.
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("ratio %g", rep.EmpiricalRatio)
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	in := oneVendorInput()
	in.Arrivals[0].Offers[0].Campaign = 42
	if _, err := Compute(in, Config{}); err == nil || !strings.Contains(err.Error(), "unknown campaign") {
		t.Fatalf("unknown campaign: %v", err)
	}
	in = oneVendorInput()
	in.Arrivals[0].Offers[0].AdType = 9
	if _, err := Compute(in, Config{}); err == nil || !strings.Contains(err.Error(), "ad type") {
		t.Fatalf("bad ad type: %v", err)
	}
	in = oneVendorInput()
	in.Campaigns = append(in.Campaigns, in.Campaigns[0])
	if _, err := Compute(in, Config{}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate campaign: %v", err)
	}
}

// TestComputeMismatchedDimensions: interest/tag dimension mismatches score
// zero instead of panicking (the broker's ineligibility rule).
func TestComputeMismatchedDimensions(t *testing.T) {
	in := oneVendorInput()
	in.Arrivals[0].Interests = []float64{1, 0, 0.5, 0.25} // 4 dims vs 2 tags
	rep, err := Compute(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The oracle can't use the mismatched pair, but the online offers stand;
	// oracle = max(..., online) keeps the ratio at 1.
	if rep.EmpiricalRatio != 1 || rep.OracleSolver != "ONLINE" {
		t.Fatalf("ratio %g via %s", rep.EmpiricalRatio, rep.OracleSolver)
	}
}

func TestComputeDeterministicEncoding(t *testing.T) {
	a, err := Compute(oneVendorInput(), Config{UseRecon: true, Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(oneVendorInput(), Config{UseRecon: true, Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.EncodeJSON()
	jb, _ := b.EncodeJSON()
	if string(ja) != string(jb) {
		t.Fatal("same input produced different report bytes")
	}
	if !strings.Contains(string(ja), `"schema": "muaa-audit/1"`) {
		t.Fatal("schema marker missing")
	}
}

func TestObservedG(t *testing.T) {
	if g := observedG(Input{G: 7}); g != 7 {
		t.Fatalf("configured g ignored: %g", g)
	}
	if g := observedG(Input{}); g != 2*math.E {
		t.Fatalf("unseen default %g, want 2e", g)
	}
	if g := observedG(Input{GammaMin: 1, GammaMax: 1e12}); g != 1e9 {
		t.Fatalf("clamp high: %g", g)
	}
	if g := observedG(Input{GammaMin: 1, GammaMax: 2}); g != 2*math.E {
		t.Fatalf("clamp low: %g", g)
	}
}
