package audit

// Regression tests for the DESIGN §13 artifact fix (pause-aware oracle) and
// the revenue accounting of the slate economics layer.

import (
	"math"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
)

// pauseHeavyInput models the §13 ramp: one active campaign the online broker
// actually served, plus whale campaigns that are paused at the end of the
// stream. The recorded offer's utility is the model-computed value (base
// 0.8·1/0.1 = 8 times the rich effect 1.5), so online and oracle price the
// same instance identically.
func pauseHeavyInput() Input {
	point := geo.Point{X: 0.5, Y: 0.5}
	campaigns := []Campaign{{
		ID: 0, Loc: point, Radius: 0.3, Budget: 10, Tags: []float64{1, 0},
	}}
	for id := int32(1); id <= 5; id++ {
		campaigns = append(campaigns, Campaign{
			ID: id, Loc: point, Radius: 0.3, Budget: 1000, Tags: []float64{1, 0},
			Paused: true,
		})
	}
	return Input{
		Mode:      "window",
		AdTypes:   testAdTypes(),
		Campaigns: campaigns,
		Arrivals: []Arrival{{
			Loc: geo.Point{X: 0.5, Y: 0.6}, Capacity: 3, ViewProb: 0.8,
			Interests: []float64{1, 0}, Hour: 12, HasFeatures: true,
			Offers: []Offer{{Campaign: 0, AdType: 1, Cost: 2, Utility: 12}},
		}},
		GammaMin: 0.5,
		GammaMax: 6,
	}
}

// TestComputePauseHeavyRatio pins the corrected ratio on a pause-heavy ramp:
// with paused campaigns excluded the online broker is measured only against
// budgets it could touch (ratio 1), while the pre-fix problem — the same
// input with the pause flags dropped — lets the oracle spend five paused
// whale budgets and depresses the ratio to 1/3 for reasons no admission
// policy can fix.
func TestComputePauseHeavyRatio(t *testing.T) {
	rep, err := Compute(pauseHeavyInput(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PausedCampaigns != 5 {
		t.Fatalf("paused campaigns %d, want 5", rep.PausedCampaigns)
	}
	if rep.EmpiricalRatio < 0.999 {
		t.Fatalf("pause-aware ratio %g, want ~1 (paused budgets out of reach)", rep.EmpiricalRatio)
	}

	// The pre-fix counterfactual: same stream, pause state discarded.
	blind := pauseHeavyInput()
	for i := range blind.Campaigns {
		blind.Campaigns[i].Paused = false
	}
	old, err := Compute(blind, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if old.PausedCampaigns != 0 {
		t.Fatalf("paused campaigns %d, want 0", old.PausedCampaigns)
	}
	if math.Abs(old.EmpiricalRatio-1.0/3) > 1e-6 {
		t.Fatalf("pause-blind ratio %g, want 1/3 (oracle eats the paused budgets)", old.EmpiricalRatio)
	}
}

// TestComputeRevenue pins the expected-value revenue accounting: immediate
// offers contribute their realized cost, deferred offers their rate-weighted
// escrow hold, the oracle's slate is priced at first-price expectation, and
// the caller's billing telemetry passes through verbatim.
func TestComputeRevenue(t *testing.T) {
	in := oneVendorInput()
	in.Campaigns[0].Billing = model.Billing{Model: model.BillingCPC, ReserveECPM: 10, EventRate: 0.5}
	in.Arrivals[0].Offers[0] = Offer{
		Campaign: 0, AdType: 1, Cost: 0, Utility: 3,
		Model: model.BillingCPC, ChargeECPM: 135,
	}
	in.EscrowHeld = 0.27
	in.ConvertedRevenue = 0.5
	in.Conversions = 4
	rep, err := Compute(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 135.0 / 1000; rep.OnlineRevenue != want {
		t.Fatalf("online revenue %g, want deferred charge %g", rep.OnlineRevenue, want)
	}
	// The oracle assigns the one valid pair its best ad type (rich, cost 2);
	// CPC first-price expectation is cost × event rate.
	if want := 2 * 0.5; rep.OracleRevenue != want {
		t.Fatalf("oracle revenue %g, want %g", rep.OracleRevenue, want)
	}
	if want := (135.0 / 1000) / 1.0; rep.RevenueRatio != want {
		t.Fatalf("revenue ratio %g, want %g", rep.RevenueRatio, want)
	}
	if rep.EscrowHeld != 0.27 || rep.ConvertedRevenue != 0.5 || rep.Conversions != 4 {
		t.Fatalf("billing telemetry lost: %+v", rep)
	}
}

// TestComputeRevenueFixedStream: an all-fixed stream reports revenue equal
// to its audited spend and a neutral telemetry block — the seed behavior.
func TestComputeRevenueFixedStream(t *testing.T) {
	rep, err := Compute(oneVendorInput(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OnlineRevenue != 2 {
		t.Fatalf("fixed online revenue %g, want the offer cost 2", rep.OnlineRevenue)
	}
	if rep.OracleRevenue != 2 {
		t.Fatalf("fixed oracle revenue %g, want the assigned catalog cost 2", rep.OracleRevenue)
	}
	if rep.EscrowHeld != 0 || rep.Conversions != 0 || rep.ConvertedRevenue != 0 {
		t.Fatalf("fixed stream carries billing telemetry: %+v", rep)
	}
}
