// Package audit replays a broker's committed decision stream into a static
// MUAA problem instance and measures the online algorithm against offline
// references on exactly the arrival sequence it served: the empirical
// competitive ratio vs the paper's (ln g + 1)/θ bound, per-campaign budget
// utilization and pacing, and the online/oracle offer-mix divergence.
//
// The package is pure computation: it knows nothing about WALs or HTTP.
// Callers (internal/broker.ReplayAudit, the broker's live window loop)
// assemble an Input from whatever decision source they have; Compute turns
// it into a Report deterministically — the same Input yields a byte-identical
// EncodeJSON document, which golden tests pin.
package audit

import (
	"bytes"
	"encoding/json"
)

// ReportSchema versions the report document; consumers should check it
// before relying on field semantics. Fields are only ever added.
const ReportSchema = "muaa-audit/1"

// DeltaRegret is the counterfactual quality of a fixed admission threshold
// φ(δ) on the audited stream: what a broker pinned at budget-consumption
// point δ of the adaptive schedule would have achieved, and how far that
// falls short of the oracle.
type DeltaRegret struct {
	Delta     float64 `json:"delta"`
	Threshold float64 `json:"threshold"`
	Utility   float64 `json:"utility"`
	Regret    float64 `json:"regret"`
}

// MixEntry compares how often one ad type was used online vs by the oracle.
type MixEntry struct {
	AdType      int     `json:"ad_type"`
	Name        string  `json:"name"`
	Online      int     `json:"online"`
	Oracle      int     `json:"oracle"`
	OnlineShare float64 `json:"online_share"`
	OracleShare float64 `json:"oracle_share"`
}

// CampaignAudit is one campaign's budget story over the audited stream.
type CampaignAudit struct {
	ID          int32   `json:"id"`
	Budget      float64 `json:"budget"`
	SpentBefore float64 `json:"spent_before"`
	SpentWindow float64 `json:"spent_window"`
	// SpentTotal is SpentBefore plus every audited offer's cost, accumulated
	// in stream order — the same serial float sum the live broker performed,
	// so it equals the broker's per-campaign Spent bit for bit.
	SpentTotal    float64 `json:"spent_total"`
	Utilization   float64 `json:"utilization"`
	OnlineUtility float64 `json:"online_utility"`
	OracleSpent   float64 `json:"oracle_spent"`
	OracleUtility float64 `json:"oracle_utility"`
	// PacingCurve is the campaign's cumulative budget utilization at each
	// decile of the arrival sequence: PacingCurve[d] is Spent/Budget after
	// the first (d+1)/10 of arrivals. A well-paced campaign climbs roughly
	// linearly; a front-loaded one saturates early.
	PacingCurve []float64 `json:"pacing_curve"`
}

// Report is the machine-readable audit result.
type Report struct {
	Schema string `json:"schema"`
	// GeneratedAt is stamped by commands, never by Compute, so the
	// computation itself stays deterministic (golden tests compare reports
	// with this field empty).
	GeneratedAt string `json:"generated_at,omitempty"`
	// Mode is "full-history" (replayed from the empty state) or "window"
	// (snapshot handoff or live sliding window).
	Mode   string `json:"mode"`
	Source string `json:"source,omitempty"`

	Arrivals int `json:"arrivals"`
	// PausedCampaigns counts campaigns paused at the end of the audited
	// stream. They are excluded from the oracle problem: the online broker
	// was forbidden to spend their budgets, so a counterfactual spending
	// them would depress the ratio for reasons no admission policy can fix.
	PausedCampaigns int `json:"paused_campaigns"`
	// AuditedArrivals is how many arrivals carried the customer features the
	// oracle problem needs (capacity > 0 and a v2 WAL record). Offers of
	// non-audited arrivals still charge budgets but join neither side of the
	// ratio.
	AuditedArrivals int `json:"audited_arrivals"`
	Campaigns       int `json:"campaigns"`
	Offers          int `json:"offers"`

	OnlineUtility float64 `json:"online_utility"`
	ReconUtility  float64 `json:"recon_utility,omitempty"`
	GreedyUtility float64 `json:"greedy_utility"`
	// OracleUtility is the best known feasible solution of the offline
	// problem — the max of every reference computed and the online outcome
	// itself (which is feasible by construction). Using the max makes the
	// oracle a true lower bound on the offline optimum, so EmpiricalRatio
	// never exceeds 1.
	OracleUtility float64 `json:"oracle_utility"`
	OracleSolver  string  `json:"oracle_solver"`
	// EmpiricalRatio is OnlineUtility / OracleUtility (1 when both are 0).
	EmpiricalRatio float64 `json:"empirical_ratio"`
	Regret         float64 `json:"regret"`

	Theta     float64 `json:"theta"`
	GammaMin  float64 `json:"gamma_min"`
	GammaMax  float64 `json:"gamma_max"`
	GObserved float64 `json:"g_observed"`
	// CompetitiveBound is (ln g + 1)/θ — the paper's worst-case bound on
	// oracle/online. 0 means undefined (θ = 0: some audited customer has no
	// capacity headroom relationship, so the theorem does not apply).
	CompetitiveBound float64 `json:"competitive_bound"`
	// BoundSatisfied reports EmpiricalRatio ≥ 1/CompetitiveBound — the
	// achieved quality is inside the theoretical guarantee (vacuously true
	// when the bound is undefined).
	BoundSatisfied bool `json:"bound_satisfied"`

	RegretByDelta []DeltaRegret `json:"regret_by_delta"`

	OfferMix []MixEntry `json:"offer_mix"`
	// MixDivergence is the total-variation distance between the online and
	// oracle ad-type distributions: 0 means the online broker sells the same
	// mix the oracle would, 1 means disjoint mixes.
	MixDivergence float64 `json:"mix_divergence"`

	// HourFraction is the last audited arrival's hour / 24 — the elapsed-day
	// fraction pacing curves are read against.
	HourFraction float64 `json:"hour_fraction"`

	// Revenue accounting, in expected value at commit time so the numbers
	// are deterministic from the decision stream alone: an immediate (fixed
	// or CPM) offer contributes its realized cost, a deferred (CPC/CPA)
	// offer its rate-weighted escrow hold ChargeECPM/1000. OracleRevenue
	// prices the oracle's utility-optimal slate at each campaign's
	// first-price expectation (no counterfactual auction is simulated), so
	// RevenueRatio — OnlineRevenue/OracleRevenue, 1 when the oracle earns
	// nothing — is conservative under second-price billing and can exceed 1
	// when the online broker out-earns the utility-maximizing slate.
	OnlineRevenue float64 `json:"online_revenue"`
	OracleRevenue float64 `json:"oracle_revenue"`
	RevenueRatio  float64 `json:"revenue_ratio"`
	// Realized billing telemetry at the end of the audited stream, copied
	// from the caller's decision source: budget held against unconverted
	// CPC/CPA offers, revenue collected by conversions, and their count.
	EscrowHeld       float64 `json:"escrow_held"`
	ConvertedRevenue float64 `json:"converted_revenue"`
	Conversions      int64   `json:"conversions"`

	CampaignAudits []CampaignAudit `json:"campaign_audits"`
}

// EncodeJSON renders the report as indented JSON with a trailing newline.
// The encoding is deterministic: field order is fixed by the struct, every
// slice is deterministically ordered by Compute, and there are no maps.
func (r *Report) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
