package broker

// The struct-of-arrays scan arena. Every arrival used to rebuild its scratch
// state from scratch — a candidate-id slice, one model view per candidate, a
// Pearson weights buffer per score, and a candidate slice — which cost ~6
// allocations per serial arrival. The arena keeps all of that as flat,
// reusable slices hanging off the shard struct, so the steady-state hot path
// allocates nothing and the scoring loop runs over dense float64 arrays.
//
// Ownership rule: an arrival (or batch) that locks the contiguous stripe
// interval [s0, s1] uses the arena of shard s0 — the lowest locked stripe.
// Any two lock sets that share a stripe overlap as intervals, so two holders
// can never pick the same lowest stripe while both hold it; the arena is
// therefore exclusively owned for the duration of the locks, with no
// synchronization beyond the stripe mutexes themselves.
//
// The scan is split into three passes that together reproduce the exact
// floating-point operation sequence of the original fused loop (pinned by
// the golden transcripts in determinism_test.go):
//
//  1. gatherCandidates: grid probes into ids, sorted ascending — the global
//     scan order.
//  2. scanCandidates pass A: per-candidate score/distance/base/δ terms into
//     the flat arrays. This pass never reads γ state, so hoisting it out of
//     the threshold loop cannot change any admission decision.
//  3. scanCandidates pass B: the sequential O-AFA threshold walk. γ
//     observations feed forward from candidate i to candidate i+1's
//     threshold, exactly as the fused loop did, so this pass must stay in
//     candidate order.

import (
	"math"
	"slices"

	"muaa/internal/geo"
	"muaa/internal/knapsack"
	"muaa/internal/model"
	"muaa/internal/trace"
)

// scanArena is the per-stripe reusable scan scratch. All slices are grown by
// append and retained at high-water capacity; the model views and weights
// buffer are reused across candidates so scoring is allocation-free.
type scanArena struct {
	// ids is the gathered candidate id set, sorted ascending.
	ids []int32

	// Struct-of-arrays terms for candidates that survived the cheap filters
	// (paused / exhausted / dimension mismatch / non-positive score), indexed
	// together: cand[i]'s Eq. 4 base value is base[i], its budget-usage ratio
	// delta[i], its pacing-capped spendable budget remaining[i], its raw
	// unspent budget headroom[i], and relief[i] marks a guaranteed campaign
	// behind its pro-rated delivery floor.
	cand      []*campaign
	base      []float64
	delta     []float64
	remaining []float64
	headroom  []float64
	relief    []bool

	// cands accumulates admitted offers awaiting capacity trim and commit.
	cands []candidate

	// fev accumulates per-candidate funnel dispositions for the post-scan
	// registry fold (see funnel.go); empty unless the broker's funnel is
	// enabled. Retained at high-water capacity like every other arena slice,
	// so attribution adds no steady-state allocations.
	fev []funnelEvent

	// Reused model views handed to the preference scorer, plus the Pearson
	// weights scratch (see model.PearsonPreference.ScoreScratch).
	customer model.Customer
	vendor   model.Vendor
	weights  []float64

	// Slate-path scratch (see slate.go): the slot-capacitated MCKP solver,
	// its flat item mirror, the class → candidate/first-item maps, and the
	// capacity-1 representative list. Retained like every other arena slice
	// so the slate path stays allocation-free in steady state.
	slot       knapsack.SlotSolver
	items      []slateItem
	classCand  []int32
	classItem0 []int32
	reps       []slateRep

	// classWon marks the MCKP classes granted a slot by the solver, for
	// funnel offered/displaced attribution (slate slots path only).
	classWon []bool
}

// scanTally counts how the scan disposed of each candidate, plus the number
// of admitted offers dropped by the capacity trim. Folded into the metrics
// counters (and the trace's ScanCounts) after the scan so the loop body
// stays branch-light.
type scanTally struct {
	// gathered is the candidate count the grid probes returned — the top of
	// the decision funnel; the disposition fields partition it.
	gathered                                                                     uint64
	offered, paused, exhausted, mismatch, lowScore, unaffordable, belowThreshold uint64
	// belowReserve counts candidates every affordable bid of which fell below
	// the campaign's reserve price (slate path only).
	belowReserve uint64
	trimmed      uint64
}

// add folds another tally into t (batch aggregation).
func (t *scanTally) add(o scanTally) {
	t.gathered += o.gathered
	t.offered += o.offered
	t.paused += o.paused
	t.exhausted += o.exhausted
	t.mismatch += o.mismatch
	t.lowScore += o.lowScore
	t.unaffordable += o.unaffordable
	t.belowThreshold += o.belowThreshold
	t.belowReserve += o.belowReserve
	t.trimmed += o.trimmed
}

// counts converts the tally to the trace view.
func (t *scanTally) counts() trace.ScanCounts {
	return trace.ScanCounts{
		Gathered:       t.gathered,
		Displaced:      t.trimmed,
		Offered:        t.offered,
		Paused:         t.paused,
		Exhausted:      t.exhausted,
		Mismatch:       t.mismatch,
		LowScore:       t.lowScore,
		Unaffordable:   t.unaffordable,
		BelowThreshold: t.belowThreshold,
		BelowReserve:   t.belowReserve,
	}
}

// gatherCandidates probes the locked shards' grids for campaigns covering
// loc, sorts the ids ascending (global ID order — the same order the
// single-mutex broker scanned in), and returns the campaign directory.
// Loaded after the shard locks: any id a locked grid returned was inserted
// under that shard's lock, and its registration published the directory
// entry before the grid entry, so this load observes it.
func (b *Broker) gatherCandidates(ar *scanArena, loc geo.Point, s0, s1 int) []*campaign {
	ar.ids = ar.ids[:0]
	for i := s0; i <= s1; i++ {
		ar.ids = b.shards[i].grid.CoveredBy(ar.ids, loc)
	}
	slices.Sort(ar.ids)
	return *b.dir.Load()
}

// scanCandidates runs the two scan passes over ar.ids, leaving the admitted
// (and capacity-trimmed) offers in ar.cands. Caller holds the stripe locks
// that produced ar.ids.
func (b *Broker) scanCandidates(ar *scanArena, a *Arrival, dir []*campaign, boost float64) scanTally {
	var tally scanTally
	tally.gathered = uint64(len(ar.ids))
	// rec gates funnel attribution: one branch per disposition when enabled,
	// one nil check when not. Events partition ar.ids — every gathered id
	// lands in exactly one bucket (the conservation invariant pinned by
	// TestFunnelConservationSoak).
	rec := b.funnel != nil
	ar.fev = ar.fev[:0]
	cu := &ar.customer
	*cu = model.Customer{Loc: a.Loc, Capacity: a.Capacity, ViewProb: a.ViewProb,
		Interests: a.Interests, Arrival: a.Hour}
	ve := &ar.vendor
	ar.cand = ar.cand[:0]
	ar.base = ar.base[:0]
	ar.delta = ar.delta[:0]
	ar.remaining = ar.remaining[:0]
	ar.headroom = ar.headroom[:0]
	ar.relief = ar.relief[:0]
	ar.cands = ar.cands[:0]

	// Pass A: filters and the γ-independent per-candidate terms.
	for _, id := range ar.ids {
		c := dir[id]
		if c.paused.Load() {
			tally.paused++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispPaused})
			}
			continue
		}
		budget := c.budget.Load()
		if budget <= 0 {
			tally.exhausted++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispExhausted})
			}
			continue
		}
		if b.vectorPref && len(c.tags) != len(a.Interests) {
			tally.mismatch++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispTagMismatch})
			}
			continue // mismatched taxonomies: preference undefined, not served
		}
		spent := c.spent.Load()
		*ve = model.Vendor{Loc: c.loc, Radius: c.radius, Budget: budget, Tags: c.tags}
		var s float64
		if b.vectorPref {
			// Devirtualized call with the arena's weights scratch: same
			// arithmetic as Preference.Score, zero allocations.
			s, ar.weights = b.pearson.ScoreScratch(cu, ve, a.Hour, ar.weights)
		} else {
			s = b.pref.Score(cu, ve, a.Hour)
		}
		if s <= 0 || math.IsNaN(s) {
			tally.lowScore++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispLowScore})
			}
			continue
		}
		if s > 1 {
			s = 1
		}
		d := a.Loc.Dist(c.loc)
		if d < b.minDist {
			d = b.minDist
		}
		base := a.ViewProb * s / d
		delta := spent / budget
		relief := c.guaranteed && c.floor > 0 && spent < c.floor*budget*(a.Hour/24)
		remaining := budget - spent
		headroom := remaining
		if b.cfg.Pacing > 0 {
			// Daily pacing cap: spend so far plus this ad must stay within
			// the hour's pro-rated allowance.
			allowance := b.cfg.Pacing * budget * a.Hour / 24
			if paced := allowance - spent; paced < remaining {
				remaining = paced
			}
		}
		if b.controller != nil {
			// Controller epoch cap: spend may not pass the allowance the last
			// PacingStep granted (+Inf when uncapped, so this is a no-op for
			// unthrottled campaigns).
			if paced := c.allowance.Load() - spent; paced < remaining {
				remaining = paced
			}
		}
		ar.cand = append(ar.cand, c)
		ar.base = append(ar.base, base)
		ar.delta = append(ar.delta, delta)
		ar.remaining = append(ar.remaining, remaining)
		ar.headroom = append(ar.headroom, headroom)
		ar.relief = append(ar.relief, relief)
	}

	// Pass B: the sequential O-AFA threshold walk, in candidate order — each
	// candidate's threshold reads the γ bounds as updated by every earlier
	// candidate's observations.
	adTypes := b.cfg.AdTypes
	for i, c := range ar.cand {
		phi := b.threshold(ar.delta[i])
		if boost != 1 {
			phi *= boost
		}
		if ar.relief[i] {
			// Guaranteed delivery behind the pro-rated floor: relax admission
			// so the campaign catches up before the penalty accrues. The
			// relief factor keeps φ positive — the threshold is softened, not
			// suspended.
			phi *= guaranteeRelief
		}
		base, remaining := ar.base[i], ar.remaining[i]
		bestK, bestU, bestEff := -1, 0.0, 0.0
		affordable := false
		for k, t := range adTypes {
			if t.Cost > remaining+1e-12 {
				continue
			}
			affordable = true
			util := base * t.Effect
			eff := util / t.Cost
			b.observeEfficiency(eff)
			if eff < phi {
				continue
			}
			if util > bestU {
				bestK, bestU, bestEff = k, util, eff
			}
		}
		switch {
		case bestK >= 0:
			tally.offered++
			ar.cands = append(ar.cands, candidate{
				Offer: Offer{
					Campaign: c.id, AdType: bestK, Utility: bestU,
					Efficiency: bestEff, Cost: adTypes[bestK].Cost,
				},
				c: c,
			})
		case affordable:
			tally.belowThreshold++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: c.id, disp: dispBelowThreshold})
			}
		case ar.headroom[i] < b.minAdCost:
			// Not even the cheapest ad fits the unspent budget: the
			// campaign is spent out until a top-up.
			tally.exhausted++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: c.id, disp: dispExhausted})
			}
		default:
			// Unspent budget exists but the pacing allowance withheld it.
			tally.unaffordable++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: c.id, disp: dispUnaffordable})
			}
		}
	}
	nAdmitted := len(ar.cands)
	if len(ar.cands) > a.Capacity {
		// Total order (efficiency desc, campaign asc; campaigns are unique),
		// so every sort algorithm yields the same trimmed set and order.
		slices.SortFunc(ar.cands, func(x, y candidate) int {
			if x.Efficiency != y.Efficiency {
				if x.Efficiency > y.Efficiency {
					return -1
				}
				return 1
			}
			if x.Campaign != y.Campaign {
				if x.Campaign < y.Campaign {
					return -1
				}
				return 1
			}
			return 0
		})
		tally.trimmed = uint64(len(ar.cands) - a.Capacity)
		ar.cands = ar.cands[:a.Capacity]
	}
	if rec {
		// Admitted candidates resolve only after the trim: the survivors were
		// offered, the overflow (still live in the backing array past the
		// truncated length) was displaced by the slot race.
		for i := range ar.cands {
			ar.fev = append(ar.fev, funnelEvent{id: ar.cands[i].Campaign, disp: dispOffered})
		}
		for _, cd := range ar.cands[len(ar.cands):nAdmitted] {
			ar.fev = append(ar.fev, funnelEvent{id: cd.Campaign, disp: dispDisplaced})
		}
	}
	return tally
}

// commitOffers charges every offer in ar.cands to its campaign and appends
// the offers to dst, returning the extended slice. Caller still holds the
// stripe locks; writers hold the owning shard's lock (every candidate came
// from a locked shard), so load+store is a safe read-modify-write.
func (b *Broker) commitOffers(ar *scanArena, dst []Offer) []Offer {
	m := b.metrics
	for i := range ar.cands {
		cd := &ar.cands[i]
		oldSpent := cd.c.spent.Load()
		newSpent := oldSpent + cd.Cost
		cd.c.spent.Store(newSpent)
		b.spent.Add(cd.Cost)
		b.utility.Add(cd.Utility)
		b.offers.Add(1)
		dst = append(dst, cd.Offer)
		if m != nil {
			m.offersByType[cd.AdType].Inc()
			// Exhaustion event: this commit pushed the remaining budget
			// below the cheapest ad type, so the campaign can serve nothing
			// further until a top-up.
			budget := cd.c.budget.Load()
			if budget-oldSpent >= b.minAdCost && budget-newSpent < b.minAdCost {
				m.exhaustedEvents.Inc()
			}
		}
	}
	return dst
}
