package broker

// Live and offline quality auditing. The live side keeps a bounded ring of
// recent arrivals (captured after the arrival pipeline returns, outside the
// stripe locks) and periodically recomputes an audit.Report against an
// amortized greedy oracle; gauges read the latest report. The offline side,
// ReplayAudit, rebuilds the full decision stream from a durability
// directory's snapshot + WAL — read-only, through wal.ReadDir and the
// exported record decoders — and hands it to audit.Compute.

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"muaa/internal/audit"
	"muaa/internal/core"
	"muaa/internal/model"
	"muaa/internal/obs"
	"muaa/internal/wal"
)

// defaultAuditEvery is the live recompute cadence when Config.AuditEvery is
// zero.
const defaultAuditEvery = 15 * time.Second

// ErrAuditDisabled is returned by AuditNow on a broker built without a live
// audit window (Config.AuditWindow = 0).
var ErrAuditDisabled = errors.New("broker: live audit disabled (AuditWindow = 0)")

// auditState is the broker's live quality-audit sidecar.
type auditState struct {
	mu   sync.Mutex
	ring []audit.Arrival // capacity-bounded; ring[next] is the oldest once full
	next int
	full bool

	every time.Duration

	// computeMu serializes recomputations (the loop vs AuditNow callers);
	// the ring lock is never held across a solve.
	computeMu sync.Mutex
	oracle    core.WindowOracle
	report    atomic.Pointer[audit.Report]

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

func newAuditState(window int, every time.Duration) *auditState {
	if every <= 0 {
		every = defaultAuditEvery
	}
	return &auditState{
		ring:   make([]audit.Arrival, 0, window),
		every:  every,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// capture appends one served arrival to the ring. Runs after the arrival
// pipeline released its stripe locks; the only cost on the serving goroutine
// is one small copy under the ring mutex. Under concurrent arrivals the ring
// order is capture order, not commit order — the window report is an
// approximation by design.
func (s *auditState) capture(a *Arrival, offers []Offer) {
	entry := audit.Arrival{
		Loc:         a.Loc,
		Capacity:    a.Capacity,
		ViewProb:    a.ViewProb,
		Hour:        a.Hour,
		HasFeatures: true,
	}
	if len(a.Interests) > 0 {
		entry.Interests = append([]float64(nil), a.Interests...)
	}
	if len(offers) > 0 {
		entry.Offers = make([]audit.Offer, len(offers))
		for i := range offers {
			o := &offers[i]
			entry.Offers[i] = audit.Offer{
				Campaign: o.Campaign, AdType: o.AdType, Cost: o.Cost, Utility: o.Utility,
				Model: o.Model, ChargeECPM: o.ChargeECPM,
			}
		}
	}
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, entry)
	} else {
		s.ring[s.next] = entry
		s.next++
		if s.next == len(s.ring) {
			s.next = 0
			s.full = true
		} else if !s.full && s.next == cap(s.ring) {
			s.full = true
		}
	}
	s.mu.Unlock()
}

// window copies the ring contents oldest-first.
func (s *auditState) window() []audit.Arrival {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]audit.Arrival, 0, len(s.ring))
	if len(s.ring) == cap(s.ring) {
		out = append(out, s.ring[s.next:]...)
		out = append(out, s.ring[:s.next]...)
	} else {
		out = append(out, s.ring...)
	}
	return out
}

func (s *auditState) stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	<-s.doneCh
}

// auditLoop recomputes the window report on its own goroutine at the
// configured cadence. Solves never run on an arrival's goroutine.
func (b *Broker) auditLoop() {
	s := b.audit
	defer close(s.doneCh)
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			if err := b.auditTick(); err != nil {
				b.logger.Error("broker_audit_failed", "error", err.Error())
			}
		}
	}
}

// auditTick is one background audit cycle: recompute the window report, then
// — when the pacing controller is enabled — apply one controller epoch on
// the fresh report. Only the ticker (and explicit PacingStep callers) ever
// step the controller; an externally triggered refresh (AuditNow, e.g.
// /v1/debug/audit?refresh=true) recomputes the report only, so debug
// traffic can race the ticker without accelerating or reordering control
// decisions — recomputes serialize on computeMu, controller application on
// the full shard quiescence applyDecision takes.
func (b *Broker) auditTick() error {
	if _, err := b.AuditNow(); err != nil {
		return err
	}
	if b.controller != nil {
		if _, err := b.PacingStep(); err != nil {
			return err
		}
	}
	return nil
}

// AuditReport returns the latest live window report, or nil before the
// first recompute. The returned report is immutable.
func (b *Broker) AuditReport() *audit.Report {
	if b.audit == nil {
		return nil
	}
	return b.audit.report.Load()
}

// AuditNow recomputes the live window report synchronously and returns it.
// Errors when live auditing is disabled.
func (b *Broker) AuditNow() (*audit.Report, error) {
	s := b.audit
	if s == nil {
		return nil, ErrAuditDisabled
	}
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	in := b.windowInput(s.window())
	rep, err := audit.Compute(in, audit.Config{Solver: &s.oracle})
	if err != nil {
		return nil, err
	}
	s.report.Store(&rep)
	return &rep, nil
}

// windowInput assembles the audit input for one window copy: current
// campaign states with the window's own spend subtracted back out (the
// oracle may re-spend what the window spent), plus the current γ bounds.
func (b *Broker) windowInput(win []audit.Arrival) audit.Input {
	winSpend := make(map[int32]float64)
	for i := range win {
		for _, o := range win[i].Offers {
			winSpend[o.Campaign] += o.Cost
		}
	}
	campaigns := b.Campaigns()
	acs := make([]audit.Campaign, len(campaigns))
	for i, c := range campaigns {
		before := c.Spent - winSpend[c.ID]
		if before < 0 {
			before = 0
		}
		acs[i] = audit.Campaign{
			ID: c.ID, Loc: c.Loc, Radius: c.Radius, Tags: c.Tags,
			Budget: c.Budget, SpentBefore: before,
			Paused: c.Paused, Billing: c.Billing,
		}
	}
	st := b.Stats()
	return audit.Input{
		Mode:             "window",
		Source:           "live",
		AdTypes:          b.cfg.AdTypes,
		Campaigns:        acs,
		Arrivals:         win,
		GammaMin:         st.GammaMin,
		GammaMax:         st.GammaMax,
		G:                b.cfg.G,
		Preference:       b.pref,
		MinDist:          b.minDist,
		EscrowHeld:       st.EscrowHeld,
		ConvertedRevenue: st.ConversionRevenue,
		Conversions:      st.Conversions,
	}
}

// registerAuditMetrics publishes the live-audit gauge family; every gauge
// reads the latest report and costs nothing between scrapes.
func registerAuditMetrics(reg *obs.Registry, b *Broker) {
	latest := func() *audit.Report { return b.audit.report.Load() }
	reg.NewGaugeFunc("muaa_broker_empirical_ratio",
		"Online utility over the window oracle's (0 until the first window recompute).",
		func() float64 {
			if r := latest(); r != nil {
				return r.EmpiricalRatio
			}
			return 0
		})
	reg.NewGaugeFunc("muaa_broker_competitive_bound",
		"The paper's (ln g + 1)/θ bound evaluated on the live window (0 while undefined).",
		func() float64 {
			if r := latest(); r != nil {
				return r.CompetitiveBound
			}
			return 0
		})
	reg.NewGaugeFunc("muaa_broker_audit_window_arrivals",
		"Arrivals in the last recomputed audit window.",
		func() float64 {
			if r := latest(); r != nil {
				return float64(r.Arrivals)
			}
			return 0
		})
	reg.NewGaugeFunc("muaa_broker_audit_regret",
		"Window oracle utility minus online utility (absolute regret).",
		func() float64 {
			if r := latest(); r != nil {
				return r.Regret
			}
			return 0
		})
	for i, delta := range []float64{0, 0.5, 1} {
		idx := i
		reg.NewGaugeFunc("muaa_broker_regret",
			"Oracle regret of the counterfactual fixed threshold φ(δ) on the live window.",
			func() float64 {
				if r := latest(); r != nil && idx < len(r.RegretByDelta) {
					return r.RegretByDelta[idx].Regret
				}
				return 0
			},
			obs.L("delta", strconv.FormatFloat(delta, 'g', -1, 64)))
	}
	buckets := []struct {
		label  string
		lo, hi float64
	}{
		{"0-25", 0, 0.25},
		{"25-50", 0.25, 0.5},
		{"50-75", 0.5, 0.75},
		{"75-100", 0.75, 1},
		{"100", 1, math.Inf(1)},
	}
	for _, bk := range buckets {
		lo, hi := bk.lo, bk.hi
		reg.NewGaugeFunc("muaa_broker_pacing_campaigns",
			"Campaigns whose budget utilization falls in the labeled bucket (last audit window).",
			func() float64 {
				r := latest()
				if r == nil {
					return 0
				}
				n := 0
				for i := range r.CampaignAudits {
					u := r.CampaignAudits[i].Utilization
					if u >= lo && u < hi {
						n++
					}
				}
				return float64(n)
			},
			obs.L("utilization", bk.label))
	}
}

// AuditConfig parameterizes ReplayAudit. AdTypes is required and must be
// the catalog the recorded broker served with; the other knobs default to
// the broker defaults.
type AuditConfig struct {
	AdTypes    []model.AdType
	Preference model.Preference
	MinDist    float64
	// G mirrors Config.G: 0 derives g from the recorded γ bounds.
	G float64
	// UseRecon adds the RECON oracle next to greedy (slower, tighter).
	UseRecon bool
	// Epsilon, Workers and Seed configure the RECON solve.
	Epsilon float64
	Workers int
	Seed    int64
}

// auditArrival converts one decoded arrival (and its committed offers) into
// the audit stream's shape.
func auditArrival(cu Arrival, hasFeatures bool, offers []Offer) audit.Arrival {
	out := make([]audit.Offer, len(offers))
	for j := range offers {
		o := &offers[j]
		out[j] = audit.Offer{
			Campaign: o.Campaign, AdType: o.AdType, Cost: o.Cost, Utility: o.Utility,
			Model: o.Model, ChargeECPM: o.ChargeECPM,
		}
	}
	return audit.Arrival{
		Loc:         cu.Loc,
		Capacity:    cu.Capacity,
		ViewProb:    cu.ViewProb,
		Interests:   cu.Interests,
		Hour:        cu.Hour,
		HasFeatures: hasFeatures,
		Offers:      out,
	}
}

// ReplayAudit audits a broker durability directory offline: it reads the
// snapshot and WAL segments read-only (never interfering with a live
// writer's group commit), rebuilds the decision stream through the exported
// record decoders, and computes the quality report. With a retained full
// segment chain (wal.Options.Retain) the audit covers the broker's whole
// life; otherwise it covers the window after the last compaction, with the
// snapshot's accumulators as the pre-window spend.
func ReplayAudit(dir string, cfg AuditConfig) (audit.Report, error) {
	if len(cfg.AdTypes) == 0 {
		return audit.Report{}, fmt.Errorf("broker: ReplayAudit needs the ad-type catalog")
	}
	v, err := wal.ReadDir(dir)
	if err != nil {
		return audit.Report{}, err
	}
	in := audit.Input{
		Mode:       "window",
		Source:     dir,
		AdTypes:    cfg.AdTypes,
		G:          cfg.G,
		Preference: cfg.Preference,
		MinDist:    cfg.MinDist,
	}
	if v.FullHistory {
		in.Mode = "full-history"
	}
	gammaMin, gammaMax := math.Inf(1), 0.0
	byID := make(map[int32]int)
	if !v.FullHistory && v.Snapshot != nil {
		s, err := DecodeSnapshot(v.Snapshot)
		if err != nil {
			return audit.Report{}, fmt.Errorf("broker: audit snapshot: %w", err)
		}
		for i := range s.Campaigns {
			sc := &s.Campaigns[i]
			byID[sc.ID] = len(in.Campaigns)
			in.Campaigns = append(in.Campaigns, audit.Campaign{
				ID: sc.ID, Loc: sc.Loc, Radius: sc.Radius, Tags: sc.Tags,
				Budget: sc.Budget(), SpentBefore: sc.Spent(),
				Paused: sc.Paused, Billing: sc.Billing(),
			})
			in.EscrowHeld += math.Float64frombits(sc.EscrowBits)
			in.ConvertedRevenue += math.Float64frombits(sc.ConvertedBits)
			in.Conversions += sc.Conversions
		}
		gammaMin, gammaMax = s.GammaMin(), math.Max(gammaMax, s.GammaMax())
	}
	for i, rec := range v.Records {
		d, err := DecodeRecord(rec)
		if err != nil {
			return audit.Report{}, fmt.Errorf("broker: audit record %d of %d: %w", i+1, len(v.Records), err)
		}
		switch d.Kind {
		case RecordRegister, RecordRegisterV2, RecordRegisterV3:
			byID[d.Campaign] = len(in.Campaigns)
			in.Campaigns = append(in.Campaigns, audit.Campaign{
				ID: d.Campaign, Loc: d.Loc, Radius: d.Radius, Tags: d.Tags,
				Budget: d.Budget, Billing: d.Billing,
			})
		case RecordController:
			// Controller epochs shape which offers were committed, but the
			// committed offers themselves are already in the arrival records;
			// the oracle problem doesn't model the actuators.
		case RecordTopUp:
			ci, ok := byID[d.Campaign]
			if !ok {
				return audit.Report{}, fmt.Errorf("broker: audit record %d tops up unknown campaign %d", i+1, d.Campaign)
			}
			in.Campaigns[ci].Budget += d.Amount
		case RecordPause:
			// Mid-stream pause dynamics are not modeled — a campaign paused
			// for part of the stream keeps its budget, which can only make
			// the oracle stronger. The *final* pause state, however, excludes
			// the campaign from the oracle problem entirely: its budget was
			// out of reach, so a counterfactual spending it would depress the
			// ratio for reasons no admission policy can fix (DESIGN §13).
			ci, ok := byID[d.Campaign]
			if !ok {
				return audit.Report{}, fmt.Errorf("broker: audit record %d pauses unknown campaign %d", i+1, d.Campaign)
			}
			in.Campaigns[ci].Paused = d.Paused
		case RecordArrival, RecordArrivalV2, RecordArrivalSlate:
			gammaMin = math.Min(gammaMin, d.GammaMin)
			gammaMax = math.Max(gammaMax, d.GammaMax)
			in.Arrivals = append(in.Arrivals,
				auditArrival(d.Customer, d.HasCustomer, d.Offers))
			for j := range d.Offers {
				in.EscrowHeld += d.Offers[j].Hold
			}
		case RecordArrivalBatch, RecordArrivalBatchV2:
			// One record, many arrivals: fold each element exactly as a
			// serial arrival record, in the batch's processing order.
			for j := range d.Batch {
				e := &d.Batch[j]
				gammaMin = math.Min(gammaMin, e.GammaMin)
				gammaMax = math.Max(gammaMax, e.GammaMax)
				in.Arrivals = append(in.Arrivals,
					auditArrival(e.Customer, true, e.Offers))
				for k := range e.Offers {
					in.EscrowHeld += e.Offers[k].Hold
				}
			}
		case RecordConversion:
			// A conversion moves its escrow hold into realized revenue. Holds
			// evicted by the open-offer cap are not logged, so EscrowHeld is
			// an upper bound on streams that overflow the cap.
			in.EscrowHeld -= d.Charge
			in.ConvertedRevenue += d.Charge
			in.Conversions++
		}
	}
	if gammaMax > 0 {
		in.GammaMin, in.GammaMax = gammaMin, gammaMax
	}
	return audit.Compute(in, audit.Config{
		UseRecon: cfg.UseRecon,
		Epsilon:  cfg.Epsilon,
		Workers:  cfg.Workers,
		Seed:     cfg.Seed,
	})
}
