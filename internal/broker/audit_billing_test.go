package broker

// ReplayAudit integration tests for the v4 record kinds: billed streams
// (slate arrivals, conversions) and the pause-aware oracle.

import (
	"math"
	"testing"

	"muaa/internal/workload"
)

// TestReplayAuditBilledRevenue is the acceptance run for the slate
// economics audit: a seeded CPC/CPM mixed stream with conversions, audited
// from its retained WAL, must report the offline-slate-optimum revenue
// ratio and billing telemetry that matches the live broker's books.
func TestReplayAuditBilledRevenue(t *testing.T) {
	dir := t.TempDir()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), DataDir: dir, WAL: auditWAL()})
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.BilledBrokerLoadConfig(16, 1500, 23))
	if err != nil {
		t.Fatal(err)
	}
	registerLoad(t, b, specs)
	var open []uint64
	for _, op := range stream {
		applyBilledOp(t, b, op, &open)
	}
	st := b.Stats()
	if st.Conversions == 0 {
		t.Fatalf("seeded stream converted nothing: %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayAudit(dir, defaultAuditConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "full-history" {
		t.Fatalf("mode %q", rep.Mode)
	}
	if rep.Conversions != st.Conversions {
		t.Fatalf("audit conversions %d, broker %d", rep.Conversions, st.Conversions)
	}
	if math.Abs(rep.ConvertedRevenue-st.ConversionRevenue) > 1e-9 {
		t.Fatalf("audit converted revenue %g, broker %g", rep.ConvertedRevenue, st.ConversionRevenue)
	}
	if math.Abs(rep.EscrowHeld-st.EscrowHeld) > 1e-9 {
		t.Fatalf("audit escrow %g, broker %g", rep.EscrowHeld, st.EscrowHeld)
	}
	if rep.OnlineRevenue <= 0 || rep.OracleRevenue <= 0 {
		t.Fatalf("revenue sides must be positive: online %g oracle %g", rep.OnlineRevenue, rep.OracleRevenue)
	}
	if !(rep.RevenueRatio > 0) {
		t.Fatalf("revenue ratio %g", rep.RevenueRatio)
	}
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("empirical ratio %g outside (0, 1]", rep.EmpiricalRatio)
	}
}

// TestReplayAuditPauseAware: campaigns paused at the end of the stream are
// excluded from the oracle problem — the replayed pause records carry the
// final state into the report.
func TestReplayAuditPauseAware(t *testing.T) {
	dir := t.TempDir()
	b := driveSeededLoad(t, dir, 12, 600, 19)
	campaigns := b.Campaigns()
	// Force a known end state: pause the first 8 campaigns, resume the rest.
	for i, c := range campaigns {
		if err := b.SetPaused(c.ID, i < 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayAudit(dir, defaultAuditConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PausedCampaigns != 8 {
		t.Fatalf("paused campaigns %d, want 8", rep.PausedCampaigns)
	}
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("ratio %g outside (0, 1]", rep.EmpiricalRatio)
	}
	// A paused campaign must not appear in the oracle's spend plan.
	for _, ca := range rep.CampaignAudits {
		for i, c := range campaigns {
			if c.ID == ca.ID && i < 8 && ca.OracleSpent != 0 {
				t.Fatalf("paused campaign %d got oracle spend %g", ca.ID, ca.OracleSpent)
			}
		}
	}
}
