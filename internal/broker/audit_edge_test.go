package broker

// AuditNow edge cases: the live window can legitimately be empty, a single
// arrival wide, or full of traffic no campaign may serve (everything
// paused). Each shape must produce a well-formed report — these tests pin
// the degenerate behavior so controller code reading the report never needs
// defensive special cases beyond AuditedArrivals > 0.

import (
	"testing"
	"time"

	"muaa/internal/workload"
)

func edgeBroker(t *testing.T, window int) *Broker {
	t.Helper()
	b, err := New(Config{
		AdTypes:     workload.DefaultAdTypes(),
		AuditWindow: window,
		AuditEvery:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func checkRatio(t *testing.T, name string, ratio float64) {
	t.Helper()
	if ratio < 0 || ratio > 1 {
		t.Fatalf("%s: empirical ratio %g outside [0, 1]", name, ratio)
	}
}

// TestAuditNowEmptyWindow: a broker that has seen no traffic still audits —
// zero arrivals, zero utility on both sides, ratio pinned at 1 by the
// both-zero convention.
func TestAuditNowEmptyWindow(t *testing.T) {
	b := edgeBroker(t, 64)
	rep, err := b.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals != 0 || rep.AuditedArrivals != 0 {
		t.Fatalf("empty window reports %d/%d arrivals", rep.Arrivals, rep.AuditedArrivals)
	}
	if rep.OnlineUtility != 0 || rep.OracleUtility != 0 {
		t.Fatalf("empty window reports utility %g/%g", rep.OnlineUtility, rep.OracleUtility)
	}
	if rep.EmpiricalRatio != 1 {
		t.Fatalf("empty window ratio %g, want 1 (both-zero convention)", rep.EmpiricalRatio)
	}
	if rep.HourFraction != 0 {
		t.Fatalf("empty window hour fraction %g, want 0", rep.HourFraction)
	}
}

// TestAuditNowSingleArrivalWindow: AuditWindow 1 keeps only the latest
// arrival; the report must track it alone, whatever came before.
func TestAuditNowSingleArrivalWindow(t *testing.T) {
	b := edgeBroker(t, 1)
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(4, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range stream {
		applyLoadOp(t, b, op)
	}
	rep, err := b.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals != 1 {
		t.Fatalf("single-arrival window audited %d arrivals", rep.Arrivals)
	}
	checkRatio(t, "single-arrival", rep.EmpiricalRatio)
	if rep.HourFraction < 0 || rep.HourFraction > 1 {
		t.Fatalf("hour fraction %g outside [0, 1]", rep.HourFraction)
	}
}

// TestAuditNowAllPaused: arrivals landing while every campaign is paused earn
// nothing online — but the window oracle is pause-blind by design (pausing is
// operator intervention, not admission policy), so the report shows the
// utility the traffic was worth and the ratio collapses accordingly.
func TestAuditNowAllPaused(t *testing.T) {
	b := edgeBroker(t, 64)
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(4, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
		if err := b.SetPaused(int32(i), true); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range stream {
		if op.Kind == workload.OpArrival {
			applyLoadOp(t, b, op)
		}
	}
	rep, err := b.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrivals == 0 {
		t.Fatal("no arrivals audited; test is vacuous")
	}
	if rep.OnlineUtility != 0 || rep.Offers != 0 {
		t.Fatalf("paused fleet earned utility %g with %d offers", rep.OnlineUtility, rep.Offers)
	}
	checkRatio(t, "all-paused", rep.EmpiricalRatio)
	if rep.OracleUtility > 0 && rep.EmpiricalRatio != 0 {
		t.Fatalf("oracle found %g but ratio is %g, want 0", rep.OracleUtility, rep.EmpiricalRatio)
	}
}
