package broker

// Regression tests for the debug-refresh path (/v1/debug/audit?refresh=true
// funnels into AuditNow): refreshes may run concurrently with arrivals and
// the background audit ticker without a data race, and a refresh must never
// step the pacing controller — only the ticker (and explicit PacingStep
// callers) advance epochs, so external clients cannot accelerate the control
// loop.

import (
	"sync"
	"testing"
	"time"

	"muaa/internal/pacing"
	"muaa/internal/workload"
)

func auditRaceBroker(t *testing.T, every time.Duration) (*Broker, []workload.BrokerOp) {
	t.Helper()
	const campaigns, ops, seed = 8, 400, 5
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}
	ctl := pacing.Default()
	b, err := New(Config{
		AdTypes:     workload.DefaultAdTypes(),
		AuditWindow: 256,
		AuditEvery:  every,
		Controller:  &ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	return b, stream
}

// TestAuditRefreshNeverStepsController: with the ticker parked, hammering
// AuditNow concurrently with arrivals recomputes reports but leaves the
// controller untouched — zero epochs, boost 1, no rate caps.
func TestAuditRefreshNeverStepsController(t *testing.T) {
	b, stream := auditRaceBroker(t, time.Hour)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := b.AuditNow(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// The driver also refreshes inline so the test holds even when the
	// background goroutines never get a scheduling slot.
	for i, op := range stream {
		applyLoadOp(t, b, op)
		if i%50 == 0 {
			if _, err := b.AuditNow(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	st := b.Stats()
	if st.PacingEpoch != 0 || st.PhiBoost != 1 {
		t.Fatalf("refresh stepped the controller: epoch %d, boost %g", st.PacingEpoch, st.PhiBoost)
	}
	for _, c := range b.Campaigns() {
		if c.Rate != 1 {
			t.Fatalf("refresh capped campaign %d at rate %g", c.ID, c.Rate)
		}
	}
	if b.AuditReport() == nil {
		t.Fatal("refreshes ran but no report was stored")
	}
}

// TestAuditRefreshTickerRace: arrivals, concurrent debug refreshes, explicit
// controller steps, and a fast background ticker all at once — the -race
// gate's regression for the report/controller interleaving.
func TestAuditRefreshTickerRace(t *testing.T) {
	b, stream := auditRaceBroker(t, time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() { // debug refresh client
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := b.AuditNow(); err != nil {
				t.Error(err)
				return
			}
			_ = b.AuditReport()
		}
	}()
	go func() { // operator driving manual epochs
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := b.PacingStep(); err != nil {
				t.Error(err)
				return
			}
			_ = b.Stats()
			_ = b.Campaigns()
		}
	}()
	for _, op := range stream {
		applyLoadOp(t, b, op)
	}
	time.Sleep(10 * time.Millisecond) // let the ticker land a few cycles
	// One inline step so the epoch assertion below never depends on the
	// goroutines having been scheduled (single-core runners).
	if _, err := b.PacingStep(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if st := b.Stats(); st.PacingEpoch == 0 {
		t.Fatal("no controller epoch landed despite ticker and manual steps")
	}
}
