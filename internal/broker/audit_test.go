package broker

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"muaa/internal/obs"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

// auditWAL is crashWAL plus segment retention, so the audit sees the full
// history chain from genesis.
func auditWAL() wal.Options {
	o := crashWAL()
	o.Retain = true
	return o
}

// driveSeededLoad boots a durable broker over dir and serves the canonical
// seeded load; the caller decides whether to Close (graceful) or abandon
// (crash).
func driveSeededLoad(t *testing.T, dir string, campaigns, ops int, seed int64) *Broker {
	t.Helper()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), DataDir: dir, WAL: auditWAL()})
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range stream {
		applyLoadOp(t, b, op)
	}
	return b
}

func defaultAuditConfig() AuditConfig {
	return AuditConfig{AdTypes: workload.DefaultAdTypes(), UseRecon: true, Workers: 1, Seed: 1}
}

// TestReplayAuditGolden pins audit determinism: the same WAL yields a
// byte-identical report (timestamp excluded — Compute never stamps one).
// Regenerate with -update after intentional report changes.
func TestReplayAuditGolden(t *testing.T) {
	dir := t.TempDir()
	b := driveSeededLoad(t, dir, 16, 800, 7)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayAudit(dir, defaultAuditConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Strip the machine-local source path so the golden is stable.
	rep2, err := ReplayAudit(dir, defaultAuditConfig())
	if err != nil {
		t.Fatal(err)
	}
	again, err := rep2.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(again) {
		t.Fatal("two audits of the same WAL produced different reports")
	}
	normalized := strings.ReplaceAll(string(got), dir, "$DATA_DIR")
	goldenPath := filepath.Join("testdata", "audit_report.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(normalized), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if normalized != string(want) {
		t.Fatalf("audit report diverged from golden (%d vs %d bytes, first diff at byte %d); run with -update if intentional",
			len(normalized), len(want), firstDiff(normalized, string(want)))
	}
}

// TestReplayAuditRatioBounds: the acceptance gates for the seeded stream —
// the empirical ratio is a true ratio (0 < r ≤ 1) and sits inside the
// theoretical guarantee computed from observed g.
func TestReplayAuditRatioBounds(t *testing.T) {
	dir := t.TempDir()
	b := driveSeededLoad(t, dir, 16, 800, 7)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayAudit(dir, defaultAuditConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "full-history" {
		t.Fatalf("retained chain must audit as full-history, got %q", rep.Mode)
	}
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("empirical ratio %g outside (0, 1]", rep.EmpiricalRatio)
	}
	if rep.CompetitiveBound <= 0 {
		t.Fatalf("seeded stream must produce a defined bound, got %g (θ=%g)", rep.CompetitiveBound, rep.Theta)
	}
	if rep.EmpiricalRatio < 1/rep.CompetitiveBound {
		t.Fatalf("ratio %g violates the bound: below 1/%g", rep.EmpiricalRatio, rep.CompetitiveBound)
	}
	if !rep.BoundSatisfied {
		t.Fatal("BoundSatisfied must be true for the seeded stream")
	}
	if rep.OracleUtility < rep.GreedyUtility || rep.OracleUtility < rep.OnlineUtility {
		t.Fatalf("oracle %g below a known feasible solution (greedy %g, online %g)",
			rep.OracleUtility, rep.GreedyUtility, rep.OnlineUtility)
	}
	if len(rep.RegretByDelta) != 3 {
		t.Fatalf("want 3 δ points, got %d", len(rep.RegretByDelta))
	}
	if rep.MixDivergence < 0 || rep.MixDivergence > 1 {
		t.Fatalf("mix divergence %g outside [0, 1]", rep.MixDivergence)
	}
}

// TestReplayAuditSpentMatchesStats is the single-source-of-truth property:
// after a graceful shutdown, the audit's recomputed per-campaign spend —
// replayed from the WAL alone — equals the live broker's accounting bit for
// bit, because both performed the same serial float accumulation.
func TestReplayAuditSpentMatchesStats(t *testing.T) {
	for _, seed := range []int64{7, 21, 99} {
		dir := t.TempDir()
		b := driveSeededLoad(t, dir, 24, 1500, seed)
		live := b.Campaigns()
		st := b.Stats()
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		cfg := defaultAuditConfig()
		cfg.UseRecon = false // the property is about accounting, not oracles
		rep, err := ReplayAudit(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.CampaignAudits) != len(live) {
			t.Fatalf("seed %d: audit saw %d campaigns, broker had %d", seed, len(rep.CampaignAudits), len(live))
		}
		for i, ca := range rep.CampaignAudits {
			lc := live[i]
			if ca.ID != lc.ID {
				t.Fatalf("seed %d: campaign order diverged at %d", seed, i)
			}
			if math.Float64bits(ca.SpentTotal) != math.Float64bits(lc.Spent) {
				t.Fatalf("seed %d campaign %d: audit spent %v (%x) != live %v (%x)",
					seed, ca.ID, ca.SpentTotal, math.Float64bits(ca.SpentTotal),
					lc.Spent, math.Float64bits(lc.Spent))
			}
			if math.Float64bits(ca.Budget) != math.Float64bits(lc.Budget) {
				t.Fatalf("seed %d campaign %d: audit budget %v != live %v", seed, ca.ID, ca.Budget, lc.Budget)
			}
		}
		if math.Float64bits(rep.OnlineUtility) != math.Float64bits(st.UtilityServed) {
			t.Fatalf("seed %d: audit online utility %v != live %v", seed, rep.OnlineUtility, st.UtilityServed)
		}
		if int64(rep.Arrivals) != st.Arrivals || int64(rep.Offers) != st.OffersPushed {
			t.Fatalf("seed %d: audit %d arrivals / %d offers, live %d / %d",
				seed, rep.Arrivals, rep.Offers, st.Arrivals, st.OffersPushed)
		}
	}
}

// TestReplayAuditTornTail: a crash-torn final segment must not block the
// audit — it reports on the intact prefix, read-only.
func TestReplayAuditTornTail(t *testing.T) {
	dir := t.TempDir()
	b := driveSeededLoad(t, dir, 16, 600, 11)
	_ = b // crash: no Close. Tear the final segment mid-record.
	refs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := refs[len(refs)-1].Path
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := defaultAuditConfig()
	cfg.UseRecon = false
	rep, err := ReplayAudit(dir, cfg)
	if err != nil {
		t.Fatalf("torn tail must still audit: %v", err)
	}
	if rep.Arrivals == 0 {
		t.Fatal("prefix audit saw no arrivals")
	}
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("prefix ratio %g outside (0, 1]", rep.EmpiricalRatio)
	}
	after, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data)-5 {
		t.Fatal("audit modified the torn segment")
	}
}

// TestLiveAuditWindow: the in-memory live path — ring capture, synchronous
// recompute, gauges, and clean shutdown of the audit loop.
func TestLiveAuditWindow(t *testing.T) {
	reg := obs.NewRegistry()
	b, err := New(Config{
		AdTypes:     workload.DefaultAdTypes(),
		AuditWindow: 128,
		AuditEvery:  time.Hour, // recompute only when the test asks
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(12, 600, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range stream {
		applyLoadOp(t, b, op)
	}
	if got := b.AuditReport(); got != nil {
		t.Fatal("no recompute ran yet; report must be nil")
	}
	rep, err := b.AuditNow()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "window" || rep.Source != "live" {
		t.Fatalf("window report labeled %q/%q", rep.Mode, rep.Source)
	}
	if rep.Arrivals == 0 || rep.Arrivals > 128 {
		t.Fatalf("window of 128 reported %d arrivals", rep.Arrivals)
	}
	if !(rep.EmpiricalRatio > 0 && rep.EmpiricalRatio <= 1) {
		t.Fatalf("live ratio %g outside (0, 1]", rep.EmpiricalRatio)
	}
	if b.AuditReport() != rep {
		t.Fatal("AuditReport must return the recomputed report")
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{
		"muaa_broker_empirical_ratio",
		"muaa_broker_competitive_bound",
		`muaa_broker_regret{delta="0.5"}`,
		`muaa_broker_pacing_campaigns{utilization="0-25"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent, and the loop goroutine is gone (stop would hang otherwise).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}
