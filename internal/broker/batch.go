package broker

// Batched arrival ingestion. ArriveBatch is the broker half of the paper's
// micro-batching setting (core.OnlineBatch models it offline): a client that
// tolerates a bounded answer delay submits a window of arrivals at once, and
// the broker amortizes the per-arrival fixed costs — stripe-lock
// acquisition, clock anchoring, WAL record framing and group commit — over
// the whole window while leaving the decision sequence exactly what serial
// submission would have produced.
//
// Equivalence contract: arrivals are processed strictly in submission order
// with the same gather/scan/commit core serial Arrive uses, so for any split
// of a stream into batches, Stats, per-campaign spend, every committed offer
// and the recovered (WAL-replayed) state are bit-identical to the serial
// history (TestBatchMatchesSerial*, TestBatchReplayBitExact). Stripe sorting
// happens only in lock acquisition — the covering stripe interval is locked
// once, ascending, before the first arrival is examined — never in
// processing order.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"muaa/internal/trace"
)

// BatchResult is one arrival's outcome inside an ArriveBatch call: the
// offers committed for it, or the validation error that rejected it (a
// rejected arrival consumes nothing and is not counted or logged — partial
// failure is per element, never whole-batch).
type BatchResult struct {
	Offers []Offer
	Err    error
}

// ArriveBatch processes a window of arrivals as one unit: the covering
// stripe interval is locked once, one clock anchor times the whole batch,
// every arrival is processed in submission order by the serial pipeline's
// own passes, and a durable broker appends a single v3 batch record framing
// all of them. Results are per arrival, index-aligned with batch. Offer
// slices in the results alias one shared buffer owned by the caller.
func (b *Broker) ArriveBatch(batch []Arrival) []BatchResult {
	results := b.arriveBatch(batch, nil)
	b.captureBatch(batch, results)
	return results
}

// ArriveBatchTraced is ArriveBatch plus request tracing: one root span named
// "arrival_batch" covering the whole call, with per-arrival outcomes in the
// trace's batch table. With no recorder or no trace context it is exactly
// ArriveBatch.
func (b *Broker) ArriveBatchTraced(batch []Arrival, req *trace.Request) []BatchResult {
	if req == nil || b.tracer == nil {
		return b.ArriveBatch(batch)
	}
	t := &trace.Trace{
		TraceID:      req.TraceID,
		SpanID:       req.SpanID,
		ParentSpanID: req.ParentSpanID,
	}
	results := b.arriveBatch(batch, t)
	if t.Start.IsZero() {
		// Nothing reached the timed pipeline (empty or all-invalid batch);
		// stamp it so the recorder can still order it.
		t.Start = time.Now()
	}
	t.Batch = len(batch)
	t.BatchOutcomes = make([]trace.BatchOutcome, len(results))
	totalOffers, errs := 0, 0
	for i := range results {
		o := &t.BatchOutcomes[i]
		switch {
		case results[i].Err != nil:
			o.Outcome = trace.OutcomeError
			o.Error = results[i].Err.Error()
			errs++
		case len(results[i].Offers) > 0:
			o.Outcome = trace.OutcomeOffered
			o.Offers = len(results[i].Offers)
			totalOffers += len(results[i].Offers)
		default:
			o.Outcome = trace.OutcomeNoOffers
		}
		t.Capacity += batch[i].Capacity
	}
	t.Offers = totalOffers
	switch {
	case errs == len(results) && len(results) > 0:
		t.Outcome = trace.OutcomeError
	case totalOffers > 0:
		t.Outcome = trace.OutcomeOffered
	default:
		t.Outcome = trace.OutcomeNoOffers
	}
	if errs > 0 || t.Scan.Exhausted > 0 {
		t.Anomalous = true
	}
	b.tracer.Record(t)
	b.captureBatch(batch, results)
	return results
}

// captureBatch feeds the batch's accepted arrivals to the live-audit window
// in submission order, exactly as serial Arrive does after its locks
// release.
func (b *Broker) captureBatch(batch []Arrival, results []BatchResult) {
	if b.audit == nil {
		return
	}
	for i := range results {
		if results[i].Err == nil {
			b.audit.capture(&batch[i], results[i].Offers)
		}
	}
}

// arriveBatch is the batch pipeline. Stage accounting differs from serial
// arrive by design — one clock anchor per batch: lock_wait times the single
// interval acquisition, scan times the whole per-arrival processing loop
// (gather, scan and charge interleaved per arrival), commit times the one
// WAL batch append. Gather is reported as zero.
func (b *Broker) arriveBatch(batch []Arrival, t *trace.Trace) []BatchResult {
	m := b.metrics
	results := make([]BatchResult, len(batch))
	live := 0
	for i := range batch {
		a := &batch[i]
		if a.Capacity < 0 {
			if m != nil {
				m.arrivalErrors.Inc()
			}
			results[i].Err = fmt.Errorf("broker: capacity %d", a.Capacity)
			continue
		}
		if a.ViewProb < 0 || a.ViewProb > 1 || math.IsNaN(a.ViewProb) {
			if m != nil {
				m.arrivalErrors.Inc()
			}
			results[i].Err = fmt.Errorf("broker: view probability %g", a.ViewProb)
			continue
		}
		live++
	}
	if m != nil {
		m.batchSize.Observe(float64(live))
	}
	if live == 0 {
		return results
	}

	// The covering stripe interval: the union of every accepted arrival's
	// own stripe range (its query disk for a serving arrival, its home
	// stripe for a zero-capacity count-only one). Contiguous by
	// construction — stripe ranges are intervals — and locked once,
	// ascending, the global lock order.
	maxR := b.maxRadius.Load()
	lo, hi := len(b.shards), -1
	for i := range batch {
		if results[i].Err != nil {
			continue
		}
		a := &batch[i]
		var s0, s1 int
		if a.Capacity == 0 {
			s0 = b.stripes.Of(a.Loc)
			s1 = s0
		} else {
			s0, s1 = b.stripes.Range(a.Loc.Y-maxR, a.Loc.Y+maxR)
		}
		if s0 < lo {
			lo = s0
		}
		if s1 > hi {
			hi = s1
		}
	}

	timed := m != nil || t != nil
	var tStart time.Time
	var elStage time.Duration
	if timed {
		tStart = time.Now()
	}
	if m != nil {
		for i := lo; i <= hi; i++ {
			if !b.shards[i].mu.TryLock() {
				m.stripeContended[i].Inc()
				b.shards[i].mu.Lock()
			}
			m.stripeLocks[i].Inc()
		}
	} else {
		for i := lo; i <= hi; i++ {
			b.shards[i].mu.Lock()
		}
	}
	if timed {
		d := time.Since(tStart)
		elStage = d
		if m != nil {
			m.stageLock.ObserveShard(lo, d.Seconds())
		}
		if t != nil {
			t.Start = tStart
			t.Staged = true
			t.StripeLo, t.StripeHi = lo, hi
			t.Stages[trace.StageLockWait] = d
		}
	}
	defer func() {
		for i := hi; i >= lo; i-- {
			b.shards[i].mu.Unlock()
		}
	}()

	// The slate flag is read once under the locks (see arrive); the record
	// format additionally upgrades to v2 bodies only when billing is truly
	// active, so a forced-slate all-fixed broker still writes the legacy
	// stream byte-identically.
	slateRec := b.billing.active.Load()
	slate := slateRec || b.cfg.Slate

	// One batch record frames the whole batch; each element is encoded right
	// after its arrival's commit so it carries the same γ bits the serial
	// record would.
	var bp *[]byte
	var buf []byte
	if b.wal != nil {
		bp = recPool.Get().(*[]byte)
		kind := byte(recArrivalBatch)
		if slateRec {
			kind = recArrivalBatchV2
		}
		buf = append((*bp)[:0], kind)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(live))
	}

	ar := &b.shards[lo].arena
	var offers []Offer
	var agg scanTally
	for i := range batch {
		if results[i].Err != nil {
			continue
		}
		a := &batch[i]
		b.arrivals.Add(1)
		if a.Capacity == 0 {
			if b.wal != nil {
				buf = b.appendArrivalBodyKind(buf, a, nil, slateRec)
			}
			continue
		}
		s0, s1 := b.stripes.Range(a.Loc.Y-maxR, a.Loc.Y+maxR)
		dir := b.gatherCandidates(ar, a.Loc, s0, s1)
		boost := 1.0
		if b.controller != nil {
			boost = b.phiBoost.Load()
		}
		var tally scanTally
		if slate {
			tally = b.scanSlate(ar, a, dir, boost)
		} else {
			tally = b.scanCandidates(ar, a, dir, boost)
		}
		agg.add(tally)
		if b.funnel != nil {
			// Fold per arrival: the arena's event slice is rebuilt by every
			// scan, so attribution must land before the next arrival reuses it.
			b.funnel.fold(ar)
		}
		n0 := len(offers)
		if len(ar.cands) > 0 {
			if slate {
				offers = b.commitSlate(ar, offers)
			} else {
				offers = b.commitOffers(ar, offers)
			}
			// Full-slice expression: a later arrival's append can grow past
			// this segment's length but never overwrite it.
			results[i].Offers = offers[n0:len(offers):len(offers)]
		}
		if b.wal != nil {
			buf = b.appendArrivalBodyKind(buf, a, results[i].Offers, slateRec)
		}
	}
	if timed {
		el := time.Since(tStart)
		d := el - elStage
		elStage = el
		if m != nil {
			m.stageScan.ObserveShard(lo, d.Seconds())
			m.foldScanTally(&agg)
		}
		if t != nil {
			t.Stages[trace.StageScan] = d
			t.Scan = agg.counts()
		}
	}
	if b.wal != nil {
		*bp = buf
		b.walAppend(bp)
	}
	if timed {
		el := time.Since(tStart)
		d := el - elStage
		if m != nil {
			m.stageCommit.ObserveShard(lo, d.Seconds())
			m.batchSeconds.Observe(el.Seconds())
		}
		if t != nil {
			t.Stages[trace.StageCommit] = d
			t.Duration = el
		}
	}
	return results
}
