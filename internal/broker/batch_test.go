package broker

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/obs"
	"muaa/internal/trace"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

// batchingArrive adapts ArriveBatch to the applyTranscriptOpVia harness:
// arrivals are buffered and flushed through one ArriveBatch call per window,
// with window lengths drawn from a seeded source. flush must also be called
// on every non-arrival transcript op so batching never reorders an arrival
// past a top-up or pause it would serially precede.
type batchingArrive struct {
	b       *Broker
	rng     *rand.Rand
	pending []Arrival
	window  int
	batches int
}

func (ba *batchingArrive) add(t *testing.T, a Arrival) []Offer {
	t.Helper()
	ba.pending = append(ba.pending, a)
	if len(ba.pending) < ba.window {
		return nil
	}
	results := ba.flush(t)
	return results[len(results)-1].Offers
}

// flush submits the pending window and returns its results (empty when
// nothing is pending).
func (ba *batchingArrive) flush(t *testing.T) []BatchResult {
	t.Helper()
	if len(ba.pending) == 0 {
		return nil
	}
	results := ba.b.ArriveBatch(ba.pending)
	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("batched arrival %d: %v", i, results[i].Err)
		}
	}
	ba.pending = ba.pending[:0]
	ba.batches++
	ba.window = 1 + ba.rng.Intn(7)
	return results
}

// replayTranscriptBatched renders the same transcript replayTranscript does
// but pushes arrivals through ArriveBatch in randomly sized windows. Because
// a window's offers only materialize at flush time, the arrive lines are
// buffered alongside and emitted when their batch commits — the resulting
// transcript text is in the same op order as the serial one.
func replayTranscriptBatched(t *testing.T, cfg Config, campaigns, ops int, seed, batchSeed int64) string {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, c := range specs {
		id, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags)
		if err != nil {
			t.Fatal(err)
		}
		writeRegisterLine(&sb, id, c)
	}
	ba := &batchingArrive{b: b, rng: rand.New(rand.NewSource(batchSeed)), window: 1}
	ba.window = 1 + ba.rng.Intn(7)
	var heldOps []int // op indices of the pending arrivals, for their lines
	flush := func() {
		held := heldOps
		heldOps = heldOps[:0]
		for j, res := range ba.flush(t) {
			writeArriveLine(&sb, held[j], res.Offers)
		}
	}
	for i, op := range stream {
		if op.Kind == workload.OpArrival {
			heldOps = append(heldOps, i)
			ba.pending = append(ba.pending, Arrival{
				Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
				Interests: op.Interests, Hour: op.Hour,
			})
			if len(ba.pending) >= ba.window {
				flush()
			}
			continue
		}
		flush()
		applyTranscriptOp(t, b, &sb, i, op)
	}
	flush()
	writeFinalLines(&sb, b)
	if ba.batches == 0 {
		t.Fatal("workload produced no batches")
	}
	return sb.String()
}

// TestBatchedReplayMatchesGolden is the batch path's determinism pin: the
// golden streams pushed through ArriveBatch with randomly sized windows must
// reproduce the serial golden transcripts byte-for-byte — same offers, same
// γ evolution, same final floats. This is the "replays bit-exactly" bar for
// the v3 batch record's producer side.
func TestBatchedReplayMatchesGolden(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{AdTypes: workload.DefaultAdTypes()}},
		{"paced", Config{AdTypes: workload.DefaultAdTypes(), Pacing: 1.25}},
		{"fixed_g", Config{AdTypes: workload.DefaultAdTypes(), G: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "replay_"+tc.name+".golden"))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			for _, batchSeed := range []int64{1, 7} {
				got := replayTranscriptBatched(t, tc.cfg, 32, 3000, 42, batchSeed)
				if got != string(want) {
					t.Fatalf("batched replay (batch seed %d) diverged from golden (%d vs %d bytes, first diff at byte %d)",
						batchSeed, len(got), len(want), firstDiff(got, string(want)))
				}
			}
		})
	}
}

// TestBatchMatchesSerialProperty is the equivalence property test: for
// random workloads and random batch boundaries, a batched broker and a
// serial broker fed the same stream must agree on every offer and on every
// final counter, bit for bit.
func TestBatchMatchesSerialProperty(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		cfg := Config{AdTypes: workload.DefaultAdTypes()}
		serial, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		batched, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(24, 1200, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range specs {
			if _, err := serial.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
				t.Fatal(err)
			}
			if _, err := batched.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(seed * 1000))
		var window []Arrival
		var serialOffers [][]Offer
		limit := 1 + rng.Intn(9)
		flush := func() {
			if len(window) == 0 {
				return
			}
			results := batched.ArriveBatch(window)
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("batched arrival: %v", res.Err)
				}
				want := serialOffers[i]
				got := res.Offers
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: batched offers diverged from serial:\n got %+v\nwant %+v", seed, got, want)
				}
			}
			window = window[:0]
			serialOffers = serialOffers[:0]
			limit = 1 + rng.Intn(9)
		}
		for _, op := range stream {
			switch op.Kind {
			case workload.OpArrival:
				a := Arrival{Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
					Interests: op.Interests, Hour: op.Hour}
				offers, err := serial.Arrive(a)
				if err != nil {
					t.Fatal(err)
				}
				window = append(window, a)
				serialOffers = append(serialOffers, offers)
				if len(window) >= limit {
					flush()
				}
			case workload.OpTopUp:
				flush()
				if err := serial.TopUp(op.Campaign, op.Amount); err != nil {
					t.Fatal(err)
				}
				if err := batched.TopUp(op.Campaign, op.Amount); err != nil {
					t.Fatal(err)
				}
			case workload.OpPause:
				flush()
				if err := serial.SetPaused(op.Campaign, op.Paused); err != nil {
					t.Fatal(err)
				}
				if err := batched.SetPaused(op.Campaign, op.Paused); err != nil {
					t.Fatal(err)
				}
			case workload.OpStats:
				// Stats are compared at the end; mid-stream the batched broker
				// legitimately lags by the pending window.
			}
		}
		flush()
		if a, b := serial.Stats(), batched.Stats(); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: final stats diverged:\nserial  %+v\nbatched %+v", seed, a, b)
		}
	}
}

// TestBatchReplayBitExact pins the WAL v3 record round trip: a durable
// broker fed batches, crashed without Close, and recovered must match —
// bit for bit — a serial durable broker crashed and recovered at the same
// point, and both must keep agreeing on traffic served after recovery.
func TestBatchReplayBitExact(t *testing.T) {
	mk := func(dir string) *Broker {
		b, err := New(Config{
			AdTypes: workload.DefaultAdTypes(), DataDir: dir, WAL: crashWAL(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serialDir, batchDir := t.TempDir(), t.TempDir()
	serial, batched := mk(serialDir), mk(batchDir)

	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(16, 600, 5))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := serial.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
		if _, err := batched.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	var window []Arrival
	flush := func() {
		if len(window) == 0 {
			return
		}
		for _, res := range batched.ArriveBatch(window) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		window = window[:0]
	}
	for _, op := range stream {
		switch op.Kind {
		case workload.OpArrival:
			a := Arrival{Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
				Interests: op.Interests, Hour: op.Hour}
			if _, err := serial.Arrive(a); err != nil {
				t.Fatal(err)
			}
			window = append(window, a)
			if len(window) >= 32 {
				flush()
			}
		case workload.OpTopUp:
			flush()
			if err := serial.TopUp(op.Campaign, op.Amount); err != nil {
				t.Fatal(err)
			}
			if err := batched.TopUp(op.Campaign, op.Amount); err != nil {
				t.Fatal(err)
			}
		case workload.OpPause:
			flush()
			if err := serial.SetPaused(op.Campaign, op.Paused); err != nil {
				t.Fatal(err)
			}
			if err := batched.SetPaused(op.Campaign, op.Paused); err != nil {
				t.Fatal(err)
			}
		}
	}
	flush()

	// The batched WAL must actually contain v3 records — otherwise this test
	// is vacuously comparing two serial logs.
	if n := countBatchRecords(t, batchDir); n == 0 {
		t.Fatal("batched broker's WAL contains no batch records")
	}

	// Crash both (no Close) and recover.
	serial2, batched2 := mk(serialDir), mk(batchDir)
	defer serial2.Close()
	defer batched2.Close()
	if a, b := serial2.Stats(), batched2.Stats(); !reflect.DeepEqual(a, b) {
		t.Fatalf("recovered stats diverged:\nserial  %+v\nbatched %+v", a, b)
	}
	sc, bc := serial2.Campaigns(), batched2.Campaigns()
	if !reflect.DeepEqual(sc, bc) {
		t.Fatalf("recovered campaign states diverged:\nserial  %+v\nbatched %+v", sc, bc)
	}

	// Post-recovery traffic must agree too: recovery restored the same γ
	// estimator state on both sides.
	a := Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 3, ViewProb: 0.7,
		Interests: []float64{1, 0.5, 1, 0, 0.5, 1, 0, 1}, Hour: 15}
	so, err := serial2.Arrive(a)
	if err != nil {
		t.Fatal(err)
	}
	results := batched2.ArriveBatch([]Arrival{a})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if len(so) != len(results[0].Offers) || (len(so) > 0 && !reflect.DeepEqual(so, results[0].Offers)) {
		t.Fatalf("post-recovery offers diverged:\nserial  %+v\nbatched %+v", so, results[0].Offers)
	}
}

// countBatchRecords decodes a broker data directory's WAL and counts
// RecordArrivalBatch frames.
func countBatchRecords(t *testing.T, dir string) int {
	t.Helper()
	v, err := wal.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, rec := range v.Records {
		d, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("undecodable WAL record: %v", err)
		}
		if d.Kind == RecordArrivalBatch {
			n++
		}
	}
	return n
}

// TestBatchMixedValidity pins partial-failure semantics: invalid elements
// are rejected in place with the serial path's error text while the valid
// remainder of the batch is served, counted, and logged.
func TestBatchMixedValidity(t *testing.T) {
	reg := obs.NewRegistry()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 100, []float64{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	good := Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 2, ViewProb: 0.8,
		Interests: []float64{1, 0.5, 1}, Hour: 12}
	batch := []Arrival{
		good,
		{Capacity: -1},
		good,
		{Capacity: 1, ViewProb: 1.5},
	}
	results := b.ArriveBatch(batch)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("valid arrivals rejected: %v, %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "capacity") {
		t.Fatalf("bad capacity not rejected: %v", results[1].Err)
	}
	if results[3].Err == nil || !strings.Contains(results[3].Err.Error(), "view probability") {
		t.Fatalf("bad view probability not rejected: %v", results[3].Err)
	}
	if len(results[0].Offers) == 0 {
		t.Fatal("in-range valid arrival got no offers")
	}
	if st := b.Stats(); st.Arrivals != 2 {
		t.Fatalf("arrivals counter = %d, want 2 (rejected elements must not count)", st.Arrivals)
	}
}

// TestBatchEdgeCases covers the degenerate windows: empty, all-invalid, and
// all-zero-capacity batches must leave the broker fully serviceable.
func TestBatchEdgeCases(t *testing.T) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 100, []float64{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if results := b.ArriveBatch(nil); len(results) != 0 {
		t.Fatalf("nil batch returned %d results", len(results))
	}
	if results := b.ArriveBatch([]Arrival{{Capacity: -1}, {ViewProb: -2, Capacity: 1}}); len(results) != 2 ||
		results[0].Err == nil || results[1].Err == nil {
		t.Fatalf("all-invalid batch mishandled: %+v", results)
	}
	zero := []Arrival{
		{Loc: geo.Point{X: 0.2, Y: 0.2}, ViewProb: 0.5},
		{Loc: geo.Point{X: 0.8, Y: 0.8}, ViewProb: 0.5},
	}
	for i, res := range b.ArriveBatch(zero) {
		if res.Err != nil || len(res.Offers) != 0 {
			t.Fatalf("zero-capacity element %d: %+v", i, res)
		}
	}
	if st := b.Stats(); st.Arrivals != 2 {
		t.Fatalf("zero-capacity batch counted %d arrivals, want 2", st.Arrivals)
	}
	// Broker still serves serial traffic afterwards (locks released).
	if _, err := b.Arrive(Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1,
		ViewProb: 0.5, Interests: []float64{1, 0, 1}, Hour: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestArriveBatchTraced pins the batch trace shape: root named by Batch > 0,
// one outcome per submitted arrival in order, summed capacity/offers, and
// stage spans that partition the root.
func TestArriveBatchTraced(t *testing.T) {
	rec := trace.NewRecorder(trace.RecorderOptions{})
	b := tracedBroker(t, rec, nil)
	batch := []Arrival{
		{Loc: geo.Point{X: 0.3, Y: 0.3}, Capacity: 2, ViewProb: 0.8,
			Interests: []float64{1, 0.5, 1}, Hour: 12},
		{Capacity: -5},
		{Loc: geo.Point{X: 0.99, Y: 0.01}, Capacity: 1, ViewProb: 0.5,
			Interests: []float64{1, 0, 1}, Hour: 1},
	}
	results := b.ArriveBatchTraced(batch, newTraceReq())
	traces := rec.Snapshot(trace.Filter{})
	if len(traces) != 1 {
		t.Fatalf("recorded %d traces, want 1 (one root per batch)", len(traces))
	}
	tr := traces[0]
	if tr.Batch != 3 {
		t.Fatalf("trace batch = %d, want 3", tr.Batch)
	}
	if len(tr.BatchOutcomes) != 3 {
		t.Fatalf("trace carries %d outcomes, want 3", len(tr.BatchOutcomes))
	}
	if tr.BatchOutcomes[0].Outcome != trace.OutcomeOffered ||
		tr.BatchOutcomes[0].Offers != len(results[0].Offers) {
		t.Fatalf("outcome[0] = %+v", tr.BatchOutcomes[0])
	}
	if tr.BatchOutcomes[1].Outcome != trace.OutcomeError || tr.BatchOutcomes[1].Error == "" {
		t.Fatalf("outcome[1] = %+v", tr.BatchOutcomes[1])
	}
	if tr.BatchOutcomes[2].Outcome != trace.OutcomeNoOffers {
		t.Fatalf("outcome[2] = %+v", tr.BatchOutcomes[2])
	}
	if !tr.Anomalous {
		t.Fatal("batch with a rejected element not marked anomalous")
	}
	if tr.Offers != len(results[0].Offers) {
		t.Fatalf("trace offers = %d, want %d", tr.Offers, len(results[0].Offers))
	}
	if !tr.Staged {
		t.Fatal("batch trace missing stage spans")
	}
	var sum int64
	for i := 0; i < trace.NumStages; i++ {
		sum += int64(tr.Stages[i])
	}
	if sum != int64(tr.Duration) {
		t.Fatalf("stage spans sum to %d, root is %d", sum, int64(tr.Duration))
	}
	js, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"name":"arrival_batch"`) {
		t.Fatalf("batch trace JSON missing arrival_batch root: %s", js)
	}
	if !strings.Contains(string(js), `"arrivals":[`) {
		t.Fatalf("batch trace JSON missing per-arrival outcomes: %s", js)
	}

	// Recorder absent → plain ArriveBatch semantics, nothing recorded.
	plain, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	if res := plain.ArriveBatchTraced([]Arrival{{ViewProb: 0.5}}, newTraceReq()); len(res) != 1 {
		t.Fatalf("untraced batch returned %d results", len(res))
	}
}

// TestArriveAppendZeroAllocs is the tentpole's allocation bar: after warm-up
// a serial arrival through ArriveAppend must not allocate at all — the arena
// owns every scratch buffer and the caller owns the offer slice.
func TestArriveAppendZeroAllocs(t *testing.T) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		x := float64(i%8)/8 + 0.05
		y := float64(i/8)/8 + 0.05
		if _, err := b.RegisterCampaign(geo.Point{X: x, Y: y}, 0.15, 1e9, []float64{1, 0.5, 1}); err != nil {
			t.Fatal(err)
		}
	}
	a := Arrival{Loc: geo.Point{X: 0.4, Y: 0.4}, Capacity: 2, ViewProb: 0.8,
		Interests: []float64{1, 0.5, 1}, Hour: 12}
	dst := make([]Offer, 0, 16)
	// Warm up: grow the arena and the γ estimator to steady state.
	for i := 0; i < 16; i++ {
		out, err := b.ArriveAppend(dst[:0], a)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, err := b.ArriveAppend(dst[:0], a)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("serial arrival allocates %v times per op, want 0", allocs)
	}
}

// TestBatchDurableSyncEvery exercises the batch record through a WAL with
// grouped flushing (the production default) rather than the crash harness's
// write-through tuning, then checks a clean Close/Recover round trip.
func TestBatchDurableSyncEvery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		AdTypes: workload.DefaultAdTypes(), DataDir: dir,
		WAL: wal.Options{FlushEvery: 8, Sync: wal.SyncNone, FlushInterval: -1, SnapshotEvery: -1},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 100, []float64{1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	batch := make([]Arrival, 10)
	for i := range batch {
		batch[i] = Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.6,
			Interests: []float64{1, 0.2, 1}, Hour: float64(i)}
	}
	for _, res := range b.ArriveBatch(batch) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	want := b.Stats()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if got := b2.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered stats diverged:\ngot  %+v\nwant %+v", got, want)
	}
}
