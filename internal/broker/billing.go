package broker

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"muaa/internal/model"
	"muaa/internal/obs"
)

// Conversion error sentinels, surfaced by the /v1/events handler as its
// error envelope codes.
var (
	// ErrOfferUnknown means the offer ID was never issued, already
	// converted, or expired out of the bounded escrow table.
	ErrOfferUnknown = errors.New("broker: unknown or expired offer")
	// ErrDuplicateEvent means the idempotency key was already consumed by a
	// successful conversion.
	ErrDuplicateEvent = errors.New("broker: duplicate idempotency key")
)

// defaultMaxOpen bounds the escrow table (and the idempotency-key window)
// when Config.MaxOpenOffers is zero.
const defaultMaxOpen = 65536

// openOffer is one escrowed CPC/CPA offer awaiting its conversion event.
// born is wall-clock bookkeeping for the oldest-age gauge only — it is not
// serialized, so recovery stamps restart time and ages reset (documented in
// the billing gauge table).
type openOffer struct {
	campaign int32
	model    model.BillingModel
	hold     float64
	born     time.Time
}

// billingState is the broker's escrow/auction sidecar. It is always
// allocated (a broker with no billed campaign pays one atomic load per
// arrival); the table and mutex are exercised only by deferred-billing
// offers and conversions.
//
// Lock order: shard lock → mu. Every mutation of escrow money holds the
// campaign's shard lock (offer commits hold it already; Convert takes it),
// so snapshotNow's full shard quiescence excludes all billing mutations and
// the snapshot encoder reads this state without mu.
type billingState struct {
	// active flips true — monotonically, never cleared — when the first
	// campaign with a non-fixed billing contract registers. Arrivals read
	// it once, after their stripe locks are held, to pick the scan path.
	active atomic.Bool

	mu sync.Mutex
	// open is the table of outstanding escrowed offers by ID. IDs are
	// assigned monotonically from nextID; evictNext trails as the eviction
	// cursor, so expiring the oldest open offer is a bounded forward scan.
	open      map[uint64]openOffer
	nextID    uint64
	evictNext uint64
	// oldestNext is the oldest-age gauge's monotone scan cursor (see
	// oldestOpenAge); always ≥ evictNext after a scrape.
	oldestNext uint64
	maxOpen    int
	// idem is the window of consumed idempotency keys, bounded FIFO via
	// idemQ with an amortized-compaction head index.
	idem     map[string]struct{}
	idemQ    []string
	idemHead int

	// Aggregates, atomics so Stats and the gauges read without mu.
	openCount    atomic.Int64
	held         atomicFloat // budget currently escrowed
	released     atomicFloat // holds expired without conversion
	convertedRev atomicFloat // revenue collected by conversions
	conversions  atomic.Int64
	// revenue is charged revenue by billing model: offer-time charges for
	// fixed/CPM, conversion charges for CPC/CPA.
	revenue [model.NumBillingModels]atomicFloat
}

func newBillingState(maxOpen int) *billingState {
	if maxOpen == 0 {
		maxOpen = defaultMaxOpen
	}
	return &billingState{
		open:    make(map[uint64]openOffer),
		nextID:  1,
		maxOpen: maxOpen,
		idem:    make(map[string]struct{}),
	}
}

// holdLocked registers a new escrowed offer and returns its ID. Caller holds
// the campaign's shard lock and bl.mu; the campaign escrow and held
// accumulators are the caller's to update (commit already has c in hand).
func (bl *billingState) holdLocked(c *campaign, m model.BillingModel, hold float64) uint64 {
	id := bl.nextID
	bl.nextID++
	bl.open[id] = openOffer{campaign: c.id, model: m, hold: hold, born: time.Now()}
	bl.openCount.Add(1)
	return id
}

// oldestOpenAge returns the age of the oldest open escrowed offer, zero when
// the table is empty. IDs are issued monotonically, so the oldest open offer
// is the lowest live ID at or past the eviction cursor: oldestNext trails it
// monotonically (like evictNext) and each scrape resumes where the last
// stopped, amortized O(1) per issued ID across the broker's lifetime.
func (bl *billingState) oldestOpenAge(now time.Time) float64 {
	bl.mu.Lock()
	defer bl.mu.Unlock()
	if len(bl.open) == 0 {
		bl.oldestNext = bl.nextID
		return 0
	}
	if bl.oldestNext < bl.evictNext {
		bl.oldestNext = bl.evictNext
	}
	for {
		if o, ok := bl.open[bl.oldestNext]; ok {
			return now.Sub(o.born).Seconds()
		}
		bl.oldestNext++
	}
}

// evictLocked expires the oldest open offers until the table is within
// maxOpen, releasing their holds back to their campaigns. Caller holds bl.mu
// and at least one shard lock (so snapshot quiescence excludes the escrow
// writes); the released campaigns' shards need not be locked — escrow
// atomics only race with Stats-style readers, and the money flows back, so
// no admission check can over-spend because of this write.
func (bl *billingState) evictLocked(dir []*campaign) {
	for len(bl.open) > bl.maxOpen {
		for {
			if o, ok := bl.open[bl.evictNext]; ok {
				delete(bl.open, bl.evictNext)
				bl.evictNext++
				c := dir[o.campaign]
				c.escrow.Store(c.escrow.Load() - o.hold)
				bl.held.Add(-o.hold)
				bl.released.Add(o.hold)
				bl.openCount.Add(-1)
				break
			}
			bl.evictNext++
		}
	}
}

// registerKeyLocked consumes an idempotency key, evicting the oldest once
// the window exceeds maxOpen. Caller holds bl.mu.
func (bl *billingState) registerKeyLocked(key string) {
	bl.idem[key] = struct{}{}
	bl.idemQ = append(bl.idemQ, key)
	for len(bl.idemQ)-bl.idemHead > bl.maxOpen {
		delete(bl.idem, bl.idemQ[bl.idemHead])
		bl.idemQ[bl.idemHead] = ""
		bl.idemHead++
	}
	if bl.idemHead > len(bl.idemQ)/2 && bl.idemHead > 1024 {
		n := copy(bl.idemQ, bl.idemQ[bl.idemHead:])
		bl.idemQ = bl.idemQ[:n]
		bl.idemHead = 0
	}
}

// Conversion is the receipt for one collected CPC/CPA conversion event.
type Conversion struct {
	OfferID  uint64
	Campaign int32
	Model    model.BillingModel
	// Charged is the revenue collected: the offer's escrowed hold, moved
	// from escrow to spent.
	Charged float64
}

// Convert collects the conversion event for an escrowed offer: the hold
// moves from the campaign's escrow to its spend, exactly once per offer and
// once per idempotency key. An empty key skips idempotency tracking.
// Returns ErrOfferUnknown for IDs never issued, already converted, or
// expired; ErrDuplicateEvent for a replayed key.
func (b *Broker) Convert(offerID uint64, idemKey string) (Conversion, error) {
	bl := b.billing
	// Phase 1: resolve the offer's campaign (and fail fast on duplicates)
	// under mu alone — the shard to lock isn't known until the table is
	// read, and the lock order is shard → mu.
	bl.mu.Lock()
	if idemKey != "" {
		if _, dup := bl.idem[idemKey]; dup {
			bl.mu.Unlock()
			return Conversion{}, ErrDuplicateEvent
		}
	}
	o, ok := bl.open[offerID]
	bl.mu.Unlock()
	if !ok {
		return Conversion{}, ErrOfferUnknown
	}
	c, err := b.campaign(o.campaign)
	if err != nil {
		return Conversion{}, err
	}
	// Phase 2: re-validate and commit under shard lock → mu. The offer may
	// have been converted or evicted between the phases; the re-check makes
	// the move atomic.
	sh := &b.shards[c.shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	bl.mu.Lock()
	if idemKey != "" {
		if _, dup := bl.idem[idemKey]; dup {
			bl.mu.Unlock()
			return Conversion{}, ErrDuplicateEvent
		}
	}
	o, ok = bl.open[offerID]
	if !ok {
		bl.mu.Unlock()
		return Conversion{}, ErrOfferUnknown
	}
	delete(bl.open, offerID)
	if idemKey != "" {
		bl.registerKeyLocked(idemKey)
	}
	bl.openCount.Add(-1)
	bl.mu.Unlock()
	c.escrow.Store(c.escrow.Load() - o.hold)
	c.spent.Store(c.spent.Load() + o.hold)
	c.converted.Add(o.hold)
	c.conversions.Add(1)
	bl.held.Add(-o.hold)
	bl.convertedRev.Add(o.hold)
	bl.conversions.Add(1)
	bl.revenue[o.model].Add(o.hold)
	b.spent.Add(o.hold)
	if b.wal != nil {
		b.logConversion(offerID, o, idemKey)
	}
	return Conversion{OfferID: offerID, Campaign: o.campaign, Model: o.model, Charged: o.hold}, nil
}

// registerBillingMetrics registers the muaa_billing_* gauge set on reg.
func registerBillingMetrics(reg *obs.Registry, bl *billingState) {
	reg.NewGaugeFunc("muaa_billing_escrow_held",
		"Budget currently escrowed against open CPC/CPA offers.",
		func() float64 { return bl.held.Load() })
	reg.NewGaugeFunc("muaa_billing_escrow_open",
		"Open (unconverted, unexpired) escrowed offers.",
		func() float64 { return float64(bl.openCount.Load()) })
	reg.NewGaugeFunc("muaa_billing_escrow_oldest_age_seconds",
		"Age of the oldest open escrowed offer (0 when none are open); rising steadily means holds are not converting and will expire.",
		func() float64 { return bl.oldestOpenAge(time.Now()) })
	reg.NewCounterFunc("muaa_billing_escrow_released_total",
		"Escrow holds expired without conversion (budget released).",
		func() float64 { return bl.released.Load() })
	reg.NewCounterFunc("muaa_billing_conversions_total",
		"Conversion events collected via POST /v1/events.",
		func() float64 { return float64(bl.conversions.Load()) })
	reg.NewCounterFunc("muaa_billing_conversion_revenue_total",
		"Revenue collected by conversions (escrow moved to spend).",
		func() float64 { return bl.convertedRev.Load() })
	for m := model.BillingModel(0); m.Valid(); m++ {
		acc := &bl.revenue[m]
		reg.NewCounterFunc("muaa_billing_revenue_total",
			"Slate-path charged revenue by billing model (offer-time for fixed/cpm, conversion-time for cpc/cpa).",
			func() float64 { return acc.Load() }, obs.L("model", m.String()))
	}
}
