package broker

// Tests for the escrow oldest-age gauge: the monotone-cursor scan behind
// oldestOpenAge, and the muaa_billing_escrow_oldest_age_seconds exposition
// documented in the billing gauge table.

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"muaa/internal/model"
	"muaa/internal/obs"
	"muaa/internal/workload"
)

// TestOldestOpenAgeCursor pins the gauge's scan semantics against a
// hand-built escrow table: the age tracks the lowest live ID, the cursor
// only moves forward (amortized O(1) across the broker's lifetime), it
// re-syncs with the eviction cursor, and an empty table reads zero while
// fast-forwarding the cursor to nextID.
func TestOldestOpenAgeCursor(t *testing.T) {
	bl := newBillingState(0)
	now := time.Unix(1_700_000_000, 0).UTC()
	if got := bl.oldestOpenAge(now); got != 0 {
		t.Fatalf("empty table: age = %v, want 0", got)
	}
	if bl.oldestNext != bl.nextID {
		t.Fatalf("empty scrape left cursor at %d, want fast-forward to nextID %d", bl.oldestNext, bl.nextID)
	}

	c := &campaign{id: 1}
	var ids [3]uint64
	bl.mu.Lock()
	for i := range ids {
		ids[i] = bl.holdLocked(c, model.BillingCPC, 1)
	}
	// holdLocked stamps wall clock; restamp deterministic ages 30/20/10s.
	for i, id := range ids {
		o := bl.open[id]
		o.born = now.Add(-time.Duration(30-10*i) * time.Second)
		bl.open[id] = o
	}
	bl.mu.Unlock()

	if got := bl.oldestOpenAge(now); got != 30 {
		t.Fatalf("age = %v, want 30 (oldest open hold)", got)
	}
	// Converting the oldest offer moves the scan past its dead ID.
	bl.mu.Lock()
	delete(bl.open, ids[0])
	bl.mu.Unlock()
	if got := bl.oldestOpenAge(now); got != 20 {
		t.Fatalf("age after converting oldest = %v, want 20", got)
	}
	cursor := bl.oldestNext
	if got := bl.oldestOpenAge(now); got != 20 || bl.oldestNext != cursor {
		t.Fatalf("repeat scrape: age %v cursor %d→%d, want stable 20 at %d",
			got, cursor, bl.oldestNext, cursor)
	}
	// The cursor re-syncs when eviction overtakes it.
	bl.mu.Lock()
	delete(bl.open, ids[1])
	bl.evictNext = ids[2]
	bl.mu.Unlock()
	if got := bl.oldestOpenAge(now); got != 10 {
		t.Fatalf("age after eviction passed the cursor = %v, want 10", got)
	}
	if bl.oldestNext < bl.evictNext {
		t.Fatalf("cursor %d trails evictNext %d after a scrape", bl.oldestNext, bl.evictNext)
	}
	// Draining the table reads zero again.
	bl.mu.Lock()
	delete(bl.open, ids[2])
	bl.mu.Unlock()
	if got := bl.oldestOpenAge(now); got != 0 {
		t.Fatalf("drained table: age = %v, want 0", got)
	}
}

// TestEscrowOldestAgeGauge drives real CPC escrow through an instrumented
// slate broker and checks the scrape: the gauge is present and non-negative
// while holds are open, and reads exactly 0 once every hold has converted.
func TestEscrowOldestAgeGauge(t *testing.T) {
	reg := obs.NewRegistry()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Slate: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	slateFleet(t, b, 4, model.Billing{Model: model.BillingCPC, ReserveECPM: 1, EventRate: 0.2})

	var open []uint64
	for i := 0; i < 8; i++ {
		offers, err := b.Arrive(slateArrival(2))
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range offers {
			if o.ID != 0 {
				open = append(open, o.ID)
			}
		}
	}
	if len(open) == 0 {
		t.Fatal("CPC fleet produced no escrowed offers; gauge assertions would be vacuous")
	}

	if got := scrapeGaugeLine(t, reg, "muaa_billing_escrow_oldest_age_seconds"); !strings.HasPrefix(got, "muaa_billing_escrow_oldest_age_seconds ") || strings.Contains(got, "-") {
		t.Fatalf("open escrow scrape line %q, want present and non-negative", got)
	}
	for _, id := range open {
		if _, err := b.Convert(id, ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := scrapeGaugeLine(t, reg, "muaa_billing_escrow_oldest_age_seconds"); got != "muaa_billing_escrow_oldest_age_seconds 0" {
		t.Fatalf("drained escrow scrape line %q, want exactly 0", got)
	}
}

// scrapeGaugeLine scrapes the registry over HTTP and returns the sample line
// for the named metric (failing the test when absent).
func scrapeGaugeLine(t *testing.T, reg *obs.Registry, name string) string {
	t.Helper()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	t.Fatalf("scrape has no %s sample", name)
	return ""
}
