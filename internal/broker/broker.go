// Package broker is the running system around the algorithms: the
// location-based advertising broker the paper describes in its introduction
// ("vendors create campaigns on the broker system with the specified
// information of ads and budgets ... the broker system sends LBA ads to
// potential customers based on their current locations, profiles and
// preferences").
//
// Unlike the batch solvers in package core, a Broker is long-lived and
// dynamic: vendors register and top up campaigns at any time, customers
// arrive continuously, and each arrival is answered immediately with the
// O-AFA admission rule over the live campaign state. γ_min is maintained as
// a running estimate from the efficiencies the broker actually observes
// (the paper's "estimated through the historical records ... after a period
// of tuning").
//
// The HTTP front end lives in http.go; cmd/muaa-serve wires it to a port.
package broker

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"muaa/internal/geo"
	"muaa/internal/model"
)

// Config parameterizes a Broker.
type Config struct {
	// AdTypes is the catalog offered to campaigns; must be non-empty with
	// positive costs.
	AdTypes []model.AdType
	// G is the adaptive-threshold base; zero selects 2e and the broker
	// re-derives it from observed efficiency bounds as traffic accumulates
	// (g = e·γ_max/γ_min, clamped to [2e, 1e9]).
	G float64
	// Preference scores customer interest vectors against campaign tag
	// vectors; nil selects the paper's Pearson preference with uniform
	// activity.
	Preference model.Preference
	// MinDist floors the Eq. 4 distance; zero selects model.DefaultMinDist.
	MinDist float64
	// GridCells is the spatial-index resolution; zero selects 64.
	GridCells int
	// Bounds is the service area; the zero value selects the unit square.
	Bounds geo.Rect
	// Pacing, when positive, additionally caps each campaign's spend at
	// Pacing × budget × (hour/24) — classic daily budget pacing: a campaign
	// cannot burn its whole budget on the morning crowd. Pacing = 1 is
	// strictly uniform pacing; values slightly above 1 (e.g. 1.25) leave
	// headroom for bursts. Zero disables pacing. Pacing composes with the
	// adaptive threshold: the threshold picks *which* ads are worth the
	// money, pacing decides *when* money may flow at all.
	Pacing float64
}

// Campaign is the live state of one vendor's campaign.
type Campaign struct {
	ID     int32
	Loc    geo.Point
	Radius float64
	Budget float64
	Spent  float64
	Tags   []float64
	Paused bool
}

// Remaining returns the unspent budget.
func (c *Campaign) Remaining() float64 { return c.Budget - c.Spent }

// Offer is one ad pushed to an arriving customer.
type Offer struct {
	Campaign   int32
	AdType     int
	Utility    float64
	Efficiency float64
	Cost       float64
}

// Arrival describes an arriving customer.
type Arrival struct {
	Loc       geo.Point
	Capacity  int
	ViewProb  float64
	Interests []float64
	Hour      float64
}

// Stats is a snapshot of broker counters.
type Stats struct {
	Campaigns     int
	Arrivals      int64
	OffersPushed  int64
	UtilityServed float64
	BudgetSpent   float64
	GammaMin      float64
	GammaMax      float64
	G             float64
}

// Broker is safe for concurrent use.
type Broker struct {
	mu        sync.Mutex
	cfg       Config
	campaigns []*Campaign
	grid      *geo.Grid

	arrivals  int64
	offers    int64
	utility   float64
	spent     float64
	gammaMin  float64 // running min of observed positive efficiencies
	gammaMax  float64
	gammaSeen bool
}

// New creates an empty broker.
func New(cfg Config) (*Broker, error) {
	if len(cfg.AdTypes) == 0 {
		return nil, errors.New("broker: no ad types configured")
	}
	for k, t := range cfg.AdTypes {
		if !(t.Cost > 0) || t.Effect < 0 {
			return nil, fmt.Errorf("broker: ad type %d (%s) has cost %g / effect %g", k, t.Name, t.Cost, t.Effect)
		}
	}
	if cfg.G != 0 && cfg.G <= math.E {
		return nil, fmt.Errorf("broker: g = %g must exceed e", cfg.G)
	}
	if cfg.Pacing < 0 || math.IsNaN(cfg.Pacing) {
		return nil, fmt.Errorf("broker: pacing factor %g must be ≥ 0", cfg.Pacing)
	}
	bounds := cfg.Bounds
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		bounds = geo.UnitSquare
	}
	cells := cfg.GridCells
	if cells == 0 {
		cells = 64
	}
	return &Broker{
		cfg:  cfg,
		grid: geo.NewGrid(bounds, cells),
	}, nil
}

// RegisterCampaign adds a vendor campaign and returns its ID.
func (b *Broker) RegisterCampaign(loc geo.Point, radius, budget float64, tags []float64) (int32, error) {
	if radius < 0 || math.IsNaN(radius) {
		return 0, fmt.Errorf("broker: campaign radius %g", radius)
	}
	if budget < 0 || math.IsNaN(budget) {
		return 0, fmt.Errorf("broker: campaign budget %g", budget)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := int32(len(b.campaigns))
	b.campaigns = append(b.campaigns, &Campaign{
		ID: id, Loc: loc, Radius: radius, Budget: budget,
		Tags: append([]float64(nil), tags...),
	})
	b.grid.InsertWithRadius(id, loc, radius)
	return id, nil
}

// TopUp adds budget to an existing campaign.
func (b *Broker) TopUp(id int32, amount float64) error {
	if amount < 0 || math.IsNaN(amount) {
		return fmt.Errorf("broker: top-up amount %g", amount)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c, err := b.campaign(id)
	if err != nil {
		return err
	}
	c.Budget += amount
	return nil
}

// SetPaused pauses or resumes a campaign; paused campaigns receive no
// traffic but keep their budget.
func (b *Broker) SetPaused(id int32, paused bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, err := b.campaign(id)
	if err != nil {
		return err
	}
	c.Paused = paused
	return nil
}

// CampaignState returns a copy of the campaign's live state.
func (b *Broker) CampaignState(id int32) (Campaign, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, err := b.campaign(id)
	if err != nil {
		return Campaign{}, err
	}
	out := *c
	out.Tags = append([]float64(nil), c.Tags...)
	return out, nil
}

// Campaigns returns copies of every campaign's live state, in ID order.
func (b *Broker) Campaigns() []Campaign {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Campaign, len(b.campaigns))
	for i, c := range b.campaigns {
		out[i] = *c
		out[i].Tags = append([]float64(nil), c.Tags...)
	}
	return out
}

func (b *Broker) campaign(id int32) (*Campaign, error) {
	if id < 0 || int(id) >= len(b.campaigns) {
		return nil, fmt.Errorf("broker: unknown campaign %d", id)
	}
	return b.campaigns[id], nil
}

// Arrive processes a customer arrival with the O-AFA rule (Algorithm 2) over
// live campaign state and commits the returned offers' costs to their
// campaigns.
func (b *Broker) Arrive(a Arrival) ([]Offer, error) {
	if a.Capacity < 0 {
		return nil, fmt.Errorf("broker: capacity %d", a.Capacity)
	}
	if a.ViewProb < 0 || a.ViewProb > 1 || math.IsNaN(a.ViewProb) {
		return nil, fmt.Errorf("broker: view probability %g", a.ViewProb)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrivals++
	if a.Capacity == 0 {
		return nil, nil
	}
	pref := b.cfg.Preference
	if pref == nil {
		pref = model.PearsonPreference{Activity: model.UniformActivity{}}
	}
	minDist := b.cfg.MinDist
	if minDist == 0 {
		minDist = model.DefaultMinDist
	}

	cu := &model.Customer{Loc: a.Loc, Capacity: a.Capacity, ViewProb: a.ViewProb,
		Interests: a.Interests, Arrival: a.Hour}

	var covering []int32
	covering = b.grid.CoveredBy(covering, a.Loc)
	sort.Slice(covering, func(i, j int) bool { return covering[i] < covering[j] })

	var cands []Offer
	for _, id := range covering {
		c := b.campaigns[id]
		if c.Paused || c.Budget <= 0 {
			continue
		}
		ve := &model.Vendor{Loc: c.Loc, Radius: c.Radius, Budget: c.Budget, Tags: c.Tags}
		s := pref.Score(cu, ve, a.Hour)
		if s <= 0 || math.IsNaN(s) {
			continue
		}
		if s > 1 {
			s = 1
		}
		d := a.Loc.Dist(c.Loc)
		if d < minDist {
			d = minDist
		}
		base := a.ViewProb * s / d
		delta := c.Spent / c.Budget
		phi := b.threshold(delta)
		remaining := c.Remaining()
		if b.cfg.Pacing > 0 {
			// Daily pacing cap: spend so far plus this ad must stay within
			// the hour's pro-rated allowance.
			allowance := b.cfg.Pacing * c.Budget * a.Hour / 24
			if paced := allowance - c.Spent; paced < remaining {
				remaining = paced
			}
		}
		bestK, bestU, bestEff := -1, 0.0, 0.0
		for k, t := range b.cfg.AdTypes {
			if t.Cost > remaining+1e-12 {
				continue
			}
			util := base * t.Effect
			eff := util / t.Cost
			b.observeEfficiency(eff)
			if eff < phi {
				continue
			}
			if util > bestU {
				bestK, bestU, bestEff = k, util, eff
			}
		}
		if bestK >= 0 {
			cands = append(cands, Offer{
				Campaign: id, AdType: bestK, Utility: bestU,
				Efficiency: bestEff, Cost: b.cfg.AdTypes[bestK].Cost,
			})
		}
	}
	if len(cands) > a.Capacity {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Efficiency != cands[j].Efficiency {
				return cands[i].Efficiency > cands[j].Efficiency
			}
			return cands[i].Campaign < cands[j].Campaign
		})
		cands = cands[:a.Capacity]
	}
	for _, o := range cands {
		c := b.campaigns[o.Campaign]
		c.Spent += o.Cost
		b.spent += o.Cost
		b.utility += o.Utility
		b.offers++
	}
	return cands, nil
}

// observeEfficiency folds a positive efficiency into the running γ bounds.
// Must be called with the lock held.
func (b *Broker) observeEfficiency(eff float64) {
	if eff <= 0 || math.IsNaN(eff) || math.IsInf(eff, 0) {
		return
	}
	if !b.gammaSeen {
		b.gammaMin, b.gammaMax, b.gammaSeen = eff, eff, true
		return
	}
	if eff < b.gammaMin {
		b.gammaMin = eff
	}
	if eff > b.gammaMax {
		b.gammaMax = eff
	}
}

// threshold evaluates the adaptive admission threshold at used-budget ratio
// delta, with g either configured or derived from the observed γ bounds.
// Must be called with the lock held.
func (b *Broker) threshold(delta float64) float64 {
	if !b.gammaSeen {
		return 0 // nothing observed yet: admit anything (paper's intuition)
	}
	g := b.cfg.G
	if g == 0 {
		g = 2 * math.E
		if b.gammaMax > b.gammaMin {
			g = math.E * b.gammaMax / b.gammaMin
			if g < 2*math.E {
				g = 2 * math.E
			}
			if g > 1e9 {
				g = 1e9
			}
		}
	}
	return b.gammaMin / math.E * math.Pow(g, delta)
}

// Stats returns a snapshot of the broker counters.
func (b *Broker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.cfg.G
	if g == 0 && b.gammaSeen && b.gammaMax > b.gammaMin {
		g = math.E * b.gammaMax / b.gammaMin
	}
	return Stats{
		Campaigns:     len(b.campaigns),
		Arrivals:      b.arrivals,
		OffersPushed:  b.offers,
		UtilityServed: b.utility,
		BudgetSpent:   b.spent,
		GammaMin:      b.gammaMin,
		GammaMax:      b.gammaMax,
		G:             g,
	}
}
