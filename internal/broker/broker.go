package broker

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/obs"
	"muaa/internal/pacing"
	"muaa/internal/trace"
	"muaa/internal/wal"
)

// Config parameterizes a Broker.
type Config struct {
	// AdTypes is the catalog offered to campaigns; must be non-empty with
	// positive costs.
	AdTypes []model.AdType
	// G is the adaptive-threshold base; zero selects 2e and the broker
	// re-derives it from observed efficiency bounds as traffic accumulates
	// (g = e·γ_max/γ_min, clamped to [2e, 1e9]).
	G float64
	// Preference scores customer interest vectors against campaign tag
	// vectors; nil selects the paper's Pearson preference with uniform
	// activity.
	Preference model.Preference
	// MinDist floors the Eq. 4 distance; zero selects model.DefaultMinDist.
	MinDist float64
	// GridCells is the spatial-index resolution of each shard's grid; zero
	// selects 64.
	GridCells int
	// Bounds is the service area; the zero value selects the unit square.
	Bounds geo.Rect
	// Pacing, when positive, additionally caps each campaign's spend at
	// Pacing × budget × (hour/24) — classic daily budget pacing: a campaign
	// cannot burn its whole budget on the morning crowd. Pacing = 1 is
	// strictly uniform pacing; values slightly above 1 (e.g. 1.25) leave
	// headroom for bursts. Zero disables pacing. Pacing composes with the
	// adaptive threshold: the threshold picks *which* ads are worth the
	// money, pacing decides *when* money may flow at all.
	Pacing float64
	// Shards is the number of spatial stripes campaign state is partitioned
	// into for concurrent serving; zero selects a default scaled to
	// GOMAXPROCS. The shard count never changes results — only how much of
	// the broker an arrival must lock.
	Shards int
	// Metrics, when non-nil, registers the broker's full instrument set on
	// the given registry at construction time: arrival latency histograms
	// (end-to-end and per stage), per-stripe lock/contention counters, scan
	// outcome counters, and live γ/threshold gauges. See docs/OPERATIONS.md
	// for every metric. Instrumentation is observation-only: admission
	// decisions and replay transcripts are identical with or without it.
	Metrics *obs.Registry
	// Tracer, when non-nil, makes ArriveTraced cut one trace.Trace per
	// arrival — a root span plus the four stage child spans, sharing the
	// clock reads the stage histograms already take — and file it in this
	// flight recorder. Nil (the default) disables tracing; Arrive then pays
	// a single pointer check. Like Metrics, tracing is observation-only.
	Tracer *trace.Recorder
	// Logger, when non-nil, receives the broker lifecycle's structured log
	// events (WAL recovery, snapshots, flush errors). Nil discards them.
	Logger *slog.Logger
	// DataDir, when non-empty, makes the broker durable: every state
	// mutation is appended to a write-ahead log in this directory, periodic
	// snapshots compact the log, and New recovers the pre-crash state from
	// it (delegating to Recover). Empty selects the in-memory broker —
	// exactly the prior behavior and hot path. The directory must have a
	// single owning process.
	DataDir string
	// WAL tunes the write-ahead log (group-commit size, flush interval,
	// fsync policy, snapshot cadence); ignored when DataDir is empty.
	// WAL.Metrics is overridden by Config.Metrics.
	WAL wal.Options
	// AuditWindow, when positive, keeps the last AuditWindow arrivals (with
	// their committed offers) in a ring and periodically recomputes a
	// window quality report against an offline greedy oracle — the live
	// empirical-ratio/regret/pacing gauges. The capture is a bounded copy
	// outside the stripe locks and the recompute runs on its own goroutine,
	// so the arrival hot path is untouched. Zero disables live auditing.
	AuditWindow int
	// AuditEvery is the interval between window recomputations; zero
	// selects 15s. Ignored when AuditWindow is 0.
	AuditEvery time.Duration
	// Controller, when non-nil, enables the adaptive pacing controller: every
	// audit tick also runs one pacing.Decide step over the fresh window
	// report, steering a multiplicative boost on the admission threshold and
	// per-campaign spend-rate caps (see internal/pacing). Requires
	// AuditWindow > 0 for the feedback signal in live serving; PacingStep can
	// also be driven manually (simulations, tests). Nil disables the
	// controller entirely — the hot path then pays one pointer check.
	Controller *pacing.Config
	// Slate forces the slate scan path (MCKP slot fill + auction pricing)
	// even when no billed campaign is registered. The slate path activates
	// automatically the moment a campaign registers with a non-fixed billing
	// contract; this flag exists for benchmarks and equivalence tests that
	// exercise the slate machinery on an all-fixed fleet. With every arrival
	// at capacity 1 the slate path's decisions are bit-identical to the
	// legacy scan (TestSlateEquivalenceSerial).
	Slate bool
	// MaxOpenOffers bounds the escrow table of outstanding CPC/CPA offers
	// (and the conversion idempotency-key window). When a new escrowed offer
	// would exceed the bound, the oldest open offer is expired and its hold
	// released back to the campaign. Zero selects 65536.
	MaxOpenOffers int
	// Funnel configures per-campaign decision-funnel attribution (see
	// funnel.go): with Funnel.Enabled every scan records which gate disposed
	// of each gathered candidate into a bounded-cardinality registry, exposed
	// as muaa_funnel_* metrics and CampaignFunnel/FunnelTop. Observation-only
	// and allocation-free on the hot path; the zero value disables it.
	Funnel FunnelConfig
}

// Campaign is the live state of one vendor's campaign.
type Campaign struct {
	ID     int32
	Loc    geo.Point
	Radius float64
	Budget float64
	Spent  float64
	Tags   []float64
	Paused bool
	// Guaranteed marks an AdCell-style guaranteed-delivery campaign: Floor is
	// the fraction of budget that must be spent by end-of-day (pro-rated by
	// arrival hour — a behind-floor campaign gets relaxed admission and is
	// never throttled), Penalty the per-unit shortfall penalty the gauges
	// report. All zero for best-effort campaigns.
	Guaranteed bool
	Floor      float64
	Penalty    float64
	// Rate is the pacing controller's current spend-rate cap (1 = uncapped).
	Rate float64
	// Billing is the campaign's billing contract (zero = seed fixed-cost).
	Billing model.Billing
	// Escrow is the budget currently held against outstanding CPC/CPA offers
	// awaiting conversion; Converted is the revenue collected by conversions
	// and Conversions their count. All zero for non-deferred campaigns.
	Escrow      float64
	Converted   float64
	Conversions int64
}

// Remaining returns the unspent budget.
func (c *Campaign) Remaining() float64 { return c.Budget - c.Spent }

// Offer is one ad pushed to an arriving customer. The billing fields (ID,
// ChargeECPM, Hold, Model) are filled only by the slate path for campaigns
// on auction billing; a fixed-cost offer carries Cost alone with the rest
// zero, exactly as the legacy scan produced it.
type Offer struct {
	Campaign   int32
	AdType     int
	Utility    float64
	Efficiency float64
	// Cost is the budget charged at offer time: the catalog cost for fixed
	// billing, the second-priced CPM charge, and zero for deferred (CPC/CPA)
	// offers, whose charge is escrowed in Hold until conversion.
	Cost float64

	// ID identifies an escrowed offer for POST /v1/events conversion
	// callbacks; zero for offers that are not awaiting conversion.
	ID uint64
	// ChargeECPM is the auction charge in eCPM: min(bid, max(reserve,
	// runner-up bid)). Zero for fixed billing (no auction).
	ChargeECPM float64
	// Hold is the per-event escrow held for a deferred offer
	// (ChargeECPM/1000/EventRate); zero otherwise.
	Hold float64
	// Model is the campaign's billing model.
	Model model.BillingModel
}

// Arrival describes an arriving customer.
type Arrival struct {
	Loc       geo.Point
	Capacity  int
	ViewProb  float64
	Interests []float64
	Hour      float64
}

// Stats is a snapshot of broker counters.
type Stats struct {
	Campaigns     int
	Arrivals      int64
	OffersPushed  int64
	UtilityServed float64
	BudgetSpent   float64
	GammaMin      float64
	GammaMax      float64
	G             float64
	// PhiBoost is the pacing controller's multiplicative boost on the
	// admission threshold (1 on a controller-less broker or before the first
	// epoch); PacingEpoch counts controller steps applied. Both are recovered
	// state: a restart reproduces them bit-exactly.
	PhiBoost    float64
	PacingEpoch int64
	// Billing counters, all zero until a campaign on auction billing serves:
	// EscrowHeld is the budget currently held against open CPC/CPA offers,
	// EscrowReleased the holds expired without conversion, Conversions the
	// conversion events collected and ConversionRevenue their charges (a
	// subset of BudgetSpent). Recovered state, bit-exact across restarts.
	EscrowHeld        float64
	EscrowReleased    float64
	Conversions       int64
	ConversionRevenue float64
}

// Broker is safe for concurrent use: arrivals take only the shard locks
// their query disk overlaps, registration and budget mutation lock one
// shard, and snapshot reads lock nothing.
type Broker struct {
	cfg  Config
	pref model.Preference
	// vectorPref marks preferences that correlate interest/tag vectors and
	// therefore require equal dimensionality (PearsonPreference panics on a
	// mismatch — a contract violation in batch problems, but live arrivals
	// and campaigns come from untrusted clients, so the broker treats a
	// dimension mismatch as ineligibility instead). When set, pearson holds
	// the concrete scorer so the scan calls ScoreScratch directly (no
	// interface dispatch, no per-candidate weights allocation).
	vectorPref bool
	pearson    model.PearsonPreference
	minDist    float64
	bounds     geo.Rect
	minAdCost  float64 // cheapest configured ad type; the exhaustion line

	// metrics is nil for an uninstrumented broker; set once in New and
	// read-only afterwards, so Arrive checks it without synchronization.
	metrics *brokerMetrics

	// tracer is nil for an untraced broker; like metrics it is set once in
	// New and read-only afterwards.
	tracer *trace.Recorder

	// logger is never nil (a discard logger when Config.Logger was nil), so
	// lifecycle paths log without guarding.
	logger *slog.Logger

	// wal is nil for an in-memory broker; set once during Recover (after
	// replay, so replay itself is never re-logged) and read-only
	// afterwards. Mutation paths check the one pointer and otherwise pay
	// nothing.
	wal *durable

	// audit is nil unless Config.AuditWindow > 0; set once in newMemory and
	// read-only afterwards, so Arrive checks the one pointer.
	audit *auditState

	stripes geo.Stripes
	shards  []shard

	regMu     sync.Mutex                  // serializes registrations
	dir       atomic.Pointer[[]*campaign] // dense id → campaign, copy-on-write
	maxRadius atomicFloat                 // monotone max campaign radius

	arrivals atomic.Int64
	offers   atomic.Int64
	utility  atomicFloat
	spent    atomicFloat
	gammaMin atomicFloat // +Inf until the first efficiency is observed
	gammaMax atomicFloat // 0 until the first efficiency is observed

	// controller is nil unless Config.Controller was set; like metrics it is
	// read-only after New. phiBoost (1 when inert) multiplies the admission
	// threshold; pacingEpoch counts applied controller steps. Both are
	// written only under full shard quiescence and WAL-logged, so recovery is
	// bit-exact.
	controller  *pacing.Config
	phiBoost    atomicFloat
	pacingEpoch atomic.Int64

	// billing is the escrow/auction sidecar, always allocated (cheap). Its
	// active flag flips true — monotonically — when the first campaign with
	// a non-fixed contract registers; arrivals check it once, after their
	// stripe locks are held, to pick the scan path.
	billing *billingState

	// funnel is nil unless Config.Funnel.Enabled; set once in newMemory and
	// read-only afterwards, so the scan gates attribution on one nil check.
	funnel *funnelRegistry
}

// New creates a broker. With cfg.DataDir set it is durable: state is
// recovered from the directory's snapshot+WAL and every later mutation is
// logged (see Recover); otherwise it is empty and purely in-memory.
func New(cfg Config) (*Broker, error) {
	if cfg.DataDir != "" {
		return Recover(cfg.DataDir, cfg)
	}
	return newMemory(cfg)
}

// newMemory builds the in-memory broker every configuration shares;
// Recover layers durability on top.
func newMemory(cfg Config) (*Broker, error) {
	if len(cfg.AdTypes) == 0 {
		return nil, errors.New("broker: no ad types configured")
	}
	for k, t := range cfg.AdTypes {
		if !(t.Cost > 0) || t.Effect < 0 {
			return nil, fmt.Errorf("broker: ad type %d (%s) has cost %g / effect %g", k, t.Name, t.Cost, t.Effect)
		}
	}
	if cfg.G != 0 && cfg.G <= math.E {
		return nil, fmt.Errorf("broker: g = %g must exceed e", cfg.G)
	}
	if cfg.Pacing < 0 || math.IsNaN(cfg.Pacing) {
		return nil, fmt.Errorf("broker: pacing factor %g must be ≥ 0", cfg.Pacing)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("broker: shard count %d must be ≥ 0", cfg.Shards)
	}
	if cfg.MaxOpenOffers < 0 {
		return nil, fmt.Errorf("broker: max open offers %d must be ≥ 0", cfg.MaxOpenOffers)
	}
	bounds := cfg.Bounds
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		bounds = geo.UnitSquare
	}
	cells := cfg.GridCells
	if cells == 0 {
		cells = 64
	}
	nShards := cfg.Shards
	if nShards == 0 {
		nShards = defaultShards()
	}
	pref := cfg.Preference
	if pref == nil {
		pref = model.PearsonPreference{Activity: model.UniformActivity{}}
	}
	minDist := cfg.MinDist
	if minDist == 0 {
		minDist = model.DefaultMinDist
	}
	pearson, vectorPref := pref.(model.PearsonPreference)
	b := &Broker{
		cfg:        cfg,
		pref:       pref,
		vectorPref: vectorPref,
		pearson:    pearson,
		minDist:    minDist,
		bounds:     bounds,
		stripes:    geo.NewStripes(bounds, nShards),
		shards:     make([]shard, nShards),
	}
	for i := range b.shards {
		b.shards[i].grid = geo.NewGrid(bounds, cells)
	}
	b.minAdCost = cfg.AdTypes[0].Cost
	for _, t := range cfg.AdTypes[1:] {
		if t.Cost < b.minAdCost {
			b.minAdCost = t.Cost
		}
	}
	empty := make([]*campaign, 0)
	b.dir.Store(&empty)
	b.gammaMin.Store(math.Inf(1))
	b.phiBoost.Store(1)
	b.billing = newBillingState(cfg.MaxOpenOffers)
	if cfg.Controller != nil {
		if err := cfg.Controller.Validate(); err != nil {
			return nil, err
		}
		cc := *cfg.Controller
		b.controller = &cc
	}
	if cfg.AuditWindow > 0 {
		b.audit = newAuditState(cfg.AuditWindow, cfg.AuditEvery)
	}
	if cfg.Funnel.Enabled {
		// Built before the metrics registry hookup: newBrokerMetrics registers
		// the muaa_funnel_* families only when the funnel exists.
		b.funnel = newFunnelRegistry(cfg.Funnel)
	}
	if cfg.Metrics != nil {
		b.metrics = newBrokerMetrics(cfg.Metrics, b)
	}
	b.tracer = cfg.Tracer
	b.logger = cfg.Logger
	if b.logger == nil {
		b.logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	if b.audit != nil {
		go b.auditLoop()
	}
	return b, nil
}

// defaultShards picks a stripe count wide enough that GOMAXPROCS arrivals
// rarely collide, bounded so tiny boxes don't fragment the index.
func defaultShards() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	if n > 64 {
		n = 64
	}
	return n
}

// CampaignSpec is the full registration record for a campaign: geometry,
// budget and tags as before, plus the AdCell-style delivery class. The zero
// class (Guaranteed false, Floor/Penalty 0) is a best-effort campaign —
// exactly what RegisterCampaign registers.
type CampaignSpec struct {
	Loc    geo.Point
	Radius float64
	Budget float64
	Tags   []float64
	// Guaranteed marks a guaranteed-delivery campaign. Floor ∈ [0,1] is the
	// fraction of budget that must be spent by end-of-day, pro-rated by
	// arrival hour: while behind it, the campaign's admission threshold is
	// relaxed and the pacing controller never throttles it. Penalty ≥ 0 is
	// the per-unit shortfall penalty reported by muaa_pacing_penalty_exposure
	// (accounting, not admission). Floor and Penalty require Guaranteed.
	Guaranteed bool
	Floor      float64
	Penalty    float64
	// Billing is the campaign's billing contract. The zero value keeps the
	// seed fixed-cost semantics; any non-fixed contract activates the
	// broker's slate scan path for all subsequent arrivals.
	Billing model.Billing
}

// RegisterCampaign adds a best-effort vendor campaign and returns its ID.
func (b *Broker) RegisterCampaign(loc geo.Point, radius, budget float64, tags []float64) (int32, error) {
	return b.RegisterCampaignSpec(CampaignSpec{Loc: loc, Radius: radius, Budget: budget, Tags: tags})
}

// RegisterCampaignSpec adds a campaign with its full spec (delivery class
// included) and returns its ID.
func (b *Broker) RegisterCampaignSpec(spec CampaignSpec) (int32, error) {
	if spec.Radius < 0 || math.IsNaN(spec.Radius) {
		return 0, fmt.Errorf("broker: campaign radius %g", spec.Radius)
	}
	if spec.Budget < 0 || math.IsNaN(spec.Budget) {
		return 0, fmt.Errorf("broker: campaign budget %g", spec.Budget)
	}
	if spec.Floor < 0 || spec.Floor > 1 || math.IsNaN(spec.Floor) {
		return 0, fmt.Errorf("broker: campaign delivery floor %g outside [0, 1]", spec.Floor)
	}
	if spec.Penalty < 0 || math.IsNaN(spec.Penalty) {
		return 0, fmt.Errorf("broker: campaign penalty %g must be ≥ 0", spec.Penalty)
	}
	if !spec.Guaranteed && (spec.Floor != 0 || spec.Penalty != 0) {
		return 0, fmt.Errorf("broker: floor/penalty require a guaranteed campaign")
	}
	if err := spec.Billing.Validate(); err != nil {
		return 0, fmt.Errorf("broker: %w", err)
	}
	b.regMu.Lock()
	defer b.regMu.Unlock()
	old := *b.dir.Load()
	id := int32(len(old))
	if b.wal != nil {
		// Log before publishing the directory entry: any mutation of this
		// campaign can only start after publication, so its record is
		// guaranteed to land after this one and replay never sees a
		// campaign it hasn't registered.
		b.logRegister(id, spec)
	}
	c := &campaign{
		id: id, loc: spec.Loc, radius: spec.Radius,
		tags:       append([]float64(nil), spec.Tags...),
		shard:      b.stripes.Of(spec.Loc),
		guaranteed: spec.Guaranteed,
		floor:      spec.Floor,
		penalty:    spec.Penalty,
		billing:    spec.Billing,
	}
	c.budget.Store(spec.Budget)
	c.rate.Store(1)
	c.allowance.Store(math.Inf(1))
	if !spec.Billing.Zero() {
		// Flipped before the directory (and therefore grid) publication: an
		// arrival that can see this campaign as a candidate acquired the
		// shard lock its grid entry was inserted under, so it also sees the
		// flag and takes the slate path. Monotone — never cleared.
		b.billing.active.Store(true)
	}
	// Publish the directory entry before the grid entry: arrivals discover
	// campaigns only through a shard's grid (under its lock), so a campaign
	// visible in a grid is always resolvable, while a directory entry not
	// yet in a grid is merely invisible to arrivals.
	next := make([]*campaign, id+1)
	copy(next, old)
	next[id] = c
	b.dir.Store(&next)
	b.maxRadius.Max(spec.Radius)
	sh := &b.shards[c.shard]
	sh.mu.Lock()
	sh.grid.InsertWithRadius(id, spec.Loc, spec.Radius)
	sh.mu.Unlock()
	return id, nil
}

// TopUp adds budget to an existing campaign.
func (b *Broker) TopUp(id int32, amount float64) error {
	if amount < 0 || math.IsNaN(amount) {
		return fmt.Errorf("broker: top-up amount %g", amount)
	}
	c, err := b.campaign(id)
	if err != nil {
		return err
	}
	// The shard lock serializes budget writes against the check-then-spend
	// sequence of in-flight arrivals touching this campaign.
	sh := &b.shards[c.shard]
	sh.mu.Lock()
	c.budget.Store(c.budget.Load() + amount)
	if b.wal != nil {
		b.logTopUp(id, amount)
	}
	sh.mu.Unlock()
	if b.metrics != nil {
		b.metrics.topUps.Inc()
	}
	return nil
}

// SetPaused pauses or resumes a campaign; paused campaigns receive no
// traffic but keep their budget.
func (b *Broker) SetPaused(id int32, paused bool) error {
	c, err := b.campaign(id)
	if err != nil {
		return err
	}
	if b.wal == nil {
		c.paused.Store(paused)
		return nil
	}
	// Durable: the shard lock serializes the flag flip with its record, so
	// a snapshot (which quiesces all shards) can never capture the flip
	// while the record is still in flight.
	sh := &b.shards[c.shard]
	sh.mu.Lock()
	c.paused.Store(paused)
	b.logPause(id, paused)
	sh.mu.Unlock()
	return nil
}

// CampaignState returns a copy of the campaign's live state without
// touching any lock.
func (b *Broker) CampaignState(id int32) (Campaign, error) {
	c, err := b.campaign(id)
	if err != nil {
		return Campaign{}, err
	}
	return c.snapshot(), nil
}

// Campaigns returns copies of every campaign's live state, in ID order. The
// read is lock-free: per-campaign values are atomically consistent, the
// set-wide view is a relaxed snapshot.
func (b *Broker) Campaigns() []Campaign {
	dir := *b.dir.Load()
	out := make([]Campaign, len(dir))
	for i, c := range dir {
		out[i] = c.snapshot()
	}
	return out
}

func (b *Broker) campaign(id int32) (*campaign, error) {
	dir := *b.dir.Load()
	if id < 0 || int(id) >= len(dir) {
		return nil, fmt.Errorf("broker: unknown campaign %d", id)
	}
	return dir[id], nil
}

// candidate pairs a provisional offer with the campaign it draws on so the
// commit step can charge it without re-resolving the ID.
type candidate struct {
	Offer
	c *campaign
}

// Arrive processes a customer arrival with the O-AFA rule (Algorithm 2) over
// live campaign state and commits the returned offers' costs to their
// campaigns. Only the shards whose stripes the query disk overlaps are
// locked, and they stay locked through commit so admission and spend are one
// atomic step per campaign.
func (b *Broker) Arrive(a Arrival) ([]Offer, error) {
	out, err := b.arrive(nil, a, nil)
	if b.audit != nil && err == nil {
		b.audit.capture(&a, out)
	}
	return out, err
}

// ArriveAppend is Arrive with a caller-owned result buffer: committed offers
// are appended to dst and the extended slice returned, so a serving loop that
// recycles its buffer (and the batch path, which shares one buffer across a
// whole batch) processes arrivals with zero allocations. The decision
// sequence is exactly Arrive's.
func (b *Broker) ArriveAppend(dst []Offer, a Arrival) ([]Offer, error) {
	n0 := len(dst)
	out, err := b.arrive(dst, a, nil)
	if b.audit != nil && err == nil {
		b.audit.capture(&a, out[n0:])
	}
	return out, err
}

// ArriveTraced is Arrive plus request tracing: when the broker has a flight
// recorder and req carries a trace context, the arrival's stage timings,
// stripe range, scan tallies and outcome are cut into one trace.Trace and
// recorded after the stripe locks release. With either part missing it is
// exactly Arrive. Tracing is observation-only — the decision sequence and
// replay transcripts are unchanged (TestReplayMatchesGoldenTraced).
func (b *Broker) ArriveTraced(a Arrival, req *trace.Request) ([]Offer, error) {
	if req == nil || b.tracer == nil {
		return b.Arrive(a)
	}
	t := &trace.Trace{
		TraceID:      req.TraceID,
		SpanID:       req.SpanID,
		ParentSpanID: req.ParentSpanID,
		Capacity:     a.Capacity,
	}
	out, err := b.arrive(nil, a, t)
	if t.Start.IsZero() {
		// The arrival never reached the timed pipeline (validation failure
		// or zero capacity); stamp it so the recorder can still order it.
		t.Start = time.Now()
	}
	t.Offers = len(out)
	switch {
	case err != nil:
		t.Outcome = trace.OutcomeError
		t.Error = err.Error()
		t.Anomalous = true
	case len(out) > 0:
		t.Outcome = trace.OutcomeOffered
	default:
		t.Outcome = trace.OutcomeNoOffers
	}
	if t.Scan.Exhausted > 0 {
		t.Anomalous = true
	}
	b.tracer.Record(t)
	if b.audit != nil && err == nil {
		b.audit.capture(&a, out)
	}
	return out, err
}

// arrive is the shared arrival pipeline: validate, lock the stripe interval,
// then the arena passes — gather, scan, commit (see arena.go). Committed
// offers are appended to dst (nil for the plain Arrive path). t, when
// non-nil, collects the trace view of this arrival; stage boundaries are
// timed once and fed to both the stage histograms and the trace, so tracing
// adds no clock reads beyond the instrumented path's.
func (b *Broker) arrive(dst []Offer, a Arrival, t *trace.Trace) ([]Offer, error) {
	m := b.metrics
	if a.Capacity < 0 {
		if m != nil {
			m.arrivalErrors.Inc()
		}
		return dst, fmt.Errorf("broker: capacity %d", a.Capacity)
	}
	if a.ViewProb < 0 || a.ViewProb > 1 || math.IsNaN(a.ViewProb) {
		if m != nil {
			m.arrivalErrors.Inc()
		}
		return dst, fmt.Errorf("broker: view probability %g", a.ViewProb)
	}
	if b.wal == nil {
		b.arrivals.Add(1)
		if a.Capacity == 0 {
			return dst, nil
		}
	} else if a.Capacity == 0 {
		// Durable: the arrivals counter is recovered state, so its bump and
		// its record must be one atomic step against snapshot quiescence,
		// like every other mutation. The arrival's own stripe serializes it.
		sh := &b.shards[b.stripes.Of(a.Loc)]
		sh.mu.Lock()
		b.arrivals.Add(1)
		b.logArrival(&a, nil)
		sh.mu.Unlock()
		return dst, nil
	}

	// A covering campaign's center is within maxRadius of the arrival, so
	// only the stripes overlapping that Y-window can hold one. Lock them in
	// ascending order (the global lock order) and hold through commit.
	//
	// Instrumented (m != nil), each stage of the path is timed into the
	// stage histograms and each stripe lock is first probed with TryLock —
	// a miss means another arrival held it, the contention proxy. The
	// TryLock/Lock pair acquires the same lock in the same order, and no
	// metric value feeds back into admission, so the decision sequence is
	// unchanged (golden-pinned by TestReplayMatchesGoldenInstrumented).
	maxR := b.maxRadius.Load()
	s0, s1 := b.stripes.Range(a.Loc.Y-maxR, a.Loc.Y+maxR)
	// One full time.Now() anchors the trace's wall-clock start; every later
	// boundary is a time.Since delta (a single monotonic-clock read, about
	// half the cost) off that anchor. elStage is the cumulative elapsed time
	// at the previous boundary, so stage durations partition [0, elapsed]
	// exactly and the trace's child spans sum to its root span.
	timed := m != nil || t != nil
	var tStart time.Time
	var elStage time.Duration
	if timed {
		tStart = time.Now()
	}
	if m != nil {
		for i := s0; i <= s1; i++ {
			if !b.shards[i].mu.TryLock() {
				m.stripeContended[i].Inc()
				b.shards[i].mu.Lock()
			}
			m.stripeLocks[i].Inc()
		}
	} else {
		for i := s0; i <= s1; i++ {
			b.shards[i].mu.Lock()
		}
	}
	if timed {
		d := time.Since(tStart)
		elStage = d
		if m != nil {
			m.stageLock.ObserveShard(s0, d.Seconds())
		}
		if t != nil {
			t.Start = tStart
			t.Staged = true
			t.StripeLo, t.StripeHi = s0, s1
			t.Stages[trace.StageLockWait] = d
		}
	}
	defer func() {
		for i := s1; i >= s0; i-- {
			b.shards[i].mu.Unlock()
		}
	}()
	if b.wal != nil {
		// Deferred to inside the stripe locks so the bump is atomic with
		// the arrival record this path logs before unlocking.
		b.arrivals.Add(1)
	}

	// The lowest locked stripe's arena is exclusively ours while the locks
	// are held (see scanArena's ownership rule). The slate flag is read
	// after the stripe locks: a billed campaign visible in any held shard's
	// grid was inserted under that shard's lock after the flag flipped, so
	// a candidate on auction billing is never scanned by the legacy pass.
	slate := b.cfg.Slate || b.billing.active.Load()
	ar := &b.shards[s0].arena
	dir := b.gatherCandidates(ar, a.Loc, s0, s1)
	if timed {
		el := time.Since(tStart)
		d := el - elStage
		elStage = el
		if m != nil {
			m.stageGather.ObserveShard(s0, d.Seconds())
		}
		if t != nil {
			t.Stages[trace.StageGather] = d
		}
	}

	// The controller's boost is loaded once per arrival so every candidate in
	// the scan sees the same threshold scaling (PacingStep only swaps it
	// under full shard quiescence, which this arrival's held locks exclude).
	boost := 1.0
	if b.controller != nil {
		boost = b.phiBoost.Load()
	}
	var tally scanTally
	if slate {
		tally = b.scanSlate(ar, &a, dir, boost)
	} else {
		tally = b.scanCandidates(ar, &a, dir, boost)
	}
	if b.funnel != nil {
		// Fold the scan's attribution events while the stripe locks still own
		// the arena (the event slice is arena scratch).
		b.funnel.fold(ar)
	}
	if timed {
		el := time.Since(tStart)
		d := el - elStage
		elStage = el
		if m != nil {
			m.stageScan.ObserveShard(s0, d.Seconds())
			m.foldScanTally(&tally)
		}
		if t != nil {
			t.Stages[trace.StageScan] = d
			t.Scan = tally.counts()
		}
	}
	if len(ar.cands) == 0 {
		if b.wal != nil {
			b.logArrival(&a, nil)
		}
		if timed {
			// The commit stage histogram intentionally skips empty arrivals
			// (nothing was committed), but the trace still closes its commit
			// span here so the four stages partition the root span exactly.
			el := time.Since(tStart)
			b.observeArrival(m, t, s0, el)
			if t != nil {
				t.Stages[trace.StageCommit] = el - elStage
				t.Duration = el
			}
		}
		return dst, nil
	}
	n0 := len(dst)
	if slate {
		dst = b.commitSlate(ar, dst)
	} else {
		dst = b.commitOffers(ar, dst)
	}
	if b.wal != nil {
		// Logged after every charge has landed and before the stripe locks
		// release: the record carries the post-arrival γ bits and exactly
		// the offers committed.
		b.logArrival(&a, dst[n0:])
	}
	if timed {
		el := time.Since(tStart)
		d := el - elStage
		if m != nil {
			m.stageCommit.ObserveShard(s0, d.Seconds())
		}
		b.observeArrival(m, t, s0, el)
		if t != nil {
			t.Stages[trace.StageCommit] = d
			t.Duration = el
		}
	}
	return dst, nil
}

// observeArrival feeds the end-to-end latency into the arrival histogram,
// attaching the trace ID as a candidate exemplar when the arrival is traced
// so the slowest observation in a scrape window links to its trace.
func (b *Broker) observeArrival(m *brokerMetrics, t *trace.Trace, lane int, d time.Duration) {
	if m == nil {
		return
	}
	if t != nil {
		m.arrival.ObserveShardExemplar(lane, d.Seconds(), t.TraceID.String())
	} else {
		m.arrival.ObserveShard(lane, d.Seconds())
	}
}

// observeEfficiency folds a positive efficiency into the running γ bounds.
// Lock-free: γ_min is lowered before γ_max is raised, so any reader that
// sees γ_max > 0 (the "seen" signal) also sees a finite γ_min.
func (b *Broker) observeEfficiency(eff float64) {
	if eff <= 0 || math.IsNaN(eff) || math.IsInf(eff, 0) {
		return
	}
	b.gammaMin.Min(eff)
	b.gammaMax.Max(eff)
}

// guaranteeRelief scales the admission threshold for a guaranteed campaign
// that is behind its pro-rated delivery floor: φ is quartered, not zeroed, so
// catching up still prefers efficient offers.
const guaranteeRelief = 0.25

// threshold evaluates the adaptive admission threshold at used-budget ratio
// delta, with g either configured or derived from the observed γ bounds.
func (b *Broker) threshold(delta float64) float64 {
	gmax := b.gammaMax.Load()
	if gmax == 0 {
		return 0 // nothing observed yet: admit anything (paper's intuition)
	}
	gmin := b.gammaMin.Load()
	g := b.cfg.G
	if g == 0 {
		g = 2 * math.E
		if gmax > gmin {
			g = math.E * gmax / gmin
			if g < 2*math.E {
				g = 2 * math.E
			}
			if g > 1e9 {
				g = 1e9
			}
		}
	}
	return gmin / math.E * math.Pow(g, delta)
}

// Stats returns a lock-free snapshot of the broker counters.
func (b *Broker) Stats() Stats {
	gmax := b.gammaMax.Load()
	gmin := b.gammaMin.Load()
	if gmax == 0 {
		gmin = 0 // report the unseen state as zeros, as the original broker did
	}
	g := b.cfg.G
	if g == 0 && gmax > gmin && gmax > 0 {
		g = math.E * gmax / gmin
	}
	return Stats{
		Campaigns:     len(*b.dir.Load()),
		Arrivals:      b.arrivals.Load(),
		OffersPushed:  b.offers.Load(),
		UtilityServed: b.utility.Load(),
		BudgetSpent:   b.spent.Load(),
		GammaMin:      gmin,
		GammaMax:      gmax,
		G:             g,
		PhiBoost:      b.phiBoost.Load(),
		PacingEpoch:   b.pacingEpoch.Load(),

		EscrowHeld:        b.billing.held.Load(),
		EscrowReleased:    b.billing.released.Load(),
		Conversions:       b.billing.conversions.Load(),
		ConversionRevenue: b.billing.convertedRev.Load(),
	}
}
