package broker

import (
	"math"
	"sync"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/workload"
)

func newTestBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty ad-type catalog must be rejected")
	}
	if _, err := New(Config{AdTypes: []model.AdType{{Name: "x", Cost: 0, Effect: 1}}}); err == nil {
		t.Error("zero-cost ad type must be rejected")
	}
	if _, err := New(Config{AdTypes: workload.DefaultAdTypes(), G: 2}); err == nil {
		t.Error("g ≤ e must be rejected")
	}
	if _, err := New(Config{AdTypes: workload.DefaultAdTypes(), G: 6}); err != nil {
		t.Errorf("g = 6 must be accepted: %v", err)
	}
}

func TestRegisterAndState(t *testing.T) {
	b := newTestBroker(t)
	id, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.1, 10, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.CampaignState(id)
	if err != nil {
		t.Fatal(err)
	}
	if c.Budget != 10 || c.Spent != 0 || c.Remaining() != 10 || c.Paused {
		t.Errorf("campaign state %+v", c)
	}
	if _, err := b.CampaignState(99); err == nil {
		t.Error("unknown campaign must error")
	}
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, -1, 10, nil); err == nil {
		t.Error("negative radius must be rejected")
	}
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 1, -10, nil); err == nil {
		t.Error("negative budget must be rejected")
	}
}

func TestArriveServesCoveringCampaigns(t *testing.T) {
	b := newTestBroker(t)
	near, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.52}, 0.1, 10, []float64{1, 0, 0.2})
	_, _ = b.RegisterCampaign(geo.Point{X: 0.9, Y: 0.9}, 0.05, 10, []float64{1, 0, 0.2}) // far away
	offers, err := b.Arrive(Arrival{
		Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 3, ViewProb: 0.8,
		Interests: []float64{0.9, 0.1, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 || offers[0].Campaign != near {
		t.Fatalf("offers = %+v, want one offer from the covering campaign", offers)
	}
	if offers[0].Utility <= 0 || offers[0].Cost <= 0 {
		t.Errorf("offer fields: %+v", offers[0])
	}
	c, _ := b.CampaignState(near)
	if c.Spent != offers[0].Cost {
		t.Errorf("spent %g, want %g", c.Spent, offers[0].Cost)
	}
}

func TestArriveRespectsCapacityAndBudget(t *testing.T) {
	b := newTestBroker(t)
	// Five covering campaigns, capacity 2: at most 2 offers.
	for i := 0; i < 5; i++ {
		if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5 + float64(i)*0.001}, 0.1, 100, []float64{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	offers, err := b.Arrive(Arrival{
		Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 2, ViewProb: 0.5,
		Interests: []float64{0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 2 {
		t.Fatalf("pushed %d offers, capacity 2", len(offers))
	}
	// A campaign with budget below the cheapest ad type serves nothing.
	b2 := newTestBroker(t)
	if _, err := b2.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.1, 0.5, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	offers, err = b2.Arrive(Arrival{
		Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 2, ViewProb: 0.5,
		Interests: []float64{0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 0 {
		t.Errorf("insufficient budget still produced offers: %+v", offers)
	}
}

func TestArriveBudgetNeverOverspent(t *testing.T) {
	b := newTestBroker(t)
	id, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 5, []float64{1, 0})
	for i := 0; i < 50; i++ {
		if _, err := b.Arrive(Arrival{
			Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.9,
			Interests: []float64{0.9, 0.1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := b.CampaignState(id)
	if c.Spent > c.Budget+1e-9 {
		t.Fatalf("campaign overspent: %g > %g", c.Spent, c.Budget)
	}
}

func TestPauseStopsTraffic(t *testing.T) {
	b := newTestBroker(t)
	id, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 100, []float64{1, 0})
	if err := b.SetPaused(id, true); err != nil {
		t.Fatal(err)
	}
	offers, err := b.Arrive(Arrival{
		Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.9,
		Interests: []float64{0.9, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 0 {
		t.Error("paused campaign served traffic")
	}
	if err := b.SetPaused(id, false); err != nil {
		t.Fatal(err)
	}
	offers, _ = b.Arrive(Arrival{
		Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.9,
		Interests: []float64{0.9, 0.1},
	})
	if len(offers) != 1 {
		t.Error("resumed campaign should serve traffic")
	}
	if err := b.SetPaused(42, true); err == nil {
		t.Error("pausing unknown campaign must error")
	}
}

func TestTopUpExtendsService(t *testing.T) {
	b := newTestBroker(t)
	id, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 1, []float64{1, 0})
	arrive := func() []Offer {
		offers, err := b.Arrive(Arrival{
			Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.9,
			Interests: []float64{0.9, 0.1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return offers
	}
	first := arrive() // spends the $1 text link
	if len(first) != 1 {
		t.Fatalf("first arrival offers = %+v", first)
	}
	if second := arrive(); len(second) != 0 {
		t.Fatalf("exhausted campaign still served: %+v", second)
	}
	if err := b.TopUp(id, 5); err != nil {
		t.Fatal(err)
	}
	if third := arrive(); len(third) != 1 {
		t.Error("top-up should restore service")
	}
	if err := b.TopUp(id, -1); err == nil {
		t.Error("negative top-up must be rejected")
	}
	if err := b.TopUp(42, 1); err == nil {
		t.Error("top-up of unknown campaign must error")
	}
}

func TestArriveValidation(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.Arrive(Arrival{Capacity: -1, ViewProb: 0.5}); err == nil {
		t.Error("negative capacity must be rejected")
	}
	if _, err := b.Arrive(Arrival{Capacity: 1, ViewProb: 1.5}); err == nil {
		t.Error("view probability above 1 must be rejected")
	}
	if _, err := b.Arrive(Arrival{Capacity: 1, ViewProb: math.NaN()}); err == nil {
		t.Error("NaN view probability must be rejected")
	}
	// Zero capacity is legal and yields no offers.
	offers, err := b.Arrive(Arrival{Capacity: 0, ViewProb: 0.5})
	if err != nil || offers != nil {
		t.Errorf("zero capacity: %v %v", offers, err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 100, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Arrive(Arrival{
			Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.9,
			Interests: []float64{0.9, 0.1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := b.Stats()
	if s.Campaigns != 1 || s.Arrivals != 3 {
		t.Errorf("stats %+v", s)
	}
	if s.OffersPushed == 0 || s.UtilityServed <= 0 || s.BudgetSpent <= 0 {
		t.Errorf("counters not accumulating: %+v", s)
	}
	if s.GammaMin <= 0 || s.GammaMax < s.GammaMin {
		t.Errorf("gamma bounds %+v", s)
	}
	if s.G <= math.E {
		t.Errorf("derived g = %g must exceed e", s.G)
	}
}

func TestThresholdTightensAsBudgetDrains(t *testing.T) {
	b := newTestBroker(t)
	// Single campaign with a modest budget; the same mediocre customer
	// arrives repeatedly. Early arrivals are admitted while the threshold is
	// low; after the good customer shows the broker a higher γ_max, the
	// tightened threshold blocks the mediocre ones before the budget is
	// fully exhausted.
	id, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.3, 12, []float64{1, 0})
	mediocre := Arrival{Loc: geo.Point{X: 0.5, Y: 0.75}, Capacity: 1, ViewProb: 0.2,
		Interests: []float64{0.6, 0.4}}
	good := Arrival{Loc: geo.Point{X: 0.5, Y: 0.501}, Capacity: 1, ViewProb: 1,
		Interests: []float64{0.9, 0.1}}
	if _, err := b.Arrive(good); err != nil { // establishes a high γ_max
		t.Fatal(err)
	}
	served := 0
	for i := 0; i < 40; i++ {
		offers, err := b.Arrive(mediocre)
		if err != nil {
			t.Fatal(err)
		}
		served += len(offers)
	}
	c, _ := b.CampaignState(id)
	if c.Spent >= c.Budget {
		t.Errorf("adaptive threshold never blocked: spent %g of %g on %d mediocre offers",
			c.Spent, c.Budget, served)
	}
}

func TestPacingLimitsEarlySpend(t *testing.T) {
	paced, err := New(Config{AdTypes: workload.DefaultAdTypes(), Pacing: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := paced.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.3, 24, []float64{1, 0})
	arrival := func(hour float64) Arrival {
		return Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.9,
			Interests: []float64{0.9, 0.1}, Hour: hour}
	}
	// A morning flood at hour 6: uniform pacing allows at most 24·(6/24) = 6
	// of budget.
	for i := 0; i < 50; i++ {
		if _, err := paced.Arrive(arrival(6)); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := paced.CampaignState(id)
	if c.Spent > 6+1e-9 {
		t.Fatalf("pacing breached: spent %g of the hour-6 allowance 6", c.Spent)
	}
	// Later in the day the allowance opens up.
	for i := 0; i < 50; i++ {
		if _, err := paced.Arrive(arrival(23)); err != nil {
			t.Fatal(err)
		}
	}
	c, _ = paced.CampaignState(id)
	if c.Spent <= 6 {
		t.Errorf("evening traffic should be servable, spent stuck at %g", c.Spent)
	}
	if c.Spent > c.Budget+1e-9 {
		t.Fatalf("budget breached: %g > %g", c.Spent, c.Budget)
	}
}

func TestPacingValidation(t *testing.T) {
	if _, err := New(Config{AdTypes: workload.DefaultAdTypes(), Pacing: -1}); err == nil {
		t.Error("negative pacing must be rejected")
	}
	if _, err := New(Config{AdTypes: workload.DefaultAdTypes(), Pacing: math.NaN()}); err == nil {
		t.Error("NaN pacing must be rejected")
	}
}

func TestPacingDisabledByDefault(t *testing.T) {
	b := newTestBroker(t)
	id, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.3, 4, []float64{1, 0})
	// Hour 0 with pacing would forbid any spend; without pacing it's fine.
	offers, err := b.Arrive(Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1,
		ViewProb: 0.9, Interests: []float64{0.9, 0.1}, Hour: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 1 {
		t.Errorf("unpaced broker refused an hour-0 arrival: %v", offers)
	}
	_ = id
}

func TestConcurrentMixedOperationsStress(t *testing.T) {
	// Arrivals, top-ups, pauses and reads race against each other; the
	// invariants (no overspend, consistent counters) must hold throughout.
	// Run under -race in CI (go test -race ./...).
	b := newTestBroker(t)
	const campaigns = 8
	for i := 0; i < campaigns; i++ {
		if _, err := b.RegisterCampaign(geo.Point{X: 0.1 * float64(i+1), Y: 0.5}, 0.3, 20, []float64{1, 0}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (g + i) % 4 {
				case 0:
					if _, err := b.Arrive(Arrival{
						Loc:      geo.Point{X: 0.1 * float64(i%campaigns+1), Y: 0.5},
						Capacity: 2, ViewProb: 0.7, Interests: []float64{0.8, 0.2},
					}); err != nil {
						errCh <- err
						return
					}
				case 1:
					if err := b.TopUp(int32(i%campaigns), 0.5); err != nil {
						errCh <- err
						return
					}
				case 2:
					if err := b.SetPaused(int32(i%campaigns), i%2 == 0); err != nil {
						errCh <- err
						return
					}
				default:
					b.Stats()
					b.Campaigns()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for i := 0; i < campaigns; i++ {
		c, err := b.CampaignState(int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if c.Spent > c.Budget+1e-9 {
			t.Fatalf("campaign %d overspent under concurrency: %g > %g", i, c.Spent, c.Budget)
		}
	}
	st := b.Stats()
	if st.BudgetSpent < 0 || st.UtilityServed < 0 {
		t.Fatalf("counters corrupted: %+v", st)
	}
}
