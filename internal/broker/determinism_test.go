package broker

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muaa/internal/obs"
	"muaa/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the determinism golden files")

// replayTranscript replays a fixed seeded workload single-threaded and
// renders every observable output — per-arrival offers, top-up/pause results,
// final campaign states and counters — with %v formatting (shortest exact
// float representation), so two broker implementations agree on the
// transcript iff their admission decisions are bit-identical.
func replayTranscript(t *testing.T, cfg Config, campaigns int, ops int, seed int64) string {
	t.Helper()
	return replayTranscriptVia(t, cfg, campaigns, ops, seed,
		func(b *Broker) func(Arrival) ([]Offer, error) { return b.Arrive })
}

// replayTranscriptVia is replayTranscript with the arrival entry point
// injected (given the built broker), so the explain-interleaving test can
// wrap Arrive while replaying the identical stream.
func replayTranscriptVia(t *testing.T, cfg Config, campaigns int, ops int, seed int64,
	arriveOf func(*Broker) func(Arrival) ([]Offer, error)) string {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}
	arrive := arriveOf(b)
	var sb strings.Builder
	for _, c := range specs {
		id, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags)
		if err != nil {
			t.Fatal(err)
		}
		writeRegisterLine(&sb, id, c)
	}
	for i, op := range stream {
		applyTranscriptOpVia(t, b, &sb, i, op, arrive)
	}
	writeFinalLines(&sb, b)
	return sb.String()
}

func writeRegisterLine(sb *strings.Builder, id int32, c workload.BrokerCampaign) {
	fmt.Fprintf(sb, "register %d loc=%v r=%v budget=%v\n", id, c.Loc, c.Radius, c.Budget)
}

// applyTranscriptOp runs one workload op against the broker and appends
// its observable outcome to the transcript (shared by the plain and the
// crash-recovery replay harnesses).
func applyTranscriptOp(t *testing.T, b *Broker, sb *strings.Builder, i int, op workload.BrokerOp) {
	t.Helper()
	applyTranscriptOpVia(t, b, sb, i, op, b.Arrive)
}

// applyTranscriptOpVia is applyTranscriptOp with the arrival entry point
// injected, so the traced-replay test can drive ArriveTraced through the
// identical harness.
func applyTranscriptOpVia(t *testing.T, b *Broker, sb *strings.Builder, i int, op workload.BrokerOp,
	arrive func(Arrival) ([]Offer, error)) {
	t.Helper()
	switch op.Kind {
	case workload.OpArrival:
		offers, err := arrive(Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		})
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		writeArriveLine(sb, i, offers)
	case workload.OpTopUp:
		if err := b.TopUp(op.Campaign, op.Amount); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		fmt.Fprintf(sb, "topup %d c=%d amount=%v\n", i, op.Campaign, op.Amount)
	case workload.OpPause:
		if err := b.SetPaused(op.Campaign, op.Paused); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		fmt.Fprintf(sb, "pause %d c=%d paused=%v\n", i, op.Campaign, op.Paused)
	case workload.OpStats:
		st := b.Stats()
		fmt.Fprintf(sb, "stats %d campaigns=%d arrivals=%d offers=%d utility=%v spent=%v gmin=%v gmax=%v g=%v\n",
			i, st.Campaigns, st.Arrivals, st.OffersPushed, st.UtilityServed,
			st.BudgetSpent, st.GammaMin, st.GammaMax, st.G)
	}
}

// writeArriveLine renders one arrival's transcript line; shared with the
// batched replay harness, which emits lines at batch-flush time.
func writeArriveLine(sb *strings.Builder, i int, offers []Offer) {
	fmt.Fprintf(sb, "arrive %d n=%d", i, len(offers))
	for _, o := range offers {
		fmt.Fprintf(sb, " [c=%d k=%d u=%v e=%v $=%v]",
			o.Campaign, o.AdType, o.Utility, o.Efficiency, o.Cost)
	}
	sb.WriteByte('\n')
}

func writeFinalLines(sb *strings.Builder, b *Broker) {
	for _, c := range b.Campaigns() {
		fmt.Fprintf(sb, "final c=%d budget=%v spent=%v paused=%v\n", c.ID, c.Budget, c.Spent, c.Paused)
	}
	st := b.Stats()
	fmt.Fprintf(sb, "final stats arrivals=%d offers=%d utility=%v spent=%v gmin=%v gmax=%v g=%v\n",
		st.Arrivals, st.OffersPushed, st.UtilityServed, st.BudgetSpent,
		st.GammaMin, st.GammaMax, st.G)
}

// TestReplayMatchesGolden pins the broker's single-threaded semantics: the
// sharded implementation must replay a fixed seeded stream byte-identically
// to the pre-shard single-mutex broker that generated the golden files
// (regenerate with `go test ./internal/broker -run Golden -update` — only
// when an intentional semantic change is being made).
func TestReplayMatchesGolden(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", Config{AdTypes: workload.DefaultAdTypes()}},
		{"paced", Config{AdTypes: workload.DefaultAdTypes(), Pacing: 1.25}},
		{"fixed_g", Config{AdTypes: workload.DefaultAdTypes(), G: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := replayTranscript(t, tc.cfg, 32, 3000, 42)
			path := filepath.Join("testdata", "replay_"+tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update against the reference broker): %v", err)
			}
			if got != string(want) {
				t.Fatalf("replay diverged from the golden transcript (%d vs %d bytes): "+
					"the sharded broker is no longer bit-identical to the reference "+
					"under single-threaded replay; first diff at byte %d",
					len(got), len(want), firstDiff(got, string(want)))
			}
		})
	}
}

// TestReplayMatchesGoldenInstrumented replays the default golden stream
// with the full observability instrument set registered. The transcript
// must stay byte-identical to the uninstrumented golden: instrumentation
// is observation-only and must never change an admission decision.
func TestReplayMatchesGoldenInstrumented(t *testing.T) {
	cfg := Config{AdTypes: workload.DefaultAdTypes(), Metrics: obs.NewRegistry()}
	got := replayTranscript(t, cfg, 32, 3000, 42)
	want, err := os.ReadFile(filepath.Join("testdata", "replay_default.golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	if got != string(want) {
		t.Fatalf("instrumentation changed the replay transcript (%d vs %d bytes, first diff at byte %d)",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestReplayRepeatable guards the harness itself: two fresh brokers replaying
// the same stream must produce the same transcript in-process.
func TestReplayRepeatable(t *testing.T) {
	cfg := Config{AdTypes: workload.DefaultAdTypes()}
	a := replayTranscript(t, cfg, 16, 800, 9)
	b := replayTranscript(t, cfg, 16, 800, 9)
	if a != b {
		t.Fatal("replay is not repeatable in-process")
	}
}
