// Package broker is the running system around the algorithms: the
// location-based advertising broker the paper describes in its introduction
// ("vendors create campaigns on the broker system with the specified
// information of ads and budgets ... the broker system sends LBA ads to
// potential customers based on their current locations, profiles and
// preferences").
//
// Unlike the batch solvers in package core, a Broker is long-lived and
// dynamic: vendors register and top up campaigns at any time, customers
// arrive continuously, and each arrival is answered immediately with the
// O-AFA admission rule over the live campaign state. γ_min is maintained as
// a running estimate from the efficiencies the broker actually observes
// (the paper's "estimated through the historical records ... after a period
// of tuning"). Clients that tolerate a bounded answer delay may submit
// arrival windows through ArriveBatch, which amortizes locking, clocking
// and WAL framing across the window while keeping every decision
// bit-identical to serial submission — pure transport batching, not the
// look-ahead of core.OnlineBatch (DESIGN.md §14).
//
// # Concurrency model
//
// The broker serves arrivals concurrently by sharding campaign state into
// horizontal spatial stripes (geo.Stripes over Config.Bounds): each shard
// owns the campaigns whose centers fall in its stripe, with its own
// geo.Grid (at Config.GridCells resolution) and its own lock. An arrival at
// p can only be covered by campaigns whose centers lie within maxRadius of
// p, so it locks exactly the contiguous stripe range overlapping
// [p.Y−maxRadius, p.Y+maxRadius] — always in ascending index order, which
// makes the locking deadlock-free — and arrivals in disjoint regions run in
// parallel. The running γ_min/γ_max efficiency bounds and the global
// counters are lock-free atomics, and Stats/Campaigns/CampaignState are
// pure snapshot reads that never block the serving path. Under
// single-threaded replay the admission sequence is bit-identical to the
// original single-mutex broker (pinned by the golden files in testdata/).
// DESIGN.md §8 gives the full shard map, lock ordering, and visibility
// argument.
//
// # Observability
//
// Setting Config.Metrics to an obs.Registry instruments the broker at
// construction time: end-to-end and per-stage arrival latency histograms,
// per-stripe lock and contention counters, scan outcome counters, and live
// γ/threshold gauges, all registered under the muaa_broker_ prefix and
// documented metric-by-metric in docs/OPERATIONS.md. Instrumentation is
// observation-only — admission decisions and replay transcripts are
// identical with or without it (DESIGN.md §9) — and an uninstrumented
// broker pays a single nil-check per arrival.
//
// The HTTP front end lives in http.go; cmd/muaa-serve wires it to a port
// together with GET /metrics and /healthz.
package broker
