package broker

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"muaa/internal/obs"
	"muaa/internal/wal"
)

// The WAL record types. Each record is the delta of exactly one committed
// broker mutation, encoded little-endian with floats as IEEE-754 bits so
// replay rebuilds bit-identical state.
const (
	recRegister   byte = 1 // id, loc, radius, budget, tags
	recTopUp      byte = 2 // id, amount
	recPause      byte = 3 // id, paused flag
	recArrival    byte = 4 // γ bound bits, committed offers (campaign, ad type, cost, utility)
	recArrivalV2  byte = 5 // recArrival plus the customer's own features (loc, capacity, viewProb, interests, hour)
	recRegisterV2 byte = 6 // recRegister plus the delivery class (guaranteed flag, floor, penalty)
	recController byte = 7 // versioned controller epoch: boost bits + per-campaign rate/allowance bits

	// recArrivalBatch is the v3 arrival record one ArriveBatch call appends:
	// a u32 arrival count followed by that many back-to-back recArrivalV2
	// bodies, each carrying the γ bits as they stood after that arrival's
	// commit. Replaying the bodies in order therefore performs exactly the
	// accumulator sequence serial replay would — batch and serial histories
	// of the same stream are bit-identical (TestBatchReplayBitExact).
	recArrivalBatch byte = 8 // count, then per arrival: γ bits, customer features, offers

	// The v4 (economics-layer) records. They are written only once a campaign
	// with a non-fixed billing contract has registered — an all-fixed broker
	// keeps writing the exact pre-v4 stream, so old logs and old goldens stay
	// byte-identical.
	recRegisterV3     byte = 9  // recRegisterV2 plus the billing contract (model, reserve, event rate)
	recArrivalSlate   byte = 10 // recArrivalV2 with offers extended by (id, chargeECPM, hold, model)
	recArrivalBatchV2 byte = 11 // recArrivalBatch with recArrivalSlate-shaped bodies
	recConversion     byte = 12 // offer id, campaign, model, charge bits, idempotency key
)

// controllerRecVersion is the internal version byte of recController
// payloads; bump on any layout change so old binaries fail loudly.
const controllerRecVersion byte = 1

// Snapshot payload versions. V2 adds controller state (boost bits, epoch)
// and per-campaign class + rate/allowance bits; V3 adds billing state
// (per-campaign contract + escrow accumulators, the open-offer escrow table
// and the idempotency window). Old payloads are still decoded with inert
// defaults. New snapshots are written as V3 only once billing is active, so
// an all-fixed broker's snapshots stay byte-identical to pre-v4 ones.
const (
	snapshotV1 byte = 1
	snapshotV2 byte = 2
	snapshotV3 byte = 3
)

// durable is the broker's durability sidecar: the open log, the snapshot
// cadence bookkeeping and the background compaction goroutine. nil on an
// in-memory broker — every hot-path hook is gated on that one pointer.
type durable struct {
	log        *wal.Log
	cadence    int          // records between automatic snapshots; 0 disables
	appended   atomic.Int64 // records since the last snapshot
	appendErrs atomic.Uint64

	snapCh chan struct{} // nudges the snapshot loop (capacity 1)
	stopCh chan struct{}
	doneCh chan struct{}
	closed atomic.Bool

	info RecoveryInfo
}

// RecoveryInfo describes what Recover rebuilt at boot.
type RecoveryInfo struct {
	// SnapshotLoaded reports that a compacted snapshot seeded the state.
	SnapshotLoaded bool
	// RecordsReplayed is the number of WAL records applied after the
	// snapshot.
	RecordsReplayed int
	// Truncated reports that the log had a torn tail (expected after a
	// crash) which was discarded back to the last intact record.
	Truncated bool
	// Duration is the wall time of the whole rebuild.
	Duration time.Duration
}

// RecoveryStats returns how this broker was recovered; the zero value for
// an in-memory broker.
func (b *Broker) RecoveryStats() RecoveryInfo {
	if b.wal == nil {
		return RecoveryInfo{}
	}
	return b.wal.info
}

// Recover opens (creating if necessary) the durability directory dir and
// rebuilds the broker recorded there: latest snapshot first, then every
// intact WAL record in append order. The recovered broker's Stats,
// Campaigns and subsequent decision transcript are bit-identical to the
// instance that wrote the log. cfg.DataDir is ignored (dir wins); the
// directory must have a single owner — the log is not advisory-locked.
func Recover(dir string, cfg Config) (*Broker, error) {
	if dir == "" {
		return nil, errors.New("broker: Recover needs a data directory")
	}
	start := time.Now()
	opts := cfg.WAL
	opts.Metrics = cfg.Metrics
	opts.Logger = cfg.Logger
	log, rec, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	memCfg := cfg
	memCfg.DataDir = ""
	b, err := newMemory(memCfg)
	if err != nil {
		log.Close()
		return nil, err
	}
	info := RecoveryInfo{Truncated: rec.Truncated}
	if rec.Snapshot != nil {
		if err := b.applySnapshot(rec.Snapshot); err != nil {
			log.Close()
			return nil, fmt.Errorf("broker: recovering snapshot: %w", err)
		}
		info.SnapshotLoaded = true
	}
	for i, r := range rec.Records {
		if err := b.applyRecord(r); err != nil {
			log.Close()
			return nil, fmt.Errorf("broker: replaying record %d of %d: %w", i+1, len(rec.Records), err)
		}
	}
	info.RecordsReplayed = len(rec.Records)

	d := &durable{
		log:     log,
		cadence: opts.SnapshotCadence(),
		snapCh:  make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	b.wal = d
	// Compact immediately when anything was replayed (or nothing was ever
	// written): boot cost is then bounded by one snapshot plus one cadence
	// window of records, no matter how many crash/restart cycles accrue.
	if len(rec.Records) > 0 || rec.Snapshot == nil {
		if err := b.snapshotNow(); err != nil {
			log.Close()
			return nil, fmt.Errorf("broker: boot snapshot: %w", err)
		}
	}
	info.Duration = time.Since(start)
	d.info = info
	b.logger.Info("broker_recovery",
		slog.String("dir", dir),
		slog.Bool("snapshot_loaded", info.SnapshotLoaded),
		slog.Int("records_replayed", info.RecordsReplayed),
		slog.Bool("truncated", info.Truncated),
		slog.Float64("duration_ms", float64(info.Duration)/float64(time.Millisecond)))
	if cfg.Metrics != nil {
		registerRecoveryMetrics(cfg.Metrics, b)
	}
	go b.snapshotLoop()
	return b, nil
}

func registerRecoveryMetrics(reg *obs.Registry, b *Broker) {
	d := b.wal
	reg.NewGaugeFunc("muaa_broker_recovery_seconds",
		"Wall time the last boot spent rebuilding state from snapshot and WAL.",
		func() float64 { return d.info.Duration.Seconds() })
	reg.NewGaugeFunc("muaa_broker_recovery_records",
		"WAL records replayed by the last boot's recovery.",
		func() float64 { return float64(d.info.RecordsReplayed) })
	reg.NewCounterFunc("muaa_wal_append_errors_total",
		"Broker mutations whose WAL append failed (state diverged from disk).",
		func() float64 { return float64(d.appendErrs.Load()) })
}

// Close makes the broker durable at rest: it stops the live-audit and
// snapshot loops, writes a final compacting snapshot and closes the log.
// The caller must quiesce traffic first — a mutation racing Close can land
// in memory without reaching the log. Idempotent; on an in-memory broker it
// only stops the audit loop.
func (b *Broker) Close() error {
	if b.audit != nil {
		b.audit.stop()
	}
	d := b.wal
	if d == nil {
		return nil
	}
	if !d.closed.CompareAndSwap(false, true) {
		<-d.doneCh
		return nil
	}
	close(d.stopCh)
	<-d.doneCh
	err := b.snapshotNow()
	if cerr := d.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// snapshotLoop runs automatic compaction off the serving path: walAppend
// nudges it once a cadence worth of records has accumulated.
func (b *Broker) snapshotLoop() {
	d := b.wal
	defer close(d.doneCh)
	for {
		select {
		case <-d.stopCh:
			return
		case <-d.snapCh:
			if err := b.snapshotNow(); err != nil {
				b.logger.Error("broker_snapshot_failed",
					slog.String("error", err.Error()))
			}
		}
	}
}

// snapshotNow quiesces every mutator — the registration mutex, then all
// shard locks in ascending order (the global lock order) — encodes the
// full broker state and rotates the log onto it. Mutations are appended
// only while holding one of those locks, so the encoded payload reflects
// exactly the records appended so far: nothing in flight, nothing lost.
func (b *Broker) snapshotNow() error {
	d := b.wal
	b.regMu.Lock()
	for i := range b.shards {
		b.shards[i].mu.Lock()
	}
	payload := b.encodeSnapshot()
	err := d.log.Snapshot(payload)
	d.appended.Store(0)
	for i := len(b.shards) - 1; i >= 0; i-- {
		b.shards[i].mu.Unlock()
	}
	b.regMu.Unlock()
	return err
}

// recPool recycles record-encoding buffers so a durable arrival does not
// allocate on the hot path.
var recPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// walAppend hands one encoded record to the log and returns the buffer to
// the pool. Called with the lock that serializes the recorded mutation
// still held, which is what orders records consistently with memory
// effects. An append error does not fail serving: it is counted
// (muaa_wal_append_errors_total) and the log's sticky error stops further
// appends, so the operator sees a frozen log rather than a corrupt one.
func (b *Broker) walAppend(bp *[]byte) {
	d := b.wal
	if err := d.log.Append(*bp); err != nil {
		d.appendErrs.Add(1)
	}
	recPool.Put(bp)
	if d.cadence > 0 && int(d.appended.Add(1)) >= d.cadence {
		select {
		case d.snapCh <- struct{}{}:
		default:
		}
	}
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// logRegister records a registration — as the v2 record for a fixed-billing
// campaign (the pre-v4 stream, byte-identical), as the v3 record carrying
// the billing contract otherwise. Called under regMu before the directory
// entry is published, so any later mutation of this campaign — which can
// only start after publication — appends after it.
func (b *Broker) logRegister(id int32, spec CampaignSpec) {
	bp := recPool.Get().(*[]byte)
	buf := (*bp)[:0]
	billed := !spec.Billing.Zero()
	if billed {
		buf = append(buf, recRegisterV3)
	} else {
		buf = append(buf, recRegisterV2)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	buf = appendF64(buf, spec.Loc.X)
	buf = appendF64(buf, spec.Loc.Y)
	buf = appendF64(buf, spec.Radius)
	buf = appendF64(buf, spec.Budget)
	var class byte
	if spec.Guaranteed {
		class = 1
	}
	buf = append(buf, class)
	buf = appendF64(buf, spec.Floor)
	buf = appendF64(buf, spec.Penalty)
	if billed {
		buf = append(buf, byte(spec.Billing.Model))
		buf = appendF64(buf, spec.Billing.ReserveECPM)
		buf = appendF64(buf, spec.Billing.EventRate)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(spec.Tags)))
	for _, t := range spec.Tags {
		buf = appendF64(buf, t)
	}
	*bp = buf
	b.walAppend(bp)
}

// logController records one applied controller epoch: the epoch counter, the
// boost bits, and every campaign's applied rate/allowance bits — read back
// from the atomics so the record carries exactly what memory holds. Called
// with every mutator quiesced (applyDecision holds regMu plus all shard
// locks), so replay storing these bits reproduces the post-epoch state
// bit-exactly without re-running the control law.
func (b *Broker) logController(epoch int64, applied []*campaign) {
	bp := recPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, recController, controllerRecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(epoch))
	buf = binary.LittleEndian.AppendUint64(buf, b.phiBoost.bits.Load())
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(applied)))
	for _, c := range applied {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.id))
		buf = binary.LittleEndian.AppendUint64(buf, c.rate.bits.Load())
		buf = binary.LittleEndian.AppendUint64(buf, c.allowance.bits.Load())
	}
	*bp = buf
	b.walAppend(bp)
}

// logTopUp records a budget top-up; called under the campaign's shard lock.
func (b *Broker) logTopUp(id int32, amount float64) {
	bp := recPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, recTopUp)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	buf = appendF64(buf, amount)
	*bp = buf
	b.walAppend(bp)
}

// logPause records a pause/resume; called under the campaign's shard lock.
func (b *Broker) logPause(id int32, paused bool) {
	bp := recPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, recPause)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	var flag byte
	if paused {
		flag = 1
	}
	buf = append(buf, flag)
	*bp = buf
	b.walAppend(bp)
}

// logArrival records one committed arrival: the post-arrival γ bounds (as
// bits), the arriving customer's own features — what offline audit replays
// into an oracle problem — and every offer charged. Called with the
// arrival's stripe locks still held. Replay folds the bounds with Min/Max,
// which is exact for a serial history and safe under concurrency because
// the bounds are monotone — every observation is ≤/≥ the bits some record
// carries.
func (b *Broker) logArrival(a *Arrival, offers []Offer) {
	// The slate record format rides the same monotone flag the scan path
	// reads: once billing is active every arrival (under its stripe locks,
	// which this call still holds) scans slates, so checking here can never
	// write a legacy record for a slate-committed offer set.
	slate := b.billing.active.Load()
	bp := recPool.Get().(*[]byte)
	kind := recArrivalV2
	if slate {
		kind = recArrivalSlate
	}
	buf := append((*bp)[:0], kind)
	buf = b.appendArrivalBodyKind(buf, a, offers, slate)
	*bp = buf
	b.walAppend(bp)
}

// logConversion records one collected conversion; called with the
// campaign's shard lock held (Convert's phase 2).
func (b *Broker) logConversion(offerID uint64, o openOffer, key string) {
	bp := recPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, recConversion)
	buf = binary.LittleEndian.AppendUint64(buf, offerID)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(o.campaign))
	buf = append(buf, byte(o.model))
	buf = appendF64(buf, o.hold)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	*bp = buf
	b.walAppend(bp)
}

// appendArrivalBodyKind encodes one arrival body in the legacy or slate
// layout; the batch path passes its per-batch flag, logArrival its own.
func (b *Broker) appendArrivalBodyKind(buf []byte, a *Arrival, offers []Offer, slate bool) []byte {
	buf = b.appendArrivalHeader(buf, a)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(offers)))
	for i := range offers {
		o := &offers[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.Campaign))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.AdType))
		buf = appendF64(buf, o.Cost)
		buf = appendF64(buf, o.Utility)
		if slate {
			buf = binary.LittleEndian.AppendUint64(buf, o.ID)
			buf = appendF64(buf, o.ChargeECPM)
			buf = appendF64(buf, o.Hold)
			buf = append(buf, byte(o.Model))
		}
	}
	return buf
}

// appendArrivalBody encodes the legacy arrival payload shared by
// recArrivalV2 and each element of a recArrivalBatch: the γ bounds as this
// broker holds them right now (the batch path calls this immediately after
// each arrival's commit, matching the serial record's semantics), the
// customer's features, and the committed offers.
func (b *Broker) appendArrivalBody(buf []byte, a *Arrival, offers []Offer) []byte {
	return b.appendArrivalBodyKind(buf, a, offers, false)
}

// appendArrivalHeader encodes the γ bounds and customer features every
// arrival body layout shares.
func (b *Broker) appendArrivalHeader(buf []byte, a *Arrival) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, b.gammaMin.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, b.gammaMax.bits.Load())
	buf = appendF64(buf, a.Loc.X)
	buf = appendF64(buf, a.Loc.Y)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Capacity))
	buf = appendF64(buf, a.ViewProb)
	buf = appendF64(buf, a.Hour)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.Interests)))
	for _, v := range a.Interests {
		buf = appendF64(buf, v)
	}
	return buf
}

// recReader is a bounds-checked little-endian cursor over one record (or
// snapshot) payload. A short read sets err once; subsequent reads return
// zeros, and done() reports the failure — decoding never panics, whatever
// the input.
type recReader struct {
	data []byte
	off  int
	err  error
}

func (r *recReader) short() {
	if r.err == nil {
		r.err = errors.New("truncated payload")
	}
}

func (r *recReader) u8() byte {
	if r.off+1 > len(r.data) {
		r.short()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *recReader) u32() uint32 {
	if r.off+4 > len(r.data) {
		r.short()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *recReader) u64() uint64 {
	if r.off+8 > len(r.data) {
		r.short()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *recReader) i32() int32   { return int32(r.u32()) }
func (r *recReader) i64() int64   { return int64(r.u64()) }
func (r *recReader) f64() float64 { return math.Float64frombits(r.u64()) }

// remaining bounds variable-length sections before allocating for them.
func (r *recReader) remaining() int { return len(r.data) - r.off }

func (r *recReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%d trailing bytes", len(r.data)-r.off)
	}
	return nil
}

// applyRecord replays one WAL record onto the (still-private) broker.
func (b *Broker) applyRecord(rec []byte) error {
	d, err := DecodeRecord(rec)
	if err != nil {
		return err
	}
	switch d.Kind {
	case RecordRegister, RecordRegisterV2, RecordRegisterV3:
		got, err := b.RegisterCampaignSpec(CampaignSpec{
			Loc: d.Loc, Radius: d.Radius, Budget: d.Budget, Tags: d.Tags,
			Guaranteed: d.Guaranteed, Floor: d.Floor, Penalty: d.Penalty,
			Billing: d.Billing,
		})
		if err != nil {
			return err
		}
		if got != d.Campaign {
			return fmt.Errorf("replayed registration got id %d, logged %d", got, d.Campaign)
		}
		return nil
	case RecordController:
		// Stored bits, never recomputed: replay must not depend on the
		// control law, only on what the original broker applied.
		b.pacingEpoch.Store(d.Epoch)
		b.phiBoost.bits.Store(d.BoostBits)
		for i := range d.Controller {
			e := &d.Controller[i]
			c, err := b.campaign(e.Campaign)
			if err != nil {
				return err
			}
			c.rate.bits.Store(e.RateBits)
			c.allowance.bits.Store(e.AllowanceBits)
		}
		return nil
	case RecordTopUp:
		return b.TopUp(d.Campaign, d.Amount)
	case RecordPause:
		return b.SetPaused(d.Campaign, d.Paused)
	case RecordArrival, RecordArrivalV2:
		// Replay in the original commit order: counter, γ fold, then each
		// offer's charge — the same accumulator sequence Arrive performed,
		// so serial replay reproduces every float bit for bit.
		return b.applyArrival(d.GammaMin, d.GammaMax, d.Offers)
	case RecordArrivalBatch:
		// Each element replays exactly like a serial arrival record, in the
		// batch's processing order, so a batched history recovers to the
		// same bits as the equivalent serial one.
		for i := range d.Batch {
			e := &d.Batch[i]
			if err := b.applyArrival(e.GammaMin, e.GammaMax, e.Offers); err != nil {
				return err
			}
		}
		return nil
	case RecordArrivalSlate:
		return b.applyArrivalSlate(d.GammaMin, d.GammaMax, d.Offers)
	case RecordArrivalBatchV2:
		for i := range d.Batch {
			e := &d.Batch[i]
			if err := b.applyArrivalSlate(e.GammaMin, e.GammaMax, e.Offers); err != nil {
				return err
			}
		}
		return nil
	case RecordConversion:
		return b.applyConversion(&d)
	}
	return fmt.Errorf("unknown record type %d", byte(d.Kind))
}

// applyArrival folds one logged arrival into the recovering broker: the
// counter, the γ bounds, then every offer's charge, in commit order.
func (b *Broker) applyArrival(gammaMin, gammaMax float64, offers []Offer) error {
	b.arrivals.Add(1)
	b.gammaMin.Min(gammaMin)
	b.gammaMax.Max(gammaMax)
	for i := range offers {
		o := &offers[i]
		c, err := b.campaign(o.Campaign)
		if err != nil {
			return err
		}
		c.spent.Store(c.spent.Load() + o.Cost)
		b.spent.Add(o.Cost)
		b.utility.Add(o.Utility)
		b.offers.Add(1)
	}
	return nil
}

// applyArrivalSlate replays one slate-format arrival: the legacy
// accumulator sequence plus the billing effects commitSlate performed —
// escrow registration (under the recorded offer ID, so later conversion
// records resolve) for deferred offers, revenue accounting for the rest.
func (b *Broker) applyArrivalSlate(gammaMin, gammaMax float64, offers []Offer) error {
	b.arrivals.Add(1)
	b.gammaMin.Min(gammaMin)
	b.gammaMax.Max(gammaMax)
	bl := b.billing
	for i := range offers {
		o := &offers[i]
		c, err := b.campaign(o.Campaign)
		if err != nil {
			return err
		}
		if o.Hold > 0 {
			bl.mu.Lock()
			// born is stamped at recovery time — it is not serialized, so the
			// oldest-age gauge measures age since restart for recovered holds.
			bl.open[o.ID] = openOffer{campaign: o.Campaign, model: o.Model, hold: o.Hold, born: time.Now()}
			if o.ID >= bl.nextID {
				bl.nextID = o.ID + 1
			}
			bl.openCount.Add(1)
			c.escrow.Store(c.escrow.Load() + o.Hold)
			bl.held.Add(o.Hold)
			if len(bl.open) > bl.maxOpen {
				bl.evictLocked(*b.dir.Load())
			}
			bl.mu.Unlock()
		} else {
			bl.revenue[o.Model].Add(o.Cost)
		}
		c.spent.Store(c.spent.Load() + o.Cost)
		b.spent.Add(o.Cost)
		b.utility.Add(o.Utility)
		b.offers.Add(1)
	}
	return nil
}

// applyConversion replays one conversion record: the recorded offer's hold
// moves from escrow to spend, mirroring Convert. A serial history always
// finds the table entry (the slate arrival record replayed before it); a
// missing entry means the log interleaved an eviction the record preceded,
// which serial replay treats as corruption.
func (b *Broker) applyConversion(d *DecodedRecord) error {
	bl := b.billing
	o, ok := bl.open[d.OfferID]
	if !ok {
		return fmt.Errorf("conversion for unknown offer %d", d.OfferID)
	}
	delete(bl.open, d.OfferID)
	if d.EventKey != "" {
		bl.registerKeyLocked(d.EventKey)
	}
	bl.openCount.Add(-1)
	c, err := b.campaign(o.campaign)
	if err != nil {
		return err
	}
	c.escrow.Store(c.escrow.Load() - o.hold)
	c.spent.Store(c.spent.Load() + o.hold)
	c.converted.Add(o.hold)
	c.conversions.Add(1)
	bl.held.Add(-o.hold)
	bl.convertedRev.Add(o.hold)
	bl.conversions.Add(1)
	bl.revenue[o.model].Add(o.hold)
	b.spent.Add(o.hold)
	return nil
}

// encodeSnapshot serializes the full broker state. Called with every
// mutator quiesced (regMu plus all shard locks held), so the atomics are
// stable and the encoding is a consistent cut.
func (b *Broker) encodeSnapshot() []byte {
	dir := *b.dir.Load()
	// The v3 layout appears only once billing is active, so an all-fixed
	// broker's snapshots stay byte-identical to the pre-v4 encoding.
	v3 := b.billing.active.Load()
	buf := make([]byte, 0, 64+len(dir)*160)
	if v3 {
		buf = append(buf, snapshotV3)
	} else {
		buf = append(buf, snapshotV2)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.arrivals.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.offers.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, b.utility.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, b.spent.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, b.gammaMin.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, b.gammaMax.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, b.phiBoost.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.pacingEpoch.Load()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dir)))
	for _, c := range dir {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.id))
		buf = appendF64(buf, c.loc.X)
		buf = appendF64(buf, c.loc.Y)
		buf = appendF64(buf, c.radius)
		buf = binary.LittleEndian.AppendUint64(buf, c.budget.bits.Load())
		buf = binary.LittleEndian.AppendUint64(buf, c.spent.bits.Load())
		var paused byte
		if c.paused.Load() {
			paused = 1
		}
		buf = append(buf, paused)
		var class byte
		if c.guaranteed {
			class = 1
		}
		buf = append(buf, class)
		buf = appendF64(buf, c.floor)
		buf = appendF64(buf, c.penalty)
		buf = binary.LittleEndian.AppendUint64(buf, c.rate.bits.Load())
		buf = binary.LittleEndian.AppendUint64(buf, c.allowance.bits.Load())
		if v3 {
			buf = append(buf, byte(c.billing.Model))
			buf = appendF64(buf, c.billing.ReserveECPM)
			buf = appendF64(buf, c.billing.EventRate)
			buf = binary.LittleEndian.AppendUint64(buf, c.escrow.bits.Load())
			buf = binary.LittleEndian.AppendUint64(buf, c.converted.bits.Load())
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c.conversions.Load()))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.tags)))
		for _, t := range c.tags {
			buf = appendF64(buf, t)
		}
	}
	if v3 {
		buf = b.encodeBillingSnapshot(buf)
	}
	return buf
}

// encodeBillingSnapshot appends the global billing section of a v3
// snapshot. Called under full quiescence (regMu plus every shard lock);
// since all billing mutations hold at least one shard lock, the sidecar's
// state is stable and read without its mutex.
func (b *Broker) encodeBillingSnapshot(buf []byte) []byte {
	bl := b.billing
	buf = binary.LittleEndian.AppendUint64(buf, bl.nextID)
	buf = binary.LittleEndian.AppendUint64(buf, bl.evictNext)
	buf = binary.LittleEndian.AppendUint64(buf, bl.held.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, bl.released.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, bl.convertedRev.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(bl.conversions.Load()))
	for m := range bl.revenue {
		buf = binary.LittleEndian.AppendUint64(buf, bl.revenue[m].bits.Load())
	}
	// The open table, in ID order for a deterministic payload.
	ids := make([]uint64, 0, len(bl.open))
	for id := range bl.open {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		o := bl.open[id]
		buf = binary.LittleEndian.AppendUint64(buf, id)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.campaign))
		buf = append(buf, byte(o.model))
		buf = appendF64(buf, o.hold)
	}
	// The live idempotency window, oldest first, so replaying
	// registerKeyLocked rebuilds the same FIFO.
	live := bl.idemQ[bl.idemHead:]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(live)))
	for _, k := range live {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
	}
	return buf
}

// applySnapshot seeds an empty broker from a compacted snapshot payload.
// Campaigns re-enter through RegisterCampaign (rebuilding the grids and
// maxRadius under the current shard configuration — stripe layout is
// serving topology, not persisted state), then the money atomics are
// overwritten with the recorded bits.
func (b *Broker) applySnapshot(data []byte) error {
	s, err := DecodeSnapshot(data)
	if err != nil {
		return err
	}
	for i := range s.Campaigns {
		sc := &s.Campaigns[i]
		got, err := b.RegisterCampaignSpec(CampaignSpec{
			Loc: sc.Loc, Radius: sc.Radius, Budget: sc.Budget(), Tags: sc.Tags,
			Guaranteed: sc.Guaranteed, Floor: sc.Floor, Penalty: sc.Penalty,
			Billing: sc.Billing(),
		})
		if err != nil {
			return err
		}
		if got != sc.ID {
			return fmt.Errorf("snapshot campaign %d re-registered as %d", sc.ID, got)
		}
		c := (*b.dir.Load())[got]
		c.spent.bits.Store(sc.SpentBits)
		c.paused.Store(sc.Paused)
		c.rate.bits.Store(sc.RateBits)
		c.allowance.bits.Store(sc.AllowanceBits)
		c.escrow.bits.Store(sc.EscrowBits)
		c.converted.bits.Store(sc.ConvertedBits)
		c.conversions.Store(sc.Conversions)
	}
	b.arrivals.Store(s.Arrivals)
	b.offers.Store(s.Offers)
	b.utility.bits.Store(s.UtilityBits)
	b.spent.bits.Store(s.SpentBits)
	b.gammaMin.bits.Store(s.GammaMinBits)
	b.gammaMax.bits.Store(s.GammaMaxBits)
	b.phiBoost.bits.Store(s.PhiBoostBits)
	b.pacingEpoch.Store(s.PacingEpoch)
	if s.Billing != nil {
		bl := b.billing
		sb := s.Billing
		bl.nextID = sb.NextID
		bl.evictNext = sb.EvictNext
		bl.held.bits.Store(sb.HeldBits)
		bl.released.bits.Store(sb.ReleasedBits)
		bl.convertedRev.bits.Store(sb.ConvertedRevBits)
		bl.conversions.Store(sb.Conversions)
		for m := range bl.revenue {
			bl.revenue[m].bits.Store(sb.RevenueBits[m])
		}
		born := time.Now() // see openOffer.born: ages reset across restart
		for i := range sb.Open {
			e := &sb.Open[i]
			bl.open[e.ID] = openOffer{campaign: e.Campaign, model: e.Model, hold: e.Hold, born: born}
		}
		bl.openCount.Store(int64(len(sb.Open)))
		for _, k := range sb.IdemKeys {
			bl.registerKeyLocked(k)
		}
	}
	return nil
}
