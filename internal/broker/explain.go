package broker

// Explain-replay: "why did (or didn't) this arrival get these offers?"
//
// Explain runs the real decision pipeline — the same gather, the same filter
// sequence, the same sequential O-AFA threshold walk, the same slate auction
// when billing is active — over a hypothetical arrival, under the covering
// stripe locks, and returns the full per-candidate breakdown instead of
// committing anything. Nothing observable changes: no spend, no WAL record,
// no arrivals counter, no funnel attribution, and crucially no γ
// observations — the walk's feed-forward γ updates run against a local
// simulation seeded from the live bounds, so the predicted thresholds are
// exactly what an immediately-following Arrive would compute, while the live
// bounds stay untouched. Read-only-ness is pinned by the golden replay
// transcripts with explain calls interleaved
// (TestReplayMatchesGoldenExplainInterleaved).
//
// Explain allocates freely (fresh slices per call, never the stripe arena):
// it is a debug endpoint, not the hot path, and borrowing the arena would
// couple its high-water marks to diagnostic traffic.

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"slices"

	"muaa/internal/geo"
	"muaa/internal/knapsack"
	"muaa/internal/model"
)

// ExplainReport is the full decision breakdown for one hypothetical arrival.
type ExplainReport struct {
	// Slate reports which scan path ran: the MCKP slate auction (billing
	// active or Config.Slate) or the legacy per-candidate scan.
	Slate bool `json:"slate"`
	// Boost is the pacing controller's threshold multiplier the scan applied
	// (1 without a controller).
	Boost float64 `json:"boost"`
	// GammaMin/GammaMax are the live γ bounds at entry (zeros before the
	// first observation, as Stats reports them) and G the threshold base in
	// effect at entry — configured, or derived from the bounds.
	GammaMin float64 `json:"gamma_min"`
	GammaMax float64 `json:"gamma_max"`
	G        float64 `json:"g"`
	// StripeLo/StripeHi are the stripe interval the arrival would lock.
	StripeLo int `json:"stripe_lo"`
	StripeHi int `json:"stripe_hi"`
	// Gathered is the candidate count the grid probes returned; Offered how
	// many offers the arrival would receive.
	Gathered int `json:"gathered"`
	Offered  int `json:"offered"`
	// Candidates carries one entry per gathered candidate, in scan order.
	Candidates []ExplainCandidate `json:"candidates"`
}

// ExplainCandidate is the decision breakdown for one gathered campaign.
type ExplainCandidate struct {
	Campaign int32 `json:"campaign"`
	// Disposition is the funnel bucket the candidate would land in (see
	// dispositionNames): offered, paused, exhausted, tag_mismatch, low_score,
	// unaffordable, below_threshold, below_reserve, displaced_by_slate.
	Disposition string `json:"disposition"`

	// Scoring terms, present once the candidate passes the cheap filters.
	Distance float64 `json:"distance,omitempty"`
	Score    float64 `json:"score,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	// Relief marks a guaranteed campaign behind its pro-rated floor (its
	// threshold was scaled by the relief factor).
	Relief bool `json:"relief,omitempty"`
	// Threshold is φ(δ) as this candidate saw it: pacing boost and guarantee
	// relief applied, γ feed-forward from every earlier candidate included.
	Threshold float64 `json:"threshold"`
	// Base is the Eq. 4 per-effect value (viewProb × score / distance).
	Base float64 `json:"base,omitempty"`
	// Remaining is the spendable budget after pacing caps (and escrow on the
	// slate path); Headroom the raw unspent budget; Escrow the budget held
	// against open offers (slate path only).
	Remaining float64 `json:"remaining,omitempty"`
	Headroom  float64 `json:"headroom,omitempty"`
	Escrow    float64 `json:"escrow,omitempty"`

	// Bids is the per-ad-type breakdown of the threshold walk.
	Bids []ExplainBid `json:"bids,omitempty"`
	// Offer is the offer this candidate would win, when Disposition is
	// "offered". No offer ID is assigned — nothing is committed.
	Offer *ExplainOffer `json:"offer,omitempty"`
}

// ExplainBid is one (candidate, ad-type) evaluation in the threshold walk.
type ExplainBid struct {
	AdType int     `json:"ad_type"`
	Name   string  `json:"name"`
	Cost   float64 `json:"cost"`
	// Affordable: the catalog cost fits the spendable budget.
	Affordable bool `json:"affordable"`
	// BidECPM and AboveReserve appear on the slate path only: the campaign's
	// eCPM-normalized bid and whether it cleared its own reserve.
	BidECPM      float64 `json:"bid_ecpm,omitempty"`
	AboveReserve bool    `json:"above_reserve,omitempty"`
	// Utility and Efficiency are the admission currency (efficiency divides
	// by expected cost on the slate path).
	Utility    float64 `json:"utility,omitempty"`
	Efficiency float64 `json:"efficiency,omitempty"`
	// Admitted: efficiency met the threshold. Chosen: this ad type was the
	// candidate's best admitted pick.
	Admitted bool `json:"admitted,omitempty"`
	Chosen   bool `json:"chosen,omitempty"`
}

// ExplainOffer is the offer a winning candidate would receive.
type ExplainOffer struct {
	AdType     int     `json:"ad_type"`
	Name       string  `json:"name"`
	Utility    float64 `json:"utility"`
	Efficiency float64 `json:"efficiency"`
	// Cost is the immediate charge (catalog cost, or the second-priced CPM
	// charge); ChargeECPM/Hold/Model mirror the committed Offer's auction
	// fields for billed campaigns.
	Cost       float64 `json:"cost"`
	ChargeECPM float64 `json:"charge_ecpm,omitempty"`
	Hold       float64 `json:"hold,omitempty"`
	Model      string  `json:"model,omitempty"`
	// Slot is the slate position (0-based); -1 on the legacy path before the
	// capacity trim orders survivors.
	Slot int `json:"slot"`
}

// gammaSim simulates the broker's γ bounds and adaptive threshold locally:
// seeded from the live atomics, observed into plain fields. The arithmetic
// mirrors observeEfficiency and threshold exactly, so within one explain the
// feed-forward sequence is bit-identical to what the real scan would compute
// — without a single store to the shared bounds.
type gammaSim struct {
	gmin, gmax float64
	cfgG       float64
}

func (b *Broker) newGammaSim() gammaSim {
	return gammaSim{gmin: b.gammaMin.Load(), gmax: b.gammaMax.Load(), cfgG: b.cfg.G}
}

// observe mirrors Broker.observeEfficiency.
func (s *gammaSim) observe(eff float64) {
	if eff <= 0 || math.IsNaN(eff) || math.IsInf(eff, 0) {
		return
	}
	if eff < s.gmin {
		s.gmin = eff
	}
	if eff > s.gmax {
		s.gmax = eff
	}
}

// threshold mirrors Broker.threshold against the simulated bounds.
func (s *gammaSim) threshold(delta float64) float64 {
	if s.gmax == 0 {
		return 0
	}
	g := s.cfgG
	if g == 0 {
		g = 2 * math.E
		if s.gmax > s.gmin {
			g = math.E * s.gmax / s.gmin
			if g < 2*math.E {
				g = 2 * math.E
			}
			if g > 1e9 {
				g = 1e9
			}
		}
	}
	return s.gmin / math.E * math.Pow(g, delta)
}

// explainScratch is one candidate's pass-A terms awaiting the walk.
type explainScratch struct {
	c         *campaign
	ci        int // index into report.Candidates
	base      float64
	delta     float64
	remaining float64
	headroom  float64
	relief    bool
}

// explainPick is one admitted candidate awaiting slot resolution.
type explainPick struct {
	ci         int // index into report.Candidates
	c          *campaign
	k          int
	util, eff  float64
	bid        float64
	campaignID int32
}

// Explain runs the decision pipeline read-only over a hypothetical arrival
// and returns the per-candidate breakdown. Validation matches Arrive;
// capacity 0 returns an empty report (Arrive would only count the arrival).
func (b *Broker) Explain(a Arrival) (*ExplainReport, error) {
	if a.Capacity < 0 {
		return nil, fmt.Errorf("broker: capacity %d", a.Capacity)
	}
	if a.ViewProb < 0 || a.ViewProb > 1 || math.IsNaN(a.ViewProb) {
		return nil, fmt.Errorf("broker: view probability %g", a.ViewProb)
	}
	rep := &ExplainReport{Boost: 1, Candidates: []ExplainCandidate{}}
	if a.Capacity == 0 {
		return rep, nil
	}

	// Lock the same covering stripe interval an arrival would, in the same
	// ascending order, so explain serializes against live traffic exactly
	// like a real arrival — the breakdown is a consistent snapshot.
	maxR := b.maxRadius.Load()
	s0, s1 := b.stripes.Range(a.Loc.Y-maxR, a.Loc.Y+maxR)
	for i := s0; i <= s1; i++ {
		b.shards[i].mu.Lock()
	}
	defer func() {
		for i := s1; i >= s0; i-- {
			b.shards[i].mu.Unlock()
		}
	}()
	rep.StripeLo, rep.StripeHi = s0, s1

	slate := b.cfg.Slate || b.billing.active.Load()
	rep.Slate = slate

	// Gather into fresh slices (never the stripe arena — see the file
	// comment), same probes, same ascending sort.
	var ids []int32
	for i := s0; i <= s1; i++ {
		ids = b.shards[i].grid.CoveredBy(ids, a.Loc)
	}
	slices.Sort(ids)
	dir := *b.dir.Load()
	rep.Gathered = len(ids)

	if b.controller != nil {
		rep.Boost = b.phiBoost.Load()
	}
	sim := b.newGammaSim()
	// Report the entry bounds the way Stats does (zeros until seen).
	if sim.gmax != 0 {
		rep.GammaMin, rep.GammaMax = sim.gmin, sim.gmax
	}
	rep.G = sim.cfgG
	if rep.G == 0 && sim.gmax > sim.gmin && sim.gmax > 0 {
		rep.G = math.E * sim.gmax / sim.gmin
	}

	// Pass A: the exact filter sequence of scanCandidates/scanSlate pass A,
	// recording every disposition into the report instead of a tally.
	cu := model.Customer{Loc: a.Loc, Capacity: a.Capacity, ViewProb: a.ViewProb,
		Interests: a.Interests, Arrival: a.Hour}
	var ve model.Vendor
	var weights []float64
	var live []explainScratch
	for _, id := range ids {
		c := dir[id]
		rep.Candidates = append(rep.Candidates, ExplainCandidate{Campaign: id})
		ec := &rep.Candidates[len(rep.Candidates)-1]
		if c.paused.Load() {
			ec.Disposition = dispositionNames[dispPaused]
			continue
		}
		budget := c.budget.Load()
		if budget <= 0 {
			ec.Disposition = dispositionNames[dispExhausted]
			continue
		}
		if b.vectorPref && len(c.tags) != len(a.Interests) {
			ec.Disposition = dispositionNames[dispTagMismatch]
			continue
		}
		spent := c.spent.Load()
		ve = model.Vendor{Loc: c.loc, Radius: c.radius, Budget: budget, Tags: c.tags}
		var s float64
		if b.vectorPref {
			s, weights = b.pearson.ScoreScratch(&cu, &ve, a.Hour, weights)
		} else {
			s = b.pref.Score(&cu, &ve, a.Hour)
		}
		if s <= 0 || math.IsNaN(s) {
			ec.Disposition = dispositionNames[dispLowScore]
			ec.Score = s
			continue
		}
		if s > 1 {
			s = 1
		}
		d := a.Loc.Dist(c.loc)
		if d < b.minDist {
			d = b.minDist
		}
		base := a.ViewProb * s / d
		delta := spent / budget
		relief := c.guaranteed && c.floor > 0 && spent < c.floor*budget*(a.Hour/24)
		var escrow float64
		remaining := budget - spent
		if slate {
			escrow = c.escrow.Load()
			remaining = budget - spent - escrow
		}
		headroom := remaining
		if b.cfg.Pacing > 0 {
			allowance := b.cfg.Pacing * budget * a.Hour / 24
			if paced := allowance - spent; paced < remaining {
				remaining = paced
			}
		}
		if b.controller != nil {
			if paced := c.allowance.Load() - spent; paced < remaining {
				remaining = paced
			}
		}
		ec.Distance = d
		ec.Score = s
		ec.Delta = delta
		ec.Relief = relief
		ec.Base = base
		ec.Remaining = remaining
		ec.Headroom = headroom
		ec.Escrow = escrow
		live = append(live, explainScratch{
			c: c, ci: len(rep.Candidates) - 1, base: base, delta: delta,
			remaining: remaining, headroom: headroom, relief: relief,
		})
	}

	// Pass B: the sequential threshold walk against the γ simulation.
	var picks []explainPick
	if slate {
		picks = b.explainSlateWalk(rep, live, &sim, a.Capacity)
	} else {
		picks = b.explainLegacyWalk(rep, live, &sim)
	}

	// Slot resolution, mirroring the committed paths' ordering exactly.
	b.explainResolve(rep, picks, slate, a.Capacity)
	return rep, nil
}

// explainLegacyWalk mirrors scanCandidates pass B: per-candidate best
// admitted pick at catalog cost, γ observed (into the sim) for every
// affordable ad type.
func (b *Broker) explainLegacyWalk(rep *ExplainReport, live []explainScratch, sim *gammaSim) []explainPick {
	adTypes := b.cfg.AdTypes
	var picks []explainPick
	for i := range live {
		sc := &live[i]
		ec := &rep.Candidates[sc.ci]
		phi := sim.threshold(sc.delta)
		if rep.Boost != 1 {
			phi *= rep.Boost
		}
		if sc.relief {
			phi *= guaranteeRelief
		}
		ec.Threshold = phi
		bestK, bestU, bestEff := -1, 0.0, 0.0
		affordable := false
		ec.Bids = make([]ExplainBid, 0, len(adTypes))
		for k, t := range adTypes {
			bid := ExplainBid{AdType: k, Name: t.Name, Cost: t.Cost}
			if t.Cost > sc.remaining+1e-12 {
				ec.Bids = append(ec.Bids, bid)
				continue
			}
			affordable = true
			bid.Affordable = true
			util := sc.base * t.Effect
			eff := util / t.Cost
			sim.observe(eff)
			bid.Utility, bid.Efficiency = util, eff
			if eff >= phi {
				bid.Admitted = true
				if util > bestU {
					bestK, bestU, bestEff = k, util, eff
				}
			}
			ec.Bids = append(ec.Bids, bid)
		}
		switch {
		case bestK >= 0:
			ec.Bids[bestK].Chosen = true
			picks = append(picks, explainPick{
				ci: sc.ci, c: sc.c, k: bestK, util: bestU, eff: bestEff,
				campaignID: sc.c.id,
			})
		case affordable:
			ec.Disposition = dispositionNames[dispBelowThreshold]
		case sc.headroom < b.minAdCost:
			ec.Disposition = dispositionNames[dispExhausted]
		default:
			ec.Disposition = dispositionNames[dispUnaffordable]
		}
	}
	return picks
}

// explainSlateWalk mirrors slatePassSingle/slatePassSlots' admission: per
// ad type the eCPM bid, the reserve gate, and expected-cost efficiency. The
// per-candidate best pick shape matches the capacity-1 walk; at higher
// capacities the solver resolves slots in explainResolve, fed the same
// (expected cost, utility) items in the same order.
func (b *Broker) explainSlateWalk(rep *ExplainReport, live []explainScratch, sim *gammaSim, capacity int) []explainPick {
	adTypes := b.cfg.AdTypes
	single := capacity == 1
	var picks []explainPick
	for i := range live {
		sc := &live[i]
		ec := &rep.Candidates[sc.ci]
		phi := sim.threshold(sc.delta)
		if rep.Boost != 1 {
			phi *= rep.Boost
		}
		if sc.relief {
			phi *= guaranteeRelief
		}
		ec.Threshold = phi
		bi := sc.c.billing
		bestK, bestU, bestEff, bestBid := -1, 0.0, 0.0, 0.0
		affordable, aboveReserve := false, false
		ec.Bids = make([]ExplainBid, 0, len(adTypes))
		for k, t := range adTypes {
			eb := ExplainBid{AdType: k, Name: t.Name, Cost: t.Cost}
			if t.Cost > sc.remaining+1e-12 {
				ec.Bids = append(ec.Bids, eb)
				continue
			}
			affordable = true
			eb.Affordable = true
			bid := bi.BidECPM(t.Cost)
			eb.BidECPM = bid
			if bid < bi.ReserveECPM {
				ec.Bids = append(ec.Bids, eb)
				continue
			}
			aboveReserve = true
			eb.AboveReserve = true
			util := sc.base * t.Effect
			eff := util / bi.ExpectedCost(t.Cost)
			sim.observe(eff)
			eb.Utility, eb.Efficiency = util, eff
			admitted := eff >= phi
			if !single && util <= 0 {
				admitted = false // the slot solver rejects zero-profit items
			}
			if admitted {
				eb.Admitted = true
				if single {
					if util > bestU {
						bestK, bestU, bestEff, bestBid = k, util, eff, bid
					}
				} else {
					// Slots path: every admitted item joins the candidate's MCKP
					// class; the first admitted one marks the class open.
					if bestK < 0 {
						bestK = k
					}
					picks = append(picks, explainPick{
						ci: sc.ci, c: sc.c, k: k, util: util, eff: eff, bid: bid,
						campaignID: sc.c.id,
					})
				}
			}
			ec.Bids = append(ec.Bids, eb)
		}
		if single && bestK >= 0 {
			ec.Bids[bestK].Chosen = true
			picks = append(picks, explainPick{
				ci: sc.ci, c: sc.c, k: bestK, util: bestU, eff: bestEff,
				bid: bestBid, campaignID: sc.c.id,
			})
		}
		if bestK < 0 {
			switch {
			case aboveReserve:
				ec.Disposition = dispositionNames[dispBelowThreshold]
			case affordable:
				ec.Disposition = dispositionNames[dispBelowReserve]
			case sc.headroom < b.minAdCost:
				ec.Disposition = dispositionNames[dispExhausted]
			default:
				ec.Disposition = dispositionNames[dispUnaffordable]
			}
		}
	}
	return picks
}

// explainResolve assigns the winners: the legacy capacity trim, the slate
// single-slot winner/runner scan, or the MCKP slot solve — each mirroring
// the committed path's exact ordering and pricing.
func (b *Broker) explainResolve(rep *ExplainReport, picks []explainPick, slate bool, capacity int) {
	adTypes := b.cfg.AdTypes
	switch {
	case !slate:
		// Legacy: capacity trim by (efficiency desc, campaign asc) — but only
		// when a trim is needed; within capacity the committed path keeps the
		// admitted candidates in scan order, and so do the slots here.
		order := make([]int, len(picks))
		for i := range order {
			order[i] = i
		}
		if len(picks) > capacity {
			slices.SortFunc(order, func(x, y int) int {
				px, py := &picks[x], &picks[y]
				if px.eff != py.eff {
					if px.eff > py.eff {
						return -1
					}
					return 1
				}
				if px.campaignID != py.campaignID {
					if px.campaignID < py.campaignID {
						return -1
					}
					return 1
				}
				return 0
			})
		}
		n := len(order)
		if n > capacity {
			n = capacity
		}
		for slot, oi := range order[:n] {
			p := &picks[oi]
			ec := &rep.Candidates[p.ci]
			ec.Disposition = dispositionNames[dispOffered]
			ec.Offer = &ExplainOffer{
				AdType: p.k, Name: adTypes[p.k].Name, Utility: p.util,
				Efficiency: p.eff, Cost: adTypes[p.k].Cost, Slot: slot,
			}
			rep.Offered++
		}
		for _, oi := range order[n:] {
			rep.Candidates[picks[oi].ci].Disposition = dispositionNames[dispDisplaced]
		}

	case capacity == 1:
		// Slate single slot: winner/runner scan by (efficiency desc, campaign
		// asc — picks ascend by campaign, strict > keeps the lower id).
		if len(picks) == 0 {
			return
		}
		wi, ri := -1, -1
		for j := range picks {
			switch {
			case wi < 0 || picks[j].eff > picks[wi].eff:
				ri = wi
				wi = j
			case ri < 0 || picks[j].eff > picks[ri].eff:
				ri = j
			}
		}
		runnerBid := 0.0
		if ri >= 0 {
			runnerBid = picks[ri].bid
		}
		for j := range picks {
			ec := &rep.Candidates[picks[j].ci]
			if j != wi {
				ec.Disposition = dispositionNames[dispDisplaced]
				continue
			}
			p := &picks[j]
			ec.Disposition = dispositionNames[dispOffered]
			ec.Offer = explainOfferFrom(
				priceSlateOffer(p.c, adTypes, p.k, p.util, p.eff, p.bid, runnerBid),
				adTypes, 0)
			rep.Offered++
		}

	default:
		// Slate slots: rebuild the MCKP classes in walk order and solve with
		// a local solver — same items, same order, same tie-breaking.
		if len(picks) == 0 {
			return
		}
		var s knapsack.SlotSolver
		var classPick [][]int // class → indices into picks
		lastCI := -1
		for j := range picks {
			if picks[j].ci != lastCI {
				lastCI = picks[j].ci
				s.Begin()
				classPick = append(classPick, nil)
			}
			s.Item(picks[j].c.billing.ExpectedCost(adTypes[picks[j].k].Cost), picks[j].util)
			classPick[len(classPick)-1] = append(classPick[len(classPick)-1], j)
		}
		s.Solve(capacity)
		runnerBid := 0.0
		if rc := s.Runner(); rc >= 0 {
			if rp := s.RunnerPick(); rp >= 0 {
				runnerBid = picks[classPick[rc][rp]].bid
			}
		}
		won := make([]bool, len(classPick))
		for slot, ci := range s.Order() {
			won[ci] = true
			p := &picks[classPick[ci][s.Pick(int(ci))]]
			ec := &rep.Candidates[p.ci]
			ec.Disposition = dispositionNames[dispOffered]
			ec.Bids[p.k].Chosen = true
			ec.Offer = explainOfferFrom(
				priceSlateOffer(p.c, adTypes, p.k, p.util, p.eff, p.bid, runnerBid),
				adTypes, slot)
			rep.Offered++
		}
		for ci, w := range won {
			if !w {
				rep.Candidates[picks[classPick[ci][0]].ci].Disposition =
					dispositionNames[dispDisplaced]
			}
		}
	}
}

// explainOfferFrom converts a priced slate candidate to the report view.
func explainOfferFrom(cd candidate, adTypes []model.AdType, slot int) *ExplainOffer {
	out := &ExplainOffer{
		AdType: cd.AdType, Name: adTypes[cd.AdType].Name,
		Utility: cd.Utility, Efficiency: cd.Efficiency,
		Cost: cd.Cost, ChargeECPM: cd.ChargeECPM, Hold: cd.Hold, Slot: slot,
	}
	if cd.Model != model.BillingFixed {
		out.Model = cd.Model.String()
	}
	return out
}

// ServeExplain serves POST /v1/debug/explain: a hypothetical arrival in the
// /v1/arrivals request schema, the ExplainReport out. Decoding shares the
// API's funnel (1 MiB cap, strict fields, content-type contract).
func (b *Broker) ServeExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("method %s not allowed; allowed: POST", r.Method))
		return
	}
	var req arrivalRequest
	if !decode(w, r, &req) {
		return
	}
	rep, err := b.Explain(Arrival{
		Loc:       geo.Point{X: req.Loc.X, Y: req.Loc.Y},
		Capacity:  req.Capacity,
		ViewProb:  req.ViewProb,
		Interests: req.Interests,
		Hour:      req.Hour,
	})
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, rep)
}

// ServeCampaignFunnel serves GET /v1/debug/campaigns/{id}/funnel: the
// campaign's decision-funnel counters. 404 funnel_disabled without
// Config.Funnel.Enabled, 404 not_found for unknown campaigns.
func (b *Broker) ServeCampaignFunnel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("method %s not allowed; allowed: GET, HEAD", r.Method))
		return
	}
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	fc, err := b.CampaignFunnel(id)
	if err != nil {
		if errors.Is(err, ErrFunnelDisabled) {
			WriteError(w, http.StatusNotFound, "funnel_disabled",
				"per-campaign funnel attribution is disabled; start the broker with the funnel enabled")
			return
		}
		status, code := statusFor(err)
		WriteError(w, status, code, err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, fc)
}
