package broker

// Explain-replay tests: the report must predict an immediately-following
// Arrive exactly (offers field for field, on the legacy and both slate
// paths), must be provably read-only (golden replay transcripts stay
// byte-identical with an explain interleaved before every arrival), and the
// HTTP surface must honor the API's envelope contract.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/obs"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

// explainConserved asserts every candidate has a disposition and the
// dispositions partition the gathered set, mirroring the funnel invariant.
func explainConserved(t *testing.T, rep *ExplainReport) {
	t.Helper()
	if len(rep.Candidates) != rep.Gathered {
		t.Fatalf("report has %d candidates, gathered %d", len(rep.Candidates), rep.Gathered)
	}
	offered := 0
	for i := range rep.Candidates {
		c := &rep.Candidates[i]
		known := false
		for _, n := range dispositionNames {
			if c.Disposition == n {
				known = true
				break
			}
		}
		if !known {
			t.Fatalf("candidate %d has unknown disposition %q", c.Campaign, c.Disposition)
		}
		if c.Disposition == dispositionNames[dispOffered] {
			offered++
			if c.Offer == nil {
				t.Fatalf("offered candidate %d has no offer", c.Campaign)
			}
		} else if c.Offer != nil {
			t.Fatalf("candidate %d disposed %q but carries an offer", c.Campaign, c.Disposition)
		}
	}
	if offered != rep.Offered {
		t.Fatalf("report Offered %d but %d candidates marked offered", rep.Offered, offered)
	}
}

// matchPrediction asserts the committed offers equal the report's predicted
// winners, in slot order, field for field.
func matchPrediction(t *testing.T, op int, rep *ExplainReport, offers []Offer) {
	t.Helper()
	if rep.Offered != len(offers) {
		t.Fatalf("op %d: explain predicted %d offers, arrive produced %d\nreport: %+v\noffers: %+v",
			op, rep.Offered, len(offers), rep, offers)
	}
	bySlot := make([]*ExplainCandidate, len(offers))
	for i := range rep.Candidates {
		c := &rep.Candidates[i]
		if c.Offer == nil {
			continue
		}
		if c.Offer.Slot < 0 || c.Offer.Slot >= len(offers) || bySlot[c.Offer.Slot] != nil {
			t.Fatalf("op %d: bad or duplicate slot %d (campaign %d)", op, c.Offer.Slot, c.Campaign)
		}
		bySlot[c.Offer.Slot] = c
	}
	for slot, o := range offers {
		c := bySlot[slot]
		if c == nil {
			t.Fatalf("op %d: no predicted winner for slot %d", op, slot)
		}
		eo := c.Offer
		wantModel := ""
		if o.Model != model.BillingFixed {
			wantModel = o.Model.String()
		}
		if c.Campaign != o.Campaign || eo.AdType != o.AdType ||
			eo.Utility != o.Utility || eo.Efficiency != o.Efficiency ||
			eo.Cost != o.Cost || eo.ChargeECPM != o.ChargeECPM ||
			eo.Hold != o.Hold || eo.Model != wantModel {
			t.Fatalf("op %d slot %d: predicted {c=%d %+v}, committed %+v",
				op, slot, c.Campaign, eo, o)
		}
	}
}

// TestExplainPredictsArrive replays seeded mixed traffic and, before every
// arrival, asks Explain for its prediction: the immediately-following Arrive
// must commit exactly the predicted offers. Covers the legacy scan, pacing,
// fixed g, the slate single-slot auction, and the MCKP slots path.
func TestExplainPredictsArrive(t *testing.T) {
	type tcase struct {
		name string
		cfg  Config
		load workload.BrokerLoadConfig
	}
	cases := []tcase{
		{"legacy", Config{AdTypes: workload.DefaultAdTypes()},
			workload.DefaultBrokerLoadConfig(24, 1500, 11)},
		{"paced", Config{AdTypes: workload.DefaultAdTypes(), Pacing: 1.25},
			workload.DefaultBrokerLoadConfig(24, 1500, 12)},
		{"fixed_g", Config{AdTypes: workload.DefaultAdTypes(), G: 8},
			workload.DefaultBrokerLoadConfig(24, 1500, 13)},
		{"slate_single", Config{AdTypes: workload.DefaultAdTypes()},
			func() workload.BrokerLoadConfig {
				c := workload.BilledBrokerLoadConfig(24, 1500, 14)
				c.Capacity = stats.Range{Lo: 1, Hi: 1}
				return c
			}()},
		{"slate_slots", Config{AdTypes: workload.DefaultAdTypes()},
			func() workload.BrokerLoadConfig {
				c := workload.BilledBrokerLoadConfig(24, 1500, 15)
				c.Capacity = stats.Range{Lo: 2, Hi: 4}
				return c
			}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Funnel.Enabled = true
			b, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			specs, ops, err := workload.BrokerLoad(tc.load)
			if err != nil {
				t.Fatal(err)
			}
			registerLoad(t, b, specs)
			var open []uint64
			arrivals, slate := 0, false
			for i, op := range ops {
				if op.Kind != workload.OpArrival {
					applyBilledOp(t, b, op, &open)
					continue
				}
				a := Arrival{Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
					Interests: op.Interests, Hour: op.Hour}
				rep, err := b.Explain(a)
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				explainConserved(t, rep)
				offers, err := b.Arrive(a)
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				matchPrediction(t, i, rep, offers)
				for _, o := range offers {
					if o.ID != 0 {
						open = append(open, o.ID)
					}
				}
				arrivals++
				slate = slate || rep.Slate
			}
			if arrivals == 0 {
				t.Fatal("load produced no arrivals")
			}
			if wantSlate := tc.load.CPMFrac > 0; slate != wantSlate {
				t.Fatalf("slate path = %v, want %v", slate, wantSlate)
			}
		})
	}
}

// TestReplayMatchesGoldenExplainInterleaved is the read-only pin: replaying
// the golden stream with an Explain of every arrival injected immediately
// before its Arrive must leave the transcript byte-identical — explain
// commits no spend, no γ observation, no counter, no funnel attribution.
func TestReplayMatchesGoldenExplainInterleaved(t *testing.T) {
	for _, tc := range []struct {
		name   string
		golden string
		cfg    Config
	}{
		{"default", "replay_default.golden", Config{AdTypes: workload.DefaultAdTypes()}},
		{"paced", "replay_paced.golden", Config{AdTypes: workload.DefaultAdTypes(), Pacing: 1.25}},
		{"instrumented_funnel", "replay_default.golden",
			Config{AdTypes: workload.DefaultAdTypes(), Metrics: obs.NewRegistry(),
				Funnel: FunnelConfig{Enabled: true}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := replayTranscriptVia(t, tc.cfg, 32, 3000, 42,
				func(b *Broker) func(Arrival) ([]Offer, error) {
					return func(a Arrival) ([]Offer, error) {
						if _, err := b.Explain(a); err != nil {
							return nil, err
						}
						return b.Arrive(a)
					}
				})
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatalf("missing golden: %v", err)
			}
			if got != string(want) {
				t.Fatalf("interleaved explain changed the replay transcript (%d vs %d bytes, first diff at byte %d)",
					len(got), len(want), firstDiff(got, string(want)))
			}
		})
	}
}

func TestExplainValidationAndEdges(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.Explain(Arrival{Capacity: -1, ViewProb: 0.5}); err == nil {
		t.Error("negative capacity must be rejected")
	}
	if _, err := b.Explain(Arrival{Capacity: 1, ViewProb: 1.5}); err == nil {
		t.Error("view probability > 1 must be rejected")
	}
	rep, err := b.Explain(Arrival{Capacity: 0, ViewProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gathered != 0 || rep.Offered != 0 || len(rep.Candidates) != 0 {
		t.Errorf("capacity-0 report = %+v, want empty", rep)
	}
	// No campaigns anywhere: an empty, well-formed report.
	rep, err = b.Explain(Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 2, ViewProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gathered != 0 || rep.Slate {
		t.Errorf("empty-fleet report = %+v", rep)
	}
}

// TestServeExplainHTTP pins the endpoint contract: POST-only with an Allow
// header, the shared decode funnel (strict fields, content type, body cap),
// and a well-formed report on success.
func TestServeExplainHTTP(t *testing.T) {
	b := funnelBroker(t, Config{AdTypes: workload.DefaultAdTypes()})
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 50, []float64{1, 0, 0.3}); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/debug/explain", b.ServeExplain)
	mux.HandleFunc("/v1/debug/campaigns/{id}/funnel", b.ServeCampaignFunnel)

	do := func(method, path, ctype, body string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		if ctype != "" {
			req.Header.Set("Content-Type", ctype)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec
	}
	wantEnvelope := func(rec *httptest.ResponseRecorder, status int, code string) {
		t.Helper()
		if rec.Code != status {
			t.Fatalf("status %d, want %d (body %s)", rec.Code, status, rec.Body)
		}
		var env errorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("non-JSON error body %q: %v", rec.Body, err)
		}
		if env.Error.Code != code {
			t.Fatalf("error code %q, want %q", env.Error.Code, code)
		}
	}

	good := `{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`
	rec := do("POST", "/v1/debug/explain", "application/json", good)
	if rec.Code != 200 {
		t.Fatalf("valid explain → %d: %s", rec.Code, rec.Body)
	}
	var rep ExplainReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("malformed report: %v", err)
	}
	if rep.Gathered != 1 || len(rep.Candidates) != 1 {
		t.Fatalf("report = %+v, want the one covering campaign", rep)
	}

	rec = do("GET", "/v1/debug/explain", "", "")
	if rec.Code != 405 || rec.Header().Get("Allow") != "POST" {
		t.Errorf("GET explain → %d Allow=%q, want 405 with Allow: POST", rec.Code, rec.Header().Get("Allow"))
	}
	wantEnvelope(do("POST", "/v1/debug/explain", "text/plain", good), 415, "unsupported_media_type")
	wantEnvelope(do("POST", "/v1/debug/explain", "application/json", `{"unknown":1}`), 400, "bad_request")
	wantEnvelope(do("POST", "/v1/debug/explain", "application/json", `{"capacity":-1,"viewProb":0.5}`), 400, "bad_request")
	wantEnvelope(do("POST", "/v1/debug/explain", "application/json",
		`{"capacity":1,`+strings.Repeat(" ", 1<<20)+`"viewProb":0.5}`), 413, "payload_too_large")

	// Funnel route: success, unknown id, bad id, method gate.
	rec = do("GET", "/v1/debug/campaigns/0/funnel", "", "")
	if rec.Code != 200 {
		t.Fatalf("funnel GET → %d: %s", rec.Code, rec.Body)
	}
	var fc FunnelCounts
	if err := json.Unmarshal(rec.Body.Bytes(), &fc); err != nil || fc.Campaign != 0 {
		t.Fatalf("funnel body %q: %v", rec.Body, err)
	}
	wantEnvelope(do("GET", "/v1/debug/campaigns/99/funnel", "", ""), 404, "not_found")
	wantEnvelope(do("GET", "/v1/debug/campaigns/zzz/funnel", "", ""), 400, "bad_request")
	rec = do("POST", "/v1/debug/campaigns/0/funnel", "application/json", "{}")
	if rec.Code != 405 || rec.Header().Get("Allow") != "GET, HEAD" {
		t.Errorf("POST funnel → %d Allow=%q, want 405 with Allow: GET, HEAD", rec.Code, rec.Header().Get("Allow"))
	}
}
