package broker

// The per-campaign decision funnel. The scan's fleet-wide tallies say *how
// many* candidates each gate rejected; an operator watching one campaign
// starve needs to know *which* gate rejected *that* campaign. The funnel
// attributes every gathered candidate's disposition to its campaign:
//
//	gathered → paused / exhausted / tag_mismatch / low_score / unaffordable
//	         / below_threshold / below_reserve / displaced_by_slate / offered
//
// Attribution is recorded branch-light into an arena-retained event slice
// during the scan (zero allocations in steady state — the slice is kept at
// high-water capacity like every other arena buffer) and folded into the
// registry after the scan, still under the stripe locks that own the arena.
//
// The registry is bounded-cardinality by construction: campaign ids below
// ExactCampaigns get exact lock-free counters in a dense flat array; ids at
// or above the cap share a space-saving top-k heavy-hitter sketch (Metwally
// et al.), so a fleet of any size costs O(ExactCampaigns + TopK) memory and
// the funnel never becomes the unbounded-label cardinality trap the obs
// package refuses to support. Like every other instrument, the funnel is
// observation-only: nothing here feeds back into admission, pinned by the
// golden replay transcript with the funnel enabled.

import (
	"errors"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"muaa/internal/obs"
)

// ErrFunnelDisabled is returned by the funnel accessors on a broker built
// without Config.Funnel.Enabled; the debug endpoint maps it to a 404
// funnel_disabled envelope.
var ErrFunnelDisabled = errors.New("broker: funnel disabled")

// funnelDisposition indexes the per-campaign decision-funnel counters. The
// dispositions partition every gathered candidate — each candidate a scan
// examines lands in exactly one bucket, which is the conservation invariant
// (sum of dispositions == gathered) the soak test pins.
type funnelDisposition uint8

const (
	dispOffered funnelDisposition = iota
	dispPaused
	dispExhausted
	dispTagMismatch
	dispLowScore
	dispUnaffordable
	dispBelowThreshold
	dispBelowReserve
	dispDisplaced
	numDispositions
)

// dispositionNames maps funnel dispositions to their wire/metric labels.
// Unlike the scan-outcome counters, "offered" here means the candidate
// actually won a slot; an admitted candidate dropped by the capacity trim or
// the slate solver is "displaced_by_slate".
var dispositionNames = [numDispositions]string{
	"offered", "paused", "exhausted", "tag_mismatch", "low_score",
	"unaffordable", "below_threshold", "below_reserve", "displaced_by_slate",
}

// funnelEvent is one candidate disposition awaiting the post-scan registry
// fold: 8 bytes, kept flat in the arena.
type funnelEvent struct {
	id   int32
	disp funnelDisposition
}

// FunnelConfig parameterizes the decision-funnel registry.
type FunnelConfig struct {
	// Enabled turns per-campaign funnel attribution on. Off (the zero value),
	// the broker allocates nothing and the scan pays one nil check.
	Enabled bool
	// ExactCampaigns is the number of low campaign ids (0 ≤ id < cap) that
	// get exact lock-free counters; zero selects 4096.
	ExactCampaigns int
	// TopK is the heavy-hitter sketch width for campaign ids at or above
	// ExactCampaigns; zero selects 64.
	TopK int
	// MetricsTopN is how many campaigns (ranked by gathered count) the
	// muaa_funnel_campaign_total collector exposes per scrape; zero selects
	// 16. Series cardinality is bounded by MetricsTopN × 10.
	MetricsTopN int
}

const (
	defaultFunnelExact       = 4096
	defaultFunnelTopK        = 64
	defaultFunnelMetricsTopN = 16

	// funnelRowWidth is one exact-region row: one counter per disposition.
	// There is deliberately no per-row gathered counter — conservation (one
	// disposition per gathered candidate) makes gathered the sum of the row,
	// so readers derive it and the fold pays one atomic add per event.
	funnelRowWidth = int(numDispositions)
)

// funnelRegistry is the bounded-cardinality per-campaign counter store.
type funnelRegistry struct {
	exactCap    int
	metricsTopN int

	// counts is the dense exact region: row id (id < exactCap) holds the
	// numDispositions disposition counters; the row sum is the campaign's
	// gathered count. Atomic adds only — folds run under different stripe
	// locks concurrently.
	counts []atomic.Uint64

	// mu guards the overflow sketch and tally (ids ≥ exactCap only, never
	// the serial hot path of a fleet within the exact cap).
	mu     sync.Mutex
	sketch spaceSaving
	// overflow is the exact per-disposition event count for ids past the
	// exact cap — bumped per event on the (already locked) sketch path, so
	// it stays exact even after sketch evictions zero a disposition vector.
	overflow [numDispositions]uint64

	// gathered is the fleet-wide gathered count, fed from the gathered id
	// set rather than the event stream; fleetTotals derives the exact
	// per-disposition fleet counts, and the two agreeing is the
	// conservation cross-check. Keeping only this one shared counter on the
	// fold path (plus one row add per event) is what keeps attribution
	// within noise of a funnel-off broker.
	gathered atomic.Uint64
}

func newFunnelRegistry(cfg FunnelConfig) *funnelRegistry {
	exact := cfg.ExactCampaigns
	if exact <= 0 {
		exact = defaultFunnelExact
	}
	topK := cfg.TopK
	if topK <= 0 {
		topK = defaultFunnelTopK
	}
	topN := cfg.MetricsTopN
	if topN <= 0 {
		topN = defaultFunnelMetricsTopN
	}
	return &funnelRegistry{
		exactCap:    exact,
		metricsTopN: topN,
		counts:      make([]atomic.Uint64, exact*funnelRowWidth),
		sketch:      spaceSaving{k: topK, index: make(map[int32]int, topK)},
	}
}

// fold attributes one scan's gathered set and disposition events to their
// campaigns. Caller still holds the stripe locks that own ar (the event
// slice is arena scratch); the counters themselves are atomics, so folds
// from disjoint stripe intervals proceed in parallel. The sketch lock is
// taken at most once per fold and only when an overflow id appears.
//
// One pass over the events and one atomic add per event: the scan emits
// exactly one event per gathered id (the conservation invariant the -race
// soak pins), so a campaign's gathered count is the sum of its disposition
// row — no separate gathered column to bump — and the fleet per-disposition
// totals are derived at scrape time by fleetTotals instead of being
// maintained on this path. The fleet gathered counter still comes from
// ar.ids, keeping the gathered-set/event-set cross-check observable.
func (fr *funnelRegistry) fold(ar *scanArena) {
	fr.gathered.Add(uint64(len(ar.ids)))
	locked := false
	for _, ev := range ar.fev {
		if int(ev.id) < fr.exactCap {
			fr.counts[int(ev.id)*funnelRowWidth+int(ev.disp)].Add(1)
			continue
		}
		if !locked {
			fr.mu.Lock()
			locked = true
		}
		fr.overflow[ev.disp]++
		fr.sketch.touch(ev.id)
		fr.sketch.note(ev.id, ev.disp)
	}
	if locked {
		fr.mu.Unlock()
	}
}

// fleetTotals returns the exact fleet-wide per-disposition event counts:
// column sums over the exact region plus the overflow tally. Exact for every
// campaign — overflow events are tallied per event under mu, independent of
// sketch evictions. O(exactCap·numDispositions); scrape-cadence callers
// only, never the arrival path.
func (fr *funnelRegistry) fleetTotals() [numDispositions]uint64 {
	var out [numDispositions]uint64
	for base := 0; base < len(fr.counts); base += funnelRowWidth {
		for d := 0; d < funnelRowWidth; d++ {
			out[d] += fr.counts[base+d].Load()
		}
	}
	fr.mu.Lock()
	for d := range out {
		out[d] += fr.overflow[d]
	}
	fr.mu.Unlock()
	return out
}

// FunnelCounts is one campaign's decision-funnel snapshot: how many times
// the scan gathered the campaign as a candidate and which gate disposed of
// each encounter.
type FunnelCounts struct {
	Campaign       int32  `json:"campaign"`
	Gathered       uint64 `json:"gathered"`
	Offered        uint64 `json:"offered"`
	Paused         uint64 `json:"paused"`
	Exhausted      uint64 `json:"exhausted"`
	TagMismatch    uint64 `json:"tag_mismatch"`
	LowScore       uint64 `json:"low_score"`
	Unaffordable   uint64 `json:"unaffordable"`
	BelowThreshold uint64 `json:"below_threshold"`
	BelowReserve   uint64 `json:"below_reserve"`
	Displaced      uint64 `json:"displaced_by_slate"`
	// Approximate marks counts served from the heavy-hitter sketch (campaign
	// id past the exact cap): Gathered may overestimate by at most CountError
	// and the disposition split is best-effort.
	Approximate bool   `json:"approximate,omitempty"`
	CountError  uint64 `json:"count_error,omitempty"`
}

// dispositions returns the per-disposition counters as an array indexed by
// funnelDisposition, for callers that iterate (metrics, rendering).
func (fc *FunnelCounts) dispositions() [numDispositions]uint64 {
	return [numDispositions]uint64{
		fc.Offered, fc.Paused, fc.Exhausted, fc.TagMismatch, fc.LowScore,
		fc.Unaffordable, fc.BelowThreshold, fc.BelowReserve, fc.Displaced,
	}
}

func funnelCountsFrom(id int32, gathered uint64, disp [numDispositions]uint64) FunnelCounts {
	return FunnelCounts{
		Campaign: id, Gathered: gathered,
		Offered: disp[dispOffered], Paused: disp[dispPaused],
		Exhausted: disp[dispExhausted], TagMismatch: disp[dispTagMismatch],
		LowScore: disp[dispLowScore], Unaffordable: disp[dispUnaffordable],
		BelowThreshold: disp[dispBelowThreshold], BelowReserve: disp[dispBelowReserve],
		Displaced: disp[dispDisplaced],
	}
}

// campaignCounts reads one campaign's funnel row. For exact-region ids the
// read is lock-free and each counter individually exact; overflow ids are
// looked up in the sketch under mu (ok reports whether the sketch still
// tracks the id).
func (fr *funnelRegistry) campaignCounts(id int32) (FunnelCounts, bool) {
	if int(id) < fr.exactCap {
		row := fr.counts[int(id)*funnelRowWidth : (int(id)+1)*funnelRowWidth]
		var disp [numDispositions]uint64
		var g uint64
		for d := range disp {
			disp[d] = row[d].Load()
			g += disp[d]
		}
		return funnelCountsFrom(id, g, disp), true
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	i, ok := fr.sketch.index[id]
	if !ok {
		// Never seen, or evicted from the sketch: report zeros (approximate —
		// the campaign may have real traffic the sketch forgot).
		fc := FunnelCounts{Campaign: id, Approximate: true}
		return fc, false
	}
	e := &fr.sketch.entries[i]
	fc := funnelCountsFrom(id, e.count, e.disp)
	fc.Approximate = true
	fc.CountError = e.err
	return fc, true
}

// top returns the n campaigns with the highest gathered counts, ties broken
// by ascending id: the exact region is scanned lock-free (each row a relaxed
// snapshot) and merged with the sketch entries. Cost is O(exactCap + k);
// intended for scrape-cadence callers, never the arrival path.
func (fr *funnelRegistry) top(n int) []FunnelCounts {
	if n <= 0 {
		return nil
	}
	out := make([]FunnelCounts, 0, n)
	for id := 0; id < fr.exactCap; id++ {
		row := fr.counts[id*funnelRowWidth : (id+1)*funnelRowWidth]
		var disp [numDispositions]uint64
		var g uint64
		for d := range disp {
			disp[d] = row[d].Load()
			g += disp[d]
		}
		if g == 0 {
			continue
		}
		out = append(out, funnelCountsFrom(int32(id), g, disp))
	}
	fr.mu.Lock()
	for i := range fr.sketch.entries {
		e := &fr.sketch.entries[i]
		fc := funnelCountsFrom(e.id, e.count, e.disp)
		fc.Approximate = true
		fc.CountError = e.err
		out = append(out, fc)
	}
	fr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Gathered != out[j].Gathered {
			return out[i].Gathered > out[j].Gathered
		}
		return out[i].Campaign < out[j].Campaign
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// CampaignFunnel returns the decision-funnel counters for one campaign.
// ErrFunnelDisabled without Config.Funnel.Enabled; unknown ids error like
// every other campaign accessor.
func (b *Broker) CampaignFunnel(id int32) (FunnelCounts, error) {
	if b.funnel == nil {
		return FunnelCounts{}, ErrFunnelDisabled
	}
	if _, err := b.campaign(id); err != nil {
		return FunnelCounts{}, err
	}
	fc, _ := b.funnel.campaignCounts(id)
	return fc, nil
}

// FunnelTop returns the n campaigns with the highest gathered counts, the
// funnel's heavy hitters (exact rows and sketch entries merged). Errors with
// ErrFunnelDisabled when the funnel is off.
func (b *Broker) FunnelTop(n int) ([]FunnelCounts, error) {
	if b.funnel == nil {
		return nil, ErrFunnelDisabled
	}
	return b.funnel.top(n), nil
}

// spaceSaving is the Metwally et al. space-saving top-k sketch over campaign
// ids past the exact cap: k entries, each carrying the id's gathered count
// (the heavy-hitter weight), its overestimation bound, and a per-disposition
// vector. A new id with the table full replaces the minimum-count entry and
// inherits count min+1 with error min — the classic guarantee that any id
// with true count above the minimum is tracked.
type spaceSaving struct {
	k       int
	entries []sketchEntry
	index   map[int32]int // id → entries index
}

type sketchEntry struct {
	id    int32
	count uint64 // gathered, with inherited overestimate
	err   uint64 // maximum overestimation inherited at replacement
	disp  [numDispositions]uint64
}

// touch records one gathered observation for id. Caller holds the registry
// mutex.
func (s *spaceSaving) touch(id int32) {
	if i, ok := s.index[id]; ok {
		s.entries[i].count++
		return
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, sketchEntry{id: id, count: 1})
		s.index[id] = len(s.entries) - 1
		return
	}
	// Replace the minimum-count entry; the newcomer inherits its count as
	// the overestimation bound and starts a fresh disposition vector.
	mi := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].count < s.entries[mi].count {
			mi = i
		}
	}
	old := &s.entries[mi]
	delete(s.index, old.id)
	min := old.count
	*old = sketchEntry{id: id, count: min + 1, err: min}
	s.index[id] = mi
}

// note records one disposition for id if the sketch still tracks it (a
// disposition for an id evicted since its touch in the same fold is
// dropped — the sketch region is approximate by contract). Caller holds the
// registry mutex.
func (s *spaceSaving) note(id int32, d funnelDisposition) {
	if i, ok := s.index[id]; ok {
		s.entries[i].disp[d]++
	}
}

// registerFunnelMetrics registers the muaa_funnel_* families. The fleet
// per-disposition family is a collector deriving exact totals from the
// registry at scrape time (fleetTotals — always all numDispositions series);
// the per-campaign family is a bounded collector over the funnel's top-N
// heavy hitters, so its label set shifts with traffic while its cardinality
// never exceeds MetricsTopN × (1 + numDispositions) series.
func registerFunnelMetrics(reg *obs.Registry, b *Broker) {
	fr := b.funnel
	reg.NewCounterFunc("muaa_funnel_gathered_total",
		"Candidate campaigns gathered by arrival scans (top of the decision funnel).",
		func() float64 { return float64(fr.gathered.Load()) })
	reg.NewCollectorFunc("muaa_funnel_dispositions_total",
		"Gathered candidates by final funnel disposition, fleet-wide; the dispositions sum to muaa_funnel_gathered_total.",
		"counter",
		func() []obs.Sample {
			tot := fr.fleetTotals()
			out := make([]obs.Sample, 0, numDispositions)
			for d := funnelDisposition(0); d < numDispositions; d++ {
				out = append(out, obs.Sample{
					Labels: []obs.Label{obs.L("disposition", dispositionNames[d])},
					Value:  float64(tot[d]),
				})
			}
			return out
		})
	reg.NewCollectorFunc("muaa_funnel_campaign_total",
		"Decision-funnel counters for the current top campaigns by gathered count (bounded top-N; disposition=\"gathered\" is the funnel top).",
		"counter",
		func() []obs.Sample {
			top := fr.top(fr.metricsTopN)
			out := make([]obs.Sample, 0, len(top)*(1+int(numDispositions)))
			for i := range top {
				fc := &top[i]
				cid := strconv.FormatInt(int64(fc.Campaign), 10)
				out = append(out, obs.Sample{
					Labels: []obs.Label{obs.L("campaign", cid), obs.L("disposition", "gathered")},
					Value:  float64(fc.Gathered),
				})
				disp := fc.dispositions()
				for d := funnelDisposition(0); d < numDispositions; d++ {
					out = append(out, obs.Sample{
						Labels: []obs.Label{obs.L("campaign", cid), obs.L("disposition", dispositionNames[d])},
						Value:  float64(disp[d]),
					})
				}
			}
			return out
		})
}
