package broker

// Decision-funnel tests: disposition attribution per gate, the conservation
// invariant (sum of dispositions == gathered, per campaign and fleet-wide —
// the -race soak CI runs by name), the heavy-hitter sketch past the exact
// cap, the bounded metrics collector, golden-replay neutrality with the
// funnel enabled, and the zero-alloc bar on the instrumented hot path.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/obs"
	"muaa/internal/workload"
)

// funnelBroker builds a broker with funnel attribution on.
func funnelBroker(t *testing.T, cfg Config) *Broker {
	t.Helper()
	cfg.Funnel.Enabled = true
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// conserved asserts one campaign's funnel row sums to its gathered count.
func conserved(t *testing.T, fc FunnelCounts) {
	t.Helper()
	sum := fc.Offered + fc.Paused + fc.Exhausted + fc.TagMismatch + fc.LowScore +
		fc.Unaffordable + fc.BelowThreshold + fc.BelowReserve + fc.Displaced
	if sum != fc.Gathered {
		t.Errorf("campaign %d: dispositions sum %d != gathered %d (%+v)",
			fc.Campaign, sum, fc.Gathered, fc)
	}
}

func TestFunnelDisabledByDefault(t *testing.T) {
	b := newTestBroker(t)
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.1, 10, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CampaignFunnel(0); err != ErrFunnelDisabled {
		t.Errorf("CampaignFunnel on a funnel-less broker: %v, want ErrFunnelDisabled", err)
	}
	if _, err := b.FunnelTop(5); err != ErrFunnelDisabled {
		t.Errorf("FunnelTop on a funnel-less broker: %v, want ErrFunnelDisabled", err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/debug/campaigns/{id}/funnel", b.ServeCampaignFunnel)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/campaigns/0/funnel", nil))
	if rec.Code != 404 {
		t.Fatalf("funnel-disabled GET → %d, want 404", rec.Code)
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("non-JSON error body %q: %v", rec.Body, err)
	}
	if env.Error.Code != "funnel_disabled" {
		t.Errorf("error code %q, want funnel_disabled", env.Error.Code)
	}
}

// TestFunnelAttributionGates drives one arrival shape through a fleet built
// so every campaign lands in a known, distinct gate.
func TestFunnelAttributionGates(t *testing.T) {
	b := funnelBroker(t, Config{AdTypes: workload.DefaultAdTypes()})
	at := geo.Point{X: 0.5, Y: 0.5}
	winner, _ := b.RegisterCampaign(at, 0.1, 1e6, []float64{1, 0})
	loser, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.58}, 0.1, 1e6, []float64{1, 0})
	paused, _ := b.RegisterCampaign(at, 0.1, 1e6, []float64{1, 0})
	mismatch, _ := b.RegisterCampaign(at, 0.1, 1e6, []float64{1, 0, 0.5})
	if err := b.SetPaused(paused, true); err != nil {
		t.Fatal(err)
	}

	const n = 10
	a := Arrival{Loc: at, Capacity: 1, ViewProb: 0.8, Interests: []float64{0.9, 0.1}, Hour: 12}
	for i := 0; i < n; i++ {
		offers, err := b.Arrive(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(offers) != 1 || offers[0].Campaign != winner {
			t.Fatalf("arrival %d offers %+v, want one from campaign %d", i, offers, winner)
		}
	}

	for _, tc := range []struct {
		id   int32
		want func(FunnelCounts) uint64
		name string
	}{
		{winner, func(fc FunnelCounts) uint64 { return fc.Offered }, "offered"},
		// The farther campaign loses every arrival: displaced by the capacity
		// trim once admitted, or below the threshold while γ still tightens.
		{loser, func(fc FunnelCounts) uint64 { return fc.Displaced + fc.BelowThreshold }, "displaced/below_threshold"},
		{paused, func(fc FunnelCounts) uint64 { return fc.Paused }, "paused"},
		{mismatch, func(fc FunnelCounts) uint64 { return fc.TagMismatch }, "tag_mismatch"},
	} {
		fc, err := b.CampaignFunnel(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if fc.Gathered != n || tc.want(fc) != n {
			t.Errorf("campaign %d: gathered %d, %s %d, want both %d (%+v)",
				tc.id, fc.Gathered, tc.name, tc.want(fc), n, fc)
		}
		if fc.Approximate {
			t.Errorf("campaign %d in the exact region flagged approximate", tc.id)
		}
		conserved(t, fc)
	}

	// Unknown campaigns error like every other accessor, funnel enabled or not.
	if _, err := b.CampaignFunnel(99); err == nil || err == ErrFunnelDisabled {
		t.Errorf("unknown campaign: %v, want a not-found error", err)
	}

	// Fleet totals: the winner's arrivals gathered 4 candidates each.
	if got := b.funnel.gathered.Load(); got != 4*n {
		t.Errorf("fleet gathered %d, want %d", got, 4*n)
	}
	var sum uint64
	for _, v := range b.funnel.fleetTotals() {
		sum += v
	}
	if sum != 4*n {
		t.Errorf("fleet disposition sum %d != gathered %d", sum, 4*n)
	}

	// FunnelTop ranks by gathered (all equal here) then ascending id.
	top, err := b.FunnelTop(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Campaign != winner || top[1].Campaign != loser {
		t.Errorf("FunnelTop(2) = %+v, want campaigns %d, %d", top, winner, loser)
	}
}

// TestFunnelExhaustionGate: a drained campaign moves through the funnel's
// budget gates — unaffordable/exhausted while it still has pennies, then
// exhausted (pass A) at zero — and conservation holds throughout.
func TestFunnelExhaustionGate(t *testing.T) {
	b := funnelBroker(t, Config{AdTypes: workload.DefaultAdTypes()})
	id, _ := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.1, 2.5, []float64{1, 0})
	a := Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 2, ViewProb: 0.9,
		Interests: []float64{1, 0}, Hour: 12}
	for i := 0; i < 20; i++ {
		if _, err := b.Arrive(a); err != nil {
			t.Fatal(err)
		}
	}
	fc, err := b.CampaignFunnel(id)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Gathered != 20 || fc.Offered == 0 {
		t.Fatalf("funnel %+v: want 20 gathered with some offers before exhaustion", fc)
	}
	if fc.Exhausted+fc.Unaffordable == 0 {
		t.Errorf("drained campaign never hit a budget gate: %+v", fc)
	}
	conserved(t, fc)
}

// TestFunnelSketchOverflow pins the space-saving region: ids at or past
// ExactCampaigns share the top-k sketch, replacement inherits the evicted
// minimum as the error bound, and reads are flagged approximate.
func TestFunnelSketchOverflow(t *testing.T) {
	fr := newFunnelRegistry(FunnelConfig{ExactCampaigns: 2, TopK: 2})
	fold := func(ids []int32, evs []funnelEvent) {
		ar := &scanArena{}
		ar.ids = ids
		ar.fev = evs
		fr.fold(ar)
	}
	// Exact region: id 1 gathered twice, offered then displaced.
	fold([]int32{1}, []funnelEvent{{id: 1, disp: dispOffered}})
	fold([]int32{1}, []funnelEvent{{id: 1, disp: dispDisplaced}})
	fc, ok := fr.campaignCounts(1)
	if !ok || fc.Gathered != 2 || fc.Offered != 1 || fc.Displaced != 1 || fc.Approximate {
		t.Fatalf("exact row = %+v ok=%v", fc, ok)
	}

	// Overflow: ids 5 and 6 fill the k=2 sketch.
	for i := 0; i < 5; i++ {
		fold([]int32{5}, []funnelEvent{{id: 5, disp: dispBelowThreshold}})
	}
	for i := 0; i < 3; i++ {
		fold([]int32{6}, []funnelEvent{{id: 6, disp: dispOffered}})
	}
	fc, ok = fr.campaignCounts(5)
	if !ok || !fc.Approximate || fc.Gathered != 5 || fc.BelowThreshold != 5 || fc.CountError != 0 {
		t.Fatalf("sketch row 5 = %+v ok=%v", fc, ok)
	}

	// Id 7 arrives with the sketch full: it replaces the minimum (id 6,
	// count 3), inheriting count min+1 = 4 with error bound min = 3.
	fold([]int32{7}, []funnelEvent{{id: 7, disp: dispPaused}})
	fc, ok = fr.campaignCounts(7)
	if !ok || fc.Gathered != 4 || fc.CountError != 3 || fc.Paused != 1 {
		t.Fatalf("replacement row 7 = %+v ok=%v", fc, ok)
	}
	if fc.Offered != 0 {
		t.Errorf("replacement inherited the evicted disposition vector: %+v", fc)
	}
	// The evicted id reads as zeros, explicitly approximate.
	fc, ok = fr.campaignCounts(6)
	if ok || !fc.Approximate || fc.Gathered != 0 {
		t.Fatalf("evicted row 6 = %+v ok=%v, want untracked zeros", fc, ok)
	}

	// top merges exact rows and sketch entries: gathered desc, id asc.
	top := fr.top(10)
	if len(top) != 3 {
		t.Fatalf("top = %+v, want 3 tracked campaigns", top)
	}
	if top[0].Campaign != 5 || top[1].Campaign != 7 || top[2].Campaign != 1 {
		t.Errorf("top order = [%d %d %d], want [5 7 1]",
			top[0].Campaign, top[1].Campaign, top[2].Campaign)
	}
	if got := fr.top(1); len(got) != 1 || got[0].Campaign != 5 {
		t.Errorf("top(1) = %+v, want just campaign 5", got)
	}
	if fr.top(0) != nil {
		t.Error("top(0) should be nil")
	}
}

// TestFunnelMetricsExposition: the muaa_funnel_* families land in the obs
// registry — exact fleet totals whose dispositions sum to gathered, and the
// bounded per-campaign collector.
func TestFunnelMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	b := funnelBroker(t, Config{AdTypes: workload.DefaultAdTypes(), Metrics: reg})
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.1, 1e6, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	a := Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.8,
		Interests: []float64{1, 0}, Hour: 12}
	for i := 0; i < 7; i++ {
		if _, err := b.Arrive(a); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"muaa_funnel_gathered_total 7",
		`muaa_funnel_dispositions_total{disposition="offered"} 7`,
		`muaa_funnel_dispositions_total{disposition="below_threshold"} 0`,
		`muaa_funnel_campaign_total{campaign="0",disposition="gathered"} 7`,
		`muaa_funnel_campaign_total{campaign="0",disposition="offered"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestFunnelConservationSoak is the -race conservation gate: under
// concurrent mixed traffic — on both the legacy and the slate scan path —
// every campaign's dispositions sum exactly to its gathered count, and the
// fleet-wide totals agree with the per-campaign rows.
func TestFunnelConservationSoak(t *testing.T) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	opsPerWorker := 300
	if testing.Short() {
		workers, opsPerWorker = 4, 80
	}
	const campaigns = 40

	for _, tc := range []struct {
		name   string
		load   workload.BrokerLoadConfig
		billed bool
	}{
		{"legacy", workload.DefaultBrokerLoadConfig(campaigns, workers*opsPerWorker, 77), false},
		{"slate", workload.BilledBrokerLoadConfig(campaigns, workers*opsPerWorker, 78), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			specs, ops, err := workload.BrokerLoad(tc.load)
			if err != nil {
				t.Fatal(err)
			}
			b := funnelBroker(t, Config{AdTypes: workload.DefaultAdTypes(), Shards: 8})
			registerLoad(t, b, specs)

			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var open []uint64
					for i := w; i < len(ops); i += workers {
						if tc.billed {
							applyBilledOp(t, b, ops[i], &open)
						} else {
							applyOp(t, b, ops[i])
						}
					}
				}(w)
			}
			wg.Wait()

			var gatheredSum, dispSum uint64
			for id := int32(0); id < campaigns; id++ {
				fc, err := b.CampaignFunnel(id)
				if err != nil {
					t.Fatal(err)
				}
				conserved(t, fc)
				gatheredSum += fc.Gathered
				dispSum += fc.Offered + fc.Paused + fc.Exhausted + fc.TagMismatch +
					fc.LowScore + fc.Unaffordable + fc.BelowThreshold +
					fc.BelowReserve + fc.Displaced
			}
			fleet := b.funnel.gathered.Load()
			if gatheredSum != fleet {
				t.Errorf("per-campaign gathered sum %d != fleet gathered %d", gatheredSum, fleet)
			}
			var totals uint64
			for _, v := range b.funnel.fleetTotals() {
				totals += v
			}
			if totals != fleet || dispSum != fleet {
				t.Errorf("fleet disposition totals %d / per-campaign %d != gathered %d",
					totals, dispSum, fleet)
			}
			if fleet == 0 {
				t.Error("soak gathered nothing; load shape is wrong")
			}
		})
	}
}

// TestReplayMatchesGoldenFunnelEnabled: funnel attribution is
// observation-only — the golden transcript with the funnel (and metrics)
// enabled is byte-identical to the uninstrumented reference.
func TestReplayMatchesGoldenFunnelEnabled(t *testing.T) {
	cfg := Config{AdTypes: workload.DefaultAdTypes(), Metrics: obs.NewRegistry(),
		Funnel: FunnelConfig{Enabled: true}}
	got := replayTranscript(t, cfg, 32, 3000, 42)
	want, err := os.ReadFile(filepath.Join("testdata", "replay_default.golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	if got != string(want) {
		t.Fatalf("funnel attribution changed the replay transcript (%d vs %d bytes, first diff at byte %d)",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

// TestArriveAppendZeroAllocsFunnel holds the allocation bar with the funnel
// recording: the event slice is arena scratch and the exact-region fold is
// lock-free, so a warm serial arrival still allocates nothing.
func TestArriveAppendZeroAllocsFunnel(t *testing.T) {
	b := funnelBroker(t, Config{AdTypes: workload.DefaultAdTypes()})
	for i := 0; i < 64; i++ {
		x := float64(i%8)/8 + 0.05
		y := float64(i/8)/8 + 0.05
		if _, err := b.RegisterCampaign(geo.Point{X: x, Y: y}, 0.15, 1e9, []float64{1, 0.5, 1}); err != nil {
			t.Fatal(err)
		}
	}
	a := Arrival{Loc: geo.Point{X: 0.4, Y: 0.4}, Capacity: 2, ViewProb: 0.8,
		Interests: []float64{1, 0.5, 1}, Hour: 12}
	dst := make([]Offer, 0, 16)
	for i := 0; i < 16; i++ {
		out, err := b.ArriveAppend(dst[:0], a)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, err := b.ArriveAppend(dst[:0], a)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("funnel-enabled serial arrival allocates %v times per op, want 0", allocs)
	}
}
