package broker

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/workload"
)

// Fuzzers assert the HTTP layer never panics and never turns malformed
// client input into a 5xx: arbitrary bodies must come back as 4xx, and
// anything accepted must produce a well-formed JSON response. Run with
// `go test -fuzz FuzzPostArrival ./internal/broker` for a real campaign;
// under plain `go test` the seed corpus below runs as unit cases (the same
// contract internal/persist's loader fuzzers pin for file input).

func fuzzAPI(tb testing.TB) *API {
	tb.Helper()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 50, []float64{1, 0, 0.3}); err != nil {
		tb.Fatal(err)
	}
	return NewAPI(b)
}

func fuzzPost(tb testing.TB, api *API, path, body string) *httptest.ResponseRecorder {
	tb.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	return rec
}

func FuzzPostCampaign(f *testing.F) {
	f.Add(`{"loc":{"x":0.5,"y":0.5},"radius":0.1,"budget":20,"tags":[1,0,0.2]}`)
	f.Add(`{"loc":{"x":-3,"y":9},"radius":-1,"budget":20}`)
	f.Add(`{"radius":1e308,"budget":1e308}`)
	f.Add(`{"budget":"NaN"}`)
	f.Add(`{"unknown":true}`)
	f.Add(`{nope`)
	f.Add(``)
	f.Add(`null`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, body string) {
		api := fuzzAPI(t)
		rec := fuzzPost(t, api, "/campaigns", body)
		if rec.Code >= 500 {
			t.Fatalf("POST /campaigns %q → %d (server error on client input)", body, rec.Code)
		}
		if rec.Code == 201 {
			var resp campaignResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("accepted campaign returned malformed body %q: %v", rec.Body, err)
			}
			// The new campaign must be immediately readable.
			if _, err := api.broker.CampaignState(resp.ID); err != nil {
				t.Fatalf("created campaign %d not readable: %v", resp.ID, err)
			}
		}
	})
}

func FuzzPostArrival(f *testing.F) {
	f.Add(`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`)
	f.Add(`{"loc":{"x":0.5,"y":0.5},"capacity":-1,"viewProb":0.5}`)
	f.Add(`{"viewProb":2}`)
	f.Add(`{"capacity":1,"viewProb":"NaN"}`)
	f.Add(`{"hour":-99,"capacity":1000000,"viewProb":1}`)
	f.Add(`{nope`)
	f.Add(``)
	f.Add(`null`)
	f.Add(`0`)
	f.Fuzz(func(t *testing.T, body string) {
		api := fuzzAPI(t)
		rec := fuzzPost(t, api, "/arrivals", body)
		if rec.Code >= 500 {
			t.Fatalf("POST /arrivals %q → %d (server error on client input)", body, rec.Code)
		}
		if rec.Code == 200 {
			var resp arrivalResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("accepted arrival returned malformed body %q: %v", rec.Body, err)
			}
			for _, o := range resp.Offers {
				if o.Cost <= 0 || o.AdTypeName == "" {
					t.Fatalf("accepted arrival produced malformed offer %+v", o)
				}
			}
		}
	})
}

// FuzzPostArrivalBatch pins the batch endpoint's contract under arbitrary
// input: transport-level garbage is 4xx, an accepted batch answers with
// exactly one result per submitted arrival, and every result is either an
// offers array or an error envelope — never both, never neither.
func FuzzPostArrivalBatch(f *testing.F) {
	f.Add(`[{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}]`)
	f.Add(`[{"capacity":1,"viewProb":0.5},{"capacity":-1},{"viewProb":2}]`)
	f.Add(`[]`)
	f.Add(`[{}]`)
	f.Add(`{"loc":{"x":0.5,"y":0.5}}`)
	f.Add(`[{"unknown":1}]`)
	f.Add(`[null]`)
	f.Add(`null`)
	f.Add(`[{nope`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		api := fuzzAPI(t)
		rec := fuzzPost(t, api, "/v1/arrivals:batch", body)
		if rec.Code >= 500 {
			t.Fatalf("POST /v1/arrivals:batch %q → %d (server error on client input)", body, rec.Code)
		}
		if rec.Code != 200 {
			return
		}
		var submitted []arrivalRequest
		if err := json.Unmarshal([]byte(body), &submitted); err != nil {
			t.Fatalf("batch accepted but request %q does not re-parse: %v", body, err)
		}
		var resp arrivalBatchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("accepted batch returned malformed body %q: %v", rec.Body, err)
		}
		if len(resp.Results) != len(submitted) {
			t.Fatalf("batch of %d arrivals answered with %d results", len(submitted), len(resp.Results))
		}
		for i, res := range resp.Results {
			if (res.Offers == nil) == (res.Error == nil) {
				t.Fatalf("result %d is not exactly-one-of offers/error: %+v", i, res)
			}
		}
	})
}

// FuzzPostExplain hardens the debug explain endpoint: it accepts the same
// arrival shape as /arrivals but runs the read-only replay path, so the
// contract is the same — garbage is 4xx, never 5xx, and every 200 is a
// well-formed report whose candidate count matches its gathered counter.
func FuzzPostExplain(f *testing.F) {
	f.Add(`{"loc":{"x":0.49,"y":0.51},"capacity":2,"viewProb":0.7,"interests":[0.9,0.1,0.3]}`)
	f.Add(`{"loc":{"x":0.5,"y":0.5},"capacity":0,"viewProb":0.5}`)
	f.Add(`{"loc":{"x":0.5,"y":0.5},"capacity":-1,"viewProb":0.5}`)
	f.Add(`{"viewProb":2}`)
	f.Add(`{"capacity":1,"viewProb":"NaN"}`)
	f.Add(`{"hour":-99,"capacity":1000000,"viewProb":1}`)
	f.Add(`{"unknown":true}`)
	f.Add(`{nope`)
	f.Add(``)
	f.Add(`null`)
	f.Fuzz(func(t *testing.T, body string) {
		b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Funnel: FunnelConfig{Enabled: true}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 50, []float64{1, 0, 0.3}); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/v1/debug/explain", strings.NewReader(body))
		rec := httptest.NewRecorder()
		b.ServeExplain(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("POST /v1/debug/explain %q → %d (server error on client input)", body, rec.Code)
		}
		if rec.Code == 200 {
			var rep ExplainReport
			if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
				t.Fatalf("accepted explain returned malformed body %q: %v", rec.Body, err)
			}
			if len(rep.Candidates) != rep.Gathered {
				t.Fatalf("explain report gathered=%d but carries %d candidates", rep.Gathered, len(rep.Candidates))
			}
		}
	})
}

// FuzzPostTopUp covers the path-parameter endpoints: arbitrary IDs and
// bodies must map to 4xx/404, never 5xx.
func FuzzPostTopUp(f *testing.F) {
	f.Add("0", `{"amount":5}`)
	f.Add("99", `{"amount":5}`)
	f.Add("-1", `{"amount":-5}`)
	f.Add("abc", `{}`)
	f.Add("0", `{nope`)
	f.Add("007", ``)
	f.Fuzz(func(t *testing.T, id, body string) {
		api := fuzzAPI(t)
		rec := fuzzPost(t, api, "/campaigns/"+sanitizePath(id)+"/topup", body)
		if rec.Code >= 500 {
			t.Fatalf("POST /campaigns/%s/topup %q → %d", id, body, rec.Code)
		}
	})
}

// FuzzHTTPSurface exercises the request-hardening layer: arbitrary
// methods, paths, Content-Types and bodies (including oversized ones) must
// map to clean 4xx responses — never a 5xx, never a panic — and every 405
// must advertise Allow.
func FuzzHTTPSurface(f *testing.F) {
	f.Add("GET", "/arrivals", "application/json", `{}`)
	f.Add("DELETE", "/v1/campaigns", "", ``)
	f.Add("PUT", "/v1/topup", "application/json", `{"id":0,"amount":1}`)
	f.Add("POST", "/v1/arrivals", "text/plain", `{"capacity":1}`)
	f.Add("POST", "/arrivals", "application/x-www-form-urlencoded", `capacity=1`)
	f.Add("PATCH", "/campaigns/0/pause", "application/json", `{"paused":true}`)
	f.Add("POST", "/v1/campaigns", "application/json", `{"tags":[`+strings.Repeat("0,", 1<<17)+`0]}`)
	f.Add("OPTIONS", "/v1/stats", "", ``)
	f.Add("HEAD", "/map.svg", "", ``)
	f.Add("TRACE", "/no/such/route", "garbage/ct; ;;", `x`)
	f.Fuzz(func(t *testing.T, method, path, ct, body string) {
		api := fuzzAPI(t)
		req := httptest.NewRequest(sanitizeMethod(method), sanitizeFullPath(path), strings.NewReader(body))
		if ct != "" {
			req.Header.Set("Content-Type", sanitizeHeader(ct))
		}
		rec := httptest.NewRecorder()
		api.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("%s %s (ct %q) → %d (server error on client input)", method, path, ct, rec.Code)
		}
		if rec.Code == 405 && rec.Header().Get("Allow") == "" {
			t.Fatalf("%s %s → 405 without an Allow header", method, path)
		}
	})
}

// sanitizeMethod maps arbitrary fuzz input onto a token NewRequest accepts.
func sanitizeMethod(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z' {
			sb.WriteRune(r)
		}
	}
	if sb.Len() == 0 {
		return "GET"
	}
	return strings.ToUpper(sb.String())
}

// sanitizeFullPath keeps a fuzzed request target parseable by NewRequest
// while preserving its path structure (slashes stay).
func sanitizeFullPath(s string) string {
	var sb strings.Builder
	sb.WriteByte('/')
	for _, r := range strings.TrimPrefix(s, "/") {
		if r > 0x20 && r != '?' && r != '#' && r != '%' && r < 0x7f {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// sanitizeHeader strips bytes that would make Header.Set panic.
func sanitizeHeader(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 0x20 && r < 0x7f {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// sanitizePath keeps fuzzed path segments parseable by the mux (no slashes,
// spaces or control bytes that would make NewRequest panic or re-route).
func sanitizePath(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r > 0x20 && r != '/' && r != '?' && r != '#' && r != '%' && r < 0x7f {
			sb.WriteRune(r)
		}
	}
	if sb.Len() == 0 {
		return "x"
	}
	return sb.String()
}
