package broker

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/viz"
)

// API is the JSON/HTTP front end of a Broker. Endpoints:
//
//	POST /campaigns            {loc, radius, budget, tags}        → {id}
//	GET  /campaigns                                               → all campaign states
//	POST /campaigns/{id}/topup {amount}                           → {ok}
//	POST /campaigns/{id}/pause {paused}                           → {ok}
//	GET  /campaigns/{id}                                          → campaign state
//	POST /arrivals             {loc, capacity, viewProb, ...}     → {offers}
//	GET  /stats                                                   → counters
//	GET  /map.svg                                                 → live campaign map
//
// All bodies and responses are JSON. Errors use standard HTTP status codes
// with a {"error": ...} body.
type API struct {
	broker *Broker
	mux    *http.ServeMux
}

// NewAPI wraps a broker in its HTTP handler.
func NewAPI(b *Broker) *API {
	a := &API{broker: b, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /campaigns", a.postCampaign)
	a.mux.HandleFunc("GET /campaigns", a.listCampaigns)
	a.mux.HandleFunc("POST /campaigns/{id}/topup", a.postTopUp)
	a.mux.HandleFunc("POST /campaigns/{id}/pause", a.postPause)
	a.mux.HandleFunc("GET /campaigns/{id}", a.getCampaign)
	a.mux.HandleFunc("POST /arrivals", a.postArrival)
	a.mux.HandleFunc("GET /stats", a.getStats)
	a.mux.HandleFunc("GET /map.svg", a.getMap)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// pointDTO is the wire form of a location.
type pointDTO struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type campaignRequest struct {
	Loc    pointDTO  `json:"loc"`
	Radius float64   `json:"radius"`
	Budget float64   `json:"budget"`
	Tags   []float64 `json:"tags"`
}

type campaignResponse struct {
	ID int32 `json:"id"`
}

type campaignStateResponse struct {
	ID        int32     `json:"id"`
	Loc       pointDTO  `json:"loc"`
	Radius    float64   `json:"radius"`
	Budget    float64   `json:"budget"`
	Spent     float64   `json:"spent"`
	Remaining float64   `json:"remaining"`
	Paused    bool      `json:"paused"`
	Tags      []float64 `json:"tags,omitempty"`
}

type topUpRequest struct {
	Amount float64 `json:"amount"`
}

type pauseRequest struct {
	Paused bool `json:"paused"`
}

type arrivalRequest struct {
	Loc       pointDTO  `json:"loc"`
	Capacity  int       `json:"capacity"`
	ViewProb  float64   `json:"viewProb"`
	Interests []float64 `json:"interests"`
	Hour      float64   `json:"hour"`
}

type offerDTO struct {
	Campaign   int32   `json:"campaign"`
	AdType     int     `json:"adType"`
	AdTypeName string  `json:"adTypeName"`
	Utility    float64 `json:"utility"`
	Efficiency float64 `json:"efficiency"`
	Cost       float64 `json:"cost"`
}

type arrivalResponse struct {
	Offers []offerDTO `json:"offers"`
}

func (a *API) postCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := a.broker.RegisterCampaign(geo.Point{X: req.Loc.X, Y: req.Loc.Y}, req.Radius, req.Budget, req.Tags)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, campaignResponse{ID: id})
}

func (a *API) postTopUp(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var req topUpRequest
	if !decode(w, r, &req) {
		return
	}
	if err := a.broker.TopUp(id, req.Amount); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (a *API) postPause(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var req pauseRequest
	if !decode(w, r, &req) {
		return
	}
	if err := a.broker.SetPaused(id, req.Paused); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (a *API) listCampaigns(w http.ResponseWriter, r *http.Request) {
	campaigns := a.broker.Campaigns()
	out := make([]campaignStateResponse, 0, len(campaigns))
	for _, c := range campaigns {
		out = append(out, campaignStateResponse{
			ID: c.ID, Loc: pointDTO{c.Loc.X, c.Loc.Y}, Radius: c.Radius,
			Budget: c.Budget, Spent: c.Spent, Remaining: c.Remaining(),
			Paused: c.Paused,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) getCampaign(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	c, err := a.broker.CampaignState(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, campaignStateResponse{
		ID: c.ID, Loc: pointDTO{c.Loc.X, c.Loc.Y}, Radius: c.Radius,
		Budget: c.Budget, Spent: c.Spent, Remaining: c.Remaining(),
		Paused: c.Paused, Tags: c.Tags,
	})
}

func (a *API) postArrival(w http.ResponseWriter, r *http.Request) {
	var req arrivalRequest
	if !decode(w, r, &req) {
		return
	}
	offers, err := a.broker.Arrive(Arrival{
		Loc:       geo.Point{X: req.Loc.X, Y: req.Loc.Y},
		Capacity:  req.Capacity,
		ViewProb:  req.ViewProb,
		Interests: req.Interests,
		Hour:      req.Hour,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := arrivalResponse{Offers: make([]offerDTO, 0, len(offers))}
	for _, o := range offers {
		resp.Offers = append(resp.Offers, offerDTO{
			Campaign: o.Campaign, AdType: o.AdType,
			AdTypeName: a.broker.cfg.AdTypes[o.AdType].Name,
			Utility:    o.Utility, Efficiency: o.Efficiency, Cost: o.Cost,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) getStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.broker.Stats())
}

// getMap renders the current campaign state as an SVG map: each campaign's
// advertising disk with budget-sized markers (spent budget dims the marker
// via the viz renderer's budget scaling on Remaining()).
func (a *API) getMap(w http.ResponseWriter, r *http.Request) {
	campaigns := a.broker.Campaigns()
	view := &model.Problem{AdTypes: a.broker.cfg.AdTypes}
	for _, c := range campaigns {
		view.Vendors = append(view.Vendors, model.Vendor{
			ID:     c.ID,
			Loc:    c.Loc,
			Radius: c.Radius,
			Budget: c.Remaining(),
		})
	}
	st := a.broker.Stats()
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_ = viz.SVG(w, view, nil, viz.Options{
		ShowRanges: true,
		Title: fmt.Sprintf("%d campaigns — %d arrivals, %d offers, %.2f utility served",
			st.Campaigns, st.Arrivals, st.OffersPushed, st.UtilityServed),
	})
}

func pathID(w http.ResponseWriter, r *http.Request) (int32, bool) {
	var id int32
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("broker: bad campaign id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("broker: bad request body: %w", err))
		return false
	}
	return true
}

// writeJSON is the single funnel for every JSON response (success and
// error): the explicit Content-Type plus nosniff is a contract the
// monitoring docs advertise to scrapers, pinned by TestJSONContentType.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func statusFor(err error) int {
	// Unknown-campaign errors map to 404; everything else is a bad request.
	if err != nil && strings.Contains(err.Error(), "unknown campaign") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}
