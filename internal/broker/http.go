package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"sort"
	"strings"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/trace"
	"muaa/internal/viz"
)

// API is the JSON/HTTP front end of a Broker. The canonical surface is
// versioned under /v1; every route is also registered at its legacy
// unversioned path as a thin alias, so pre-/v1 clients keep working:
//
//	POST /v1/campaigns                 {loc, radius, budget, tags, billing?} → {id}
//	GET  /v1/campaigns                                                      → all campaign states
//	GET  /v1/campaigns/{id}                                                 → campaign state
//	GET  /v1/campaigns/{id}/billing                                         → billing contract + escrow state
//	POST /v1/campaigns/{id}/topup      {amount}                             → {ok}
//	POST /v1/campaigns/{id}/pause      {paused}                             → {ok}
//	POST /v1/topup                     {id, amount}                         → {ok}
//	POST /v1/arrivals                  {loc, capacity, viewProb, ...}       → {offers, slate}
//	POST /v1/arrivals:batch            [{loc, ...}, ...]                    → {results}
//	POST /v1/events                    {offer_id, idempotency_key?}         → conversion receipt
//	GET  /v1/stats                                                          → counters
//	GET  /v1/map.svg                                                        → live campaign map
//
// All bodies and responses are JSON. POST bodies are capped at 1 MiB
// (413 beyond it) and a non-JSON Content-Type is rejected with 415; a
// missing Content-Type is accepted. A method the path doesn't serve gets
// 405 with an Allow header. Every error, on every path, old or new, is
// the uniform envelope
//
//	{"error": {"code": "...", "message": "..."}}
//
// with a machine-readable code (bad_request, not_found, conflict,
// method_not_allowed, unsupported_media_type, payload_too_large,
// unavailable) beside the human-readable message.
type API struct {
	broker *Broker
	mux    *http.ServeMux
	// routes lists every versioned path the mux serves, in registration
	// order; see Routes.
	routes []string
}

// maxBodyBytes caps every request body the API reads.
const maxBodyBytes = 1 << 20

// maxBatchArrivals caps the number of arrivals one /v1/arrivals:batch
// request may carry; a longer array is rejected whole with 400.
const maxBatchArrivals = 1024

// NewAPI wraps a broker in its HTTP handler.
func NewAPI(b *Broker) *API {
	a := &API{broker: b, mux: http.NewServeMux()}
	a.handle("/campaigns", map[string]http.HandlerFunc{
		http.MethodPost: a.postCampaign,
		http.MethodGet:  a.listCampaigns,
	})
	a.handle("/campaigns/{id}", map[string]http.HandlerFunc{
		http.MethodGet: a.getCampaign,
	})
	a.handle("/campaigns/{id}/billing", map[string]http.HandlerFunc{
		http.MethodGet: a.getCampaignBilling,
	})
	a.handle("/campaigns/{id}/topup", map[string]http.HandlerFunc{
		http.MethodPost: a.postTopUp,
	})
	a.handle("/campaigns/{id}/pause", map[string]http.HandlerFunc{
		http.MethodPost: a.postPause,
	})
	a.handle("/topup", map[string]http.HandlerFunc{
		http.MethodPost: a.postFlatTopUp,
	})
	a.handle("/arrivals", map[string]http.HandlerFunc{
		http.MethodPost: a.postArrival,
	})
	a.handle("/arrivals:batch", map[string]http.HandlerFunc{
		http.MethodPost: a.postArrivalBatch,
	})
	a.handle("/events", map[string]http.HandlerFunc{
		http.MethodPost: a.postEvent,
	})
	a.handle("/stats", map[string]http.HandlerFunc{
		http.MethodGet: a.getStats,
	})
	a.handle("/map.svg", map[string]http.HandlerFunc{
		http.MethodGet: a.getMap,
	})
	a.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no route for %s", r.URL.Path))
	})
	return a
}

// handle registers one method-dispatched route at its /v1 path and its
// legacy unversioned alias. Dispatching methods here (not in ServeMux
// patterns) keeps 405 responses in the uniform envelope while still
// advertising Allow.
func (a *API) handle(path string, methods map[string]http.HandlerFunc) {
	h := methodHandler(methods)
	a.mux.Handle("/v1"+path, h)
	a.mux.Handle(path, h)
	a.routes = append(a.routes, "/v1"+path)
}

// Routes returns every versioned path the API serves (the /v1 forms, not
// the legacy aliases), in registration order. The documentation coverage
// test uses it to assert docs/API.md mentions every route.
func (a *API) Routes() []string {
	out := make([]string, len(a.routes))
	copy(out, a.routes)
	return out
}

func methodHandler(methods map[string]http.HandlerFunc) http.Handler {
	names := make([]string, 0, len(methods))
	for m := range methods {
		names = append(names, m)
	}
	sort.Strings(names)
	allow := strings.Join(names, ", ")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, ok := methods[r.Method]
		if !ok {
			w.Header().Set("Allow", allow)
			WriteError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("method %s not allowed; allowed: %s", r.Method, allow))
			return
		}
		h(w, r)
	})
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// pointDTO is the wire form of a location.
type pointDTO struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type campaignRequest struct {
	Loc    pointDTO  `json:"loc"`
	Radius float64   `json:"radius"`
	Budget float64   `json:"budget"`
	Tags   []float64 `json:"tags"`
	// Delivery class (optional; defaults to best-effort). floor and penalty
	// require guaranteed: true — see Broker.RegisterCampaignSpec.
	Guaranteed bool    `json:"guaranteed,omitempty"`
	Floor      float64 `json:"floor,omitempty"`
	Penalty    float64 `json:"penalty,omitempty"`
	// Billing selects the campaign's billing contract (optional; absent means
	// seed-compatible fixed-cost billing).
	Billing *billingDTO `json:"billing,omitempty"`
}

// billingDTO is the wire form of a billing contract, on registration
// requests and in the /v1/campaigns/{id}/billing response.
type billingDTO struct {
	Model       string  `json:"model"`
	ReserveECPM float64 `json:"reserve_ecpm,omitempty"`
	// EventRate is the expected conversions-per-impression rate used to
	// normalize CPC/CPA bids to eCPM; ignored for fixed and cpm.
	EventRate float64 `json:"event_rate,omitempty"`
}

// campaignBillingResponse is the GET /v1/campaigns/{id}/billing body: the
// registered contract plus the campaign's live escrow and conversion state.
type campaignBillingResponse struct {
	ID      int32      `json:"id"`
	Billing billingDTO `json:"billing"`
	// Escrow is the budget currently held against open CPC/CPA offers;
	// Converted the revenue collected by conversions, Conversions their count.
	Escrow      float64 `json:"escrow"`
	Converted   float64 `json:"converted"`
	Conversions int64   `json:"conversions"`
}

type campaignResponse struct {
	ID int32 `json:"id"`
}

type campaignStateResponse struct {
	ID         int32     `json:"id"`
	Loc        pointDTO  `json:"loc"`
	Radius     float64   `json:"radius"`
	Budget     float64   `json:"budget"`
	Spent      float64   `json:"spent"`
	Remaining  float64   `json:"remaining"`
	Paused     bool      `json:"paused"`
	Tags       []float64 `json:"tags,omitempty"`
	Guaranteed bool      `json:"guaranteed,omitempty"`
	Floor      float64   `json:"floor,omitempty"`
	Penalty    float64   `json:"penalty,omitempty"`
	// Rate is the pacing controller's current spend-rate cap; omitted (1)
	// when uncapped.
	Rate float64 `json:"rate,omitempty"`
}

// stateResponse converts a campaign snapshot to its wire form.
func stateResponse(c Campaign, withTags bool) campaignStateResponse {
	out := campaignStateResponse{
		ID: c.ID, Loc: pointDTO{c.Loc.X, c.Loc.Y}, Radius: c.Radius,
		Budget: c.Budget, Spent: c.Spent, Remaining: c.Remaining(),
		Paused: c.Paused, Guaranteed: c.Guaranteed, Floor: c.Floor,
		Penalty: c.Penalty,
	}
	if withTags {
		out.Tags = c.Tags
	}
	if c.Rate != 1 {
		out.Rate = c.Rate
	}
	return out
}

type topUpRequest struct {
	Amount float64 `json:"amount"`
}

type flatTopUpRequest struct {
	ID     int32   `json:"id"`
	Amount float64 `json:"amount"`
}

type pauseRequest struct {
	Paused bool `json:"paused"`
}

type arrivalRequest struct {
	Loc       pointDTO  `json:"loc"`
	Capacity  int       `json:"capacity"`
	ViewProb  float64   `json:"viewProb"`
	Interests []float64 `json:"interests"`
	Hour      float64   `json:"hour"`
}

type offerDTO struct {
	Campaign   int32   `json:"campaign"`
	AdType     int     `json:"adType"`
	AdTypeName string  `json:"adTypeName"`
	Utility    float64 `json:"utility"`
	Efficiency float64 `json:"efficiency"`
	Cost       float64 `json:"cost"`
	// Billing fields, present only for offers from campaigns on auction
	// billing: offer_id identifies an escrowed CPC/CPA offer for
	// POST /v1/events, charge_ecpm is the second-priced auction charge and
	// model the campaign's billing model.
	OfferID    uint64  `json:"offer_id,omitempty"`
	ChargeECPM float64 `json:"charge_ecpm,omitempty"`
	Model      string  `json:"model,omitempty"`
}

// slateEntryDTO is one slot of the ordered slate view: the winning
// (vendor, ad-type) pair and its eCPM-normalized charge. For fixed-cost
// offers (no auction) the charge is the catalog cost normalized to eCPM.
type slateEntryDTO struct {
	Vendor     int32   `json:"vendor"`
	AdType     int     `json:"ad_type"`
	ChargeECPM float64 `json:"charge_ecpm"`
	OfferID    uint64  `json:"offer_id,omitempty"`
}

type arrivalResponse struct {
	Offers []offerDTO `json:"offers"`
	// Slate mirrors offers in slot order as (vendor, ad_type, charge_ecpm)
	// triples — the MCKP slate view of the same decision.
	Slate []slateEntryDTO `json:"slate"`
}

// batchResultDTO is one element of the arrivals:batch response, aligned by
// index with the request array. Exactly one of the two fields is set:
// offers (possibly empty) for an accepted arrival, error for a rejected
// one — rejection is per element, the rest of the batch still runs.
type batchResultDTO struct {
	Offers *[]offerDTO `json:"offers,omitempty"`
	Error  *errorBody  `json:"error,omitempty"`
}

type arrivalBatchResponse struct {
	Results []batchResultDTO `json:"results"`
}

func (a *API) postCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if !decode(w, r, &req) {
		return
	}
	var billing model.Billing
	if req.Billing != nil {
		m, err := model.ParseBillingModel(req.Billing.Model)
		if err != nil {
			WriteError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("broker: %v", err))
			return
		}
		billing = model.Billing{
			Model:       m,
			ReserveECPM: req.Billing.ReserveECPM,
			EventRate:   req.Billing.EventRate,
		}
	}
	id, err := a.broker.RegisterCampaignSpec(CampaignSpec{
		Loc: geo.Point{X: req.Loc.X, Y: req.Loc.Y}, Radius: req.Radius,
		Budget: req.Budget, Tags: req.Tags,
		Guaranteed: req.Guaranteed, Floor: req.Floor, Penalty: req.Penalty,
		Billing: billing,
	})
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, campaignResponse{ID: id})
}

func (a *API) postTopUp(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var req topUpRequest
	if !decode(w, r, &req) {
		return
	}
	a.finishTopUp(w, id, req.Amount)
}

// postFlatTopUp is the /v1-native top-up: the campaign id travels in the
// body instead of the path.
func (a *API) postFlatTopUp(w http.ResponseWriter, r *http.Request) {
	var req flatTopUpRequest
	if !decode(w, r, &req) {
		return
	}
	a.finishTopUp(w, req.ID, req.Amount)
}

func (a *API) finishTopUp(w http.ResponseWriter, id int32, amount float64) {
	if err := a.broker.TopUp(id, amount); err != nil {
		status, code := statusFor(err)
		WriteError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (a *API) postPause(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	var req pauseRequest
	if !decode(w, r, &req) {
		return
	}
	if err := a.broker.SetPaused(id, req.Paused); err != nil {
		status, code := statusFor(err)
		WriteError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (a *API) listCampaigns(w http.ResponseWriter, r *http.Request) {
	campaigns := a.broker.Campaigns()
	out := make([]campaignStateResponse, 0, len(campaigns))
	for _, c := range campaigns {
		out = append(out, stateResponse(c, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) getCampaign(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	c, err := a.broker.CampaignState(id)
	if err != nil {
		status, code := statusFor(err)
		WriteError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, stateResponse(c, true))
}

func (a *API) postArrival(w http.ResponseWriter, r *http.Request) {
	var req arrivalRequest
	if !decode(w, r, &req) {
		return
	}
	offers, err := a.broker.ArriveTraced(Arrival{
		Loc:       geo.Point{X: req.Loc.X, Y: req.Loc.Y},
		Capacity:  req.Capacity,
		ViewProb:  req.ViewProb,
		Interests: req.Interests,
		Hour:      req.Hour,
	}, trace.FromContext(r.Context()))
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	resp := arrivalResponse{
		Offers: make([]offerDTO, 0, len(offers)),
		Slate:  make([]slateEntryDTO, 0, len(offers)),
	}
	for _, o := range offers {
		resp.Offers = append(resp.Offers, a.offerToDTO(o))
		resp.Slate = append(resp.Slate, slateEntry(o))
	}
	writeJSON(w, http.StatusOK, resp)
}

// offerToDTO builds the wire form of one committed offer. The billing
// fields appear only for auction-billed offers, so fixed-cost responses
// keep the seed schema byte-for-byte.
func (a *API) offerToDTO(o Offer) offerDTO {
	d := offerDTO{
		Campaign: o.Campaign, AdType: o.AdType,
		AdTypeName: a.broker.cfg.AdTypes[o.AdType].Name,
		Utility:    o.Utility, Efficiency: o.Efficiency, Cost: o.Cost,
	}
	if o.Model != model.BillingFixed {
		d.OfferID = o.ID
		d.ChargeECPM = o.ChargeECPM
		d.Model = o.Model.String()
	}
	return d
}

// slateEntry is the slot view of one offer: a fixed-cost offer has no
// auction charge, so its catalog cost is normalized to eCPM.
func slateEntry(o Offer) slateEntryDTO {
	charge := o.ChargeECPM
	if o.Model == model.BillingFixed {
		charge = o.Cost * 1000
	}
	return slateEntryDTO{Vendor: o.Campaign, AdType: o.AdType, ChargeECPM: charge, OfferID: o.ID}
}

// postArrivalBatch serves POST /v1/arrivals:batch: a JSON array of arrival
// objects in, a results array out with one element per submitted arrival in
// order. The whole request is rejected only for transport-level problems
// (malformed JSON, > maxBatchArrivals elements, body cap); per-arrival
// validation failures surface as error elements while the remaining
// arrivals are still served.
func (a *API) postArrivalBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []arrivalRequest
	if !decode(w, r, &reqs) {
		return
	}
	if len(reqs) > maxBatchArrivals {
		WriteError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("broker: batch of %d arrivals exceeds limit %d", len(reqs), maxBatchArrivals))
		return
	}
	batch := make([]Arrival, len(reqs))
	for i, req := range reqs {
		batch[i] = Arrival{
			Loc:       geo.Point{X: req.Loc.X, Y: req.Loc.Y},
			Capacity:  req.Capacity,
			ViewProb:  req.ViewProb,
			Interests: req.Interests,
			Hour:      req.Hour,
		}
	}
	results := a.broker.ArriveBatchTraced(batch, trace.FromContext(r.Context()))
	resp := arrivalBatchResponse{Results: make([]batchResultDTO, len(results))}
	for i := range results {
		if err := results[i].Err; err != nil {
			resp.Results[i].Error = &errorBody{Code: "bad_request", Message: err.Error()}
			continue
		}
		offers := make([]offerDTO, 0, len(results[i].Offers))
		for _, o := range results[i].Offers {
			offers = append(offers, a.offerToDTO(o))
		}
		resp.Results[i].Offers = &offers
	}
	writeJSON(w, http.StatusOK, resp)
}

type eventRequest struct {
	OfferID uint64 `json:"offer_id"`
	// IdempotencyKey deduplicates retried deliveries of the same event; a
	// replayed key is rejected with 409 conflict. Empty skips deduplication.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// eventResponse is the conversion receipt: the escrowed hold moved to the
// campaign's spend.
type eventResponse struct {
	OfferID  uint64  `json:"offer_id"`
	Campaign int32   `json:"campaign"`
	Model    string  `json:"model"`
	Charged  float64 `json:"charged"`
}

// postEvent serves POST /v1/events: a CPC/CPA conversion callback against
// an escrowed offer. Unknown, expired, or already-converted offers get 404;
// a replayed idempotency key gets 409 conflict.
func (a *API) postEvent(w http.ResponseWriter, r *http.Request) {
	var req eventRequest
	if !decode(w, r, &req) {
		return
	}
	cv, err := a.broker.Convert(req.OfferID, req.IdempotencyKey)
	if err != nil {
		switch {
		case errors.Is(err, ErrOfferUnknown):
			WriteError(w, http.StatusNotFound, "not_found", err.Error())
		case errors.Is(err, ErrDuplicateEvent):
			WriteError(w, http.StatusConflict, "conflict", err.Error())
		default:
			WriteError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, eventResponse{
		OfferID:  cv.OfferID,
		Campaign: cv.Campaign,
		Model:    cv.Model.String(),
		Charged:  cv.Charged,
	})
}

// getCampaignBilling serves GET /v1/campaigns/{id}/billing: the campaign's
// registered billing contract plus its live escrow and conversion state.
func (a *API) getCampaignBilling(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	c, err := a.broker.CampaignState(id)
	if err != nil {
		status, code := statusFor(err)
		WriteError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, campaignBillingResponse{
		ID: c.ID,
		Billing: billingDTO{
			Model:       c.Billing.Model.String(),
			ReserveECPM: c.Billing.ReserveECPM,
			EventRate:   c.Billing.EventRate,
		},
		Escrow:      c.Escrow,
		Converted:   c.Converted,
		Conversions: c.Conversions,
	})
}

func (a *API) getStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.broker.Stats())
}

// getMap renders the current campaign state as an SVG map: each campaign's
// advertising disk with budget-sized markers (spent budget dims the marker
// via the viz renderer's budget scaling on Remaining()).
func (a *API) getMap(w http.ResponseWriter, r *http.Request) {
	campaigns := a.broker.Campaigns()
	view := &model.Problem{AdTypes: a.broker.cfg.AdTypes}
	for _, c := range campaigns {
		view.Vendors = append(view.Vendors, model.Vendor{
			ID:     c.ID,
			Loc:    c.Loc,
			Radius: c.Radius,
			Budget: c.Remaining(),
		})
	}
	st := a.broker.Stats()
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_ = viz.SVG(w, view, nil, viz.Options{
		ShowRanges: true,
		Title: fmt.Sprintf("%d campaigns — %d arrivals, %d offers, %.2f utility served",
			st.Campaigns, st.Arrivals, st.OffersPushed, st.UtilityServed),
	})
}

func pathID(w http.ResponseWriter, r *http.Request) (int32, bool) {
	var id int32
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		WriteError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("broker: bad campaign id %q", r.PathValue("id")))
		return 0, false
	}
	return id, true
}

// decode is the single funnel for request bodies: it enforces the JSON
// Content-Type contract (absent is accepted, anything non-JSON is 415),
// caps the body at maxBodyBytes (413 beyond), and rejects unknown fields.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			WriteError(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
				fmt.Sprintf("content type %q is not application/json", ct))
			return false
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		WriteError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("broker: bad request body: %v", err))
		return false
	}
	return true
}

// errorBody is the inner object of the uniform error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// WriteJSON is the single funnel for every JSON response (success and
// error), shared by the API and muaa-serve's own endpoints: the explicit
// Content-Type plus nosniff is a contract the monitoring docs advertise to
// scrapers, pinned by TestJSONContentType.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) { WriteJSON(w, status, v) }

// WriteError renders the uniform error envelope every handler (broker API
// and server endpoints alike) returns.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	WriteJSON(w, status, errorEnvelope{Error: errorBody{Code: code, Message: message}})
}

func statusFor(err error) (int, string) {
	// Unknown-campaign errors map to 404; everything else is a bad request.
	if err != nil && strings.Contains(err.Error(), "unknown campaign") {
		return http.StatusNotFound, "not_found"
	}
	return http.StatusBadRequest, "bad_request"
}
