package broker

// HTTP surface tests for the billing redesign: the billing block on
// campaign registration, the slate view on arrival responses, the
// /v1/events conversion callback with its error envelope, and the
// /v1/campaigns/{id}/billing state endpoint.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/workload"
)

// registerBilled posts a campaign with a billing block near (0.5, 0.5)
// and returns its id.
func registerBilled(t *testing.T, url string, billing *billingDTO) int32 {
	t.Helper()
	resp := postJSON(t, url+"/v1/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
		Billing: billing,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	return decodeBody[campaignResponse](t, resp).ID
}

// arriveOnce posts one capacity-1 arrival at (0.5, 0.51) and returns the
// response body.
func arriveOnce(t *testing.T, url string) arrivalResponse {
	t.Helper()
	resp := postJSON(t, url+"/v1/arrivals", arrivalRequest{
		Loc: pointDTO{0.5, 0.51}, Capacity: 1, ViewProb: 0.8,
		Interests: []float64{0.9, 0.1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrival status %d", resp.StatusCode)
	}
	return decodeBody[arrivalResponse](t, resp)
}

// TestHTTPSlateView pins the dual-view arrival response: a fixed-cost
// offer appears in slate with its catalog cost normalized to eCPM and no
// billing fields in the offers element.
func TestHTTPSlateView(t *testing.T) {
	srv, _ := newTestServer(t)
	registerBilled(t, srv.URL, nil)
	out := arriveOnce(t, srv.URL)
	if len(out.Offers) != 1 || len(out.Slate) != 1 {
		t.Fatalf("offers %+v slate %+v", out.Offers, out.Slate)
	}
	o, s := out.Offers[0], out.Slate[0]
	if o.OfferID != 0 || o.Model != "" || o.ChargeECPM != 0 {
		t.Errorf("fixed offer leaked billing fields: %+v", o)
	}
	if s.Vendor != o.Campaign || s.AdType != o.AdType || s.ChargeECPM != o.Cost*1000 {
		t.Errorf("slate %+v does not mirror offer %+v", s, o)
	}
	if s.OfferID != 0 {
		t.Errorf("fixed slate entry has offer id %d", s.OfferID)
	}
}

// TestHTTPConversionFlow walks the CPC loop end to end over HTTP:
// register with a billing block, serve an escrowed offer, read the
// billing state, convert via /v1/events, and observe escrow → spend.
func TestHTTPConversionFlow(t *testing.T) {
	srv, _ := newTestServer(t)
	// A reserve price matters here: with one campaign there is no runner-up,
	// so without a reserve the second price — and thus the hold — is zero.
	id := registerBilled(t, srv.URL, &billingDTO{Model: "cpc", ReserveECPM: 2, EventRate: 0.1})

	out := arriveOnce(t, srv.URL)
	if len(out.Offers) != 1 {
		t.Fatalf("offers %+v", out.Offers)
	}
	o := out.Offers[0]
	if o.OfferID == 0 || o.Model != "cpc" || o.Cost != 0 {
		t.Fatalf("escrowed offer DTO: %+v", o)
	}
	if out.Slate[0].OfferID != o.OfferID {
		t.Fatalf("slate offer id %d != %d", out.Slate[0].OfferID, o.OfferID)
	}

	// Billing state shows the hold.
	resp, err := http.Get(fmt.Sprintf("%s/v1/campaigns/%d/billing", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	bs := decodeBody[campaignBillingResponse](t, resp)
	if bs.Billing.Model != "cpc" || bs.Escrow <= 0 || bs.Conversions != 0 {
		t.Fatalf("billing state %+v", bs)
	}

	// Convert it.
	resp = postJSON(t, srv.URL+"/v1/events", eventRequest{OfferID: o.OfferID, IdempotencyKey: "k1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("event status %d", resp.StatusCode)
	}
	ev := decodeBody[eventResponse](t, resp)
	if ev.OfferID != o.OfferID || ev.Campaign != id || ev.Model != "cpc" || ev.Charged != bs.Escrow {
		t.Fatalf("receipt %+v, want charge %g", ev, bs.Escrow)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/campaigns/%d/billing", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	after := decodeBody[campaignBillingResponse](t, resp)
	if after.Escrow != 0 || after.Converted != ev.Charged || after.Conversions != 1 {
		t.Fatalf("billing state after conversion %+v", after)
	}
}

// TestHTTPEventErrors pins the error envelope on the events surface: a
// replayed idempotency key is 409 conflict (a new code), a consumed or
// never-issued offer id is 404 not_found.
func TestHTTPEventErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	registerBilled(t, srv.URL, &billingDTO{Model: "cpa", ReserveECPM: 2, EventRate: 0.2})
	out := arriveOnce(t, srv.URL)
	oid := out.Offers[0].OfferID

	// Never-issued id.
	resp := postJSON(t, srv.URL+"/v1/events", eventRequest{OfferID: oid + 999})
	wantEnvelope(t, resp, http.StatusNotFound, "not_found")

	// First conversion succeeds; the replayed key conflicts even though the
	// offer is gone (idempotency is checked first).
	resp = postJSON(t, srv.URL+"/v1/events", eventRequest{OfferID: oid, IdempotencyKey: "dup"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("event status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, srv.URL+"/v1/events", eventRequest{OfferID: oid, IdempotencyKey: "dup"})
	wantEnvelope(t, resp, http.StatusConflict, "conflict")

	// Same offer, fresh key: the offer was consumed → not_found.
	resp = postJSON(t, srv.URL+"/v1/events", eventRequest{OfferID: oid, IdempotencyKey: "fresh"})
	wantEnvelope(t, resp, http.StatusNotFound, "not_found")

	// Malformed body stays a transport-level 400.
	resp = postJSON(t, srv.URL+"/v1/events", map[string]any{"offer": "x"})
	wantEnvelope(t, resp, http.StatusBadRequest, "bad_request")
}

// TestHTTPBillingValidation pins registration-time billing errors: an
// unknown model and an invalid contract are both bad_request.
func TestHTTPBillingValidation(t *testing.T) {
	srv, _ := newTestServer(t)

	resp := postJSON(t, srv.URL+"/v1/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
		Billing: &billingDTO{Model: "cpx"},
	})
	wantEnvelope(t, resp, http.StatusBadRequest, "bad_request")

	// CPC without an event rate is invalid.
	resp = postJSON(t, srv.URL+"/v1/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
		Billing: &billingDTO{Model: "cpc"},
	})
	wantEnvelope(t, resp, http.StatusBadRequest, "bad_request")

	// Billing state of an unknown campaign is 404.
	getResp, err := http.Get(srv.URL + "/v1/campaigns/99/billing")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, getResp, http.StatusNotFound, "not_found")
}

// FuzzPostEvent throws arbitrary bodies at POST /v1/events: the handler
// must always answer with a well-formed status (200/400/404/409, never a
// 5xx or a hang) regardless of input.
func FuzzPostEvent(f *testing.F) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := b.RegisterCampaignSpec(CampaignSpec{
		Loc: geo.Point{X: 0.5, Y: 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
		Billing: model.Billing{Model: model.BillingCPC, ReserveECPM: 2, EventRate: 0.1},
	}); err != nil {
		f.Fatal(err)
	}
	b.Arrive(Arrival{Loc: geo.Point{X: 0.5, Y: 0.51}, Capacity: 1, ViewProb: 0.8, Interests: []float64{0.9, 0.1}})
	api := NewAPI(b)

	f.Add(`{"offer_id": 1, "idempotency_key": "k"}`)
	f.Add(`{"offer_id": 0}`)
	f.Add(`{"offer_id": -3}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"offer_id": 18446744073709551615}`)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/events", bytes.NewReader([]byte(body)))
		w := httptest.NewRecorder()
		api.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound, http.StatusConflict:
		default:
			t.Fatalf("body %q: status %d", body, w.Code)
		}
	})
}
