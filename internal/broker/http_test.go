package broker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"muaa/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *Broker) {
	t.Helper()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(b))
	t.Cleanup(srv.Close)
	return srv, b
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)

	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	created := decodeBody[campaignResponse](t, resp)

	// Read the state back.
	getResp, err := http.Get(fmt.Sprintf("%s/campaigns/%d", srv.URL, created.ID))
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", getResp.StatusCode)
	}
	state := decodeBody[campaignStateResponse](t, getResp)
	if state.Budget != 10 || state.Remaining != 10 {
		t.Errorf("state %+v", state)
	}

	// Top up and pause.
	resp = postJSON(t, fmt.Sprintf("%s/campaigns/%d/topup", srv.URL, created.ID), topUpRequest{Amount: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topup status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, fmt.Sprintf("%s/campaigns/%d/pause", srv.URL, created.ID), pauseRequest{Paused: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pause status %d", resp.StatusCode)
	}
	resp.Body.Close()

	getResp, _ = http.Get(fmt.Sprintf("%s/campaigns/%d", srv.URL, created.ID))
	state = decodeBody[campaignStateResponse](t, getResp)
	if state.Budget != 15 || !state.Paused {
		t.Errorf("after topup+pause: %+v", state)
	}
}

func TestHTTPArrivalFlow(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
	})
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/arrivals", arrivalRequest{
		Loc: pointDTO{0.5, 0.51}, Capacity: 2, ViewProb: 0.8,
		Interests: []float64{0.9, 0.1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrival status %d", resp.StatusCode)
	}
	out := decodeBody[arrivalResponse](t, resp)
	if len(out.Offers) != 1 {
		t.Fatalf("offers %+v", out.Offers)
	}
	if out.Offers[0].AdTypeName == "" || out.Offers[0].Cost <= 0 {
		t.Errorf("offer DTO incomplete: %+v", out.Offers[0])
	}

	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody[Stats](t, statsResp)
	if stats.Arrivals != 1 || stats.OffersPushed != 1 {
		t.Errorf("stats %+v", stats)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	// Malformed body.
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown fields are rejected (catches client typos).
	resp, err = http.Post(srv.URL+"/arrivals", "application/json",
		bytes.NewReader([]byte(`{"capcity": 2}`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown campaign → 404.
	resp = postJSON(t, srv.URL+"/campaigns/99/topup", topUpRequest{Amount: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad path id.
	resp = postJSON(t, srv.URL+"/campaigns/abc/topup", topUpRequest{Amount: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Invalid arrival payload.
	resp = postJSON(t, srv.URL+"/arrivals", arrivalRequest{Capacity: -1, ViewProb: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid arrival status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPConcurrentArrivals(t *testing.T) {
	srv, b := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.3, Budget: 50, Tags: []float64{1, 0},
	})
	resp.Body.Close()

	const n = 20
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			r := postJSON(t, srv.URL+"/arrivals", arrivalRequest{
				Loc: pointDTO{0.5, 0.52}, Capacity: 1, ViewProb: 0.8,
				Interests: []float64{0.9, 0.1},
			})
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				done <- fmt.Errorf("status %d", r.StatusCode)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.CampaignState(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Spent > c.Budget+1e-9 {
		t.Fatalf("concurrent arrivals overspent the budget: %g > %g", c.Spent, c.Budget)
	}
	if b.Stats().Arrivals != n {
		t.Errorf("arrivals = %d, want %d", b.Stats().Arrivals, n)
	}
}

func TestHTTPListCampaigns(t *testing.T) {
	srv, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
			Loc: pointDTO{0.1 * float64(i), 0.5}, Radius: 0.1, Budget: float64(5 + i),
		})
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[[]campaignStateResponse](t, resp)
	if len(list) != 3 {
		t.Fatalf("listed %d campaigns, want 3", len(list))
	}
	for i, c := range list {
		if c.ID != int32(i) || c.Budget != float64(5+i) {
			t.Errorf("campaign %d state %+v", i, c)
		}
	}
}

func TestHTTPMap(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10,
	})
	resp.Body.Close()
	mapResp, err := http.Get(srv.URL + "/map.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer mapResp.Body.Close()
	if mapResp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d", mapResp.StatusCode)
	}
	if ct := mapResp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(mapResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("<svg")) || !bytes.Contains(body, []byte("1 campaigns")) {
		t.Errorf("map content:\n%s", body[:min(200, len(body))])
	}
}

// TestJSONContentType is the regression test for the explicit JSON content
// type: every JSON endpoint — success and error paths alike — must declare
// `application/json; charset=utf-8` with nosniff, so scrapers and the
// docs/OPERATIONS.md curl examples can rely on it.
func TestJSONContentType(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
	})
	resp.Body.Close()

	checks := []struct {
		name       string
		get        string
		wantStatus int
	}{
		{"stats", "/stats", http.StatusOK},
		{"campaign list", "/campaigns", http.StatusOK},
		{"campaign state", "/campaigns/0", http.StatusOK},
		{"error body", "/campaigns/999", http.StatusNotFound},
	}
	for _, tc := range checks {
		resp, err := http.Get(srv.URL + tc.get)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s: Content-Type = %q, want explicit application/json; charset=utf-8", tc.name, ct)
		}
		if ns := resp.Header.Get("X-Content-Type-Options"); ns != "nosniff" {
			t.Errorf("%s: X-Content-Type-Options = %q, want nosniff", tc.name, ns)
		}
	}

	// POST responses flow through the same funnel.
	resp = postJSON(t, srv.URL+"/arrivals", arrivalRequest{
		Loc: pointDTO{0.5, 0.5}, Capacity: 1, ViewProb: 0.5, Interests: []float64{1, 0},
	})
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("POST /arrivals: Content-Type = %q", ct)
	}
}
