package broker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"muaa/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *Broker) {
	t.Helper()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewAPI(b))
	t.Cleanup(srv.Close)
	return srv, b
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	srv, _ := newTestServer(t)

	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	created := decodeBody[campaignResponse](t, resp)

	// Read the state back.
	getResp, err := http.Get(fmt.Sprintf("%s/campaigns/%d", srv.URL, created.ID))
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", getResp.StatusCode)
	}
	state := decodeBody[campaignStateResponse](t, getResp)
	if state.Budget != 10 || state.Remaining != 10 {
		t.Errorf("state %+v", state)
	}

	// Top up and pause.
	resp = postJSON(t, fmt.Sprintf("%s/campaigns/%d/topup", srv.URL, created.ID), topUpRequest{Amount: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topup status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, fmt.Sprintf("%s/campaigns/%d/pause", srv.URL, created.ID), pauseRequest{Paused: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pause status %d", resp.StatusCode)
	}
	resp.Body.Close()

	getResp, _ = http.Get(fmt.Sprintf("%s/campaigns/%d", srv.URL, created.ID))
	state = decodeBody[campaignStateResponse](t, getResp)
	if state.Budget != 15 || !state.Paused {
		t.Errorf("after topup+pause: %+v", state)
	}
}

func TestHTTPArrivalFlow(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
	})
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/arrivals", arrivalRequest{
		Loc: pointDTO{0.5, 0.51}, Capacity: 2, ViewProb: 0.8,
		Interests: []float64{0.9, 0.1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("arrival status %d", resp.StatusCode)
	}
	out := decodeBody[arrivalResponse](t, resp)
	if len(out.Offers) != 1 {
		t.Fatalf("offers %+v", out.Offers)
	}
	if out.Offers[0].AdTypeName == "" || out.Offers[0].Cost <= 0 {
		t.Errorf("offer DTO incomplete: %+v", out.Offers[0])
	}

	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody[Stats](t, statsResp)
	if stats.Arrivals != 1 || stats.OffersPushed != 1 {
		t.Errorf("stats %+v", stats)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	// Malformed body.
	resp, err := http.Post(srv.URL+"/campaigns", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown fields are rejected (catches client typos).
	resp, err = http.Post(srv.URL+"/arrivals", "application/json",
		bytes.NewReader([]byte(`{"capcity": 2}`)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown campaign → 404.
	resp = postJSON(t, srv.URL+"/campaigns/99/topup", topUpRequest{Amount: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad path id.
	resp = postJSON(t, srv.URL+"/campaigns/abc/topup", topUpRequest{Amount: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Invalid arrival payload.
	resp = postJSON(t, srv.URL+"/arrivals", arrivalRequest{Capacity: -1, ViewProb: 0.5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid arrival status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestHTTPConcurrentArrivals(t *testing.T) {
	srv, b := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.3, Budget: 50, Tags: []float64{1, 0},
	})
	resp.Body.Close()

	const n = 20
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			r := postJSON(t, srv.URL+"/arrivals", arrivalRequest{
				Loc: pointDTO{0.5, 0.52}, Capacity: 1, ViewProb: 0.8,
				Interests: []float64{0.9, 0.1},
			})
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				done <- fmt.Errorf("status %d", r.StatusCode)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.CampaignState(0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Spent > c.Budget+1e-9 {
		t.Fatalf("concurrent arrivals overspent the budget: %g > %g", c.Spent, c.Budget)
	}
	if b.Stats().Arrivals != n {
		t.Errorf("arrivals = %d, want %d", b.Stats().Arrivals, n)
	}
}

func TestHTTPListCampaigns(t *testing.T) {
	srv, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
			Loc: pointDTO{0.1 * float64(i), 0.5}, Radius: 0.1, Budget: float64(5 + i),
		})
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[[]campaignStateResponse](t, resp)
	if len(list) != 3 {
		t.Fatalf("listed %d campaigns, want 3", len(list))
	}
	for i, c := range list {
		if c.ID != int32(i) || c.Budget != float64(5+i) {
			t.Errorf("campaign %d state %+v", i, c)
		}
	}
}

func TestHTTPMap(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10,
	})
	resp.Body.Close()
	mapResp, err := http.Get(srv.URL + "/map.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer mapResp.Body.Close()
	if mapResp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d", mapResp.StatusCode)
	}
	if ct := mapResp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(mapResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("<svg")) || !bytes.Contains(body, []byte("1 campaigns")) {
		t.Errorf("map content:\n%s", body[:min(200, len(body))])
	}
}

// errEnvelope mirrors the uniform error envelope for assertions.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func wantEnvelope(t *testing.T, resp *http.Response, status int, code string) {
	t.Helper()
	if resp.StatusCode != status {
		t.Errorf("%s %s: status %d, want %d", resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, status)
	}
	env := decodeBody[errEnvelope](t, resp)
	if env.Error.Code != code || env.Error.Message == "" {
		t.Errorf("%s: envelope %+v, want code %q with non-empty message", resp.Request.URL.Path, env, code)
	}
}

// TestV1AndLegacyAliases pins the versioned surface: every /v1 route must
// work, and every legacy unversioned path must behave identically (they
// share handlers).
func TestV1AndLegacyAliases(t *testing.T) {
	srv, _ := newTestServer(t)

	resp := postJSON(t, srv.URL+"/v1/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/campaigns status %d", resp.StatusCode)
	}
	created := decodeBody[campaignResponse](t, resp)

	// The flat /v1 top-up carries the id in the body.
	resp = postJSON(t, srv.URL+"/v1/topup", flatTopUpRequest{ID: created.ID, Amount: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/topup status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The same state must be visible through both path families.
	for _, path := range []string{"/campaigns/0", "/v1/campaigns/0"} {
		getResp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if getResp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", path, getResp.StatusCode)
		}
		state := decodeBody[campaignStateResponse](t, getResp)
		if state.Budget != 15 {
			t.Errorf("GET %s budget %g, want 15", path, state.Budget)
		}
	}
	resp = postJSON(t, srv.URL+"/v1/arrivals", arrivalRequest{
		Loc: pointDTO{0.5, 0.51}, Capacity: 1, ViewProb: 0.8, Interests: []float64{0.9, 0.1},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/arrivals status %d", resp.StatusCode)
	}
	resp.Body.Close()
	for _, path := range []string{"/stats", "/v1/stats"} {
		statsResp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		stats := decodeBody[Stats](t, statsResp)
		if stats.Arrivals != 1 || stats.Campaigns != 1 {
			t.Errorf("GET %s: %+v", path, stats)
		}
	}
	for _, path := range []string{"/map.svg", "/v1/map.svg"} {
		mapResp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		mapResp.Body.Close()
		if mapResp.StatusCode != http.StatusOK {
			t.Errorf("GET %s status %d", path, mapResp.StatusCode)
		}
	}
}

// TestErrorEnvelope asserts the uniform {"error":{code,message}} shape on
// old and new paths alike, for every error class the surface produces.
func TestErrorEnvelope(t *testing.T) {
	srv, _ := newTestServer(t)

	for _, path := range []string{"/campaigns/999", "/v1/campaigns/999"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		wantEnvelope(t, resp, http.StatusNotFound, "not_found")
	}
	for _, path := range []string{"/arrivals", "/v1/arrivals"} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte("{nope")))
		if err != nil {
			t.Fatal(err)
		}
		wantEnvelope(t, resp, http.StatusBadRequest, "bad_request")
	}
	// Unrouted paths fall through to the enveloped 404.
	resp, err := http.Get(srv.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	wantEnvelope(t, resp, http.StatusNotFound, "not_found")
}

// TestMethodNotAllowed: wrong methods get 405 with an Allow header and the
// uniform envelope, on both path families.
func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodDelete, "/v1/arrivals", "POST"},
		{http.MethodGet, "/arrivals", "POST"},
		{http.MethodPut, "/v1/campaigns", "GET, POST"},
		{http.MethodPost, "/v1/stats", "GET"},
		{http.MethodDelete, "/campaigns/0", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, got, tc.allow)
		}
		wantEnvelope(t, resp, http.StatusMethodNotAllowed, "method_not_allowed")
	}
}

// TestUnsupportedMediaType: a non-JSON Content-Type is rejected with 415;
// a missing Content-Type and JSON with parameters are accepted.
func TestUnsupportedMediaType(t *testing.T) {
	srv, _ := newTestServer(t)
	body := `{"loc":{"x":0.5,"y":0.5},"capacity":1,"viewProb":0.5}`

	for _, ct := range []string{"text/plain", "application/x-www-form-urlencoded", "application/xml"} {
		resp, err := http.Post(srv.URL+"/v1/arrivals", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		wantEnvelope(t, resp, http.StatusUnsupportedMediaType, "unsupported_media_type")
	}
	for _, ct := range []string{"", "application/json", "application/json; charset=utf-8"} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/arrivals", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("Content-Type %q: status %d, want 200", ct, resp.StatusCode)
		}
	}
}

// TestOversizedBody: POST bodies beyond the 1 MiB cap are cut off with a
// 413 envelope instead of being read to the end.
func TestOversizedBody(t *testing.T) {
	api := fuzzAPI(t)
	huge := "{\"tags\":[" + strings.Repeat("0,", 1<<19) + "0]}"
	for _, path := range []string{"/campaigns", "/v1/campaigns"} {
		rec := fuzzPost(t, api, path, huge)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with %d bytes: status %d, want 413", path, len(huge), rec.Code)
		}
		var env errEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "payload_too_large" {
			t.Errorf("POST %s: envelope %s (err %v)", path, rec.Body.Bytes(), err)
		}
	}
}

// TestJSONContentType is the regression test for the explicit JSON content
// type: every JSON endpoint — success and error paths alike — must declare
// `application/json; charset=utf-8` with nosniff, so scrapers and the
// docs/OPERATIONS.md curl examples can rely on it.
func TestJSONContentType(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 10, Tags: []float64{1, 0},
	})
	resp.Body.Close()

	checks := []struct {
		name       string
		get        string
		wantStatus int
	}{
		{"stats", "/stats", http.StatusOK},
		{"campaign list", "/campaigns", http.StatusOK},
		{"campaign state", "/campaigns/0", http.StatusOK},
		{"error body", "/campaigns/999", http.StatusNotFound},
	}
	for _, tc := range checks {
		resp, err := http.Get(srv.URL + tc.get)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Errorf("%s: Content-Type = %q, want explicit application/json; charset=utf-8", tc.name, ct)
		}
		if ns := resp.Header.Get("X-Content-Type-Options"); ns != "nosniff" {
			t.Errorf("%s: X-Content-Type-Options = %q, want nosniff", tc.name, ns)
		}
	}

	// POST responses flow through the same funnel.
	resp = postJSON(t, srv.URL+"/arrivals", arrivalRequest{
		Loc: pointDTO{0.5, 0.5}, Capacity: 1, ViewProb: 0.5, Interests: []float64{1, 0},
	})
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("POST /arrivals: Content-Type = %q", ct)
	}
}

// TestPostArrivalBatch covers the batch endpoint end to end: a mixed batch
// answers 200 with index-aligned results (offers for accepted arrivals,
// error envelopes for rejected ones), an empty array answers an empty
// results array, and an over-long array is rejected whole with 400.
func TestPostArrivalBatch(t *testing.T) {
	srv, _ := newTestServer(t)
	resp := postJSON(t, srv.URL+"/v1/campaigns", campaignRequest{
		Loc: pointDTO{0.5, 0.5}, Radius: 0.2, Budget: 100, Tags: []float64{1, 0, 1},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, srv.URL+"/v1/arrivals:batch", []arrivalRequest{
		{Loc: pointDTO{0.5, 0.5}, Capacity: 2, ViewProb: 0.8, Interests: []float64{1, 0.5, 1}, Hour: 12},
		{Capacity: -1},
		{Loc: pointDTO{0.95, 0.05}, Capacity: 1, ViewProb: 0.5, Interests: []float64{1, 0, 1}, Hour: 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	out := decodeBody[arrivalBatchResponse](t, resp)
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	if out.Results[0].Offers == nil || len(*out.Results[0].Offers) == 0 {
		t.Fatalf("in-range arrival got no offers: %+v", out.Results[0])
	}
	for _, o := range *out.Results[0].Offers {
		if o.AdTypeName == "" || o.Cost <= 0 {
			t.Fatalf("malformed offer %+v", o)
		}
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != "bad_request" ||
		!strings.Contains(out.Results[1].Error.Message, "capacity") {
		t.Fatalf("rejected arrival not surfaced: %+v", out.Results[1])
	}
	if out.Results[1].Offers != nil {
		t.Fatalf("rejected arrival carries offers: %+v", out.Results[1])
	}
	if out.Results[2].Error != nil || out.Results[2].Offers == nil || len(*out.Results[2].Offers) != 0 {
		t.Fatalf("far-away arrival should have empty offers: %+v", out.Results[2])
	}

	// Empty array: accepted, empty results.
	resp = postJSON(t, srv.URL+"/v1/arrivals:batch", []arrivalRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	if out := decodeBody[arrivalBatchResponse](t, resp); len(out.Results) != 0 {
		t.Fatalf("empty batch answered %d results", len(out.Results))
	}

	// Over the element cap: rejected whole.
	big := make([]arrivalRequest, maxBatchArrivals+1)
	resp = postJSON(t, srv.URL+"/v1/arrivals:batch", big)
	wantEnvelope(t, resp, http.StatusBadRequest, "bad_request")

	// An object instead of an array is a transport-level 400.
	resp = postJSON(t, srv.URL+"/v1/arrivals:batch", map[string]int{"capacity": 1})
	wantEnvelope(t, resp, http.StatusBadRequest, "bad_request")
}

// TestRoutesEnumeration pins the Routes accessor: every registered /v1 path
// is reported exactly once and serves something other than the catch-all
// 404 (the docs coverage test builds on this list).
func TestRoutesEnumeration(t *testing.T) {
	srv, b := newTestServer(t)
	api := NewAPI(b)
	routes := api.Routes()
	want := []string{
		"/v1/campaigns", "/v1/campaigns/{id}", "/v1/campaigns/{id}/billing",
		"/v1/campaigns/{id}/topup", "/v1/campaigns/{id}/pause", "/v1/topup",
		"/v1/arrivals", "/v1/arrivals:batch", "/v1/events", "/v1/stats",
		"/v1/map.svg",
	}
	if len(routes) != len(want) {
		t.Fatalf("Routes() = %v, want %v", routes, want)
	}
	seen := map[string]bool{}
	for _, r := range routes {
		if seen[r] {
			t.Fatalf("duplicate route %q", r)
		}
		seen[r] = true
	}
	for _, w := range want {
		if !seen[w] {
			t.Fatalf("route %q missing from Routes(): %v", w, routes)
		}
	}
	// Each route answers with a non-404 (method dispatch, not the catch-all).
	for _, r := range routes {
		path := strings.ReplaceAll(r, "{id}", "0")
		req, err := http.NewRequest(http.MethodOptions, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Fatalf("route %q fell through to the catch-all 404", r)
		}
	}
}
