package broker

import (
	"math"
	"strconv"

	"muaa/internal/obs"
)

// brokerMetrics holds the broker's registered instruments. It is built once
// in New when Config.Metrics is set and never mutated afterwards, so the
// hot path reads it without synchronization; a nil *brokerMetrics means the
// broker runs uninstrumented and Arrive takes no clock readings at all.
//
// Instrumentation is observation-only by construction: nothing in this file
// feeds back into admission decisions, which is what keeps the golden
// replay transcripts byte-identical with metrics on (asserted by
// TestReplayMatchesGoldenInstrumented).
type brokerMetrics struct {
	// End-to-end and per-stage Arrive latency. Stages partition the arrival
	// path: lock_wait (acquiring the stripe interval), gather (grid queries
	// + candidate ordering), scan (the O-AFA threshold pass), commit
	// (charging accepted offers). Zero-capacity arrivals and rejected
	// requests never enter the pipeline and are not observed.
	arrival     *obs.Histogram
	stageLock   *obs.Histogram
	stageGather *obs.Histogram
	stageScan   *obs.Histogram
	stageCommit *obs.Histogram

	// Per-stripe lock traffic: stripeLocks[i] counts acquisitions of stripe
	// i's lock by arrivals; stripeContended[i] counts the subset where the
	// lock was already held (a TryLock miss) — the contention proxy.
	stripeLocks     []*obs.Counter
	stripeContended []*obs.Counter

	// Scan outcomes, one per candidate campaign examined.
	scanOffered        *obs.Counter
	scanPaused         *obs.Counter
	scanExhausted      *obs.Counter
	scanMismatch       *obs.Counter
	scanLowScore       *obs.Counter
	scanUnaffordable   *obs.Counter
	scanBelowThreshold *obs.Counter
	scanBelowReserve   *obs.Counter

	capacityTrimmed *obs.Counter
	arrivalErrors   *obs.Counter
	topUps          *obs.Counter
	exhaustedEvents *obs.Counter
	offersByType    []*obs.Counter // indexed like cfg.AdTypes

	// Batch ingestion: arrivals per ArriveBatch call (validation rejects
	// excluded) and the call's end-to-end latency. Per-arrival work inside a
	// batch still feeds the scan/commit counters above; the per-arrival
	// latency histogram is not observed (a batch takes one clock anchor).
	batchSize    *obs.Histogram
	batchSeconds *obs.Histogram
}

// Latency bucket layouts, fixed at construction (see internal/obs): the
// arrival path costs single-digit microseconds uncontended, so both start
// well below that and span past anything a loaded scrape should ever see.
var (
	arrivalBuckets = obs.ExpBuckets(1e-6, 2, 16)   // 1 µs … ~32.8 ms
	stageBuckets   = obs.ExpBuckets(2.5e-7, 2, 16) // 250 ns … ~8.2 ms
)

// foldScanTally adds one scan's outcome tallies (accumulated branch-free in
// the scan loop) into the registered counters.
func (m *brokerMetrics) foldScanTally(t *scanTally) {
	m.scanOffered.Add(t.offered)
	m.scanPaused.Add(t.paused)
	m.scanExhausted.Add(t.exhausted)
	m.scanMismatch.Add(t.mismatch)
	m.scanLowScore.Add(t.lowScore)
	m.scanUnaffordable.Add(t.unaffordable)
	m.scanBelowThreshold.Add(t.belowThreshold)
	if t.belowReserve > 0 {
		m.scanBelowReserve.Add(t.belowReserve)
	}
	if t.trimmed > 0 {
		m.capacityTrimmed.Add(t.trimmed)
	}
}

// newBrokerMetrics registers every broker instrument on reg. The gauge and
// counter funcs sample b's own lock-free atomics at scrape time, so scraping
// never blocks serving.
func newBrokerMetrics(reg *obs.Registry, b *Broker) *brokerMetrics {
	m := &brokerMetrics{
		arrival: reg.NewHistogram("muaa_broker_arrival_seconds",
			"End-to-end latency of Broker.Arrive, from stripe-lock acquisition through commit.",
			arrivalBuckets),
		stageLock: reg.NewHistogram("muaa_broker_arrival_stage_seconds",
			"Latency of one stage of the arrival path.",
			stageBuckets, obs.L("stage", "lock_wait")),
		stageGather: reg.NewHistogram("muaa_broker_arrival_stage_seconds",
			"Latency of one stage of the arrival path.",
			stageBuckets, obs.L("stage", "gather")),
		stageScan: reg.NewHistogram("muaa_broker_arrival_stage_seconds",
			"Latency of one stage of the arrival path.",
			stageBuckets, obs.L("stage", "scan")),
		stageCommit: reg.NewHistogram("muaa_broker_arrival_stage_seconds",
			"Latency of one stage of the arrival path.",
			stageBuckets, obs.L("stage", "commit")),
		scanOffered: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "offered")),
		scanPaused: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "paused")),
		scanExhausted: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "exhausted")),
		scanMismatch: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "dimension_mismatch")),
		scanLowScore: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "low_score")),
		scanUnaffordable: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "unaffordable")),
		scanBelowThreshold: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "below_threshold")),
		scanBelowReserve: reg.NewCounter("muaa_broker_scan_outcomes_total",
			"Candidate campaigns examined by the O-AFA scan, by outcome.",
			obs.L("outcome", "below_reserve")),
		capacityTrimmed: reg.NewCounter("muaa_broker_capacity_trimmed_total",
			"Admitted candidates dropped because the arrival's capacity was smaller."),
		arrivalErrors: reg.NewCounter("muaa_broker_arrival_errors_total",
			"Arrivals rejected before admission (invalid capacity or view probability)."),
		topUps: reg.NewCounter("muaa_broker_topups_total",
			"Successful campaign budget top-ups."),
		exhaustedEvents: reg.NewCounter("muaa_broker_campaign_exhausted_total",
			"Commits that left a campaign's remaining budget below the cheapest ad type."),
		batchSize: reg.NewHistogram("muaa_broker_batch_size",
			"Arrivals per ArriveBatch call (validation rejects excluded).",
			obs.ExpBuckets(1, 2, 11)),
		batchSeconds: reg.NewHistogram("muaa_broker_batch_seconds",
			"End-to-end latency of one ArriveBatch call, lock wait through WAL append.",
			arrivalBuckets),
	}
	for i := range b.shards {
		stripe := obs.L("stripe", strconv.Itoa(i))
		m.stripeLocks = append(m.stripeLocks, reg.NewCounter(
			"muaa_broker_stripe_lock_total",
			"Stripe-lock acquisitions by arrivals, per stripe.", stripe))
		m.stripeContended = append(m.stripeContended, reg.NewCounter(
			"muaa_broker_stripe_lock_contended_total",
			"Stripe-lock acquisitions that found the lock held (TryLock miss), per stripe.", stripe))
	}
	for k, t := range b.cfg.AdTypes {
		m.offersByType = append(m.offersByType, reg.NewCounter(
			"muaa_broker_offers_total",
			"Offers committed, by ad type.", obs.L("adtype", t.Name), obs.L("k", strconv.Itoa(k))))
	}

	// Mirrors of the Stats snapshot, sampled from the broker's atomics.
	reg.NewCounterFunc("muaa_broker_arrivals_total",
		"Customer arrivals processed (including zero-capacity ones).",
		func() float64 { return float64(b.arrivals.Load()) })
	reg.NewCounterFunc("muaa_broker_offers_pushed_total",
		"Total offers pushed to customers.",
		func() float64 { return float64(b.offers.Load()) })
	reg.NewCounterFunc("muaa_broker_utility_served_total",
		"Cumulative utility (Eq. 4) of all committed offers.",
		func() float64 { return b.utility.Load() })
	reg.NewCounterFunc("muaa_broker_budget_spent_total",
		"Cumulative campaign budget charged by committed offers.",
		func() float64 { return b.spent.Load() })
	reg.NewGaugeFunc("muaa_broker_campaigns",
		"Campaigns currently registered (paused ones included).",
		func() float64 { return float64(len(*b.dir.Load())) })

	// The live O-AFA state: γ-estimator bounds, the derived threshold base
	// g, and the adaptive threshold φ(δ) at three reference budget-usage
	// ratios. All report 0 until the first efficiency is observed, matching
	// Stats.
	reg.NewGaugeFunc("muaa_broker_gamma_min",
		"Running minimum observed offer efficiency (0 until the first observation).",
		func() float64 {
			if b.gammaMax.Load() == 0 {
				return 0
			}
			return b.gammaMin.Load()
		})
	reg.NewGaugeFunc("muaa_broker_gamma_max",
		"Running maximum observed offer efficiency.",
		func() float64 { return b.gammaMax.Load() })
	reg.NewGaugeFunc("muaa_broker_threshold_g",
		"Adaptive threshold base g: configured, or derived as e·γ_max/γ_min once observations exist.",
		func() float64 {
			g := b.cfg.G
			gmax, gmin := b.gammaMax.Load(), b.gammaMin.Load()
			if g == 0 && gmax > gmin && gmax > 0 {
				g = math.E * gmax / gmin
			}
			return g
		})
	for _, delta := range []float64{0, 0.5, 1} {
		delta := delta
		reg.NewGaugeFunc("muaa_broker_threshold",
			"Live admission threshold φ(δ) = γ_min/e · g^δ at reference budget-usage ratios δ.",
			func() float64 { return b.threshold(delta) },
			obs.L("delta", strconv.FormatFloat(delta, 'g', -1, 64)))
	}
	registerBillingMetrics(reg, b.billing)
	if b.audit != nil {
		registerAuditMetrics(reg, b)
	}
	if b.controller != nil {
		registerPacingMetrics(reg, b)
	}
	if b.funnel != nil {
		registerFunnelMetrics(reg, b)
	}
	return m
}
