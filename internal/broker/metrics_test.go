package broker

import (
	"io"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/obs"
	"muaa/internal/workload"
)

// instrumentedBroker builds a broker with the full instrument set and a
// deterministic campaign population.
func instrumentedBroker(t *testing.T, cfg Config, campaigns int, seed int64) (*Broker, *obs.Registry, []workload.BrokerOp) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	if cfg.AdTypes == nil {
		cfg.AdTypes = workload.DefaultAdTypes()
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, ops, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, 2000, seed))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	return b, reg, ops
}

func applyTestOp(t *testing.T, b *Broker, op workload.BrokerOp) {
	t.Helper()
	switch op.Kind {
	case workload.OpArrival:
		if _, err := b.Arrive(Arrival{Loc: op.Loc, Capacity: op.Capacity,
			ViewProb: op.ViewProb, Interests: op.Interests, Hour: op.Hour}); err != nil {
			t.Fatal(err)
		}
	case workload.OpTopUp:
		if err := b.TopUp(op.Campaign, op.Amount); err != nil {
			t.Fatal(err)
		}
	case workload.OpPause:
		if err := b.SetPaused(op.Campaign, op.Paused); err != nil {
			t.Fatal(err)
		}
	default:
		b.Stats()
	}
}

// TestBrokerMetricsScrape drives traffic through an instrumented broker and
// checks the scrape against the broker's own Stats snapshot: the exposition
// must cover the arrival latency histograms, per-stripe lock counters, and
// the live threshold/γ gauges, with values consistent with Stats.
func TestBrokerMetricsScrape(t *testing.T) {
	b, reg, ops := instrumentedBroker(t, Config{Shards: 4}, 24, 7)
	for _, op := range ops {
		applyTestOp(t, b, op)
	}
	st := b.Stats()
	if st.OffersPushed == 0 {
		t.Fatal("workload produced no offers; the scrape assertions below would be vacuous")
	}

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE muaa_broker_arrival_seconds histogram",
		`muaa_broker_arrival_stage_seconds_bucket{stage="lock_wait",le="+Inf"}`,
		`muaa_broker_arrival_stage_seconds_bucket{stage="gather",le="+Inf"}`,
		`muaa_broker_arrival_stage_seconds_bucket{stage="scan",le="+Inf"}`,
		`muaa_broker_arrival_stage_seconds_bucket{stage="commit",le="+Inf"}`,
		`muaa_broker_stripe_lock_total{stripe="0"}`,
		`muaa_broker_stripe_lock_total{stripe="3"}`,
		`muaa_broker_scan_outcomes_total{outcome="offered"}`,
		"muaa_broker_gamma_min ",
		"muaa_broker_gamma_max ",
		"muaa_broker_threshold_g ",
		`muaa_broker_threshold{delta="0"}`,
		`muaa_broker_threshold{delta="1"}`,
		"muaa_broker_arrivals_total ",
		"muaa_broker_budget_spent_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Cross-check the sampled counters against Stats.
	h := reg.FindHistogram("muaa_broker_arrival_seconds")
	if h == nil {
		t.Fatal("arrival histogram not registered")
	}
	snap := h.Snapshot()
	if snap.Count == 0 || snap.Count > uint64(st.Arrivals) {
		t.Fatalf("arrival histogram count %d vs %d arrivals", snap.Count, st.Arrivals)
	}
	if q := snap.Quantile(0.99); math.IsNaN(q) || q <= 0 {
		t.Fatalf("p99 arrival latency = %g", q)
	}
	if !strings.Contains(body, "muaa_broker_offers_pushed_total "+strconv.FormatInt(st.OffersPushed, 10)) {
		t.Errorf("offers_pushed_total does not match Stats.OffersPushed = %d", st.OffersPushed)
	}
}

// TestBrokerMetricsLockAccounting pins the lock counters to ground truth on
// a geometry small enough to reason about: every arrival locks exactly the
// stripes its query disk overlaps.
func TestBrokerMetricsLockAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Shards: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// One campaign with a tiny radius so maxRadius keeps lock ranges narrow.
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.125}, 0.01, 10, []float64{1}); err != nil {
		t.Fatal(err)
	}
	// An arrival in the middle of stripe 0 (y < 0.25 - maxRadius) locks
	// stripe 0 only; one in stripe 3 locks stripe 3 only.
	for _, y := range []float64{0.1, 0.9} {
		if _, err := b.Arrive(Arrival{Loc: geo.Point{X: 0.5, Y: y}, Capacity: 1, ViewProb: 1, Interests: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]uint64, 4)
	for i := range counts {
		counts[i] = b.metrics.stripeLocks[i].Value()
	}
	if counts[0] != 1 || counts[1] != 0 || counts[2] != 0 || counts[3] != 1 {
		t.Fatalf("stripe lock counts = %v, want [1 0 0 1]", counts)
	}
}

// TestBrokerMetricsExhaustion spends a campaign to the floor and checks the
// exhaustion event fires exactly once.
func TestBrokerMetricsExhaustion(t *testing.T) {
	reg := obs.NewRegistry()
	// One ad type costing 1, budget 2: two offers exhaust the campaign.
	b, err := New(Config{
		AdTypes: workload.DefaultAdTypes()[:1], // Text Link, cost 1
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.1, 2, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	arrival := Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 1, Interests: []float64{1, 0}}
	for i := 0; i < 4; i++ {
		if _, err := b.Arrive(arrival); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.BudgetSpent != 2 {
		t.Fatalf("spent %g, want the full budget 2", st.BudgetSpent)
	}
	if got := b.metrics.exhaustedEvents.Value(); got != 1 {
		t.Fatalf("exhaustion events = %d, want exactly 1", got)
	}
	// The two post-exhaustion arrivals must show up as exhausted scans.
	if got := b.metrics.scanExhausted.Value(); got != 2 {
		t.Fatalf("exhausted scans = %d, want 2", got)
	}
}

// TestBrokerMetricsConcurrentSoak hammers an instrumented broker from many
// goroutines under -race and asserts conservation: the latency histogram
// counts exactly the served arrivals, and per-stripe lock acquisitions are
// at least one per served arrival.
func TestBrokerMetricsConcurrentSoak(t *testing.T) {
	b, reg, ops := instrumentedBroker(t, Config{Shards: 8}, 32, 11)
	const workers = 8
	var wg sync.WaitGroup
	var served int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := int64(0)
			for i := w; i < len(ops); i += workers {
				op := ops[i]
				if op.Kind == workload.OpArrival && op.Capacity > 0 {
					local++
				}
				applyTestOp(t, b, op)
			}
			mu.Lock()
			served += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	h := reg.FindHistogram("muaa_broker_arrival_seconds")
	snap := h.Snapshot()
	if snap.Count != uint64(served) {
		t.Fatalf("arrival histogram count = %d, want %d (one per positive-capacity arrival)", snap.Count, served)
	}
	var locks uint64
	for _, c := range b.metrics.stripeLocks {
		locks += c.Value()
	}
	if locks < uint64(served) {
		t.Fatalf("stripe lock acquisitions %d < served arrivals %d", locks, served)
	}
	// Stage histograms must agree with each other on the arrival count.
	for _, stage := range []string{"lock_wait", "gather", "scan"} {
		sh := reg.FindHistogram("muaa_broker_arrival_stage_seconds", obs.L("stage", stage))
		if got := sh.Snapshot().Count; got != uint64(served) {
			t.Fatalf("stage %q count = %d, want %d", stage, got, served)
		}
	}
}
