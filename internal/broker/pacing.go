package broker

// The pacing-controller integration: one controller epoch (PacingStep) reads
// the latest audit-window report plus live campaign state, runs the pure
// control law in internal/pacing, and applies the decision — the threshold
// boost and per-campaign rate/allowance bits — under full shard quiescence,
// WAL-logging the applied bits so crash recovery restores controller state
// bit-exactly without re-running any control law. The background audit
// ticker funnels through auditTick (recompute, then step); debug-initiated
// refreshes (AuditNow) recompute the report only and never step the
// controller, so external clients cannot accelerate the control loop.

import (
	"errors"
	"math"

	"muaa/internal/obs"
	"muaa/internal/pacing"
)

// ErrControllerDisabled is returned by PacingStep on a broker built without
// a pacing controller (Config.Controller = nil).
var ErrControllerDisabled = errors.New("broker: pacing controller disabled (Controller = nil)")

// PacingStep runs one controller epoch synchronously: decide from the latest
// stored audit report (AuditReport — nil before the first recompute, in which
// case only utilization-based rate caps apply) and the live campaign
// directory, then apply and WAL-log the decision. The background audit loop
// calls this after every window recompute; simulations and tests drive it
// directly for deterministic epochs. Returns the applied decision.
func (b *Broker) PacingStep() (pacing.Decision, error) {
	if b.controller == nil {
		return pacing.Decision{}, ErrControllerDisabled
	}
	dir := *b.dir.Load()
	snap := pacing.Snapshot{
		Report:    b.AuditReport(),
		Boost:     b.phiBoost.Load(),
		Campaigns: make([]pacing.CampaignView, len(dir)),
	}
	for i, c := range dir {
		snap.Campaigns[i] = pacing.CampaignView{
			ID:         c.id,
			Budget:     c.budget.Load(),
			Spent:      c.spent.Load(),
			Rate:       c.rate.Load(),
			Guaranteed: c.guaranteed,
			Floor:      c.floor,
			Paused:     c.paused.Load(),
		}
	}
	dec := pacing.Decide(*b.controller, snap)
	b.applyDecision(dec)
	return dec, nil
}

// applyDecision installs one controller decision. It quiesces every mutator
// (regMu, then all shard locks ascending — the global lock order, same as
// snapshotNow), so in-flight arrivals never observe a half-applied epoch and
// the WAL record is atomic with the memory effects it describes.
func (b *Broker) applyDecision(dec pacing.Decision) {
	b.regMu.Lock()
	for i := range b.shards {
		b.shards[i].mu.Lock()
	}
	b.phiBoost.Store(dec.Boost)
	epoch := b.pacingEpoch.Add(1)
	dir := *b.dir.Load()
	applied := make([]*campaign, 0, len(dec.Rates))
	for _, r := range dec.Rates {
		if r.ID < 0 || int(r.ID) >= len(dir) {
			continue // registered after the snapshot; stays uncapped this epoch
		}
		c := dir[r.ID]
		c.rate.Store(r.Rate)
		c.allowance.Store(pacing.Allowance(c.budget.Load(), c.spent.Load(), c.allowance.Load(), r.Rate))
		applied = append(applied, c)
	}
	if b.wal != nil {
		b.logController(epoch, applied)
	}
	for i := len(b.shards) - 1; i >= 0; i-- {
		b.shards[i].mu.Unlock()
	}
	b.regMu.Unlock()
}

// registerPacingMetrics publishes the muaa_pacing_* instrument family; every
// gauge samples lock-free atomics at scrape time.
func registerPacingMetrics(reg *obs.Registry, b *Broker) {
	reg.NewGaugeFunc("muaa_pacing_boost",
		"Pacing controller's multiplicative boost on the admission threshold φ (1 = no intervention).",
		func() float64 { return b.phiBoost.Load() })
	reg.NewCounterFunc("muaa_pacing_epochs_total",
		"Controller epochs applied since boot (recovered across restarts).",
		func() float64 { return float64(b.pacingEpoch.Load()) })
	reg.NewGaugeFunc("muaa_pacing_capped_campaigns",
		"Campaigns currently under a controller spend-rate cap (rate < 1).",
		func() float64 {
			n := 0
			for _, c := range *b.dir.Load() {
				if c.rate.Load() < 1 {
					n++
				}
			}
			return float64(n)
		})
	reg.NewGaugeFunc("muaa_pacing_guaranteed_campaigns",
		"Registered guaranteed-delivery campaigns.",
		func() float64 {
			n := 0
			for _, c := range *b.dir.Load() {
				if c.guaranteed {
					n++
				}
			}
			return float64(n)
		})
	reg.NewGaugeFunc("muaa_pacing_floor_shortfall",
		"Budget units guaranteed campaigns still owe their end-of-day delivery floors (Σ max(0, floor·budget − spent)).",
		func() float64 {
			var s float64
			for _, c := range *b.dir.Load() {
				if c.guaranteed {
					if gap := c.floor*c.budget.Load() - c.spent.Load(); gap > 0 {
						s += gap
					}
				}
			}
			return s
		})
	reg.NewGaugeFunc("muaa_pacing_penalty_exposure",
		"Penalty owed if every guaranteed campaign's current floor shortfall stood at end-of-day (Σ penalty · shortfall).",
		func() float64 {
			var s float64
			for _, c := range *b.dir.Load() {
				if c.guaranteed && c.penalty > 0 {
					if gap := c.floor*c.budget.Load() - c.spent.Load(); gap > 0 {
						s += c.penalty * gap
					}
				}
			}
			return s
		})
	reg.NewGaugeFunc("muaa_pacing_allowance_headroom",
		"Spend headroom the current epoch's allowances leave across capped campaigns (Σ allowance − spent over rate < 1).",
		func() float64 {
			var s float64
			for _, c := range *b.dir.Load() {
				if c.rate.Load() < 1 {
					if h := c.allowance.Load() - c.spent.Load(); h > 0 && !math.IsInf(h, 1) {
						s += h
					}
				}
			}
			return s
		})
}
