package broker

// Crash-recovery property for the pacing controller's state: the threshold
// boost, epoch counter, and per-campaign rate/allowance are WAL-logged as
// applied bits (recController) and must come back bit-exact from any crash
// point — recovery replays logged decisions, it never re-runs the control
// law.

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"muaa/internal/pacing"
	"muaa/internal/workload"
)

// ctlState is the controller's complete mutable state, captured as raw bits.
type ctlState struct {
	boostBits  uint64
	epoch      int64
	rates      []uint64
	allowances []uint64
}

func controllerBits(b *Broker) ctlState {
	dir := *b.dir.Load()
	st := ctlState{boostBits: b.phiBoost.bits.Load(), epoch: b.pacingEpoch.Load()}
	for _, c := range dir {
		st.rates = append(st.rates, c.rate.bits.Load())
		st.allowances = append(st.allowances, c.allowance.bits.Load())
	}
	return st
}

// TestControllerCrashRecoveryProperty drives a controller-enabled durable
// broker through a seeded stream with synchronous audit+controller epochs,
// abandons it, and recovers from the full log plus a dozen random torn
// tails. At every cut the recovered broker must match the never-crashed
// in-memory reference after exactly RecordsReplayed mutations — including
// the controller bits — and no campaign may exceed its budget.
func TestControllerCrashRecoveryProperty(t *testing.T) {
	const campaigns, ops, seed, stepEvery = 16, 1200, 13, 40
	lc := workload.DefaultBrokerLoadConfig(campaigns, ops, seed)
	specs, stream, err := workload.BrokerLoad(lc)
	if err != nil {
		t.Fatal(err)
	}
	ctl := pacing.Default()
	mkConfig := func() Config {
		c := ctl
		return Config{
			AdTypes:     workload.DefaultAdTypes(),
			AuditWindow: ops,
			AuditEvery:  time.Hour, // ticker parked; epochs are driven manually
			Controller:  &c,
		}
	}

	// Reference trajectory: (broker state, controller bits) per WAL record.
	ref, err := newMemory(mkConfig())
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		state refState
		ctl   ctlState
	}
	var trajectory []point
	snap := func() {
		trajectory = append(trajectory, point{
			state: refState{stats: ref.Stats(), campaigns: ref.Campaigns()},
			ctl:   controllerBits(ref),
		})
	}
	snap()

	// Durable run, mirrored op-for-op and epoch-for-epoch (abandoned, never
	// Closed). Both brokers are deterministic, so their decisions agree.
	srcDir := t.TempDir()
	cfg := mkConfig()
	cfg.DataDir = srcDir
	cfg.WAL = crashWAL()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	register := func(br *Broker, i int, spec CampaignSpec) {
		if i%4 == 0 {
			spec.Guaranteed = true
			spec.Floor = 0.3
			spec.Penalty = 2
		}
		if _, err := br.RegisterCampaignSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range specs {
		spec := CampaignSpec{Loc: c.Loc, Radius: c.Radius, Budget: c.Budget, Tags: c.Tags}
		register(ref, i, spec)
		snap()
		register(b, i, spec)
	}
	step := func(br *Broker) {
		if _, err := br.AuditNow(); err != nil {
			t.Fatal(err)
		}
		if _, err := br.PacingStep(); err != nil {
			t.Fatal(err)
		}
	}
	arrivals := 0
	for _, op := range stream {
		if applyLoadOp(t, ref, op) {
			snap()
		}
		applyLoadOp(t, b, op)
		if op.Kind == workload.OpArrival {
			if arrivals++; arrivals%stepEvery == 0 {
				step(ref)
				snap() // one recController record per epoch
				step(b)
			}
		}
	}
	if ref.pacingEpoch.Load() == 0 {
		t.Fatal("reference controller never stepped; test is vacuous")
	}

	segs, err := filepath.Glob(filepath.Join(srcDir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", segs, err)
	}
	segName := filepath.Base(segs[0])
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	cuts := []int{0} // clean kill first, then random torn tails
	for i := 0; i < 12; i++ {
		cuts = append(cuts, 1+rng.Intn(len(full)/4))
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		copyFile(t, filepath.Join(srcDir, "snapshot"), filepath.Join(dir, "snapshot"))
		if err := os.WriteFile(filepath.Join(dir, segName), full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rcfg := mkConfig()
		rcfg.DataDir = dir
		rcfg.WAL = crashWAL()
		rb, err := New(rcfg)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		n := rb.RecoveryStats().RecordsReplayed
		if n >= len(trajectory) {
			t.Fatalf("cut %d: replayed %d records, reference has %d states", cut, n, len(trajectory))
		}
		want := trajectory[n]
		if got := rb.Stats(); got != want.state.stats {
			t.Fatalf("cut %d: recovered stats %+v != reference %+v after %d records", cut, got, want.state.stats, n)
		}
		if got := rb.Campaigns(); !reflect.DeepEqual(got, want.state.campaigns) {
			t.Fatalf("cut %d: recovered campaigns diverge from reference after %d records", cut, n)
		}
		if got := controllerBits(rb); !reflect.DeepEqual(got, want.ctl) {
			t.Fatalf("cut %d: controller state not bit-exact after %d records:\n got %+v\nwant %+v", cut, got, want.ctl, n)
		}
		for _, c := range rb.Campaigns() {
			if c.Spent > c.Budget+1e-9 {
				t.Fatalf("cut %d: campaign %d spent %g exceeds budget %g", cut, c.ID, c.Spent, c.Budget)
			}
		}
		if err := rb.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}
