package broker

// Exported, read-only decoding of the broker's WAL record and snapshot
// encodings. The broker's own recovery (applyRecord/applySnapshot) funnels
// through these decoders, and the audit path (ReplayAudit, cmd/muaa-audit)
// uses them to rebuild the arrival stream without touching broker state —
// one source of truth for the byte layout.

import (
	"errors"
	"fmt"
	"math"

	"muaa/internal/geo"
	"muaa/internal/model"
)

// RecordKind discriminates decoded WAL records.
type RecordKind byte

// The wire record types (see the rec* constants in durable.go).
const (
	RecordRegister     RecordKind = RecordKind(recRegister)
	RecordTopUp        RecordKind = RecordKind(recTopUp)
	RecordPause        RecordKind = RecordKind(recPause)
	RecordArrival      RecordKind = RecordKind(recArrival)
	RecordArrivalV2    RecordKind = RecordKind(recArrivalV2)
	RecordRegisterV2   RecordKind = RecordKind(recRegisterV2)
	RecordController   RecordKind = RecordKind(recController)
	RecordArrivalBatch RecordKind = RecordKind(recArrivalBatch)

	RecordRegisterV3     RecordKind = RecordKind(recRegisterV3)
	RecordArrivalSlate   RecordKind = RecordKind(recArrivalSlate)
	RecordArrivalBatchV2 RecordKind = RecordKind(recArrivalBatchV2)
	RecordConversion     RecordKind = RecordKind(recConversion)
)

// String names the record kind for reports and errors.
func (k RecordKind) String() string {
	switch k {
	case RecordRegister:
		return "register"
	case RecordTopUp:
		return "topup"
	case RecordPause:
		return "pause"
	case RecordArrival:
		return "arrival"
	case RecordArrivalV2:
		return "arrival_v2"
	case RecordRegisterV2:
		return "register_v2"
	case RecordController:
		return "controller"
	case RecordArrivalBatch:
		return "arrival_batch"
	case RecordRegisterV3:
		return "register_v3"
	case RecordArrivalSlate:
		return "arrival_slate"
	case RecordArrivalBatchV2:
		return "arrival_batch_v2"
	case RecordConversion:
		return "conversion"
	}
	return fmt.Sprintf("RecordKind(%d)", byte(k))
}

// DecodedRecord is one WAL record in structured form. Which fields are
// meaningful depends on Kind: registrations fill Campaign/Loc/Radius/
// Budget/Tags, top-ups Campaign/Amount, pauses Campaign/Paused, arrivals
// GammaMin/GammaMax/Offers — and, for RecordArrivalV2, the arriving
// customer itself (HasCustomer reports which arrival version was logged;
// v1 records predate customer persistence).
type DecodedRecord struct {
	Kind     RecordKind
	Campaign int32
	Loc      geo.Point
	Radius   float64
	Budget   float64
	Tags     []float64
	Amount   float64
	Paused   bool

	// The delivery class a RecordRegisterV2 carries (zero for v1 records:
	// every pre-class campaign is best-effort).
	Guaranteed bool
	Floor      float64
	Penalty    float64

	// The billing contract a RecordRegisterV3 carries (the zero fixed-cost
	// contract for earlier registration versions).
	Billing model.Billing

	// RecordConversion payload: the escrowed offer collected, its model,
	// the charge moved from escrow to spend, and the idempotency key the
	// event carried (empty when none).
	OfferID  uint64
	Model    model.BillingModel
	Charge   float64
	EventKey string

	GammaMin    float64
	GammaMax    float64
	HasCustomer bool
	Customer    Arrival
	Offers      []Offer

	// RecordController payload: the epoch counter, the threshold-boost bits,
	// and the applied per-campaign rate/allowance bits. Bits, not floats —
	// replay stores them verbatim so recovery never re-runs the control law.
	Epoch      int64
	BoostBits  uint64
	Controller []ControllerEntry

	// RecordArrivalBatch payload: the batched arrivals in processing order,
	// each with the γ bounds as they stood after its commit.
	Batch []ArrivalRecord
}

// ArrivalRecord is one arrival inside a RecordArrivalBatch payload — the
// same fields a RecordArrivalV2 carries for its single arrival.
type ArrivalRecord struct {
	GammaMin float64
	GammaMax float64
	Customer Arrival
	Offers   []Offer
}

// ControllerEntry is one campaign's applied actuator bits inside a
// RecordController payload.
type ControllerEntry struct {
	Campaign      int32
	RateBits      uint64
	AllowanceBits uint64
}

// DecodeRecord decodes one WAL record payload. It never panics on any
// input; malformed payloads return an error.
func DecodeRecord(rec []byte) (DecodedRecord, error) {
	if len(rec) == 0 {
		return DecodedRecord{}, errors.New("empty record")
	}
	d := DecodedRecord{Kind: RecordKind(rec[0])}
	r := &recReader{data: rec[1:]}
	switch rec[0] {
	case recRegister, recRegisterV2, recRegisterV3:
		d.Campaign = r.i32()
		d.Loc = geo.Point{X: r.f64(), Y: r.f64()}
		d.Radius = r.f64()
		d.Budget = r.f64()
		if rec[0] != recRegister {
			d.Guaranteed = r.u8() != 0
			d.Floor = r.f64()
			d.Penalty = r.f64()
		}
		if rec[0] == recRegisterV3 {
			d.Billing.Model = model.BillingModel(r.u8())
			d.Billing.ReserveECPM = r.f64()
			d.Billing.EventRate = r.f64()
		}
		n := r.u32()
		if r.err != nil || int(n) > r.remaining()/8 {
			return DecodedRecord{}, errors.New("malformed registration record")
		}
		d.Tags = make([]float64, n)
		for i := range d.Tags {
			d.Tags[i] = r.f64()
		}
	case recController:
		if v := r.u8(); r.err == nil && v != controllerRecVersion {
			return DecodedRecord{}, fmt.Errorf("unsupported controller record version %d", v)
		}
		d.Epoch = r.i64()
		d.BoostBits = r.u64()
		n := r.u32()
		if r.err != nil || int(n) > r.remaining()/20 {
			return DecodedRecord{}, errors.New("malformed controller record")
		}
		if n > 0 {
			d.Controller = make([]ControllerEntry, n)
			for i := range d.Controller {
				e := &d.Controller[i]
				e.Campaign = r.i32()
				e.RateBits = r.u64()
				e.AllowanceBits = r.u64()
			}
		}
	case recTopUp:
		d.Campaign = r.i32()
		d.Amount = r.f64()
	case recPause:
		d.Campaign = r.i32()
		d.Paused = r.u8() != 0
	case recArrival:
		d.GammaMin = r.f64()
		d.GammaMax = r.f64()
		offers, ok := decodeOffers(r)
		if !ok {
			return DecodedRecord{}, errors.New("malformed arrival record")
		}
		d.Offers = offers
	case recArrivalV2:
		e, ok := decodeArrivalBody(r)
		if !ok {
			return DecodedRecord{}, errors.New("malformed arrival record")
		}
		d.GammaMin, d.GammaMax = e.GammaMin, e.GammaMax
		d.HasCustomer = true
		d.Customer = e.Customer
		d.Offers = e.Offers
	case recArrivalBatch, recArrivalBatchV2:
		n := r.u32()
		// Each batch element is at least 60 bytes (two γ words, the fixed
		// customer fields, two empty-section counts).
		if r.err != nil || int(n) > r.remaining()/60 {
			return DecodedRecord{}, errors.New("malformed batch arrival record")
		}
		slate := rec[0] == recArrivalBatchV2
		d.Batch = make([]ArrivalRecord, 0, n)
		for i := 0; i < int(n); i++ {
			e, ok := decodeArrivalBodyKind(r, slate)
			if !ok {
				return DecodedRecord{}, errors.New("malformed batch arrival record")
			}
			d.Batch = append(d.Batch, e)
		}
	case recArrivalSlate:
		e, ok := decodeArrivalBodyKind(r, true)
		if !ok {
			return DecodedRecord{}, errors.New("malformed arrival record")
		}
		d.GammaMin, d.GammaMax = e.GammaMin, e.GammaMax
		d.HasCustomer = true
		d.Customer = e.Customer
		d.Offers = e.Offers
	case recConversion:
		d.OfferID = r.u64()
		d.Campaign = r.i32()
		d.Model = model.BillingModel(r.u8())
		d.Charge = r.f64()
		n := r.u32()
		if r.err != nil || int(n) > r.remaining() {
			return DecodedRecord{}, errors.New("malformed conversion record")
		}
		if n > 0 {
			d.EventKey = string(r.data[r.off : r.off+int(n)])
			r.off += int(n)
		}
	default:
		return DecodedRecord{}, fmt.Errorf("unknown record type %d", rec[0])
	}
	if err := r.done(); err != nil {
		return DecodedRecord{}, err
	}
	return d, nil
}

// decodeArrivalBody decodes one v2-shaped arrival body (γ bounds, customer
// features, offers) — the payload of a RecordArrivalV2 and of each
// RecordArrivalBatch element. Returns ok=false on malformed input.
func decodeArrivalBody(r *recReader) (ArrivalRecord, bool) {
	return decodeArrivalBodyKind(r, false)
}

// decodeArrivalBodyKind decodes one arrival body in the legacy or slate
// offer layout.
func decodeArrivalBodyKind(r *recReader, slate bool) (ArrivalRecord, bool) {
	var e ArrivalRecord
	e.GammaMin = r.f64()
	e.GammaMax = r.f64()
	e.Customer.Loc = geo.Point{X: r.f64(), Y: r.f64()}
	e.Customer.Capacity = int(r.u32())
	e.Customer.ViewProb = r.f64()
	e.Customer.Hour = r.f64()
	ni := r.u32()
	if r.err != nil || int(ni) > r.remaining()/8 {
		return ArrivalRecord{}, false
	}
	if ni > 0 {
		e.Customer.Interests = make([]float64, ni)
		for i := range e.Customer.Interests {
			e.Customer.Interests[i] = r.f64()
		}
	}
	offers, ok := decodeOffersKind(r, slate)
	if !ok {
		return ArrivalRecord{}, false
	}
	e.Offers = offers
	return e, true
}

// decodeOffers decodes a length-prefixed legacy offer list.
func decodeOffers(r *recReader) ([]Offer, bool) {
	return decodeOffersKind(r, false)
}

// decodeOffersKind decodes a length-prefixed offer list: 24 bytes per
// legacy offer, 49 per slate offer (the legacy fields plus id, charge eCPM,
// hold and billing model).
func decodeOffersKind(r *recReader, slate bool) ([]Offer, bool) {
	per := 24
	if slate {
		per = 49
	}
	n := r.u32()
	if r.err != nil || int(n) > r.remaining()/per {
		return nil, false
	}
	if n == 0 {
		return nil, true
	}
	offers := make([]Offer, n)
	for i := range offers {
		o := &offers[i]
		o.Campaign = r.i32()
		o.AdType = int(r.u32())
		o.Cost = r.f64()
		o.Utility = r.f64()
		if slate {
			o.ID = r.u64()
			o.ChargeECPM = r.f64()
			o.Hold = r.f64()
			o.Model = model.BillingModel(r.u8())
		}
	}
	return offers, r.err == nil
}

// SnapshotCampaign is one campaign's state inside a decoded snapshot.
// BudgetBits/SpentBits carry the exact IEEE-754 bits the snapshot recorded,
// so replay restores bit-identical accumulators; Budget/Spent are the same
// values as floats for consumers that only read. The class and controller
// fields come from v2 snapshots; v1 payloads decode with the inert defaults
// (best-effort, rate 1, allowance +Inf).
type SnapshotCampaign struct {
	ID         int32
	Loc        geo.Point
	Radius     float64
	BudgetBits uint64
	SpentBits  uint64
	Paused     bool
	Tags       []float64

	Guaranteed    bool
	Floor         float64
	Penalty       float64
	RateBits      uint64
	AllowanceBits uint64

	// Billing state from v3 snapshots; zero (fixed contract, no escrow)
	// for earlier versions.
	BillingModel  model.BillingModel
	ReserveBits   uint64
	EventRateBits uint64
	EscrowBits    uint64
	ConvertedBits uint64
	Conversions   int64
}

// Budget returns the campaign budget as a float.
func (c *SnapshotCampaign) Budget() float64 { return math.Float64frombits(c.BudgetBits) }

// Spent returns the spent accumulator as a float.
func (c *SnapshotCampaign) Spent() float64 { return math.Float64frombits(c.SpentBits) }

// Billing returns the campaign's recorded billing contract.
func (c *SnapshotCampaign) Billing() model.Billing {
	return model.Billing{
		Model:       c.BillingModel,
		ReserveECPM: math.Float64frombits(c.ReserveBits),
		EventRate:   math.Float64frombits(c.EventRateBits),
	}
}

// SnapshotState is a decoded compacted-state payload. PhiBoostBits and
// PacingEpoch come from v2 snapshots; v1 payloads decode with the inert
// defaults (boost 1, epoch 0).
type SnapshotState struct {
	Arrivals     int64
	Offers       int64
	UtilityBits  uint64
	SpentBits    uint64
	GammaMinBits uint64
	GammaMaxBits uint64
	PhiBoostBits uint64
	PacingEpoch  int64
	Campaigns    []SnapshotCampaign

	// Billing is the global billing section of a v3 snapshot; nil for
	// earlier versions (no billing state to restore).
	Billing *SnapshotBilling
}

// SnapshotBilling is the global billing sidecar state a v3 snapshot
// carries: accumulator bits, the open escrow table in ID order and the live
// idempotency-key window oldest-first.
type SnapshotBilling struct {
	NextID           uint64
	EvictNext        uint64
	HeldBits         uint64
	ReleasedBits     uint64
	ConvertedRevBits uint64
	Conversions      int64
	RevenueBits      [model.NumBillingModels]uint64
	Open             []SnapshotOpenOffer
	IdemKeys         []string
}

// SnapshotOpenOffer is one open escrowed offer inside a v3 snapshot.
type SnapshotOpenOffer struct {
	ID       uint64
	Campaign int32
	Model    model.BillingModel
	Hold     float64
}

// GammaMin returns the recorded γ lower bound as a float (+Inf when nothing
// was observed yet).
func (s *SnapshotState) GammaMin() float64 { return math.Float64frombits(s.GammaMinBits) }

// GammaMax returns the recorded γ upper bound as a float.
func (s *SnapshotState) GammaMax() float64 { return math.Float64frombits(s.GammaMaxBits) }

// DecodeSnapshot decodes a compacted-state payload. Like DecodeRecord it is
// total: malformed input errors, never panics.
func DecodeSnapshot(data []byte) (SnapshotState, error) {
	if len(data) == 0 || data[0] < snapshotV1 || data[0] > snapshotV3 {
		return SnapshotState{}, errors.New("unsupported snapshot version")
	}
	v2 := data[0] >= snapshotV2
	v3 := data[0] == snapshotV3
	r := &recReader{data: data[1:]}
	s := SnapshotState{
		Arrivals:     r.i64(),
		Offers:       r.i64(),
		UtilityBits:  r.u64(),
		SpentBits:    r.u64(),
		GammaMinBits: r.u64(),
		GammaMaxBits: r.u64(),
		PhiBoostBits: math.Float64bits(1),
	}
	if v2 {
		s.PhiBoostBits = r.u64()
		s.PacingEpoch = r.i64()
	}
	n := r.u32()
	if r.err != nil {
		return SnapshotState{}, r.err
	}
	for i := 0; i < int(n); i++ {
		c := SnapshotCampaign{
			ID:            r.i32(),
			Loc:           geo.Point{X: r.f64(), Y: r.f64()},
			Radius:        r.f64(),
			BudgetBits:    r.u64(),
			SpentBits:     r.u64(),
			Paused:        r.u8() != 0,
			RateBits:      math.Float64bits(1),
			AllowanceBits: math.Float64bits(math.Inf(1)),
		}
		if v2 {
			c.Guaranteed = r.u8() != 0
			c.Floor = r.f64()
			c.Penalty = r.f64()
			c.RateBits = r.u64()
			c.AllowanceBits = r.u64()
		}
		if v3 {
			c.BillingModel = model.BillingModel(r.u8())
			c.ReserveBits = r.u64()
			c.EventRateBits = r.u64()
			c.EscrowBits = r.u64()
			c.ConvertedBits = r.u64()
			c.Conversions = r.i64()
		}
		nt := r.u32()
		if r.err != nil || int(nt) > r.remaining()/8 {
			return SnapshotState{}, fmt.Errorf("snapshot campaign %d is malformed", i)
		}
		c.Tags = make([]float64, nt)
		for j := range c.Tags {
			c.Tags[j] = r.f64()
		}
		s.Campaigns = append(s.Campaigns, c)
	}
	if v3 {
		sb := &SnapshotBilling{
			NextID:           r.u64(),
			EvictNext:        r.u64(),
			HeldBits:         r.u64(),
			ReleasedBits:     r.u64(),
			ConvertedRevBits: r.u64(),
			Conversions:      r.i64(),
		}
		for m := range sb.RevenueBits {
			sb.RevenueBits[m] = r.u64()
		}
		no := r.u32()
		if r.err != nil || int(no) > r.remaining()/21 {
			return SnapshotState{}, errors.New("snapshot escrow table is malformed")
		}
		for i := 0; i < int(no); i++ {
			sb.Open = append(sb.Open, SnapshotOpenOffer{
				ID:       r.u64(),
				Campaign: r.i32(),
				Model:    model.BillingModel(r.u8()),
				Hold:     r.f64(),
			})
		}
		nk := r.u32()
		if r.err != nil || int(nk) > r.remaining()/4 {
			return SnapshotState{}, errors.New("snapshot idempotency window is malformed")
		}
		for i := 0; i < int(nk); i++ {
			kl := r.u32()
			if r.err != nil || int(kl) > r.remaining() {
				return SnapshotState{}, errors.New("snapshot idempotency window is malformed")
			}
			sb.IdemKeys = append(sb.IdemKeys, string(r.data[r.off:r.off+int(kl)]))
			r.off += int(kl)
		}
		s.Billing = sb
	}
	if err := r.done(); err != nil {
		return SnapshotState{}, err
	}
	return s, nil
}
