package broker

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"muaa/internal/geo"
)

// encodeV1Arrival hand-builds a legacy type-4 arrival record (γ bounds +
// offers, no customer block) the way pre-v2 brokers wrote it.
func encodeV1Arrival(gmin, gmax float64, offers []Offer) []byte {
	buf := []byte{recArrival}
	buf = appendF64(buf, gmin)
	buf = appendF64(buf, gmax)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(offers)))
	for i := range offers {
		o := &offers[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.Campaign))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.AdType))
		buf = appendF64(buf, o.Cost)
		buf = appendF64(buf, o.Utility)
	}
	return buf
}

// TestDecodeRecordV1Arrival: legacy records decode with HasCustomer false
// and the full offer list intact — old WALs stay replayable and auditable.
func TestDecodeRecordV1Arrival(t *testing.T) {
	offers := []Offer{
		{Campaign: 3, AdType: 1, Cost: 0.25, Utility: 1.5},
		{Campaign: 7, AdType: 0, Cost: 0.125, Utility: 0.75},
	}
	d, err := DecodeRecord(encodeV1Arrival(0.5, 4.0, offers))
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != RecordArrival || d.HasCustomer {
		t.Fatalf("v1 arrival decoded as %v HasCustomer=%v", d.Kind, d.HasCustomer)
	}
	if d.GammaMin != 0.5 || d.GammaMax != 4.0 {
		t.Fatalf("γ bounds %g/%g", d.GammaMin, d.GammaMax)
	}
	if !reflect.DeepEqual(d.Offers, offers) {
		t.Fatalf("offers %+v", d.Offers)
	}
}

// TestDecodeRecordV2RoundTrip: logArrival's encoding decodes back to the
// arrival and offers it was given, bit for bit.
func TestDecodeRecordV2RoundTrip(t *testing.T) {
	b := newTestBroker(t)
	a := Arrival{
		Loc:       geo.Point{X: 0.25, Y: 0.75},
		Capacity:  3,
		ViewProb:  0.625,
		Interests: []float64{0.1, 0.9, 0.5},
		Hour:      13.5,
	}
	offers := []Offer{{Campaign: 2, AdType: 3, Cost: 1.0 / 3.0, Utility: math.Pi}}

	// Capture the bytes logArrival would append by encoding through the same
	// path: build the record manually with the broker's current γ bits.
	bp := recPool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = append(buf, recArrivalV2)
	buf = binary.LittleEndian.AppendUint64(buf, b.gammaMin.bits.Load())
	buf = binary.LittleEndian.AppendUint64(buf, b.gammaMax.bits.Load())
	buf = appendF64(buf, a.Loc.X)
	buf = appendF64(buf, a.Loc.Y)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a.Capacity))
	buf = appendF64(buf, a.ViewProb)
	buf = appendF64(buf, a.Hour)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.Interests)))
	for _, v := range a.Interests {
		buf = appendF64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(offers)))
	for i := range offers {
		o := &offers[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.Campaign))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o.AdType))
		buf = appendF64(buf, o.Cost)
		buf = appendF64(buf, o.Utility)
	}
	rec := append([]byte(nil), buf...)
	*bp = buf
	recPool.Put(bp)

	d, err := DecodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != RecordArrivalV2 || !d.HasCustomer {
		t.Fatalf("kind %v HasCustomer=%v", d.Kind, d.HasCustomer)
	}
	if !reflect.DeepEqual(d.Customer, a) {
		t.Fatalf("customer %+v != %+v", d.Customer, a)
	}
	if !reflect.DeepEqual(d.Offers, offers) {
		t.Fatalf("offers %+v", d.Offers)
	}
	// Fresh broker: γ min is +Inf, max is 0 — the decoded floats must carry
	// those exact values through the bits round-trip.
	if !math.IsInf(d.GammaMin, 1) || d.GammaMax != 0 {
		t.Fatalf("γ bounds %g/%g", d.GammaMin, d.GammaMax)
	}
}

// TestDecodeSnapshotRoundTrip: encodeSnapshot → DecodeSnapshot preserves
// every accumulator bit and campaign field.
func TestDecodeSnapshotRoundTrip(t *testing.T) {
	b := newTestBroker(t)
	id, err := b.RegisterCampaign(geo.Point{X: 0.5, Y: 0.5}, 0.2, 10, []float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetPaused(id, true); err != nil {
		t.Fatal(err)
	}
	b.arrivals.Store(42)
	b.offers.Store(7)
	b.utility.bits.Store(math.Float64bits(3.75))
	b.spent.bits.Store(math.Float64bits(1.25))

	s, err := DecodeSnapshot(b.encodeSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if s.Arrivals != 42 || s.Offers != 7 {
		t.Fatalf("counters %d/%d", s.Arrivals, s.Offers)
	}
	if math.Float64frombits(s.UtilityBits) != 3.75 || math.Float64frombits(s.SpentBits) != 1.25 {
		t.Fatal("accumulator bits lost")
	}
	if len(s.Campaigns) != 1 {
		t.Fatalf("campaigns %d", len(s.Campaigns))
	}
	c := &s.Campaigns[0]
	if c.ID != id || !c.Paused || c.Budget() != 10 || c.Radius != 0.2 ||
		!reflect.DeepEqual(c.Tags, []float64{1, 0, 1}) {
		t.Fatalf("campaign %+v", c)
	}
}

// TestDecodeRecordMalformed: decoders are total — truncated, trailing-junk
// and unknown-type payloads error, never panic.
func TestDecodeRecordMalformed(t *testing.T) {
	valid := encodeV1Arrival(1, 2, []Offer{{Campaign: 1, AdType: 0, Cost: 1, Utility: 1}})
	cases := map[string][]byte{
		"empty":        nil,
		"unknown type": {99, 0, 0},
		"truncated":    valid[:len(valid)-3],
		"trailing":     append(append([]byte(nil), valid...), 0xFF),
		"huge count":   {recArrival, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, rec := range cases {
		if _, err := DecodeRecord(rec); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	if _, err := DecodeSnapshot([]byte{snapshotV1, 1, 2}); err == nil {
		t.Error("truncated v1 snapshot: no error")
	}
	if _, err := DecodeSnapshot([]byte{snapshotV2, 1, 2}); err == nil {
		t.Error("truncated v2 snapshot: no error")
	}
	if _, err := DecodeSnapshot([]byte{0xEE}); err == nil {
		t.Error("bad version: no error")
	}
}
