package broker

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"muaa/internal/obs"
	"muaa/internal/wal"
	"muaa/internal/workload"
)

// crashWAL is the WAL tuning every crash test uses: write-through on each
// append (so "kill the process" loses nothing already returned to the
// caller), no fsync (page cache is enough for a process crash), no
// background flusher and no automatic snapshots (an abandoned instance
// must never compact the directory a recovery is reading).
func crashWAL() wal.Options {
	return wal.Options{FlushEvery: 1, Sync: wal.SyncNone, FlushInterval: -1, SnapshotEvery: -1}
}

// replayTranscriptRecovered renders the same transcript replayTranscript
// does, but through a crash: the stream runs on a durable broker that is
// abandoned without Close after crashAt ops (every record already on
// disk — a kill at a record boundary), then a second broker recovers the
// directory and serves the rest. Byte-equality with the uninterrupted
// golden is the recovery-determinism acceptance bar. Both boots carry a
// full instrument registry, pinning that instrumentation doesn't bend
// recovery either.
func replayTranscriptRecovered(t *testing.T, cfg Config, campaigns, ops int, seed int64, crashAt int) string {
	t.Helper()
	dir := t.TempDir()
	cfg.DataDir = dir
	cfg.WAL = crashWAL()
	cfg.Metrics = obs.NewRegistry()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, c := range specs {
		id, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags)
		if err != nil {
			t.Fatal(err)
		}
		writeRegisterLine(&sb, id, c)
	}
	for i, op := range stream[:crashAt] {
		applyTranscriptOp(t, b, &sb, i, op)
	}
	// Crash: no Close, no flush beyond what each append already wrote.
	cfg.Metrics = obs.NewRegistry()
	b2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovering after crash at op %d: %v", crashAt, err)
	}
	defer b2.Close()
	for i, op := range stream[crashAt:] {
		applyTranscriptOp(t, b2, &sb, crashAt+i, op)
	}
	writeFinalLines(&sb, b2)
	return sb.String()
}

// TestRecoveredReplayMatchesGolden is the tentpole's determinism pin: a
// broker killed mid-stream and recovered from its WAL must finish the
// golden stream byte-identically to the never-crashed reference broker —
// same offers, same γ, same adaptive-g, same final floats to the last bit.
func TestRecoveredReplayMatchesGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "replay_default.golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	for _, crashAt := range []int{0, 1, 1500, 2999} {
		cfg := Config{AdTypes: workload.DefaultAdTypes()}
		got := replayTranscriptRecovered(t, cfg, 32, 3000, 42, crashAt)
		if got != string(want) {
			t.Fatalf("crash at op %d: recovered replay diverged from golden (%d vs %d bytes, first diff at byte %d)",
				crashAt, len(got), len(want), firstDiff(got, string(want)))
		}
	}
}

// TestRecoveredReplayDoubleCrash crashes twice — including once during the
// recovered instance's own appends — and still demands the golden
// transcript: recovery must compose.
func TestRecoveredReplayDoubleCrash(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "replay_default.golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	dir := t.TempDir()
	cfg := Config{AdTypes: workload.DefaultAdTypes(), DataDir: dir, WAL: crashWAL()}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(32, 3000, 42))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		id, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags)
		if err != nil {
			t.Fatal(err)
		}
		writeRegisterLine(&sb, id, c)
	}
	cuts := []int{700, 2100, len(stream)}
	next := 0
	for _, cut := range cuts {
		for i := next; i < cut; i++ {
			applyTranscriptOp(t, b, &sb, i, stream[i])
		}
		next = cut
		if cut == len(stream) {
			break
		}
		if b, err = New(cfg); err != nil { // crash + recover
			t.Fatalf("recovering at op %d: %v", cut, err)
		}
	}
	defer b.Close()
	writeFinalLines(&sb, b)
	if got := sb.String(); got != string(want) {
		t.Fatalf("double-crash replay diverged from golden (%d vs %d bytes, first diff at byte %d)",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

// refState is one point of the never-crashed reference trajectory: the
// broker's observable state after the first n mutation records.
type refState struct {
	stats     Stats
	campaigns []Campaign
}

// TestCrashRecoveryProperty is the satellite property test: run a seeded
// BrokerLoad on a durable broker, kill it at an arbitrary point — clean
// record boundaries and torn tails cut at random byte offsets — recover,
// and require that (a) the recovered state equals the never-crashed
// reference after exactly RecordsReplayed mutations, and (b) no campaign
// has Spent exceeding Budget. The reference trajectory is recorded from an
// in-memory broker applying the same stream.
func TestCrashRecoveryProperty(t *testing.T) {
	const campaigns, ops, seed = 24, 2000, 7
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}

	// Reference trajectory, one refState per mutation record.
	ref, err := newMemory(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	trajectory := []refState{{stats: ref.Stats(), campaigns: ref.Campaigns()}}
	snap := func() { trajectory = append(trajectory, refState{stats: ref.Stats(), campaigns: ref.Campaigns()}) }
	for _, c := range specs {
		if _, err := ref.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
		snap()
	}
	for _, op := range stream {
		if applyLoadOp(t, ref, op) {
			snap()
		}
	}

	// One durable run to produce the log (abandoned, never Closed).
	srcDir := t.TempDir()
	cfg := Config{AdTypes: workload.DefaultAdTypes(), DataDir: srcDir, WAL: crashWAL()}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range stream {
		applyLoadOp(t, b, op)
	}

	segs, err := filepath.Glob(filepath.Join(srcDir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", segs, err)
	}
	segName := filepath.Base(segs[0])
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	cuts := []int{0} // clean kill first, then random torn tails
	for i := 0; i < 12; i++ {
		cuts = append(cuts, 1+rng.Intn(len(full)/4))
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		copyFile(t, filepath.Join(srcDir, "snapshot"), filepath.Join(dir, "snapshot"))
		if err := os.WriteFile(filepath.Join(dir, segName), full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.DataDir = dir
		rb, err := New(rcfg)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		info := rb.RecoveryStats()
		if info.RecordsReplayed >= len(trajectory) {
			t.Fatalf("cut %d: replayed %d records, reference has %d states", cut, info.RecordsReplayed, len(trajectory))
		}
		want := trajectory[info.RecordsReplayed]
		if got := rb.Stats(); got != want.stats {
			t.Fatalf("cut %d: recovered stats %+v != reference %+v after %d records",
				cut, got, want.stats, info.RecordsReplayed)
		}
		if got := rb.Campaigns(); !reflect.DeepEqual(got, want.campaigns) {
			t.Fatalf("cut %d: recovered campaigns diverge from reference after %d records", cut, info.RecordsReplayed)
		}
		for _, c := range rb.Campaigns() {
			if c.Spent > c.Budget+1e-9 {
				t.Fatalf("cut %d: campaign %d spent %g exceeds budget %g", cut, c.ID, c.Spent, c.Budget)
			}
		}
		if err := rb.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestSnapshotCycleRecovery runs with an aggressive snapshot cadence so
// several compactions happen mid-stream, closes cleanly, and reopens: the
// reboot must load state entirely from the final snapshot (zero records
// replayed) and match the in-memory reference bit for bit.
func TestSnapshotCycleRecovery(t *testing.T) {
	const campaigns, ops, seed = 16, 1200, 11
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := newMemory(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := Config{
		AdTypes: workload.DefaultAdTypes(),
		DataDir: dir,
		WAL:     wal.Options{FlushEvery: 1, Sync: wal.SyncNone, FlushInterval: -1, SnapshotEvery: 64},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := ref.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range stream {
		applyLoadOp(t, ref, op)
		applyLoadOp(t, b, op)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if seq := walSegmentCount(t, dir); seq != 1 {
		t.Fatalf("after close: %d segments on disk, compaction should leave 1", seq)
	}

	rb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	info := rb.RecoveryStats()
	if !info.SnapshotLoaded || info.RecordsReplayed != 0 || info.Truncated {
		t.Fatalf("clean reboot should load snapshot only, got %+v", info)
	}
	if got, want := rb.Stats(), ref.Stats(); got != want {
		t.Fatalf("rebooted stats %+v != reference %+v", got, want)
	}
	if !reflect.DeepEqual(rb.Campaigns(), ref.Campaigns()) {
		t.Fatal("rebooted campaigns diverge from reference")
	}
}

// TestDurableConcurrentSoak hammers a durable broker from many goroutines
// with an aggressive snapshot cadence, so background compactions (which
// quiesce every shard) race live traffic throughout. After a clean close
// and a reboot the recovered books must balance: counters equal to the
// pre-close instance, no campaign overspent, per-campaign spend summing to
// the global counter. Run under -race in CI — this is the lock-order pin
// for the durability layer.
func TestDurableConcurrentSoak(t *testing.T) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	opsPerWorker := 300
	if testing.Short() {
		workers, opsPerWorker = 4, 80
	}
	const campaigns = 32
	specs, ops, err := workload.BrokerLoad(
		workload.DefaultBrokerLoadConfig(campaigns, workers*opsPerWorker, 4321))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{
		AdTypes: workload.DefaultAdTypes(), Shards: 8, DataDir: dir,
		WAL: wal.Options{FlushEvery: 8, Sync: wal.SyncNone, SnapshotEvery: 200},
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += workers {
				applyOp(t, b, ops[i])
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	preStats := b.Stats()
	preCampaigns := b.Campaigns()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	rb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if got := rb.Stats(); got != preStats {
		t.Fatalf("recovered stats %+v != pre-close %+v", got, preStats)
	}
	if !reflect.DeepEqual(rb.Campaigns(), preCampaigns) {
		t.Fatal("recovered campaigns diverge from pre-close state")
	}
	var campaignSpend float64
	for _, c := range rb.Campaigns() {
		campaignSpend += c.Spent
		if c.Spent > c.Budget+1e-9 {
			t.Errorf("campaign %d overspent after recovery: %g > %g", c.ID, c.Spent, c.Budget)
		}
	}
	if math.Abs(campaignSpend-rb.Stats().BudgetSpent) > 1e-6 {
		t.Errorf("per-campaign spend %g disagrees with recovered counter %g",
			campaignSpend, rb.Stats().BudgetSpent)
	}
}

// TestRecoverValidation pins the constructor contract edges.
func TestRecoverValidation(t *testing.T) {
	if _, err := Recover("", Config{AdTypes: workload.DefaultAdTypes()}); err == nil {
		t.Fatal("Recover with empty dir must error")
	}
	// A corrupt snapshot must fail recovery loudly, never silently serve
	// from empty state.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{AdTypes: workload.DefaultAdTypes(), DataDir: dir}); err == nil {
		t.Fatal("recovery from a corrupt snapshot must error")
	}
}

// TestInMemoryCloseNoop: Close on an in-memory broker is a safe no-op.
func TestInMemoryCloseNoop(t *testing.T) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := b.RecoveryStats(); got != (RecoveryInfo{}) {
		t.Fatalf("in-memory broker reports recovery %+v", got)
	}
}

// applyLoadOp maps one workload op onto broker calls, reporting whether it
// appended a WAL record (arrivals, top-ups and pauses do; stats reads
// don't).
func applyLoadOp(t *testing.T, b *Broker, op workload.BrokerOp) bool {
	t.Helper()
	switch op.Kind {
	case workload.OpArrival:
		if _, err := b.Arrive(Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		}); err != nil {
			t.Fatal(err)
		}
		return true
	case workload.OpTopUp:
		if err := b.TopUp(op.Campaign, op.Amount); err != nil {
			t.Fatal(err)
		}
		return true
	case workload.OpPause:
		if err := b.SetPaused(op.Campaign, op.Paused); err != nil {
			t.Fatal(err)
		}
		return true
	case workload.OpStats:
		_ = b.Stats()
	}
	return false
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func walSegmentCount(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}
