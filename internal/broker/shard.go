package broker

import (
	"math"
	"sync"
	"sync/atomic"

	"muaa/internal/geo"
	"muaa/internal/model"
)

// atomicFloat is a float64 with atomic load/store/add/min/max, stored as IEEE
// bits in a uint64. Mutable campaign money and the broker's global
// accumulators live in these so snapshot readers (Stats, Campaigns) never
// take a lock and never see a torn float.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Add folds v into the accumulator with a CAS loop; safe for any number of
// concurrent adders.
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Min lowers the value to v if v is smaller; concurrent observers converge on
// the true running minimum.
func (f *atomicFloat) Min(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Max raises the value to v if v is larger.
func (f *atomicFloat) Max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// campaign is the broker's internal per-campaign state. Immutable identity
// (id, loc, radius, tags, shard) is set at registration; the mutable money
// fields are atomics written only while the owning shard's lock is held —
// the lock serializes the check-then-spend sequence among writers, the
// atomics let Stats/Campaigns read without joining the lock queue.
type campaign struct {
	id     int32
	loc    geo.Point
	radius float64
	tags   []float64
	shard  int // owning stripe index

	// AdCell-style class, immutable after registration: a guaranteed-delivery
	// campaign carries a delivery floor (fraction of budget due by
	// end-of-day, pro-rated by arrival hour) and a per-unit shortfall
	// penalty; best-effort campaigns have all three zero.
	guaranteed bool
	floor      float64
	penalty    float64

	// billing is the campaign's billing contract, immutable after
	// registration. The zero value is the seed fixed-cost contract.
	billing model.Billing

	budget atomicFloat
	spent  atomicFloat
	paused atomic.Bool

	// Deferred-billing money, written only under the owning shard's lock
	// (offer-time holds) or shard lock + billing mutex (conversion,
	// expiry): escrow is budget held against open CPC/CPA offers,
	// converted the revenue collected by conversions, conversions their
	// count. All stay zero for non-deferred campaigns.
	escrow      atomicFloat
	converted   atomicFloat
	conversions atomic.Int64

	// Pacing-controller actuators, written only under the full quiescence
	// PacingStep takes (all shard locks held): rate is the spend-rate cap the
	// last controller epoch chose (1 = uncapped), allowance the epoch's
	// absolute spend ceiling (+Inf = uncapped). Both default to uncapped and
	// stay there on a controller-less broker.
	rate      atomicFloat
	allowance atomicFloat
}

// snapshot copies the live state into the exported value type.
func (c *campaign) snapshot() Campaign {
	return Campaign{
		ID: c.id, Loc: c.loc, Radius: c.radius,
		Budget: c.budget.Load(), Spent: c.spent.Load(),
		Tags: append([]float64(nil), c.tags...), Paused: c.paused.Load(),
		Guaranteed: c.guaranteed, Floor: c.floor, Penalty: c.penalty,
		Rate:    c.rate.Load(),
		Billing: c.billing,
		Escrow:  c.escrow.Load(), Converted: c.converted.Load(),
		Conversions: c.conversions.Load(),
	}
}

// shard owns the campaigns whose centers fall in one horizontal stripe of
// the service area: a spatial index over them, guarded by mu (the grid's
// int32 entries resolve through the broker's dense campaign directory).
// Arrivals lock the contiguous stripe range their query disk overlaps
// (ascending — the global lock order), so arrivals in disjoint regions
// proceed in parallel.
type shard struct {
	mu   sync.Mutex
	grid *geo.Grid

	// arena is the reusable scan scratch owned by whoever holds this shard's
	// lock as the lowest stripe of a locked interval — see scanArena for the
	// ownership rule. Only ever touched under mu.
	arena scanArena

	_ [64]byte // keep hot shard locks on separate cache lines
}
