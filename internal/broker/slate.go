package broker

// The slate scan: MCKP slot fill with eCPM-normalized auction pricing.
//
// The legacy scan picks one best item per candidate, then trims to capacity
// by efficiency — an exact MCKP hull-greedy only at capacity 1. The slate
// scan generalizes it: each surviving candidate becomes an MCKP class whose
// items are the threshold-admitted (ad-type) choices priced at billing-
// expected cost, and up to a_i slots are filled by knapsack.SlotSolver. At
// capacity 1 the walk below is shaped exactly like the legacy pass B, so an
// all-fixed fleet takes bit-identical decisions (TestSlateEquivalenceSerial);
// the broker routes arrivals here only when a billed campaign exists or
// Config.Slate forces it.
//
// Pricing follows the offer scan: each winner pays the displaced runner-up's
// bid in eCPM, floored at its own reserve and capped at its own bid
// (second-price with reserve). Fixed-billing winners bypass the auction and
// are charged their catalog cost, exactly as the legacy commit charges them.
//
// Money safety: affordability is checked against the raw per-event cost
// t.Cost (not the expected cost), and every possible charge — catalog cost,
// CPM second price /1000, deferred hold charge/1000/rate — is ≤ t.Cost, so
// with remaining = budget − spent − escrow the invariant
// spent + escrow ≤ budget (+ the legacy 1e-12 admission slack) holds through
// offer, conversion (escrow → spent, 1:1) and expiry (escrow released).

import (
	"math"

	"muaa/internal/model"
)

// slateItem mirrors one solver item: the admitted (candidate, ad-type)
// choice with its utility, expected-cost efficiency and eCPM bid. Flat and
// index-aligned with the SlotSolver's item order via scanArena.classItem0.
type slateItem struct {
	adType int32
	util   float64
	eff    float64
	bid    float64
}

// slateRep is the capacity-1 walk's per-candidate representative: the best
// admitted item, shaped exactly like the legacy scan's bestK selection.
type slateRep struct {
	ci   int32 // index into ar.cand
	k    int32
	util float64
	eff  float64
	bid  float64
}

// scanSlate is the slate counterpart of scanCandidates: pass A computes the
// γ-independent terms (identical to the legacy pass A plus the escrow
// deduction — budget − spent − 0 is bit-identical to budget − spent, so
// never-escrowed fleets see the same numbers), pass B folds billing into the
// threshold walk and fills up to a.Capacity slots. Caller holds the stripe
// locks that produced ar.ids.
func (b *Broker) scanSlate(ar *scanArena, a *Arrival, dir []*campaign, boost float64) scanTally {
	var tally scanTally
	tally.gathered = uint64(len(ar.ids))
	// Funnel attribution mirrors scanCandidates: every gathered id records
	// exactly one disposition event when the funnel is enabled.
	rec := b.funnel != nil
	ar.fev = ar.fev[:0]
	cu := &ar.customer
	*cu = model.Customer{Loc: a.Loc, Capacity: a.Capacity, ViewProb: a.ViewProb,
		Interests: a.Interests, Arrival: a.Hour}
	ve := &ar.vendor
	ar.cand = ar.cand[:0]
	ar.base = ar.base[:0]
	ar.delta = ar.delta[:0]
	ar.remaining = ar.remaining[:0]
	ar.headroom = ar.headroom[:0]
	ar.relief = ar.relief[:0]
	ar.cands = ar.cands[:0]

	// Pass A: filters and the γ-independent per-candidate terms. Same
	// sequence as scanCandidates pass A — the duplication is deliberate, so
	// the legacy path stays untouched while the equivalence test pins this
	// copy to it.
	for _, id := range ar.ids {
		c := dir[id]
		if c.paused.Load() {
			tally.paused++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispPaused})
			}
			continue
		}
		budget := c.budget.Load()
		if budget <= 0 {
			tally.exhausted++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispExhausted})
			}
			continue
		}
		if b.vectorPref && len(c.tags) != len(a.Interests) {
			tally.mismatch++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispTagMismatch})
			}
			continue // mismatched taxonomies: preference undefined, not served
		}
		spent := c.spent.Load()
		*ve = model.Vendor{Loc: c.loc, Radius: c.radius, Budget: budget, Tags: c.tags}
		var s float64
		if b.vectorPref {
			s, ar.weights = b.pearson.ScoreScratch(cu, ve, a.Hour, ar.weights)
		} else {
			s = b.pref.Score(cu, ve, a.Hour)
		}
		if s <= 0 || math.IsNaN(s) {
			tally.lowScore++
			if rec {
				ar.fev = append(ar.fev, funnelEvent{id: id, disp: dispLowScore})
			}
			continue
		}
		if s > 1 {
			s = 1
		}
		d := a.Loc.Dist(c.loc)
		if d < b.minDist {
			d = b.minDist
		}
		base := a.ViewProb * s / d
		delta := spent / budget
		relief := c.guaranteed && c.floor > 0 && spent < c.floor*budget*(a.Hour/24)
		// Escrowed budget is committed money: it is unavailable to new
		// offers until the conversion lands or the hold expires.
		remaining := budget - spent - c.escrow.Load()
		headroom := remaining
		if b.cfg.Pacing > 0 {
			allowance := b.cfg.Pacing * budget * a.Hour / 24
			if paced := allowance - spent; paced < remaining {
				remaining = paced
			}
		}
		if b.controller != nil {
			if paced := c.allowance.Load() - spent; paced < remaining {
				remaining = paced
			}
		}
		ar.cand = append(ar.cand, c)
		ar.base = append(ar.base, base)
		ar.delta = append(ar.delta, delta)
		ar.remaining = append(ar.remaining, remaining)
		ar.headroom = append(ar.headroom, headroom)
		ar.relief = append(ar.relief, relief)
	}

	// Pass B: still the sequential O-AFA walk — γ observations feed forward
	// candidate to candidate — with billing folded in. Capacity 1 keeps the
	// legacy walk shape for bit-exact equivalence; larger capacities build
	// MCKP classes and let the slot solver fill the slate.
	if a.Capacity == 1 {
		b.slatePassSingle(ar, &tally, boost, rec)
	} else {
		b.slatePassSlots(ar, a.Capacity, &tally, boost, rec)
	}
	return tally
}

// slateDisposition folds one servable-candidate outcome into the tally when
// no item of the candidate was admitted, recording the matching funnel event
// when attribution is on.
func (b *Broker) slateDisposition(ar *scanArena, tally *scanTally, rec bool, id int32, affordable, aboveReserve bool, headroom float64) {
	var d funnelDisposition
	switch {
	case aboveReserve:
		tally.belowThreshold++
		d = dispBelowThreshold
	case affordable:
		tally.belowReserve++
		d = dispBelowReserve
	case headroom < b.minAdCost:
		tally.exhausted++
		d = dispExhausted
	default:
		tally.unaffordable++
		d = dispUnaffordable
	}
	if rec {
		ar.fev = append(ar.fev, funnelEvent{id: id, disp: d})
	}
}

// slatePassSingle is the capacity-1 pass B: one best item per candidate,
// best-efficiency candidate wins the slot, the displaced runner-up prices
// it. With every campaign on fixed billing the admitted set, the winner and
// the committed Offer are bit-identical to the legacy pass B plus trim.
func (b *Broker) slatePassSingle(ar *scanArena, tally *scanTally, boost float64, rec bool) {
	adTypes := b.cfg.AdTypes
	ar.reps = ar.reps[:0]
	for i, c := range ar.cand {
		phi := b.threshold(ar.delta[i])
		if boost != 1 {
			phi *= boost
		}
		if ar.relief[i] {
			phi *= guaranteeRelief
		}
		bi := c.billing
		base, remaining := ar.base[i], ar.remaining[i]
		bestK, bestU, bestEff, bestBid := -1, 0.0, 0.0, 0.0
		affordable, aboveReserve := false, false
		for k, t := range adTypes {
			if t.Cost > remaining+1e-12 {
				continue
			}
			affordable = true
			bid := bi.BidECPM(t.Cost)
			if bid < bi.ReserveECPM {
				continue // reserve-priced out of the auction
			}
			aboveReserve = true
			util := base * t.Effect
			eff := util / bi.ExpectedCost(t.Cost)
			b.observeEfficiency(eff)
			if eff < phi {
				continue
			}
			if util > bestU {
				bestK, bestU, bestEff, bestBid = k, util, eff, bid
			}
		}
		if bestK >= 0 {
			tally.offered++
			ar.reps = append(ar.reps, slateRep{
				ci: int32(i), k: int32(bestK), util: bestU, eff: bestEff, bid: bestBid,
			})
			continue
		}
		b.slateDisposition(ar, tally, rec, c.id, affordable, aboveReserve, ar.headroom[i])
	}
	if len(ar.reps) == 0 {
		return
	}
	// Winner and runner-up by (efficiency desc, campaign asc): reps ascend
	// by campaign id, so the strict > scan resolves ties to the lower id —
	// the same total order the legacy capacity trim sorts by.
	wi, ri := -1, -1
	for j := range ar.reps {
		switch {
		case wi < 0 || ar.reps[j].eff > ar.reps[wi].eff:
			ri = wi
			wi = j
		case ri < 0 || ar.reps[j].eff > ar.reps[ri].eff:
			ri = j
		}
	}
	runnerBid := 0.0
	if ri >= 0 {
		runnerBid = ar.reps[ri].bid
		tally.trimmed = uint64(len(ar.reps) - 1)
	}
	w := &ar.reps[wi]
	ar.cands = append(ar.cands,
		priceSlateOffer(ar.cand[w.ci], adTypes, int(w.k), w.util, w.eff, w.bid, runnerBid))
	if rec {
		// One slot: the winner was offered, every other admitted rep lost it.
		for j := range ar.reps {
			d := dispDisplaced
			if j == wi {
				d = dispOffered
			}
			ar.fev = append(ar.fev, funnelEvent{id: ar.cand[ar.reps[j].ci].id, disp: d})
		}
	}
}

// slatePassSlots is the capacity ≥ 2 pass B: each candidate with admitted
// items becomes an MCKP class (items priced at expected cost) and the slot
// solver fills up to `capacity` slots in decreasing best-item efficiency —
// the same currency the capacity-1 winner scan and the legacy trim rank by.
func (b *Broker) slatePassSlots(ar *scanArena, capacity int, tally *scanTally, boost float64, rec bool) {
	adTypes := b.cfg.AdTypes
	s := &ar.slot
	s.Reset()
	ar.items = ar.items[:0]
	ar.classCand = ar.classCand[:0]
	ar.classItem0 = ar.classItem0[:0]
	for i, c := range ar.cand {
		phi := b.threshold(ar.delta[i])
		if boost != 1 {
			phi *= boost
		}
		if ar.relief[i] {
			phi *= guaranteeRelief
		}
		bi := c.billing
		base, remaining := ar.base[i], ar.remaining[i]
		opened := false
		affordable, aboveReserve := false, false
		for k, t := range adTypes {
			if t.Cost > remaining+1e-12 {
				continue
			}
			affordable = true
			bid := bi.BidECPM(t.Cost)
			if bid < bi.ReserveECPM {
				continue
			}
			aboveReserve = true
			expCost := bi.ExpectedCost(t.Cost)
			util := base * t.Effect
			eff := util / expCost
			b.observeEfficiency(eff)
			if eff < phi || util <= 0 {
				continue
			}
			if !opened {
				opened = true
				s.Begin()
				ar.classCand = append(ar.classCand, int32(i))
				ar.classItem0 = append(ar.classItem0, int32(len(ar.items)))
			}
			s.Item(expCost, util)
			ar.items = append(ar.items, slateItem{adType: int32(k), util: util, eff: eff, bid: bid})
		}
		if opened {
			tally.offered++
			continue
		}
		b.slateDisposition(ar, tally, rec, c.id, affordable, aboveReserve, ar.headroom[i])
	}
	if s.Classes() == 0 {
		return
	}
	s.Solve(capacity)
	// The first class denied a slot prices every winner: its hypothetical
	// pick is the bid the slate displaced.
	runnerBid := 0.0
	if rc := s.Runner(); rc >= 0 {
		if rp := s.RunnerPick(); rp >= 0 {
			runnerBid = ar.items[int(ar.classItem0[rc])+rp].bid
		}
	}
	for _, ci := range s.Order() {
		it := &ar.items[int(ar.classItem0[ci])+s.Pick(int(ci))]
		c := ar.cand[ar.classCand[ci]]
		ar.cands = append(ar.cands,
			priceSlateOffer(c, adTypes, int(it.adType), it.util, it.eff, it.bid, runnerBid))
	}
	tally.trimmed = uint64(s.Classes() - len(s.Order()))
	if rec {
		// Funnel resolution for admitted classes: slot winners were offered,
		// the classes the solver left out were displaced.
		ar.classWon = ar.classWon[:0]
		for range ar.classCand {
			ar.classWon = append(ar.classWon, false)
		}
		for _, ci := range s.Order() {
			ar.classWon[ci] = true
		}
		for ci, won := range ar.classWon {
			d := dispDisplaced
			if won {
				d = dispOffered
			}
			ar.fev = append(ar.fev, funnelEvent{id: ar.cand[ar.classCand[ci]].id, disp: d})
		}
	}
}

// priceSlateOffer builds the committed-offer candidate for one slate winner.
// Fixed billing bypasses the auction: the offer carries the catalog cost
// alone, field-for-field what the legacy scan produces. Auction billing pays
// min(own bid, max(reserve, runner-up bid)) in eCPM — charged now for CPM,
// escrowed as a per-event hold for CPC/CPA.
func priceSlateOffer(c *campaign, adTypes []model.AdType, k int, util, eff, bid, runnerBid float64) candidate {
	cd := candidate{
		Offer: Offer{Campaign: c.id, AdType: k, Utility: util, Efficiency: eff},
		c:     c,
	}
	bi := c.billing
	if bi.Model == model.BillingFixed {
		cd.Cost = adTypes[k].Cost
		return cd
	}
	charge := runnerBid
	if bi.ReserveECPM > charge {
		charge = bi.ReserveECPM
	}
	if bid < charge {
		charge = bid
	}
	cd.ChargeECPM = charge
	cd.Model = bi.Model
	if bi.Model.Deferred() {
		cd.Hold = charge / 1000 / bi.EventRate
	} else {
		cd.Cost = charge / 1000
	}
	return cd
}

// commitSlate charges every slate winner in ar.cands and appends the offers
// to dst. The money sequence per offer is exactly commitOffers'; deferred
// winners additionally register in the escrow table (assigning the offer ID
// conversion events reference) instead of spending, and auction charges are
// folded into the per-model revenue counters. Caller still holds the stripe
// locks, which cover every winner's owning shard.
func (b *Broker) commitSlate(ar *scanArena, dst []Offer) []Offer {
	m := b.metrics
	bl := b.billing
	var dir []*campaign
	for i := range ar.cands {
		cd := &ar.cands[i]
		if cd.Hold > 0 {
			bl.mu.Lock()
			cd.ID = bl.holdLocked(cd.c, cd.Model, cd.Hold)
			cd.c.escrow.Store(cd.c.escrow.Load() + cd.Hold)
			bl.held.Add(cd.Hold)
			if len(bl.open) > bl.maxOpen {
				if dir == nil {
					dir = *b.dir.Load()
				}
				bl.evictLocked(dir)
			}
			bl.mu.Unlock()
		} else {
			bl.revenue[cd.Model].Add(cd.Cost)
		}
		oldSpent := cd.c.spent.Load()
		newSpent := oldSpent + cd.Cost
		cd.c.spent.Store(newSpent)
		b.spent.Add(cd.Cost)
		b.utility.Add(cd.Utility)
		b.offers.Add(1)
		dst = append(dst, cd.Offer)
		if m != nil {
			m.offersByType[cd.AdType].Inc()
			budget := cd.c.budget.Load()
			if budget-oldSpent >= b.minAdCost && budget-newSpent < b.minAdCost {
				m.exhaustedEvents.Inc()
			}
		}
	}
	return dst
}
