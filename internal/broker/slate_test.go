package broker

// Tests for the MCKP slate serving path: bit-exact equivalence with the
// legacy scan on a_i=1 all-fixed fleets, knapsack edge cases on the serving
// path, auction-pricing properties, WAL v4 crash recovery with escrow, and
// the concurrent escrow soak the -race gate runs.

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/obs"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

// registerLoad registers every campaign of a load (billing included) and
// fails the test on error.
func registerLoad(t *testing.T, b *Broker, specs []workload.BrokerCampaign) {
	t.Helper()
	for _, c := range specs {
		if _, err := b.RegisterCampaignSpec(CampaignSpec{
			Loc: c.Loc, Radius: c.Radius, Budget: c.Budget, Tags: c.Tags,
			Billing: c.Billing,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// applyBilledOp maps one billed-load op onto broker calls, maintaining the
// open escrowed-offer set OpConvert draws from. Returns whether the op
// appended a WAL record (a conversion miss doesn't).
func applyBilledOp(t *testing.T, b *Broker, op workload.BrokerOp, open *[]uint64) bool {
	t.Helper()
	switch op.Kind {
	case workload.OpArrival:
		offers, err := b.Arrive(Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range offers {
			if o.ID != 0 {
				*open = append(*open, o.ID)
			}
		}
		return true
	case workload.OpConvert:
		if len(*open) == 0 {
			return false
		}
		i := int(op.Pick % uint64(len(*open)))
		id := (*open)[i]
		*open = append((*open)[:i], (*open)[i+1:]...)
		if _, err := b.Convert(id, ""); err != nil {
			// Evicted holds are part of the contract; anything else is a bug.
			if err != ErrOfferUnknown {
				t.Fatal(err)
			}
			return false
		}
		return true
	default:
		return applyLoadOp(t, b, op)
	}
}

// TestSlateEquivalenceSerial is the tentpole's equivalence pin: with every
// arrival at capacity 1 and every campaign on fixed-cost billing, a broker
// forced onto the slate path (Config.Slate) must take bit-identical
// decisions to the legacy scan — same offers field for field, same final
// campaign states, counters and γ estimator.
func TestSlateEquivalenceSerial(t *testing.T) {
	lcfg := workload.DefaultBrokerLoadConfig(24, 2500, 5)
	lcfg.Capacity = stats.Range{Lo: 1, Hi: 1}
	specs, stream, err := workload.BrokerLoad(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", Config{AdTypes: workload.DefaultAdTypes()}},
		{"paced", Config{AdTypes: workload.DefaultAdTypes(), Pacing: 1.25}},
		{"fixed_g", Config{AdTypes: workload.DefaultAdTypes(), G: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			legacy, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			scfg := tc.cfg
			scfg.Slate = true
			slate, err := New(scfg)
			if err != nil {
				t.Fatal(err)
			}
			registerLoad(t, legacy, specs)
			registerLoad(t, slate, specs)
			for i, op := range stream {
				if op.Kind != workload.OpArrival {
					applyLoadOp(t, legacy, op)
					applyLoadOp(t, slate, op)
					continue
				}
				a := Arrival{Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
					Interests: op.Interests, Hour: op.Hour}
				lo, err := legacy.Arrive(a)
				if err != nil {
					t.Fatal(err)
				}
				so, err := slate.Arrive(a)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(lo, so) {
					t.Fatalf("op %d: offers diverge\nlegacy: %+v\nslate:  %+v", i, lo, so)
				}
			}
			if ls, ss := legacy.Stats(), slate.Stats(); ls != ss {
				t.Fatalf("stats diverge\nlegacy: %+v\nslate:  %+v", ls, ss)
			}
			if !reflect.DeepEqual(legacy.Campaigns(), slate.Campaigns()) {
				t.Fatal("campaign states diverge")
			}
		})
	}
}

// slateFleet registers n campaigns in a ring around (0.5, 0.5), all
// reachable from the center, with the given billing contract.
func slateFleet(t *testing.T, b *Broker, n int, billing model.Billing) {
	t.Helper()
	for i := 0; i < n; i++ {
		x := 0.5 + 0.02*float64(i%5)
		y := 0.5 + 0.02*float64(i/5)
		if _, err := b.RegisterCampaignSpec(CampaignSpec{
			Loc: geo.Point{X: x, Y: y}, Radius: 0.3, Budget: 1e6,
			Tags: []float64{1, 0.5}, Billing: billing,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func slateArrival(capacity int) Arrival {
	return Arrival{Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: capacity,
		ViewProb: 0.8, Interests: []float64{0.9, 0.4}, Hour: 12}
}

// TestSlateZeroCapacity: an a_i=0 arrival on the slate path is counted but
// never scanned — no offers, no panic, no money moved.
func TestSlateZeroCapacity(t *testing.T) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Slate: true})
	if err != nil {
		t.Fatal(err)
	}
	slateFleet(t, b, 4, model.Billing{Model: model.BillingCPM, ReserveECPM: 1})
	offers, err := b.Arrive(slateArrival(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != 0 {
		t.Fatalf("zero-capacity arrival got %d offers", len(offers))
	}
	st := b.Stats()
	if st.Arrivals != 1 || st.OffersPushed != 0 || st.BudgetSpent != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSlateCapacityExceedsCandidates: with more slots than admitted
// classes, the solver serves every class exactly once — one offer per
// campaign, no duplicates, no phantom slots.
func TestSlateCapacityExceedsCandidates(t *testing.T) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Slate: true})
	if err != nil {
		t.Fatal(err)
	}
	slateFleet(t, b, 3, model.Billing{Model: model.BillingCPM, ReserveECPM: 1})
	offers, err := b.Arrive(slateArrival(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) == 0 || len(offers) > 3 {
		t.Fatalf("capacity 16 over 3 candidates produced %d offers", len(offers))
	}
	seen := map[int32]bool{}
	for _, o := range offers {
		if seen[o.Campaign] {
			t.Fatalf("campaign %d served twice in one slate", o.Campaign)
		}
		seen[o.Campaign] = true
	}
}

// TestSlateAllBelowReserve: when every bid is reserve-priced out, the
// arrival serves nothing and the scan tallies the candidates as
// below_reserve (not unaffordable or below_threshold).
func TestSlateAllBelowReserve(t *testing.T) {
	reg := obs.NewRegistry()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Max catalog bid is 3000 eCPM (cost 3 × 1000); a 1e6 reserve prices
	// every item out of its own auction.
	slateFleet(t, b, 4, model.Billing{Model: model.BillingCPM, ReserveECPM: 1e6})
	for _, capacity := range []int{1, 3} {
		offers, err := b.Arrive(slateArrival(capacity))
		if err != nil {
			t.Fatal(err)
		}
		if len(offers) != 0 {
			t.Fatalf("capacity %d: reserve-priced fleet served %d offers", capacity, len(offers))
		}
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	scrape := sb.String()
	if !strings.Contains(scrape, `muaa_broker_scan_outcomes_total{outcome="below_reserve"} 8`) {
		t.Fatalf("below_reserve counter missing or wrong:\n%s", scrape)
	}
	if b.Stats().BudgetSpent != 0 {
		t.Fatal("reserve-priced fleet spent money")
	}
}

// TestSlateSecondPriceBounds is the auction property pin: on a mixed fleet,
// every auction charge obeys reserve ≤ charge ≤ own bid (second price,
// floored at reserve, capped at first price), and deferred holds equal
// charge/1000/rate.
func TestSlateSecondPriceBounds(t *testing.T) {
	lcfg := workload.BilledBrokerLoadConfig(24, 3000, 17)
	specs, stream, err := workload.BrokerLoad(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	registerLoad(t, b, specs)
	adTypes := workload.DefaultAdTypes()
	checked := 0
	var open []uint64
	for _, op := range stream {
		if op.Kind != workload.OpArrival {
			applyBilledOp(t, b, op, &open)
			continue
		}
		offers, err := b.Arrive(Arrival{Loc: op.Loc, Capacity: op.Capacity,
			ViewProb: op.ViewProb, Interests: op.Interests, Hour: op.Hour})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range offers {
			if o.ID != 0 {
				open = append(open, o.ID)
			}
			if o.Model == model.BillingFixed {
				if o.ChargeECPM != 0 || o.Hold != 0 || o.ID != 0 {
					t.Fatalf("fixed offer carries auction fields: %+v", o)
				}
				continue
			}
			bi := specs[o.Campaign].Billing
			bid := bi.BidECPM(adTypes[o.AdType].Cost)
			if o.ChargeECPM < bi.ReserveECPM-1e-9 || o.ChargeECPM > bid+1e-9 {
				t.Fatalf("charge %g outside [reserve %g, bid %g] for %+v",
					o.ChargeECPM, bi.ReserveECPM, bid, o)
			}
			if bi.Model.Deferred() {
				if want := o.ChargeECPM / 1000 / bi.EventRate; math.Abs(o.Hold-want) > 1e-12 {
					t.Fatalf("hold %g != charge/1000/rate %g", o.Hold, want)
				}
				if o.Cost != 0 {
					t.Fatalf("deferred offer charged at offer time: %+v", o)
				}
			} else if want := o.ChargeECPM / 1000; math.Abs(o.Cost-want) > 1e-12 {
				t.Fatalf("cpm cost %g != charge/1000 %g", o.Cost, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("property vacuous: no auction offers served")
	}
}

// billedInvariants checks the money conservation laws on a broker serving
// billed traffic: no campaign overspends budget even counting its escrow,
// escrow is non-negative, and the per-campaign books sum to the global
// counters.
func billedInvariants(t *testing.T, b *Broker) {
	t.Helper()
	st := b.Stats()
	var spent, escrow, converted float64
	var conversions int64
	for _, c := range b.Campaigns() {
		if c.Escrow < -1e-9 {
			t.Errorf("campaign %d negative escrow %g", c.ID, c.Escrow)
		}
		if c.Spent+c.Escrow > c.Budget+1e-9 {
			t.Errorf("campaign %d spent %g + escrow %g exceeds budget %g",
				c.ID, c.Spent, c.Escrow, c.Budget)
		}
		spent += c.Spent
		escrow += c.Escrow
		converted += c.Converted
		conversions += c.Conversions
	}
	if math.Abs(spent-st.BudgetSpent) > 1e-6 {
		t.Errorf("per-campaign spend %g disagrees with counter %g", spent, st.BudgetSpent)
	}
	if math.Abs(escrow-st.EscrowHeld) > 1e-6 {
		t.Errorf("per-campaign escrow %g disagrees with held counter %g", escrow, st.EscrowHeld)
	}
	if math.Abs(converted-st.ConversionRevenue) > 1e-6 {
		t.Errorf("per-campaign conversions %g disagree with counter %g", converted, st.ConversionRevenue)
	}
	if conversions != st.Conversions {
		t.Errorf("conversion counts disagree: %d vs %d", conversions, st.Conversions)
	}
}

// TestSlateWALRecovery pins WAL v4 + snapshot v3 bit-exactness: a billed
// stream (CPM charges, CPC escrow, conversions) through a crash and then a
// clean snapshot reboot must recover every counter and campaign field —
// escrow, converted revenue, open offers — bit for bit.
func TestSlateWALRecovery(t *testing.T) {
	specs, stream, err := workload.BrokerLoad(workload.BilledBrokerLoadConfig(16, 1500, 23))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{AdTypes: workload.DefaultAdTypes(), DataDir: dir, WAL: crashWAL()}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	registerLoad(t, b, specs)
	// Stop converting over the last fifth of the stream so holds survive to
	// the crash point — otherwise the convert ops drain every open offer.
	cutoff := len(stream) * 4 / 5
	var open []uint64
	for i, op := range stream {
		if op.Kind == workload.OpConvert && i >= cutoff {
			continue
		}
		applyBilledOp(t, b, op, &open)
	}
	preStats, preCampaigns := b.Stats(), b.Campaigns()
	if preStats.EscrowHeld <= 0 || preStats.Conversions == 0 || len(open) == 0 {
		t.Fatalf("load exercised no escrow: %+v, %d open", preStats, len(open))
	}

	// Crash (no Close) → replay the v4 log.
	rb, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if got := rb.Stats(); got != preStats {
		t.Fatalf("recovered stats %+v != pre-crash %+v", got, preStats)
	}
	if !reflect.DeepEqual(rb.Campaigns(), preCampaigns) {
		t.Fatal("recovered campaigns diverge from pre-crash state")
	}
	billedInvariants(t, rb)

	// The recovered escrow table must still serve conversions: every open
	// offer collected pre-crash remains convertible exactly once.
	if len(open) == 0 {
		t.Fatal("no open offers survived the stream")
	}
	if _, err := rb.Convert(open[0], "post-crash"); err != nil {
		t.Fatalf("converting recovered offer %d: %v", open[0], err)
	}
	if _, err := rb.Convert(open[0], "post-crash-2"); err != ErrOfferUnknown {
		t.Fatalf("double conversion after recovery: %v", err)
	}

	// Clean close → snapshot v3 → reboot must load it without replay.
	postStats, postCampaigns := rb.Stats(), rb.Campaigns()
	if err := rb.Close(); err != nil {
		t.Fatal(err)
	}
	rb2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rb2.Close()
	if info := rb2.RecoveryStats(); !info.SnapshotLoaded || info.RecordsReplayed != 0 {
		t.Fatalf("clean reboot should load snapshot only, got %+v", info)
	}
	if got := rb2.Stats(); got != postStats {
		t.Fatalf("snapshot reboot stats %+v != pre-close %+v", got, postStats)
	}
	if !reflect.DeepEqual(rb2.Campaigns(), postCampaigns) {
		t.Fatal("snapshot reboot campaigns diverge")
	}
	// The idempotency window survived the snapshot: the pre-close key still
	// conflicts, and the remaining open offers still convert.
	if _, err := rb2.Convert(999999, "post-crash"); err != ErrDuplicateEvent {
		t.Fatalf("idempotency window lost in snapshot: %v", err)
	}
	converted := false
	for _, id := range open[1:] {
		if _, err := rb2.Convert(id, ""); err == nil {
			converted = true
			break
		}
	}
	if !converted && len(open) > 1 {
		t.Fatal("no recovered open offer was convertible after snapshot reboot")
	}
	billedInvariants(t, rb2)
}

// TestSlateTornTailRecovery is the WAL v4 torn-tail property test: cut the
// billed log at arbitrary byte offsets, recover, and require the recovered
// state to sit exactly on the never-crashed reference trajectory after
// RecordsReplayed mutations, with the escrow conservation laws intact at
// every cut.
func TestSlateTornTailRecovery(t *testing.T) {
	const campaigns, ops, seed = 12, 1000, 31
	specs, stream, err := workload.BrokerLoad(workload.BilledBrokerLoadConfig(campaigns, ops, seed))
	if err != nil {
		t.Fatal(err)
	}

	// Reference trajectory on an in-memory broker: serial determinism makes
	// its offer IDs coincide with the durable run's.
	ref, err := newMemory(Config{AdTypes: workload.DefaultAdTypes()})
	if err != nil {
		t.Fatal(err)
	}
	trajectory := []refState{{stats: ref.Stats(), campaigns: ref.Campaigns()}}
	snap := func() { trajectory = append(trajectory, refState{stats: ref.Stats(), campaigns: ref.Campaigns()}) }
	for _, c := range specs {
		if _, err := ref.RegisterCampaignSpec(CampaignSpec{
			Loc: c.Loc, Radius: c.Radius, Budget: c.Budget, Tags: c.Tags, Billing: c.Billing,
		}); err != nil {
			t.Fatal(err)
		}
		snap()
	}
	var refOpen []uint64
	for _, op := range stream {
		if applyBilledOp(t, ref, op, &refOpen) {
			snap()
		}
	}

	srcDir := t.TempDir()
	cfg := Config{AdTypes: workload.DefaultAdTypes(), DataDir: srcDir, WAL: crashWAL()}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	registerLoad(t, b, specs)
	var open []uint64
	for _, op := range stream {
		applyBilledOp(t, b, op, &open)
	}

	segs, err := filepath.Glob(filepath.Join(srcDir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", segs, err)
	}
	segName := filepath.Base(segs[0])
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	rng := stats.NewRand(99)
	cuts := []int{0} // clean kill first, then random torn tails
	for i := 0; i < 12; i++ {
		cuts = append(cuts, 1+rng.Intn(len(full)/4))
	}
	for _, cut := range cuts {
		dir := t.TempDir()
		copyFile(t, filepath.Join(srcDir, "snapshot"), filepath.Join(dir, "snapshot"))
		if err := os.WriteFile(filepath.Join(dir, segName), full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.DataDir = dir
		rb, err := New(rcfg)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		info := rb.RecoveryStats()
		if info.RecordsReplayed >= len(trajectory) {
			t.Fatalf("cut %d: replayed %d records, reference has %d states",
				cut, info.RecordsReplayed, len(trajectory))
		}
		want := trajectory[info.RecordsReplayed]
		if got := rb.Stats(); got != want.stats {
			t.Fatalf("cut %d: recovered stats %+v != reference %+v after %d records",
				cut, got, want.stats, info.RecordsReplayed)
		}
		if got := rb.Campaigns(); !reflect.DeepEqual(got, want.campaigns) {
			t.Fatalf("cut %d: recovered campaigns diverge after %d records", cut, info.RecordsReplayed)
		}
		billedInvariants(t, rb)
		if err := rb.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestSlateConcurrentEscrowSoak hammers a billed durable broker from many
// goroutines — arrivals escrowing holds, conversions draining them, stats
// and campaign reads throughout — then closes and recovers. The books must
// balance before and after; run under -race in CI, this is the lock-order
// pin for the billing layer.
func TestSlateConcurrentEscrowSoak(t *testing.T) {
	workers := 8
	opsPerWorker := 250
	if testing.Short() {
		workers, opsPerWorker = 4, 80
	}
	specs, stream, err := workload.BrokerLoad(
		workload.BilledBrokerLoadConfig(24, workers*opsPerWorker, 77))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := Config{
		AdTypes: workload.DefaultAdTypes(), Shards: 8, DataDir: dir,
		WAL: crashWAL(),
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	registerLoad(t, b, specs)

	var mu sync.Mutex
	var open []uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(stream); i += workers {
				op := stream[i]
				switch op.Kind {
				case workload.OpArrival:
					offers, err := b.Arrive(Arrival{Loc: op.Loc, Capacity: op.Capacity,
						ViewProb: op.ViewProb, Interests: op.Interests, Hour: op.Hour})
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					for _, o := range offers {
						if o.ID != 0 {
							open = append(open, o.ID)
						}
					}
					mu.Unlock()
				case workload.OpConvert:
					mu.Lock()
					var id uint64
					if len(open) > 0 {
						i := int(op.Pick % uint64(len(open)))
						id = open[i]
						open = append(open[:i], open[i+1:]...)
					}
					mu.Unlock()
					if id != 0 {
						if _, err := b.Convert(id, ""); err != nil && err != ErrOfferUnknown {
							t.Error(err)
							return
						}
					}
				default:
					applyLoadOp(t, b, op)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	billedInvariants(t, b)
	preStats, preCampaigns := b.Stats(), b.Campaigns()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	rb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	if got := rb.Stats(); got != preStats {
		t.Fatalf("recovered stats %+v != pre-close %+v", got, preStats)
	}
	if !reflect.DeepEqual(rb.Campaigns(), preCampaigns) {
		t.Fatal("recovered campaigns diverge from pre-close state")
	}
	billedInvariants(t, rb)
}

// TestSlateArriveZeroAllocs extends the zero-alloc bar to the slot-solver
// path: a forced-slate all-fixed broker serving capacity-2 arrivals must
// not allocate after warm-up — the arena owns the solver scratch too.
func TestSlateArriveZeroAllocs(t *testing.T) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Slate: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		x := float64(i%8)/8 + 0.05
		y := float64(i/8)/8 + 0.05
		if _, err := b.RegisterCampaign(geo.Point{X: x, Y: y}, 0.15, 1e9, []float64{1, 0.5, 1}); err != nil {
			t.Fatal(err)
		}
	}
	a := Arrival{Loc: geo.Point{X: 0.4, Y: 0.4}, Capacity: 2, ViewProb: 0.8,
		Interests: []float64{1, 0.5, 1}, Hour: 12}
	dst := make([]Offer, 0, 16)
	for i := 0; i < 16; i++ {
		out, err := b.ArriveAppend(dst[:0], a)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, err := b.ArriveAppend(dst[:0], a)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("slate arrival allocates %v times per op, want 0", allocs)
	}
}
