package broker

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/workload"
)

// applyOp maps one workload op onto broker calls, returning the offers an
// arrival produced (nil otherwise).
func applyOp(tb testing.TB, b *Broker, op workload.BrokerOp) []Offer {
	tb.Helper()
	switch op.Kind {
	case workload.OpArrival:
		offers, err := b.Arrive(Arrival{
			Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
			Interests: op.Interests, Hour: op.Hour,
		})
		if err != nil {
			tb.Error(err)
		}
		return offers
	case workload.OpTopUp:
		if err := b.TopUp(op.Campaign, op.Amount); err != nil {
			tb.Error(err)
		}
	case workload.OpPause:
		if err := b.SetPaused(op.Campaign, op.Paused); err != nil {
			tb.Error(err)
		}
	default:
		b.Stats()
		b.Campaigns()
	}
	return nil
}

// TestConcurrentSoak hammers one broker with mixed traffic from many
// goroutines and then audits the money: no campaign overspent, every arrival
// respected its capacity, and the global spend/offer/utility counters agree
// exactly with what the goroutines observed. Run under -race in CI; the
// sharded hot path must stay both race-clean and accounting-exact.
func TestConcurrentSoak(t *testing.T) {
	workers := 4 * runtime.GOMAXPROCS(0)
	if workers < 8 {
		workers = 8
	}
	opsPerWorker := 400
	if testing.Short() {
		workers, opsPerWorker = 4, 100
	}
	const campaigns = 48
	specs, ops, err := workload.BrokerLoad(
		workload.DefaultBrokerLoadConfig(campaigns, workers*opsPerWorker, 1234))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}

	// Per-worker observations, merged after the fact: offer counts, the
	// exact cost and utility sums of the offers each worker was handed, and
	// the arrival count.
	type tally struct {
		arrivals int64
		offers   int64
		cost     float64
		utility  float64
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave workers across the stream so shards see overlapping
			// traffic rather than disjoint slices.
			for i := w; i < len(ops); i += workers {
				op := ops[i]
				offers := applyOp(t, b, op)
				if op.Kind == workload.OpArrival {
					tallies[w].arrivals++
					if len(offers) > op.Capacity {
						t.Errorf("arrival with capacity %d got %d offers", op.Capacity, len(offers))
					}
					for _, o := range offers {
						tallies[w].offers++
						tallies[w].cost += o.Cost
						tallies[w].utility += o.Utility
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var want tally
	for _, tl := range tallies {
		want.arrivals += tl.arrivals
		want.offers += tl.offers
		want.cost += tl.cost
		want.utility += tl.utility
	}
	st := b.Stats()
	if st.Arrivals != want.arrivals {
		t.Errorf("arrival counter %d, workers made %d", st.Arrivals, want.arrivals)
	}
	if st.OffersPushed != want.offers {
		t.Errorf("offer counter %d, workers received %d", st.OffersPushed, want.offers)
	}
	// Ad costs are small binary-exact values, so sums should agree to
	// rounding noise even though addition orders differ across goroutines.
	if math.Abs(st.BudgetSpent-want.cost) > 1e-6 {
		t.Errorf("global spend %g, sum of offer costs %g", st.BudgetSpent, want.cost)
	}
	if math.Abs(st.UtilityServed-want.utility) > 1e-6 {
		t.Errorf("global utility %g, sum of offer utilities %g", st.UtilityServed, want.utility)
	}

	var campaignSpend float64
	for _, c := range b.Campaigns() {
		campaignSpend += c.Spent
		if c.Spent > c.Budget+1e-9 {
			t.Errorf("campaign %d overspent: %g > %g", c.ID, c.Spent, c.Budget)
		}
		if c.Spent < 0 {
			t.Errorf("campaign %d negative spend %g", c.ID, c.Spent)
		}
	}
	if math.Abs(campaignSpend-st.BudgetSpent) > 1e-6 {
		t.Errorf("per-campaign spend %g disagrees with global counter %g", campaignSpend, st.BudgetSpent)
	}
	if st.GammaMax > 0 && (st.GammaMin <= 0 || math.IsInf(st.GammaMin, 1) || st.GammaMax < st.GammaMin) {
		t.Errorf("gamma bounds corrupted: %+v", st)
	}
}

// TestConcurrentRegistrationDuringTraffic races registrations against
// arrivals: every arrival must either see a campaign fully (grid + state) or
// not at all, and the directory must end dense and ordered.
func TestConcurrentRegistrationDuringTraffic(t *testing.T) {
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultBrokerLoadConfig(0, 600, 77)
	cfg.TopUpFrac, cfg.PauseFrac = 0, 0 // campaign IDs race with registration
	_, ops, err := workload.BrokerLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 64; i++ {
			loc := geo.Point{X: 0.1 + 0.013*float64(i%60), Y: 0.1 + 0.017*float64(i%50)}
			if _, err := b.RegisterCampaign(loc, 0.02+0.001*float64(i%30), 10,
				[]float64{1, 0, 0.5, 0.2, 0.1, 0.9, 0.4, 0.3}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for _, op := range ops {
			applyOp(t, b, op)
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	all := b.Campaigns()
	if len(all) != 64 {
		t.Fatalf("directory holds %d campaigns, want 64", len(all))
	}
	for i, c := range all {
		if c.ID != int32(i) {
			t.Fatalf("directory not dense at %d: %+v", i, c)
		}
	}
}

// TestConcurrentBatchSoak mixes ArriveBatch windows with serial arrivals and
// money mutations from many goroutines, then audits the accounting the same
// way TestConcurrentSoak does. Run under -race in CI: the batch path's
// covering-interval locking and shared arena must be race-clean against the
// serial path and against itself.
func TestConcurrentBatchSoak(t *testing.T) {
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 6 {
		workers = 6
	}
	opsPerWorker := 400
	if testing.Short() {
		workers, opsPerWorker = 4, 100
	}
	const campaigns = 48
	specs, ops, err := workload.BrokerLoad(
		workload.DefaultBrokerLoadConfig(campaigns, workers*opsPerWorker, 4321))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range specs {
		if _, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags); err != nil {
			t.Fatal(err)
		}
	}

	type tally struct {
		arrivals int64
		offers   int64
		cost     float64
		utility  float64
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &tallies[w]
			count := func(capacity int, offers []Offer) {
				tl.arrivals++
				if len(offers) > capacity {
					t.Errorf("arrival with capacity %d got %d offers", capacity, len(offers))
				}
				for _, o := range offers {
					tl.offers++
					tl.cost += o.Cost
					tl.utility += o.Utility
				}
			}
			// Even workers batch their arrivals in windows; odd workers stay
			// serial, so both entry points contend for the same stripes.
			var window []Arrival
			var caps []int
			flush := func() {
				if len(window) == 0 {
					return
				}
				for i, res := range b.ArriveBatch(window) {
					if res.Err != nil {
						t.Error(res.Err)
						continue
					}
					count(caps[i], res.Offers)
				}
				window, caps = window[:0], caps[:0]
			}
			for i := w; i < len(ops); i += workers {
				op := ops[i]
				if op.Kind == workload.OpArrival && w%2 == 0 {
					window = append(window, Arrival{
						Loc: op.Loc, Capacity: op.Capacity, ViewProb: op.ViewProb,
						Interests: op.Interests, Hour: op.Hour,
					})
					caps = append(caps, op.Capacity)
					if len(window) >= 8 {
						flush()
					}
					continue
				}
				offers := applyOp(t, b, op)
				if op.Kind == workload.OpArrival {
					count(op.Capacity, offers)
				}
			}
			flush()
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var want tally
	for _, tl := range tallies {
		want.arrivals += tl.arrivals
		want.offers += tl.offers
		want.cost += tl.cost
		want.utility += tl.utility
	}
	st := b.Stats()
	if st.Arrivals != want.arrivals {
		t.Errorf("arrival counter %d, workers made %d", st.Arrivals, want.arrivals)
	}
	if st.OffersPushed != want.offers {
		t.Errorf("offer counter %d, workers received %d", st.OffersPushed, want.offers)
	}
	if math.Abs(st.BudgetSpent-want.cost) > 1e-6 {
		t.Errorf("global spend %g, sum of offer costs %g", st.BudgetSpent, want.cost)
	}
	if math.Abs(st.UtilityServed-want.utility) > 1e-6 {
		t.Errorf("global utility %g, sum of offer utilities %g", st.UtilityServed, want.utility)
	}
	var campaignSpend float64
	for _, c := range b.Campaigns() {
		campaignSpend += c.Spent
		if c.Spent > c.Budget+1e-9 {
			t.Errorf("campaign %d overspent: %g > %g", c.ID, c.Spent, c.Budget)
		}
	}
	if math.Abs(campaignSpend-st.BudgetSpent) > 1e-6 {
		t.Errorf("per-campaign spend %g disagrees with global counter %g", campaignSpend, st.BudgetSpent)
	}
}
