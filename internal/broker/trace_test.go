package broker

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"muaa/internal/geo"
	"muaa/internal/obs"
	"muaa/internal/trace"
	"muaa/internal/workload"
)

// TestReplayMatchesGoldenTraced replays the default golden stream through
// ArriveTraced with both metrics and the flight recorder live. The
// transcript must stay byte-identical to the uninstrumented golden —
// tracing, like metrics, is observation-only — and every arrival must have
// produced a recorded trace.
func TestReplayMatchesGoldenTraced(t *testing.T) {
	rec := trace.NewRecorder(trace.RecorderOptions{Capacity: 64})
	cfg := Config{AdTypes: workload.DefaultAdTypes(), Metrics: obs.NewRegistry(), Tracer: rec}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs, stream, err := workload.BrokerLoad(workload.DefaultBrokerLoadConfig(32, 3000, 42))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, c := range specs {
		id, err := b.RegisterCampaign(c.Loc, c.Radius, c.Budget, c.Tags)
		if err != nil {
			t.Fatal(err)
		}
		writeRegisterLine(&sb, id, c)
	}
	arrivals := 0
	arrive := func(a Arrival) ([]Offer, error) {
		arrivals++
		return b.ArriveTraced(a, newTraceReq())
	}
	for i, op := range stream {
		applyTranscriptOpVia(t, b, &sb, i, op, arrive)
	}
	writeFinalLines(&sb, b)
	got := sb.String()

	want, err := os.ReadFile(filepath.Join("testdata", "replay_default.golden"))
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	if got != string(want) {
		t.Fatalf("tracing changed the replay transcript (%d vs %d bytes, first diff at byte %d)",
			len(got), len(want), firstDiff(got, string(want)))
	}
	if arrivals == 0 {
		t.Fatal("workload contained no arrivals")
	}
	if traces := rec.Snapshot(trace.Filter{}); len(traces) == 0 {
		t.Fatal("no traces recorded during the traced replay")
	}
}

// newTraceReq mints a fresh request context on the heap; production callers
// get theirs from trace.FromContext, which hands out the pointer Middleware
// stored.
func newTraceReq() *trace.Request {
	r := trace.StartRequest("")
	return &r
}

func tracedBroker(t *testing.T, rec *trace.Recorder, reg *obs.Registry) *Broker {
	t.Helper()
	b, err := New(Config{AdTypes: workload.DefaultAdTypes(), Metrics: reg, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		x := 0.1 + 0.1*float64(i)
		if _, err := b.RegisterCampaign(geo.Point{X: x, Y: x}, 0.2, 50, []float64{1, 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// TestArriveTracedSpanSums pins the trace geometry: the four stage child
// spans are cut from the same clock reads as the root, so they must sum to
// the root duration exactly (not ±ε — the stages partition the interval).
func TestArriveTracedSpanSums(t *testing.T) {
	rec := trace.NewRecorder(trace.RecorderOptions{})
	b := tracedBroker(t, rec, nil)
	for i := 0; i < 50; i++ {
		_, err := b.ArriveTraced(Arrival{
			Loc: geo.Point{X: 0.3, Y: 0.3}, Capacity: 2, ViewProb: 0.8,
			Interests: []float64{1, 0.5, 1}, Hour: 12,
		}, newTraceReq())
		if err != nil {
			t.Fatal(err)
		}
	}
	traces := rec.Snapshot(trace.Filter{})
	if len(traces) != 50 {
		t.Fatalf("recorded %d traces, want 50", len(traces))
	}
	for _, tr := range traces {
		if !tr.Staged {
			t.Fatal("arrival trace missing stage spans")
		}
		var sum time.Duration
		for i := 0; i < trace.NumStages; i++ {
			sum += tr.Stages[i]
		}
		if sum != tr.Duration {
			t.Fatalf("stage spans sum to %v, root span is %v", sum, tr.Duration)
		}
		if tr.Duration <= 0 {
			t.Fatal("non-positive root span")
		}
		if tr.StripeHi < tr.StripeLo {
			t.Fatalf("bad stripe range [%d, %d]", tr.StripeLo, tr.StripeHi)
		}
	}
}

// TestArriveTracedOutcomes checks outcome classification and that tracing
// is inert when either the recorder or the request context is absent.
func TestArriveTracedOutcomes(t *testing.T) {
	rec := trace.NewRecorder(trace.RecorderOptions{})
	b := tracedBroker(t, rec, nil)

	// Validation error → outcome "error", anomalous.
	if _, err := b.ArriveTraced(Arrival{Capacity: -1}, newTraceReq()); err == nil {
		t.Fatal("negative capacity accepted")
	}
	// Far-away arrival → no candidates → "no_offers".
	if _, err := b.ArriveTraced(Arrival{
		Loc: geo.Point{X: 0.99, Y: 0.01}, Capacity: 1, ViewProb: 0.5,
		Interests: []float64{1, 0, 1}, Hour: 1,
	}, newTraceReq()); err != nil {
		t.Fatal(err)
	}
	// In-range arrival → "offered".
	if _, err := b.ArriveTraced(Arrival{
		Loc: geo.Point{X: 0.3, Y: 0.3}, Capacity: 2, ViewProb: 0.9,
		Interests: []float64{1, 0.5, 1}, Hour: 12,
	}, newTraceReq()); err != nil {
		t.Fatal(err)
	}

	errs := rec.Snapshot(trace.Filter{Outcome: trace.OutcomeError})
	if len(errs) != 1 || !errs[0].Anomalous || errs[0].Error == "" {
		t.Fatalf("error outcome not traced correctly: %+v", errs)
	}
	if got := rec.Snapshot(trace.Filter{Outcome: trace.OutcomeNoOffers}); len(got) != 1 {
		t.Fatalf("no_offers traces = %d, want 1", len(got))
	}
	offered := rec.Snapshot(trace.Filter{Outcome: trace.OutcomeOffered})
	if len(offered) != 1 || offered[0].Offers == 0 {
		t.Fatalf("offered outcome not traced correctly: %+v", offered)
	}

	// Nil request → nothing recorded.
	before := len(rec.Snapshot(trace.Filter{}))
	if _, err := b.Arrive(Arrival{
		Loc: geo.Point{X: 0.3, Y: 0.3}, Capacity: 1, ViewProb: 0.5,
		Interests: []float64{1, 0, 1}, Hour: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ArriveTraced(Arrival{
		Loc: geo.Point{X: 0.3, Y: 0.3}, Capacity: 1, ViewProb: 0.5,
		Interests: []float64{1, 0, 1}, Hour: 3,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if after := len(rec.Snapshot(trace.Filter{})); after != before {
		t.Fatalf("untraced arrivals recorded traces: %d -> %d", before, after)
	}
}

// TestArrivalExemplar checks the histogram → trace join: with tracing and
// metrics both on, the arrival-latency histogram exposes the slowest traced
// observation's trace ID as an exemplar comment, cleared per scrape.
func TestArrivalExemplar(t *testing.T) {
	rec := trace.NewRecorder(trace.RecorderOptions{})
	reg := obs.NewRegistry()
	b := tracedBroker(t, rec, reg)
	req := newTraceReq()
	if _, err := b.ArriveTraced(Arrival{
		Loc: geo.Point{X: 0.3, Y: 0.3}, Capacity: 2, ViewProb: 0.8,
		Interests: []float64{1, 0.5, 1}, Hour: 12,
	}, req); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	marker := "# EXEMPLAR muaa_broker_arrival_seconds"
	if !strings.Contains(text, marker) {
		t.Fatalf("no arrival exemplar in exposition:\n%s", text)
	}
	if !strings.Contains(text, fmt.Sprintf("trace_id=%q", req.TraceID.String())) {
		t.Fatal("exemplar does not carry the arrival's trace id")
	}

	// Consumed by the scrape: a second scrape with no new traffic has none.
	sb.Reset()
	reg.WriteText(&sb)
	if strings.Contains(sb.String(), marker) {
		t.Fatal("exemplar survived the scrape window")
	}
}
