// Package buildinfo reports binary provenance — VCS revision and Go
// toolchain version, read from the build metadata the linker embeds — so
// every surface that records results (bench JSON, logs, /metrics, -version
// flags) agrees on which build produced them.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"muaa/internal/obs"
)

// Revision returns the VCS revision the binary was built from, suffixed
// "+dirty" when the working tree was modified, or "unknown" outside a VCS
// build (go test binaries, toolchains without VCS stamping).
func Revision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty && rev != "unknown" {
		rev += "+dirty"
	}
	return rev
}

// String renders the one-line -version output for a named binary.
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s)", binary, Revision(), runtime.Version())
}

// Register publishes the muaa_build_info gauge: constant value 1, with the
// revision and Go version as labels — the standard join key between scraped
// metrics and the binary that produced them.
func Register(reg *obs.Registry) {
	reg.NewGaugeFunc("muaa_build_info",
		"Build provenance of this binary; value is always 1, the labels carry the information.",
		func() float64 { return 1 },
		obs.L("revision", Revision()),
		obs.L("go_version", runtime.Version()))
}
