package buildinfo

import (
	"runtime"
	"strings"
	"testing"

	"muaa/internal/obs"
)

func TestString(t *testing.T) {
	s := String("muaa-test")
	if !strings.HasPrefix(s, "muaa-test ") || !strings.Contains(s, runtime.Version()) {
		t.Fatalf("version line %q", s)
	}
}

func TestRegister(t *testing.T) {
	reg := obs.NewRegistry()
	Register(reg)
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	if !strings.Contains(text, "muaa_build_info{") {
		t.Fatalf("exposition missing build info gauge:\n%s", text)
	}
	if !strings.Contains(text, `go_version="`+runtime.Version()+`"`) {
		t.Fatalf("go_version label missing:\n%s", text)
	}
	if !strings.Contains(text, `revision="`) {
		t.Fatalf("revision label missing:\n%s", text)
	}
}
