package cf

import (
	"fmt"

	"muaa/internal/checkin"
	"muaa/internal/model"
)

// FromCheckins converts a check-in dataset into CF training interactions
// (one per (user, venue) pair, weighted by visit count).
func FromCheckins(ds *checkin.Dataset) []Interaction {
	counts := map[[2]int32]int{}
	for _, r := range ds.Records {
		counts[[2]int32{r.User, r.Venue}]++
	}
	out := make([]Interaction, 0, len(counts))
	for k, c := range counts {
		out = append(out, Interaction{User: k[0], Item: k[1], Weight: float64(c)})
	}
	return out
}

// TrainOnCheckins trains an item-based model directly from a dataset.
func TrainOnCheckins(ds *checkin.Dataset, topK int) (*Model, error) {
	return Train(FromCheckins(ds), ds.Users, len(ds.Venues), topK)
}

// Preference adapts a trained model to the model.Preference interface so a
// MUAA problem can score customer–vendor pairs by collaborative filtering
// instead of tag-vector correlation. CustomerUser maps each customer ID
// (slice position in Problem.Customers) to its CF user; VendorItem maps each
// vendor ID to its CF item. Pairs outside either map score 0.
type Preference struct {
	Model        *Model
	CustomerUser []int32
	VendorItem   []int32
}

// Validate reports mapping indices out of the model's range.
func (p Preference) Validate() error {
	if p.Model == nil {
		return fmt.Errorf("cf: nil model")
	}
	for i, u := range p.CustomerUser {
		if u < 0 || int(u) >= p.Model.NumUsers() {
			return fmt.Errorf("cf: customer %d maps to unknown user %d", i, u)
		}
	}
	for j, it := range p.VendorItem {
		if it < 0 || int(it) >= p.Model.NumItems() {
			return fmt.Errorf("cf: vendor %d maps to unknown item %d", j, it)
		}
	}
	return nil
}

// Score implements model.Preference. The timestamp is ignored — CF scores
// are time-free; compose with an Activity-aware preference if temporal
// weighting is needed.
func (p Preference) Score(u *model.Customer, v *model.Vendor, _ float64) float64 {
	if int(u.ID) >= len(p.CustomerUser) || int(v.ID) >= len(p.VendorItem) {
		return 0
	}
	return p.Model.Score(p.CustomerUser[u.ID], p.VendorItem[v.ID])
}
