// Package cf implements item-based collaborative filtering over implicit
// feedback. Section II-A of the paper lists collaborative filtering
// (Adomavicius & Tuzhilin [7], Herlocker et al. [13]) as one of the two ways
// to estimate customer–vendor preference, alongside the taxonomy-driven
// profiles of package taxonomy; this package is that alternative estimator,
// trained on the same check-in corpus and pluggable into model.Problem via
// the Preference adapter in adapter.go.
//
// The model is the classic item–item scheme for implicit data: venue–venue
// cosine similarity over user co-visit weights, truncated to each venue's
// top-K neighbours; a user's predicted affinity for a venue is the
// similarity-weighted average of the user's (normalized) weights on the
// venue's neighbours.
package cf

import (
	"fmt"
	"math"
	"sort"
)

// Interaction is one (user, item) implicit-feedback event weight — for the
// MUAA pipeline, a user's check-in count at a venue.
type Interaction struct {
	User   int32
	Item   int32
	Weight float64
}

// neighbor is one entry of an item's similarity list.
type neighbor struct {
	item int32
	sim  float64
}

// Model is a trained item-based CF model. Models are immutable after Train
// and safe for concurrent use.
type Model struct {
	nUsers, nItems int
	neighbors      [][]neighbor
	// userWeights[u] maps item → weight normalized by the user's max weight,
	// so predictions land in [0, 1].
	userWeights []map[int32]float64
}

// Train builds a model from interactions. topK truncates each item's
// neighbour list (0 selects 20). Duplicate (user, item) pairs accumulate.
func Train(interactions []Interaction, nUsers, nItems, topK int) (*Model, error) {
	if nUsers <= 0 || nItems <= 0 {
		return nil, fmt.Errorf("cf: need positive dimensions, got %d users × %d items", nUsers, nItems)
	}
	if topK <= 0 {
		topK = 20
	}
	// Accumulate the user × item weight matrix (sparse).
	userWeights := make([]map[int32]float64, nUsers)
	for _, in := range interactions {
		if in.User < 0 || int(in.User) >= nUsers {
			return nil, fmt.Errorf("cf: interaction references user %d of %d", in.User, nUsers)
		}
		if in.Item < 0 || int(in.Item) >= nItems {
			return nil, fmt.Errorf("cf: interaction references item %d of %d", in.Item, nItems)
		}
		if in.Weight <= 0 || math.IsNaN(in.Weight) || math.IsInf(in.Weight, 0) {
			return nil, fmt.Errorf("cf: interaction weight %g must be positive and finite", in.Weight)
		}
		if userWeights[in.User] == nil {
			userWeights[in.User] = map[int32]float64{}
		}
		userWeights[in.User][in.Item] += in.Weight
	}

	// Item co-occurrence dot products via per-user pair expansion. Cost is
	// Σ_u |items(u)|², fine for the bounded per-user histories check-in
	// corpora produce.
	dots := make([]map[int32]float64, nItems)
	norms := make([]float64, nItems)
	for _, items := range userWeights {
		keys := make([]int32, 0, len(items))
		for it := range items {
			keys = append(keys, it)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for ai, a := range keys {
			wa := items[a]
			norms[a] += wa * wa
			for _, b := range keys[ai+1:] {
				if dots[a] == nil {
					dots[a] = map[int32]float64{}
				}
				dots[a][b] += wa * items[b]
			}
		}
	}

	neighbors := make([][]neighbor, nItems)
	appendSim := func(a, b int32, dot float64) {
		den := math.Sqrt(norms[a]) * math.Sqrt(norms[b])
		if den == 0 {
			return
		}
		sim := dot / den
		if sim <= 0 {
			return
		}
		neighbors[a] = append(neighbors[a], neighbor{item: b, sim: sim})
	}
	for a := range dots {
		for b, dot := range dots[a] {
			appendSim(int32(a), b, dot)
			appendSim(b, int32(a), dot)
		}
	}
	for i := range neighbors {
		ns := neighbors[i]
		sort.Slice(ns, func(x, y int) bool {
			if ns[x].sim != ns[y].sim {
				return ns[x].sim > ns[y].sim
			}
			return ns[x].item < ns[y].item
		})
		if len(ns) > topK {
			ns = ns[:topK]
		}
		neighbors[i] = ns
	}

	// Normalize user weights to [0, 1] by each user's max.
	for _, items := range userWeights {
		maxW := 0.0
		for _, w := range items {
			if w > maxW {
				maxW = w
			}
		}
		if maxW > 0 {
			for it := range items {
				items[it] /= maxW
			}
		}
	}
	return &Model{
		nUsers:      nUsers,
		nItems:      nItems,
		neighbors:   neighbors,
		userWeights: userWeights,
	}, nil
}

// NumUsers returns the trained user dimension.
func (m *Model) NumUsers() int { return m.nUsers }

// NumItems returns the trained item dimension.
func (m *Model) NumItems() int { return m.nItems }

// Score predicts user's affinity for item in [0, 1]: the similarity-weighted
// average of the user's normalized weights over the item's neighbours, with
// a shortcut to the user's own (normalized) weight when the user already
// interacted with the item. Unknown users or items, and users with no
// history, score 0 (cold start).
func (m *Model) Score(user, item int32) float64 {
	if user < 0 || int(user) >= m.nUsers || item < 0 || int(item) >= m.nItems {
		return 0
	}
	items := m.userWeights[user]
	if len(items) == 0 {
		return 0
	}
	if w, ok := items[item]; ok {
		return w
	}
	var num, den float64
	for _, n := range m.neighbors[item] {
		if w, ok := items[n.item]; ok {
			num += n.sim * w
			den += n.sim
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Similar returns the item's neighbour list as (item, similarity) pairs in
// descending similarity order. The returned slices are fresh copies.
func (m *Model) Similar(item int32) (items []int32, sims []float64) {
	if item < 0 || int(item) >= m.nItems {
		return nil, nil
	}
	for _, n := range m.neighbors[item] {
		items = append(items, n.item)
		sims = append(sims, n.sim)
	}
	return items, sims
}
