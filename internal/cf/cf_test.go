package cf

import (
	"math"
	"testing"

	"muaa/internal/checkin"
	"muaa/internal/geo"
	"muaa/internal/model"
)

// clusteredInteractions builds two disjoint user communities: users 0–4
// visit items 0–4 densely, users 5–9 visit items 5–9 densely. One deliberate
// hole is left — user 0 never visits item 1 — so tests can probe prediction
// for an unvisited in-cluster item.
func clusteredInteractions() []Interaction {
	var out []Interaction
	for u := int32(0); u < 5; u++ {
		for it := int32(0); it < 5; it++ {
			if u == 0 && it == 1 {
				continue // the prediction hole
			}
			out = append(out, Interaction{User: u, Item: it, Weight: float64(1 + (u+it)%3)})
		}
	}
	for u := int32(5); u < 10; u++ {
		for it := int32(5); it < 10; it++ {
			out = append(out, Interaction{User: u, Item: it, Weight: float64(1 + (u+it)%3)})
		}
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 0, 5, 10); err == nil {
		t.Error("zero users must be rejected")
	}
	if _, err := Train([]Interaction{{User: 9, Item: 0, Weight: 1}}, 5, 5, 10); err == nil {
		t.Error("out-of-range user must be rejected")
	}
	if _, err := Train([]Interaction{{User: 0, Item: 9, Weight: 1}}, 5, 5, 10); err == nil {
		t.Error("out-of-range item must be rejected")
	}
	if _, err := Train([]Interaction{{User: 0, Item: 0, Weight: -1}}, 5, 5, 10); err == nil {
		t.Error("negative weight must be rejected")
	}
	if _, err := Train([]Interaction{{User: 0, Item: 0, Weight: math.NaN()}}, 5, 5, 10); err == nil {
		t.Error("NaN weight must be rejected")
	}
	m, err := Train(nil, 3, 3, 0)
	if err != nil {
		t.Fatalf("empty training set must be fine (cold model): %v", err)
	}
	if m.NumUsers() != 3 || m.NumItems() != 3 {
		t.Errorf("dimensions %d×%d", m.NumUsers(), m.NumItems())
	}
}

func TestScoresRespectCommunities(t *testing.T) {
	m, err := Train(clusteredInteractions(), 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	// User 0 (cluster A) should score an unvisited cluster-A item above any
	// cluster-B item.
	inCluster := m.Score(0, 1)  // item 1 is cluster A; user 0 never visited it (the hole)
	outCluster := m.Score(0, 7) // cluster B
	if inCluster <= outCluster {
		t.Errorf("in-cluster score %g not above out-cluster %g", inCluster, outCluster)
	}
	if outCluster != 0 {
		t.Errorf("disjoint communities must not leak similarity: %g", outCluster)
	}
}

func TestScoreBoundsAndColdStart(t *testing.T) {
	m, err := Train(clusteredInteractions(), 12, 10, 10) // users 10, 11 have no history
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 12; u++ {
		for it := int32(0); it < 10; it++ {
			s := m.Score(u, it)
			if s < 0 || s > 1 {
				t.Fatalf("Score(%d,%d) = %g outside [0,1]", u, it, s)
			}
		}
	}
	if m.Score(10, 0) != 0 || m.Score(11, 5) != 0 {
		t.Error("history-less users must score 0")
	}
	if m.Score(-1, 0) != 0 || m.Score(0, -1) != 0 || m.Score(99, 0) != 0 || m.Score(0, 99) != 0 {
		t.Error("out-of-range lookups must score 0")
	}
}

func TestScoreVisitedItemReturnsNormalizedWeight(t *testing.T) {
	m, err := Train([]Interaction{
		{User: 0, Item: 0, Weight: 4},
		{User: 0, Item: 1, Weight: 2},
	}, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(0, 0); got != 1 {
		t.Errorf("max-weight item scores %g, want 1", got)
	}
	if got := m.Score(0, 1); got != 0.5 {
		t.Errorf("half-weight item scores %g, want 0.5", got)
	}
}

func TestSimilarOrderingAndTruncation(t *testing.T) {
	m, err := Train(clusteredInteractions(), 10, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	items, sims := m.Similar(0)
	if len(items) > 2 {
		t.Fatalf("topK=2 but %d neighbours", len(items))
	}
	for i := 1; i < len(sims); i++ {
		if sims[i] > sims[i-1] {
			t.Fatalf("similarities not descending: %v", sims)
		}
	}
	for _, it := range items {
		if it >= 5 {
			t.Errorf("cluster-A item similar to cluster-B item %d", it)
		}
	}
	if its, ss := m.Similar(-1); its != nil || ss != nil {
		t.Error("out-of-range Similar must return nil")
	}
}

func TestSimilaritySymmetryOfDuplicates(t *testing.T) {
	// Duplicate interactions accumulate rather than error.
	m, err := Train([]Interaction{
		{User: 0, Item: 0, Weight: 1},
		{User: 0, Item: 0, Weight: 1},
		{User: 0, Item: 1, Weight: 2},
	}, 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Items 0 and 1 co-occur for user 0 with equal accumulated weights →
	// cosine similarity 1 in both directions.
	_, s01 := m.Similar(0)
	_, s10 := m.Similar(1)
	if len(s01) != 1 || len(s10) != 1 || math.Abs(s01[0]-1) > 1e-12 || math.Abs(s10[0]-1) > 1e-12 {
		t.Errorf("similarities: %v / %v, want [1] / [1]", s01, s10)
	}
}

func TestFromCheckinsAndTrainOnCheckins(t *testing.T) {
	ds, err := checkin.Generate(checkin.Config{Users: 30, Venues: 100, Checkins: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	inter := FromCheckins(ds)
	if len(inter) == 0 {
		t.Fatal("no interactions extracted")
	}
	total := 0.0
	for _, in := range inter {
		if in.Weight < 1 {
			t.Fatalf("weight %g below 1 visit", in.Weight)
		}
		total += in.Weight
	}
	if int(total) != len(ds.Records) {
		t.Errorf("interaction weights sum to %g, want %d check-ins", total, len(ds.Records))
	}
	m, err := TrainOnCheckins(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUsers() != ds.Users || m.NumItems() != len(ds.Venues) {
		t.Errorf("model dimensions %d×%d", m.NumUsers(), m.NumItems())
	}
}

func TestPreferenceAdapter(t *testing.T) {
	m, err := Train(clusteredInteractions(), 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	pref := Preference{
		Model:        m,
		CustomerUser: []int32{0, 7},
		VendorItem:   []int32{1, 8},
	}
	if err := pref.Validate(); err != nil {
		t.Fatal(err)
	}
	u0 := &model.Customer{ID: 0, Loc: geo.Point{X: 0.5, Y: 0.5}}
	u1 := &model.Customer{ID: 1, Loc: geo.Point{X: 0.5, Y: 0.5}}
	v0 := &model.Vendor{ID: 0}
	v1 := &model.Vendor{ID: 1}
	if pref.Score(u0, v0, 12) <= 0 {
		t.Error("cluster-A customer should like cluster-A vendor")
	}
	if pref.Score(u0, v1, 12) != 0 {
		t.Error("cluster-A customer must not like cluster-B vendor")
	}
	if pref.Score(u1, v1, 12) <= 0 {
		t.Error("cluster-B customer should like cluster-B vendor")
	}
	// Out-of-map IDs score 0 rather than panicking.
	u9 := &model.Customer{ID: 9}
	if pref.Score(u9, v0, 12) != 0 {
		t.Error("unmapped customer must score 0")
	}
	bad := Preference{Model: m, CustomerUser: []int32{99}}
	if err := bad.Validate(); err == nil {
		t.Error("bad mapping must fail validation")
	}
	if err := (Preference{}).Validate(); err == nil {
		t.Error("nil model must fail validation")
	}
}

func TestPreferencePluggedIntoProblem(t *testing.T) {
	// End to end: a problem scored by CF runs through a solver.
	m, err := Train(clusteredInteractions(), 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := &model.Problem{
		Customers: []model.Customer{
			{ID: 0, Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 1, ViewProb: 0.8},
		},
		Vendors: []model.Vendor{
			{ID: 0, Loc: geo.Point{X: 0.5, Y: 0.52}, Radius: 0.1, Budget: 5},
			{ID: 1, Loc: geo.Point{X: 0.5, Y: 0.48}, Radius: 0.1, Budget: 5},
		},
		AdTypes: []model.AdType{{Name: "PL", Cost: 2, Effect: 0.4}},
		Preference: Preference{
			Model:        m,
			CustomerUser: []int32{0},    // cluster A user
			VendorItem:   []int32{1, 7}, // vendor 0 = cluster-A item, vendor 1 = cluster-B item
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Utility(0, 0, 0) <= 0 {
		t.Error("CF-preferred vendor must yield positive utility")
	}
	if p.Utility(0, 1, 0) != 0 {
		t.Error("out-of-community vendor must yield zero utility")
	}
}
