// Package checkin simulates a Foursquare-style check-in dataset and turns it
// into MUAA problem instances, standing in for the proprietary Tokyo
// dataset the paper evaluates on (573,703 check-ins, 2,293 users, 61,858
// venues; filtered to venues with ≥ 10 check-ins). See DESIGN.md §4 for the
// substitution argument: MUAA's algorithms consume only derived quantities —
// locations, arrival order, taxonomy interest vectors and category tags —
// and the generator reproduces the distributional properties that drive the
// evaluation:
//
//   - venue popularity follows a Zipf law (which is what makes the paper's
//     ≥ 10-check-ins filter meaningful),
//   - venues cluster into spatial hotspots (city districts),
//   - users have home locations and a small set of preferred categories,
//   - check-in hours follow per-category diurnal cycles (coffee in the
//     morning, nightlife at night).
//
// The paper's preprocessing is then applied verbatim: locations are mapped
// into [0,1]², arrival times are taken modulo 24 h, every check-in becomes
// one customer (same user at different timestamps = different customers) and
// every surviving venue becomes one vendor.
package checkin

import (
	"fmt"
	"math"

	"muaa/internal/geo"
	"muaa/internal/stats"
	"muaa/internal/taxonomy"
)

// Record is a single check-in: a user visited a venue at an hour-of-day.
type Record struct {
	User  int32
	Venue int32
	Hour  float64 // in [0, 24)
}

// Venue is a point of interest with a taxonomy category.
type Venue struct {
	ID       int32
	Loc      geo.Point
	Category taxonomy.TagID
}

// Dataset is a generated check-in corpus.
type Dataset struct {
	Taxonomy *taxonomy.Taxonomy
	Users    int
	Venues   []Venue
	Records  []Record
}

// Config parameterizes generation. Zero values select the documented
// defaults.
type Config struct {
	Users    int // default 200
	Venues   int // default 1,000
	Checkins int // default 20,000
	// Hotspots is the number of spatial clusters venues gather in; default 8.
	Hotspots int
	// PopularityExp is the Zipf exponent for venue popularity; default 1.0.
	PopularityExp float64
	// PreferredCategories is how many leaf categories each user favours;
	// default 3.
	PreferredCategories int
	Seed                int64
}

func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 200
	}
	if c.Venues == 0 {
		c.Venues = 1000
	}
	if c.Checkins == 0 {
		c.Checkins = 20000
	}
	if c.Hotspots == 0 {
		c.Hotspots = 8
	}
	if c.PopularityExp == 0 {
		c.PopularityExp = 1.0
	}
	if c.PreferredCategories == 0 {
		c.PreferredCategories = 3
	}
	return c
}

// Validate reports configuration errors (after default substitution).
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Users < 1 || c.Venues < 1 || c.Checkins < 0 {
		return fmt.Errorf("checkin: need ≥1 user and venue, ≥0 check-ins (got %d/%d/%d)",
			c.Users, c.Venues, c.Checkins)
	}
	if c.PopularityExp <= 0 {
		return fmt.Errorf("checkin: popularity exponent %g must be positive", c.PopularityExp)
	}
	return nil
}

// Generate builds a dataset over the Foursquare taxonomy.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := stats.NewRand(cfg.Seed)
	tx := taxonomy.Foursquare()
	leaves := tx.Leaves()

	// City layout: hotspot centers uniform in the middle of the square,
	// venues Gaussian around a hotspot, clipped to [0,1]².
	type hotspot struct {
		center geo.Point
		spread float64
	}
	spots := make([]hotspot, cfg.Hotspots)
	for i := range spots {
		spots[i] = hotspot{
			center: geo.Point{X: 0.15 + 0.7*rng.Float64(), Y: 0.15 + 0.7*rng.Float64()},
			spread: 0.02 + 0.04*rng.Float64(),
		}
	}
	ds := &Dataset{Taxonomy: tx, Users: cfg.Users}
	ds.Venues = make([]Venue, cfg.Venues)
	for v := range ds.Venues {
		spot := spots[rng.Intn(len(spots))]
		x := clamp01(spot.center.X + spot.spread*rng.NormFloat64())
		y := clamp01(spot.center.Y + spot.spread*rng.NormFloat64())
		ds.Venues[v] = Venue{
			ID:       int32(v),
			Loc:      geo.Point{X: x, Y: y},
			Category: leaves[rng.Intn(len(leaves))],
		}
	}

	// Users: home location near a hotspot, preferred leaf categories, and
	// an activity weight (some users check in far more than others).
	type user struct {
		home  geo.Point
		prefs []taxonomy.TagID
	}
	users := make([]user, cfg.Users)
	for u := range users {
		spot := spots[rng.Intn(len(spots))]
		prefs := make([]taxonomy.TagID, cfg.PreferredCategories)
		for i := range prefs {
			prefs[i] = leaves[rng.Intn(len(leaves))]
		}
		users[u] = user{
			home: geo.Point{
				X: clamp01(spot.center.X + 0.1*rng.NormFloat64()),
				Y: clamp01(spot.center.Y + 0.1*rng.NormFloat64()),
			},
			prefs: prefs,
		}
	}
	userZipf := stats.NewZipf(cfg.Users, 0.8)
	venueZipf := stats.NewZipf(cfg.Venues, cfg.PopularityExp)

	// Per-category venue lists for preference-driven venue choice.
	byCategory := map[taxonomy.TagID][]int32{}
	for _, v := range ds.Venues {
		byCategory[v.Category] = append(byCategory[v.Category], v.ID)
	}

	// Diurnal peaks per top-level category branch, driving check-in hours.
	peakOf := func(cat taxonomy.TagID) float64 {
		path := tx.Path(cat)
		top := cat
		if len(path) > 1 {
			top = path[1]
		}
		switch tx.Name(top) {
		case "Food":
			return 12.5
		case "Nightlife":
			return 22
		case "Shops":
			return 16
		case "Arts":
			return 19
		case "Outdoors":
			return 9
		case "Travel":
			return 8
		case "Education":
			return 10
		default:
			return 14
		}
	}

	ds.Records = make([]Record, 0, cfg.Checkins)
	for n := 0; n < cfg.Checkins; n++ {
		ui := userZipf.Sample(rng)
		u := users[ui]
		// 70%: a preferred category near home; 30%: global popularity.
		var venue int32
		if rng.Float64() < 0.7 {
			cat := u.prefs[rng.Intn(len(u.prefs))]
			cands := byCategory[cat]
			if len(cands) == 0 {
				venue = int32(venueZipf.Sample(rng))
			} else {
				venue = nearestOfSample(rng, cands, ds.Venues, u.home, 4)
			}
		} else {
			venue = int32(venueZipf.Sample(rng))
		}
		peak := peakOf(ds.Venues[venue].Category)
		hour := math.Mod(peak+3*rng.NormFloat64()+24, 24)
		ds.Records = append(ds.Records, Record{User: int32(ui), Venue: venue, Hour: hour})
	}
	return ds, nil
}

// nearestOfSample draws k random candidates and returns the one closest to
// home — a cheap stand-in for full distance-weighted sampling.
func nearestOfSample(rng *stats.Rand, cands []int32, venues []Venue, home geo.Point, k int) int32 {
	best := cands[rng.Intn(len(cands))]
	bestD := venues[best].Loc.Dist2(home)
	for i := 1; i < k; i++ {
		c := cands[rng.Intn(len(cands))]
		if d := venues[c].Loc.Dist2(home); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// FilterMinCheckins returns a new dataset keeping only venues with at least
// min check-ins and the records referring to them — the paper's
// preprocessing rule ("we only use the check-ins related to the venues
// having at least 10 check-ins"). Venue IDs are renumbered densely.
func (ds *Dataset) FilterMinCheckins(min int) *Dataset {
	counts := make([]int, len(ds.Venues))
	for _, r := range ds.Records {
		counts[r.Venue]++
	}
	remap := make([]int32, len(ds.Venues))
	out := &Dataset{Taxonomy: ds.Taxonomy, Users: ds.Users}
	for v := range ds.Venues {
		if counts[v] >= min {
			remap[v] = int32(len(out.Venues))
			nv := ds.Venues[v]
			nv.ID = remap[v]
			out.Venues = append(out.Venues, nv)
		} else {
			remap[v] = -1
		}
	}
	for _, r := range ds.Records {
		if remap[r.Venue] >= 0 {
			out.Records = append(out.Records, Record{User: r.User, Venue: remap[r.Venue], Hour: r.Hour})
		}
	}
	return out
}

// VenueCheckinCounts returns per-venue check-in totals.
func (ds *Dataset) VenueCheckinCounts() []int {
	counts := make([]int, len(ds.Venues))
	for _, r := range ds.Records {
		counts[r.Venue]++
	}
	return counts
}
