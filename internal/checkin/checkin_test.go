package checkin

import (
	"sort"
	"testing"

	"muaa/internal/core"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate(Config{Users: 50, Venues: 200, Checkins: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateShape(t *testing.T) {
	ds := smallDataset(t)
	if ds.Users != 50 || len(ds.Venues) != 200 || len(ds.Records) != 4000 {
		t.Fatalf("shape: %d users, %d venues, %d records", ds.Users, len(ds.Venues), len(ds.Records))
	}
	for _, v := range ds.Venues {
		if v.Loc.X < 0 || v.Loc.X > 1 || v.Loc.Y < 0 || v.Loc.Y > 1 {
			t.Fatalf("venue %d location %v outside unit square", v.ID, v.Loc)
		}
		if int(v.Category) >= ds.Taxonomy.NumTags() {
			t.Fatalf("venue %d has unknown category", v.ID)
		}
		if !ds.Taxonomy.IsLeaf(v.Category) {
			t.Fatalf("venue %d category %s is not a leaf", v.ID, ds.Taxonomy.PathName(v.Category))
		}
	}
	for i, r := range ds.Records {
		if r.User < 0 || int(r.User) >= ds.Users {
			t.Fatalf("record %d has unknown user %d", i, r.User)
		}
		if r.Venue < 0 || int(r.Venue) >= len(ds.Venues) {
			t.Fatalf("record %d has unknown venue %d", i, r.Venue)
		}
		if r.Hour < 0 || r.Hour >= 24 {
			t.Fatalf("record %d hour %g outside [0,24)", i, r.Hour)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := smallDataset(t)
	b := smallDataset(t)
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same seed produced different records")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Users: -1}); err == nil {
		t.Error("negative users must be rejected")
	}
	if _, err := Generate(Config{PopularityExp: -2}); err == nil {
		t.Error("negative popularity exponent must be rejected")
	}
}

func TestPopularitySkew(t *testing.T) {
	ds := smallDataset(t)
	counts := ds.VenueCheckinCounts()
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	head := 0
	for _, c := range sorted[:20] {
		head += c
	}
	// The top 10% of venues must own far more than 10% of check-ins.
	if head*3 < len(ds.Records) {
		t.Errorf("head-20 venues hold %d of %d check-ins — no popularity skew", head, len(ds.Records))
	}
}

func TestFilterMinCheckins(t *testing.T) {
	ds := smallDataset(t)
	min := 10
	f := ds.FilterMinCheckins(min)
	if len(f.Venues) == 0 || len(f.Venues) >= len(ds.Venues) {
		t.Fatalf("filter kept %d of %d venues — want a strict, non-empty subset", len(f.Venues), len(ds.Venues))
	}
	counts := f.VenueCheckinCounts()
	for v, c := range counts {
		if c < min {
			t.Fatalf("venue %d survived with only %d check-ins", v, c)
		}
	}
	// Venue IDs must be dense and self-consistent.
	for i, v := range f.Venues {
		if v.ID != int32(i) {
			t.Fatalf("venue %d has ID %d after renumbering", i, v.ID)
		}
	}
	for _, r := range f.Records {
		if int(r.Venue) >= len(f.Venues) {
			t.Fatalf("record references dropped venue %d", r.Venue)
		}
	}
	// No records lost except those of dropped venues.
	dropped := 0
	for _, c := range ds.VenueCheckinCounts() {
		if c < min {
			dropped += c
		}
	}
	if len(f.Records) != len(ds.Records)-dropped {
		t.Errorf("filtered records %d, want %d", len(f.Records), len(ds.Records)-dropped)
	}
}

func defaultProblemConfig() ProblemConfig {
	return ProblemConfig{
		Budget:   stats.Range{Lo: 10, Hi: 20},
		Radius:   stats.Range{Lo: 0.02, Hi: 0.03},
		Capacity: stats.Range{Lo: 1, Hi: 6},
		ViewProb: stats.Range{Lo: 0.1, Hi: 0.5},
		Seed:     2,
	}
}

func TestToProblem(t *testing.T) {
	ds := smallDataset(t).FilterMinCheckins(10)
	p, err := ToProblem(ds, defaultProblemConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Customers) != len(ds.Records) {
		t.Fatalf("one customer per check-in: %d vs %d", len(p.Customers), len(ds.Records))
	}
	if len(p.Vendors) != len(ds.Venues) {
		t.Fatalf("one vendor per venue: %d vs %d", len(p.Vendors), len(ds.Venues))
	}
	// Arrival-sorted.
	for i := 1; i < len(p.Customers); i++ {
		if p.Customers[i].Arrival < p.Customers[i-1].Arrival {
			t.Fatalf("customers not arrival-sorted at %d", i)
		}
	}
	// Interest vectors are taxonomy-sized and normalized.
	for i, u := range p.Customers {
		if len(u.Interests) != ds.Taxonomy.NumTags() {
			t.Fatalf("customer %d interests dimension %d", i, len(u.Interests))
		}
	}
	// Ad-type catalog matches the shared default.
	shared := workload.DefaultAdTypes()
	if len(p.AdTypes) != len(shared) {
		t.Fatalf("ad types diverge from workload.DefaultAdTypes")
	}
	for k := range shared {
		if p.AdTypes[k] != shared[k] {
			t.Fatalf("ad type %d diverges: %+v vs %+v", k, p.AdTypes[k], shared[k])
		}
	}
}

func TestToProblemCaps(t *testing.T) {
	ds := smallDataset(t).FilterMinCheckins(10)
	cfg := defaultProblemConfig()
	cfg.MaxCustomers, cfg.MaxVendors = 100, 20
	p, err := ToProblem(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Customers) != 100 || len(p.Vendors) != 20 {
		t.Fatalf("caps not applied: %d customers, %d vendors", len(p.Customers), len(p.Vendors))
	}
}

func TestToProblemValidation(t *testing.T) {
	ds := smallDataset(t)
	bad := defaultProblemConfig()
	bad.ViewProb = stats.Range{Lo: 0.5, Hi: 2}
	if _, err := ToProblem(ds, bad); err == nil {
		t.Error("bad view probability range must be rejected")
	}
	bad = defaultProblemConfig()
	bad.Budget = stats.Range{Lo: 5, Hi: 1}
	if _, err := ToProblem(ds, bad); err == nil {
		t.Error("inverted budget range must be rejected")
	}
}

func TestCheckinProblemSolvable(t *testing.T) {
	// End-to-end: the converted problem runs through the online solver and
	// produces a feasible assignment with positive utility.
	ds := smallDataset(t).FilterMinCheckins(5)
	cfg := defaultProblemConfig()
	cfg.MaxCustomers = 300
	cfg.Radius = stats.Range{Lo: 0.05, Hi: 0.1}
	p, err := ToProblem(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.OnlineAFA{Seed: 1}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility <= 0 {
		t.Error("check-in problem yielded zero utility — conversion is probably broken")
	}
}

func TestDiurnalHoursFollowCategories(t *testing.T) {
	ds, err := Generate(Config{Users: 40, Venues: 300, Checkins: 8000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Nightlife check-ins must skew later than Travel check-ins.
	var nightHours, travelHours []float64
	for _, r := range ds.Records {
		path := ds.Taxonomy.Path(ds.Venues[r.Venue].Category)
		if len(path) < 2 {
			continue
		}
		switch ds.Taxonomy.Name(path[1]) {
		case "Nightlife":
			nightHours = append(nightHours, r.Hour)
		case "Travel":
			travelHours = append(travelHours, r.Hour)
		}
	}
	if len(nightHours) < 50 || len(travelHours) < 50 {
		t.Skip("not enough category samples")
	}
	nightMedian := stats.Summarize(nightHours).Median
	travelMedian := stats.Summarize(travelHours).Median
	if nightMedian <= travelMedian {
		t.Errorf("nightlife median hour %g not later than travel %g", nightMedian, travelMedian)
	}
}
