package checkin

import (
	"fmt"
	"sort"

	"muaa/internal/model"
	"muaa/internal/stats"
	"muaa/internal/taxonomy"
)

// ProblemConfig controls the dataset → MUAA problem conversion, carrying the
// paper's per-entity ranges (Table IV knobs) and optional sampling caps for
// experiment speed.
type ProblemConfig struct {
	Budget   stats.Range // vendor budgets [B−, B+]
	Radius   stats.Range // vendor radii [r−, r+]
	Capacity stats.Range // customer capacities [a−, a+]
	ViewProb stats.Range // viewing probabilities [p−, p+]
	// MaxCustomers / MaxVendors cap the converted problem by uniform
	// sampling (0 = no cap). The paper runs 441,060 customers × 7,222
	// vendors on a 32 GB Xeon; the caps let the same pipeline run in a unit
	// test.
	MaxCustomers int
	MaxVendors   int
	// Kappa is the taxonomy propagation factor for interest vectors; zero
	// selects the taxonomy default.
	Kappa float64
	Seed  int64
}

// ToProblem applies the paper's preprocessing to a (filtered) dataset:
//
//   - every check-in becomes one customer located at the check-in venue with
//     the check-in hour as arrival time (same user at different timestamps =
//     different customers, exactly as Section V-A states);
//   - the customer's interest vector is the taxonomy-driven profile of the
//     *user's* complete check-in history (Eqs. 1–3);
//   - every venue becomes one vendor whose tag vector marks its category;
//   - budgets, radii, capacities and view probabilities are drawn from the
//     configured truncated-Gaussian ranges.
//
// Customers are ordered by arrival hour — the stream order of the online
// experiments.
func ToProblem(ds *Dataset, cfg ProblemConfig) (*model.Problem, error) {
	for name, r := range map[string]stats.Range{
		"budget": cfg.Budget, "radius": cfg.Radius, "capacity": cfg.Capacity, "view probability": cfg.ViewProb,
	} {
		if !r.Valid() || r.Lo < 0 {
			return nil, fmt.Errorf("checkin: invalid %s range %v", name, r)
		}
	}
	if cfg.ViewProb.Hi > 1 {
		return nil, fmt.Errorf("checkin: view probability range %v exceeds 1", cfg.ViewProb)
	}
	rng := stats.NewRand(cfg.Seed)

	// User profiles from full histories (Eqs. 1–3).
	histories := make([]map[taxonomy.TagID]int, ds.Users)
	for _, r := range ds.Records {
		if histories[r.User] == nil {
			histories[r.User] = map[taxonomy.TagID]int{}
		}
		histories[r.User][ds.Venues[r.Venue].Category]++
	}
	profileCfg := taxonomy.ProfileConfig{Kappa: cfg.Kappa, Normalize: true}
	profiles := make([][]float64, ds.Users)
	for u := range profiles {
		if histories[u] == nil {
			profiles[u] = make([]float64, ds.Taxonomy.NumTags())
			continue
		}
		profiles[u] = ds.Taxonomy.InterestVector(histories[u], profileCfg)
	}

	// Sample records and venues under the caps.
	records := ds.Records
	if cfg.MaxCustomers > 0 && len(records) > cfg.MaxCustomers {
		records = sampleRecords(rng, records, cfg.MaxCustomers)
	}
	venues := ds.Venues
	venueRemap := make([]int32, len(ds.Venues))
	if cfg.MaxVendors > 0 && len(venues) > cfg.MaxVendors {
		picked := rng.Perm(len(venues))[:cfg.MaxVendors]
		sort.Ints(picked)
		for i := range venueRemap {
			venueRemap[i] = -1
		}
		kept := make([]Venue, 0, cfg.MaxVendors)
		for newID, old := range picked {
			venueRemap[old] = int32(newID)
			v := venues[old]
			v.ID = int32(newID)
			kept = append(kept, v)
		}
		venues = kept
	} else {
		for i := range venueRemap {
			venueRemap[i] = int32(i)
		}
	}

	p := &model.Problem{AdTypes: defaultAdTypes()}
	p.Vendors = make([]model.Vendor, len(venues))
	for j, v := range venues {
		p.Vendors[j] = model.Vendor{
			ID:     int32(j),
			Loc:    v.Loc,
			Radius: stats.TruncGaussian(rng, cfg.Radius),
			Budget: stats.TruncGaussian(rng, cfg.Budget),
			Tags:   ds.Taxonomy.VendorVector([]taxonomy.TagID{v.Category}, 0.5),
		}
	}
	// Customers sorted by arrival hour (paper: arrival times modulo 24 h).
	sort.SliceStable(records, func(a, b int) bool { return records[a].Hour < records[b].Hour })
	for _, r := range records {
		p.Customers = append(p.Customers, model.Customer{
			ID:        int32(len(p.Customers)),
			Loc:       ds.Venues[r.Venue].Loc,
			Capacity:  stats.TruncGaussianInt(rng, cfg.Capacity),
			ViewProb:  stats.TruncGaussian(rng, cfg.ViewProb),
			Interests: profiles[r.User],
			Arrival:   r.Hour,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("checkin: conversion produced invalid problem: %w", err)
	}
	return p, nil
}

func sampleRecords(rng *stats.Rand, records []Record, n int) []Record {
	idx := rng.Perm(len(records))[:n]
	sort.Ints(idx)
	out := make([]Record, n)
	for i, j := range idx {
		out[i] = records[j]
	}
	return out
}

// defaultAdTypes mirrors workload.DefaultAdTypes without importing it (the
// two packages are independent substrates; the shared catalog is asserted
// equal in tests).
func defaultAdTypes() []model.AdType {
	return []model.AdType{
		{Name: "Text Link", Cost: 1, Effect: 0.1},
		{Name: "Banner", Cost: 1.5, Effect: 0.22},
		{Name: "Photo Link", Cost: 2, Effect: 0.4},
		{Name: "In-App Video", Cost: 3, Effect: 0.55},
	}
}
