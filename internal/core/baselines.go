package core

import (
	"sort"

	"muaa/internal/model"
	"muaa/internal/stats"
)

// Random is the RANDOM baseline of Section V: customers are processed in
// arrival order and each receives up to a_i ads from randomly chosen valid
// vendors with randomly chosen affordable ad types. It ignores utility
// entirely, which is why its overall utility stays flat as problems scale.
type Random struct {
	Seed int64
}

// Name implements Solver.
func (Random) Name() string { return "RANDOM" }

// Solve implements Solver.
func (r Random) Solve(p *model.Problem) (model.Assignment, error) {
	ix := NewIndex(p)
	rng := stats.NewRand(r.Seed)
	led := newLedger(p)
	var ins []model.Instance
	var buf []int32
	for ui := range p.Customers {
		buf = ix.ValidVendors(buf[:0], int32(ui))
		sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] }) // determinism before shuffle
		stats.Shuffle(rng, buf)
		for _, vj := range buf {
			if led.received[ui] >= p.Customers[ui].Capacity {
				break
			}
			// Random affordable ad type, if any.
			k := r.randomAffordableType(p, rng, vj, led)
			if k < 0 {
				continue
			}
			c := candidate{customer: int32(ui), vendor: vj, adType: k}
			if !led.fits(c) {
				continue
			}
			led.take(c)
			ins = append(ins, model.Instance{Customer: int32(ui), Vendor: vj, AdType: k})
		}
	}
	return finish(p, ins)
}

func (Random) randomAffordableType(p *model.Problem, rng *stats.Rand, vj int32, led *ledger) int {
	remaining := p.Vendors[vj].Budget - led.spent[vj]
	var affordable []int
	for k := range p.AdTypes {
		if p.AdTypes[k].Cost <= remaining+1e-12 {
			affordable = append(affordable, k)
		}
	}
	if len(affordable) == 0 {
		return -1
	}
	return affordable[rng.Intn(len(affordable))]
}

// Nearest is the NEAREST baseline of Section V: when a customer appears, the
// ads of the nearest covering vendors are assigned greedily by distance
// until the customer's capacity is filled. The ad type is the cheapest
// affordable one — like RANDOM, this baseline does not look at utility.
type Nearest struct{}

// Name implements Solver.
func (Nearest) Name() string { return "NEAREST" }

// Solve implements Solver.
func (Nearest) Solve(p *model.Problem) (model.Assignment, error) {
	ix := NewIndex(p)
	led := newLedger(p)
	var ins []model.Instance
	var buf []int32
	for ui := range p.Customers {
		buf = ix.ValidVendors(buf[:0], int32(ui))
		u := &p.Customers[ui]
		sort.Slice(buf, func(a, b int) bool {
			da := p.Vendors[buf[a]].Loc.Dist2(u.Loc)
			db := p.Vendors[buf[b]].Loc.Dist2(u.Loc)
			if da != db {
				return da < db
			}
			return buf[a] < buf[b]
		})
		for _, vj := range buf {
			if led.received[ui] >= u.Capacity {
				break
			}
			k := cheapestAffordableType(p, vj, led)
			if k < 0 {
				continue
			}
			c := candidate{customer: int32(ui), vendor: vj, adType: k}
			if !led.fits(c) {
				continue
			}
			led.take(c)
			ins = append(ins, model.Instance{Customer: int32(ui), Vendor: vj, AdType: k})
		}
	}
	return finish(p, ins)
}

func cheapestAffordableType(p *model.Problem, vj int32, led *ledger) int {
	remaining := p.Vendors[vj].Budget - led.spent[vj]
	best, bestCost := -1, 0.0
	for k := range p.AdTypes {
		c := p.AdTypes[k].Cost
		if c <= remaining+1e-12 && (best < 0 || c < bestCost) {
			best, bestCost = k, c
		}
	}
	return best
}
