package core

import (
	"fmt"
	"sort"

	"muaa/internal/model"
)

// OnlineBatch is a micro-batching extension of the online setting: instead
// of answering every customer instantly, the broker buffers arrivals into
// windows of Window customers and solves each window offline (a greedy
// assignment over the window's candidates under the live budget/capacity
// state). The paper's O-AFA answers in O(n·q) per customer with zero
// look-ahead; batching trades a bounded answer delay (at most Window−1
// arrivals) for look-ahead *within* the window, closing part of the gap to
// the offline solvers. The A6 ablation quantifies the trade-off.
//
// Batching composes with the adaptive admission threshold: within a window,
// candidates are assigned greedily by efficiency but must still clear the
// owning vendor's φ(δ) — without the threshold, early windows spend budgets
// eagerly on mediocre ads and batching loses to plain O-AFA (the A6 ablation
// shows both variants). Window = 1 with the threshold is O-AFA-like;
// Window ≥ m with a nil threshold is the offline GREEDY.
type OnlineBatch struct {
	// Window is the batch size in arrivals; zero selects 64.
	Window int
	// Threshold gates candidates per vendor. Nil builds the paper's
	// adaptive threshold from GammaMin/G (estimated when zero) — pass
	// StaticThreshold{0} to disable admission control entirely.
	Threshold Threshold
	// GammaMin and G configure the default adaptive threshold as in
	// OnlineAFA.
	GammaMin float64
	G        float64
	// Seed drives γ estimation sampling.
	Seed int64
}

// Name implements Solver.
func (b OnlineBatch) Name() string { return "BATCH" }

// Solve implements Solver, replaying the Customers slice as the arrival
// stream through a BatchSession.
func (b OnlineBatch) Solve(p *model.Problem) (model.Assignment, error) {
	s, err := NewBatchSession(p, b)
	if err != nil {
		return model.Assignment{}, err
	}
	for ui := range p.Customers {
		s.Arrive(int32(ui))
	}
	s.Flush()
	return s.Finish()
}

// BatchSession is the incremental interface to OnlineBatch. Arrive buffers;
// every Window-th arrival (and Flush) drains the buffer by solving the
// window. Pushed instances for a customer become available only when their
// window drains — the answer-delay the batching buys its utility with.
type BatchSession struct {
	p         *model.Problem
	ix        *Index
	window    int
	threshold Threshold
	led       *ledger
	buf       []int32
	ins       []model.Instance
}

// NewBatchSession validates and prepares a session.
func NewBatchSession(p *model.Problem, cfg OnlineBatch) (*BatchSession, error) {
	w := cfg.Window
	if w == 0 {
		w = 64
	}
	if w < 1 {
		return nil, fmt.Errorf("core: batch window %d must be ≥ 1", w)
	}
	th := cfg.Threshold
	if th == nil {
		var err error
		th, err = buildAdaptiveThreshold(p, cfg.GammaMin, cfg.G, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	return &BatchSession{
		p:         p,
		ix:        NewIndex(p),
		window:    w,
		threshold: th,
		led:       newLedger(p),
	}, nil
}

// Arrive buffers the customer; when the buffer reaches the window size it is
// drained and the instances pushed for the whole window are returned
// (otherwise nil).
func (s *BatchSession) Arrive(ui int32) []model.Instance {
	s.buf = append(s.buf, ui)
	if len(s.buf) >= s.window {
		return s.Flush()
	}
	return nil
}

// Flush drains the current buffer (possibly shorter than a window) and
// returns the pushed instances.
func (s *BatchSession) Flush() []model.Instance {
	if len(s.buf) == 0 {
		return nil
	}
	// Pair candidates of the window's customers, ranked by the pair's best
	// possible efficiency. When a pair is taken, the concrete ad type is
	// chosen with O-AFA's rule: the highest-utility type that clears the
	// vendor's *current* threshold and fits the remaining budget — so the
	// look-ahead decides which pairs are served while the admission policy
	// still governs spending.
	type pairCand struct {
		customer int32
		vendor   int32
		base     float64
	}
	var pairs []pairCand
	var vbuf []int32
	for _, ui := range s.buf {
		vbuf = s.ix.ValidVendors(vbuf[:0], ui)
		for _, vj := range vbuf {
			if base := s.p.UtilityBase(ui, vj); base > 0 {
				pairs = append(pairs, pairCand{customer: ui, vendor: vj, base: base})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].base != pairs[b].base {
			return pairs[a].base > pairs[b].base
		}
		if pairs[a].customer != pairs[b].customer {
			return pairs[a].customer < pairs[b].customer
		}
		return pairs[a].vendor < pairs[b].vendor
	})
	var pushed []model.Instance
	for _, pr := range pairs {
		if s.led.received[pr.customer] >= s.p.Customers[pr.customer].Capacity {
			continue
		}
		if s.led.pairUsed[[2]int32{pr.customer, pr.vendor}] {
			continue
		}
		budget := s.p.Vendors[pr.vendor].Budget
		if budget <= 0 {
			continue
		}
		phi := s.threshold.Value(s.led.spent[pr.vendor] / budget)
		remaining := budget - s.led.spent[pr.vendor]
		bestK, bestU := -1, 0.0
		for k := range s.p.AdTypes {
			cost := s.p.AdTypes[k].Cost
			if cost > remaining+1e-12 {
				continue
			}
			util := pr.base * s.p.AdTypes[k].Effect
			if util/cost < phi {
				continue
			}
			if util > bestU {
				bestK, bestU = k, util
			}
		}
		if bestK < 0 {
			continue
		}
		c := candidate{customer: pr.customer, vendor: pr.vendor, adType: bestK}
		s.led.take(c)
		in := model.Instance{Customer: pr.customer, Vendor: pr.vendor, AdType: bestK}
		s.ins = append(s.ins, in)
		pushed = append(pushed, in)
	}
	s.buf = s.buf[:0]
	return pushed
}

// Finish returns the accumulated assignment (call Flush first to drain a
// partial final window).
func (s *BatchSession) Finish() (model.Assignment, error) {
	return finish(s.p, append([]model.Instance(nil), s.ins...))
}
