package core

import (
	"testing"

	"muaa/internal/workload"
)

func TestBatchFeasibleAcrossWindows(t *testing.T) {
	p := mediumProblem(t, 21)
	for _, w := range []int{1, 7, 64, 100000} {
		a, err := OnlineBatch{Window: w}.Solve(p)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if a.Utility <= 0 {
			t.Fatalf("window %d: zero utility", w)
		}
	}
}

func TestBatchFullWindowComparableToGreedy(t *testing.T) {
	p := mediumProblem(t, 22)
	// A whole-stream window with no admission control is the offline greedy
	// over pairs with O-AFA's max-utility type rule; it differs from GREEDY
	// (which ranks (pair, type) triples by efficiency) but must land in the
	// same ballpark.
	batch, err := OnlineBatch{Window: len(p.Customers), Threshold: StaticThreshold{Phi: 0}}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Utility < 0.8*greedy.Utility {
		t.Errorf("whole-stream window %g far below GREEDY %g", batch.Utility, greedy.Utility)
	}
}

func TestBatchUtilityGrowsWithWindow(t *testing.T) {
	// More look-ahead cannot hurt in aggregate across seeds.
	var small, large float64
	for seed := int64(0); seed < 3; seed++ {
		p := mediumProblem(t, 30+seed)
		a1, err := OnlineBatch{Window: 1}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := OnlineBatch{Window: 256}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		small += a1.Utility
		large += a2.Utility
	}
	if large < small {
		t.Errorf("window 256 aggregate %g below window 1 %g", large, small)
	}
}

func TestBatchSessionDeliveryTiming(t *testing.T) {
	p := mediumProblem(t, 23)
	s, err := NewBatchSession(p, OnlineBatch{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for ui := 0; ui < 9; ui++ {
		if pushed := s.Arrive(int32(ui)); pushed != nil {
			t.Fatalf("window of 10 drained after %d arrivals", ui+1)
		}
	}
	if pushed := s.Arrive(9); pushed == nil {
		t.Fatal("10th arrival must drain the window")
	} else {
		delivered += len(pushed)
	}
	// Partial window drains only on Flush.
	s.Arrive(10)
	if pushed := s.Flush(); len(pushed) == 0 && delivered == 0 {
		t.Log("flush may legitimately push nothing if no candidate fits")
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWindowValidation(t *testing.T) {
	p := workload.Example1()
	if _, err := NewBatchSession(p, OnlineBatch{Window: -1}); err == nil {
		t.Error("negative window must be rejected")
	}
	s, err := NewBatchSession(p, OnlineBatch{})
	if err != nil {
		t.Fatal(err)
	}
	if s.window != 64 {
		t.Errorf("default window = %d, want 64", s.window)
	}
	if (OnlineBatch{}).Name() != "BATCH" {
		t.Error("Name wrong")
	}
}

func TestBatchBetweenOnlineAndGreedyInAggregate(t *testing.T) {
	var online, batch, greedy float64
	for seed := int64(0); seed < 3; seed++ {
		p := mediumProblem(t, 40+seed)
		for _, run := range []struct {
			s   Solver
			out *float64
		}{
			{OnlineAFA{Seed: seed}, &online},
			{OnlineBatch{Window: 128}, &batch},
			{Greedy{}, &greedy},
		} {
			a, err := run.s.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			*run.out += a.Utility
		}
	}
	if batch < online*0.95 {
		t.Errorf("batching (%g) should not lose to pure online (%g) in aggregate", batch, online)
	}
	// GREEDY (efficiency-ranked types, no admission control) is routinely
	// *below* the thresholded variants when budgets bind — the paper's own
	// motivation for the adaptive threshold. Just sanity-bound the gap.
	if batch < 0.5*greedy {
		t.Errorf("batch (%g) collapsed relative to GREEDY (%g)", batch, greedy)
	}
}
