package core

import (
	"math"
	"sort"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

// smallConfig generates compact problems whose exact optimum is computable.
func smallProblem(t *testing.T, seed int64, customers, vendors int) *model.Problem {
	t.Helper()
	p, err := workload.Synthetic(workload.Config{
		Customers: customers,
		Vendors:   vendors,
		Budget:    stats.Range{Lo: 2, Hi: 5},
		Radius:    stats.Range{Lo: 0.3, Hi: 0.5}, // large radii: plenty of valid pairs
		Capacity:  stats.Range{Lo: 1, Hi: 3},
		ViewProb:  stats.Range{Lo: 0.1, Hi: 0.9},
		AdTypes: []model.AdType{
			{Name: "TL", Cost: 1, Effect: 0.1},
			{Name: "PL", Cost: 2, Effect: 0.4},
		},
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mediumProblem is big enough to exercise every code path but fast.
func mediumProblem(t *testing.T, seed int64) *model.Problem {
	t.Helper()
	p, err := workload.Synthetic(workload.Config{
		Customers: 400,
		Vendors:   40,
		Budget:    stats.Range{Lo: 10, Hi: 20},
		Radius:    stats.Range{Lo: 0.05, Hi: 0.1},
		Capacity:  stats.Range{Lo: 1, Hi: 6},
		ViewProb:  stats.Range{Lo: 0.1, Hi: 0.5},
		Seed:      seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func allSolvers() []Solver {
	return []Solver{
		Recon{Seed: 1},
		Recon{UseLP: true, Seed: 1},
		OnlineAFA{Seed: 1},
		Greedy{},
		Random{Seed: 1},
		Nearest{},
	}
}

func TestAllSolversProduceFeasibleAssignments(t *testing.T) {
	// finish() asserts feasibility; this test confirms no solver errors out
	// across a spread of random problems, which together with finish is the
	// feasibility property for all four constraints.
	for seed := int64(0); seed < 5; seed++ {
		p := mediumProblem(t, seed)
		for _, s := range allSolvers() {
			a, err := s.Solve(p)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, s.Name(), err)
			}
			if a.Utility < 0 {
				t.Fatalf("seed %d %s: negative utility %g", seed, s.Name(), a.Utility)
			}
			if got := p.TotalUtility(a.Instances); math.Abs(got-a.Utility) > 1e-9 {
				t.Fatalf("seed %d %s: recorded utility %g, recomputed %g", seed, s.Name(), a.Utility, got)
			}
		}
	}
}

func TestSolversDeterministic(t *testing.T) {
	p := mediumProblem(t, 11)
	for _, s := range allSolvers() {
		a1, err1 := s.Solve(p)
		a2, err2 := s.Solve(p)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", s.Name(), err1, err2)
		}
		if a1.Utility != a2.Utility || len(a1.Instances) != len(a2.Instances) {
			t.Fatalf("%s: nondeterministic (%g/%d vs %g/%d)", s.Name(),
				a1.Utility, len(a1.Instances), a2.Utility, len(a2.Instances))
		}
		for i := range a1.Instances {
			if a1.Instances[i] != a2.Instances[i] {
				t.Fatalf("%s: instance %d differs", s.Name(), i)
			}
		}
	}
}

func TestExactOnExample1(t *testing.T) {
	p := workload.Example1()
	a, err := Exact{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// The paper claims 0.0504 as optimal; the true optimum of the example
	// instance is 0.0520435 (see EXPERIMENTS.md E1).
	if math.Abs(a.Utility-0.0520435) > 1e-6 {
		t.Errorf("exact utility = %.7f, want 0.0520435", a.Utility)
	}
	_, claimed := workload.Example1PaperSolutions()
	if a.Utility < p.TotalUtility(claimed)-1e-12 {
		t.Error("exact must be at least the paper's claimed optimum")
	}
}

func TestSolverOrderingOnExample1(t *testing.T) {
	p := workload.Example1()
	exact, err := Exact{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allSolvers() {
		a, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if a.Utility > exact.Utility+1e-9 {
			t.Errorf("%s beat the optimum: %g > %g", s.Name(), a.Utility, exact.Utility)
		}
	}
}

func TestReconApproximationRatio(t *testing.T) {
	// Guaranteed bound with the greedy MCKP backend: per-vendor value ≥ 1/2
	// of the vendor optimum, then reconciliation costs θ, so
	// RECON ≥ 0.5·θ·OPT. Empirically it is far closer to OPT.
	ratios := make([]float64, 0, 20)
	for seed := int64(0); seed < 20; seed++ {
		p := smallProblem(t, seed, 4, 3)
		exact, err := Exact{MaxPairs: 40}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Utility == 0 {
			continue
		}
		recon, err := Recon{Seed: seed}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		theta := p.Theta()
		if recon.Utility < 0.5*theta*exact.Utility-1e-9 {
			t.Errorf("seed %d: RECON %g below 0.5·θ·OPT = %g (θ=%g, OPT=%g)",
				seed, recon.Utility, 0.5*theta*exact.Utility, theta, exact.Utility)
		}
		ratios = append(ratios, recon.Utility/exact.Utility)
	}
	if len(ratios) == 0 {
		t.Fatal("no instance had positive optimum")
	}
	if mean := stats.Summarize(ratios).Mean; mean < 0.8 {
		t.Errorf("mean empirical approximation ratio %g suspiciously low", mean)
	}
}

func TestOnlineNeverBeatsOptimumAndIsCompetitive(t *testing.T) {
	lowRatio := 0
	total := 0
	for seed := int64(0); seed < 20; seed++ {
		p := smallProblem(t, seed, 4, 3)
		exact, err := Exact{MaxPairs: 40}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Utility == 0 {
			continue
		}
		online, err := OnlineAFA{Seed: seed}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if online.Utility > exact.Utility+1e-9 {
			t.Fatalf("seed %d: ONLINE %g beat OPT %g", seed, online.Utility, exact.Utility)
		}
		total++
		// The theoretical guarantee OPT/ONLINE ≤ (ln g + 1)/θ assumes item
		// costs ≪ budgets, which tiny instances violate; count how often the
		// bound holds rather than requiring it per-instance.
		theta := p.Theta()
		bound := (math.Log(2*math.E) + 1) / theta
		if exact.Utility/math.Max(online.Utility, 1e-12) > bound {
			lowRatio++
		}
	}
	if total == 0 {
		t.Fatal("no instance had positive optimum")
	}
	if lowRatio > total/2 {
		t.Errorf("competitive bound violated on %d/%d small instances — too often even for the small-cost caveat", lowRatio, total)
	}
}

func TestGreedyAtLeastHalfOfOptimumEmpirically(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := smallProblem(t, seed, 4, 3)
		exact, err := Exact{MaxPairs: 40}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Greedy{}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Utility > exact.Utility+1e-9 {
			t.Fatalf("seed %d: GREEDY beat OPT", seed)
		}
	}
}

func TestQualityOrderingOnMediumProblems(t *testing.T) {
	// The evaluation section's consistent finding: RECON and GREEDY beat
	// ONLINE, and every utility-aware method beats RANDOM. Check the
	// aggregate over several seeds (individual seeds can fluctuate).
	var recon, greedy, online, random, nearest float64
	for seed := int64(0); seed < 3; seed++ {
		p := mediumProblem(t, seed)
		for _, s := range allSolvers() {
			a, err := s.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			switch s.Name() {
			case "RECON":
				recon += a.Utility
			case "GREEDY":
				greedy += a.Utility
			case "ONLINE":
				online += a.Utility
			case "RANDOM":
				random += a.Utility
			case "NEAREST":
				nearest += a.Utility
			}
		}
	}
	if !(recon > random && greedy > random && online > random) {
		t.Errorf("utility-aware methods must beat RANDOM: recon=%g greedy=%g online=%g random=%g",
			recon, greedy, online, random)
	}
	if recon < online {
		t.Errorf("offline RECON (%g) should not lose to ONLINE (%g) in aggregate", recon, online)
	}
	if greedy < nearest {
		t.Errorf("GREEDY (%g) should beat NEAREST (%g)", greedy, nearest)
	}
}

func TestReconReconciliationResolvesViolations(t *testing.T) {
	// Two vendors covering one customer with capacity 1: both single-vendor
	// solutions want the customer; reconciliation must drop one.
	p := &model.Problem{
		Customers: []model.Customer{
			{ID: 0, Loc: pt(0.5, 0.5), Capacity: 1, ViewProb: 0.9},
			{ID: 1, Loc: pt(0.52, 0.5), Capacity: 1, ViewProb: 0.2},
		},
		Vendors: []model.Vendor{
			{ID: 0, Loc: pt(0.45, 0.5), Radius: 0.2, Budget: 2},
			{ID: 1, Loc: pt(0.55, 0.5), Radius: 0.2, Budget: 2},
		},
		AdTypes:    []model.AdType{{Name: "PL", Cost: 2, Effect: 0.4}},
		Preference: model.TablePreference{{0.9, 0.8}, {0.5, 0.6}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := Recon{Seed: 3}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Each vendor has budget for exactly one PL. Without reconciliation both
	// would pick u0 (higher view probability). Feasibility demands u0 keeps
	// one ad; the refill should hand the freed vendor to u1.
	count := map[int32]int{}
	for _, in := range a.Instances {
		count[in.Customer]++
	}
	if count[0] != 1 || count[1] != 1 {
		t.Errorf("expected one ad per customer after reconciliation, got %v (instances %v)", count, a.Instances)
	}
}

func TestReconLPMatchesGreedyBackendClosely(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		p := smallProblem(t, seed, 6, 3)
		g, err := Recon{Seed: seed}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Recon{UseLP: true, Seed: seed}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if g.Utility == 0 && l.Utility == 0 {
			continue
		}
		ratio := l.Utility / math.Max(g.Utility, 1e-12)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("seed %d: LP backend %g vs greedy backend %g diverge beyond tolerance", seed, l.Utility, g.Utility)
		}
	}
}

func TestExactPairLimit(t *testing.T) {
	p := mediumProblem(t, 1)
	if _, err := (Exact{}).Solve(p); err == nil {
		t.Error("exact on a large instance must refuse")
	}
}

func pt(x, y float64) geo.Point {
	return geo.Point{X: x, Y: y}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	p := mediumProblem(t, 2)
	ix := NewIndex(p)
	for ui := 0; ui < 50; ui++ {
		got := append([]int32(nil), ix.ValidVendors(nil, int32(ui))...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		var want []int32
		for j := range p.Vendors {
			if p.InRange(int32(ui), int32(j)) {
				want = append(want, int32(j))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("u%d: ValidVendors %v, want %v", ui, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("u%d: ValidVendors %v, want %v", ui, got, want)
			}
		}
	}
	for vj := 0; vj < len(p.Vendors); vj++ {
		got := append([]int32(nil), ix.ValidCustomers(nil, int32(vj))...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		var want []int32
		for i := range p.Customers {
			if p.InRange(int32(i), int32(vj)) {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			t.Fatalf("v%d: ValidCustomers %d results, want %d", vj, len(got), len(want))
		}
	}
}

func TestReconFPTASGuarantee(t *testing.T) {
	// With the FPTAS backend, Theorem III.1's (1−ε)·θ bound is a literal
	// guarantee (the hull-greedy backend carries a 1/2-factor instead).
	const eps = 0.1
	for seed := int64(0); seed < 15; seed++ {
		p := smallProblem(t, seed, 4, 3)
		exact, err := Exact{MaxPairs: 40}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Utility == 0 {
			continue
		}
		recon, err := Recon{Epsilon: eps, Seed: seed}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		theta := p.Theta()
		if bound := (1 - eps) * theta * exact.Utility; recon.Utility < bound-1e-9 {
			t.Errorf("seed %d: RECON-FPTAS %g below (1-ε)·θ·OPT = %g (θ=%g, OPT=%g)",
				seed, recon.Utility, bound, theta, exact.Utility)
		}
		if recon.Utility > exact.Utility+1e-9 {
			t.Errorf("seed %d: RECON-FPTAS beat the optimum", seed)
		}
	}
}

func TestReconBackendConfigValidation(t *testing.T) {
	p := workload.Example1()
	if _, err := (Recon{UseLP: true, Epsilon: 0.1}).Solve(p); err == nil {
		t.Error("UseLP + Epsilon must be rejected")
	}
	if _, err := (Recon{Epsilon: 1.5}).Solve(p); err == nil {
		t.Error("Epsilon ≥ 1 must be rejected")
	}
	if _, err := (Recon{Epsilon: -0.1}).Solve(p); err == nil {
		t.Error("negative Epsilon must be rejected")
	}
	if got := (Recon{Epsilon: 0.1}).Name(); got != "RECON-FPTAS" {
		t.Errorf("Name = %q", got)
	}
}

func TestReconFPTASOnExample1(t *testing.T) {
	p := workload.Example1()
	a, err := Recon{Epsilon: 0.05, Seed: 1}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// θ = 1 on Example 1 (every customer's capacity covers its valid
	// vendors), so the guarantee is ≥ 0.95·OPT = 0.04944.
	if a.Utility < 0.95*0.0520435-1e-9 {
		t.Errorf("RECON-FPTAS on Example 1 = %g, below guarantee", a.Utility)
	}
}

func TestReconParallelMatchesSequential(t *testing.T) {
	p := mediumProblem(t, 55)
	seq, err := Recon{Seed: 9}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 2, 8} {
		par, err := Recon{Seed: 9, Workers: workers}.Solve(p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Utility != seq.Utility || len(par.Instances) != len(seq.Instances) {
			t.Fatalf("workers=%d diverged: %g/%d vs %g/%d", workers,
				par.Utility, len(par.Instances), seq.Utility, len(seq.Instances))
		}
		for i := range par.Instances {
			if par.Instances[i] != seq.Instances[i] {
				t.Fatalf("workers=%d instance %d differs", workers, i)
			}
		}
	}
}
