package core

import (
	"fmt"
	"sort"

	"muaa/internal/model"
)

// Exact computes the optimal MUAA assignment by branch-and-bound over valid
// (customer, vendor) pairs. MUAA is NP-hard (Theorem II.1), so Exact is only
// usable on small instances; it exists to measure the empirical
// approximation ratio of RECON and the empirical competitive ratio of O-AFA
// against the true optimum, and to verify the paper's worked Example 1.
// MaxPairs guards against accidental use on large problems.
type Exact struct {
	// MaxPairs aborts the solve when the instance has more valid pairs than
	// this; zero selects 28.
	MaxPairs int
}

// Name implements Solver.
func (Exact) Name() string { return "EXACT" }

// Solve implements Solver.
func (e Exact) Solve(p *model.Problem) (model.Assignment, error) {
	ix := NewIndex(p)
	// One decision per valid pair: which ad type, or none. Collect pairs
	// with their per-type utilities.
	type pair struct {
		customer int32
		vendor   int32
		util     []float64 // per ad type
		maxUtil  float64
	}
	var pairs []pair
	var buf []int32
	for ui := range p.Customers {
		buf = ix.ValidVendors(buf[:0], int32(ui))
		for _, vj := range buf {
			base := p.UtilityBase(int32(ui), vj)
			pr := pair{customer: int32(ui), vendor: vj, util: make([]float64, len(p.AdTypes))}
			for k := range p.AdTypes {
				pr.util[k] = base * p.AdTypes[k].Effect
				if pr.util[k] > pr.maxUtil {
					pr.maxUtil = pr.util[k]
				}
			}
			if pr.maxUtil > 0 {
				pairs = append(pairs, pr)
			}
		}
	}
	limit := e.MaxPairs
	if limit == 0 {
		limit = 28
	}
	if len(pairs) > limit {
		return model.Assignment{}, fmt.Errorf("core: exact solver over %d pairs exceeds limit %d", len(pairs), limit)
	}
	// Sort by descending best utility so the bound prunes early.
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].maxUtil > pairs[b].maxUtil })
	// Suffix sums of maxUtil give an optimistic completion bound.
	suffix := make([]float64, len(pairs)+1)
	for i := len(pairs) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + pairs[i].maxUtil
	}

	led := newLedger(p)
	var best []model.Instance
	bestVal := -1.0
	cur := make([]model.Instance, 0, len(pairs))

	var dfs func(pos int, val float64)
	dfs = func(pos int, val float64) {
		if val > bestVal {
			bestVal = val
			best = append(best[:0], cur...)
		}
		if pos == len(pairs) || val+suffix[pos] <= bestVal+1e-15 {
			return
		}
		pr := pairs[pos]
		// Branch: each ad type (most valuable first), then skip.
		order := make([]int, len(pr.util))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return pr.util[order[a]] > pr.util[order[b]] })
		for _, k := range order {
			if pr.util[k] <= 0 {
				continue
			}
			c := candidate{customer: pr.customer, vendor: pr.vendor, adType: k}
			if !led.fits(c) {
				continue
			}
			led.take(c)
			cur = append(cur, model.Instance{Customer: pr.customer, Vendor: pr.vendor, AdType: k})
			dfs(pos+1, val+pr.util[k])
			cur = cur[:len(cur)-1]
			led.spent[pr.vendor] -= p.AdTypes[k].Cost
			led.received[pr.customer]--
			delete(led.pairUsed, [2]int32{pr.customer, pr.vendor})
		}
		dfs(pos+1, val)
	}
	dfs(0, 0)
	return finish(p, best)
}
