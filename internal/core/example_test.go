package core_test

import (
	"fmt"

	"muaa/internal/core"
	"muaa/internal/geo"
	"muaa/internal/model"
)

// A two-customer, two-vendor instance small enough to follow by hand: both
// customers sit inside both vendors' ranges, each vendor's budget affords
// exactly one rich ad, and the interest/tag vectors make customer–vendor
// preferences unambiguous.
func exampleProblem() *model.Problem {
	return &model.Problem{
		AdTypes: []model.AdType{
			{Name: "text", Cost: 0.05, Effect: 0.6},
			{Name: "video", Cost: 0.20, Effect: 1.0},
		},
		Customers: []model.Customer{
			{ID: 0, Loc: geo.Point{X: 0.48, Y: 0.50}, Capacity: 1, ViewProb: 0.9,
				Interests: []float64{1, 0, 0.2}, Arrival: 9},
			{ID: 1, Loc: geo.Point{X: 0.52, Y: 0.50}, Capacity: 2, ViewProb: 0.8,
				Interests: []float64{0, 1, 0.2}, Arrival: 10},
		},
		Vendors: []model.Vendor{
			{ID: 0, Loc: geo.Point{X: 0.50, Y: 0.48}, Radius: 0.1, Budget: 0.25,
				Tags: []float64{1, 0, 0.1}},
			{ID: 1, Loc: geo.Point{X: 0.50, Y: 0.52}, Radius: 0.1, Budget: 0.25,
				Tags: []float64{0, 1, 0.1}},
		},
	}
}

// ExampleOnlineBatch_Solve runs the micro-batching online solver over the
// whole stream as one window: with full look-ahead and admission control
// disabled it serves each customer the vendor that matches their interests.
func ExampleOnlineBatch_Solve() {
	p := exampleProblem()
	b := core.OnlineBatch{
		Window:    len(p.Customers),             // whole stream in one window
		Threshold: core.StaticThreshold{Phi: 0}, // no admission gate
	}
	a, err := b.Solve(p)
	if err != nil {
		panic(err)
	}
	for _, in := range a.Instances {
		fmt.Printf("%v %s\n", in, p.AdTypes[in.AdType].Name)
	}
	fmt.Printf("utility %.4f\n", a.Utility)
	// Output:
	// ⟨u0, v0, τ1⟩ video
	// ⟨u1, v1, τ1⟩ video
	// utility 59.8085
}
