package core

import (
	"sort"

	"muaa/internal/model"
)

// Greedy is the offline GREEDY baseline of Section V: it repeatedly selects
// the feasible ad instance with the currently highest budget efficiency
// γ_ijk = λ_ijk / c_k. Because an instance's efficiency never changes — only
// its feasibility does — one pass over the efficiency-sorted candidate list
// is exactly the iterative algorithm.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "GREEDY" }

// Solve implements Solver.
func (Greedy) Solve(p *model.Problem) (model.Assignment, error) {
	ix := NewIndex(p)
	cands := allCandidates(p, ix)
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].eff != cands[b].eff {
			return cands[a].eff > cands[b].eff
		}
		// Deterministic tie-break.
		if cands[a].customer != cands[b].customer {
			return cands[a].customer < cands[b].customer
		}
		if cands[a].vendor != cands[b].vendor {
			return cands[a].vendor < cands[b].vendor
		}
		return cands[a].adType < cands[b].adType
	})
	led := newLedger(p)
	var ins []model.Instance
	for _, c := range cands {
		if !led.fits(c) {
			continue
		}
		led.take(c)
		ins = append(ins, model.Instance{Customer: c.customer, Vendor: c.vendor, AdType: c.adType})
	}
	return finish(p, ins)
}
