package core

import (
	"muaa/internal/geo"
	"muaa/internal/model"
)

// Index provides the two spatial queries every MUAA algorithm needs over a
// fixed problem: the vendors whose disks cover a customer (online filtering,
// Algorithm 2 line 2) and the customers inside a vendor's disk (RECON's
// valid-customer sets, Algorithm 1 line 3). Build once per problem; safe for
// concurrent readers.
type Index struct {
	p            *model.Problem
	vendorGrid   *geo.Grid
	customerGrid *geo.Grid
}

// NewIndex builds grids over the problem's entities. Bounds expand to cover
// entities placed outside the unit square, so the index works for any
// coordinate scale (the paper's worked example uses kilometre-scale
// coordinates).
func NewIndex(p *model.Problem) *Index {
	bounds := expandBounds(p)
	maxR := 0.01
	for j := range p.Vendors {
		if r := p.Vendors[j].Radius; r > maxR {
			maxR = r
		}
	}
	// Normalize the radius to the bounds scale for resolution selection.
	scale := bounds.Width()
	if bounds.Height() > scale {
		scale = bounds.Height()
	}
	vres := geo.GridResolution(len(p.Vendors), maxR/scale)
	cres := geo.GridResolution(len(p.Customers), maxR/scale)
	ix := &Index{
		p:            p,
		vendorGrid:   geo.NewGrid(bounds, vres),
		customerGrid: geo.NewGrid(bounds, cres),
	}
	for j := range p.Vendors {
		// Paused vendors never enter the grid: every solver funnels vendor
		// discovery through ValidVendors/NearestVendors, so exclusion here
		// makes the whole solver family pause-aware at zero per-query cost.
		// (Recon iterates vendors directly and carries its own skip.)
		if p.Vendors[j].Paused {
			continue
		}
		ix.vendorGrid.InsertWithRadius(int32(j), p.Vendors[j].Loc, p.Vendors[j].Radius)
	}
	for i := range p.Customers {
		ix.customerGrid.Insert(int32(i), p.Customers[i].Loc)
	}
	return ix
}

func expandBounds(p *model.Problem) geo.Rect {
	b := geo.UnitSquare
	grow := func(pt geo.Point) {
		if pt.X < b.Min.X {
			b.Min.X = pt.X
		}
		if pt.Y < b.Min.Y {
			b.Min.Y = pt.Y
		}
		if pt.X > b.Max.X {
			b.Max.X = pt.X
		}
		if pt.Y > b.Max.Y {
			b.Max.Y = pt.Y
		}
	}
	for i := range p.Customers {
		grow(p.Customers[i].Loc)
	}
	for j := range p.Vendors {
		grow(p.Vendors[j].Loc)
	}
	return b
}

// ValidVendors appends to dst the vendors whose advertising disks cover
// customer ui and returns the extended slice.
func (ix *Index) ValidVendors(dst []int32, ui int32) []int32 {
	return ix.vendorGrid.CoveredBy(dst, ix.p.Customers[ui].Loc)
}

// ValidCustomers appends to dst the customers inside vendor vj's disk and
// returns the extended slice.
func (ix *Index) ValidCustomers(dst []int32, vj int32) []int32 {
	v := &ix.p.Vendors[vj]
	return ix.customerGrid.Within(dst, v.Loc, v.Radius)
}

// NearestVendors returns up to k vendors closest to customer ui (regardless
// of coverage); used by the NEAREST baseline before range filtering.
func (ix *Index) NearestVendors(ui int32, k int) []int32 {
	return ix.vendorGrid.KNearest(ix.p.Customers[ui].Loc, k)
}
