package core

import (
	"fmt"
	"math"
	"sort"

	"muaa/internal/model"
	"muaa/internal/stats"
)

// Threshold is the admission-threshold policy of the online algorithm: given
// a vendor's used-budget ratio δ ∈ [0,1], it returns the minimum budget
// efficiency an ad instance must have to be pushed.
type Threshold interface {
	Value(delta float64) float64
}

// AdaptiveThreshold is the paper's φ(δ) = (γ_min/e)·g^δ (Corollary IV.1),
// yielding the (ln g + 1)/θ competitive ratio for g > e. At δ = 0 it admits
// anything with efficiency ≥ γ_min/e (below the global minimum, so
// everything); as the budget drains it demands exponentially more
// efficiency, reaching (γ_min/e)·g at exhaustion.
type AdaptiveThreshold struct {
	GammaMin float64
	G        float64
}

// Value implements Threshold.
func (a AdaptiveThreshold) Value(delta float64) float64 {
	return a.GammaMin / math.E * math.Pow(a.G, delta)
}

// StaticThreshold admits any instance with efficiency ≥ Phi regardless of
// remaining budget — the naive policy the paper argues against (Section
// IV-A); kept as the A1 ablation.
type StaticThreshold struct {
	Phi float64
}

// Value implements Threshold.
func (s StaticThreshold) Value(float64) float64 { return s.Phi }

// OnlineAFA is the paper's online adaptive factor-aware approach (Algorithm
// 2, "O-AFA"). Customers arrive one at a time (the order of the Customers
// slice); for each arrival the algorithm filters the vendors covering the
// customer, selects the best admissible ad type per vendor under the
// vendor's current threshold φ(δ_j), and keeps the top-a_i candidates by
// budget efficiency. With the adaptive threshold of Corollary IV.1 its
// competitive ratio is (ln g + 1)/θ, g > e.
type OnlineAFA struct {
	// GammaMin is the assumed lower bound on any instance's budget
	// efficiency. Zero means "estimate it from the instance" via
	// EstimateGammaMin (Section IV-C describes estimating it from
	// historical records; the estimator is this repository's stand-in).
	GammaMin float64
	// G is the threshold growth base g; must exceed e. Zero selects the
	// paper's tuning rule g = e·γ_max/γ_min (Section IV-B: "if we know the
	// upper bound γ_max, we should have φ(1) ≤ γ_max, which indicates
	// g ≤ γ_max·e/γ_min"), estimated from the same pair sample as γ_min and
	// clamped to [2e, 1e9].
	G float64
	// Threshold overrides the admission policy entirely (used by the
	// static-threshold ablation). When nil, the paper's AdaptiveThreshold is
	// built from GammaMin and G.
	Threshold Threshold
	// EstimateSample is the pair-sample size for γ_min estimation; zero
	// selects 512.
	EstimateSample int
	// Seed drives γ_min estimation sampling.
	Seed int64
}

// Name implements Solver.
func (o OnlineAFA) Name() string {
	if _, ok := o.Threshold.(StaticThreshold); ok {
		return "ONLINE-STATIC"
	}
	return "ONLINE"
}

// Solve implements Solver. It is a convenience that replays the Customers
// slice as the arrival stream through a Session.
func (o OnlineAFA) Solve(p *model.Problem) (model.Assignment, error) {
	s, err := NewSession(p, o)
	if err != nil {
		return model.Assignment{}, err
	}
	for ui := range p.Customers {
		s.Arrive(int32(ui))
	}
	return s.Finish()
}

// Session is the incremental interface to O-AFA for true streaming use: the
// caller announces arrivals one by one and may inspect per-vendor budget
// state between arrivals. A Session must not be shared across goroutines.
type Session struct {
	p         *model.Problem
	ix        *Index
	threshold Threshold
	spent     []float64
	arrived   map[int32]bool
	ins       []model.Instance
	buf       []int32
	cands     []candidate
}

// NewSession validates the configuration and prepares the spatial index and
// the admission threshold (estimating γ_min when not supplied).
func NewSession(p *model.Problem, o OnlineAFA) (*Session, error) {
	th := o.Threshold
	if th == nil {
		var err error
		th, err = buildAdaptiveThreshold(p, o.GammaMin, o.G, o.EstimateSample, o.Seed)
		if err != nil {
			return nil, err
		}
	}
	return &Session{
		p:         p,
		ix:        NewIndex(p),
		threshold: th,
		spent:     make([]float64, len(p.Vendors)),
		arrived:   make(map[int32]bool),
		ins:       nil,
	}, nil
}

// buildAdaptiveThreshold assembles the paper's admission threshold from an
// explicit γ_min or a sampled estimate, applying the g tuning rule
// g = e·γ_max/γ_min (clamped to [2e, 1e9]) when g is unset and γ_max is
// known. A degenerate instance (no positive-utility pair in the sample)
// yields γ_min = 0: the threshold admits everything, matching the paper's
// "assign as many as possible at the beginning" intuition.
func buildAdaptiveThreshold(p *model.Problem, gammaMin, g float64, sample int, seed int64) (Threshold, error) {
	if sample == 0 {
		sample = 512
	}
	gamma := gammaMin
	var gmax float64
	if gamma == 0 {
		gamma, gmax = EstimateGammaBounds(p, sample, seed)
	}
	if g == 0 {
		// Paper's tuning rule: φ(1) ≤ γ_max ⇒ g ≤ e·γ_max/γ_min. When the
		// caller supplied γ_min explicitly there is no γ_max sample; fall
		// back to 2e.
		g = 2 * math.E
		if gamma > 0 && gmax > gamma {
			g = math.E * gmax / gamma
			if g < 2*math.E {
				g = 2 * math.E
			}
			if g > 1e9 {
				g = 1e9
			}
		}
	}
	if g <= math.E {
		return nil, fmt.Errorf("core: O-AFA requires g > e, got %g", g)
	}
	return AdaptiveThreshold{GammaMin: gamma, G: g}, nil
}

// Arrive processes customer ui's arrival (Algorithm 2) and returns the
// instances pushed to the customer. Each customer may arrive once; repeat
// arrivals return nil.
func (s *Session) Arrive(ui int32) []model.Instance {
	if s.arrived[ui] {
		return nil
	}
	s.arrived[ui] = true
	u := &s.p.Customers[ui]
	if u.Capacity == 0 {
		return nil
	}
	// Line 2: valid vendors.
	s.buf = s.ix.ValidVendors(s.buf[:0], ui)
	sort.Slice(s.buf, func(a, b int) bool { return s.buf[a] < s.buf[b] })
	// Lines 3–6: best admissible ad type per vendor.
	s.cands = s.cands[:0]
	for _, vj := range s.buf {
		base := s.p.UtilityBase(ui, vj)
		if base <= 0 {
			continue
		}
		budget := s.p.Vendors[vj].Budget
		if budget <= 0 {
			continue
		}
		delta := s.spent[vj] / budget
		phi := s.threshold.Value(delta)
		remaining := budget - s.spent[vj]
		// "Best" ad type: the highest-utility type that passes the threshold
		// and fits the remaining budget — when budget is plentiful the
		// threshold is low and rich formats win; when drained only highly
		// efficient (cheap relative to utility) formats pass.
		bestK, bestU, bestEff := -1, 0.0, 0.0
		for k := range s.p.AdTypes {
			cost := s.p.AdTypes[k].Cost
			if cost > remaining+1e-12 {
				continue
			}
			util := base * s.p.AdTypes[k].Effect
			eff := util / cost
			if eff < phi {
				continue
			}
			if util > bestU {
				bestK, bestU, bestEff = k, util, eff
			}
		}
		if bestK >= 0 {
			s.cands = append(s.cands, candidate{customer: ui, vendor: vj, adType: bestK, utility: bestU, eff: bestEff})
		}
	}
	// Lines 7–8: keep the top-a_i by budget efficiency.
	if len(s.cands) > u.Capacity {
		sort.Slice(s.cands, func(a, b int) bool {
			if s.cands[a].eff != s.cands[b].eff {
				return s.cands[a].eff > s.cands[b].eff
			}
			return s.cands[a].vendor < s.cands[b].vendor
		})
		s.cands = s.cands[:u.Capacity]
	}
	var pushed []model.Instance
	for _, c := range s.cands {
		s.spent[c.vendor] += s.p.AdTypes[c.adType].Cost
		in := model.Instance{Customer: c.customer, Vendor: c.vendor, AdType: c.adType}
		s.ins = append(s.ins, in)
		pushed = append(pushed, in)
	}
	return pushed
}

// Spent returns vendor vj's committed budget so far.
func (s *Session) Spent(vj int32) float64 { return s.spent[vj] }

// Finish returns the accumulated assignment, validated.
func (s *Session) Finish() (model.Assignment, error) {
	return finish(s.p, append([]model.Instance(nil), s.ins...))
}

// EstimateGammaMin estimates the efficiency lower bound γ_min the adaptive
// threshold needs (Section IV-C): it samples up to sample random valid
// (customer, vendor) pairs, computes the budget efficiency of every ad type
// for each, and returns the smallest positive efficiency observed. Sampling
// keeps the estimator O(sample·q) — suitable for the online setting where
// γ_min would in practice come from yesterday's logs.
func EstimateGammaMin(p *model.Problem, sample int, seed int64) float64 {
	gmin, _ := EstimateGammaBounds(p, sample, seed)
	return gmin
}

// EstimateGammaBounds samples valid pairs and returns the smallest and
// largest positive budget efficiencies observed — the γ_min and γ_max of
// Section IV-B/IV-C. Both are 0 when no positive-utility pair is sampled.
func EstimateGammaBounds(p *model.Problem, sample int, seed int64) (gmin, gmax float64) {
	if len(p.Customers) == 0 || len(p.Vendors) == 0 {
		return 0, 0
	}
	ix := NewIndex(p)
	rng := stats.NewRand(seed)
	minEff, maxEff := math.Inf(1), 0.0
	var buf []int32
	for tries := 0; tries < sample; tries++ {
		ui := int32(rng.Intn(len(p.Customers)))
		buf = ix.ValidVendors(buf[:0], ui)
		if len(buf) == 0 {
			continue
		}
		vj := buf[rng.Intn(len(buf))]
		base := p.UtilityBase(ui, vj)
		if base <= 0 {
			continue
		}
		for k := range p.AdTypes {
			eff := base * p.AdTypes[k].Effect / p.AdTypes[k].Cost
			if eff <= 0 {
				continue
			}
			if eff < minEff {
				minEff = eff
			}
			if eff > maxEff {
				maxEff = eff
			}
		}
	}
	if math.IsInf(minEff, 1) {
		return 0, 0
	}
	return minEff, maxEff
}
