package core

import (
	"math"
	"testing"

	"muaa/internal/model"
	"muaa/internal/workload"
)

func TestAdaptiveThresholdShape(t *testing.T) {
	th := AdaptiveThreshold{GammaMin: 0.1, G: 2 * math.E}
	// φ(0) = γ_min/e: below γ_min, so everything is admitted at the start.
	if got := th.Value(0); math.Abs(got-0.1/math.E) > 1e-12 {
		t.Errorf("φ(0) = %g, want γ_min/e", got)
	}
	// φ(h) = γ_min at h = 1/ln g.
	h := 1 / math.Log(2*math.E)
	if got := th.Value(h); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("φ(1/ln g) = %g, want γ_min", got)
	}
	// Monotone increasing.
	prev := -1.0
	for d := 0.0; d <= 1.0; d += 0.05 {
		v := th.Value(d)
		if v <= prev {
			t.Fatalf("threshold not increasing at δ=%g", d)
		}
		prev = v
	}
	// φ(1) = (γ_min/e)·g.
	if got, want := th.Value(1), 0.1/math.E*2*math.E; math.Abs(got-want) > 1e-12 {
		t.Errorf("φ(1) = %g, want %g", got, want)
	}
}

func TestStaticThreshold(t *testing.T) {
	th := StaticThreshold{Phi: 0.5}
	if th.Value(0) != 0.5 || th.Value(1) != 0.5 {
		t.Error("static threshold must ignore δ")
	}
}

func TestOnlineRejectsBadG(t *testing.T) {
	p := workload.Example1()
	if _, err := (OnlineAFA{G: 2}).Solve(p); err == nil {
		t.Error("g ≤ e must be rejected")
	}
	if _, err := (OnlineAFA{G: math.E}).Solve(p); err == nil {
		t.Error("g = e must be rejected")
	}
	if _, err := (OnlineAFA{G: 2.8}).Solve(p); err != nil {
		t.Errorf("g = 2.8 > e must be accepted: %v", err)
	}
}

func TestSessionArrivalOnce(t *testing.T) {
	p := workload.Example1()
	s, err := NewSession(p, OnlineAFA{})
	if err != nil {
		t.Fatal(err)
	}
	first := s.Arrive(0)
	if len(first) == 0 {
		t.Fatal("u0 with plentiful budgets should receive ads")
	}
	if again := s.Arrive(0); again != nil {
		t.Errorf("second arrival of the same customer must be a no-op, got %v", again)
	}
}

func TestSessionRespectsCapacity(t *testing.T) {
	p := workload.Example1()
	p.Customers[0].Capacity = 1
	s, err := NewSession(p, OnlineAFA{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Arrive(0); len(got) > 1 {
		t.Errorf("capacity 1 customer received %d ads", len(got))
	}
}

func TestSessionZeroCapacityCustomer(t *testing.T) {
	p := workload.Example1()
	p.Customers[0].Capacity = 0
	s, err := NewSession(p, OnlineAFA{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Arrive(0); got != nil {
		t.Errorf("zero-capacity customer received %v", got)
	}
}

func TestSessionTracksSpend(t *testing.T) {
	p := workload.Example1()
	s, err := NewSession(p, OnlineAFA{})
	if err != nil {
		t.Fatal(err)
	}
	pushed := s.Arrive(0)
	var wantSpent float64
	for _, in := range pushed {
		if in.Vendor == 0 {
			wantSpent += p.AdTypes[in.AdType].Cost
		}
	}
	if got := s.Spent(0); got != wantSpent {
		t.Errorf("Spent(v0) = %g, want %g", got, wantSpent)
	}
}

func TestOnlineStaticThresholdBlocksEverything(t *testing.T) {
	p := workload.Example1()
	a, err := OnlineAFA{Threshold: StaticThreshold{Phi: math.Inf(1)}}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != 0 {
		t.Errorf("infinite static threshold admitted %v", a.Instances)
	}
}

func TestOnlineStaticThresholdZeroAdmitsGreedily(t *testing.T) {
	p := workload.Example1()
	a, err := OnlineAFA{Threshold: StaticThreshold{Phi: 0}}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) == 0 {
		t.Error("zero static threshold should admit ads")
	}
	if name := (OnlineAFA{Threshold: StaticThreshold{}}).Name(); name != "ONLINE-STATIC" {
		t.Errorf("Name = %q", name)
	}
}

func TestOnlineBlocksLowEfficiencyWhenBudgetDrains(t *testing.T) {
	// One vendor, tight budget, a stream of customers with decreasing
	// utility. With the adaptive threshold the tail (low-efficiency) ads
	// must be blocked once δ grows, leaving budget unspent, while a zero
	// static threshold would spend everything on early arrivals.
	n := 10
	customers := make([]model.Customer, n)
	table := make(model.TablePreference, n)
	for i := 0; i < n; i++ {
		customers[i] = model.Customer{ID: int32(i), Loc: pt(0.5, 0.5), Capacity: 1, ViewProb: 1}
		// Preference decays with arrival position: early customers are good,
		// late ones poor.
		table[i] = []float64{1.0 / float64(i+1)}
	}
	p := &model.Problem{
		Customers:  customers,
		Vendors:    []model.Vendor{{ID: 0, Loc: pt(0.5, 0.52), Radius: 0.1, Budget: 6}},
		AdTypes:    []model.AdType{{Name: "PL", Cost: 2, Effect: 0.4}},
		Preference: table,
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	adaptive, err := OnlineAFA{G: 8 * math.E}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	static, err := OnlineAFA{Threshold: StaticThreshold{Phi: 0}}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Static spends the whole budget on the first 3 arrivals.
	if len(static.Instances) != 3 {
		t.Fatalf("static threshold pushed %d ads, want 3 (budget 6 / cost 2)", len(static.Instances))
	}
	for _, in := range static.Instances {
		if in.Customer > 2 {
			t.Errorf("static threshold should serve the head of the stream, pushed to u%d", in.Customer)
		}
	}
	// Adaptive must have blocked at least one low-efficiency tail candidate:
	// it never pushes more ads than static, and the ads it pushes are the
	// early, efficient ones.
	if len(adaptive.Instances) > len(static.Instances) {
		t.Errorf("adaptive pushed more ads (%d) than budget allows via static (%d)",
			len(adaptive.Instances), len(static.Instances))
	}
	for _, in := range adaptive.Instances {
		if in.Customer > 4 {
			t.Errorf("adaptive threshold admitted a deep-tail customer u%d", in.Customer)
		}
	}
}

func TestEstimateGammaMin(t *testing.T) {
	p := workload.Example1()
	gamma := EstimateGammaMin(p, 4096, 1)
	if gamma <= 0 {
		t.Fatalf("γ_min estimate %g, want > 0", gamma)
	}
	// Compute the true minimum positive efficiency over valid pairs.
	trueMin := math.Inf(1)
	for ui := int32(0); ui < 3; ui++ {
		for vj := int32(0); vj < 3; vj++ {
			if !p.InRange(ui, vj) {
				continue
			}
			for k := range p.AdTypes {
				if eff := p.Efficiency(ui, vj, k); eff > 0 && eff < trueMin {
					trueMin = eff
				}
			}
		}
	}
	if math.Abs(gamma-trueMin) > 1e-9 {
		t.Errorf("γ_min estimate %g, true minimum %g (sample covers all 6 pairs)", gamma, trueMin)
	}
}

func TestEstimateGammaMinDegenerate(t *testing.T) {
	empty := &model.Problem{AdTypes: workload.DefaultAdTypes()}
	if got := EstimateGammaMin(empty, 10, 1); got != 0 {
		t.Errorf("empty problem γ_min = %g, want 0", got)
	}
}

func TestOnlineExplicitGammaMin(t *testing.T) {
	p := workload.Example1()
	a, err := OnlineAFA{GammaMin: 1e-6, G: 2 * math.E}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Utility <= 0 {
		t.Error("tiny γ_min must admit ads on Example 1")
	}
}

func TestOnlineProcessesStreamOrder(t *testing.T) {
	// With budget for exactly one ad, the first arriving customer wins it.
	p := &model.Problem{
		Customers: []model.Customer{
			{ID: 0, Loc: pt(0.5, 0.5), Capacity: 1, ViewProb: 0.5},
			{ID: 1, Loc: pt(0.5, 0.5), Capacity: 1, ViewProb: 0.9},
		},
		Vendors:    []model.Vendor{{ID: 0, Loc: pt(0.5, 0.5), Radius: 0.1, Budget: 2}},
		AdTypes:    []model.AdType{{Name: "PL", Cost: 2, Effect: 0.4}},
		Preference: model.TablePreference{{0.5}, {0.9}},
	}
	a, err := OnlineAFA{GammaMin: 1e-9, G: 2 * math.E}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != 1 || a.Instances[0].Customer != 0 {
		t.Errorf("online must serve the first arrival: %v", a.Instances)
	}
}
