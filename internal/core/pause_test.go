package core

import (
	"strings"
	"testing"

	"muaa/internal/geo"
	"muaa/internal/model"
)

// pausedProblem: one customer with slack capacity covered by two identical
// vendors, one of them paused. Any solver that serves the paused vendor is
// spending budget the online broker was forbidden to touch.
func pausedProblem() *model.Problem {
	return &model.Problem{
		AdTypes: []model.AdType{{Name: "ad", Cost: 1, Effect: 1}},
		Customers: []model.Customer{{
			ID: 0, Loc: geo.Point{X: 0.5, Y: 0.5}, Capacity: 2, ViewProb: 1,
			Interests: []float64{1, 0}, Arrival: 12,
		}},
		Vendors: []model.Vendor{
			{ID: 0, Loc: geo.Point{X: 0.5, Y: 0.6}, Radius: 0.3, Budget: 10, Tags: []float64{1, 0}},
			{ID: 1, Loc: geo.Point{X: 0.5, Y: 0.4}, Radius: 0.3, Budget: 10, Tags: []float64{1, 0}, Paused: true},
		},
	}
}

// TestPausedVendorExcluded: every solver family skips paused vendors — the
// index never surfaces them, Recon's per-vendor loop skips them — so the
// counterfactual grid cannot spend paused budgets (the DESIGN §13 fix).
func TestPausedVendorExcluded(t *testing.T) {
	p := pausedProblem()
	solvers := []Solver{Greedy{}, &WindowOracle{}, Recon{Workers: 1}, Exact{}, OnlineAFA{}}
	for _, s := range solvers {
		a, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(a.Instances) != 1 {
			t.Fatalf("%s served %d instances, want 1 (paused vendor excluded)", s.Name(), len(a.Instances))
		}
		if a.Instances[0].Vendor != 0 {
			t.Fatalf("%s served paused vendor: %v", s.Name(), a.Instances[0])
		}
	}
}

// TestCheckRejectsPausedVendor: the feasibility checker enforces the
// exclusion, so no solver can serve a paused vendor silently.
func TestCheckRejectsPausedVendor(t *testing.T) {
	p := pausedProblem()
	err := p.Check([]model.Instance{{Customer: 0, Vendor: 1, AdType: 0}})
	if err == nil || !strings.Contains(err.Error(), "paused") {
		t.Fatalf("paused assignment must fail Check, got %v", err)
	}
	if err := p.Check([]model.Instance{{Customer: 0, Vendor: 0, AdType: 0}}); err != nil {
		t.Fatalf("active assignment rejected: %v", err)
	}
}
