package core

import (
	"math"
	"testing"
	"testing/quick"

	"muaa/internal/geo"
	"muaa/internal/model"
	"muaa/internal/stats"
)

// arbitraryProblem builds a deliberately nasty random problem: entity counts
// down to zero, zero budgets/capacities/radii, coincident locations,
// constant interest vectors (degenerate Pearson), ad types with zero
// effectiveness. Every solver must still return a feasible assignment.
func arbitraryProblem(seed int64) *model.Problem {
	rng := stats.NewRand(seed)
	m := rng.Intn(12)
	n := rng.Intn(6)
	q := 1 + rng.Intn(3)
	numTags := 1 + rng.Intn(4)

	randomVec := func() []float64 {
		v := make([]float64, numTags)
		switch rng.Intn(3) {
		case 0: // constant vector: zero Pearson variance
			c := rng.Float64()
			for i := range v {
				v[i] = c
			}
		case 1: // all-zero
		default:
			for i := range v {
				v[i] = rng.Float64()
			}
		}
		return v
	}
	randomLoc := func() geo.Point {
		switch rng.Intn(3) {
		case 0: // everyone piles onto one spot
			return geo.Point{X: 0.5, Y: 0.5}
		default:
			return geo.Point{X: rng.Float64(), Y: rng.Float64()}
		}
	}

	p := &model.Problem{}
	for i := 0; i < m; i++ {
		p.Customers = append(p.Customers, model.Customer{
			ID:        int32(i),
			Loc:       randomLoc(),
			Capacity:  rng.Intn(4), // includes 0
			ViewProb:  rng.Float64(),
			Interests: randomVec(),
			Arrival:   rng.Float64() * 24,
		})
	}
	for j := 0; j < n; j++ {
		radius := 0.0
		if rng.Intn(4) != 0 {
			radius = rng.Float64() * 0.5
		}
		budget := 0.0
		if rng.Intn(4) != 0 {
			budget = rng.Float64() * 6
		}
		p.Vendors = append(p.Vendors, model.Vendor{
			ID:     int32(j),
			Loc:    randomLoc(),
			Radius: radius,
			Budget: budget,
			Tags:   randomVec(),
		})
	}
	for k := 0; k < q; k++ {
		effect := 0.0
		if rng.Intn(5) != 0 {
			effect = rng.Float64()
		}
		p.AdTypes = append(p.AdTypes, model.AdType{
			Name:   "t",
			Cost:   0.5 + rng.Float64()*2,
			Effect: effect,
		})
	}
	return p
}

func TestSolversFeasibleOnAdversarialProblems(t *testing.T) {
	// finish() inside every solver re-checks all four constraints, so "no
	// error and consistent utility" is the full feasibility property.
	f := func(seed int64) bool {
		p := arbitraryProblem(seed)
		if err := p.Validate(); err != nil {
			t.Logf("seed %d: generator built invalid problem: %v", seed, err)
			return false
		}
		solvers := []Solver{
			Recon{Seed: seed},
			Recon{UseLP: true, Seed: seed},
			Recon{Epsilon: 0.3, Seed: seed},
			OnlineAFA{Seed: seed},
			OnlineBatch{Window: 3, Seed: seed},
			Greedy{},
			Random{Seed: seed},
			Nearest{},
		}
		for _, s := range solvers {
			a, err := s.Solve(p)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, s.Name(), err)
				return false
			}
			if math.Abs(p.TotalUtility(a.Instances)-a.Utility) > 1e-9 {
				t.Logf("seed %d %s: utility mismatch", seed, s.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExactDominatesEveryHeuristicOnAdversarialProblems(t *testing.T) {
	f := func(seed int64) bool {
		p := arbitraryProblem(seed)
		exact, err := (Exact{MaxPairs: 24}).Solve(p)
		if err != nil {
			return true // instance too large for exact; nothing to compare
		}
		for _, s := range []Solver{Recon{Seed: seed}, Greedy{}, OnlineAFA{Seed: seed}} {
			a, solveErr := s.Solve(p)
			if solveErr != nil {
				t.Logf("seed %d %s: %v", seed, s.Name(), solveErr)
				return false
			}
			if a.Utility > exact.Utility+1e-9 {
				t.Logf("seed %d: %s (%g) beat EXACT (%g)", seed, s.Name(), a.Utility, exact.Utility)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestThetaBoundsOnAdversarialProblems(t *testing.T) {
	f := func(seed int64) bool {
		p := arbitraryProblem(seed)
		theta := p.Theta()
		return theta >= 0 && theta <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSessionNeverOverspendsOnAdversarialProblems(t *testing.T) {
	f := func(seed int64) bool {
		p := arbitraryProblem(seed)
		s, err := NewSession(p, OnlineAFA{Seed: seed})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Arrive in a scrambled order with duplicates sprinkled in.
		rng := stats.NewRand(seed)
		for trial := 0; trial < 2*len(p.Customers); trial++ {
			if len(p.Customers) == 0 {
				break
			}
			s.Arrive(int32(rng.Intn(len(p.Customers))))
		}
		for j := range p.Vendors {
			if s.Spent(int32(j)) > p.Vendors[j].Budget+1e-9 {
				t.Logf("seed %d: vendor %d overspent", seed, j)
				return false
			}
		}
		_, err = s.Finish()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
		}
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
