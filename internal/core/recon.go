package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"muaa/internal/knapsack"
	"muaa/internal/lp"
	"muaa/internal/model"
	"muaa/internal/stats"
)

// Recon is the paper's offline reconciliation approach (Algorithm 1,
// "ViolationReconcile"). It first solves one single-vendor problem per
// vendor — a multiple-choice knapsack over the vendor's valid customers —
// ignoring customer capacities across vendors, then reconciles capacity
// violations by repeatedly deleting the violated customer's lowest-utility
// instance and greedily refilling the freed vendor budget with other valid
// customers. Theorem III.1: approximation ratio (1−ε)·θ.
type Recon struct {
	// UseLP solves each single-vendor subproblem through the simplex LP
	// relaxation (package lp) followed by integral repair, mirroring the
	// paper's use of an external LP solver. The default (false) uses the
	// MCKP hull greedy of package knapsack, which carries the same (1−ε)
	// behaviour in the paper's small-item regime and is dramatically faster;
	// the A3 ablation compares the two.
	UseLP bool
	// Epsilon, when positive, solves each single-vendor subproblem with the
	// MCKP FPTAS at this accuracy, making Theorem III.1's (1−ε)·θ
	// approximation ratio a literal guarantee. The FPTAS costs
	// O(n³·q/ε) per vendor, so this backend suits validation and
	// moderately-sized instances; it is mutually exclusive with UseLP.
	Epsilon float64
	// Workers bounds the goroutines solving single-vendor subproblems in
	// parallel (the subproblems are independent; only the reconciliation
	// pass is sequential). Zero solves sequentially; negative selects
	// GOMAXPROCS. Results are identical regardless of parallelism.
	Workers int
	// Seed drives the random order in which violated customers are
	// reconciled (Algorithm 1 picks them randomly).
	Seed int64
}

// Name implements Solver.
func (r Recon) Name() string {
	switch {
	case r.UseLP:
		return "RECON-LP"
	case r.Epsilon > 0:
		return "RECON-FPTAS"
	default:
		return "RECON"
	}
}

// Solve implements Solver.
func (r Recon) Solve(p *model.Problem) (model.Assignment, error) {
	if r.UseLP && r.Epsilon > 0 {
		return model.Assignment{}, fmt.Errorf("core: Recon.UseLP and Recon.Epsilon are mutually exclusive")
	}
	if r.Epsilon < 0 || r.Epsilon >= 1 {
		return model.Assignment{}, fmt.Errorf("core: Recon.Epsilon = %g outside [0, 1)", r.Epsilon)
	}
	ix := NewIndex(p)

	// Lines 2–5: solve the single-vendor problem per vendor — independent
	// subproblems, optionally in parallel.
	perVendor := make([][]model.Instance, len(p.Vendors))
	solveOne := func(vj int32, buf []int32) ([]model.Instance, error) {
		if p.Vendors[vj].Paused {
			return nil, nil
		}
		buf = ix.ValidCustomers(buf[:0], vj)
		if r.UseLP {
			ins, err := solveSingleVendorLP(p, vj, buf)
			if err != nil {
				return nil, fmt.Errorf("core: single-vendor LP for v%d: %w", vj, err)
			}
			return ins, nil
		}
		return solveSingleVendorMCKP(p, vj, buf, r.Epsilon), nil
	}
	workers := r.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(p.Vendors) < 2 {
		var buf []int32
		for j := range p.Vendors {
			ins, err := solveOne(int32(j), buf)
			if err != nil {
				return model.Assignment{}, err
			}
			perVendor[j] = ins
		}
	} else {
		if workers > len(p.Vendors) {
			workers = len(p.Vendors)
		}
		errs := make([]error, len(p.Vendors))
		jobs := make(chan int32)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var buf []int32
				for vj := range jobs {
					perVendor[vj], errs[vj] = solveOne(vj, buf)
				}
			}()
		}
		for j := range p.Vendors {
			jobs <- int32(j)
		}
		close(jobs)
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return model.Assignment{}, err
			}
		}
	}

	// Line 6: collect capacity violations.
	received := make([]int, len(p.Customers))
	for _, ins := range perVendor {
		for _, in := range ins {
			received[in.Customer]++
		}
	}
	var violated []int32
	for i := range p.Customers {
		if received[i] > p.Customers[i].Capacity {
			violated = append(violated, int32(i))
		}
	}
	// Lines 7–11: random reconciliation order.
	rng := stats.NewRand(r.Seed)
	stats.Shuffle(rng, violated)

	// Track per-vendor spend for refills.
	spent := make([]float64, len(p.Vendors))
	for j, ins := range perVendor {
		for _, in := range ins {
			spent[j] += p.AdTypes[in.AdType].Cost
		}
	}
	pairUsed := make(map[[2]int32]bool)
	for _, ins := range perVendor {
		for _, in := range ins {
			pairUsed[[2]int32{in.Customer, in.Vendor}] = true
		}
	}

	for _, ui := range violated {
		for received[ui] > p.Customers[ui].Capacity {
			// Line 10: delete this customer's lowest-utility instance.
			worstVendor, worstIdx := -1, -1
			worstUtil := math.Inf(1)
			for j, ins := range perVendor {
				for idx, in := range ins {
					if in.Customer != ui {
						continue
					}
					if u := p.Utility(in.Customer, in.Vendor, in.AdType); u < worstUtil {
						worstUtil = u
						worstVendor, worstIdx = j, idx
					}
				}
			}
			if worstVendor < 0 {
				break // defensive: no instances left yet count says violated
			}
			in := perVendor[worstVendor][worstIdx]
			perVendor[worstVendor] = append(perVendor[worstVendor][:worstIdx], perVendor[worstVendor][worstIdx+1:]...)
			received[ui]--
			spent[worstVendor] -= p.AdTypes[in.AdType].Cost
			delete(pairUsed, [2]int32{ui, in.Vendor})

			// Line 11: greedily refill vendor worstVendor with new valid
			// customers within the regained budget, never creating a new
			// violation.
			refillVendor(p, ix, int32(worstVendor), perVendor, received, spent, pairUsed)
		}
	}

	var all []model.Instance
	for _, ins := range perVendor {
		all = append(all, ins...)
	}
	return finish(p, all)
}

// solveSingleVendorMCKP solves the single-vendor problem M_j as a
// multiple-choice knapsack: one class per valid customer, one item per ad
// type with profit λ_ijk, budget B_j. eps = 0 selects the hull greedy;
// positive eps selects the FPTAS at that accuracy.
func solveSingleVendorMCKP(p *model.Problem, vj int32, customers []int32, eps float64) []model.Instance {
	classes := make([]knapsack.Class, 0, len(customers))
	owners := make([]int32, 0, len(customers))
	for _, ui := range customers {
		if p.Customers[ui].Capacity == 0 {
			continue
		}
		base := p.UtilityBase(ui, vj)
		if base <= 0 {
			continue
		}
		items := make([]knapsack.Item, len(p.AdTypes))
		for k := range p.AdTypes {
			items[k] = knapsack.Item{Cost: p.AdTypes[k].Cost, Profit: base * p.AdTypes[k].Effect}
		}
		classes = append(classes, knapsack.Class{Items: items})
		owners = append(owners, ui)
	}
	var sol knapsack.Solution
	if eps > 0 {
		sol = knapsack.FPTAS(classes, p.Vendors[vj].Budget, eps)
	} else {
		sol = knapsack.Greedy(classes, p.Vendors[vj].Budget)
	}
	var ins []model.Instance
	for ci, k := range sol.Pick {
		if k >= 0 {
			ins = append(ins, model.Instance{Customer: owners[ci], Vendor: vj, AdType: k})
		}
	}
	return ins
}

// solveSingleVendorLP solves M_j's LP relaxation with the simplex engine —
// variables x_ik ∈ [0,1] per (valid customer, ad type), a budget row and a
// choose-at-most-one row per customer — then repairs integrality: x = 1
// variables are kept, and remaining budget is filled greedily by efficiency.
// This mirrors the paper's use of LP Solve on each subproblem.
func solveSingleVendorLP(p *model.Problem, vj int32, customers []int32) ([]model.Instance, error) {
	type varRef struct {
		customer int32
		adType   int
	}
	var vars []varRef
	var costs, profits []float64
	for _, ui := range customers {
		if p.Customers[ui].Capacity == 0 {
			continue
		}
		base := p.UtilityBase(ui, vj)
		if base <= 0 {
			continue
		}
		for k := range p.AdTypes {
			profit := base * p.AdTypes[k].Effect
			if profit <= 0 {
				continue
			}
			vars = append(vars, varRef{customer: ui, adType: k})
			costs = append(costs, p.AdTypes[k].Cost)
			profits = append(profits, profit)
		}
	}
	if len(vars) == 0 {
		return nil, nil
	}
	// Rows: budget, per-customer choice, per-variable upper bound 1.
	prob := lp.Problem{C: profits}
	budgetRow := make([]float64, len(vars))
	copy(budgetRow, costs)
	prob.A = append(prob.A, budgetRow)
	prob.B = append(prob.B, p.Vendors[vj].Budget)
	byCustomer := map[int32][]int{}
	for i, v := range vars {
		byCustomer[v.customer] = append(byCustomer[v.customer], i)
	}
	custIDs := make([]int32, 0, len(byCustomer))
	for ui := range byCustomer {
		custIDs = append(custIDs, ui)
	}
	sort.Slice(custIDs, func(a, b int) bool { return custIDs[a] < custIDs[b] })
	for _, ui := range custIDs {
		row := make([]float64, len(vars))
		for _, i := range byCustomer[ui] {
			row[i] = 1
		}
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, 1)
	}
	for i := range vars {
		row := make([]float64, len(vars))
		row[i] = 1
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, 1)
	}
	sol, err := lp.Maximize(prob)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("single-vendor LP status %v", sol.Status)
	}
	// Integral repair: commit x ≈ 1, then fill greedily by efficiency.
	const tol = 1e-7
	taken := make(map[int32]bool)
	remaining := p.Vendors[vj].Budget
	var ins []model.Instance
	for i, x := range sol.X {
		if x >= 1-tol && !taken[vars[i].customer] && costs[i] <= remaining+1e-12 {
			ins = append(ins, model.Instance{Customer: vars[i].customer, Vendor: vj, AdType: vars[i].adType})
			taken[vars[i].customer] = true
			remaining -= costs[i]
		}
	}
	order := make([]int, len(vars))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := profits[order[a]]/costs[order[a]], profits[order[b]]/costs[order[b]]
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		if taken[vars[i].customer] || costs[i] > remaining+1e-12 {
			continue
		}
		ins = append(ins, model.Instance{Customer: vars[i].customer, Vendor: vj, AdType: vars[i].adType})
		taken[vars[i].customer] = true
		remaining -= costs[i]
	}
	return ins, nil
}

// refillVendor greedily adds the best remaining (customer, ad type) options
// to vendor vj until nothing fits, respecting every constraint (notably:
// only customers below capacity, so no new violations arise).
func refillVendor(p *model.Problem, ix *Index, vj int32, perVendor [][]model.Instance,
	received []int, spent []float64, pairUsed map[[2]int32]bool) {
	var buf []int32
	buf = ix.ValidCustomers(buf, vj)
	for {
		remaining := p.Vendors[vj].Budget - spent[vj]
		bestUtil := 0.0
		var best *model.Instance
		for _, ui := range buf {
			if received[ui] >= p.Customers[ui].Capacity {
				continue
			}
			if pairUsed[[2]int32{ui, vj}] {
				continue
			}
			base := p.UtilityBase(ui, vj)
			if base <= 0 {
				continue
			}
			for k := range p.AdTypes {
				if p.AdTypes[k].Cost > remaining+1e-12 {
					continue
				}
				if u := base * p.AdTypes[k].Effect; u > bestUtil {
					bestUtil = u
					best = &model.Instance{Customer: ui, Vendor: vj, AdType: k}
				}
			}
		}
		if best == nil {
			return
		}
		perVendor[vj] = append(perVendor[vj], *best)
		received[best.Customer]++
		spent[vj] += p.AdTypes[best.AdType].Cost
		pairUsed[[2]int32{best.Customer, vj}] = true
	}
}
