// Package core implements the MUAA assignment algorithms — the paper's
// contribution and its evaluated baselines:
//
//   - Recon: the offline reconciliation approach (Algorithm 1), with an
//     approximation ratio of (1−ε)·θ;
//   - OnlineAFA: the online adaptive factor-aware approach (Algorithm 2),
//     with a competitive ratio of (ln g + 1)/θ for g > e;
//   - Greedy: the offline budget-efficiency greedy (GREEDY in Section V);
//   - Random, Nearest: the RANDOM and NEAREST baselines of Section V;
//   - Exact: a branch-and-bound optimum for small instances, used to
//     measure empirical approximation/competitive ratios;
//   - OnlineBatch: the micro-batching extension (A6 ablation) — O-AFA
//     admission with bounded look-ahead inside an arrival window;
//   - WindowOracle: GREEDY tuned for repeated sliding-window solves, the
//     allocation-free oracle behind the live quality audit.
//
// Every solver returns an Assignment that satisfies model.Problem.Check —
// range, capacity, budget and pair-uniqueness constraints — for any valid
// problem; the test suite enforces this invariant property-style.
package core

import (
	"fmt"
	"sort"

	"muaa/internal/model"
)

// Solver is a MUAA assignment algorithm. Solve must not mutate the problem.
// Online solvers (OnlineAFA, Nearest, Random) process customers strictly in
// the order of the Customers slice (the arrival stream); offline solvers see
// the whole problem at once.
type Solver interface {
	// Name returns the solver's short evaluation-section name (RECON,
	// ONLINE, GREEDY, RANDOM, NEAREST, EXACT).
	Name() string
	Solve(p *model.Problem) (model.Assignment, error)
}

// finish assembles an Assignment, computing the total utility and asserting
// feasibility. Every solver funnels its instance set through finish, so an
// infeasible output is impossible to return silently.
func finish(p *model.Problem, ins []model.Instance) (model.Assignment, error) {
	if err := p.Check(ins); err != nil {
		return model.Assignment{}, fmt.Errorf("core: solver produced infeasible assignment: %w", err)
	}
	// Deterministic output order: by customer, vendor.
	sort.Slice(ins, func(a, b int) bool {
		if ins[a].Customer != ins[b].Customer {
			return ins[a].Customer < ins[b].Customer
		}
		return ins[a].Vendor < ins[b].Vendor
	})
	return model.Assignment{Instances: ins, Utility: p.TotalUtility(ins)}, nil
}

// candidate is a scored potential instance used by several solvers.
type candidate struct {
	customer int32
	vendor   int32
	adType   int
	utility  float64
	eff      float64 // budget efficiency γ = utility / cost
}

// allCandidates enumerates every valid (customer, vendor, ad type) triple
// with positive utility, using the index for range filtering.
func allCandidates(p *model.Problem, ix *Index) []candidate {
	var out []candidate
	var buf []int32
	for ui := range p.Customers {
		buf = ix.ValidVendors(buf[:0], int32(ui))
		for _, vj := range buf {
			base := p.UtilityBase(int32(ui), vj)
			if base <= 0 {
				continue
			}
			for k := range p.AdTypes {
				u := base * p.AdTypes[k].Effect
				if u <= 0 {
					continue
				}
				out = append(out, candidate{
					customer: int32(ui),
					vendor:   vj,
					adType:   k,
					utility:  u,
					eff:      u / p.AdTypes[k].Cost,
				})
			}
		}
	}
	return out
}

// ledger tracks the mutable feasibility state shared by the constructive
// solvers: per-vendor spend, per-customer ad counts, used pairs.
type ledger struct {
	p        *model.Problem
	spent    []float64
	received []int
	pairUsed map[[2]int32]bool
}

func newLedger(p *model.Problem) *ledger {
	return &ledger{
		p:        p,
		spent:    make([]float64, len(p.Vendors)),
		received: make([]int, len(p.Customers)),
		pairUsed: make(map[[2]int32]bool, len(p.Customers)),
	}
}

// fits reports whether assigning c now would keep all constraints.
func (l *ledger) fits(c candidate) bool {
	if l.received[c.customer] >= l.p.Customers[c.customer].Capacity {
		return false
	}
	if l.pairUsed[[2]int32{c.customer, c.vendor}] {
		return false
	}
	return l.spent[c.vendor]+l.p.AdTypes[c.adType].Cost <= l.p.Vendors[c.vendor].Budget+1e-12
}

// take commits the candidate. Caller must have checked fits.
func (l *ledger) take(c candidate) {
	l.spent[c.vendor] += l.p.AdTypes[c.adType].Cost
	l.received[c.customer]++
	l.pairUsed[[2]int32{c.customer, c.vendor}] = true
}
