package core

import (
	"sort"

	"muaa/internal/model"
)

// WindowOracle is a GREEDY solver tuned for repeated solves over a sliding
// window of recent arrivals — the broker's live quality-gauge path, which
// recomputes an offline reference every few seconds. It produces exactly the
// assignment Greedy{} produces (same candidates, same ordering, same
// tie-breaks), but the candidate list, spatial-query buffer and feasibility
// ledger are retained between calls, so a periodic recompute settles into
// zero steady-state allocation for those structures. Not safe for concurrent
// use; give each recompute loop its own instance.
//
// Paused vendors are excluded from the counterfactual entirely: the index
// never surfaces them, so the oracle cannot spend budgets the online broker
// was forbidden to touch (pause-heavy streams no longer depress the ratio).
type WindowOracle struct {
	cands    []candidate
	vbuf     []int32
	spent    []float64
	received []int
	pairUsed map[[2]int32]bool
}

// Name implements Solver.
func (*WindowOracle) Name() string { return "GREEDY" }

// Solve implements Solver. The returned assignment is freshly allocated and
// remains valid after later Solve calls; only internal scratch is reused.
func (o *WindowOracle) Solve(p *model.Problem) (model.Assignment, error) {
	ix := NewIndex(p)
	// Inline allCandidates over the retained buffers.
	o.cands = o.cands[:0]
	for ui := range p.Customers {
		o.vbuf = ix.ValidVendors(o.vbuf[:0], int32(ui))
		for _, vj := range o.vbuf {
			base := p.UtilityBase(int32(ui), vj)
			if base <= 0 {
				continue
			}
			for k := range p.AdTypes {
				u := base * p.AdTypes[k].Effect
				if u <= 0 {
					continue
				}
				o.cands = append(o.cands, candidate{
					customer: int32(ui),
					vendor:   vj,
					adType:   k,
					utility:  u,
					eff:      u / p.AdTypes[k].Cost,
				})
			}
		}
	}
	cands := o.cands
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].eff != cands[b].eff {
			return cands[a].eff > cands[b].eff
		}
		if cands[a].customer != cands[b].customer {
			return cands[a].customer < cands[b].customer
		}
		if cands[a].vendor != cands[b].vendor {
			return cands[a].vendor < cands[b].vendor
		}
		return cands[a].adType < cands[b].adType
	})

	// The ledger, rebuilt in place.
	if cap(o.spent) < len(p.Vendors) {
		o.spent = make([]float64, len(p.Vendors))
	}
	o.spent = o.spent[:len(p.Vendors)]
	for i := range o.spent {
		o.spent[i] = 0
	}
	if cap(o.received) < len(p.Customers) {
		o.received = make([]int, len(p.Customers))
	}
	o.received = o.received[:len(p.Customers)]
	for i := range o.received {
		o.received[i] = 0
	}
	if o.pairUsed == nil {
		o.pairUsed = make(map[[2]int32]bool, len(p.Customers))
	} else {
		clear(o.pairUsed)
	}
	led := ledger{p: p, spent: o.spent, received: o.received, pairUsed: o.pairUsed}

	var ins []model.Instance
	for _, c := range cands {
		if !led.fits(c) {
			continue
		}
		led.take(c)
		ins = append(ins, model.Instance{Customer: c.customer, Vendor: c.vendor, AdType: c.adType})
	}
	return finish(p, ins)
}
