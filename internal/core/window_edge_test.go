package core

// WindowOracle edge cases: the live audit loop hands the oracle whatever the
// window holds — including nothing at all — so degenerate problems must
// solve cleanly, and a reused oracle must not carry scratch from a real
// problem into an empty one (or back).

import (
	"reflect"
	"testing"

	"muaa/internal/model"
)

func emptyAdTypes() []model.AdType {
	return []model.AdType{{Name: "TL", Cost: 1, Effect: 0.1}}
}

func TestWindowOracleEmptyProblem(t *testing.T) {
	o := &WindowOracle{}
	cases := map[string]*model.Problem{
		"no customers, no vendors": {AdTypes: emptyAdTypes()},
		"no customers":             smallProblemNoCustomers(t),
		"no vendors":               {Customers: smallProblem(t, 1, 3, 2).Customers, AdTypes: emptyAdTypes()},
	}
	for name, p := range cases {
		a, err := o.Solve(p)
		if err != nil {
			t.Fatalf("%s: Solve = %v", name, err)
		}
		if a.Utility != 0 || len(a.Instances) != 0 {
			t.Fatalf("%s: want empty assignment, got utility %g with %d instances",
				name, a.Utility, len(a.Instances))
		}
	}
}

func smallProblemNoCustomers(t *testing.T) *model.Problem {
	t.Helper()
	p := smallProblem(t, 2, 3, 2)
	p.Customers = nil
	return p
}

// TestWindowOracleEmptyBetweenSolves: a real solve, then an empty one, then
// the same real problem again — the scratch reuse must not leak state in
// either direction.
func TestWindowOracleEmptyBetweenSolves(t *testing.T) {
	o := &WindowOracle{}
	p := smallProblem(t, 3, 15, 6)
	want, err := (Greedy{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		got, err := o.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Utility != want.Utility || !reflect.DeepEqual(got.Instances, want.Instances) {
			t.Fatalf("round %d: oracle diverged from Greedy after empty solve", round)
		}
		empty, err := o.Solve(&model.Problem{AdTypes: emptyAdTypes()})
		if err != nil {
			t.Fatal(err)
		}
		if empty.Utility != 0 || len(empty.Instances) != 0 {
			t.Fatalf("round %d: empty problem yielded utility %g", round, empty.Utility)
		}
	}
}

// TestWindowOracleSingleCustomer: the smallest non-empty window — one
// arrival — must solve without touching paths sized for full windows.
func TestWindowOracleSingleCustomer(t *testing.T) {
	o := &WindowOracle{}
	p := smallProblem(t, 4, 1, 4)
	want, err := (Greedy{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Utility != want.Utility || !reflect.DeepEqual(got.Instances, want.Instances) {
		t.Fatalf("single-customer window diverged from Greedy (%g vs %g)", got.Utility, want.Utility)
	}
}
