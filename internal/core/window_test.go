package core

import (
	"reflect"
	"testing"
)

// TestWindowOracleMatchesGreedy: WindowOracle is Greedy with reused scratch,
// so across repeated solves over different problems its assignments must be
// identical to a fresh Greedy run — same instances, same utility.
func TestWindowOracleMatchesGreedy(t *testing.T) {
	o := &WindowOracle{}
	for seed := int64(1); seed <= 8; seed++ {
		p := smallProblem(t, seed, 20+int(seed)*5, 8+int(seed))
		want, err := (Greedy{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Utility != want.Utility || !reflect.DeepEqual(got.Instances, want.Instances) {
			t.Fatalf("seed %d: window oracle diverged from Greedy (%.6f vs %.6f, %d vs %d instances)",
				seed, got.Utility, want.Utility, len(got.Instances), len(want.Instances))
		}
	}
	// Shrinking problems must not read stale scratch from larger ones.
	p := smallProblem(t, 99, 5, 3)
	want, _ := (Greedy{}).Solve(p)
	got, err := o.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Utility != want.Utility || !reflect.DeepEqual(got.Instances, want.Instances) {
		t.Fatal("window oracle diverged after shrinking the problem")
	}
}
