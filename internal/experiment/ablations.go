package experiment

import (
	"fmt"
	"math"
	"sort"
	"time"

	"muaa/internal/core"
	"muaa/internal/model"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

// syntheticDefault generates the default synthetic problem for ablations.
func syntheticDefault(st Settings, seed int64) (*model.Problem, error) {
	return workload.Synthetic(workload.Config{
		Customers: st.Customers,
		Vendors:   st.Vendors,
		Budget:    st.Budget,
		Radius:    st.Radius,
		Capacity:  st.Capacity,
		ViewProb:  st.ViewProb,
		Seed:      seed,
	})
}

// RunThresholdAblation (A1) compares the paper's adaptive threshold against
// static thresholds at several levels, supporting the Section IV-A claim
// that "an adaptive threshold will perform better than a static threshold".
// The comparison is about robustness: the online algorithm cannot choose the
// arrival order, so each policy is replayed under three orders — the natural
// random stream, worst-efficiency-first (adversarial for permissive
// policies) and best-efficiency-first (adversarial for tight ones) — under
// scarce budgets (a quarter of the defaults) so admission actually binds.
// The row to read is MIN: the adaptive threshold's worst order should beat
// every static level's worst order, which is exactly the minimax property
// the competitive analysis formalizes. Static levels are expressed as
// multiples of the estimated γ_min.
func RunThresholdAblation(st Settings, workers int) (Series, error) {
	st.Budget.Lo /= 4
	st.Budget.Hi /= 4
	natural, err := syntheticDefault(st, st.Seed)
	if err != nil {
		return Series{}, err
	}
	worstFirst, err := syntheticDefault(st, st.Seed)
	if err != nil {
		return Series{}, err
	}
	sortCustomersByEfficiency(worstFirst, true)
	bestFirst, err := syntheticDefault(st, st.Seed)
	if err != nil {
		return Series{}, err
	}
	sortCustomersByEfficiency(bestFirst, false)
	// The quiet day: only the below-median half of customers shows up. A
	// static threshold tuned to the good days sees nothing it would admit
	// and earns ~0; the adaptive threshold starts permissive and adapts.
	quietDay, err := syntheticDefault(st, st.Seed)
	if err != nil {
		return Series{}, err
	}
	keepBelowMedianEfficiency(quietDay)
	orders := []struct {
		name string
		p    *model.Problem
	}{
		{"natural", natural},
		{"worst-first", worstFirst},
		{"best-first", bestFirst},
		{"quiet-day", quietDay},
	}

	gamma, gmax := core.EstimateGammaBounds(natural, 2048, st.Seed)
	g := st.G
	if g == 0 && gamma > 0 && gmax > gamma {
		g = math.E * gmax / gamma // the paper's tuning rule
	}
	if g <= math.E {
		g = 2 * math.E
	}
	multiples := []float64{0, 1, 16, 256, 4096}
	type entry struct {
		label string
		build func() core.Solver
	}
	entries := []entry{{"ADAPTIVE", func() core.Solver {
		return core.OnlineAFA{GammaMin: gamma, G: g, Seed: st.Seed}
	}}}
	for _, m := range multiples {
		m := m
		entries = append(entries, entry{
			fmt.Sprintf("STATIC×%g", m),
			func() core.Solver {
				return core.OnlineAFA{Threshold: core.StaticThreshold{Phi: gamma * m}, Seed: st.Seed}
			},
		})
	}
	points, err := sweep(len(entries), workers, func(i int) (Point, error) {
		pt := Point{Label: entries[i].label, X: float64(i)}
		minUtil := math.Inf(1)
		for _, ord := range orders {
			start := time.Now()
			a, err := entries[i].build().Solve(ord.p)
			if err != nil {
				return Point{}, err
			}
			pt.Measurements = append(pt.Measurements, Measurement{
				Solver:    ord.name,
				Utility:   a.Utility,
				Duration:  time.Since(start),
				Instances: len(a.Instances),
			})
			if a.Utility < minUtil {
				minUtil = a.Utility
			}
		}
		pt.Measurements = append(pt.Measurements, Measurement{Solver: "MIN", Utility: minUtil})
		return pt, nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{ID: "A1", Title: "Ablation: Adaptive vs Static Admission Threshold Across Arrival Orders (Synthetic Data)",
		XLabel: "policy", Points: points}, nil
}

// sortCustomersByEfficiency reorders the problem's arrival stream by each
// customer's best-pair efficiency — ascending (worst first, the adversarial
// prefix for permissive policies) or descending. IDs are renumbered to match
// the new order.
func sortCustomersByEfficiency(p *model.Problem, worstFirst bool) {
	score := bestPairEfficiencies(p)
	order := make([]int, len(p.Customers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if worstFirst {
			return score[order[a]] < score[order[b]]
		}
		return score[order[a]] > score[order[b]]
	})
	out := make([]model.Customer, len(p.Customers))
	for pos, i := range order {
		out[pos] = p.Customers[i]
		out[pos].ID = int32(pos)
	}
	p.Customers = out
}

// keepBelowMedianEfficiency drops the top half of customers by best-pair
// efficiency, keeping the original relative order of the rest.
func keepBelowMedianEfficiency(p *model.Problem) {
	scores := bestPairEfficiencies(p)
	// Median over servable customers only: customers with no covering
	// vendor score 0 and would otherwise drag the median to 0.
	var positive []float64
	for _, s := range scores {
		if s > 0 {
			positive = append(positive, s)
		}
	}
	if len(positive) == 0 {
		return
	}
	sort.Float64s(positive)
	median := positive[len(positive)/2]
	var out []model.Customer
	for i := range p.Customers {
		if scores[i] > 0 && scores[i] <= median {
			c := p.Customers[i]
			c.ID = int32(len(out))
			out = append(out, c)
		}
	}
	p.Customers = out
}

// bestPairEfficiencies returns, per customer, the highest budget efficiency
// over the customer's valid pairs and ad types.
func bestPairEfficiencies(p *model.Problem) []float64 {
	ix := core.NewIndex(p)
	score := make([]float64, len(p.Customers))
	var buf []int32
	for i := range p.Customers {
		buf = ix.ValidVendors(buf[:0], int32(i))
		best := 0.0
		for _, vj := range buf {
			base := p.UtilityBase(int32(i), vj)
			for k := range p.AdTypes {
				if eff := base * p.AdTypes[k].Effect / p.AdTypes[k].Cost; eff > best {
					best = eff
				}
			}
		}
		score[i] = best
	}
	return score
}

// RunGSweep (A2) measures the effect of the threshold base g on O-AFA,
// supporting the Section IV-B discussion: larger g blocks low-efficiency ads
// more aggressively but leaves more budget unused.
func RunGSweep(st Settings, workers int) (Series, error) {
	p, err := syntheticDefault(st, st.Seed)
	if err != nil {
		return Series{}, err
	}
	points, err := sweep(len(AblationGs), workers, func(i int) (Point, error) {
		g := AblationGs[i] * math.E
		start := time.Now()
		a, err := (core.OnlineAFA{G: g, Seed: st.Seed}).Solve(p)
		if err != nil {
			return Point{}, err
		}
		return Point{
			Label: fmt.Sprintf("g=%.1fe", AblationGs[i]),
			X:     AblationGs[i],
			Measurements: []Measurement{{
				Solver:    "ONLINE",
				Utility:   a.Utility,
				Duration:  time.Since(start),
				Instances: len(a.Instances),
			}},
		}, nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{ID: "A2", Title: "Ablation: Effect of the Threshold Base g on O-AFA (Synthetic Data)",
		XLabel: "g/e", Points: points}, nil
}

// RunMCKPAblation (A3) compares RECON's three single-vendor backends: the
// hull-greedy MCKP solver (default), the simplex LP relaxation the paper
// uses, and the FPTAS that makes the (1−ε)·θ guarantee literal.
func RunMCKPAblation(st Settings, workers int) (Series, error) {
	p, err := syntheticDefault(st, st.Seed)
	if err != nil {
		return Series{}, err
	}
	solvers := []core.Solver{
		core.Recon{Seed: st.Seed},
		core.Recon{UseLP: true, Seed: st.Seed},
		core.Recon{Epsilon: 0.25, Seed: st.Seed},
	}
	points, err := sweep(len(solvers), workers, func(i int) (Point, error) {
		start := time.Now()
		a, err := solvers[i].Solve(p)
		if err != nil {
			return Point{}, err
		}
		return Point{
			Label: solvers[i].Name(),
			X:     float64(i),
			Measurements: []Measurement{{
				Solver:    solvers[i].Name(),
				Utility:   a.Utility,
				Duration:  time.Since(start),
				Instances: len(a.Instances),
			}},
		}, nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{ID: "A3", Title: "Ablation: RECON Single-Vendor Backend — MCKP Greedy vs Simplex LP",
		XLabel: "backend", Points: points}, nil
}

// RatioPoint is one instance of the A4 ratio study.
type RatioPoint struct {
	Seed            int64
	Optimal         float64
	Recon           float64
	Online          float64
	Theta           float64
	ReconRatio      float64 // Recon / Optimal
	OnlineRatio     float64 // Online / Optimal
	TheoreticalComp float64 // θ/(ln g + 1): the guaranteed fraction for O-AFA
}

// RunRatioStudy (A4) measures empirical approximation and competitive ratios
// against the exact optimum on tiny instances (Theorems III.1 and IV.1 give
// the worst-case guarantees; this reports the typical case).
func RunRatioStudy(st Settings, instances int) ([]RatioPoint, error) {
	if instances <= 0 {
		instances = 20
	}
	g := st.G
	if g == 0 {
		g = 2 * math.E // fixed g keeps the theoretical column comparable
	}
	var out []RatioPoint
	for i := 0; i < instances; i++ {
		seed := st.Seed + int64(i)
		p, err := workload.Synthetic(workload.Config{
			Customers: 5,
			Vendors:   3,
			// Tight budgets relative to ad costs (1–2 per ad) so the
			// knapsack structure binds and the optimum is non-trivial;
			// plentiful budgets make every algorithm trivially optimal.
			Budget:   stats.Range{Lo: 2, Hi: 4},
			Radius:   stats.Range{Lo: 0.3, Hi: 0.5}, // wide radii keep tiny instances dense
			Capacity: stats.Range{Lo: 1, Hi: 2},
			ViewProb: st.ViewProb,
			AdTypes:  workload.DefaultAdTypes()[:2],
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		exact, err := (core.Exact{MaxPairs: 40}).Solve(p)
		if err != nil {
			return nil, err
		}
		if exact.Utility <= 0 {
			continue
		}
		recon, err := (core.Recon{Seed: seed}).Solve(p)
		if err != nil {
			return nil, err
		}
		online, err := (core.OnlineAFA{G: g, Seed: seed}).Solve(p)
		if err != nil {
			return nil, err
		}
		theta := p.Theta()
		out = append(out, RatioPoint{
			Seed:            seed,
			Optimal:         exact.Utility,
			Recon:           recon.Utility,
			Online:          online.Utility,
			Theta:           theta,
			ReconRatio:      recon.Utility / exact.Utility,
			OnlineRatio:     online.Utility / exact.Utility,
			TheoreticalComp: theta / (math.Log(g) + 1),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: every ratio-study instance had zero optimum")
	}
	return out, nil
}
