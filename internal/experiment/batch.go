package experiment

import (
	"fmt"
	"time"

	"muaa/internal/core"
)

// BatchWindows is the window sweep of the A6 ablation.
var BatchWindows = []int{1, 16, 64, 256, 1024}

// RunBatchAblation (A6) sweeps the micro-batch window of the OnlineBatch
// extension against plain O-AFA and the offline GREEDY on the default
// synthetic workload: how much utility does each unit of answer delay buy?
// Each window is run with the adaptive threshold and (for reference) without
// admission control, exposing that batching alone — without the paper's
// threshold — underperforms plain O-AFA.
func RunBatchAblation(st Settings, workers int) (Series, error) {
	p, err := syntheticDefault(st, st.Seed)
	if err != nil {
		return Series{}, err
	}
	type entry struct {
		label  string
		solver core.Solver
	}
	entries := []entry{
		{"ONLINE", core.OnlineAFA{G: st.G, Seed: st.Seed}},
	}
	for _, w := range BatchWindows {
		entries = append(entries,
			entry{fmt.Sprintf("BATCH(%d)", w), core.OnlineBatch{Window: w, G: st.G, Seed: st.Seed}},
			entry{fmt.Sprintf("BATCH(%d)-nothresh", w), core.OnlineBatch{Window: w, Threshold: core.StaticThreshold{}}},
		)
	}
	entries = append(entries, entry{"GREEDY", core.Greedy{}})

	points, err := sweep(len(entries), workers, func(i int) (Point, error) {
		start := time.Now()
		a, err := entries[i].solver.Solve(p)
		if err != nil {
			return Point{}, err
		}
		return Point{
			Label: entries[i].label,
			X:     float64(i),
			Measurements: []Measurement{{
				Solver:    entries[i].label,
				Utility:   a.Utility,
				Duration:  time.Since(start),
				Instances: len(a.Instances),
			}},
		}, nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{ID: "A6", Title: "Ablation: Micro-Batching Window vs Pure Online (Synthetic Data)",
		XLabel: "policy", Points: points}, nil
}
