package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Chart renders the series' utility panel as horizontal bar charts, one
// block per knob setting — a terminal-friendly view of the figures the paper
// plots (muaa-bench -chart). Bars share one scale across the whole series so
// trends across knob settings read correctly.
func Chart(w io.Writer, s Series) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", s.ID, s.Title); err != nil {
		return err
	}
	maxUtil := 0.0
	nameWidth := 0
	for _, p := range s.Points {
		for _, m := range p.Measurements {
			if m.Utility > maxUtil {
				maxUtil = m.Utility
			}
			if len(m.Solver) > nameWidth {
				nameWidth = len(m.Solver)
			}
		}
	}
	if maxUtil == 0 {
		_, err := fmt.Fprintln(w, "(all utilities zero)")
		return err
	}
	const width = 48
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%s = %s\n", s.XLabel, p.Label); err != nil {
			return err
		}
		for _, m := range p.Measurements {
			bar := barString(m.Utility/maxUtil, width)
			if _, err := fmt.Fprintf(w, "  %-*s %s %.4g\n", nameWidth, m.Solver, bar, m.Utility); err != nil {
				return err
			}
		}
	}
	return nil
}

// barString renders a fraction of the given width using eighth-block runes
// for sub-character resolution.
func barString(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	eighths := int(frac*float64(width)*8 + 0.5)
	full := eighths / 8
	rem := eighths % 8
	var b strings.Builder
	b.WriteString(strings.Repeat("█", full))
	if rem > 0 {
		// U+2590-family partial blocks, thinnest to thickest: ▏▎▍▌▋▊▉.
		partials := []rune("▏▎▍▌▋▊▉")
		b.WriteRune(partials[rem-1])
		full++
	}
	b.WriteString(strings.Repeat(" ", width-full))
	return b.String()
}

// Sparkline renders values as a compact one-line sparkline (▁▂▃▄▅▆▇█),
// scaled to the slice's own min–max. Empty input yields an empty string;
// constant series render at the midline.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range values {
		idx := len(levels) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
