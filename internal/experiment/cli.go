package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Format selects how RunByID renders a series.
type Format int

const (
	// Text renders aligned tables (the default).
	Text Format = iota
	// CSVFormat renders long-form CSV.
	CSVFormat
	// ChartFormat renders terminal bar charts.
	ChartFormat
	// MarkdownFormat renders GitHub-flavoured Markdown tables.
	MarkdownFormat
)

// ExperimentIDs lists every experiment in canonical order.
var ExperimentIDs = []string{
	"e1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8",
}

// seriesRunners maps series-producing experiment IDs to their runners.
var seriesRunners = map[string]func(Settings, int) (Series, error){
	"fig3": RunBudgetSweep,
	"fig4": RunRadiusSweep,
	"fig5": RunCapacitySweep,
	"fig6": RunProbabilitySweep,
	"fig7": RunCustomerScaling,
	"fig8": RunVendorScaling,
	"a1":   RunThresholdAblation,
	"a2":   RunGSweep,
	"a3":   RunMCKPAblation,
	"a6":   RunBatchAblation,
}

// RunByID executes one experiment by its canonical ID ("e1", "fig3"…"fig8",
// "a1"…"a7") and writes its report to w. Series experiments honor format and
// repeats (replication with means ± sd); the scalar reports (e1, a4, a5, a7)
// always render as text. cmd/muaa-bench is a thin flag wrapper over this.
func RunByID(w io.Writer, id string, st Settings, workers, repeats int, format Format) error {
	switch strings.ToLower(id) {
	case "e1":
		res, err := RunExample1()
		if err != nil {
			return err
		}
		return RenderExample1(w, res)
	case "a4":
		points, err := RunRatioStudy(st, 20)
		if err != nil {
			return err
		}
		return RenderRatioStudy(w, points)
	case "a5":
		points, err := RunSafeRegionStudy(st, 20, 500)
		if err != nil {
			return err
		}
		return RenderSafeRegionStudy(w, points)
	case "a7":
		results, err := RunTuningStudy(st, 10)
		if err != nil {
			return err
		}
		return RenderTuningStudy(w, results)
	case "a8":
		points, err := RunIndexAblation(st, 5000)
		if err != nil {
			return err
		}
		return RenderIndexAblation(w, points)
	default:
		runner, ok := seriesRunners[strings.ToLower(id)]
		if !ok {
			return fmt.Errorf("experiment: unknown id %q (want one of %s)",
				id, strings.Join(ExperimentIDs, ", "))
		}
		s, err := Replicate(st, repeats, workers, runner)
		if err != nil {
			return err
		}
		switch format {
		case CSVFormat:
			return CSV(w, s)
		case ChartFormat:
			return Chart(w, s)
		case MarkdownFormat:
			return Markdown(w, s)
		default:
			return Render(w, s)
		}
	}
}

// RunAll executes every experiment in canonical order, separating reports
// with blank lines.
func RunAll(w io.Writer, st Settings, workers, repeats int, format Format) error {
	for _, id := range ExperimentIDs {
		if err := RunByID(w, id, st, workers, repeats, format); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
