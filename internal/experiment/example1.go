package experiment

import (
	"time"

	"muaa/internal/core"
	"muaa/internal/workload"
)

// Example1Result reproduces the paper's worked example (E1): the utilities
// of the paper's two discussed solutions and what each algorithm actually
// achieves on the instance.
type Example1Result struct {
	// PossibleUtility is the paper's "one possible solution" (0.0357...).
	PossibleUtility float64
	// ClaimedOptUtility is the paper's claimed optimum (0.0504...).
	ClaimedOptUtility float64
	// TrueOptUtility is the branch-and-bound optimum (0.05204... — the
	// paper's claimed optimum is slightly sub-optimal; see EXPERIMENTS.md).
	TrueOptUtility float64
	// Solvers holds each algorithm's utility on the example.
	Solvers []Measurement
}

// RunExample1 evaluates every algorithm on the Example 1 instance.
func RunExample1() (Example1Result, error) {
	p := workload.Example1()
	possible, claimed := workload.Example1PaperSolutions()
	res := Example1Result{
		PossibleUtility:   p.TotalUtility(possible),
		ClaimedOptUtility: p.TotalUtility(claimed),
	}
	exact, err := (core.Exact{}).Solve(p)
	if err != nil {
		return Example1Result{}, err
	}
	res.TrueOptUtility = exact.Utility
	solvers := []core.Solver{
		core.Exact{},
		core.Recon{Seed: 1},
		core.OnlineAFA{Seed: 1},
		core.Greedy{},
		core.Random{Seed: 1},
		core.Nearest{},
	}
	for _, s := range solvers {
		start := time.Now()
		a, err := s.Solve(p)
		if err != nil {
			return Example1Result{}, err
		}
		res.Solvers = append(res.Solvers, Measurement{
			Solver:    s.Name(),
			Utility:   a.Utility,
			Duration:  time.Since(start),
			Instances: len(a.Instances),
		})
	}
	return res, nil
}
