package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// scaled returns settings small enough for unit tests but large enough to
// exercise every path.
func scaled() Settings {
	return DefaultSettings().Scale(0.02) // 200 customers, 10 vendors
}

func TestDefaultSettings(t *testing.T) {
	st := DefaultSettings()
	if st.Customers != 10000 || st.Vendors != 500 {
		t.Errorf("defaults: %d customers, %d vendors", st.Customers, st.Vendors)
	}
	if st.G != 0 {
		t.Errorf("default g = %g, want 0 (auto-tuned per instance)", st.G)
	}
}

func TestScale(t *testing.T) {
	st := DefaultSettings().Scale(0.001)
	if st.Customers < 20 || st.Vendors < 5 {
		t.Errorf("scale floor violated: %d/%d", st.Customers, st.Vendors)
	}
	defer func() {
		if recover() == nil {
			t.Error("scale > 1 must panic")
		}
	}()
	DefaultSettings().Scale(2)
}

func checkSeries(t *testing.T, s Series, wantPoints int) {
	t.Helper()
	if len(s.Points) != wantPoints {
		t.Fatalf("%s: %d points, want %d", s.ID, len(s.Points), wantPoints)
	}
	solvers := s.Solvers()
	if len(solvers) < 5 {
		t.Fatalf("%s: only %d solvers measured: %v", s.ID, len(solvers), solvers)
	}
	for _, p := range s.Points {
		for _, m := range p.Measurements {
			if m.Utility < 0 {
				t.Fatalf("%s %s %s: negative utility", s.ID, p.Label, m.Solver)
			}
			if m.Duration < 0 {
				t.Fatalf("%s %s %s: negative duration", s.ID, p.Label, m.Solver)
			}
		}
	}
}

func TestRunBudgetSweep(t *testing.T) {
	s, err := RunBudgetSweep(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSeries(t, s, len(Fig3Budgets))
	// Paper shape: utility grows with budget then saturates — compare the
	// smallest and largest budget points for RECON.
	first, _ := s.Points[0].Get("RECON")
	last, _ := s.Points[len(s.Points)-1].Get("RECON")
	if last.Utility < first.Utility {
		t.Errorf("RECON utility should not fall as budgets grow: %g → %g", first.Utility, last.Utility)
	}
}

func TestRunRadiusSweep(t *testing.T) {
	s, err := RunRadiusSweep(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSeries(t, s, len(Fig4Radii))
	first, _ := s.Points[0].Get("GREEDY")
	last, _ := s.Points[len(s.Points)-1].Get("GREEDY")
	if last.Utility < first.Utility*0.5 {
		t.Errorf("GREEDY utility collapsed as radii grew: %g → %g", first.Utility, last.Utility)
	}
}

func TestRunCapacitySweep(t *testing.T) {
	s, err := RunCapacitySweep(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSeries(t, s, len(Fig5Capacities))
}

func TestRunProbabilitySweep(t *testing.T) {
	s, err := RunProbabilitySweep(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSeries(t, s, len(Fig6ViewProbs))
	// Paper shape: utility grows with p for every solver in aggregate.
	for _, name := range []string{"RECON", "GREEDY", "ONLINE"} {
		first, _ := s.Points[0].Get(name)
		last, _ := s.Points[len(s.Points)-1].Get(name)
		if last.Utility <= first.Utility {
			t.Errorf("%s utility should grow with viewing probability: %g → %g", name, first.Utility, last.Utility)
		}
	}
}

func TestRunCustomerScaling(t *testing.T) {
	s, err := RunCustomerScaling(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSeries(t, s, len(Fig7Customers))
	// Paper shape: utility grows with m for the utility-aware approaches.
	first, _ := s.Points[0].Get("RECON")
	last, _ := s.Points[len(s.Points)-1].Get("RECON")
	if last.Utility <= first.Utility {
		t.Errorf("RECON utility should grow with m: %g → %g", first.Utility, last.Utility)
	}
}

func TestRunVendorScaling(t *testing.T) {
	s, err := RunVendorScaling(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	checkSeries(t, s, len(Fig8Vendors))
	first, _ := s.Points[0].Get("RECON")
	last, _ := s.Points[len(s.Points)-1].Get("RECON")
	if last.Utility <= first.Utility {
		t.Errorf("RECON utility should grow with n: %g → %g", first.Utility, last.Utility)
	}
}

func TestRunThresholdAblation(t *testing.T) {
	s, err := RunThresholdAblation(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 6 {
		t.Fatalf("threshold ablation points = %d", len(s.Points))
	}
	minOf := func(label string) float64 {
		for _, p := range s.Points {
			if p.Label != label {
				continue
			}
			if m, ok := p.Get("MIN"); ok {
				return m.Utility
			}
		}
		t.Fatalf("no MIN measurement for %s", label)
		return 0
	}
	adaptive := minOf("ADAPTIVE")
	if adaptive <= 0 {
		t.Fatal("adaptive policy earned nothing in its worst order")
	}
	// The minimax claim: the adaptive threshold's worst arrival order should
	// not be far below the worst order of the extreme static policies (a
	// fully permissive threshold and a nearly-closed one).
	for _, label := range []string{"STATIC×0", "STATIC×4096"} {
		if st := minOf(label); adaptive < 0.9*st {
			t.Errorf("adaptive worst-order utility %g far below %s's %g", adaptive, label, st)
		}
	}
	// Every point carries the four scenarios plus MIN.
	for _, p := range s.Points {
		if len(p.Measurements) != 5 {
			t.Fatalf("%s has %d measurements, want 5", p.Label, len(p.Measurements))
		}
	}
}

func TestRunGSweep(t *testing.T) {
	s, err := RunGSweep(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(AblationGs) {
		t.Fatalf("g sweep points = %d", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Measurements[0].Utility < 0 {
			t.Fatalf("negative utility at %s", p.Label)
		}
	}
}

func TestRunMCKPAblation(t *testing.T) {
	s, err := RunMCKPAblation(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 {
		t.Fatalf("MCKP ablation points = %d", len(s.Points))
	}
	g := s.Points[0].Measurements[0]
	l := s.Points[1].Measurements[0]
	f := s.Points[2].Measurements[0]
	if g.Solver != "RECON" || l.Solver != "RECON-LP" || f.Solver != "RECON-FPTAS" {
		t.Fatalf("unexpected solvers %s / %s / %s", g.Solver, l.Solver, f.Solver)
	}
	if g.Utility <= 0 || l.Utility <= 0 || f.Utility <= 0 {
		t.Error("all backends must achieve positive utility")
	}
}

func TestRunRatioStudy(t *testing.T) {
	st := scaled()
	points, err := RunRatioStudy(st, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.ReconRatio > 1+1e-9 || p.OnlineRatio > 1+1e-9 {
			t.Fatalf("ratio above 1: %+v", p)
		}
		if p.ReconRatio <= 0 && p.Recon > 0 {
			t.Fatalf("inconsistent ratio: %+v", p)
		}
	}
}

func TestRunExample1(t *testing.T) {
	r, err := RunExample1()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PossibleUtility-0.0357087) > 1e-6 {
		t.Errorf("possible utility = %g", r.PossibleUtility)
	}
	if math.Abs(r.ClaimedOptUtility-0.0504435) > 1e-6 {
		t.Errorf("claimed optimum = %g", r.ClaimedOptUtility)
	}
	if math.Abs(r.TrueOptUtility-0.0520435) > 1e-6 {
		t.Errorf("true optimum = %g", r.TrueOptUtility)
	}
	if len(r.Solvers) != 6 {
		t.Errorf("solver count = %d", len(r.Solvers))
	}
}

func TestRenderAndCSV(t *testing.T) {
	s, err := RunGSweep(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// A2 has one measurement per point and renders long-form.
	for _, frag := range []string{"A2", "utility", "time", "g=1.1e"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render output missing %q:\n%s", frag, out)
		}
	}
	// Multi-solver series keep the two-panel layout.
	fig, err := RunVendorScaling(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Render(&buf, fig); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"(a) overall utility", "(b) running time", "RECON"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("panel render missing %q", frag)
		}
	}
	buf.Reset()
	buf.Reset()
	if err := CSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(AblationGs) {
		t.Errorf("CSV lines = %d, want %d", len(lines), 1+len(AblationGs))
	}
	if !strings.HasPrefix(lines[0], "id,x,label,solver,utility") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestRenderExample1AndRatioStudy(t *testing.T) {
	r, err := RunExample1()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderExample1(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0357") || !strings.Contains(buf.String(), "EXACT") {
		t.Errorf("E1 render missing content:\n%s", buf.String())
	}
	points, err := RunRatioStudy(scaled(), 5)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderRatioStudy(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RECON/OPT") {
		t.Errorf("A4 render missing content:\n%s", buf.String())
	}
}

func TestRunSafeRegionStudy(t *testing.T) {
	points, err := RunSafeRegionStudy(scaled(), 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Samples <= 0 || p.Recomputes <= 0 {
			t.Fatalf("counters empty: %+v", p)
		}
		if p.Recomputes > p.Samples {
			t.Fatalf("more scans than samples: %+v", p)
		}
	}
	// At the lowest vendor density safe regions are large relative to the
	// sampling step and must save scans; at high density the margins shrink
	// and savings may legitimately approach zero (the trade-off A5 reports).
	if points[0].SavedPercent <= 0 {
		t.Errorf("safe regions saved nothing at n=%d: %+v", points[0].Vendors, points[0])
	}
	var buf bytes.Buffer
	if err := RenderSafeRegionStudy(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "A5") || !strings.Contains(buf.String(), "saved=") {
		t.Errorf("A5 render missing content:\n%s", buf.String())
	}
}

func TestRunBatchAblation(t *testing.T) {
	s, err := RunBatchAblation(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2+2*len(BatchWindows) {
		t.Fatalf("points = %d", len(s.Points))
	}
	get := func(label string) float64 {
		for _, p := range s.Points {
			if p.Label == label {
				return p.Measurements[0].Utility
			}
		}
		t.Fatalf("missing point %s", label)
		return 0
	}
	online := get("ONLINE")
	batch1 := get("BATCH(1)")
	batchBig := get("BATCH(1024)")
	if online <= 0 || batch1 <= 0 {
		t.Fatal("zero utilities in batch ablation")
	}
	// A window of 1 with the adaptive threshold behaves like O-AFA.
	if batch1 < 0.8*online || batch1 > 1.25*online {
		t.Errorf("BATCH(1) %g should track ONLINE %g", batch1, online)
	}
	// Look-ahead cannot make things dramatically worse.
	if batchBig < 0.9*batch1 {
		t.Errorf("BATCH(1024) %g fell below BATCH(1) %g", batchBig, batch1)
	}
}

func TestChartAndSparkline(t *testing.T) {
	s, err := RunGSweep(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Chart(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "█") && !strings.Contains(out, "▉") {
		t.Errorf("chart rendered no bars:\n%s", out)
	}
	if !strings.Contains(out, "g=1.1e") {
		t.Errorf("chart missing knob labels:\n%s", out)
	}
	// Zero series.
	buf.Reset()
	if err := Chart(&buf, Series{ID: "Z", Points: []Point{{Label: "x", Measurements: []Measurement{{Solver: "S"}}}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all utilities zero") {
		t.Errorf("zero chart output: %s", buf.String())
	}

	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	if got := Sparkline([]float64{1, 1, 1}); len([]rune(got)) != 3 {
		t.Errorf("constant sparkline = %q", got)
	}
	spark := []rune(Sparkline([]float64{0, 0.5, 1}))
	if len(spark) != 3 || spark[0] != '▁' || spark[2] != '█' {
		t.Errorf("sparkline = %q", string(spark))
	}
}

func TestReplicate(t *testing.T) {
	st := scaled()
	s, err := Replicate(st, 3, 2, RunVendorScaling)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Title, "mean of 3 runs") {
		t.Errorf("title = %q", s.Title)
	}
	if len(s.Points) != len(Fig8Vendors) {
		t.Fatalf("points = %d", len(s.Points))
	}
	sdSeen := false
	for _, p := range s.Points {
		for _, m := range p.Measurements {
			if m.UtilitySD < 0 {
				t.Fatalf("negative SD at %s/%s", p.Label, m.Solver)
			}
			if m.UtilitySD > 0 {
				sdSeen = true
			}
		}
	}
	if !sdSeen {
		t.Error("three distinct seeds should produce nonzero variance somewhere")
	}
	// repeats = 1 passes the single run through untouched.
	one, err := Replicate(st, 1, 2, RunVendorScaling)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(one.Title, "mean of") {
		t.Error("single run must not claim replication")
	}
	if _, err := Replicate(st, 0, 2, RunVendorScaling); err == nil {
		t.Error("repeats < 1 must be rejected")
	}
}

func TestRunTuningStudy(t *testing.T) {
	results, err := RunTuningStudy(scaled(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("days = %d", len(results))
	}
	if results[0].GammaMin != 0 {
		t.Error("day 0 must cold-start")
	}
	for _, r := range results[1:] {
		if r.GammaMin <= 0 {
			t.Errorf("day %d not warmed", r.Day)
		}
	}
	var buf bytes.Buffer
	if err := RenderTuningStudy(&buf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "A7") || !strings.Contains(buf.String(), "cold start") {
		t.Errorf("A7 render missing content:\n%s", buf.String())
	}
}

func TestRunByIDDispatch(t *testing.T) {
	st := scaled()
	var buf bytes.Buffer
	for id, frag := range map[string]string{
		"e1":   "Worked Example 1",
		"a2":   "Threshold Base g",
		"a4":   "RECON/OPT",
		"A2":   "Threshold Base g", // case-insensitive
		"fig8": "Number n of Vendors",
	} {
		buf.Reset()
		if err := RunByID(&buf, id, st, 2, 1, Text); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("%s output missing %q", id, frag)
		}
	}
	if err := RunByID(&buf, "nope", st, 2, 1, Text); err == nil {
		t.Error("unknown id must be rejected")
	}
	// Formats.
	buf.Reset()
	if err := RunByID(&buf, "a2", st, 2, 1, CSVFormat); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id,x,label") {
		t.Errorf("CSV format output: %q", buf.String()[:40])
	}
	buf.Reset()
	if err := RunByID(&buf, "a2", st, 2, 1, ChartFormat); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "█") && !strings.Contains(buf.String(), "▏") {
		t.Error("chart format produced no bars")
	}
}

func TestMarkdownRender(t *testing.T) {
	s, err := Replicate(scaled(), 2, 2, RunVendorScaling)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Markdown(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"## Fig8", "| n |", "RECON", "±"} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
	// Unreplicated series have no ± columns.
	single, err := RunVendorScaling(scaled(), 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Markdown(&buf, single); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "±") {
		t.Error("single run must not show sd")
	}
}

func TestRunIndexAblation(t *testing.T) {
	points, err := RunIndexAblation(scaled(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.GridQuery <= 0 || p.KDQuery <= 0 || p.GridBuild <= 0 || p.KDBuild <= 0 {
			t.Fatalf("unmeasured timings: %+v", p)
		}
		if p.Customers != 200 {
			t.Fatalf("customer count %d", p.Customers)
		}
	}
	var buf bytes.Buffer
	if err := RenderIndexAblation(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "A8") || !strings.Contains(buf.String(), "kd-tree") {
		t.Errorf("A8 render:\n%s", buf.String())
	}
	// RunByID dispatch.
	buf.Reset()
	if err := RunByID(&buf, "a8", scaled(), 2, 1, Text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "grid:") {
		t.Error("a8 dispatch output wrong")
	}
}
