package experiment

import (
	"fmt"
	"io"
	"time"

	"muaa/internal/geo"
	"muaa/internal/workload"
)

// IndexPoint is one row of the A8 index ablation: the time to answer every
// customer's covering-vendors query with each spatial index.
type IndexPoint struct {
	Vendors   int
	Customers int
	GridBuild time.Duration
	GridQuery time.Duration
	KDBuild   time.Duration
	KDQuery   time.Duration
}

// RunIndexAblation (A8) compares the uniform grid against the k-d tree on
// the workload's actual query pattern — one CoveredBy per arriving customer
// — across vendor counts. The paper's workloads (near-uniform vendors in the
// unit square, small radii) favour the grid; the k-d tree needs no
// resolution parameter and wins under clustering. Both indexes return
// identical results (property-tested in package geo); this ablation is about
// cost only.
func RunIndexAblation(st Settings, customersPerPoint int) ([]IndexPoint, error) {
	if customersPerPoint <= 0 {
		customersPerPoint = 5000
	}
	var out []IndexPoint
	for _, n := range []int{500, 2000, 8000} {
		p, err := workload.Synthetic(workload.Config{
			Customers: customersPerPoint,
			Vendors:   n,
			Budget:    st.Budget,
			Radius:    st.Radius,
			Capacity:  st.Capacity,
			ViewProb:  st.ViewProb,
			Seed:      st.Seed,
		})
		if err != nil {
			return nil, err
		}
		pt := IndexPoint{Vendors: n, Customers: len(p.Customers)}

		maxR := 0.0
		for j := range p.Vendors {
			if p.Vendors[j].Radius > maxR {
				maxR = p.Vendors[j].Radius
			}
		}
		start := time.Now()
		grid := geo.NewGrid(geo.UnitSquare, geo.GridResolution(n, maxR))
		for j := range p.Vendors {
			grid.InsertWithRadius(int32(j), p.Vendors[j].Loc, p.Vendors[j].Radius)
		}
		pt.GridBuild = time.Since(start)

		ids := make([]int32, n)
		pts := make([]geo.Point, n)
		radii := make([]float64, n)
		for j := range p.Vendors {
			ids[j] = int32(j)
			pts[j] = p.Vendors[j].Loc
			radii[j] = p.Vendors[j].Radius
		}
		start = time.Now()
		kd := geo.BuildKDTreeWithRadii(ids, pts, radii)
		pt.KDBuild = time.Since(start)

		var dst []int32
		start = time.Now()
		for i := range p.Customers {
			dst = grid.CoveredBy(dst[:0], p.Customers[i].Loc)
		}
		pt.GridQuery = time.Since(start)
		start = time.Now()
		for i := range p.Customers {
			dst = kd.CoveredBy(dst[:0], p.Customers[i].Loc)
		}
		pt.KDQuery = time.Since(start)
		out = append(out, pt)
	}
	return out, nil
}

// RenderIndexAblation writes the A8 report.
func RenderIndexAblation(w io.Writer, points []IndexPoint) error {
	if _, err := fmt.Fprintln(w, "A8 — Spatial Index Ablation: Uniform Grid vs k-d Tree (covering-vendor queries)"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w,
			"n=%-5d m=%d  grid: build=%v query=%v   kd-tree: build=%v query=%v\n",
			p.Vendors, p.Customers,
			p.GridBuild.Round(time.Microsecond), p.GridQuery.Round(time.Microsecond),
			p.KDBuild.Round(time.Microsecond), p.KDQuery.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
