package experiment

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Render writes the series as two aligned text tables — the utility panel
// (the figures' "(a)") and the running-time panel ("(b)") — matching what
// the paper plots. Series whose points carry a single measurement each
// (the ablations) render as one long-form table instead.
func Render(w io.Writer, s Series) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", s.ID, s.Title); err != nil {
		return err
	}
	if singleMeasurement(s) {
		return renderLongForm(w, s)
	}
	solvers := s.Solvers()
	if err := renderPanel(w, s, solvers, "(a) overall utility", func(m Measurement) string {
		return fmt.Sprintf("%.4f", m.Utility)
	}); err != nil {
		return err
	}
	return renderPanel(w, s, solvers, "(b) running time", func(m Measurement) string {
		return formatDuration(m.Duration)
	})
}

func singleMeasurement(s Series) bool {
	if len(s.Points) == 0 {
		return false
	}
	for _, p := range s.Points {
		if len(p.Measurements) != 1 {
			return false
		}
	}
	return true
}

func renderLongForm(w io.Writer, s Series) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tutility\tads\ttime\n", s.XLabel)
	for _, p := range s.Points {
		m := p.Measurements[0]
		fmt.Fprintf(tw, "%s\t%.4f\t%d\t%s\n", p.Label, m.Utility, m.Instances, formatDuration(m.Duration))
	}
	return tw.Flush()
}

func renderPanel(w io.Writer, s Series, solvers []string, caption string, cell func(Measurement) string) error {
	if _, err := fmt.Fprintf(w, "%s\n", caption); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", s.XLabel)
	for _, name := range solvers {
		fmt.Fprintf(tw, "\t%s", name)
	}
	fmt.Fprintln(tw)
	for _, p := range s.Points {
		fmt.Fprintf(tw, "%s", p.Label)
		for _, name := range solvers {
			if m, ok := p.Get(name); ok {
				fmt.Fprintf(tw, "\t%s", cell(m))
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Markdown writes the series' utility panel as a GitHub-flavoured Markdown
// table (EXPERIMENTS.md's tables come from this). Replicated series include
// ±sd columns.
func Markdown(w io.Writer, s Series) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", s.ID, s.Title); err != nil {
		return err
	}
	solvers := s.Solvers()
	hasSD := false
	for _, p := range s.Points {
		for _, m := range p.Measurements {
			if m.UtilitySD > 0 {
				hasSD = true
			}
		}
	}
	header := "| " + s.XLabel + " |"
	rule := "|---|"
	for _, name := range solvers {
		header += " " + name + " |"
		rule += "---|"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, rule); err != nil {
		return err
	}
	for _, p := range s.Points {
		row := "| " + p.Label + " |"
		for _, name := range solvers {
			m, ok := p.Get(name)
			switch {
			case !ok:
				row += " — |"
			case hasSD && m.UtilitySD > 0:
				row += fmt.Sprintf(" %.2f ± %.2f |", m.Utility, m.UtilitySD)
			default:
				row += fmt.Sprintf(" %.2f |", m.Utility)
			}
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the series as long-form CSV: id,x,label,solver,utility,
// duration_ms,instances. One row per (point, solver).
func CSV(w io.Writer, s Series) error {
	if _, err := fmt.Fprintln(w, "id,x,label,solver,utility,duration_ms,instances"); err != nil {
		return err
	}
	for _, p := range s.Points {
		for _, m := range p.Measurements {
			label := strings.ReplaceAll(p.Label, ",", ";")
			if _, err := fmt.Fprintf(w, "%s,%g,%s,%s,%.6f,%.3f,%d\n",
				s.ID, p.X, label, m.Solver, m.Utility,
				float64(m.Duration.Microseconds())/1000, m.Instances); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderExample1 writes the E1 report.
func RenderExample1(w io.Writer, r Example1Result) error {
	fmt.Fprintln(w, "E1 — Worked Example 1 (Section I, Tables I–II)")
	fmt.Fprintf(w, "paper's possible solution utility:  %.6f (paper: 0.0357)\n", r.PossibleUtility)
	fmt.Fprintf(w, "paper's claimed optimum utility:    %.6f (paper: 0.0504)\n", r.ClaimedOptUtility)
	fmt.Fprintf(w, "true optimum (branch-and-bound):    %.6f (the paper's claimed optimum is slightly sub-optimal)\n", r.TrueOptUtility)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "solver\tutility\tads\ttime")
	for _, m := range r.Solvers {
		fmt.Fprintf(tw, "%s\t%.6f\t%d\t%s\n", m.Solver, m.Utility, m.Instances, formatDuration(m.Duration))
	}
	return tw.Flush()
}

// RenderRatioStudy writes the A4 report.
func RenderRatioStudy(w io.Writer, points []RatioPoint) error {
	fmt.Fprintln(w, "A4 — Empirical Approximation / Competitive Ratios vs EXACT (tiny instances)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "seed\tOPT\tRECON\tONLINE\tθ\tRECON/OPT\tONLINE/OPT\tθ/(ln g+1)")
	var sumR, sumO float64
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			p.Seed, p.Optimal, p.Recon, p.Online, p.Theta, p.ReconRatio, p.OnlineRatio, p.TheoreticalComp)
		sumR += p.ReconRatio
		sumO += p.OnlineRatio
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	n := float64(len(points))
	_, err := fmt.Fprintf(w, "mean RECON/OPT = %.3f, mean ONLINE/OPT = %.3f over %d instances\n",
		sumR/n, sumO/n, len(points))
	return err
}
