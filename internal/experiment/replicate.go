package experiment

import (
	"fmt"
	"time"

	"muaa/internal/stats"
)

// Replicate runs a series runner repeats times under consecutive master
// seeds and merges the results: each (point, solver) measurement becomes the
// mean utility/duration across runs, with the utility's sample standard
// deviation recorded in Measurement.UtilitySD. Replication is how the
// harness reports error bars; single runs leave UtilitySD at zero.
//
// All runs must produce the same point labels and solver sets (they do, for
// every runner in this package — knob lists are static); a mismatch is
// reported as an error rather than silently misaligned.
func Replicate(st Settings, repeats, workers int,
	run func(Settings, int) (Series, error)) (Series, error) {
	if repeats < 1 {
		return Series{}, fmt.Errorf("experiment: repeats %d < 1", repeats)
	}
	base, err := run(st, workers)
	if err != nil {
		return Series{}, err
	}
	if repeats == 1 {
		return base, nil
	}
	// utilities[point][solver] collects per-run samples.
	type key struct {
		point  int
		solver string
	}
	utilities := map[key][]float64{}
	durations := map[key][]float64{}
	instances := map[key][]float64{}
	record := func(s Series) error {
		if len(s.Points) != len(base.Points) {
			return fmt.Errorf("experiment: replicate run produced %d points, want %d", len(s.Points), len(base.Points))
		}
		for pi, p := range s.Points {
			if p.Label != base.Points[pi].Label {
				return fmt.Errorf("experiment: replicate point %d label %q, want %q", pi, p.Label, base.Points[pi].Label)
			}
			for _, m := range p.Measurements {
				k := key{pi, m.Solver}
				utilities[k] = append(utilities[k], m.Utility)
				durations[k] = append(durations[k], float64(m.Duration))
				instances[k] = append(instances[k], float64(m.Instances))
			}
		}
		return nil
	}
	if err := record(base); err != nil {
		return Series{}, err
	}
	for rep := 1; rep < repeats; rep++ {
		cfg := st
		cfg.Seed = st.Seed + int64(rep)
		s, err := run(cfg, workers)
		if err != nil {
			return Series{}, err
		}
		if err := record(s); err != nil {
			return Series{}, err
		}
	}
	out := Series{ID: base.ID, Title: base.Title + fmt.Sprintf(" (mean of %d runs)", repeats), XLabel: base.XLabel}
	for pi, bp := range base.Points {
		p := Point{Label: bp.Label, X: bp.X}
		for _, bm := range bp.Measurements {
			k := key{pi, bm.Solver}
			us := stats.Summarize(utilities[k])
			ds := stats.Summarize(durations[k])
			is := stats.Summarize(instances[k])
			p.Measurements = append(p.Measurements, Measurement{
				Solver:    bm.Solver,
				Utility:   us.Mean,
				UtilitySD: us.SD,
				Duration:  time.Duration(ds.Mean),
				Instances: int(is.Mean + 0.5),
			})
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}
