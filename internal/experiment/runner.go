package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"muaa/internal/core"
	"muaa/internal/model"
)

// Measurement is one solver's result at one sweep point: the two panels the
// paper's figures plot, overall utility and running time.
type Measurement struct {
	Solver  string
	Utility float64
	// UtilitySD is the sample standard deviation of Utility across
	// replicated runs (Replicate); zero for single runs.
	UtilitySD float64
	Duration  time.Duration
	// Instances is the number of ads pushed; not plotted by the paper but
	// handy when reading results.
	Instances int
}

// Point is one knob setting of a sweep with the measurements of every
// solver.
type Point struct {
	Label        string  // human-readable knob value, e.g. "[10, 20]"
	X            float64 // numeric knob position for plotting
	Measurements []Measurement
}

// Get returns the measurement of the named solver, if present.
func (p Point) Get(solver string) (Measurement, bool) {
	for _, m := range p.Measurements {
		if m.Solver == solver {
			return m, true
		}
	}
	return Measurement{}, false
}

// Series is a full experiment: the regenerated figure.
type Series struct {
	ID     string // e.g. "Fig3"
	Title  string
	XLabel string
	Points []Point
}

// Solvers returns the solver names appearing in the series, in first-seen
// order.
func (s Series) Solvers() []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range s.Points {
		for _, m := range p.Measurements {
			if !seen[m.Solver] {
				seen[m.Solver] = true
				names = append(names, m.Solver)
			}
		}
	}
	return names
}

// defaultSolvers is the evaluation-section competitor set.
func defaultSolvers(st Settings) []core.Solver {
	return []core.Solver{
		core.Random{Seed: st.Seed},
		core.Nearest{},
		core.Greedy{},
		core.Recon{Seed: st.Seed},
		core.OnlineAFA{G: st.G, Seed: st.Seed},
	}
}

// runSolvers times each solver on the problem sequentially (so wall-clock
// durations are not polluted by sibling solvers).
func runSolvers(p *model.Problem, solvers []core.Solver) ([]Measurement, error) {
	out := make([]Measurement, 0, len(solvers))
	for _, s := range solvers {
		start := time.Now()
		a, err := s.Solve(p)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", s.Name(), err)
		}
		out = append(out, Measurement{
			Solver:    s.Name(),
			Utility:   a.Utility,
			Duration:  time.Since(start),
			Instances: len(a.Instances),
		})
	}
	return out, nil
}

// sweep evaluates build(i) for every knob index in a bounded worker pool.
// Points are returned in knob order regardless of completion order. The
// pool parallelizes across knob settings; solvers within a point stay
// sequential so their timings remain meaningful.
func sweep(n int, workers int, build func(i int) (Point, error)) ([]Point, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	points := make([]Point, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				points[i], errs[i] = build(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}
