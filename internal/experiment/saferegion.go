package experiment

import (
	"fmt"
	"io"
	"time"

	"muaa/internal/geo"
	"muaa/internal/mobility"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

// SafeRegionPoint is one row of the A5 study: for a given vendor count, how
// many of the movement samples required a full vendor scan with the
// safe-region tracker versus the always-recompute baseline.
type SafeRegionPoint struct {
	Vendors      int
	Customers    int
	Samples      int           // total movement samples across all customers
	Recomputes   int           // scans paid by the tracker
	SavedPercent float64       // 100·(1 − Recomputes/Samples)
	TrackerTime  time.Duration // wall time with safe regions
	NaiveTime    time.Duration // wall time recomputing every sample
}

// RunSafeRegionStudy (A5) quantifies the safe-region optimization the paper
// imports from Xu et al. [26] for moving customers: each simulated customer
// follows a random-waypoint trajectory sampled at a fixed interval, and the
// tracker recomputes the covering-vendor set only on region exit. The study
// sweeps the vendor count (the scan cost the optimization amortizes).
func RunSafeRegionStudy(st Settings, customers, samplesPerCustomer int) ([]SafeRegionPoint, error) {
	if customers <= 0 {
		customers = 20
	}
	if samplesPerCustomer <= 0 {
		samplesPerCustomer = 500
	}
	vendorCounts := []int{100, 500, 2000}
	var out []SafeRegionPoint
	for _, n := range vendorCounts {
		p, err := workload.Synthetic(workload.Config{
			Customers: 1, // vendors are all we need
			Vendors:   n,
			Budget:    st.Budget,
			Radius:    st.Radius,
			Capacity:  st.Capacity,
			ViewProb:  st.ViewProb,
			Seed:      st.Seed,
		})
		if err != nil {
			return nil, err
		}
		rng := stats.NewRand(st.Seed + int64(n))
		pt := SafeRegionPoint{Vendors: n, Customers: customers}

		type walk struct {
			tr *mobility.Trajectory
			dt float64
		}
		walks := make([]walk, customers)
		for c := range walks {
			tr, err := mobility.RandomWaypoint(rng, geo.UnitSquare, 6, 3, 0)
			if err != nil {
				return nil, err
			}
			span := tr.End() - tr.Start()
			dt := span / float64(samplesPerCustomer)
			if dt <= 0 {
				dt = 1e-6
			}
			walks[c] = walk{tr: tr, dt: dt}
		}

		start := time.Now()
		for _, w := range walks {
			tk := mobility.NewTracker(p.Vendors)
			for at := w.tr.Start(); at <= w.tr.End(); at += w.dt {
				tk.Update(w.tr.At(at))
			}
			u, r := tk.Counters()
			pt.Samples += u
			pt.Recomputes += r
		}
		pt.TrackerTime = time.Since(start)

		start = time.Now()
		for _, w := range walks {
			for at := w.tr.Start(); at <= w.tr.End(); at += w.dt {
				mobility.ComputeSafeRegion(w.tr.At(at), p.Vendors)
			}
		}
		pt.NaiveTime = time.Since(start)

		if pt.Samples > 0 {
			pt.SavedPercent = 100 * (1 - float64(pt.Recomputes)/float64(pt.Samples))
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderSafeRegionStudy writes the A5 report.
func RenderSafeRegionStudy(w io.Writer, points []SafeRegionPoint) error {
	if _, err := fmt.Fprintln(w, "A5 — Safe-Region Tracking for Moving Customers (vs recompute-per-sample)"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w,
			"n=%-5d customers=%d samples=%d scans=%d saved=%.1f%%  tracker=%v naive=%v\n",
			p.Vendors, p.Customers, p.Samples, p.Recomputes, p.SavedPercent,
			p.TrackerTime.Round(time.Millisecond), p.NaiveTime.Round(time.Millisecond)); err != nil {
			return err
		}
	}
	return nil
}
