// Package experiment is the harness regenerating every table and figure of
// the paper's evaluation (Section V): per-figure parameter sweeps over the
// real-data-style (simulated check-in) and synthetic workloads, running
// RANDOM / NEAREST / GREEDY / RECON / ONLINE and reporting overall utility
// and CPU time per knob setting — the same two panels each figure plots.
// DESIGN.md §5 maps experiment IDs to runners; EXPERIMENTS.md records the
// measured outcomes against the paper's shapes.
package experiment

import (
	"fmt"

	"muaa/internal/stats"
)

// Settings are the default experiment parameters (the paper's Table IV
// defaults as far as the text states them; see DESIGN.md §5). Every sweep
// starts from DefaultSettings and varies exactly one knob.
type Settings struct {
	Customers int
	Vendors   int
	Budget    stats.Range
	Radius    stats.Range
	Capacity  stats.Range
	ViewProb  stats.Range
	// G is the O-AFA threshold base g (> e); 0 selects the paper's tuning
	// rule g = e·γ_max/γ_min estimated per problem instance.
	G float64
	// Seed drives workload generation and every randomized solver.
	Seed int64
}

// DefaultSettings returns the paper's default configuration.
func DefaultSettings() Settings {
	return Settings{
		Customers: 10000,
		Vendors:   500,
		Budget:    stats.Range{Lo: 10, Hi: 20},
		Radius:    stats.Range{Lo: 0.02, Hi: 0.03},
		Capacity:  stats.Range{Lo: 1, Hi: 6},
		ViewProb:  stats.Range{Lo: 0.1, Hi: 0.5},
		G:         0, // auto: g = e·γ_max/γ_min per instance
		Seed:      42,
	}
}

// Scale shrinks entity counts by factor f (for tests and laptop-quick
// benches) without touching the per-entity ranges. Counts keep a floor so a
// scaled experiment still exercises every code path.
func (s Settings) Scale(f float64) Settings {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("experiment: scale %g outside (0,1]", f))
	}
	s.Customers = maxInt(20, int(float64(s.Customers)*f))
	s.Vendors = maxInt(5, int(float64(s.Vendors)*f))
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// The per-figure knob lists, verbatim from Section V-B/V-C.
var (
	// Fig3Budgets: effect of the range [B−, B+] of vendor budgets.
	Fig3Budgets = []stats.Range{{Lo: 1, Hi: 5}, {Lo: 5, Hi: 10}, {Lo: 10, Hi: 20}, {Lo: 20, Hi: 30}, {Lo: 30, Hi: 40}, {Lo: 40, Hi: 50}}
	// Fig4Radii: effect of the range [r−, r+] of vendor areas.
	Fig4Radii = []stats.Range{{Lo: 0.01, Hi: 0.02}, {Lo: 0.02, Hi: 0.03}, {Lo: 0.03, Hi: 0.04}, {Lo: 0.04, Hi: 0.05}}
	// Fig5Capacities: effect of the range [a−, a+] of customer capacities.
	Fig5Capacities = []stats.Range{{Lo: 1, Hi: 4}, {Lo: 1, Hi: 6}, {Lo: 1, Hi: 8}, {Lo: 1, Hi: 10}}
	// Fig6ViewProbs: effect of the range [p−, p+] of viewing probabilities.
	Fig6ViewProbs = []stats.Range{{Lo: 0.1, Hi: 0.3}, {Lo: 0.1, Hi: 0.5}, {Lo: 0.1, Hi: 0.7}, {Lo: 0.1, Hi: 0.9}}
	// Fig7Customers: effect of the number m of customers (synthetic).
	Fig7Customers = []int{4000, 10000, 25000, 50000, 100000}
	// Fig8Vendors: effect of the number n of vendors (synthetic).
	Fig8Vendors = []int{300, 500, 1000, 1500, 2000}
	// AblationGs: the g multiples (of e) for the A2 ablation.
	AblationGs = []float64{1.1, 2, 4, 8, 16}
)
