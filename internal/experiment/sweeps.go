package experiment

import (
	"fmt"

	"muaa/internal/checkin"
	"muaa/internal/model"
	"muaa/internal/stats"
	"muaa/internal/workload"
)

// realData builds the simulated Foursquare dataset backing the "real data"
// figures (3–6), sized to support the settings after the paper's ≥10
// check-ins filter: every sweep point converts the same dataset with its own
// knob ranges, mirroring how the paper re-initializes budgets/radii per
// experiment over one fixed check-in corpus.
func realData(st Settings) (*checkin.Dataset, error) {
	users := maxInt(50, st.Customers/100)
	venues := maxInt(60, st.Vendors*3)
	// Enough check-ins that the filter keeps ~st.Vendors venues and ≥
	// st.Customers records survive.
	records := maxInt(30*venues/2, st.Customers*2)
	ds, err := checkin.Generate(checkin.Config{
		Users:    users,
		Venues:   venues,
		Checkins: records,
		Seed:     st.Seed,
	})
	if err != nil {
		return nil, err
	}
	return ds.FilterMinCheckins(10), nil
}

// realProblem converts the dataset under the settings' ranges.
func realProblem(ds *checkin.Dataset, st Settings, seed int64) (*model.Problem, error) {
	return checkin.ToProblem(ds, checkin.ProblemConfig{
		Budget:       st.Budget,
		Radius:       st.Radius,
		Capacity:     st.Capacity,
		ViewProb:     st.ViewProb,
		MaxCustomers: st.Customers,
		MaxVendors:   st.Vendors,
		Seed:         seed,
	})
}

// rangeSweep runs one real-data figure: vary pick(st) over knobs, keep the
// rest of the settings fixed.
func rangeSweep(id, title, xlabel string, st Settings, workers int,
	knobs []stats.Range, apply func(*Settings, stats.Range)) (Series, error) {
	ds, err := realData(st)
	if err != nil {
		return Series{}, err
	}
	points, err := sweep(len(knobs), workers, func(i int) (Point, error) {
		cfg := st
		apply(&cfg, knobs[i])
		// Same conversion seed at every point: only the knob varies, so the
		// sampled customer subset and the non-knob attribute draws line up
		// across points as closely as rejection sampling allows.
		p, err := realProblem(ds, cfg, st.Seed)
		if err != nil {
			return Point{}, err
		}
		ms, err := runSolvers(p, defaultSolvers(cfg))
		if err != nil {
			return Point{}, err
		}
		return Point{Label: knobs[i].String(), X: knobs[i].Hi, Measurements: ms}, nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{ID: id, Title: title, XLabel: xlabel, Points: points}, nil
}

// RunBudgetSweep regenerates Figure 3: effect of the vendor-budget range
// [B−, B+] on utility and running time over the (simulated) real data.
func RunBudgetSweep(st Settings, workers int) (Series, error) {
	return rangeSweep("Fig3", "Effect of the Range [B−, B+] of Budgets (Real Data)",
		"[B−, B+]", st, workers, Fig3Budgets,
		func(s *Settings, r stats.Range) { s.Budget = r })
}

// RunRadiusSweep regenerates Figure 4: effect of the vendor-radius range.
func RunRadiusSweep(st Settings, workers int) (Series, error) {
	return rangeSweep("Fig4", "Effect of the Range [r−, r+] of Areas of Vendors (Real Data)",
		"[r−, r+]", st, workers, Fig4Radii,
		func(s *Settings, r stats.Range) { s.Radius = r })
}

// RunCapacitySweep regenerates Figure 5: effect of the customer-capacity
// range. Following the paper ("we select 5,000 vendors and 500 customers to
// test the effect of the upper bounds of the customer capacities"), the
// vendor count is scaled up 10× and the customer count down 20× relative to
// the defaults so capacities actually bind.
func RunCapacitySweep(st Settings, workers int) (Series, error) {
	st.Vendors *= 10
	st.Customers = maxInt(20, st.Customers/20)
	return rangeSweep("Fig5", "Effect of the Range [a−, a+] of Customer Capacities (Real Data)",
		"[a−, a+]", st, workers, Fig5Capacities,
		func(s *Settings, r stats.Range) { s.Capacity = r })
}

// RunProbabilitySweep regenerates Figure 6: effect of the viewing-
// probability range.
func RunProbabilitySweep(st Settings, workers int) (Series, error) {
	return rangeSweep("Fig6", "Effect of the Range [p−, p+] of Probabilities of Viewing Ads (Real Data)",
		"[p−, p+]", st, workers, Fig6ViewProbs,
		func(s *Settings, r stats.Range) { s.ViewProb = r })
}

// RunCustomerScaling regenerates Figure 7: effect of the number m of
// customers on synthetic data. sizes scale with st.Customers so a scaled
// Settings produces a proportionally scaled sweep.
func RunCustomerScaling(st Settings, workers int) (Series, error) {
	base := DefaultSettings()
	points, err := sweep(len(Fig7Customers), workers, func(i int) (Point, error) {
		cfg := st
		// Scale the paper's m list by the ratio of the caller's settings to
		// the defaults (1.0 at full scale).
		cfg.Customers = maxInt(20, Fig7Customers[i]*st.Customers/base.Customers)
		p, err := workload.Synthetic(workload.Config{
			Customers: cfg.Customers,
			Vendors:   cfg.Vendors,
			Budget:    cfg.Budget,
			Radius:    cfg.Radius,
			Capacity:  cfg.Capacity,
			ViewProb:  cfg.ViewProb,
			Seed:      st.Seed,
		})
		if err != nil {
			return Point{}, err
		}
		ms, err := runSolvers(p, defaultSolvers(cfg))
		if err != nil {
			return Point{}, err
		}
		return Point{Label: fmt.Sprintf("%d", cfg.Customers), X: float64(cfg.Customers), Measurements: ms}, nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{ID: "Fig7", Title: "Effect of the Number m of Customers (Synthetic Data)",
		XLabel: "m", Points: points}, nil
}

// RunVendorScaling regenerates Figure 8: effect of the number n of vendors
// on synthetic data.
func RunVendorScaling(st Settings, workers int) (Series, error) {
	base := DefaultSettings()
	points, err := sweep(len(Fig8Vendors), workers, func(i int) (Point, error) {
		cfg := st
		cfg.Vendors = maxInt(5, Fig8Vendors[i]*st.Vendors/base.Vendors)
		p, err := workload.Synthetic(workload.Config{
			Customers: cfg.Customers,
			Vendors:   cfg.Vendors,
			Budget:    cfg.Budget,
			Radius:    cfg.Radius,
			Capacity:  cfg.Capacity,
			ViewProb:  cfg.ViewProb,
			Seed:      st.Seed,
		})
		if err != nil {
			return Point{}, err
		}
		ms, err := runSolvers(p, defaultSolvers(cfg))
		if err != nil {
			return Point{}, err
		}
		return Point{Label: fmt.Sprintf("%d", cfg.Vendors), X: float64(cfg.Vendors), Measurements: ms}, nil
	})
	if err != nil {
		return Series{}, err
	}
	return Series{ID: "Fig8", Title: "Effect of the Number n of Vendors (Synthetic Data)",
		XLabel: "n", Points: points}, nil
}
