package experiment

import (
	"fmt"
	"io"
	"text/tabwriter"

	"muaa/internal/simulate"
)

// RunTuningStudy (A7) runs the multi-day threshold-tuning simulation of
// Section IV-C: day 0 cold-starts with no γ estimate, later days run with
// γ/g tuned from the accumulated observation history. Entity counts scale
// with the settings.
func RunTuningStudy(st Settings, days int) ([]simulate.DayResult, error) {
	if days <= 0 {
		days = 10
	}
	return simulate.Run(simulate.Config{
		Days:            days,
		CustomersPerDay: maxInt(100, st.Customers/5),
		Vendors:         maxInt(10, st.Vendors/5),
		Seed:            st.Seed,
	})
}

// RenderTuningStudy writes the A7 report, including a sparkline of the
// online/offline utility ratio across days.
func RenderTuningStudy(w io.Writer, results []simulate.DayResult) error {
	if _, err := fmt.Fprintln(w, "A7 — Day-over-Day Threshold Tuning (Section IV-C simulation)"); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "day\tONLINE utility\tads\tγ_min\tg\tGREEDY hindsight\tONLINE/GREEDY")
	ratios := make([]float64, 0, len(results))
	for _, r := range results {
		ratio := 0.0
		if r.OfflineUtility > 0 {
			ratio = r.Utility / r.OfflineUtility
		}
		ratios = append(ratios, ratio)
		fmt.Fprintf(tw, "%d\t%.2f\t%d\t%.5f\t%.1f\t%.2f\t%.3f\n",
			r.Day, r.Utility, r.Ads, r.GammaMin, r.G, r.OfflineUtility, ratio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "ONLINE/GREEDY by day: %s (day 0 is the cold start)\n", Sparkline(ratios))
	return err
}
