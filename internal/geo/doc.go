// Package geo provides the planar geometry primitives used throughout the
// MUAA system: points in the unit square, Euclidean distances, axis-aligned
// rectangles, and a uniform-grid spatial index answering the two range
// queries every assignment algorithm needs — "which vendors' advertising
// disks cover this customer?" and "which customers lie inside this vendor's
// disk?".
//
// The paper's data space is [0,1]² (both the remapped Foursquare check-ins
// and the synthetic workloads live there), so a uniform grid is the right
// index: cell occupancy is near-uniform for vendors and the disk radii are
// small (0.01–0.05), making candidate sets tiny. A k-d tree (kdtree.go)
// answers the same queries for comparison; ablation A8 races the two.
//
// Two structures serve the concurrent broker specifically:
//
//   - Stripes (stripes.go) partitions a Rect into equal-height horizontal
//     bands. The broker shards campaign state by stripe, and the contiguous
//     band interval Range returns for a query disk doubles as its
//     deadlock-free lock-acquisition order (DESIGN.md §8).
//   - Grid.InsertWithRadius indexes a disk by its center so CoveredBy can
//     answer "which disks cover this point" per shard.
//
// Nothing in this package is concurrency-aware itself: Stripes is
// immutable, and a Grid is guarded by whoever owns it (each broker shard
// guards its own).
package geo
