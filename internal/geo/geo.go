package geo

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D data space. The paper maps all coordinates
// into [0,1]², but nothing in this package requires that except the grid
// index, which clamps out-of-range queries to its configured bounds.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. Comparisons
// against radii use Dist2 to avoid the square root on the hot path.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// In reports whether p lies inside the closed disk of radius r centred at c.
func (p Point) In(c Point, r float64) bool {
	return p.Dist2(c) <= r*r
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y)
}

// Rect is a closed axis-aligned rectangle.
type Rect struct {
	Min, Max Point
}

// UnitSquare is the paper's data space.
var UnitSquare = Rect{Min: Point{0, 0}, Max: Point{1, 1}}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Clamp returns the point inside r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}
