package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 2}, 1},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0.5, 0.5}, Point{0.5, 0.5}, 0},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
		if got := c.q.Dist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %g, want %g (symmetry)", c.q, c.p, got, c.want)
		}
	}
}

func TestDist2MatchesDistSquared(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := Point{clampUnit(ax), clampUnit(ay)}, Point{clampUnit(bx), clampUnit(by)}
		d := p.Dist(q)
		return math.Abs(p.Dist2(q)-d*d) <= 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Point{clampUnit(ax), clampUnit(ay)}
		b := Point{clampUnit(bx), clampUnit(by)}
		c := Point{clampUnit(cx), clampUnit(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointIn(t *testing.T) {
	c := Point{0.5, 0.5}
	if !(Point{0.5, 0.6}).In(c, 0.1) {
		t.Error("boundary point should be inside the closed disk")
	}
	if (Point{0.5, 0.61}).In(c, 0.1) {
		t.Error("point just outside should not be inside")
	}
	if !c.In(c, 0) {
		t.Error("center is in the zero-radius disk")
	}
}

func TestRectContainsAndClamp(t *testing.T) {
	r := Rect{Point{0, 0}, Point{1, 2}}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{1, 2}) || !r.Contains(Point{0.5, 1}) {
		t.Error("boundary and interior points must be contained")
	}
	if r.Contains(Point{1.01, 1}) || r.Contains(Point{0.5, -0.01}) {
		t.Error("exterior points must not be contained")
	}
	if got := r.Clamp(Point{-1, 5}); got != (Point{0, 2}) {
		t.Errorf("Clamp = %v, want (0,2)", got)
	}
	if got := r.Clamp(Point{0.3, 0.7}); got != (Point{0.3, 0.7}) {
		t.Errorf("Clamp of interior point must be identity, got %v", got)
	}
	if r.Width() != 1 || r.Height() != 2 {
		t.Errorf("Width/Height = %g/%g, want 1/2", r.Width(), r.Height())
	}
}

func TestClampedPointAlwaysContained(t *testing.T) {
	r := Rect{Point{0.2, 0.3}, Point{0.8, 0.9}}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		return r.Contains(r.Clamp(Point{x, y}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampUnit squashes an arbitrary quick-generated float into [0,1], mapping
// non-finite values to 0.5 so geometric identities stay numerically honest.
func clampUnit(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0.5
	}
	v = math.Mod(math.Abs(v), 1)
	return v
}
