package geo

import (
	"fmt"
	"math"
)

// Grid is a uniform-grid spatial index over a fixed set of points. Each
// point is identified by the integer ID supplied at insertion time (the
// caller's customer or vendor index). The grid supports the two queries the
// MUAA algorithms need:
//
//   - Within(center, r): IDs of indexed points inside the closed disk —
//     used by RECON to find a vendor's valid customers;
//   - CoveredBy(p, radii): IDs of indexed points (vendors) whose per-point
//     disk of radius radii[id] covers p — used by the online algorithms to
//     find the vendors an arriving customer is eligible for.
//
// The zero value is not usable; construct with NewGrid. Grid is safe for
// concurrent readers once built; Insert must not race with queries.
type Grid struct {
	bounds   Rect
	cellsX   int
	cellsY   int
	cellW    float64
	cellH    float64
	cells    [][]int32 // cell -> point IDs
	pts      map[int32]Point
	maxR     float64 // largest per-point radius seen by InsertWithRadius
	hasRadii bool
	radii    map[int32]float64
}

// NewGrid creates an empty index over bounds with cells×cells resolution.
// cells must be at least 1. For the paper's workloads (radii 0.01–0.05 in the
// unit square) a 64×64 grid keeps candidate sets small; see GridResolution
// for a heuristic.
func NewGrid(bounds Rect, cells int) *Grid {
	if cells < 1 {
		panic(fmt.Sprintf("geo: grid resolution %d < 1", cells))
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic(fmt.Sprintf("geo: degenerate grid bounds %+v", bounds))
	}
	return &Grid{
		bounds: bounds,
		cellsX: cells,
		cellsY: cells,
		cellW:  bounds.Width() / float64(cells),
		cellH:  bounds.Height() / float64(cells),
		cells:  make([][]int32, cells*cells),
		pts:    make(map[int32]Point),
		radii:  make(map[int32]float64),
	}
}

// GridResolution suggests a grid size for n points with typical query radius
// r inside the unit square: cells sized near the query radius keep the
// scanned area proportional to the disk, capped to avoid pathological memory
// use for tiny radii.
func GridResolution(n int, r float64) int {
	if r <= 0 {
		r = 0.01
	}
	cells := int(math.Ceil(1 / r))
	if byCount := int(math.Ceil(math.Sqrt(float64(n + 1)))); cells > 4*byCount {
		cells = 4 * byCount
	}
	if cells < 1 {
		cells = 1
	}
	if cells > 512 {
		cells = 512
	}
	return cells
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Bounds returns the indexed region.
func (g *Grid) Bounds() Rect { return g.bounds }

func (g *Grid) cellOf(p Point) (cx, cy int) {
	p = g.bounds.Clamp(p)
	cx = int((p.X - g.bounds.Min.X) / g.cellW)
	cy = int((p.Y - g.bounds.Min.Y) / g.cellH)
	if cx >= g.cellsX {
		cx = g.cellsX - 1
	}
	if cy >= g.cellsY {
		cy = g.cellsY - 1
	}
	return cx, cy
}

// Insert adds a point with the given ID. Inserting the same ID twice panics:
// IDs are the caller's dense indexes and a duplicate indicates a bug.
func (g *Grid) Insert(id int32, p Point) {
	if _, dup := g.pts[id]; dup {
		panic(fmt.Sprintf("geo: duplicate insert of id %d", id))
	}
	g.pts[id] = p
	cx, cy := g.cellOf(p)
	idx := cy*g.cellsX + cx
	g.cells[idx] = append(g.cells[idx], id)
}

// InsertWithRadius adds a point that owns a disk of radius r (a vendor and
// its advertising range). Points inserted this way participate in CoveredBy
// queries.
func (g *Grid) InsertWithRadius(id int32, p Point, r float64) {
	if r < 0 {
		panic(fmt.Sprintf("geo: negative radius %g for id %d", r, id))
	}
	g.Insert(id, p)
	g.radii[id] = r
	g.hasRadii = true
	if r > g.maxR {
		g.maxR = r
	}
}

// Point returns the location stored for id and whether it exists.
func (g *Grid) Point(id int32) (Point, bool) {
	p, ok := g.pts[id]
	return p, ok
}

// cellRange returns the inclusive cell-coordinate window intersecting the
// square circumscribing the disk (center, r).
func (g *Grid) cellRange(center Point, r float64) (x0, y0, x1, y1 int) {
	x0, y0 = g.cellOf(Point{center.X - r, center.Y - r})
	x1, y1 = g.cellOf(Point{center.X + r, center.Y + r})
	return x0, y0, x1, y1
}

// Within appends to dst the IDs of indexed points p with Dist(p, center) ≤ r
// and returns the extended slice. Results are in unspecified order; pass a
// reusable dst to avoid allocation on hot paths.
func (g *Grid) Within(dst []int32, center Point, r float64) []int32 {
	if r < 0 {
		return dst
	}
	r2 := r * r
	x0, y0, x1, y1 := g.cellRange(center, r)
	for cy := y0; cy <= y1; cy++ {
		row := cy * g.cellsX
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[row+cx] {
				if g.pts[id].Dist2(center) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// CoveredBy appends to dst the IDs of indexed points whose own disk (as given
// to InsertWithRadius) covers p, and returns the extended slice. Points
// inserted without a radius are never returned.
func (g *Grid) CoveredBy(dst []int32, p Point) []int32 {
	if !g.hasRadii {
		return dst
	}
	// Any covering point is within maxR of p, so scan that window only.
	x0, y0, x1, y1 := g.cellRange(p, g.maxR)
	for cy := y0; cy <= y1; cy++ {
		row := cy * g.cellsX
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[row+cx] {
				r, ok := g.radii[id]
				if !ok {
					continue
				}
				if g.pts[id].Dist2(p) <= r*r {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// Nearest returns the ID of the indexed point closest to p and its distance.
// The second result is false when the grid is empty. Ties break toward the
// smaller ID so results are deterministic.
func (g *Grid) Nearest(p Point) (int32, float64, bool) {
	if len(g.pts) == 0 {
		return 0, 0, false
	}
	best := int32(-1)
	bestD2 := math.Inf(1)
	// Expand the search ring by ring until a hit is found, then one more
	// ring to be safe (a closer point can sit in the next ring's corner).
	cx, cy := g.cellOf(p)
	maxRing := g.cellsX
	if g.cellsY > maxRing {
		maxRing = g.cellsY
	}
	foundRing := -1
	for ring := 0; ring <= maxRing; ring++ {
		if foundRing >= 0 && ring > foundRing+1 {
			break
		}
		hit := g.scanRing(p, cx, cy, ring, &best, &bestD2)
		if hit && foundRing < 0 {
			foundRing = ring
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, math.Sqrt(bestD2), true
}

// scanRing examines the square ring of cells at Chebyshev distance ring from
// (cx, cy), updating best/bestD2; reports whether any candidate was seen.
func (g *Grid) scanRing(p Point, cx, cy, ring int, best *int32, bestD2 *float64) bool {
	seen := false
	visit := func(x, y int) {
		if x < 0 || x >= g.cellsX || y < 0 || y >= g.cellsY {
			return
		}
		for _, id := range g.cells[y*g.cellsX+x] {
			seen = true
			d2 := g.pts[id].Dist2(p)
			if d2 < *bestD2 || (d2 == *bestD2 && id < *best) {
				*best, *bestD2 = id, d2
			}
		}
	}
	if ring == 0 {
		visit(cx, cy)
		return seen
	}
	for x := cx - ring; x <= cx+ring; x++ {
		visit(x, cy-ring)
		visit(x, cy+ring)
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		visit(cx-ring, y)
		visit(cx+ring, y)
	}
	return seen
}

// KNearest returns the IDs of the k points closest to p, ordered by
// increasing distance (ties toward smaller ID). It returns fewer than k IDs
// when the grid holds fewer points. The implementation scans outward by
// rings, stopping once the k-th best distance is closed off by ring geometry.
func (g *Grid) KNearest(p Point, k int) []int32 {
	if k <= 0 || len(g.pts) == 0 {
		return nil
	}
	var cands []distCand
	cx, cy := g.cellOf(p)
	maxRing := g.cellsX
	if g.cellsY > maxRing {
		maxRing = g.cellsY
	}
	cellMin := math.Min(g.cellW, g.cellH)
	for ring := 0; ring <= maxRing; ring++ {
		if len(cands) >= k {
			// A point in a farther ring is at least (ring-1)*cellMin away;
			// stop when that exceeds the current k-th distance.
			kth := kthD2(cands, k)
			if d := float64(ring-1) * cellMin; d > 0 && d*d > kth {
				break
			}
		}
		g.collectRing(p, cx, cy, ring, func(id int32, d2 float64) {
			cands = append(cands, distCand{id, d2})
		})
	}
	sortCands := func(a, b distCand) bool {
		if a.d2 != b.d2 {
			return a.d2 < b.d2
		}
		return a.id < b.id
	}
	// Insertion sort is fine: candidate sets are tiny for grid-scale queries.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && sortCands(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int32, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// distCand pairs a point ID with its squared distance from a query point.
type distCand struct {
	id int32
	d2 float64
}

func kthD2(cands []distCand, k int) float64 {
	// Selection over tiny slices; k is small in every caller.
	worst := math.Inf(-1)
	cnt := 0
	used := make([]bool, len(cands))
	for cnt < k && cnt < len(cands) {
		bi, bd := -1, math.Inf(1)
		for i, c := range cands {
			if !used[i] && c.d2 < bd {
				bi, bd = i, c.d2
			}
		}
		used[bi] = true
		worst = bd
		cnt++
	}
	return worst
}

func (g *Grid) collectRing(p Point, cx, cy, ring int, emit func(int32, float64)) {
	visit := func(x, y int) {
		if x < 0 || x >= g.cellsX || y < 0 || y >= g.cellsY {
			return
		}
		for _, id := range g.cells[y*g.cellsX+x] {
			emit(id, g.pts[id].Dist2(p))
		}
	}
	if ring == 0 {
		visit(cx, cy)
		return
	}
	for x := cx - ring; x <= cx+ring; x++ {
		visit(x, cy-ring)
		visit(x, cy+ring)
	}
	for y := cy - ring + 1; y <= cy+ring-1; y++ {
		visit(cx-ring, y)
		visit(cx+ring, y)
	}
}
