package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(r *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{r.Float64(), r.Float64()}
	}
	return pts
}

func buildGrid(pts []Point, cells int) *Grid {
	g := NewGrid(UnitSquare, cells)
	for i, p := range pts {
		g.Insert(int32(i), p)
	}
	return g
}

func bruteWithin(pts []Point, c Point, r float64) []int32 {
	var out []int32
	for i, p := range pts {
		if p.Dist2(c) <= r*r {
			out = append(out, int32(i))
		}
	}
	return out
}

func sortIDs(ids []int32) []int32 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 10, 200, 1000} {
		for _, cells := range []int{1, 4, 32, 100} {
			pts := randomPoints(r, n)
			g := buildGrid(pts, cells)
			for trial := 0; trial < 25; trial++ {
				c := Point{r.Float64(), r.Float64()}
				radius := r.Float64() * 0.3
				got := sortIDs(g.Within(nil, c, radius))
				want := sortIDs(bruteWithin(pts, c, radius))
				if !equalIDs(got, want) {
					t.Fatalf("n=%d cells=%d Within(%v, %g): got %v want %v", n, cells, c, radius, got, want)
				}
			}
		}
	}
}

func TestGridWithinNegativeRadius(t *testing.T) {
	g := buildGrid([]Point{{0.5, 0.5}}, 8)
	if got := g.Within(nil, Point{0.5, 0.5}, -1); len(got) != 0 {
		t.Errorf("negative radius should match nothing, got %v", got)
	}
}

func TestGridWithinReusesDst(t *testing.T) {
	g := buildGrid([]Point{{0.5, 0.5}, {0.9, 0.9}}, 8)
	dst := make([]int32, 0, 4)
	dst = append(dst, 99)
	got := g.Within(dst, Point{0.5, 0.5}, 0.01)
	if len(got) != 2 || got[0] != 99 || got[1] != 0 {
		t.Errorf("Within must append to dst, got %v", got)
	}
}

func TestGridCoveredByMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 50, 500} {
		pts := randomPoints(r, n)
		radii := make([]float64, n)
		g := NewGrid(UnitSquare, 32)
		for i, p := range pts {
			radii[i] = r.Float64() * 0.1
			g.InsertWithRadius(int32(i), p, radii[i])
		}
		for trial := 0; trial < 25; trial++ {
			q := Point{r.Float64(), r.Float64()}
			var want []int32
			for i, p := range pts {
				if p.Dist2(q) <= radii[i]*radii[i] {
					want = append(want, int32(i))
				}
			}
			got := sortIDs(g.CoveredBy(nil, q))
			if !equalIDs(got, sortIDs(want)) {
				t.Fatalf("n=%d CoveredBy(%v): got %v want %v", n, q, got, want)
			}
		}
	}
}

func TestGridCoveredByIgnoresRadiusless(t *testing.T) {
	g := NewGrid(UnitSquare, 8)
	g.Insert(0, Point{0.5, 0.5})                  // no radius: never covers
	g.InsertWithRadius(1, Point{0.5, 0.5}, 0.2)   // covers nearby queries
	g.InsertWithRadius(2, Point{0.9, 0.9}, 0.001) // too far
	got := sortIDs(g.CoveredBy(nil, Point{0.55, 0.5}))
	if !equalIDs(got, []int32{1}) {
		t.Errorf("CoveredBy = %v, want [1]", got)
	}
}

func TestGridNearest(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 17, 300} {
		pts := randomPoints(r, n)
		g := buildGrid(pts, 16)
		for trial := 0; trial < 40; trial++ {
			q := Point{r.Float64(), r.Float64()}
			id, d, ok := g.Nearest(q)
			if !ok {
				t.Fatalf("Nearest on non-empty grid reported no result")
			}
			bestD := math.Inf(1)
			for _, p := range pts {
				if dd := p.Dist(q); dd < bestD {
					bestD = dd
				}
			}
			if math.Abs(d-bestD) > 1e-9 {
				t.Fatalf("n=%d Nearest(%v) id=%d d=%g, brute force d=%g", n, q, id, d, bestD)
			}
			if got := pts[id].Dist(q); math.Abs(got-bestD) > 1e-9 {
				t.Fatalf("Nearest returned id %d at distance %g, want %g", id, got, bestD)
			}
		}
	}
}

func TestGridNearestEmpty(t *testing.T) {
	g := NewGrid(UnitSquare, 4)
	if _, _, ok := g.Nearest(Point{0.5, 0.5}); ok {
		t.Error("Nearest on empty grid must report !ok")
	}
}

func TestGridKNearestMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := randomPoints(r, 120)
	g := buildGrid(pts, 16)
	for trial := 0; trial < 30; trial++ {
		q := Point{r.Float64(), r.Float64()}
		for _, k := range []int{1, 3, 7, 120, 500} {
			got := g.KNearest(q, k)
			idx := make([]int32, len(pts))
			for i := range idx {
				idx[i] = int32(i)
			}
			sort.Slice(idx, func(a, b int) bool {
				da, db := pts[idx[a]].Dist2(q), pts[idx[b]].Dist2(q)
				if da != db {
					return da < db
				}
				return idx[a] < idx[b]
			})
			wantLen := k
			if wantLen > len(pts) {
				wantLen = len(pts)
			}
			want := idx[:wantLen]
			if len(got) != wantLen {
				t.Fatalf("k=%d: got %d ids, want %d", k, len(got), wantLen)
			}
			for i := range got {
				// Compare by distance (ids may legitimately differ on exact ties).
				dg := pts[got[i]].Dist2(q)
				dw := pts[want[i]].Dist2(q)
				if math.Abs(dg-dw) > 1e-12 {
					t.Fatalf("k=%d pos=%d: got id %d (d2=%g) want id %d (d2=%g)", k, i, got[i], dg, want[i], dw)
				}
			}
		}
	}
}

func TestGridKNearestDegenerate(t *testing.T) {
	g := NewGrid(UnitSquare, 4)
	if got := g.KNearest(Point{0.5, 0.5}, 3); got != nil {
		t.Errorf("KNearest on empty grid = %v, want nil", got)
	}
	g.Insert(0, Point{0.1, 0.1})
	if got := g.KNearest(Point{0.5, 0.5}, 0); got != nil {
		t.Errorf("KNearest k=0 = %v, want nil", got)
	}
}

func TestGridDuplicateInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Insert must panic")
		}
	}()
	g := NewGrid(UnitSquare, 4)
	g.Insert(1, Point{0.1, 0.1})
	g.Insert(1, Point{0.2, 0.2})
}

func TestNewGridValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero cells", func() { NewGrid(UnitSquare, 0) })
	mustPanic("degenerate bounds", func() { NewGrid(Rect{Point{0, 0}, Point{0, 1}}, 4) })
	mustPanic("negative radius", func() {
		g := NewGrid(UnitSquare, 4)
		g.InsertWithRadius(0, Point{0.5, 0.5}, -0.1)
	})
}

func TestGridResolution(t *testing.T) {
	if got := GridResolution(1000, 0.02); got < 1 || got > 512 {
		t.Errorf("GridResolution out of bounds: %d", got)
	}
	if got := GridResolution(10, 0); got < 1 {
		t.Errorf("GridResolution with zero radius = %d", got)
	}
	if got := GridResolution(4, 1e-9); got > 512 {
		t.Errorf("GridResolution must cap at 512, got %d", got)
	}
}

func TestGridPointLookup(t *testing.T) {
	g := buildGrid([]Point{{0.25, 0.75}}, 4)
	if p, ok := g.Point(0); !ok || p != (Point{0.25, 0.75}) {
		t.Errorf("Point(0) = %v,%v", p, ok)
	}
	if _, ok := g.Point(42); ok {
		t.Error("Point on unknown id must report !ok")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if g.Bounds() != UnitSquare {
		t.Errorf("Bounds = %v", g.Bounds())
	}
}

func TestGridQueryOutsideBounds(t *testing.T) {
	// Queries outside the indexed region must not panic and must still find
	// in-bounds points within range.
	g := buildGrid([]Point{{0.01, 0.01}}, 8)
	got := g.Within(nil, Point{-0.05, -0.05}, 0.2)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("out-of-bounds query missed in-range point: %v", got)
	}
}
