package geo

import (
	"fmt"
	"math"
	"sort"
)

// KDTree is a static 2-d tree over a fixed point set — the alternative to
// Grid for the same three queries (Within, CoveredBy, KNearest). Grids win
// when points are near-uniform in a bounded box (the paper's workloads);
// k-d trees win under heavy clustering or unbounded coordinates, and need no
// resolution parameter. The index ablation benchmarks compare the two.
//
// Build with BuildKDTree; the tree is immutable and safe for concurrent
// readers.
type KDTree struct {
	ids   []int32
	pts   []Point
	radii []float64 // nil when built without radii
	maxR  float64
	// nodes[i] is the root of the subtree over order[lo:hi] stored in
	// recursive median layout; order holds permutation indices into pts.
	order []int
}

// BuildKDTree builds a tree over parallel id/point slices.
func BuildKDTree(ids []int32, pts []Point) *KDTree {
	return buildKD(ids, pts, nil)
}

// BuildKDTreeWithRadii builds a tree whose points own disks (vendors), so
// CoveredBy queries are answered. radii must parallel pts; negative radii
// panic.
func BuildKDTreeWithRadii(ids []int32, pts []Point, radii []float64) *KDTree {
	if len(radii) != len(pts) {
		panic(fmt.Sprintf("geo: %d radii for %d points", len(radii), len(pts)))
	}
	for i, r := range radii {
		if r < 0 || math.IsNaN(r) {
			panic(fmt.Sprintf("geo: radius %g at %d", r, i))
		}
	}
	return buildKD(ids, pts, radii)
}

func buildKD(ids []int32, pts []Point, radii []float64) *KDTree {
	if len(ids) != len(pts) {
		panic(fmt.Sprintf("geo: %d ids for %d points", len(ids), len(pts)))
	}
	t := &KDTree{
		ids:   append([]int32(nil), ids...),
		pts:   append([]Point(nil), pts...),
		order: make([]int, len(pts)),
	}
	if radii != nil {
		t.radii = append([]float64(nil), radii...)
		for _, r := range radii {
			if r > t.maxR {
				t.maxR = r
			}
		}
	}
	for i := range t.order {
		t.order[i] = i
	}
	t.build(0, len(t.order), 0)
	return t
}

// build arranges order[lo:hi] so the median by the split axis sits at the
// midpoint, recursively — an implicit balanced tree.
func (t *KDTree) build(lo, hi, depth int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	axis := depth % 2
	seg := t.order[lo:hi]
	sort.Slice(seg, func(a, b int) bool {
		pa, pb := t.pts[seg[a]], t.pts[seg[b]]
		if axis == 0 {
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return pa.Y < pb.Y
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return pa.X < pb.X
	})
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Within appends the IDs of points within the closed disk (center, r) to
// dst.
func (t *KDTree) Within(dst []int32, center Point, r float64) []int32 {
	if r < 0 || len(t.pts) == 0 {
		return dst
	}
	return t.within(dst, center, r*r, r, 0, len(t.order), 0)
}

func (t *KDTree) within(dst []int32, c Point, r2, r float64, lo, hi, depth int) []int32 {
	if hi <= lo {
		return dst
	}
	mid := (lo + hi) / 2
	idx := t.order[mid]
	p := t.pts[idx]
	if p.Dist2(c) <= r2 {
		dst = append(dst, t.ids[idx])
	}
	axis := depth % 2
	var coord, qc float64
	if axis == 0 {
		coord, qc = p.X, c.X
	} else {
		coord, qc = p.Y, c.Y
	}
	if qc-r <= coord {
		dst = t.within(dst, c, r2, r, lo, mid, depth+1)
	}
	if qc+r >= coord {
		dst = t.within(dst, c, r2, r, mid+1, hi, depth+1)
	}
	return dst
}

// CoveredBy appends the IDs of radius-bearing points whose disks cover p.
// Trees built without radii return dst unchanged.
func (t *KDTree) CoveredBy(dst []int32, p Point) []int32 {
	if t.radii == nil || len(t.pts) == 0 {
		return dst
	}
	// Any covering point lies within maxR of p; search that disk, filter by
	// each point's own radius.
	var cands []int32
	cands = t.Within(cands, p, t.maxR)
	for _, id := range cands {
		// ids may not be dense; find the point via linear map-back. Keep a
		// reverse index only if ids are dense 0..n-1 (the common case).
		i := t.indexOf(id)
		if t.pts[i].Dist2(p) <= t.radii[i]*t.radii[i] {
			dst = append(dst, id)
		}
	}
	return dst
}

// indexOf maps an id back to its slot. Dense 0..n-1 ids hit the O(1) fast
// path used by every caller in this repository.
func (t *KDTree) indexOf(id int32) int {
	if int(id) < len(t.ids) && t.ids[id] == id {
		return int(id)
	}
	for i, v := range t.ids {
		if v == id {
			return i
		}
	}
	panic(fmt.Sprintf("geo: id %d not in tree", id))
}

// KNearest returns up to k IDs ordered by increasing distance from p (ties
// toward smaller ID).
func (t *KDTree) KNearest(p Point, k int) []int32 {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	h := &kdHeap{}
	t.knn(p, k, h, 0, len(t.order), 0)
	// Extract in increasing order.
	out := make([]int32, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		out[i] = h.pop().id
	}
	return out
}

func (t *KDTree) knn(p Point, k int, h *kdHeap, lo, hi, depth int) {
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	idx := t.order[mid]
	pt := t.pts[idx]
	h.offer(t.ids[idx], pt.Dist2(p), k)
	axis := depth % 2
	var coord, qc float64
	if axis == 0 {
		coord, qc = pt.X, p.X
	} else {
		coord, qc = pt.Y, p.Y
	}
	var near, far [2]int // [lo, hi) ranges
	if qc <= coord {
		near = [2]int{lo, mid}
		far = [2]int{mid + 1, hi}
	} else {
		near = [2]int{mid + 1, hi}
		far = [2]int{lo, mid}
	}
	t.knn(p, k, h, near[0], near[1], depth+1)
	// Visit the far side only if the splitting plane is closer than the
	// current k-th distance (or the heap is not yet full).
	d := qc - coord
	if len(h.items) < k || d*d <= h.worst() {
		t.knn(p, k, h, far[0], far[1], depth+1)
	}
}

// kdHeap is a bounded max-heap by distance (ties by larger id at the top so
// smaller ids win on eviction).
type kdHeap struct {
	items []kdHeapItem
}

type kdHeapItem struct {
	id int32
	d2 float64
}

func (h *kdHeap) less(a, b int) bool {
	// Max-heap order: larger distance (then larger id) floats to the root.
	if h.items[a].d2 != h.items[b].d2 {
		return h.items[a].d2 > h.items[b].d2
	}
	return h.items[a].id > h.items[b].id
}

func (h *kdHeap) worst() float64 { return h.items[0].d2 }

func (h *kdHeap) offer(id int32, d2 float64, k int) {
	if len(h.items) < k {
		h.items = append(h.items, kdHeapItem{id, d2})
		h.up(len(h.items) - 1)
		return
	}
	root := h.items[0]
	if d2 > root.d2 || (d2 == root.d2 && id > root.id) {
		return
	}
	h.items[0] = kdHeapItem{id, d2}
	h.down(0)
}

func (h *kdHeap) pop() kdHeapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *kdHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *kdHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}
