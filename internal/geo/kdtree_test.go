package geo

import (
	"math"
	"math/rand"
	"testing"
)

func buildBoth(pts []Point, radii []float64) (*Grid, *KDTree) {
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	g := NewGrid(UnitSquare, 16)
	var t *KDTree
	if radii == nil {
		for i, p := range pts {
			g.Insert(int32(i), p)
		}
		t = BuildKDTree(ids, pts)
	} else {
		for i, p := range pts {
			g.InsertWithRadius(int32(i), p, radii[i])
		}
		t = BuildKDTreeWithRadii(ids, pts, radii)
	}
	return g, t
}

func TestKDTreeWithinMatchesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{0, 1, 7, 100, 800} {
		pts := randomPoints(rng, n)
		g, kd := buildBoth(pts, nil)
		for trial := 0; trial < 30; trial++ {
			c := Point{X: rng.Float64(), Y: rng.Float64()}
			r := rng.Float64() * 0.3
			want := sortIDs(g.Within(nil, c, r))
			got := sortIDs(kd.Within(nil, c, r))
			if !equalIDs(got, want) {
				t.Fatalf("n=%d Within(%v, %g): kd %v vs grid %v", n, c, r, got, want)
			}
		}
	}
}

func TestKDTreeWithinNegativeRadius(t *testing.T) {
	_, kd := buildBoth([]Point{{X: 0.5, Y: 0.5}}, nil)
	if got := kd.Within(nil, Point{X: 0.5, Y: 0.5}, -1); len(got) != 0 {
		t.Errorf("negative radius matched %v", got)
	}
}

func TestKDTreeCoveredByMatchesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{0, 1, 50, 400} {
		pts := randomPoints(rng, n)
		radii := make([]float64, n)
		for i := range radii {
			radii[i] = rng.Float64() * 0.1
		}
		g, kd := buildBoth(pts, radii)
		for trial := 0; trial < 30; trial++ {
			q := Point{X: rng.Float64(), Y: rng.Float64()}
			want := sortIDs(g.CoveredBy(nil, q))
			got := sortIDs(kd.CoveredBy(nil, q))
			if !equalIDs(got, want) {
				t.Fatalf("n=%d CoveredBy(%v): kd %v vs grid %v", n, q, got, want)
			}
		}
	}
}

func TestKDTreeCoveredByWithoutRadii(t *testing.T) {
	_, kd := buildBoth([]Point{{X: 0.5, Y: 0.5}}, nil)
	if got := kd.CoveredBy(nil, Point{X: 0.5, Y: 0.5}); len(got) != 0 {
		t.Errorf("radius-less tree answered CoveredBy: %v", got)
	}
}

func TestKDTreeKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 150)
	_, kd := buildBoth(pts, nil)
	for trial := 0; trial < 40; trial++ {
		q := Point{X: rng.Float64(), Y: rng.Float64()}
		for _, k := range []int{1, 2, 5, 150, 999} {
			got := kd.KNearest(q, k)
			wantLen := k
			if wantLen > len(pts) {
				wantLen = len(pts)
			}
			if len(got) != wantLen {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), wantLen)
			}
			// Distances must be sorted and match the brute-force k-th set.
			var all []float64
			for _, p := range pts {
				all = append(all, p.Dist2(q))
			}
			// Simple selection of the wantLen smallest distances.
			for i := 0; i < wantLen; i++ {
				minIdx := i
				for j := i + 1; j < len(all); j++ {
					if all[j] < all[minIdx] {
						minIdx = j
					}
				}
				all[i], all[minIdx] = all[minIdx], all[i]
			}
			prev := -1.0
			for i, id := range got {
				d2 := pts[id].Dist2(q)
				if d2 < prev {
					t.Fatalf("k=%d: results not distance-sorted", k)
				}
				prev = d2
				if math.Abs(d2-all[i]) > 1e-12 {
					t.Fatalf("k=%d pos=%d: kd distance %g, brute %g", k, i, d2, all[i])
				}
			}
		}
	}
}

func TestKDTreeKNearestDegenerate(t *testing.T) {
	kd := BuildKDTree(nil, nil)
	if got := kd.KNearest(Point{X: 0.5, Y: 0.5}, 3); got != nil {
		t.Errorf("empty tree KNearest = %v", got)
	}
	kd = BuildKDTree([]int32{0}, []Point{{X: 0.1, Y: 0.1}})
	if got := kd.KNearest(Point{X: 0.5, Y: 0.5}, 0); got != nil {
		t.Errorf("k=0 KNearest = %v", got)
	}
	if kd.Len() != 1 {
		t.Errorf("Len = %d", kd.Len())
	}
}

func TestKDTreeDuplicatePoints(t *testing.T) {
	pts := []Point{{X: 0.5, Y: 0.5}, {X: 0.5, Y: 0.5}, {X: 0.5, Y: 0.5}, {X: 0.9, Y: 0.9}}
	kd := BuildKDTree([]int32{0, 1, 2, 3}, pts)
	got := sortIDs(kd.Within(nil, Point{X: 0.5, Y: 0.5}, 0.01))
	if !equalIDs(got, []int32{0, 1, 2}) {
		t.Errorf("duplicates: Within = %v", got)
	}
	knn := kd.KNearest(Point{X: 0.5, Y: 0.5}, 3)
	if len(knn) != 3 {
		t.Fatalf("KNearest over duplicates = %v", knn)
	}
}

func TestKDTreeValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"id/point mismatch": func() { BuildKDTree([]int32{1}, nil) },
		"radii mismatch":    func() { BuildKDTreeWithRadii([]int32{0}, []Point{{X: 0, Y: 0}}, nil) },
		"negative radius":   func() { BuildKDTreeWithRadii([]int32{0}, []Point{{X: 0, Y: 0}}, []float64{-1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			f()
		}()
	}
}

// Benchmarks backing the index-ablation discussion: grid vs k-d tree on the
// paper's vendor workload shape (uniform points, small radii).
func benchPoints(n int) ([]int32, []Point, []float64) {
	rng := rand.New(rand.NewSource(42))
	ids := make([]int32, n)
	pts := make([]Point, n)
	radii := make([]float64, n)
	for i := range pts {
		ids[i] = int32(i)
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
		radii[i] = 0.02 + 0.01*rng.Float64()
	}
	return ids, pts, radii
}

func BenchmarkGridCoveredBy(b *testing.B) {
	ids, pts, radii := benchPoints(2000)
	g := NewGrid(UnitSquare, GridResolution(len(pts), 0.03))
	for i := range pts {
		g.InsertWithRadius(ids[i], pts[i], radii[i])
	}
	q := Point{X: 0.5, Y: 0.5}
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.CoveredBy(dst[:0], q)
	}
}

func BenchmarkKDTreeCoveredBy(b *testing.B) {
	ids, pts, radii := benchPoints(2000)
	kd := BuildKDTreeWithRadii(ids, pts, radii)
	q := Point{X: 0.5, Y: 0.5}
	var dst []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = kd.CoveredBy(dst[:0], q)
	}
}

func BenchmarkGridKNearest(b *testing.B) {
	ids, pts, _ := benchPoints(2000)
	g := NewGrid(UnitSquare, GridResolution(len(pts), 0.03))
	for i := range pts {
		g.Insert(ids[i], pts[i])
	}
	q := Point{X: 0.5, Y: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KNearest(q, 10)
	}
}

func BenchmarkKDTreeKNearest(b *testing.B) {
	ids, pts, _ := benchPoints(2000)
	kd := BuildKDTree(ids, pts)
	q := Point{X: 0.5, Y: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kd.KNearest(q, 10)
	}
}
