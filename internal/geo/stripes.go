package geo

import "fmt"

// Stripes partitions a Rect into n equal-height horizontal bands. The broker
// shards its campaign state by stripe: a campaign belongs to the stripe
// containing its center, and a query disk (center, r) can only reach
// campaigns whose stripes overlap the disk's Y-window — Range returns exactly
// that contiguous stripe interval, which doubles as a deadlock-free lock
// acquisition order (always ascending).
//
// Stripes is immutable and safe for concurrent use.
type Stripes struct {
	bounds Rect
	n      int
	h      float64 // band height
}

// NewStripes partitions bounds into n horizontal bands; n must be ≥ 1 and
// bounds non-degenerate.
func NewStripes(bounds Rect, n int) Stripes {
	if n < 1 {
		panic(fmt.Sprintf("geo: stripe count %d < 1", n))
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		panic(fmt.Sprintf("geo: degenerate stripe bounds %+v", bounds))
	}
	return Stripes{bounds: bounds, n: n, h: bounds.Height() / float64(n)}
}

// N returns the number of bands.
func (s Stripes) N() int { return s.n }

// Bounds returns the partitioned region.
func (s Stripes) Bounds() Rect { return s.bounds }

// Of returns the index of the band containing p, clamping points outside the
// bounds to the nearest band so every point maps somewhere.
func (s Stripes) Of(p Point) int { return s.ofY(p.Y) }

func (s Stripes) ofY(y float64) int {
	i := int((y - s.bounds.Min.Y) / s.h)
	if i < 0 {
		return 0
	}
	if i >= s.n {
		return s.n - 1
	}
	return i
}

// Range returns the inclusive band interval [lo, hi] overlapping the closed
// Y-window [yLo, yHi] (clamped into bounds). A disk query (center, r) maps to
// Range(center.Y-r, center.Y+r).
func (s Stripes) Range(yLo, yHi float64) (lo, hi int) {
	lo, hi = s.ofY(yLo), s.ofY(yHi)
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo, hi
}
