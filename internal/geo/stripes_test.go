package geo

import "testing"

func TestStripesOf(t *testing.T) {
	s := NewStripes(UnitSquare, 4)
	if s.N() != 4 || s.Bounds() != UnitSquare {
		t.Fatalf("stripes %+v", s)
	}
	cases := []struct {
		y    float64
		want int
	}{
		{0, 0}, {0.1, 0}, {0.25, 1}, {0.49, 1}, {0.5, 2}, {0.74, 2}, {0.75, 3},
		{0.999, 3}, {1, 3}, // top edge clamps into the last band
		{-5, 0}, {5, 3}, // out-of-bounds points clamp to the nearest band
	}
	for _, c := range cases {
		if got := s.Of(Point{X: 0.5, Y: c.y}); got != c.want {
			t.Errorf("Of(y=%g) = %d, want %d", c.y, got, c.want)
		}
	}
}

func TestStripesRange(t *testing.T) {
	s := NewStripes(UnitSquare, 8)
	// A disk straddling a band boundary overlaps both bands.
	if lo, hi := s.Range(0.24, 0.26); lo != 1 || hi != 2 {
		t.Errorf("Range(0.24, 0.26) = [%d, %d], want [1, 2]", lo, hi)
	}
	// An inverted window normalizes to the covering interval.
	if lo, hi := s.Range(0.13, 0.115); lo != 0 || hi != 1 {
		t.Errorf("inverted window must normalize: got [%d, %d]", lo, hi)
	}
	// A huge window covers everything.
	if lo, hi := s.Range(-10, 10); lo != 0 || hi != 7 {
		t.Errorf("Range(-10, 10) = [%d, %d], want [0, 7]", lo, hi)
	}
	// Every point's own band is inside any window containing it.
	for y := 0.0; y <= 1.0; y += 0.01 {
		for r := 0.0; r <= 0.3; r += 0.05 {
			lo, hi := s.Range(y-r, y+r)
			if band := s.Of(Point{Y: y}); band < lo || band > hi {
				t.Fatalf("band %d of y=%g outside Range(%g, %g) = [%d, %d]", band, y, y-r, y+r, lo, hi)
			}
		}
	}
}

func TestStripesSingleBand(t *testing.T) {
	s := NewStripes(UnitSquare, 1)
	if s.Of(Point{Y: 0.9}) != 0 {
		t.Error("single band must own every point")
	}
	if lo, hi := s.Range(0.2, 0.8); lo != 0 || hi != 0 {
		t.Errorf("single band range [%d, %d]", lo, hi)
	}
}

func TestStripesPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bands", func() { NewStripes(UnitSquare, 0) })
	mustPanic("degenerate bounds", func() { NewStripes(Rect{}, 2) })
}
