package knapsack_test

import (
	"fmt"

	"muaa/internal/knapsack"
)

// ExampleGreedy assigns ad formats to two customers of one vendor — the
// single-vendor subproblem RECON solves per vendor.
func ExampleGreedy() {
	// Class per customer; items are ad formats (cost, expected utility).
	classes := []knapsack.Class{
		{Items: []knapsack.Item{{Cost: 1, Profit: 0.4}, {Cost: 2, Profit: 0.9}}}, // u1
		{Items: []knapsack.Item{{Cost: 1, Profit: 0.3}, {Cost: 2, Profit: 0.5}}}, // u2
	}
	sol := knapsack.Greedy(classes, 3) // vendor budget 3 $
	fmt.Printf("value %.1f at cost %.0f, picks %v\n", sol.Value, sol.Cost, sol.Pick)
	// Output:
	// value 1.2 at cost 3, picks [1 0]
}

// ExampleFPTAS shows the (1−ε)-guaranteed solver on the same instance.
func ExampleFPTAS() {
	classes := []knapsack.Class{
		{Items: []knapsack.Item{{Cost: 1, Profit: 0.4}, {Cost: 2, Profit: 0.9}}},
		{Items: []knapsack.Item{{Cost: 1, Profit: 0.3}, {Cost: 2, Profit: 0.5}}},
	}
	sol := knapsack.FPTAS(classes, 3, 0.1)
	exact := knapsack.Exact(classes, 3)
	fmt.Printf("fptas %.1f ≥ 0.9 × exact %.1f: %v\n",
		sol.Value, exact.Value, sol.Value >= 0.9*exact.Value)
	// Output:
	// fptas 1.2 ≥ 0.9 × exact 1.2: true
}

// ExampleKnapsack01 solves the classic textbook instance.
func ExampleKnapsack01() {
	picked, value := knapsack.Knapsack01(
		[]int{2, 3, 4, 5},
		[]float64{3, 4, 5, 6},
		5,
	)
	fmt.Printf("value %.0f picking %v\n", value, picked)
	// Output:
	// value 7 picking [true true false false]
}
