package knapsack

import (
	"fmt"
	"math"
)

// FPTAS solves MCKP to within (1−ε) of the optimum in time polynomial in the
// instance size and 1/ε — the fully polynomial-time approximation scheme the
// paper's analysis of the reconciliation approach leans on ("the utility
// value of the solution obtained with the ε-approximate LP-relaxation
// algorithm is at least (1−ε) of that of the optimal solution"). The scheme
// is the classic profit-scaling dynamic program:
//
//  1. scale every profit to an integer p' = ⌊p/κ⌋ with κ = ε·P_max/n
//     (n = number of classes, P_max = largest single profit);
//  2. DP over scaled profit: the cheapest cost achieving each scaled total,
//     choosing at most one item per class;
//  3. return the picks of the largest scaled total whose cost fits.
//
// Rounding loses at most κ per class, hence at most ε·P_max ≤ ε·OPT overall.
// The DP table has O(n²/ε) profit rows, so memory and time are O(n³·q/ε) in
// the worst case — use Greedy for large instances where its one-item
// additive loss is negligible, and FPTAS when the guarantee must be exact.
func FPTAS(classes []Class, budget, eps float64) Solution {
	if err := Validate(classes, budget); err != nil {
		panic(err)
	}
	if eps <= 0 || eps >= 1 || math.IsNaN(eps) {
		panic(fmt.Sprintf("knapsack: FPTAS ε = %g outside (0,1)", eps))
	}
	n := len(classes)
	empty := Solution{Pick: make([]int, n)}
	for i := range empty.Pick {
		empty.Pick[i] = -1
	}
	if n == 0 {
		return empty
	}
	pMax := 0.0
	for _, c := range classes {
		for _, it := range c.Items {
			if it.Cost <= budget && it.Profit > pMax {
				pMax = it.Profit
			}
		}
	}
	if pMax == 0 {
		return empty
	}
	kappa := eps * pMax / float64(n)

	// scaled[c][i] is item i of class c's integer profit; items that cannot
	// fit alone are excluded by cost in the DP loop.
	scaled := make([][]int, n)
	maxTotal := 0
	for ci, c := range classes {
		scaled[ci] = make([]int, len(c.Items))
		best := 0
		for ii, it := range c.Items {
			s := int(math.Floor(it.Profit / kappa))
			scaled[ci][ii] = s
			if s > best {
				best = s
			}
		}
		maxTotal += best
	}

	const inf = math.MaxFloat64
	// cost[q] = cheapest cost achieving scaled profit exactly q with the
	// classes processed so far; choice[c][q] = item picked for class c on
	// the cheapest path to q (or -1).
	cost := make([]float64, maxTotal+1)
	next := make([]float64, maxTotal+1)
	for q := 1; q <= maxTotal; q++ {
		cost[q] = inf
	}
	choice := make([][]int32, n)
	for ci, c := range classes {
		choice[ci] = make([]int32, maxTotal+1)
		copy(next, cost)
		for q := range choice[ci] {
			choice[ci][q] = -1
		}
		for ii, it := range c.Items {
			if it.Cost > budget {
				continue
			}
			s := scaled[ci][ii]
			for q := maxTotal; q >= s; q-- {
				if cost[q-s] == inf {
					continue
				}
				if cand := cost[q-s] + it.Cost; cand < next[q] {
					next[q] = cand
					choice[ci][q] = int32(ii)
				}
			}
		}
		cost, next = next, cost
	}

	// Best achievable scaled profit within budget.
	bestQ := 0
	for q := maxTotal; q > 0; q-- {
		if cost[q] <= budget+1e-12 {
			bestQ = q
			break
		}
	}
	// Reconstruct: walk classes backwards. choice[ci][q] was recorded
	// against the DP state *after* class ci, so peeling in reverse recovers
	// one consistent optimal path.
	sol := Solution{Pick: make([]int, n)}
	for i := range sol.Pick {
		sol.Pick[i] = -1
	}
	q := bestQ
	for ci := n - 1; ci >= 0; ci-- {
		ii := choice[ci][q]
		if ii < 0 {
			continue
		}
		sol.Pick[ci] = int(ii)
		it := classes[ci].Items[ii]
		sol.Value += it.Profit
		sol.Cost += it.Cost
		q -= scaled[ci][ii]
	}
	return sol
}
