package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

func TestFPTASGuaranteeAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, eps := range []float64{0.5, 0.2, 0.05} {
		for trial := 0; trial < 120; trial++ {
			classes := randomClasses(rng, 1+rng.Intn(6), 3)
			budget := rng.Float64() * 8
			exact := Exact(classes, budget)
			approx := FPTAS(classes, budget, eps)
			if err := Verify(classes, budget, approx); err != nil {
				t.Fatalf("ε=%g trial %d: %v", eps, trial, err)
			}
			if approx.Value > exact.Value+1e-9 {
				t.Fatalf("ε=%g trial %d: FPTAS %g beats exact %g", eps, trial, approx.Value, exact.Value)
			}
			if approx.Value < (1-eps)*exact.Value-1e-9 {
				t.Fatalf("ε=%g trial %d: FPTAS %g below (1-ε)·OPT = %g",
					eps, trial, approx.Value, (1-eps)*exact.Value)
			}
		}
	}
}

func TestFPTASConvergesToExactAsEpsShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	worse := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		classes := randomClasses(rng, 4, 3)
		budget := 5.0
		exact := Exact(classes, budget)
		tight := FPTAS(classes, budget, 0.01)
		if math.Abs(tight.Value-exact.Value) > 0.02*exact.Value+1e-9 {
			worse++
		}
	}
	if worse > trials/10 {
		t.Errorf("ε=0.01 diverged from exact on %d/%d instances", worse, trials)
	}
}

func TestFPTASEdgeCases(t *testing.T) {
	if sol := FPTAS(nil, 5, 0.1); sol.Value != 0 || len(sol.Pick) != 0 {
		t.Errorf("empty instance: %+v", sol)
	}
	// Nothing fits the budget.
	classes := []Class{{Items: []Item{{Cost: 10, Profit: 5}}}}
	sol := FPTAS(classes, 1, 0.1)
	if sol.Value != 0 || sol.Pick[0] != -1 {
		t.Errorf("unaffordable item picked: %+v", sol)
	}
	// Zero-profit instance.
	classes = []Class{{Items: []Item{{Cost: 1, Profit: 0}}}}
	sol = FPTAS(classes, 5, 0.1)
	if sol.Value != 0 {
		t.Errorf("zero-profit instance: %+v", sol)
	}
}

func TestFPTASValidation(t *testing.T) {
	classes := []Class{{Items: []Item{{Cost: 1, Profit: 1}}}}
	for _, eps := range []float64{0, 1, -0.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ε=%g must panic", eps)
				}
			}()
			FPTAS(classes, 5, eps)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid instance must panic")
			}
		}()
		FPTAS(classes, -1, 0.1)
	}()
}

func TestFPTASChoiceConstraint(t *testing.T) {
	// Two lucrative items in one class: only one may be taken even with
	// plenty of budget.
	classes := []Class{{Items: []Item{{Cost: 1, Profit: 5}, {Cost: 1, Profit: 6}}}}
	sol := FPTAS(classes, 100, 0.1)
	if err := Verify(classes, 100, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Value != 6 {
		t.Errorf("value = %g, want 6 (the better of the two)", sol.Value)
	}
}

func TestFPTASBeatsGreedyOnItsAdversary(t *testing.T) {
	// The instance where greedy's fallback still only reaches 8 of 9: an
	// efficient small item blocks the big one.
	classes := []Class{
		{Items: []Item{{Cost: 1, Profit: 1}}},
		{Items: []Item{{Cost: 10, Profit: 8}}},
	}
	exact := Exact(classes, 10)
	approx := FPTAS(classes, 10, 0.1)
	if approx.Value < (1-0.1)*exact.Value {
		t.Errorf("FPTAS %g below guarantee on greedy's adversary (OPT %g)", approx.Value, exact.Value)
	}
}
