// Package knapsack implements the knapsack machinery the MUAA paper builds
// on: the 0-1 knapsack problem (the NP-hardness reduction target of Theorem
// II.1) and the multiple-choice knapsack problem (MCKP) that each
// single-vendor subproblem of the reconciliation approach reduces to
// (Section III-A; Ibaraki et al. [14], Sinha & Zoltners [19]).
//
// An MCKP instance is a set of classes; from each class at most one item may
// be picked; picked costs must fit a budget; picked profit is maximized. For
// MUAA, a class is one valid customer of the vendor and the class's items
// are the ad types (cost c_k, profit λ_ijk).
//
// Three solvers are provided:
//
//   - Greedy: the classical Dantzig/LP-derived greedy over incremental hull
//     items. Its value is within the most profitable single hull increment
//     of the LP optimum, which is the (1-ε) behaviour the paper's analysis
//     assumes for small item-to-budget ratios.
//   - LPBound: the fractional (LP-relaxation) optimum, computed exactly from
//     the same hull structure without a simplex run.
//   - Exact: branch-and-bound with the LP bound, exact for the small
//     instances used to validate approximation ratios.
package knapsack

import (
	"fmt"
	"math"
	"sort"
)

// Item is a candidate with a cost and a profit. Costs must be positive and
// profits non-negative; violations are reported by Validate.
type Item struct {
	Cost   float64
	Profit float64
}

// Class is a choose-at-most-one group of items.
type Class struct {
	Items []Item
}

// Solution is an integral MCKP assignment.
type Solution struct {
	// Pick holds, per class, the index of the chosen item, or -1 when the
	// class contributes nothing.
	Pick []int
	// Value is the total profit of the picks.
	Value float64
	// Cost is the total cost of the picks.
	Cost float64
}

// Validate checks an instance: budget non-negative and finite, all costs
// positive and finite, all profits non-negative and finite.
func Validate(classes []Class, budget float64) error {
	if math.IsNaN(budget) || math.IsInf(budget, 0) || budget < 0 {
		return fmt.Errorf("knapsack: bad budget %g", budget)
	}
	for ci, c := range classes {
		for ii, it := range c.Items {
			if !(it.Cost > 0) || math.IsInf(it.Cost, 0) {
				return fmt.Errorf("knapsack: class %d item %d has cost %g, want > 0", ci, ii, it.Cost)
			}
			if it.Profit < 0 || math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
				return fmt.Errorf("knapsack: class %d item %d has profit %g, want ≥ 0", ci, ii, it.Profit)
			}
		}
	}
	return nil
}

// hullPoint is one vertex of a class's efficiency frontier.
type hullPoint struct {
	item   int // index into the class's Items
	cost   float64
	profit float64
}

// classHull returns the upper-left convex hull of a class's (cost, profit)
// points — the LP-undominated items in increasing cost order with strictly
// decreasing incremental efficiency. The implicit (0, 0) "pick nothing"
// point anchors the hull; it is not included in the result.
func classHull(c Class) []hullPoint {
	pts := make([]hullPoint, 0, len(c.Items))
	for i, it := range c.Items {
		if it.Profit <= 0 {
			continue // never worth picking; (0,0) dominates
		}
		pts = append(pts, hullPoint{item: i, cost: it.Cost, profit: it.Profit})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].cost != pts[j].cost {
			return pts[i].cost < pts[j].cost
		}
		return pts[i].profit > pts[j].profit
	})
	// Graham-style scan anchored at (0,0).
	hull := make([]hullPoint, 0, len(pts))
	for _, p := range pts {
		// Drop plainly dominated points (same or higher cost, lower or equal
		// profit than the running maximum).
		if len(hull) > 0 && p.profit <= hull[len(hull)-1].profit {
			continue
		}
		for len(hull) > 0 {
			last := hull[len(hull)-1]
			var prevCost, prevProfit float64
			if len(hull) >= 2 {
				prev := hull[len(hull)-2]
				prevCost, prevProfit = prev.cost, prev.profit
			}
			// Keep last only if efficiency decreases across it:
			// slope(prev→last) > slope(last→p).
			lhs := (last.profit - prevProfit) * (p.cost - last.cost)
			rhs := (p.profit - last.profit) * (last.cost - prevCost)
			if lhs > rhs {
				break
			}
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull
}

// increment is one greedy step: upgrading a class from hull level l-1 to l.
type increment struct {
	class  int
	level  int // index into the class's hull
	dCost  float64
	dValue float64
	eff    float64
}

// buildIncrements assembles all hull increments of all classes sorted by
// decreasing efficiency (ties: class, then level, for determinism). It also
// returns the per-class hulls.
func buildIncrements(classes []Class) ([]increment, [][]hullPoint) {
	hulls := make([][]hullPoint, len(classes))
	var incs []increment
	for ci, c := range classes {
		h := classHull(c)
		hulls[ci] = h
		prevCost, prevProfit := 0.0, 0.0
		for l, p := range h {
			dc := p.cost - prevCost
			dv := p.profit - prevProfit
			incs = append(incs, increment{
				class: ci, level: l, dCost: dc, dValue: dv, eff: dv / dc,
			})
			prevCost, prevProfit = p.cost, p.profit
		}
	}
	sort.Slice(incs, func(i, j int) bool {
		if incs[i].eff != incs[j].eff {
			return incs[i].eff > incs[j].eff
		}
		if incs[i].class != incs[j].class {
			return incs[i].class < incs[j].class
		}
		return incs[i].level < incs[j].level
	})
	return incs, hulls
}

// Greedy solves MCKP with the Dantzig greedy: walk hull increments by
// decreasing efficiency, applying each increment whose class is at the
// preceding level and whose cost still fits. The result is integral and
// feasible. As a safety net for adversarial instances it returns the better
// of the greedy fill and the single best item that fits, which upgrades the
// guarantee to the classical 1/2 of optimum; on MUAA workloads, where each
// item is tiny relative to the budget, the value is within one item of the
// LP optimum — the paper's (1-ε).
func Greedy(classes []Class, budget float64) Solution {
	if err := Validate(classes, budget); err != nil {
		panic(err)
	}
	incs, hulls := buildIncrements(classes)
	pickLevel := make([]int, len(classes)) // 0 = nothing, l = hull level l-1 chosen
	remaining := budget
	value := 0.0
	for _, inc := range incs {
		if pickLevel[inc.class] != inc.level {
			continue // a cheaper increment of this class was skipped
		}
		if inc.dCost > remaining {
			continue // skip, later (smaller) increments of other classes may fit
		}
		remaining -= inc.dCost
		value += inc.dValue
		pickLevel[inc.class] = inc.level + 1
	}
	sol := Solution{Pick: make([]int, len(classes)), Value: value, Cost: budget - remaining}
	for ci := range classes {
		if lvl := pickLevel[ci]; lvl > 0 {
			sol.Pick[ci] = hulls[ci][lvl-1].item
		} else {
			sol.Pick[ci] = -1
		}
	}
	cleanup(classes, budget, &sol)
	// Fallback: best single item that fits on its own.
	bestC, bestI, bestV := -1, -1, 0.0
	for ci, c := range classes {
		for ii, it := range c.Items {
			if it.Cost <= budget && it.Profit > bestV {
				bestC, bestI, bestV = ci, ii, it.Profit
			}
		}
	}
	if bestV > sol.Value {
		pick := make([]int, len(classes))
		for i := range pick {
			pick[i] = -1
		}
		pick[bestC] = bestI
		alt := Solution{Pick: pick, Value: bestV, Cost: classes[bestC].Items[bestI].Cost}
		cleanup(classes, budget, &alt)
		return alt
	}
	return sol
}

// cleanup spends leftover budget that the hull walk cannot reach: LP-
// dominated items (e.g. a cheap ad type whose incremental efficiency is
// below the pricier one's) never appear on a hull, so classes skipped for
// budget can still afford them, and chosen items may admit an upgrade within
// the remaining budget. Repeatedly apply the single best profit-improving
// move (addition to an empty class, or in-class upgrade) until none fits.
// Only ever increases Value, so every guarantee on the hull solution holds.
func cleanup(classes []Class, budget float64, sol *Solution) {
	remaining := budget - sol.Cost
	for {
		bestClass, bestItem := -1, -1
		bestGain := 0.0
		for ci, c := range classes {
			cur := sol.Pick[ci]
			curCost, curProfit := 0.0, 0.0
			if cur >= 0 {
				curCost, curProfit = c.Items[cur].Cost, c.Items[cur].Profit
			}
			for ii, it := range c.Items {
				if ii == cur {
					continue
				}
				dCost := it.Cost - curCost
				dGain := it.Profit - curProfit
				if dGain <= bestGain || dCost > remaining+1e-12 {
					continue
				}
				bestClass, bestItem, bestGain = ci, ii, dGain
			}
		}
		if bestClass < 0 {
			return
		}
		c := classes[bestClass]
		if old := sol.Pick[bestClass]; old >= 0 {
			sol.Cost -= c.Items[old].Cost
			sol.Value -= c.Items[old].Profit
		}
		sol.Pick[bestClass] = bestItem
		sol.Cost += c.Items[bestItem].Cost
		sol.Value += c.Items[bestItem].Profit
		remaining = budget - sol.Cost
	}
}

// LPBound returns the optimum of the MCKP LP relaxation, computed exactly by
// filling hull increments in efficiency order and taking the last one
// fractionally. It upper-bounds every integral solution.
func LPBound(classes []Class, budget float64) float64 {
	if err := Validate(classes, budget); err != nil {
		panic(err)
	}
	incs, _ := buildIncrements(classes)
	// In the LP relaxation the prefix property is free (fractions of
	// consecutive hull levels compose), so increments may be consumed purely
	// in efficiency order.
	remaining := budget
	value := 0.0
	for _, inc := range incs {
		if remaining <= 0 {
			break
		}
		if inc.dCost <= remaining {
			remaining -= inc.dCost
			value += inc.dValue
		} else {
			value += inc.dValue * remaining / inc.dCost
			remaining = 0
		}
	}
	return value
}

// Exact solves MCKP optimally via depth-first branch-and-bound with the LP
// bound. Intended for small instances (validation, the paper's worked
// example); cost grows exponentially in the worst case.
func Exact(classes []Class, budget float64) Solution {
	if err := Validate(classes, budget); err != nil {
		panic(err)
	}
	n := len(classes)
	best := Solution{Pick: make([]int, n), Value: -1}
	for i := range best.Pick {
		best.Pick[i] = -1
	}
	cur := make([]int, n)
	for i := range cur {
		cur[i] = -1
	}
	// Order classes by their best efficiency so bounds tighten early.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	bestEff := make([]float64, n)
	for i, c := range classes {
		for _, it := range c.Items {
			if e := it.Profit / it.Cost; e > bestEff[i] {
				bestEff[i] = e
			}
		}
	}
	sort.Slice(order, func(a, b int) bool { return bestEff[order[a]] > bestEff[order[b]] })

	var dfs func(pos int, value, remaining float64)
	dfs = func(pos int, value, remaining float64) {
		if value > best.Value {
			best.Value = value
			best.Cost = budget - remaining
			copy(best.Pick, cur)
		}
		if pos == n {
			return
		}
		// Bound: LP optimum of the remaining suffix.
		suffix := make([]Class, 0, n-pos)
		for _, ci := range order[pos:] {
			suffix = append(suffix, classes[ci])
		}
		if value+LPBound(suffix, remaining) <= best.Value+1e-12 {
			return
		}
		ci := order[pos]
		// Try each item (most profitable first), then "skip class".
		idx := make([]int, len(classes[ci].Items))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return classes[ci].Items[idx[a]].Profit > classes[ci].Items[idx[b]].Profit
		})
		for _, ii := range idx {
			it := classes[ci].Items[ii]
			if it.Cost > remaining {
				continue
			}
			cur[ci] = ii
			dfs(pos+1, value+it.Profit, remaining-it.Cost)
			cur[ci] = -1
		}
		dfs(pos+1, value, remaining)
	}
	dfs(0, 0, budget)
	if best.Value < 0 {
		best.Value = 0
	}
	return best
}

// Verify checks that sol is a feasible solution of (classes, budget) and
// that its Value/Cost fields match the picks. It returns a descriptive error
// on the first violation. Every solver's output satisfies Verify; tests and
// downstream consumers lean on it.
func Verify(classes []Class, budget float64, sol Solution) error {
	if len(sol.Pick) != len(classes) {
		return fmt.Errorf("knapsack: %d picks for %d classes", len(sol.Pick), len(classes))
	}
	cost, value := 0.0, 0.0
	for ci, ii := range sol.Pick {
		if ii == -1 {
			continue
		}
		if ii < 0 || ii >= len(classes[ci].Items) {
			return fmt.Errorf("knapsack: class %d picks out-of-range item %d", ci, ii)
		}
		cost += classes[ci].Items[ii].Cost
		value += classes[ci].Items[ii].Profit
	}
	if cost > budget+1e-9 {
		return fmt.Errorf("knapsack: cost %g exceeds budget %g", cost, budget)
	}
	if math.Abs(cost-sol.Cost) > 1e-9 {
		return fmt.Errorf("knapsack: recorded cost %g, actual %g", sol.Cost, cost)
	}
	if math.Abs(value-sol.Value) > 1e-9 {
		return fmt.Errorf("knapsack: recorded value %g, actual %g", sol.Value, value)
	}
	return nil
}
