package knapsack

import "fmt"

// Knapsack01 solves the 0-1 knapsack problem exactly with the classic
// O(n·W) dynamic program over integer weights. It returns the picked-item
// mask and the optimal value. This is the problem MUAA reduces from in the
// paper's NP-hardness proof (Theorem II.1); tests use it both as that
// reduction's reference oracle and to cross-check the MCKP solvers on
// singleton classes.
func Knapsack01(weights []int, values []float64, capacity int) ([]bool, float64) {
	n := len(weights)
	if len(values) != n {
		panic(fmt.Sprintf("knapsack: %d weights but %d values", n, len(values)))
	}
	if capacity < 0 {
		capacity = 0
	}
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("knapsack: weight[%d] = %d, want > 0", i, w))
		}
		if values[i] < 0 {
			panic(fmt.Sprintf("knapsack: value[%d] = %g, want ≥ 0", i, values[i]))
		}
	}
	// dp[i][w] = best value using items [0, i) within weight w. Keep the
	// full table to reconstruct the picks.
	dp := make([][]float64, n+1)
	for i := range dp {
		dp[i] = make([]float64, capacity+1)
	}
	for i := 1; i <= n; i++ {
		wi, vi := weights[i-1], values[i-1]
		for w := 0; w <= capacity; w++ {
			best := dp[i-1][w]
			if wi <= w {
				if cand := dp[i-1][w-wi] + vi; cand > best {
					best = cand
				}
			}
			dp[i][w] = best
		}
	}
	picked := make([]bool, n)
	w := capacity
	for i := n; i >= 1; i-- {
		if dp[i][w] != dp[i-1][w] {
			picked[i-1] = true
			w -= weights[i-1]
		}
	}
	return picked, dp[n][capacity]
}

// SingletonClasses wraps plain items into one-item MCKP classes, expressing
// a 0-1 knapsack instance as an MCKP instance (the paper's reduction runs in
// the opposite direction; this helper lets tests compare the two solvers on
// a common instance).
func SingletonClasses(items []Item) []Class {
	classes := make([]Class, len(items))
	for i, it := range items {
		classes[i] = Class{Items: []Item{it}}
	}
	return classes
}
