package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

func TestClassHullDropsDominated(t *testing.T) {
	c := Class{Items: []Item{
		{Cost: 1, Profit: 2},   // hull
		{Cost: 2, Profit: 1},   // dominated by item 0
		{Cost: 2, Profit: 3},   // hull
		{Cost: 3, Profit: 3},   // dominated (same profit, higher cost)
		{Cost: 4, Profit: 3.5}, // below the 0→2 extension? eff from 2: 0.25 < slope before — still hull if convex
	}}
	h := classHull(c)
	if len(h) < 2 {
		t.Fatalf("hull too small: %+v", h)
	}
	if h[0].item != 0 || h[1].item != 2 {
		t.Errorf("hull head = %+v, want items 0 then 2", h[:2])
	}
	// Costs strictly increasing, profits strictly increasing, efficiencies
	// strictly decreasing.
	prevCost, prevProfit, prevEff := 0.0, 0.0, math.Inf(1)
	for _, p := range h {
		if p.cost <= prevCost || p.profit <= prevProfit {
			t.Fatalf("hull not monotone: %+v", h)
		}
		eff := (p.profit - prevProfit) / (p.cost - prevCost)
		if eff >= prevEff {
			t.Fatalf("hull efficiencies not strictly decreasing: %+v", h)
		}
		prevCost, prevProfit, prevEff = p.cost, p.profit, eff
	}
}

func TestClassHullIgnoresZeroProfit(t *testing.T) {
	h := classHull(Class{Items: []Item{{Cost: 1, Profit: 0}}})
	if len(h) != 0 {
		t.Errorf("zero-profit item must not reach the hull: %+v", h)
	}
}

func TestGreedySimple(t *testing.T) {
	// Two classes, budget for one expensive or two cheap.
	classes := []Class{
		{Items: []Item{{Cost: 1, Profit: 1}, {Cost: 2, Profit: 1.8}}},
		{Items: []Item{{Cost: 1, Profit: 0.9}}},
	}
	sol := Greedy(classes, 2)
	if err := Verify(classes, 2, sol); err != nil {
		t.Fatal(err)
	}
	// Best integral: item0 of class0 (1.0) + class1 (0.9) = 1.9 > 1.8.
	if math.Abs(sol.Value-1.9) > 1e-9 {
		t.Errorf("greedy value = %g, want 1.9", sol.Value)
	}
}

func TestGreedyFallbackToSingleBestItem(t *testing.T) {
	// Greedy fills with small efficient items, then cannot afford the big
	// one; best single item must win.
	classes := []Class{
		{Items: []Item{{Cost: 1, Profit: 1}}},
		{Items: []Item{{Cost: 10, Profit: 8}}},
	}
	sol := Greedy(classes, 10)
	if err := Verify(classes, 10, sol); err != nil {
		t.Fatal(err)
	}
	if sol.Value < 8 {
		t.Errorf("greedy with fallback = %g, want ≥ 8", sol.Value)
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	classes := []Class{{Items: []Item{{Cost: 1, Profit: 5}}}}
	sol := Greedy(classes, 0)
	if sol.Value != 0 || sol.Cost != 0 || sol.Pick[0] != -1 {
		t.Errorf("zero budget must select nothing: %+v", sol)
	}
}

func TestGreedyEmptyInstance(t *testing.T) {
	sol := Greedy(nil, 10)
	if sol.Value != 0 || len(sol.Pick) != 0 {
		t.Errorf("empty instance: %+v", sol)
	}
}

func TestExactWorkedExample(t *testing.T) {
	// Verifiable by hand: budget 5.
	classes := []Class{
		{Items: []Item{{Cost: 2, Profit: 3}, {Cost: 3, Profit: 4}}},
		{Items: []Item{{Cost: 2, Profit: 2.5}}},
		{Items: []Item{{Cost: 1, Profit: 1}}},
	}
	sol := Exact(classes, 5)
	if err := Verify(classes, 5, sol); err != nil {
		t.Fatal(err)
	}
	// Options: (2,3)+(2,2.5)+(1,1) = 6.5 at cost 5 — fits. Optimal 6.5.
	if math.Abs(sol.Value-6.5) > 1e-9 {
		t.Errorf("exact = %g, want 6.5", sol.Value)
	}
}

func TestExactRespectsChoiceConstraint(t *testing.T) {
	classes := []Class{
		{Items: []Item{{Cost: 1, Profit: 1}, {Cost: 1, Profit: 2}}},
	}
	sol := Exact(classes, 10)
	if sol.Value != 2 {
		t.Errorf("must take only the better item of the class, got %g", sol.Value)
	}
}

func TestLPBoundDominatesExactAndGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		classes := randomClasses(rng, 1+rng.Intn(6), 3)
		budget := rng.Float64() * 10
		exact := Exact(classes, budget)
		greedy := Greedy(classes, budget)
		lpv := LPBound(classes, budget)
		if err := Verify(classes, budget, exact); err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		if err := Verify(classes, budget, greedy); err != nil {
			t.Fatalf("trial %d greedy: %v", trial, err)
		}
		if greedy.Value > exact.Value+1e-9 {
			t.Fatalf("trial %d: greedy %g beats exact %g", trial, greedy.Value, exact.Value)
		}
		if exact.Value > lpv+1e-9 {
			t.Fatalf("trial %d: exact %g beats LP bound %g", trial, exact.Value, lpv)
		}
		// Greedy-with-fallback is ≥ 1/2 of optimum.
		if greedy.Value < exact.Value/2-1e-9 {
			t.Fatalf("trial %d: greedy %g below half of optimum %g", trial, greedy.Value, exact.Value)
		}
		// Greedy is within the largest single-increment profit of LP.
		maxProfit := 0.0
		for _, c := range classes {
			for _, it := range c.Items {
				if it.Profit > maxProfit {
					maxProfit = it.Profit
				}
			}
		}
		if greedy.Value < lpv-maxProfit-1e-9 {
			t.Fatalf("trial %d: greedy %g not within max item %g of LP %g", trial, greedy.Value, maxProfit, lpv)
		}
	}
}

func randomClasses(rng *rand.Rand, nClasses, maxItems int) []Class {
	classes := make([]Class, nClasses)
	for i := range classes {
		k := 1 + rng.Intn(maxItems)
		items := make([]Item, k)
		for j := range items {
			items[j] = Item{Cost: 0.2 + rng.Float64()*3, Profit: rng.Float64() * 2}
		}
		classes[i] = Class{Items: items}
	}
	return classes
}

func TestGreedyNearLPWhenItemsTiny(t *testing.T) {
	// Paper regime: many classes, item costs ≪ budget. Greedy must be very
	// close to the LP optimum.
	rng := rand.New(rand.NewSource(6))
	classes := randomClasses(rng, 300, 4)
	budget := 50.0
	greedy := Greedy(classes, budget)
	lpv := LPBound(classes, budget)
	if greedy.Value < 0.97*lpv {
		t.Errorf("greedy %g below 97%% of LP %g in the tiny-item regime", greedy.Value, lpv)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]struct {
		classes []Class
		budget  float64
	}{
		"neg budget": {nil, -1},
		"nan budget": {nil, math.NaN()},
		"zero cost":  {[]Class{{Items: []Item{{Cost: 0, Profit: 1}}}}, 1},
		"neg cost":   {[]Class{{Items: []Item{{Cost: -1, Profit: 1}}}}, 1},
		"neg profit": {[]Class{{Items: []Item{{Cost: 1, Profit: -1}}}}, 1},
		"inf profit": {[]Class{{Items: []Item{{Cost: 1, Profit: math.Inf(1)}}}}, 1},
	}
	for name, c := range cases {
		if err := Validate(c.classes, c.budget); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if err := Validate([]Class{{Items: []Item{{Cost: 1, Profit: 0}}}}, 0); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	classes := []Class{{Items: []Item{{Cost: 2, Profit: 3}}}}
	good := Solution{Pick: []int{0}, Value: 3, Cost: 2}
	if err := Verify(classes, 2, good); err != nil {
		t.Errorf("good solution rejected: %v", err)
	}
	bad := []Solution{
		{Pick: []int{0}, Value: 3, Cost: 2}, // over budget (checked below with budget 1)
		{Pick: []int{1}, Value: 3, Cost: 2}, // bad index
		{Pick: []int{0}, Value: 4, Cost: 2}, // wrong value
		{Pick: []int{0}, Value: 3, Cost: 1}, // wrong cost
		{Pick: nil, Value: 0, Cost: 0},      // wrong length
	}
	budgets := []float64{1, 2, 2, 2, 2}
	for i, s := range bad {
		if err := Verify(classes, budgets[i], s); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestKnapsack01Classic(t *testing.T) {
	weights := []int{2, 3, 4, 5}
	values := []float64{3, 4, 5, 6}
	picked, v := Knapsack01(weights, values, 5)
	if v != 7 {
		t.Fatalf("value = %g, want 7", v)
	}
	if !picked[0] || !picked[1] || picked[2] || picked[3] {
		t.Errorf("picked = %v, want items 0 and 1", picked)
	}
}

func TestKnapsack01ZeroCapacity(t *testing.T) {
	_, v := Knapsack01([]int{1}, []float64{5}, 0)
	if v != 0 {
		t.Errorf("value = %g, want 0", v)
	}
	_, v = Knapsack01([]int{1}, []float64{5}, -3)
	if v != 0 {
		t.Errorf("negative capacity treated as 0, got %g", v)
	}
}

func TestKnapsack01Validation(t *testing.T) {
	for name, f := range map[string]func(){
		"len mismatch": func() { Knapsack01([]int{1}, []float64{1, 2}, 3) },
		"zero weight":  func() { Knapsack01([]int{0}, []float64{1}, 3) },
		"neg value":    func() { Knapsack01([]int{1}, []float64{-1}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMCKPExactMatchesKnapsack01OnSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		weights := make([]int, n)
		values := make([]float64, n)
		items := make([]Item, n)
		for i := 0; i < n; i++ {
			weights[i] = 1 + rng.Intn(6)
			values[i] = float64(rng.Intn(10))
			items[i] = Item{Cost: float64(weights[i]), Profit: values[i]}
		}
		capacity := rng.Intn(15)
		_, dpVal := Knapsack01(weights, values, capacity)
		sol := Exact(SingletonClasses(items), float64(capacity))
		if math.Abs(dpVal-sol.Value) > 1e-9 {
			t.Fatalf("trial %d: DP %g vs MCKP exact %g", trial, dpVal, sol.Value)
		}
	}
}

func TestSingletonClasses(t *testing.T) {
	items := []Item{{Cost: 1, Profit: 2}, {Cost: 3, Profit: 4}}
	classes := SingletonClasses(items)
	if len(classes) != 2 || len(classes[0].Items) != 1 || classes[1].Items[0] != items[1] {
		t.Errorf("SingletonClasses = %+v", classes)
	}
}
