package knapsack

// SlotSolver is the arena-friendly entry point to the MCKP hull-greedy for
// the broker's serving path. The serving problem differs from the budgeted
// MCKP Greedy solves in one way: the binding resource is the arrival's slot
// capacity a_i (at most a_i classes may serve), not a shared money budget —
// each class's affordability is enforced per campaign before its items are
// added. SlotSolver therefore runs the same machinery as Greedy — per-class
// upper-left convex hulls, increments walked in decreasing incremental
// efficiency with the prefix rule — but opens a class only while slots
// remain.
//
// With no shared money budget every increment of an opened class applies
// (within a class efficiency strictly decreases along the hull, so the
// prefix rule is always satisfied when an increment is reached in global
// order). The walk thus opens classes in decreasing best-item efficiency —
// the same currency the O-AFA threshold admits by and the legacy capacity
// trim sorts by — and serves each opened class its hull completion, the
// class's maximum-profit point at minimal cost. The first class denied for
// want of a slot is remembered as the runner-up; its hypothetical pick
// prices the displaced bid in the second-price charge rule.
//
// Unlike Greedy, SlotSolver allocates nothing in steady state: all working
// storage is retained flat slices grown by append, so it can live inside the
// per-stripe scanArena on the zero-alloc serial path.

type slotInc struct {
	class int32
	level int32
	dCost float64
	dVal  float64
	eff   float64
}

// SlotSolver solves the slot-capacitated MCKP over classes built
// incrementally with Begin/Item. The zero value is ready to use; Reset
// clears it for reuse without releasing storage.
type SlotSolver struct {
	// Flat item storage, grouped by class in Add order.
	costs    []float64
	profits  []float64
	classEnd []int // per class, exclusive end index into costs/profits

	// Solve scratch, retained across calls.
	seg     []int32 // per-class item ordinals under hull construction
	hull    []int32 // flat hull item ordinals (within class)
	hullEnd []int   // per class, exclusive end index into hull
	incs    []slotInc
	pickLvl []int32 // per class: 0 = closed, l = hull level l-1 chosen
	order   []int32 // opened classes in selection order
	runner  int
	value   float64
	cost    float64
}

// Reset clears the instance for reuse, retaining all storage.
func (s *SlotSolver) Reset() {
	s.costs = s.costs[:0]
	s.profits = s.profits[:0]
	s.classEnd = s.classEnd[:0]
}

// Begin starts a new class and returns its index.
func (s *SlotSolver) Begin() int {
	s.classEnd = append(s.classEnd, len(s.costs))
	return len(s.classEnd) - 1
}

// Item appends an item (cost > 0) to the most recently begun class. Items
// with non-positive profit are accepted and ignored by Solve (the implicit
// (0,0) point dominates them), mirroring classHull.
func (s *SlotSolver) Item(cost, profit float64) {
	s.costs = append(s.costs, cost)
	s.profits = append(s.profits, profit)
	s.classEnd[len(s.classEnd)-1] = len(s.costs)
}

// Classes returns the number of classes begun since the last Reset.
func (s *SlotSolver) Classes() int { return len(s.classEnd) }

// classStart returns the first item index of class ci.
func (s *SlotSolver) classStart(ci int) int {
	if ci == 0 {
		return 0
	}
	return s.classEnd[ci-1]
}

// Solve runs the hull-greedy under a slot capacity: at most `slots` classes
// may serve one item each. Selection is deterministic — increments are
// walked in (efficiency desc, class asc, level asc) order, a total order.
func (s *SlotSolver) Solve(slots int) {
	n := len(s.classEnd)
	s.hull = s.hull[:0]
	s.hullEnd = s.hullEnd[:0]
	s.incs = s.incs[:0]
	s.order = s.order[:0]
	s.runner = -1
	s.value, s.cost = 0, 0
	s.pickLvl = s.pickLvl[:0]
	for ci := 0; ci < n; ci++ {
		s.pickLvl = append(s.pickLvl, 0)
		s.buildHull(ci)
	}
	s.sortIncs()
	for i := range s.incs {
		inc := &s.incs[i]
		if s.pickLvl[inc.class] != inc.level {
			continue // a cheaper increment of this class was skipped
		}
		if inc.level == 0 {
			if slots <= 0 {
				if s.runner < 0 {
					s.runner = int(inc.class)
				}
				continue
			}
			slots--
			s.order = append(s.order, inc.class)
		}
		s.pickLvl[inc.class] = inc.level + 1
		s.value += inc.dVal
		s.cost += inc.dCost
	}
}

// buildHull computes class ci's upper-left convex hull into the flat hull
// storage and appends its increments. Same geometry as classHull, with item
// ordinal as the final sort tie-break so equal (cost, profit) items resolve
// deterministically.
func (s *SlotSolver) buildHull(ci int) {
	start, end := s.classStart(ci), s.classEnd[ci]
	s.seg = s.seg[:0]
	for i := start; i < end; i++ {
		if s.profits[i] > 0 {
			s.seg = append(s.seg, int32(i-start))
		}
	}
	seg := s.seg
	// Insertion sort by (cost asc, profit desc, ordinal asc): class item
	// counts are the ad-type catalog size, single digits in practice.
	for i := 1; i < len(seg); i++ {
		for j := i; j > 0; j-- {
			a, b := start+int(seg[j-1]), start+int(seg[j])
			if s.costs[a] < s.costs[b] {
				break
			}
			if s.costs[a] == s.costs[b] {
				if s.profits[a] > s.profits[b] {
					break
				}
				if s.profits[a] == s.profits[b] && seg[j-1] < seg[j] {
					break
				}
			}
			seg[j-1], seg[j] = seg[j], seg[j-1]
		}
	}
	hullStart := len(s.hull)
	for _, ord := range seg {
		idx := start + int(ord)
		c, p := s.costs[idx], s.profits[idx]
		h := s.hull[hullStart:]
		if len(h) > 0 && p <= s.profits[start+int(h[len(h)-1])] {
			continue // dominated: same or higher cost, no more profit
		}
		for len(h) > 0 {
			last := start + int(h[len(h)-1])
			var prevCost, prevProfit float64
			if len(h) >= 2 {
				prev := start + int(h[len(h)-2])
				prevCost, prevProfit = s.costs[prev], s.profits[prev]
			}
			// Keep last only if efficiency decreases across it:
			// slope(prev→last) > slope(last→p).
			lhs := (s.profits[last] - prevProfit) * (c - s.costs[last])
			rhs := (p - s.profits[last]) * (s.costs[last] - prevCost)
			if lhs > rhs {
				break
			}
			h = h[:len(h)-1]
		}
		s.hull = append(s.hull[:hullStart+len(h)], ord)
	}
	prevCost, prevProfit := 0.0, 0.0
	for l, ord := range s.hull[hullStart:] {
		idx := start + int(ord)
		dc := s.costs[idx] - prevCost
		dv := s.profits[idx] - prevProfit
		s.incs = append(s.incs, slotInc{
			class: int32(ci), level: int32(l), dCost: dc, dVal: dv, eff: dv / dc,
		})
		prevCost, prevProfit = s.costs[idx], s.profits[idx]
	}
	s.hullEnd = append(s.hullEnd, len(s.hull))
}

// sortIncs sorts the increment list by (eff desc, class asc, level asc) —
// a total order, since (class, level) pairs are unique. Insertion-sort-
// backed binary insertion keeps it allocation-free; increment counts are
// small (classes × hull levels).
func (s *SlotSolver) sortIncs() {
	incs := s.incs
	for i := 1; i < len(incs); i++ {
		for j := i; j > 0; j-- {
			a, b := &incs[j-1], &incs[j]
			if a.eff > b.eff {
				break
			}
			if a.eff == b.eff {
				if a.class < b.class {
					break
				}
				if a.class == b.class && a.level < b.level {
					break
				}
			}
			incs[j-1], incs[j] = incs[j], incs[j-1]
		}
	}
}

// Order returns the opened classes in selection (slot) order: decreasing
// best-item efficiency, ties by class index. Valid until the next Solve.
func (s *SlotSolver) Order() []int32 { return s.order }

// Pick returns the item ordinal (Add order within the class) class ci
// serves, or -1 when the class is closed.
func (s *SlotSolver) Pick(ci int) int {
	lvl := s.pickLvl[ci]
	if lvl == 0 {
		return -1
	}
	hullStart := 0
	if ci > 0 {
		hullStart = s.hullEnd[ci-1]
	}
	return int(s.hull[hullStart+int(lvl)-1])
}

// Runner returns the first class denied a slot during the walk — the
// displaced runner-up that prices the second-price charge — or -1 when every
// class with a non-empty hull was opened.
func (s *SlotSolver) Runner() int { return s.runner }

// RunnerPick returns the item ordinal the runner-up class would have served
// had it won a slot (its hull completion), or -1 when there is no runner.
func (s *SlotSolver) RunnerPick() int {
	ci := s.runner
	if ci < 0 {
		return -1
	}
	hullStart := 0
	if ci > 0 {
		hullStart = s.hullEnd[ci-1]
	}
	hull := s.hull[hullStart:s.hullEnd[ci]]
	if len(hull) == 0 {
		return -1
	}
	return int(hull[len(hull)-1])
}

// Value returns the total profit of the last Solve's picks.
func (s *SlotSolver) Value() float64 { return s.value }

// Cost returns the total cost of the last Solve's picks.
func (s *SlotSolver) Cost() float64 { return s.cost }
