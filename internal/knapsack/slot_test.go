package knapsack

import (
	"math/rand"
	"testing"
)

// randSlotInstance builds a random instance as both []Class (for the
// reference solvers) and a populated SlotSolver.
func randSlotInstance(rng *rand.Rand, s *SlotSolver) []Class {
	n := 1 + rng.Intn(6)
	classes := make([]Class, n)
	s.Reset()
	for ci := range classes {
		items := 1 + rng.Intn(5)
		s.Begin()
		for i := 0; i < items; i++ {
			cost := 0.1 + rng.Float64()*9.9
			profit := rng.Float64() * 10
			if rng.Intn(8) == 0 {
				profit = 0 // exercise the non-positive-profit filter
			}
			classes[ci].Items = append(classes[ci].Items, Item{Cost: cost, Profit: profit})
			s.Item(cost, profit)
		}
	}
	return classes
}

// referenceSlotPick mirrors the solver's contract directly: classes ranked
// by best item efficiency (ties: class index), the top `slots` serve their
// maximum-profit item (ties: cheaper, then earlier).
func referenceSlotPick(classes []Class, slots int) (order []int, picks map[int]int, runner int) {
	type rank struct {
		class int
		eff   float64
	}
	var ranks []rank
	picks = map[int]int{}
	for ci, c := range classes {
		bestEff := 0.0
		bestItem, bestProfit, bestCost := -1, 0.0, 0.0
		for ii, it := range c.Items {
			if it.Profit <= 0 {
				continue
			}
			if e := it.Profit / it.Cost; e > bestEff {
				bestEff = e
			}
			if it.Profit > bestProfit || (it.Profit == bestProfit && bestItem >= 0 && it.Cost < bestCost) {
				bestItem, bestProfit, bestCost = ii, it.Profit, it.Cost
			}
		}
		if bestItem < 0 {
			continue
		}
		ranks = append(ranks, rank{class: ci, eff: bestEff})
		picks[ci] = bestItem
	}
	// Stable by construction: class indices ascend, so equal-eff ties keep
	// the lower class first under this insertion sort.
	for i := 1; i < len(ranks); i++ {
		for j := i; j > 0 && ranks[j].eff > ranks[j-1].eff; j-- {
			ranks[j], ranks[j-1] = ranks[j-1], ranks[j]
		}
	}
	runner = -1
	for i, r := range ranks {
		if i < slots {
			order = append(order, r.class)
		} else {
			if runner < 0 {
				runner = r.class
			}
			delete(picks, r.class)
		}
	}
	return order, picks, runner
}

func TestSlotSolverMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var s SlotSolver
	for trial := 0; trial < 500; trial++ {
		classes := randSlotInstance(rng, &s)
		slots := rng.Intn(len(classes) + 2)
		s.Solve(slots)
		wantOrder, wantPicks, wantRunner := referenceSlotPick(classes, slots)
		if got := s.Order(); len(got) != len(wantOrder) {
			t.Fatalf("trial %d: opened %d classes, want %d", trial, len(got), len(wantOrder))
		}
		for i, ci := range s.Order() {
			if int(ci) != wantOrder[i] {
				t.Fatalf("trial %d: order[%d] = %d, want %d", trial, i, ci, wantOrder[i])
			}
		}
		value := 0.0
		for ci := range classes {
			got := s.Pick(ci)
			want, ok := wantPicks[ci]
			if !ok {
				want = -1
			}
			if got != want {
				t.Fatalf("trial %d: class %d pick %d, want %d", trial, ci, got, want)
			}
			if got >= 0 {
				value += classes[ci].Items[got].Profit
			}
		}
		if diff := value - s.Value(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: Value() = %g, picks sum %g", trial, s.Value(), value)
		}
		if s.Runner() != wantRunner {
			t.Fatalf("trial %d: runner %d, want %d", trial, s.Runner(), wantRunner)
		}
		if wantRunner >= 0 {
			rp := s.RunnerPick()
			want := -1
			for ii, it := range classes[wantRunner].Items {
				if it.Profit <= 0 {
					continue
				}
				if want < 0 || it.Profit > classes[wantRunner].Items[want].Profit ||
					(it.Profit == classes[wantRunner].Items[want].Profit && it.Cost < classes[wantRunner].Items[want].Cost) {
					want = ii
				}
			}
			if rp != want {
				t.Fatalf("trial %d: runner pick %d, want %d", trial, rp, want)
			}
		}
	}
}

// With slots ≥ classes the slot constraint is slack and the solver must
// reach the same total profit as the budgeted Greedy given unlimited money:
// every class serves its best item.
func TestSlotSolverUnboundedMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var s SlotSolver
	for trial := 0; trial < 200; trial++ {
		classes := randSlotInstance(rng, &s)
		s.Solve(len(classes))
		sol := Greedy(classes, 1e18)
		if diff := s.Value() - sol.Value; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: slot value %g, greedy value %g", trial, s.Value(), sol.Value)
		}
	}
}

func TestSlotSolverZeroSlots(t *testing.T) {
	var s SlotSolver
	s.Begin()
	s.Item(1, 5)
	s.Begin()
	s.Item(2, 20)
	s.Solve(0)
	if len(s.Order()) != 0 || s.Value() != 0 {
		t.Fatalf("zero slots served: order %v value %g", s.Order(), s.Value())
	}
	// Runner is the best class by item efficiency: class 1 (eff 10) beats
	// class 0 (eff 5).
	if s.Runner() != 1 || s.RunnerPick() != 0 {
		t.Fatalf("runner = %d pick %d, want class 1 item 0", s.Runner(), s.RunnerPick())
	}
}

// The solver must not allocate once its retained buffers are warm: it lives
// inside the broker's zero-alloc scan arena.
func TestSlotSolverSteadyStateAllocs(t *testing.T) {
	var s SlotSolver
	fill := func() {
		s.Reset()
		for ci := 0; ci < 8; ci++ {
			s.Begin()
			for i := 0; i < 4; i++ {
				s.Item(float64(i+1), float64((ci+2)*(i+1)))
			}
		}
		s.Solve(3)
	}
	fill() // warm the buffers
	if avg := testing.AllocsPerRun(100, fill); avg != 0 {
		t.Fatalf("steady-state Solve allocates %.1f/op, want 0", avg)
	}
}
