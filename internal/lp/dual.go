package lp

import "math"

// DualSolution carries the dual prices of a solved LP: Y[i] is the shadow
// price of constraint i — how much the optimal objective would improve per
// unit of extra right-hand side. RECON's LP backend uses these in tests to
// certify optimality (strong duality); a broker could use them to price
// budget top-ups.
type DualSolution struct {
	Y []float64
}

// MaximizeWithDuals solves the problem and, when the primal is optimal,
// derives the dual prices from the final tableau (the negated reduced costs
// of the slack columns). For infeasible or unbounded problems the dual
// solution is empty.
func MaximizeWithDuals(p Problem) (Solution, DualSolution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, DualSolution{}, err
	}
	n, m := len(p.C), len(p.B)
	if n == 0 {
		sol, err := Maximize(p)
		return sol, DualSolution{Y: make([]float64, m)}, err
	}
	t := newTableau(p)
	if t.needsPhase1 {
		feasible, err := t.phase1()
		if err != nil {
			return Solution{}, DualSolution{}, err
		}
		if !feasible {
			return Solution{Status: Infeasible}, DualSolution{}, nil
		}
	}
	t.loadObjective(p.C)
	status, err := t.iterate(t.n + t.m)
	if err != nil {
		return Solution{}, DualSolution{}, err
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}, DualSolution{}, nil
	}
	x := make([]float64, n)
	for i, v := range t.basis {
		if v < n {
			x[v] = t.rhs(i)
		}
	}
	obj := 0.0
	for j, c := range p.C {
		obj += c * x[j]
	}
	// Dual prices: y_i = reduced cost of slack column i in the optimal
	// objective row. Rows that were negated at construction (negative rhs)
	// flip the slack's sign, so the price flips back.
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		price := t.obj[n+i]
		if p.B[i] < 0 {
			price = -price
		}
		if math.Abs(price) < eps {
			price = 0
		}
		y[i] = price
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, DualSolution{Y: y}, nil
}

// DualObjective evaluates bᵀy — equal to the primal optimum at optimality
// (strong duality).
func (d DualSolution) DualObjective(b []float64) float64 {
	total := 0.0
	for i, y := range d.Y {
		total += b[i] * y
	}
	return total
}
