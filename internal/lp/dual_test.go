package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsOnKnownProblem(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6 → optimum 21 at (3, 1.5).
	// Duals: y = (3/4, 1/2); check via bᵀy = 24·0.75 + 6·0.5 = 21.
	p := Problem{
		C: []float64{5, 4},
		A: [][]float64{{6, 4}, {1, 2}},
		B: []float64{24, 6},
	}
	sol, dual, err := MaximizeWithDuals(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(dual.Y[0]-0.75) > 1e-9 || math.Abs(dual.Y[1]-0.5) > 1e-9 {
		t.Errorf("duals = %v, want [0.75 0.5]", dual.Y)
	}
	if math.Abs(dual.DualObjective(p.B)-sol.Objective) > 1e-9 {
		t.Errorf("strong duality violated: %g vs %g", dual.DualObjective(p.B), sol.Objective)
	}
}

func TestStrongDualityOnRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.Float64() * 3
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 2
			}
			p.A = append(p.A, row)
			p.B = append(p.B, 0.5+rng.Float64()*2)
		}
		// Box to guarantee boundedness.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 10)
		}
		sol, dual, err := MaximizeWithDuals(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			continue
		}
		checked++
		// Strong duality: bᵀy = cᵀx.
		if gap := math.Abs(dual.DualObjective(p.B) - sol.Objective); gap > 1e-6 {
			t.Fatalf("trial %d: duality gap %g (primal %g, dual %g)", trial, gap, sol.Objective, dual.DualObjective(p.B))
		}
		// Dual feasibility: y ≥ 0 and Aᵀy ≥ c.
		for i, y := range dual.Y {
			if y < -1e-9 {
				t.Fatalf("trial %d: negative dual price y[%d] = %g", trial, i, y)
			}
		}
		for j := 0; j < n; j++ {
			lhs := 0.0
			for i := range p.A {
				lhs += p.A[i][j] * dual.Y[i]
			}
			if lhs < p.C[j]-1e-6 {
				t.Fatalf("trial %d: dual constraint %d violated: %g < %g", trial, j, lhs, p.C[j])
			}
		}
		// Complementary slackness: y_i > 0 ⇒ constraint i tight.
		for i, y := range dual.Y {
			if y <= 1e-7 {
				continue
			}
			lhs := 0.0
			for j, a := range p.A[i] {
				lhs += a * sol.X[j]
			}
			if math.Abs(lhs-p.B[i]) > 1e-6 {
				t.Fatalf("trial %d: priced constraint %d is slack (%g vs %g, y=%g)", trial, i, lhs, p.B[i], y)
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d optimal instances checked", checked)
	}
}

func TestDualsWithPhase1(t *testing.T) {
	// x ≥ 1 (as -x ≤ -1), x ≤ 3, max 2x → x = 3, duals: the binding upper
	// bound carries price 2, the lower bound 0.
	p := Problem{
		C: []float64{2},
		A: [][]float64{{-1}, {1}},
		B: []float64{-1, 3},
	}
	sol, dual, err := MaximizeWithDuals(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-6) > 1e-9 {
		t.Fatalf("solution %+v", sol)
	}
	if math.Abs(dual.DualObjective(p.B)-6) > 1e-9 {
		t.Errorf("strong duality with negated row: %g", dual.DualObjective(p.B))
	}
	if dual.Y[0] < -1e-9 {
		t.Errorf("dual of ≥-constraint must be sign-corrected: %v", dual.Y)
	}
}

func TestDualsDegenerateStatuses(t *testing.T) {
	sol, dual, err := MaximizeWithDuals(Problem{C: []float64{1}})
	if err != nil || sol.Status != Unbounded || dual.Y != nil {
		t.Errorf("unbounded: %+v %+v %v", sol, dual, err)
	}
	sol, dual, err = MaximizeWithDuals(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	})
	if err != nil || sol.Status != Infeasible || dual.Y != nil {
		t.Errorf("infeasible: %+v %+v %v", sol, dual, err)
	}
	// Zero variables.
	sol, dual, err = MaximizeWithDuals(Problem{B: []float64{1}, A: [][]float64{nil}})
	if err != nil || sol.Status != Optimal || len(dual.Y) != 1 {
		t.Errorf("zero variables: %+v %+v %v", sol, dual, err)
	}
}
