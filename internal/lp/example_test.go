package lp_test

import (
	"fmt"

	"muaa/internal/lp"
)

// ExampleMaximize solves a two-variable production-planning LP.
func ExampleMaximize() {
	sol, err := lp.Maximize(lp.Problem{
		C: []float64{5, 4},             // profit per unit
		A: [][]float64{{6, 4}, {1, 2}}, // machine hours, labour hours
		B: []float64{24, 6},            // available hours
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%v: objective %.0f at x = (%.1f, %.1f)\n",
		sol.Status, sol.Objective, sol.X[0], sol.X[1])
	// Output:
	// optimal: objective 21 at x = (3.0, 1.5)
}

// ExampleMaximizeWithDuals prices the constraints: the dual values say how
// much one extra hour of each resource is worth.
func ExampleMaximizeWithDuals() {
	sol, dual, err := lp.MaximizeWithDuals(lp.Problem{
		C: []float64{5, 4},
		A: [][]float64{{6, 4}, {1, 2}},
		B: []float64{24, 6},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("shadow prices %.2f and %.2f; bᵀy = %.0f = primal %.0f\n",
		dual.Y[0], dual.Y[1], dual.DualObjective([]float64{24, 6}), sol.Objective)
	// Output:
	// shadow prices 0.75 and 0.50; bᵀy = 21 = primal 21
}
