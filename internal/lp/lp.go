// Package lp is a small dense linear-programming solver. The MUAA paper's
// reconciliation approach solves one LP relaxation per vendor with "the
// Linear Programming solver [3]" (LP Solve); this package is that substrate,
// implemented from scratch as a two-phase primal simplex with Bland's
// anti-cycling rule.
//
// Problems are stated in the inequality form the single-vendor relaxation
// naturally takes:
//
//	maximize    c·x
//	subject to  A·x ≤ b
//	            x ≥ 0
//
// The solver is exact up to floating-point tolerance, handles negative
// right-hand sides via a phase-1 feasibility search with artificial
// variables, and reports unboundedness and infeasibility explicitly. It is
// intended for the small, dense systems MUAA produces (tens to a few
// thousand variables); there is no sparsity exploitation.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is a maximization LP in inequality form; see the package comment.
type Problem struct {
	C []float64   // objective coefficients, length n
	A [][]float64 // m rows of length n
	B []float64   // right-hand sides, length m
}

// Validate reports a descriptive error when dimensions disagree or any
// coefficient is not finite.
func (p Problem) Validate() error {
	n := len(p.C)
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d right-hand sides", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
		for j, v := range row {
			if !isFinite(v) {
				return fmt.Errorf("lp: A[%d][%d] = %g is not finite", i, j, v)
			}
		}
	}
	for j, v := range p.C {
		if !isFinite(v) {
			return fmt.Errorf("lp: C[%d] = %g is not finite", j, v)
		}
	}
	for i, v := range p.B {
		if !isFinite(v) {
			return fmt.Errorf("lp: B[%d] = %g is not finite", i, v)
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Solution is the result of Maximize.
type Solution struct {
	Status    Status
	X         []float64 // primal values, length n; nil unless Optimal
	Objective float64   // c·X; 0 unless Optimal
}

// ErrBadProblem wraps validation failures returned by Maximize.
var ErrBadProblem = errors.New("lp: malformed problem")

const (
	eps      = 1e-9
	maxIters = 200000
)

// Maximize solves the problem. The error is non-nil only for malformed
// input or iteration-limit exhaustion; infeasibility and unboundedness are
// reported through Solution.Status.
func Maximize(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, fmt.Errorf("%w: %v", ErrBadProblem, err)
	}
	n, m := len(p.C), len(p.B)
	if n == 0 {
		// No variables: feasible iff all b ≥ 0.
		for _, b := range p.B {
			if b < -eps {
				return Solution{Status: Infeasible}, nil
			}
		}
		return Solution{Status: Optimal, X: []float64{}}, nil
	}

	t := newTableau(p)

	// Phase 1: drive artificial variables out when any rhs is negative.
	if t.needsPhase1 {
		if feasible, err := t.phase1(); err != nil {
			return Solution{}, err
		} else if !feasible {
			return Solution{Status: Infeasible}, nil
		}
	}

	// Phase 2: optimize the true objective. Artificial columns are barred
	// from entering by limiting the column scan.
	t.loadObjective(p.C)
	status, err := t.iterate(t.n + t.m)
	if err != nil {
		return Solution{}, err
	}
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, v := range t.basis {
		if v < n {
			x[v] = t.rhs(i)
		}
	}
	obj := 0.0
	for j, c := range p.C {
		obj += c * x[j]
	}
	_ = m
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is a dense simplex tableau over the variable layout
// [structural 0..n) | slack n..n+m) | artificial n+m..n+m+a)].
type tableau struct {
	n, m        int       // structural variables, constraints
	nArt        int       // artificial variables
	cols        int       // total columns excluding rhs
	rows        []float64 // m rows × (cols+1), row-major; last entry is rhs
	obj         []float64 // objective row, length cols+1 (reduced costs, rhs = -value)
	basis       []int     // basic variable per row
	needsPhase1 bool
}

func newTableau(p Problem) *tableau {
	n, m := len(p.C), len(p.B)
	nArt := 0
	for _, b := range p.B {
		if b < 0 {
			nArt++
		}
	}
	t := &tableau{
		n:           n,
		m:           m,
		nArt:        nArt,
		cols:        n + m + nArt,
		basis:       make([]int, m),
		needsPhase1: nArt > 0,
	}
	t.rows = make([]float64, m*(t.cols+1))
	art := 0
	for i := 0; i < m; i++ {
		row := t.row(i)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1 // negate the row so rhs ≥ 0, flipping the slack's sign
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = sign // slack (surplus when negated)
		row[t.cols] = sign * p.B[i]
		if sign < 0 {
			col := n + m + art
			row[col] = 1
			t.basis[i] = col
			art++
		} else {
			t.basis[i] = n + i
		}
	}
	t.obj = make([]float64, t.cols+1)
	return t
}

func (t *tableau) row(i int) []float64 {
	return t.rows[i*(t.cols+1) : (i+1)*(t.cols+1)]
}

func (t *tableau) rhs(i int) float64 { return t.row(i)[t.cols] }

// loadObjective installs reduced costs for maximizing c over structural
// variables (artificials get a prohibitive zero coefficient and are never
// re-admitted: their columns are blocked in iterate once phase 1 ends).
func (t *tableau) loadObjective(c []float64) {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j, v := range c {
		t.obj[j] = -v // simplex minimizes the objective row; negate to maximize
	}
	t.priceOut()
}

// loadPhase1Objective installs the minimize-sum-of-artificials objective.
func (t *tableau) loadPhase1Objective() {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := t.n + t.m; j < t.cols; j++ {
		t.obj[j] = 1
	}
	t.priceOut()
}

// priceOut eliminates basic variables from the objective row so reduced
// costs are consistent with the current basis.
func (t *tableau) priceOut() {
	for i, b := range t.basis {
		coef := t.obj[b]
		if coef == 0 {
			continue
		}
		row := t.row(i)
		for j := 0; j <= t.cols; j++ {
			t.obj[j] -= coef * row[j]
		}
	}
}

// phase1 minimizes the artificial sum; reports whether a feasible basis was
// reached (artificial sum ≈ 0), pivoting any lingering zero-valued
// artificials out of the basis.
func (t *tableau) phase1() (bool, error) {
	t.loadPhase1Objective()
	status, err := t.iterate(t.cols)
	if err != nil {
		return false, err
	}
	if status == Unbounded {
		// Phase-1 objective is bounded below by 0; unbounded means a bug.
		return false, errors.New("lp: phase 1 reported unbounded")
	}
	if -t.obj[t.cols] > eps { // objective row rhs holds -value
		return false, nil
	}
	// Pivot degenerate artificials out so phase 2 never reintroduces them.
	for i, b := range t.basis {
		if b < t.n+t.m {
			continue
		}
		row := t.row(i)
		pivoted := false
		for j := 0; j < t.n+t.m; j++ {
			if math.Abs(row[j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is all zeros over real variables: redundant constraint;
			// the artificial stays basic at value 0, which is harmless
			// because its column is blocked from re-entering.
			continue
		}
	}
	return true, nil
}

// iterate runs Bland's-rule simplex until optimality or unboundedness,
// considering only columns below enterLimit as entering candidates (phase 2
// passes n+m so artificial columns can never re-enter the basis).
func (t *tableau) iterate(enterLimit int) (Status, error) {
	for iter := 0; iter < maxIters; iter++ {
		// Bland: entering variable = smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < enterLimit; j++ {
			if t.obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal, nil
		}
		// Ratio test; Bland tie-break on smallest basis variable index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.row(i)[enter]
			if a <= eps {
				continue
			}
			ratio := t.rhs(i) / a
			if ratio < bestRatio-eps ||
				(math.Abs(ratio-bestRatio) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded, nil
		}
		t.pivot(leave, enter)
	}
	return Optimal, fmt.Errorf("lp: simplex exceeded %d iterations", maxIters)
}

// pivot makes column enter basic in row leave via Gauss–Jordan elimination.
func (t *tableau) pivot(leave, enter int) {
	prow := t.row(leave)
	pval := prow[enter]
	inv := 1 / pval
	for j := 0; j <= t.cols; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1 // cancel rounding
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		row := t.row(i)
		f := row[enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
	}
	f := t.obj[enter]
	if f != 0 {
		for j := 0; j <= t.cols; j++ {
			t.obj[j] -= f * prow[j]
		}
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}
